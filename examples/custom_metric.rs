//! Extending the framework: a user-written metrics plugin, mirroring the
//! paper's Figure 3 API. Error-agnostic metrics hook `begin_compress`;
//! error-dependent ones also hook `end_decompress`; results come back as
//! an option structure, and the `predictors:invalidate` configuration tells
//! the framework when cached values expire.
//!
//! ```sh
//! cargo run --release --example custom_metric
//! ```

use libpressio_predict::core::error::Result;
use libpressio_predict::core::metrics::{invalidations, MetricsPlugin};
use libpressio_predict::core::{Compressor, Data, Dtype, InstrumentedCompressor, Options};
use libpressio_predict::sz::SzCompressor;

/// A bespoke metric: fraction of sign changes between neighboring values —
/// a cheap oscillation measure an application might correlate with
/// compressibility — plus the reconstruction's sign-agreement (error-
/// dependent, since it needs the decompressed data).
#[derive(Default)]
struct SignMetrics {
    input: Option<Vec<f64>>,
    results: Options,
}

impl MetricsPlugin for SignMetrics {
    fn id(&self) -> &'static str {
        "sign"
    }

    // error-agnostic: computed from the input alone
    fn begin_compress(&mut self, input: &Data) -> Result<()> {
        let values = input.to_f64_vec();
        let flips = values
            .windows(2)
            .filter(|w| (w[0] < 0.0) != (w[1] < 0.0))
            .count();
        self.results.set(
            "sign:flip_fraction",
            flips as f64 / (values.len().max(2) - 1) as f64,
        );
        self.input = Some(values);
        Ok(())
    }

    // error-dependent: compares input against the reconstruction
    fn end_decompress(
        &mut self,
        _compressed: &[u8],
        output: Option<&Data>,
        ok: bool,
    ) -> Result<()> {
        let (Some(input), Some(output), true) = (self.input.as_ref(), output, ok) else {
            return Ok(());
        };
        let out = output.to_f64_vec();
        let agree = input
            .iter()
            .zip(&out)
            .filter(|(a, b)| (**a < 0.0) == (**b < 0.0))
            .count();
        self.results
            .set("sign:agreement", agree as f64 / input.len().max(1) as f64);
        Ok(())
    }

    fn results(&self) -> Options {
        self.results.clone()
    }

    fn get_configuration(&self) -> Options {
        // declare the invalidation classes per result, like error_stat
        Options::new()
            .with(
                "predictors:error_agnostic",
                vec!["sign:flip_fraction".to_string()],
            )
            .with(
                "predictors:error_dependent",
                vec!["sign:agreement".to_string()],
            )
            .with(
                "predictors:invalidate",
                vec![invalidations::ERROR_DEPENDENT.to_string()],
            )
    }
}

fn main() {
    let data = Data::from_f32(
        vec![64, 64],
        (0..4096)
            .map(|i| ((i % 64) as f32 * 0.2).sin() * ((i / 64) as f32 * 0.15).cos())
            .collect(),
    );

    let mut sz = SzCompressor::new();
    sz.set_options(&Options::new().with("pressio:abs", 1e-3))
        .unwrap();

    // attach the custom metric alongside the built-ins, LibPressio-style
    let mut instrumented = InstrumentedCompressor::new(Box::new(sz))
        .with_metric(Box::new(
            libpressio_predict::core::metrics::SizeMetrics::new(),
        ))
        .with_metric(Box::new(
            libpressio_predict::core::metrics::TimeMetrics::new(),
        ))
        .with_metric(Box::new(SignMetrics::default()));

    let compressed = instrumented.compress(&data).unwrap();
    let _restored = instrumented
        .decompress(&compressed, Dtype::F32, &[64, 64])
        .unwrap();

    let results = instrumented.metrics_results();
    println!("metrics results (custom + built-in):");
    print!("{results}");
    println!("\ninvalidation metadata exposed to the prediction framework:");
    print!("{}", instrumented.metrics_configuration());

    assert!(results.get_f64("sign:flip_fraction").unwrap() > 0.0);
    assert!(results.get_f64("sign:agreement").unwrap() > 0.9);
    assert!(results.get_f64("size:compression_ratio").unwrap() > 1.0);
}
