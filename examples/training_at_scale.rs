//! Use of LibPressio-Predict-Bench (paper §4.3): train a prediction scheme
//! over many datasets with the fault-tolerant worker pool and the
//! crash-safe checkpoint store — including a simulated mid-run crash and
//! restart that re-runs *only* the missing results.
//!
//! ```sh
//! cargo run --release --example training_at_scale
//! ```

use libpressio_predict::bench_infra::{run_tasks, CheckpointStore, PoolConfig, Scheduling, Task};
use libpressio_predict::core::error::Error;
use libpressio_predict::core::hash::hash_options_hex;
use libpressio_predict::core::{Compressor, Data, Options};
use libpressio_predict::dataset::{DatasetPlugin, Hurricane};
use libpressio_predict::predict::standard_schemes;
use libpressio_predict::sz::SzCompressor;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

fn truth_tasks(datasets: &[(String, Data)]) -> Vec<Task> {
    datasets
        .iter()
        .enumerate()
        .map(|(i, (name, _))| {
            Task::new(
                hash_options_hex(
                    &Options::new()
                        .with("task", "truth")
                        .with("dataset", name.as_str())
                        .with("pressio:abs", 1e-4),
                ),
                i as u64,
                Options::new().with("index", i as u64),
            )
        })
        .collect()
}

fn main() {
    let store_path = std::env::temp_dir().join("pressio_training_at_scale.jsonl");
    let _ = std::fs::remove_file(&store_path);

    let mut hurricane = Hurricane::with_dims(32, 32, 16, 3);
    let datasets: Arc<Vec<(String, Data)>> = Arc::new(
        (0..hurricane.len())
            .map(|i| {
                (
                    hurricane.load_metadata(i).unwrap().name,
                    hurricane.load_data(i).unwrap(),
                )
            })
            .collect(),
    );
    println!(
        "training set: {} datasets (3 timesteps x 13 fields)",
        datasets.len()
    );

    // ---- phase 1: collect ground truth, crashing partway through --------
    let crash_after = datasets.len() / 2;
    let completed = Arc::new(AtomicUsize::new(0));
    let run = |inject_crash: bool, store: &mut CheckpointStore| {
        let pending: Vec<Task> = truth_tasks(&datasets)
            .into_iter()
            .filter(|t| !store.contains(&t.id))
            .collect();
        println!(
            "  dispatching {} tasks ({} already checkpointed)",
            pending.len(),
            datasets.len() - pending.len()
        );
        let ds = datasets.clone();
        let counter = completed.clone();
        let (outcomes, stats) = run_tasks(
            pending,
            PoolConfig {
                workers: 4,
                scheduling: Scheduling::DataAffinity,
                max_attempts: 2,
                retry_backoff_ms: 0,
            },
            Arc::new(move |task: &Task, _w| {
                if inject_crash && counter.fetch_add(1, Ordering::SeqCst) >= crash_after {
                    // a buggy metric implementation surfacing on diverse
                    // data — the failure mode the paper hit in practice
                    return Err(Error::TaskFailed("injected crash".into()));
                }
                let i = task.config.get_usize("index")?;
                let data = &ds[i].1;
                let mut sz = SzCompressor::new();
                sz.set_options(&Options::new().with("pressio:abs", 1e-4))?;
                let c = sz.compress(data)?;
                Ok(Options::new()
                    .with("index", i as u64)
                    .with("ratio", data.size_in_bytes() as f64 / c.len() as f64))
            }),
        );
        let mut ok = 0usize;
        for o in &outcomes {
            if let Ok(v) = &o.result {
                store.put(&o.id, v.clone()).unwrap();
                ok += 1;
            }
        }
        println!(
            "  {} succeeded, {} failed, {} retries",
            ok,
            outcomes.len() - ok,
            stats.retries
        );
    };

    println!("\nfirst run (crash injected mid-way):");
    let mut store = CheckpointStore::open(&store_path).unwrap();
    run(true, &mut store);
    let after_crash = store.len();
    println!("  checkpoint holds {after_crash} committed results");

    println!("\nrestart (no crash): only the missing results are re-run:");
    let mut store = CheckpointStore::open(&store_path).unwrap();
    run(false, &mut store);
    assert_eq!(store.len(), datasets.len(), "restart must complete the set");

    // ---- phase 2: fit the scheme from the checkpointed observations -----
    let schemes = standard_schemes();
    let scheme = schemes.build("rahman2023").unwrap();
    let sz = {
        let mut c = SzCompressor::new();
        c.set_options(&Options::new().with("pressio:abs", 1e-4))
            .unwrap();
        c
    };
    let mut feats = Vec::new();
    let mut targets = Vec::new();
    for task in truth_tasks(&datasets) {
        let rec = store.get(&task.id).expect("complete after restart");
        let i = rec.get_usize("index").unwrap();
        let data = &datasets[i].1;
        let mut f = scheme.error_agnostic_features(data).unwrap();
        f.merge_from(&scheme.error_dependent_features(data, &sz).unwrap());
        feats.push(f);
        targets.push(rec.get_f64("ratio").unwrap());
    }
    let mut predictor = scheme.make_predictor();
    predictor.fit(&feats, &targets).unwrap();
    let preds: Vec<f64> = feats
        .iter()
        .map(|f| predictor.predict(f).unwrap())
        .collect();
    let medape = libpressio_predict::stats::medape(&targets, &preds).unwrap();
    println!("\nfitted rahman2023 from checkpointed truth: in-sample MedAPE {medape:.1}%");

    // the trained state is serializable for shipping to applications
    let state = predictor.state().unwrap();
    println!("serialized predictor state: {} bytes", state.len());
    let _ = std::fs::remove_file(&store_path);
}
