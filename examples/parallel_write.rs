//! Use case 3 from the paper (§2.1): **accelerating parallel writes to
//! shared files** (the HDF5 scenario of Jin 2022). Each rank's compressed
//! chunk size is *predicted* so file offsets can be computed before
//! compression finishes; a safety factor over-allocates to reduce
//! under-allocation mispredictions, and a conformal upper bound (Ganguli
//! 2023) lets us forecast the misprediction rate precisely.
//!
//! ```sh
//! cargo run --release --example parallel_write
//! ```

use libpressio_predict::core::{Compressor, Options};
use libpressio_predict::dataset::{DatasetPlugin, Hurricane};
use libpressio_predict::predict::standard_schemes;
use libpressio_predict::sz::SzCompressor;

fn main() {
    // 32 chunks (fields x timesteps) that ranks will write concurrently
    let mut hurricane = Hurricane::with_dims(32, 32, 16, 4)
        .with_fields(&["P", "TC", "U", "V", "QRAIN", "QSNOW", "QVAPOR", "W"]);
    let chunks: Vec<_> = (0..hurricane.len())
        .map(|i| {
            (
                hurricane.load_metadata(i).unwrap().name,
                hurricane.load_data(i).unwrap(),
            )
        })
        .collect();
    let mut sz = SzCompressor::new();
    sz.set_options(&Options::new().with("pressio:abs", 1e-4))
        .unwrap();

    // train the bounded estimator on half the chunks (prior timesteps)
    let schemes = standard_schemes();
    let scheme = schemes.build("ganguli2023").unwrap();
    let half = chunks.len() / 2;
    let mut feats = Vec::new();
    let mut ratios = Vec::new();
    for (_, data) in &chunks[..half] {
        let mut f = scheme.error_agnostic_features(data).unwrap();
        f.merge_from(&scheme.error_dependent_features(data, &sz).unwrap());
        let c = sz.compress(data).unwrap();
        feats.push(f);
        ratios.push(data.size_in_bytes() as f64 / c.len() as f64);
    }
    let mut predictor = scheme.make_predictor();
    predictor.fit(&feats, &ratios).unwrap();

    // plan offsets for the remaining chunks from predictions
    println!("| chunk | predicted bytes | allocated bytes | actual bytes | fits |");
    println!("|---|---|---|---|---|");
    let alpha = 0.1; // 90% per-chunk guarantee from the conformal bound
    let mut offset = 0u64;
    let mut mispredictions = 0usize;
    let mut allocated_total = 0u64;
    let mut actual_total = 0u64;
    for (name, data) in &chunks[half..] {
        let mut f = scheme.error_agnostic_features(data).unwrap();
        f.merge_from(&scheme.error_dependent_features(data, &sz).unwrap());
        let point = predictor.predict(&f).unwrap();
        let predicted_bytes = data.size_in_bytes() as f64 / point;
        // safety factor: allocate by the conformal *lower* ratio bound
        // (lower ratio = larger compressed size)
        let allocation = match predictor.predict_interval(&f, alpha) {
            Some(interval) => data.size_in_bytes() as f64 / interval.lo.max(1.0),
            None => predicted_bytes * 1.5, // fixed safety factor fallback
        };
        let actual_bytes = sz.compress(data).unwrap().len() as f64;
        let fits = actual_bytes <= allocation;
        mispredictions += (!fits) as usize;
        println!(
            "| {name} | {predicted_bytes:.0} | {allocation:.0} | {actual_bytes:.0} | {} |",
            if fits {
                "yes"
            } else {
                "NO — fallback append"
            }
        );
        offset += allocation as u64;
        allocated_total += allocation as u64;
        actual_total += actual_bytes as u64;
    }
    let n = chunks.len() - half;
    println!("\nplanned file size: {offset} bytes ({n} chunks)");
    println!(
        "mispredictions (fallback appends): {mispredictions}/{n} — conformal target ≤ {:.0}%",
        alpha * 100.0
    );
    println!(
        "over-allocation overhead: {:.1}% of the actual compressed volume",
        (allocated_total as f64 / actual_total as f64 - 1.0) * 100.0
    );
}
