//! Use case 1 from the paper (§2.1): **choosing the best compressor**
//! without running all the candidates. Predictions replace compressor
//! runs; the method "does not need to be tremendously accurate since it
//! needs to only preserve the ranking".
//!
//! This example ranks sz3 vs zfp on every Hurricane field twice — with the
//! fast calculation-based khan2023 estimator and with the trained
//! rahman2023 forest — and validates both rankings against ground truth.
//! It reproduces the paper's §6 finding: the calculation method's failures
//! concentrate on the *sparse* fields, which the trained,
//! sparsity-corrected method handles.
//!
//! ```sh
//! cargo run --release --example compressor_selection
//! ```

use libpressio_predict::core::{Data, Options};
use libpressio_predict::dataset::{DatasetPlugin, Hurricane};
use libpressio_predict::predict::{standard_compressors, standard_schemes, Predictor, Scheme};

struct Field {
    name: String,
    sparse: bool,
    data: Data,
    /// true compression ratio per compressor (the work prediction avoids)
    truth: Vec<f64>,
}

fn rank(
    scheme: &dyn Scheme,
    predictors: &[Box<dyn Predictor>],
    fields: &[Field],
    compressors: &[Box<dyn libpressio_predict::core::Compressor>],
) -> (usize, usize, usize) {
    let (mut ok, mut sparse_miss, mut dense_miss) = (0usize, 0usize, 0usize);
    for field in fields {
        let mut predicted = Vec::new();
        for (ci, comp) in compressors.iter().enumerate() {
            let mut f = scheme.error_agnostic_features(&field.data).unwrap();
            f.merge_from(
                &scheme
                    .error_dependent_features(&field.data, comp.as_ref())
                    .unwrap(),
            );
            predicted.push(predictors[ci].predict(&f).unwrap());
        }
        let pred_best = (predicted[0] < predicted[1]) as usize;
        let true_best = (field.truth[0] < field.truth[1]) as usize;
        let tie =
            (field.truth[0] - field.truth[1]).abs() / field.truth[0].max(field.truth[1]) < 0.10;
        if tie || pred_best == true_best {
            ok += 1;
        } else if field.sparse {
            sparse_miss += 1;
        } else {
            dense_miss += 1;
        }
    }
    (ok, sparse_miss, dense_miss)
}

fn main() {
    let mut hurricane = Hurricane::with_dims(48, 48, 24, 2);
    let abs = 1e-4;
    let registry = standard_compressors();
    let compressors: Vec<_> = ["sz3", "zfp"]
        .iter()
        .map(|name| {
            let mut c = registry.build(name).unwrap();
            c.set_options(&Options::new().with("pressio:abs", abs))
                .unwrap();
            c
        })
        .collect();

    // ground truth for validation (and for training the trained scheme)
    let mut fields = Vec::new();
    for i in 0..hurricane.len() {
        let meta = hurricane.load_metadata(i).unwrap();
        let data = hurricane.load_data(i).unwrap();
        let truth: Vec<f64> = compressors
            .iter()
            .map(|c| data.size_in_bytes() as f64 / c.compress(&data).unwrap().len() as f64)
            .collect();
        fields.push(Field {
            name: meta.name,
            sparse: meta.attributes.get_bool("hurricane:sparse").unwrap(),
            data,
            truth,
        });
    }
    let (train, eval) = fields.split_at(fields.len() / 2); // t0 trains, t1 evaluates
    let schemes = standard_schemes();

    // --- fast calculation-based ranking (khan2023, no training) ----------
    let khan = schemes.build("khan2023").unwrap();
    let khan_predictors: Vec<Box<dyn Predictor>> = (0..2).map(|_| khan.make_predictor()).collect();
    let (ok, sparse_miss, dense_miss) = rank(khan.as_ref(), &khan_predictors, eval, &compressors);
    println!("khan2023 (calculation, no training):");
    println!(
        "  ranking preserved on {ok}/{} fields; mispicks: {sparse_miss} sparse, {dense_miss} dense",
        eval.len()
    );

    // --- trained ranking (rahman2023, one predictor per compressor) ------
    let rahman = schemes.build("rahman2023").unwrap();
    let mut rahman_predictors = Vec::new();
    for (ci, comp) in compressors.iter().enumerate() {
        let mut feats = Vec::new();
        let mut targets = Vec::new();
        for field in train {
            let mut f = rahman.error_agnostic_features(&field.data).unwrap();
            f.merge_from(
                &rahman
                    .error_dependent_features(&field.data, comp.as_ref())
                    .unwrap(),
            );
            feats.push(f);
            targets.push(field.truth[ci]);
        }
        let mut p = rahman.make_predictor();
        p.fit(&feats, &targets).unwrap();
        rahman_predictors.push(p);
    }
    let (ok, sparse_miss, dense_miss) =
        rank(rahman.as_ref(), &rahman_predictors, eval, &compressors);
    println!("rahman2023 (trained on the previous timestep):");
    println!(
        "  ranking preserved on {ok}/{} fields; mispicks: {sparse_miss} sparse, {dense_miss} dense",
        eval.len()
    );

    println!("\nevaluated fields:");
    for field in eval {
        println!(
            "  {} ({}) — true sz3 {:.1}, true zfp {:.1}",
            field.name,
            if field.sparse { "sparse" } else { "dense" },
            field.truth[0],
            field.truth[1]
        );
    }
    println!(
        "\nshape check (paper §6): the calculation method's wrong picks sit on sparse \
         fields; the sparsity-corrected trained method fixes them"
    );
}
