//! Use case 4 from the paper (§2.1): **counterfactual analysis** — predict
//! the performance of compressor designs "that do not yet exist" (Wang
//! 2023 / ZPerf). Hundreds of person-hours go into designing specialized
//! compressors; if a stage model shows a design is unfruitful for an
//! application's data, it can be discarded before being built.
//!
//! Here the wang2023 stage model estimates, per Hurricane field, what an
//! SZ-style pipeline would achieve with each candidate prediction stage —
//! then we "build" each design (we happen to have them) and check that the
//! model's design ranking holds.
//!
//! ```sh
//! cargo run --release --example counterfactual
//! ```

use libpressio_predict::core::{Compressor, Options};
use libpressio_predict::dataset::{DatasetPlugin, Hurricane};
use libpressio_predict::predict::schemes::wang::{WangScheme, DESIGNS};
use libpressio_predict::sz::SzCompressor;

fn main() {
    let mut hurricane =
        Hurricane::with_dims(48, 48, 16, 1).with_fields(&["P", "TC", "U", "QVAPOR", "QRAIN"]);
    let abs = 1e-4;
    let scheme = WangScheme::default();

    println!("counterfactual design study: which SZ prediction stage suits each field?\n");
    println!("| field | design | predicted CR | actual CR (built afterwards) |");
    println!("|---|---|---|---|");
    let mut agreements = 0usize;
    let mut total = 0usize;
    for i in 0..hurricane.len() {
        let meta = hurricane.load_metadata(i).unwrap();
        let data = hurricane.load_data(i).unwrap();
        let mut predicted = Vec::new();
        let mut actual = Vec::new();
        for design in DESIGNS {
            // the counterfactual: no compressor with this design is run
            let est = scheme.estimate_design(&data, abs, design).unwrap();
            predicted.push(est);
            // ...but we can build it to validate the study
            let mut comp = SzCompressor::new();
            comp.set_options(
                &Options::new()
                    .with("pressio:abs", abs)
                    .with("sz3:predictor", design.name()),
            )
            .unwrap();
            let c = comp.compress(&data).unwrap();
            let truth = data.size_in_bytes() as f64 / c.len() as f64;
            actual.push(truth);
            println!(
                "| {} | {} | {est:.1} | {truth:.1} |",
                meta.name,
                design.name()
            );
        }
        let pred_best = argmax(&predicted);
        let true_best = argmax(&actual);
        total += 1;
        // agreement, or the predicted pick is within 10% of the true best
        if pred_best == true_best || actual[pred_best] > actual[true_best] * 0.9 {
            agreements += 1;
        }
    }
    println!(
        "\ndesign picked by the model is (near-)optimal on {agreements}/{total} fields — \
         enough to discard unfruitful designs early without building them"
    );
}

fn argmax(v: &[f64]) -> usize {
    v.iter()
        .enumerate()
        .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
        .map(|(i, _)| i)
        .unwrap()
}
