//! Quickstart: the paper's Figure 4 inference flow, in Rust.
//!
//! 1. Get a scheme from the registry and check it supports the compressor.
//! 2. Declare what changed (the invalidation list) and evaluate only the
//!    metrics that need recomputing.
//! 3. Predict the compression ratio — then compare against the truth.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use libpressio_predict::core::Options;
use libpressio_predict::dataset::{DatasetPlugin, Hurricane};
use libpressio_predict::predict::evaluator::CachedEvaluator;
use libpressio_predict::predict::{standard_compressors, standard_schemes};

fn main() {
    // a field from the synthetic Hurricane Isabel stand-in
    let mut hurricane = Hurricane::with_dims(64, 64, 32, 1);
    let index = libpressio_predict::dataset::FIELDS
        .iter()
        .position(|&f| f == "TC")
        .unwrap();
    let meta = hurricane.load_metadata(index).unwrap();
    let data = hurricane.load_data(index).unwrap();
    println!(
        "dataset: {} {:?} ({} MB)",
        meta.name,
        meta.dims,
        meta.size_in_bytes() as f64 / 1e6
    );

    // Figure 4, step by step ------------------------------------------------
    // 1. scheme + predictor for a compressor
    let schemes = standard_schemes();
    let scheme = schemes.build("khan2023").expect("scheme registered");
    let mut compressor = standard_compressors().build("sz3").unwrap();
    compressor
        .set_options(&Options::new().with("pressio:abs", 1e-4))
        .unwrap();
    assert!(scheme.supports(compressor.id()), "scheme must support sz3");

    // 2. evaluate the required metrics under invalidation tracking
    let mut evaluator = CachedEvaluator::new(scheme);
    let (features, times) = evaluator
        .features(&meta.name, &data, compressor.as_ref())
        .unwrap();
    println!(
        "feature evaluation: error-agnostic {:?} ms, error-dependent {:?} ms",
        times.error_agnostic_ms, times.error_dependent_ms
    );

    // 3. predict
    let predictor = evaluator.scheme().make_predictor();
    let predicted = predictor.predict(&features).unwrap();

    // ...and check against reality
    let compressed = compressor.compress(&data).unwrap();
    let actual = data.size_in_bytes() as f64 / compressed.len() as f64;
    println!("predicted compression ratio: {predicted:.2}");
    println!("actual    compression ratio: {actual:.2}");
    println!(
        "absolute percentage error:   {:.1}%",
        ((predicted - actual) / actual).abs() * 100.0
    );

    // the invalidation payoff: a second prediction at a different bound
    // reuses every error-agnostic metric
    compressor
        .set_options(&Options::new().with("pressio:abs", 1e-6))
        .unwrap();
    let (features2, times2) = evaluator
        .features(&meta.name, &data, compressor.as_ref())
        .unwrap();
    let predicted2 = predictor.predict(&features2).unwrap();
    println!(
        "\nsecond bound (1e-6): predicted {predicted2:.2}; \
         agnostic stage reused from cache: {}",
        times2.error_agnostic_ms.is_none()
    );
}
