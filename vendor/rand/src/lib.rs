//! Minimal offline stand-in for the `rand` crate (0.8 API subset).
//!
//! The build environment has no access to crates.io, so this vendored crate
//! implements exactly the surface the workspace uses: `StdRng` seeded via
//! [`SeedableRng::seed_from_u64`], uniform [`Rng::gen_range`] over integer
//! and float ranges, [`Rng::gen`]/[`Rng::gen_bool`], and
//! [`seq::SliceRandom::shuffle`]. The generator is xoshiro256** — not the
//! ChaCha12 of the real `StdRng`, so exact streams differ, but every use in
//! this workspace only relies on determinism-per-seed, which holds.

use std::ops::{Range, RangeInclusive};

/// Low-level generator: a source of random 64-bit words.
pub trait RngCore {
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Types that can be sampled uniformly from `Rng::gen`.
pub trait Standard: Sized {
    /// Draw one value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}
impl Standard for u8 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> u8 {
        rng.next_u64() as u8
    }
}
impl Standard for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> u32 {
        rng.next_u32()
    }
}
impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> u64 {
        rng.next_u64()
    }
}
impl Standard for i64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> i64 {
        rng.next_u64() as i64
    }
}
impl Standard for usize {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> usize {
        rng.next_u64() as usize
    }
}
impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
        // 53 random mantissa bits in [0, 1)
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}
impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> f32 {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

/// A range that `Rng::gen_range` can sample from.
pub trait SampleRange<T> {
    /// Draw one value uniformly from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                (self.start as i128 + uniform_u128(rng, span) as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                (lo as i128 + uniform_u128(rng, span) as i128) as $t
            }
        }
    )*};
}
int_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Uniform integer in `[0, span)` (`span > 0`; `span == 0` means the full
/// 2^64 range restricted to u64 draws, which callers here never request).
fn uniform_u128<R: RngCore + ?Sized>(rng: &mut R, span: u128) -> u128 {
    debug_assert!(span > 0);
    if span == 1 {
        return 0;
    }
    // rejection sampling on the top multiple of span to avoid modulo bias
    let zone = u128::MAX - (u128::MAX % span);
    loop {
        let v = ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128;
        if v < zone {
            return v % span;
        }
    }
}

macro_rules! float_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let unit = <$t as Standard>::sample(rng);
                self.start + unit * (self.end - self.start)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty range");
                let unit = <$t as Standard>::sample(rng);
                lo + unit * (hi - lo)
            }
        }
    )*};
}
float_sample_range!(f32, f64);

/// User-facing sampling methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Uniform value from `range`.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }

    /// A value of a [`Standard`]-samplable type.
    #[allow(clippy::should_implement_trait)]
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        <f64 as Standard>::sample(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Deterministic construction from seeds.
pub trait SeedableRng: Sized {
    /// Raw seed type.
    type Seed;

    /// Build from a raw seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Build from a 64-bit seed (SplitMix64 expansion).
    fn seed_from_u64(state: u64) -> Self;
}

pub mod rngs {
    //! Named generators.

    use super::{RngCore, SeedableRng};

    /// The workspace's deterministic generator (xoshiro256**).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> StdRng {
            let mut s = [0u64; 4];
            for (i, chunk) in seed.chunks_exact(8).enumerate() {
                s[i] = u64::from_le_bytes(chunk.try_into().unwrap());
            }
            if s == [0; 4] {
                s = [1, 2, 3, 4];
            }
            StdRng { s }
        }

        fn seed_from_u64(mut state: u64) -> StdRng {
            let mut s = [0u64; 4];
            for v in &mut s {
                *v = splitmix64(&mut state);
            }
            StdRng { s }
        }
    }
}

pub mod seq {
    //! Sequence-related random operations.

    use super::{Rng, RngCore};

    /// Random operations on slices.
    pub trait SliceRandom {
        /// Element type.
        type Item;

        /// Fisher–Yates shuffle in place.
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);

        /// Uniformly random element (`None` on empty slices).
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.gen_range(0..self.len())])
            }
        }
    }
}

/// Convenience re-export mirroring `rand::prelude`.
pub mod prelude {
    pub use super::rngs::StdRng;
    pub use super::seq::SliceRandom;
    pub use super::{Rng, RngCore, SeedableRng};
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0..1000u64), b.gen_range(0..1000u64));
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v = rng.gen_range(3..10usize);
            assert!((3..10).contains(&v));
            let f = rng.gen_range(0.0..1.0f64);
            assert!((0.0..1.0).contains(&f));
            let i = rng.gen_range(-5..=5i64);
            assert!((-5..=5).contains(&i));
        }
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut v: Vec<u32> = (0..50).collect();
        let mut rng = StdRng::seed_from_u64(1);
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "50 elements virtually never shuffle to identity");
    }
}
