//! Minimal offline stand-in for `parking_lot`: `Mutex` and `RwLock` with
//! parking_lot's panic-free locking signatures, backed by `std::sync`.
//! Poisoned std locks are recovered transparently (parking_lot has no
//! poisoning), which matches how this workspace's queue uses them.

use std::sync::{self, MutexGuard, RwLockReadGuard, RwLockWriteGuard};

/// A mutex whose `lock` never returns a poison error.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized> {
    inner: sync::Mutex<T>,
}

impl<T> Mutex<T> {
    /// Wrap `value`.
    pub fn new(value: T) -> Mutex<T> {
        Mutex {
            inner: sync::Mutex::new(value),
        }
    }

    /// Consume the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(|poison| poison.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock (recovering from poisoning).
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.inner
            .lock()
            .unwrap_or_else(|poison| poison.into_inner())
    }

    /// Mutable access without locking.
    pub fn get_mut(&mut self) -> &mut T {
        self.inner
            .get_mut()
            .unwrap_or_else(|poison| poison.into_inner())
    }
}

/// A reader-writer lock whose guards never report poisoning.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized> {
    inner: sync::RwLock<T>,
}

impl<T> RwLock<T> {
    /// Wrap `value`.
    pub fn new(value: T) -> RwLock<T> {
        RwLock {
            inner: sync::RwLock::new(value),
        }
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquire a shared read guard.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.inner
            .read()
            .unwrap_or_else(|poison| poison.into_inner())
    }

    /// Acquire an exclusive write guard.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.inner
            .write()
            .unwrap_or_else(|poison| poison.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_recovers_from_panic_poisoning() {
        let m = std::sync::Arc::new(Mutex::new(0u32));
        let m2 = m.clone();
        let _ = std::thread::spawn(move || {
            let _guard = m2.lock();
            panic!("poison it");
        })
        .join();
        *m.lock() += 1;
        assert_eq!(*m.lock(), 1);
    }
}
