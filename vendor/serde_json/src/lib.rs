//! Minimal offline stand-in for `serde_json`: serialize the vendored
//! serde's [`Content`] tree to JSON text and parse JSON text back.
//!
//! Numbers round-trip: integers stay integers, floats are printed with
//! Rust's shortest-roundtrip `{}` formatting (the `float_roundtrip`
//! behavior the workspace requests). Non-finite floats serialize as `null`,
//! matching real serde_json. The parser is depth-limited and never panics
//! on malformed input — a requirement for the torn-line recovery path in
//! the checkpoint store.

use serde::{Content, Deserialize, Error, Serialize};

/// Maximum nesting depth accepted by the parser.
const MAX_DEPTH: usize = 128;

// ---- serialization ---------------------------------------------------------

fn write_escaped(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{08}' => out.push_str("\\b"),
            '\u{0C}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn write_content(c: &Content, out: &mut String) {
    match c {
        Content::Null => out.push_str("null"),
        Content::Bool(true) => out.push_str("true"),
        Content::Bool(false) => out.push_str("false"),
        Content::I64(v) => out.push_str(&v.to_string()),
        Content::U64(v) => out.push_str(&v.to_string()),
        Content::F64(v) => {
            if v.is_finite() {
                // Rust's Display for f64 is shortest-roundtrip
                let s = v.to_string();
                out.push_str(&s);
                // keep floats recognizably floats so integers/floats
                // round-trip through their own Content variants
                if !s.contains('.') && !s.contains('e') && !s.contains('E') {
                    out.push_str(".0");
                }
            } else {
                out.push_str("null");
            }
        }
        Content::Str(s) => write_escaped(s, out),
        Content::Seq(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_content(item, out);
            }
            out.push(']');
        }
        Content::Map(entries) => {
            out.push('{');
            for (i, (k, v)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_escaped(k, out);
                out.push(':');
                write_content(v, out);
            }
            out.push('}');
        }
    }
}

/// Serialize `value` to a JSON string.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_content(&value.serialize_content(), &mut out);
    Ok(out)
}

/// Serialize `value` to JSON bytes.
pub fn to_vec<T: Serialize + ?Sized>(value: &T) -> Result<Vec<u8>, Error> {
    to_string(value).map(String::into_bytes)
}

// ---- parsing ---------------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn new(s: &'a str) -> Parser<'a> {
        Parser {
            bytes: s.as_bytes(),
            pos: 0,
        }
    }

    fn err(&self, msg: &str) -> Error {
        Error(format!("JSON parse error at byte {}: {msg}", self.pos))
    }

    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected `{}`", b as char)))
        }
    }

    fn expect_keyword(&mut self, kw: &str) -> Result<(), Error> {
        if self.bytes[self.pos..].starts_with(kw.as_bytes()) {
            self.pos += kw.len();
            Ok(())
        } else {
            Err(self.err(&format!("expected `{kw}`")))
        }
    }

    fn parse_value(&mut self, depth: usize) -> Result<Content, Error> {
        if depth > MAX_DEPTH {
            return Err(self.err("nesting too deep"));
        }
        self.skip_ws();
        match self.peek() {
            Some(b'n') => {
                self.expect_keyword("null")?;
                Ok(Content::Null)
            }
            Some(b't') => {
                self.expect_keyword("true")?;
                Ok(Content::Bool(true))
            }
            Some(b'f') => {
                self.expect_keyword("false")?;
                Ok(Content::Bool(false))
            }
            Some(b'"') => self.parse_string().map(Content::Str),
            Some(b'[') => {
                self.pos += 1;
                let mut items = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b']') {
                    self.pos += 1;
                    return Ok(Content::Seq(items));
                }
                loop {
                    items.push(self.parse_value(depth + 1)?);
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => {
                            self.pos += 1;
                        }
                        Some(b']') => {
                            self.pos += 1;
                            return Ok(Content::Seq(items));
                        }
                        _ => return Err(self.err("expected `,` or `]`")),
                    }
                }
            }
            Some(b'{') => {
                self.pos += 1;
                let mut entries = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b'}') {
                    self.pos += 1;
                    return Ok(Content::Map(entries));
                }
                loop {
                    self.skip_ws();
                    let key = self.parse_string()?;
                    self.skip_ws();
                    self.expect(b':')?;
                    let value = self.parse_value(depth + 1)?;
                    entries.push((key, value));
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => {
                            self.pos += 1;
                        }
                        Some(b'}') => {
                            self.pos += 1;
                            return Ok(Content::Map(entries));
                        }
                        _ => return Err(self.err("expected `,` or `}`")),
                    }
                }
            }
            Some(b) if b == b'-' || b.is_ascii_digit() => self.parse_number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let b = self.peek().ok_or_else(|| self.err("unterminated string"))?;
            match b {
                b'"' => {
                    self.pos += 1;
                    return Ok(out);
                }
                b'\\' => {
                    self.pos += 1;
                    let esc = self.peek().ok_or_else(|| self.err("bad escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{08}'),
                        b'f' => out.push('\u{0C}'),
                        b'u' => {
                            let hi = self.parse_hex4()?;
                            let code = if (0xD800..0xDC00).contains(&hi) {
                                // surrogate pair
                                self.expect(b'\\')?;
                                self.expect(b'u')?;
                                let lo = self.parse_hex4()?;
                                if !(0xDC00..0xE000).contains(&lo) {
                                    return Err(self.err("invalid low surrogate"));
                                }
                                0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00)
                            } else {
                                hi
                            };
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| self.err("invalid unicode escape"))?,
                            );
                        }
                        _ => return Err(self.err("unknown escape")),
                    }
                }
                _ => {
                    // consume one UTF-8 encoded char
                    let start = self.pos;
                    let len = utf8_len(b).ok_or_else(|| self.err("invalid UTF-8"))?;
                    if start + len > self.bytes.len() {
                        return Err(self.err("truncated UTF-8"));
                    }
                    let s = std::str::from_utf8(&self.bytes[start..start + len])
                        .map_err(|_| self.err("invalid UTF-8"))?;
                    out.push_str(s);
                    self.pos += len;
                }
            }
        }
    }

    fn parse_hex4(&mut self) -> Result<u32, Error> {
        if self.pos + 4 > self.bytes.len() {
            return Err(self.err("truncated \\u escape"));
        }
        let s = std::str::from_utf8(&self.bytes[self.pos..self.pos + 4])
            .map_err(|_| self.err("invalid \\u escape"))?;
        let v = u32::from_str_radix(s, 16).map_err(|_| self.err("invalid \\u escape"))?;
        self.pos += 4;
        Ok(v)
    }

    fn parse_number(&mut self) -> Result<Content, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b) if b.is_ascii_digit()) {
            self.pos += 1;
        }
        let mut is_float = false;
        if self.peek() == Some(b'.') {
            is_float = true;
            self.pos += 1;
            while matches!(self.peek(), Some(b) if b.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e') | Some(b'E')) {
            is_float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+') | Some(b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b) if b.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid number"))?;
        if text == "-" || text.is_empty() {
            return Err(self.err("invalid number"));
        }
        if !is_float {
            if let Ok(v) = text.parse::<i64>() {
                return Ok(Content::I64(v));
            }
            if let Ok(v) = text.parse::<u64>() {
                return Ok(Content::U64(v));
            }
        }
        text.parse::<f64>()
            .map(Content::F64)
            .map_err(|_| self.err("invalid number"))
    }
}

fn utf8_len(first: u8) -> Option<usize> {
    match first {
        0x00..=0x7F => Some(1),
        0xC0..=0xDF => Some(2),
        0xE0..=0xEF => Some(3),
        0xF0..=0xF7 => Some(4),
        _ => None,
    }
}

/// Parse a JSON string into a [`Content`] tree.
pub fn parse_content(s: &str) -> Result<Content, Error> {
    let mut p = Parser::new(s);
    let value = p.parse_value(0)?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters after JSON value"));
    }
    Ok(value)
}

/// Deserialize a value from a JSON string.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T, Error> {
    T::deserialize_content(parse_content(s)?)
}

/// Deserialize a value from JSON bytes.
pub fn from_slice<T: Deserialize>(bytes: &[u8]) -> Result<T, Error> {
    let s = std::str::from_utf8(bytes).map_err(|e| Error(format!("invalid UTF-8: {e}")))?;
    from_str(s)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_round_trips() {
        assert_eq!(to_string(&true).unwrap(), "true");
        assert_eq!(to_string(&42u64).unwrap(), "42");
        assert_eq!(to_string(&-7i64).unwrap(), "-7");
        assert_eq!(to_string(&2.5f64).unwrap(), "2.5");
        assert_eq!(to_string(&2.0f64).unwrap(), "2.0");
        assert_eq!(to_string(&"a\"b\n").unwrap(), "\"a\\\"b\\n\"");
        assert_eq!(from_str::<f64>("2.0").unwrap(), 2.0);
        assert_eq!(from_str::<f64>("2").unwrap(), 2.0);
        assert_eq!(from_str::<u64>("18446744073709551615").unwrap(), u64::MAX);
        assert_eq!(from_str::<String>("\"\\u00e9\"").unwrap(), "é");
    }

    #[test]
    fn containers_round_trip() {
        let v = vec![vec![1.5f64, -2.0], vec![]];
        let s = to_string(&v).unwrap();
        let back: Vec<Vec<f64>> = from_str(&s).unwrap();
        assert_eq!(v, back);

        let mut m = std::collections::BTreeMap::new();
        m.insert("a".to_string(), Some(1u64));
        m.insert("b".to_string(), None);
        let s = to_string(&m).unwrap();
        assert_eq!(s, "{\"a\":1,\"b\":null}");
        let back: std::collections::BTreeMap<String, Option<u64>> = from_str(&s).unwrap();
        assert_eq!(m, back);
    }

    #[test]
    fn float_precision_round_trips() {
        for v in [1.25e-7f64, std::f64::consts::PI, 1e300, -0.1] {
            let s = to_string(&v).unwrap();
            assert_eq!(from_str::<f64>(&s).unwrap(), v, "{s}");
        }
    }

    #[test]
    fn malformed_inputs_error_cleanly() {
        for bad in [
            "",
            "{",
            "[1,",
            "{\"key\":\"half...",
            "nul",
            "\"unterminated",
            "1e",
            "{\"a\":1}trailing",
            "-",
        ] {
            assert!(parse_content(bad).is_err(), "{bad:?} should fail");
        }
        // deep nesting must not blow the stack
        let deep = "[".repeat(100_000);
        assert!(parse_content(&deep).is_err());
    }
}
