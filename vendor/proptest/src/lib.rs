//! Minimal offline stand-in for `proptest`.
//!
//! Provides the strategy-combinator surface this workspace uses
//! (ranges, `any`, regex-lite string patterns, `Just`, tuples,
//! `prop::collection::vec`, `prop_map` / `prop_flat_map`, `prop_oneof!`)
//! plus the `proptest!` test-harness macro. Inputs are drawn from a
//! deterministic per-test RNG, so failures are reproducible run to run.
//! There is no shrinking: a failing case reports its inputs' case index.
//!
//! Test tiers: case counts honor two environment variables —
//! `CI_FAST` caps every suite at 8 cases (the quick tier used by CI's
//! per-PR jobs), and `PROPTEST_CASES` overrides the count exactly
//! (used by the scheduled full tier).

use std::fmt;

/// Error carried out of a failing property body.
#[derive(Debug, Clone)]
pub struct TestCaseError(String);

impl TestCaseError {
    /// Build a failure with a message.
    pub fn fail(msg: impl Into<String>) -> TestCaseError {
        TestCaseError(msg.into())
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

/// Per-suite configuration (`#![proptest_config(...)]`).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Requested number of cases per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config running `cases` inputs per property.
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig { cases }
    }

    /// Number of cases after applying `CI_FAST` / `PROPTEST_CASES`.
    pub fn effective_cases(&self) -> u32 {
        if let Ok(v) = std::env::var("PROPTEST_CASES") {
            if let Ok(n) = v.trim().parse::<u32>() {
                return n.max(1);
            }
        }
        if std::env::var_os("CI_FAST").is_some() {
            return self.cases.min(8);
        }
        self.cases
    }
}

impl Default for ProptestConfig {
    fn default() -> ProptestConfig {
        ProptestConfig { cases: 256 }
    }
}

pub mod test_runner {
    //! Deterministic RNG driving input generation.

    /// SplitMix64-based generator, seeded from the test name so each
    /// property sees a stable stream across runs.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Seed deterministically from a test name.
        pub fn for_test(name: &str) -> TestRng {
            let mut seed = 0xcbf2_9ce4_8422_2325u64;
            for b in name.bytes() {
                seed ^= b as u64;
                seed = seed.wrapping_mul(0x1000_0000_01b3);
            }
            TestRng { state: seed }
        }

        /// Next 64 random bits.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Uniform in `[0, 1)`.
        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }

        /// Uniform in `[0, bound)`; `bound` must be nonzero.
        pub fn below(&mut self, bound: u128) -> u128 {
            debug_assert!(bound > 0);
            let wide = ((self.next_u64() as u128) << 64) | self.next_u64() as u128;
            wide % bound
        }
    }
}

pub mod strategy {
    //! The `Strategy` trait and its combinators.

    use super::test_runner::TestRng;
    use std::marker::PhantomData;
    use std::ops::{Range, RangeInclusive};

    /// A recipe for generating values of `Self::Value`.
    pub trait Strategy {
        /// The type of generated values.
        type Value;

        /// Draw one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Transform generated values with `f`.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { inner: self, f }
        }

        /// Generate a value, then generate from the strategy `f` builds from it.
        fn prop_flat_map<S2, F>(self, f: F) -> FlatMap<Self, F>
        where
            Self: Sized,
            S2: Strategy,
            F: Fn(Self::Value) -> S2,
        {
            FlatMap { inner: self, f }
        }

        /// Erase the concrete strategy type.
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            BoxedStrategy(Box::new(self))
        }
    }

    /// `prop_map` combinator.
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;
        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// `prop_flat_map` combinator.
    pub struct FlatMap<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
        type Value = S2::Value;
        fn generate(&self, rng: &mut TestRng) -> S2::Value {
            (self.f)(self.inner.generate(rng)).generate(rng)
        }
    }

    /// Always yields a clone of the given value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    trait DynStrategy<T> {
        fn generate_dyn(&self, rng: &mut TestRng) -> T;
    }

    impl<S: Strategy> DynStrategy<S::Value> for S {
        fn generate_dyn(&self, rng: &mut TestRng) -> S::Value {
            self.generate(rng)
        }
    }

    /// Type-erased strategy.
    pub struct BoxedStrategy<T>(Box<dyn DynStrategy<T>>);

    impl<T> Strategy for BoxedStrategy<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            self.0.generate_dyn(rng)
        }
    }

    /// Uniform choice between boxed alternatives (`prop_oneof!`).
    pub struct OneOf<T>(Vec<BoxedStrategy<T>>);

    impl<T> OneOf<T> {
        /// Build from at least one alternative.
        pub fn new(alternatives: Vec<BoxedStrategy<T>>) -> OneOf<T> {
            assert!(!alternatives.is_empty(), "prop_oneof! needs alternatives");
            OneOf(alternatives)
        }
    }

    impl<T> Strategy for OneOf<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            let idx = rng.below(self.0.len() as u128) as usize;
            self.0[idx].generate(rng)
        }
    }

    macro_rules! int_range_strategies {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let width = self.end as i128 - self.start as i128;
                    (self.start as i128 + rng.below(width as u128) as i128) as $t
                }
            }
            impl Strategy for RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty range strategy");
                    let width = hi as i128 - lo as i128 + 1;
                    (lo as i128 + rng.below(width as u128) as i128) as $t
                }
            }
        )*};
    }
    int_range_strategies!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    macro_rules! float_range_strategies {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (self.start as f64, self.end as f64);
                    (lo + rng.unit_f64() * (hi - lo)) as $t
                }
            }
        )*};
    }
    float_range_strategies!(f32, f64);

    // ---- regex-lite string strategies --------------------------------------

    enum Atom {
        /// Characters to choose from, with repetition bounds.
        Class {
            chars: Vec<char>,
            min: usize,
            max: usize,
        },
    }

    fn parse_pattern(pattern: &str) -> Vec<Atom> {
        let mut atoms = Vec::new();
        let mut chars = pattern.chars().peekable();
        while let Some(c) = chars.next() {
            let set: Vec<char> = if c == '[' {
                let mut set = Vec::new();
                loop {
                    let c = chars
                        .next()
                        .unwrap_or_else(|| panic!("unterminated class in `{pattern}`"));
                    if c == ']' {
                        break;
                    }
                    if chars.peek() == Some(&'-') {
                        let mut ahead = chars.clone();
                        ahead.next();
                        if let Some(&end) = ahead.peek() {
                            if end != ']' {
                                chars.next();
                                chars.next();
                                for v in c as u32..=end as u32 {
                                    set.extend(char::from_u32(v));
                                }
                                continue;
                            }
                        }
                    }
                    set.push(c);
                }
                set
            } else {
                vec![c]
            };
            let (min, max) = if chars.peek() == Some(&'{') {
                chars.next();
                let mut spec = String::new();
                for c in chars.by_ref() {
                    if c == '}' {
                        break;
                    }
                    spec.push(c);
                }
                if let Some((lo, hi)) = spec.split_once(',') {
                    (
                        lo.trim().parse().expect("bad quantifier"),
                        hi.trim().parse().expect("bad quantifier"),
                    )
                } else {
                    let n: usize = spec.trim().parse().expect("bad quantifier");
                    (n, n)
                }
            } else {
                (1, 1)
            };
            atoms.push(Atom::Class {
                chars: set,
                min,
                max,
            });
        }
        atoms
    }

    impl Strategy for &'static str {
        type Value = String;
        fn generate(&self, rng: &mut TestRng) -> String {
            let mut out = String::new();
            for Atom::Class { chars, min, max } in parse_pattern(self) {
                assert!(!chars.is_empty(), "empty character class in `{self}`");
                let count = min + rng.below((max - min + 1) as u128) as usize;
                for _ in 0..count {
                    out.push(chars[rng.below(chars.len() as u128) as usize]);
                }
            }
            out
        }
    }

    // ---- tuples of strategies ----------------------------------------------

    macro_rules! tuple_strategies {
        ($(($($idx:tt $s:ident),+)),+) => {$(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.generate(rng),)+)
                }
            }
        )+};
    }
    tuple_strategies!((0 A, 1 B), (0 A, 1 B, 2 C), (0 A, 1 B, 2 C, 3 D));

    // ---- any ---------------------------------------------------------------

    /// Types with a canonical full-domain strategy.
    pub trait ArbitraryValue {
        /// Draw an unconstrained value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    macro_rules! arbitrary_ints {
        ($($t:ty),*) => {$(
            impl ArbitraryValue for $t {
                fn arbitrary(rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }
    arbitrary_ints!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl ArbitraryValue for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    impl ArbitraryValue for f64 {
        fn arbitrary(rng: &mut TestRng) -> f64 {
            // finite, sign-symmetric, wide dynamic range
            (rng.unit_f64() - 0.5) * 2e18
        }
    }

    impl ArbitraryValue for f32 {
        fn arbitrary(rng: &mut TestRng) -> f32 {
            f64::arbitrary(rng) as f32
        }
    }

    /// Strategy produced by [`any`].
    pub struct Any<T>(PhantomData<T>);

    impl<T: ArbitraryValue> Strategy for Any<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// Full-domain strategy for `T`.
    pub fn any<T: ArbitraryValue>() -> Any<T> {
        Any(PhantomData)
    }
}

pub mod collection {
    //! Collection strategies.

    use super::strategy::Strategy;
    use super::test_runner::TestRng;
    use std::ops::{Range, RangeInclusive};

    /// Element-count bounds for collection strategies.
    #[derive(Debug, Clone)]
    pub struct SizeRange {
        /// Inclusive lower bound.
        pub min: usize,
        /// Inclusive upper bound.
        pub max: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> SizeRange {
            SizeRange { min: n, max: n }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> SizeRange {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                min: r.start,
                max: r.end - 1,
            }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> SizeRange {
            SizeRange {
                min: *r.start(),
                max: *r.end(),
            }
        }
    }

    /// Strategy generating `Vec`s of an element strategy.
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = self.size.max - self.size.min + 1;
            let len = self.size.min + rng.below(span as u128) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// `prop::collection::vec(element, size)`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }
}

/// Everything a property test file needs in scope.
pub mod prelude {
    pub use crate::collection;
    pub use crate::strategy::{any, BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::TestRng;
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest, ProptestConfig,
        TestCaseError,
    };

    /// `prop::collection::vec(...)`-style paths.
    pub mod prop {
        pub use crate::collection;
    }
}

// ---- macros ----------------------------------------------------------------

/// Fail the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return ::core::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: {}",
                stringify!($cond)
            )));
        }
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::core::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)*)));
        }
    };
}

/// Fail the current case unless the operands are equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return ::core::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
                stringify!($left),
                stringify!($right),
                l,
                r
            )));
        }
    }};
}

/// Fail the current case if the operands are equal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if *l == *r {
            return ::core::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: `{} != {}`\n  both: {:?}",
                stringify!($left),
                stringify!($right),
                l
            )));
        }
    }};
}

/// Uniform choice among strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::OneOf::new(vec![
            $($crate::strategy::Strategy::boxed($strat)),+
        ])
    };
}

/// Define property tests: each `#[test] fn name(pat in strategy, ...)`
/// runs its body against `cases` generated inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_body! { $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_body! { $crate::ProptestConfig::default(); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_body {
    ($cfg:expr; $(#[test] fn $name:ident($($pat:pat_param in $strat:expr),+ $(,)?) $body:block)*) => {
        $(
            #[test]
            fn $name() {
                let config: $crate::ProptestConfig = $cfg;
                let cases = config.effective_cases();
                let mut rng = $crate::test_runner::TestRng::for_test(concat!(
                    module_path!(),
                    "::",
                    stringify!($name)
                ));
                for case in 0..cases {
                    $(
                        let $pat = $crate::strategy::Strategy::generate(&($strat), &mut rng);
                    )+
                    let outcome: ::core::result::Result<(), $crate::TestCaseError> =
                        (move || {
                            $body
                            ::core::result::Result::Ok(())
                        })();
                    if let ::core::result::Result::Err(e) = outcome {
                        panic!(
                            "property `{}` failed on case {}/{}: {}",
                            stringify!($name),
                            case + 1,
                            cases,
                            e
                        );
                    }
                }
            }
        )*
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = TestRng::for_test("ranges");
        for _ in 0..500 {
            let v = (3usize..10).generate(&mut rng);
            assert!((3..10).contains(&v));
            let v = (1u32..=64).generate(&mut rng);
            assert!((1..=64).contains(&v));
            let f = (-2.0f64..2.0).generate(&mut rng);
            assert!((-2.0..2.0).contains(&f));
        }
    }

    #[test]
    fn string_patterns_match_shape() {
        let mut rng = TestRng::for_test("strings");
        for _ in 0..200 {
            let s = "[a-z][a-z0-9:_]{0,16}".generate(&mut rng);
            assert!(!s.is_empty() && s.len() <= 17);
            assert!(s.chars().next().unwrap().is_ascii_lowercase());
            assert!(s
                .chars()
                .all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == ':' || c == '_'));
            let t = "[a-z]{3,8}".generate(&mut rng);
            assert!((3..=8).contains(&t.len()));
        }
    }

    #[test]
    fn oneof_and_vec_compose() {
        let mut rng = TestRng::for_test("compose");
        let strat = collection::vec(prop_oneof![Just(1u8), Just(2u8)], 2..=5);
        for _ in 0..100 {
            let v = strat.generate(&mut rng);
            assert!((2..=5).contains(&v.len()));
            assert!(v.iter().all(|&x| x == 1 || x == 2));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn harness_runs_bodies((a, b) in (0u64..50, 0u64..50), s in "[a-c]{1,4}") {
            prop_assert!(a < 50 && b < 50);
            prop_assert_ne!(s.len(), 0);
            if a == b {
                return Ok(()); // early-success path must type-check
            }
            prop_assert_eq!(s.len(), s.chars().count());
        }
    }
}
