//! Minimal offline stand-in for `rayon`, now thread-backed.
//!
//! Provides a real work-splitting implementation of the small API surface
//! this workspace uses: [`join`], [`scope`], plus the convenience helpers
//! [`par_chunks`] and [`par_map`]. Work runs on a lazily-created global
//! pool (`available_parallelism() - 1` workers plus the calling thread),
//! scopes block until every spawned job finishes (work-helping while they
//! wait, so nested scopes cannot deadlock the fixed-size pool), and panics
//! from spawned jobs propagate to the scope caller via `resume_unwind`.
//!
//! The API intentionally mirrors rayon's `join`/`scope` shape so callers
//! don't change if the real dependency is ever restored.

use std::any::Any;
use std::collections::VecDeque;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, OnceLock};
use std::time::Duration;

type Job = Box<dyn FnOnce() + Send + 'static>;

/// Shared pool state: a FIFO queue drained by the workers and by threads
/// blocked in [`scope`] (work-helping).
struct PoolState {
    queue: Mutex<VecDeque<Job>>,
    available: Condvar,
}

struct Pool {
    state: Arc<PoolState>,
    workers: usize,
}

impl Pool {
    fn new(workers: usize) -> Pool {
        let state = Arc::new(PoolState {
            queue: Mutex::new(VecDeque::new()),
            available: Condvar::new(),
        });
        for i in 0..workers {
            let state = state.clone();
            std::thread::Builder::new()
                .name(format!("rayon-worker-{i}"))
                .spawn(move || worker_loop(&state))
                .expect("spawn rayon worker");
        }
        Pool { state, workers }
    }

    fn push(&self, job: Job) {
        let mut q = self.state.queue.lock().unwrap_or_else(|e| e.into_inner());
        q.push_back(job);
        drop(q);
        self.state.available.notify_one();
    }

    fn try_pop(&self) -> Option<Job> {
        let mut q = self.state.queue.lock().unwrap_or_else(|e| e.into_inner());
        q.pop_front()
    }
}

fn worker_loop(state: &PoolState) {
    loop {
        let job = {
            let mut q = state.queue.lock().unwrap_or_else(|e| e.into_inner());
            loop {
                if let Some(job) = q.pop_front() {
                    break job;
                }
                q = state.available.wait(q).unwrap_or_else(|e| e.into_inner());
            }
        };
        // A panicking job must not kill the worker; the panic payload is
        // captured by the owning scope's latch before the job box runs.
        let _ = catch_unwind(AssertUnwindSafe(job));
    }
}

fn pool() -> &'static Pool {
    static POOL: OnceLock<Pool> = OnceLock::new();
    POOL.get_or_init(|| {
        let n = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1);
        Pool::new(n.saturating_sub(1))
    })
}

/// Number of threads that can make progress concurrently: the pool workers
/// plus the calling thread (which work-helps while blocked in a scope).
pub fn current_num_threads() -> usize {
    pool().workers + 1
}

/// Completion latch for one scope: counts outstanding jobs and stores the
/// first panic payload observed.
struct Latch {
    remaining: AtomicUsize,
    done: Condvar,
    lock: Mutex<()>,
    panic: Mutex<Option<Box<dyn Any + Send>>>,
}

impl Latch {
    fn new() -> Latch {
        Latch {
            remaining: AtomicUsize::new(0),
            done: Condvar::new(),
            lock: Mutex::new(()),
            panic: Mutex::new(None),
        }
    }

    fn job_finished(&self, payload: Option<Box<dyn Any + Send>>) {
        if let Some(p) = payload {
            let mut slot = self.panic.lock().unwrap_or_else(|e| e.into_inner());
            if slot.is_none() {
                *slot = Some(p);
            }
        }
        if self.remaining.fetch_sub(1, Ordering::AcqRel) == 1 {
            let _g = self.lock.lock().unwrap_or_else(|e| e.into_inner());
            self.done.notify_all();
        }
    }
}

/// A scope for spawned work; every spawn is guaranteed to complete before
/// [`scope`] returns, which is what makes the `'s` borrows sound.
pub struct Scope<'s> {
    latch: Arc<Latch>,
    _marker: std::marker::PhantomData<&'s ()>,
}

impl<'s> Scope<'s> {
    /// Queue `f` on the pool. The closure may borrow from the enclosing
    /// scope (`'s`): the lifetime is erased when boxing the job, which is
    /// sound because `scope` blocks until the latch drains.
    pub fn spawn<F>(&self, f: F)
    where
        F: FnOnce(&Scope<'s>) + Send + 's,
    {
        self.latch.remaining.fetch_add(1, Ordering::AcqRel);
        let latch = self.latch.clone();
        let scope_copy = Scope {
            latch: self.latch.clone(),
            _marker: std::marker::PhantomData,
        };
        let job: Box<dyn FnOnce() + Send + 's> = Box::new(move || {
            let result = catch_unwind(AssertUnwindSafe(|| f(&scope_copy)));
            latch.job_finished(result.err());
        });
        // SAFETY: `scope` does not return until `latch.remaining` hits zero,
        // so every borrow with lifetime `'s` inside the job outlives the job.
        let job: Job = unsafe { std::mem::transmute(job) };
        pool().push(job);
    }
}

/// Create a scope, run `f`, and block until all spawned jobs complete.
/// While blocked, the calling thread helps drain the pool queue so nested
/// scopes on a saturated pool still make progress. The first panic from
/// `f` or any spawned job is re-raised here.
pub fn scope<'s, F, R>(f: F) -> R
where
    F: FnOnce(&Scope<'s>) -> R,
{
    let latch = Arc::new(Latch::new());
    let s = Scope {
        latch: latch.clone(),
        _marker: std::marker::PhantomData,
    };
    let result = catch_unwind(AssertUnwindSafe(|| f(&s)));

    // Work-help until every spawned job has finished.
    while latch.remaining.load(Ordering::Acquire) > 0 {
        if let Some(job) = pool().try_pop() {
            let _ = catch_unwind(AssertUnwindSafe(job));
        } else {
            let g = latch.lock.lock().unwrap_or_else(|e| e.into_inner());
            if latch.remaining.load(Ordering::Acquire) > 0 {
                // Short timeout: a job we could help with may appear in the
                // queue without this latch being notified.
                let _ = latch
                    .done
                    .wait_timeout(g, Duration::from_millis(1))
                    .unwrap_or_else(|e| e.into_inner());
            }
        }
    }

    let panicked = latch.panic.lock().unwrap_or_else(|e| e.into_inner()).take();
    match result {
        Ok(r) => {
            if let Some(p) = panicked {
                resume_unwind(p);
            }
            r
        }
        Err(p) => resume_unwind(p),
    }
}

/// Run both closures, potentially in parallel, and return both results.
pub fn join<A, B, RA, RB>(a: A, b: B) -> (RA, RB)
where
    A: FnOnce() -> RA + Send,
    B: FnOnce() -> RB + Send,
    RA: Send,
    RB: Send,
{
    let mut rb = None;
    let ra = scope(|s| {
        s.spawn(|_| rb = Some(b()));
        a()
    });
    (ra, rb.expect("join: spawned half completed"))
}

/// Map `f` over fixed-size chunks of `items` in parallel; results come back
/// in chunk order. `f` receives `(chunk_index, chunk)`. Chunk boundaries
/// are exactly `items.chunks(chunk_len)` regardless of thread count, so a
/// caller that splices the results reproduces the sequential output.
pub fn par_chunks<T, R, F>(items: &[T], chunk_len: usize, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &[T]) -> R + Sync,
{
    let chunk_len = chunk_len.max(1);
    let n_chunks = items.len().div_ceil(chunk_len);
    let mut out: Vec<Option<R>> = Vec::with_capacity(n_chunks);
    out.resize_with(n_chunks, || None);
    scope(|s| {
        for ((i, chunk), slot) in items.chunks(chunk_len).enumerate().zip(out.iter_mut()) {
            let f = &f;
            s.spawn(move |_| *slot = Some(f(i, chunk)));
        }
    });
    out.into_iter()
        .map(|r| r.expect("par_chunks: chunk completed"))
        .collect()
}

/// Map `f` over indices `0..n` in parallel, returning results in index
/// order. Splitting is depth-capped: at most `4 × current_num_threads()`
/// tasks are created, each covering a contiguous index range.
pub fn par_map<R, F>(n: usize, f: F) -> Vec<R>
where
    R: Send,
    F: Fn(usize) -> R + Sync,
{
    if n == 0 {
        return Vec::new();
    }
    let max_tasks = current_num_threads() * 4;
    let per_task = n.div_ceil(max_tasks).max(1);
    let n_tasks = n.div_ceil(per_task);
    let mut out: Vec<Vec<R>> = Vec::with_capacity(n_tasks);
    out.resize_with(n_tasks, Vec::new);
    scope(|s| {
        for (t, slot) in out.iter_mut().enumerate() {
            let f = &f;
            s.spawn(move |_| {
                let lo = t * per_task;
                let hi = ((t + 1) * per_task).min(n);
                *slot = (lo..hi).map(f).collect();
            });
        }
    });
    out.into_iter().flatten().collect()
}

/// Prelude matching `rayon::prelude` imports (empty: no parallel iterator
/// traits are used in this workspace).
pub mod prelude {}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU32;

    #[test]
    fn join_returns_both() {
        let (a, b) = join(|| 1 + 1, || "two");
        assert_eq!(a, 2);
        assert_eq!(b, "two");
    }

    #[test]
    fn join_nested() {
        let ((a, b), (c, d)) = join(|| join(|| 1, || 2), || join(|| 3, || 4));
        assert_eq!((a, b, c, d), (1, 2, 3, 4));
    }

    #[test]
    fn scope_runs_all_spawns() {
        let counter = AtomicU32::new(0);
        scope(|s| {
            for _ in 0..64 {
                s.spawn(|_| {
                    counter.fetch_add(1, Ordering::Relaxed);
                });
            }
        });
        assert_eq!(counter.load(Ordering::Relaxed), 64);
    }

    #[test]
    fn scope_spawns_can_nest() {
        let counter = AtomicU32::new(0);
        scope(|s| {
            for _ in 0..8 {
                s.spawn(|s| {
                    counter.fetch_add(1, Ordering::Relaxed);
                    s.spawn(|_| {
                        counter.fetch_add(1, Ordering::Relaxed);
                    });
                });
            }
        });
        assert_eq!(counter.load(Ordering::Relaxed), 16);
    }

    #[test]
    fn scope_borrows_stack_data() {
        let data = vec![1u64, 2, 3, 4];
        let mut sums = vec![0u64; 4];
        scope(|s| {
            for (slot, &v) in sums.iter_mut().zip(&data) {
                s.spawn(move |_| *slot = v * 10);
            }
        });
        assert_eq!(sums, vec![10, 20, 30, 40]);
    }

    #[test]
    fn spawn_panic_propagates() {
        let result = catch_unwind(AssertUnwindSafe(|| {
            scope(|s| {
                s.spawn(|_| panic!("boom"));
            });
        }));
        assert!(result.is_err());
        // the pool must still be usable afterwards
        let (a, b) = join(|| 5, || 6);
        assert_eq!(a + b, 11);
    }

    #[test]
    fn par_chunks_preserves_order() {
        let items: Vec<u32> = (0..1000).collect();
        let sums = par_chunks(&items, 64, |i, c| (i, c.iter().sum::<u32>()));
        assert_eq!(sums.len(), 16);
        for (k, (i, _)) in sums.iter().enumerate() {
            assert_eq!(k, *i);
        }
        let total: u32 = sums.iter().map(|(_, s)| s).sum();
        assert_eq!(total, 499_500);
    }

    #[test]
    fn par_map_matches_sequential() {
        let par = par_map(257, |i| i * i);
        let seq: Vec<usize> = (0..257).map(|i| i * i).collect();
        assert_eq!(par, seq);
    }

    #[test]
    fn par_map_empty() {
        let out: Vec<u8> = par_map(0, |_| 0u8);
        assert!(out.is_empty());
    }

    #[test]
    fn deep_nesting_does_not_deadlock() {
        // more nested scopes than pool threads: work-helping must drain them
        fn recurse(depth: usize) -> usize {
            if depth == 0 {
                return 1;
            }
            let (a, b) = join(|| recurse(depth - 1), || recurse(depth - 1));
            a + b
        }
        assert_eq!(recurse(6), 64);
    }
}
