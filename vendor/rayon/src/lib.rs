//! Minimal offline stand-in for `rayon`.
//!
//! No crate in this workspace currently calls into rayon (the dependency is
//! declared for future parallelism work), so this stub only provides
//! [`join`] and [`scope`] with *sequential* semantics. If real parallel
//! iterators are needed later, extend this crate or restore the real
//! dependency once the build environment has registry access.

/// Run both closures (sequentially here) and return both results.
pub fn join<A, B, RA, RB>(a: A, b: B) -> (RA, RB)
where
    A: FnOnce() -> RA,
    B: FnOnce() -> RB,
{
    (a(), b())
}

/// A scope for spawned work. The stub runs everything inline.
pub struct Scope<'s> {
    _marker: std::marker::PhantomData<&'s ()>,
}

impl<'s> Scope<'s> {
    /// Run `f` immediately (inline "spawn").
    pub fn spawn<F: FnOnce(&Scope<'s>)>(&self, f: F) {
        f(self);
    }
}

/// Create a scope; the stub executes spawns inline so the scope-exit
/// barrier is trivially satisfied.
pub fn scope<'s, F, R>(f: F) -> R
where
    F: FnOnce(&Scope<'s>) -> R,
{
    f(&Scope {
        _marker: std::marker::PhantomData,
    })
}

/// Prelude matching `rayon::prelude` imports (empty: no parallel iterator
/// traits are used in this workspace).
pub mod prelude {}
