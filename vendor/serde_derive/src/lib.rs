//! Offline stand-in for `serde_derive`.
//!
//! Generates `Serialize` / `Deserialize` impls for the simplified
//! content-tree model of the vendored `serde` stub. Supports exactly what
//! this workspace derives on: non-generic structs with named fields and
//! non-generic enums with unit, tuple, or struct variants — no `#[serde]`
//! attributes. The item is parsed directly from the raw token stream (no
//! `syn`/`quote`, which are unavailable offline) and the impl is assembled
//! as a source string.

use proc_macro::{Delimiter, TokenStream, TokenTree};

enum Fields {
    /// Named fields, in declaration order.
    Named(Vec<String>),
    /// Tuple fields (count only).
    Tuple(usize),
    /// No payload.
    Unit,
}

struct Variant {
    name: String,
    fields: Fields,
}

enum Item {
    Struct {
        name: String,
        fields: Vec<String>,
    },
    Enum {
        name: String,
        variants: Vec<Variant>,
    },
}

fn is_punct(tt: &TokenTree, ch: char) -> bool {
    matches!(tt, TokenTree::Punct(p) if p.as_char() == ch)
}

/// Skip any leading `#[...]` attributes starting at `i`.
fn skip_attrs(tokens: &[TokenTree], i: &mut usize) {
    while *i + 1 < tokens.len()
        && is_punct(&tokens[*i], '#')
        && matches!(&tokens[*i + 1], TokenTree::Group(g) if g.delimiter() == Delimiter::Bracket)
    {
        *i += 2;
    }
}

/// Skip `pub` / `pub(...)` starting at `i`.
fn skip_vis(tokens: &[TokenTree], i: &mut usize) {
    if matches!(&tokens[*i], TokenTree::Ident(id) if id.to_string() == "pub") {
        *i += 1;
        if *i < tokens.len()
            && matches!(&tokens[*i], TokenTree::Group(g) if g.delimiter() == Delimiter::Parenthesis)
        {
            *i += 1;
        }
    }
}

/// Advance past a type, stopping at a top-level `,` (angle brackets nest).
fn skip_type(tokens: &[TokenTree], i: &mut usize) {
    let mut depth = 0i32;
    while *i < tokens.len() {
        match &tokens[*i] {
            t if is_punct(t, '<') => depth += 1,
            t if is_punct(t, '>') => depth -= 1,
            t if is_punct(t, ',') && depth == 0 => return,
            _ => {}
        }
        *i += 1;
    }
}

/// Parse `name: Type, ...` named-field lists.
fn parse_named_fields(body: &[TokenTree]) -> Vec<String> {
    let mut fields = Vec::new();
    let mut i = 0;
    while i < body.len() {
        skip_attrs(body, &mut i);
        if i >= body.len() {
            break;
        }
        skip_vis(body, &mut i);
        let name = match &body[i] {
            TokenTree::Ident(id) => id.to_string(),
            other => panic!("serde_derive stub: expected field name, got `{other}`"),
        };
        i += 1;
        assert!(
            i < body.len() && is_punct(&body[i], ':'),
            "serde_derive stub: expected `:` after field `{name}`"
        );
        i += 1;
        skip_type(body, &mut i);
        i += 1; // consume the `,` (or run off the end)
        fields.push(name);
    }
    fields
}

/// Count top-level comma-separated types inside a tuple-variant payload.
fn count_tuple_fields(body: &[TokenTree]) -> usize {
    if body.is_empty() {
        return 0;
    }
    let mut count = 1;
    let mut depth = 0i32;
    for (idx, tt) in body.iter().enumerate() {
        if is_punct(tt, '<') {
            depth += 1;
        } else if is_punct(tt, '>') {
            depth -= 1;
        } else if is_punct(tt, ',') && depth == 0 {
            // ignore a trailing comma
            if idx + 1 < body.len() {
                count += 1;
            }
        }
    }
    count
}

fn parse_variants(body: &[TokenTree]) -> Vec<Variant> {
    let mut variants = Vec::new();
    let mut i = 0;
    while i < body.len() {
        skip_attrs(body, &mut i);
        if i >= body.len() {
            break;
        }
        let name = match &body[i] {
            TokenTree::Ident(id) => id.to_string(),
            other => panic!("serde_derive stub: expected variant name, got `{other}`"),
        };
        i += 1;
        let fields = if i < body.len() {
            match &body[i] {
                TokenTree::Group(g) if g.delimiter() == Delimiter::Parenthesis => {
                    let inner: Vec<TokenTree> = g.stream().into_iter().collect();
                    i += 1;
                    Fields::Tuple(count_tuple_fields(&inner))
                }
                TokenTree::Group(g) if g.delimiter() == Delimiter::Brace => {
                    let inner: Vec<TokenTree> = g.stream().into_iter().collect();
                    i += 1;
                    Fields::Named(parse_named_fields(&inner))
                }
                _ => Fields::Unit,
            }
        } else {
            Fields::Unit
        };
        if i < body.len() && is_punct(&body[i], ',') {
            i += 1;
        }
        variants.push(Variant { name, fields });
    }
    variants
}

fn parse_item(input: TokenStream) -> Item {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;
    skip_attrs(&tokens, &mut i);
    skip_vis(&tokens, &mut i);
    let kind = match &tokens[i] {
        TokenTree::Ident(id) => id.to_string(),
        other => panic!("serde_derive stub: expected `struct` or `enum`, got `{other}`"),
    };
    i += 1;
    let name = match &tokens[i] {
        TokenTree::Ident(id) => id.to_string(),
        other => panic!("serde_derive stub: expected type name, got `{other}`"),
    };
    i += 1;
    if i < tokens.len() && is_punct(&tokens[i], '<') {
        panic!("serde_derive stub: generic type `{name}` is not supported");
    }
    let body = match &tokens[i] {
        TokenTree::Group(g) if g.delimiter() == Delimiter::Brace => {
            g.stream().into_iter().collect::<Vec<TokenTree>>()
        }
        other => panic!(
            "serde_derive stub: only brace-bodied structs/enums are supported for `{name}`, got `{other}`"
        ),
    };
    match kind.as_str() {
        "struct" => Item::Struct {
            name,
            fields: parse_named_fields(&body),
        },
        "enum" => Item::Enum {
            name,
            variants: parse_variants(&body),
        },
        other => panic!("serde_derive stub: cannot derive for `{other}` items"),
    }
}

// ---- code generation -------------------------------------------------------

fn gen_struct_serialize(name: &str, fields: &[String], out: &mut String) {
    out.push_str(&format!(
        "impl ::serde::Serialize for {name} {{\n\
         fn serialize_content(&self) -> ::serde::Content {{\n\
         let mut __m: ::std::vec::Vec<(::std::string::String, ::serde::Content)> = ::std::vec::Vec::new();\n"
    ));
    for f in fields {
        out.push_str(&format!(
            "__m.push((::std::string::String::from(\"{f}\"), ::serde::Serialize::serialize_content(&self.{f})));\n"
        ));
    }
    out.push_str("::serde::Content::Map(__m)\n}\n}\n");
}

/// Emit the body that rebuilds named fields from a `Vec<(String, Content)>`
/// binding called `__fields`, producing a struct-literal body string.
fn gen_named_fields_rebuild(
    type_label: &str,
    fields: &[String],
    constructor: &str,
    out: &mut String,
) {
    for (idx, f) in fields.iter().enumerate() {
        out.push_str(&format!(
            "let mut __slot{idx}: ::std::option::Option<::serde::Content> = ::std::option::Option::None;\n"
        ));
        let _ = f;
    }
    out.push_str("for (__k, __v) in __fields {\nmatch __k.as_str() {\n");
    for (idx, f) in fields.iter().enumerate() {
        out.push_str(&format!(
            "\"{f}\" => __slot{idx} = ::std::option::Option::Some(__v),\n"
        ));
    }
    out.push_str("_ => {}\n}\n}\n");
    out.push_str(&format!("::std::result::Result::Ok({constructor} {{\n"));
    for (idx, f) in fields.iter().enumerate() {
        out.push_str(&format!(
            "{f}: match __slot{idx} {{\n\
             ::std::option::Option::Some(__v) => ::serde::Deserialize::deserialize_content(__v)?,\n\
             ::std::option::Option::None => ::serde::Deserialize::deserialize_content(::serde::Content::Null)\n\
             .map_err(|_| ::serde::Error::missing_field(\"{f}\", \"{type_label}\"))?,\n\
             }},\n"
        ));
    }
    out.push_str("})\n");
}

fn gen_struct_deserialize(name: &str, fields: &[String], out: &mut String) {
    out.push_str(&format!(
        "impl ::serde::Deserialize for {name} {{\n\
         fn deserialize_content(__c: ::serde::Content) -> ::std::result::Result<Self, ::serde::Error> {{\n\
         let __fields = match __c {{\n\
         ::serde::Content::Map(__m) => __m,\n\
         _ => return ::std::result::Result::Err(::serde::Error::custom(\"expected map for struct {name}\")),\n\
         }};\n"
    ));
    gen_named_fields_rebuild(name, fields, name, out);
    out.push_str("}\n}\n");
}

fn gen_enum_serialize(name: &str, variants: &[Variant], out: &mut String) {
    out.push_str(&format!(
        "impl ::serde::Serialize for {name} {{\n\
         fn serialize_content(&self) -> ::serde::Content {{\n\
         match self {{\n"
    ));
    for v in variants {
        let vn = &v.name;
        match &v.fields {
            Fields::Unit => out.push_str(&format!(
                "{name}::{vn} => ::serde::Content::Str(::std::string::String::from(\"{vn}\")),\n"
            )),
            Fields::Tuple(1) => out.push_str(&format!(
                "{name}::{vn}(__a0) => ::serde::Content::Map(::std::vec![(::std::string::String::from(\"{vn}\"), ::serde::Serialize::serialize_content(__a0))]),\n"
            )),
            Fields::Tuple(n) => {
                let pats: Vec<String> = (0..*n).map(|i| format!("__a{i}")).collect();
                let sers: Vec<String> = pats
                    .iter()
                    .map(|p| format!("::serde::Serialize::serialize_content({p})"))
                    .collect();
                out.push_str(&format!(
                    "{name}::{vn}({}) => ::serde::Content::Map(::std::vec![(::std::string::String::from(\"{vn}\"), ::serde::Content::Seq(::std::vec![{}]))]),\n",
                    pats.join(", "),
                    sers.join(", ")
                ));
            }
            Fields::Named(fs) => {
                let pats = fs.join(", ");
                let entries: Vec<String> = fs
                    .iter()
                    .map(|f| {
                        format!(
                            "(::std::string::String::from(\"{f}\"), ::serde::Serialize::serialize_content({f}))"
                        )
                    })
                    .collect();
                out.push_str(&format!(
                    "{name}::{vn} {{ {pats} }} => ::serde::Content::Map(::std::vec![(::std::string::String::from(\"{vn}\"), ::serde::Content::Map(::std::vec![{}]))]),\n",
                    entries.join(", ")
                ));
            }
        }
    }
    out.push_str("}\n}\n}\n");
}

fn gen_enum_deserialize(name: &str, variants: &[Variant], out: &mut String) {
    out.push_str(&format!(
        "impl ::serde::Deserialize for {name} {{\n\
         fn deserialize_content(__c: ::serde::Content) -> ::std::result::Result<Self, ::serde::Error> {{\n\
         match __c {{\n\
         ::serde::Content::Str(__s) => match __s.as_str() {{\n"
    ));
    for v in variants {
        if matches!(v.fields, Fields::Unit) {
            let vn = &v.name;
            out.push_str(&format!(
                "\"{vn}\" => ::std::result::Result::Ok({name}::{vn}),\n"
            ));
        }
    }
    out.push_str(&format!(
        "__other => ::std::result::Result::Err(::serde::Error::custom(::std::format!(\"unknown unit variant `{{__other}}` for enum {name}\"))),\n\
         }},\n\
         ::serde::Content::Map(__m) => {{\n\
         let mut __it = __m.into_iter();\n\
         let __pair = __it.next();\n\
         if __it.next().is_some() {{\n\
         return ::std::result::Result::Err(::serde::Error::custom(\"expected single-key map for enum {name}\"));\n\
         }}\n\
         let (__k, __v) = match __pair {{\n\
         ::std::option::Option::Some(__p) => __p,\n\
         ::std::option::Option::None => return ::std::result::Result::Err(::serde::Error::custom(\"expected single-key map for enum {name}\")),\n\
         }};\n\
         match __k.as_str() {{\n"
    ));
    for v in variants {
        let vn = &v.name;
        match &v.fields {
            Fields::Unit => {
                // also accept {"Variant": null}
                out.push_str(&format!(
                    "\"{vn}\" => match __v {{\n\
                     ::serde::Content::Null => ::std::result::Result::Ok({name}::{vn}),\n\
                     _ => ::std::result::Result::Err(::serde::Error::custom(\"unit variant {vn} takes no payload\")),\n\
                     }},\n"
                ));
            }
            Fields::Tuple(1) => out.push_str(&format!(
                "\"{vn}\" => ::std::result::Result::Ok({name}::{vn}(::serde::Deserialize::deserialize_content(__v)?)),\n"
            )),
            Fields::Tuple(n) => {
                let des: Vec<String> = (0..*n)
                    .map(|_| {
                        "::serde::Deserialize::deserialize_content(__seq.next().ok_or_else(|| ::serde::Error::custom(\"tuple variant too short\"))?)?".to_string()
                    })
                    .collect();
                out.push_str(&format!(
                    "\"{vn}\" => match __v {{\n\
                     ::serde::Content::Seq(__items) if __items.len() == {n} => {{\n\
                     let mut __seq = __items.into_iter();\n\
                     ::std::result::Result::Ok({name}::{vn}({}))\n\
                     }},\n\
                     _ => ::std::result::Result::Err(::serde::Error::custom(\"expected {n}-element sequence for variant {vn}\")),\n\
                     }},\n",
                    des.join(", ")
                ));
            }
            Fields::Named(fs) => {
                out.push_str(&format!(
                    "\"{vn}\" => {{\n\
                     let __fields = match __v {{\n\
                     ::serde::Content::Map(__m2) => __m2,\n\
                     _ => return ::std::result::Result::Err(::serde::Error::custom(\"expected map payload for variant {vn}\")),\n\
                     }};\n"
                ));
                gen_named_fields_rebuild(
                    &format!("{name}::{vn}"),
                    fs,
                    &format!("{name}::{vn}"),
                    out,
                );
                out.push_str("},\n");
            }
        }
    }
    out.push_str(&format!(
        "__other => ::std::result::Result::Err(::serde::Error::custom(::std::format!(\"unknown variant `{{__other}}` for enum {name}\"))),\n\
         }}\n\
         }},\n\
         _ => ::std::result::Result::Err(::serde::Error::custom(\"expected string or map for enum {name}\")),\n\
         }}\n\
         }}\n\
         }}\n"
    ));
}

/// Derive `serde::Serialize` (stub content model).
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let mut out = String::new();
    match parse_item(input) {
        Item::Struct { name, fields } => gen_struct_serialize(&name, &fields, &mut out),
        Item::Enum { name, variants } => gen_enum_serialize(&name, &variants, &mut out),
    }
    out.parse()
        .expect("serde_derive stub: generated invalid Rust")
}

/// Derive `serde::Deserialize` (stub content model).
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let mut out = String::new();
    match parse_item(input) {
        Item::Struct { name, fields } => gen_struct_deserialize(&name, &fields, &mut out),
        Item::Enum { name, variants } => gen_enum_deserialize(&name, &variants, &mut out),
    }
    out.parse()
        .expect("serde_derive stub: generated invalid Rust")
}
