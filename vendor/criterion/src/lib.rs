//! Minimal offline stand-in for `criterion`.
//!
//! Implements the API surface the workspace's benches use:
//! `Criterion::default().sample_size(n)`, `benchmark_group`,
//! `bench_function` / `bench_with_input`, `Throughput`, `BenchmarkId`,
//! and the `criterion_group!` / `criterion_main!` macros. Measurement
//! is a plain wall-clock mean ± std over `sample_size` timed samples
//! (after a small warm-up), printed one line per benchmark — no HTML
//! reports, no statistical regression analysis.

use std::fmt;
use std::hint::black_box as std_black_box;
use std::time::{Duration, Instant};

/// Prevent the optimizer from discarding a benchmarked value.
pub fn black_box<T>(x: T) -> T {
    std_black_box(x)
}

/// Top-level benchmark driver.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Criterion {
        Criterion { sample_size: 20 }
    }
}

impl Criterion {
    /// Set how many timed samples each benchmark collects.
    pub fn sample_size(mut self, n: usize) -> Criterion {
        self.sample_size = n.max(2);
        self
    }

    /// Open a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        let sample_size = self.sample_size;
        println!("\ngroup: {name}");
        BenchmarkGroup {
            _criterion: self,
            name,
            sample_size,
            throughput: None,
        }
    }
}

/// Units processed per iteration, for rate reporting.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Bytes handled per iteration.
    Bytes(u64),
    /// Logical elements handled per iteration.
    Elements(u64),
}

/// A benchmark identifier of the form `function/parameter`.
pub struct BenchmarkId {
    full: String,
}

impl BenchmarkId {
    /// Combine a function name and a parameter value.
    pub fn new(function: impl Into<String>, parameter: impl fmt::Display) -> BenchmarkId {
        BenchmarkId {
            full: format!("{}/{}", function.into(), parameter),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> BenchmarkId {
        BenchmarkId {
            full: s.to_string(),
        }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> BenchmarkId {
        BenchmarkId { full: s }
    }
}

/// A group of benchmarks sharing sample size and throughput settings.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Attach a throughput so results also report a rate.
    pub fn throughput(&mut self, throughput: Throughput) {
        self.throughput = Some(throughput);
    }

    /// Run a benchmark with no explicit input.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut b = Bencher::new(self.sample_size);
        f(&mut b);
        self.report(&id.full, &b);
        self
    }

    /// Run a benchmark parameterized by `input`.
    pub fn bench_with_input<I, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let id = id.into();
        let mut b = Bencher::new(self.sample_size);
        f(&mut b, input);
        self.report(&id.full, &b);
        self
    }

    /// Close the group.
    pub fn finish(self) {}

    fn report(&self, id: &str, b: &Bencher) {
        let (mean, sd) = b.mean_std();
        let rate = match self.throughput {
            Some(Throughput::Bytes(n)) if mean > 0.0 => {
                format!("  {:>8.1} MiB/s", n as f64 / (1 << 20) as f64 / mean)
            }
            Some(Throughput::Elements(n)) if mean > 0.0 => {
                format!("  {:>8.1} elem/s", n as f64 / mean)
            }
            _ => String::new(),
        };
        println!(
            "  {:<40} {:>12} ± {:>10}{rate}",
            format!("{}/{id}", self.name),
            format_duration(mean),
            format_duration(sd),
        );
    }
}

/// Times a closure over the configured number of samples.
pub struct Bencher {
    sample_size: usize,
    samples: Vec<f64>,
}

impl Bencher {
    fn new(sample_size: usize) -> Bencher {
        Bencher {
            sample_size,
            samples: Vec::new(),
        }
    }

    /// Measure `routine`: one warm-up call, then `sample_size` timed calls.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        black_box(routine());
        self.samples.clear();
        self.samples.reserve(self.sample_size);
        for _ in 0..self.sample_size {
            let start = Instant::now();
            black_box(routine());
            self.samples.push(start.elapsed().as_secs_f64());
        }
    }

    fn mean_std(&self) -> (f64, f64) {
        if self.samples.is_empty() {
            return (0.0, 0.0);
        }
        let n = self.samples.len() as f64;
        let mean = self.samples.iter().sum::<f64>() / n;
        let var = if self.samples.len() > 1 {
            self.samples.iter().map(|s| (s - mean).powi(2)).sum::<f64>() / (n - 1.0)
        } else {
            0.0
        };
        (mean, var.sqrt())
    }
}

fn format_duration(secs: f64) -> String {
    let d = Duration::from_secs_f64(secs.max(0.0));
    if d.as_secs() >= 1 {
        format!("{:.3} s", secs)
    } else if d.as_millis() >= 1 {
        format!("{:.3} ms", secs * 1e3)
    } else if d.as_micros() >= 1 {
        format!("{:.3} µs", secs * 1e6)
    } else {
        format!("{:.1} ns", secs * 1e9)
    }
}

/// Declare a benchmark group: both the `name/config/targets` form and the
/// plain list form expand to a function running every target.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group! {
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        }
    };
}

/// Generate `main` invoking each declared group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_bench(c: &mut Criterion) {
        let mut group = c.benchmark_group("shim");
        group.throughput(Throughput::Bytes(1024));
        group.bench_function("sum", |b| b.iter(|| (0u64..100).sum::<u64>()));
        group.bench_with_input(BenchmarkId::new("scaled", 3), &3u64, |b, &k| {
            b.iter(|| (0u64..100).map(|x| x * k).sum::<u64>())
        });
        group.finish();
    }

    criterion_group! {
        name = benches;
        config = Criterion::default().sample_size(5);
        targets = tiny_bench
    }

    #[test]
    fn harness_runs() {
        benches();
    }
}
