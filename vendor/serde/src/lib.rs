//! Minimal offline stand-in for `serde`.
//!
//! The real serde pipes values through a visitor-based streaming data model;
//! this stand-in materializes a [`Content`] tree instead, which is all the
//! workspace needs (JSON round-trips of plain structs and enums — no
//! attributes, no generics, no zero-copy). The `Serialize` / `Deserialize`
//! derive macros come from the sibling `serde_derive` stub and target the
//! same externally-tagged representation the real serde_json produces:
//!
//! - struct           → map of fields
//! - unit variant     → `"Variant"`
//! - 1-tuple variant  → `{"Variant": value}`
//! - n-tuple variant  → `{"Variant": [v0, v1, ...]}`
//! - struct variant   → `{"Variant": {field: value, ...}}`
//! - `Option`         → `null` / value

pub use serde_derive::{Deserialize, Serialize};

use std::collections::{BTreeMap, HashMap};
use std::fmt;

/// A materialized serialization tree (the simplified data model).
#[derive(Debug, Clone, PartialEq)]
pub enum Content {
    /// JSON `null` (also `Option::None`).
    Null,
    /// Boolean.
    Bool(bool),
    /// Signed integer.
    I64(i64),
    /// Unsigned integer (used when the value exceeds `i64::MAX`).
    U64(u64),
    /// Floating point.
    F64(f64),
    /// String.
    Str(String),
    /// Sequence.
    Seq(Vec<Content>),
    /// Map with string keys, preserving insertion order.
    Map(Vec<(String, Content)>),
}

/// Serialization/deserialization error: a plain message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error(pub String);

impl Error {
    /// Build an error from any message.
    pub fn custom(msg: impl fmt::Display) -> Error {
        Error(msg.to_string())
    }

    /// Error for a struct field absent from the input.
    pub fn missing_field(field: &str, ty: &str) -> Error {
        Error(format!("missing field `{field}` while deserializing {ty}"))
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for Error {}

/// Convert a value into a [`Content`] tree.
pub trait Serialize {
    /// Materialize the value.
    fn serialize_content(&self) -> Content;
}

/// Rebuild a value from a [`Content`] tree.
pub trait Deserialize: Sized {
    /// Parse the value, consuming the tree.
    fn deserialize_content(content: Content) -> Result<Self, Error>;
}

fn type_error(expected: &str, got: &Content) -> Error {
    let name = match got {
        Content::Null => "null",
        Content::Bool(_) => "bool",
        Content::I64(_) | Content::U64(_) => "integer",
        Content::F64(_) => "float",
        Content::Str(_) => "string",
        Content::Seq(_) => "sequence",
        Content::Map(_) => "map",
    };
    Error(format!("expected {expected}, got {name}"))
}

// ---- primitive impls -------------------------------------------------------

impl Serialize for bool {
    fn serialize_content(&self) -> Content {
        Content::Bool(*self)
    }
}

impl Deserialize for bool {
    fn deserialize_content(c: Content) -> Result<bool, Error> {
        match c {
            Content::Bool(b) => Ok(b),
            other => Err(type_error("bool", &other)),
        }
    }
}

macro_rules! signed_impls {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize_content(&self) -> Content {
                Content::I64(*self as i64)
            }
        }
        impl Deserialize for $t {
            fn deserialize_content(c: Content) -> Result<$t, Error> {
                let wide: i128 = match c {
                    Content::I64(v) => v as i128,
                    Content::U64(v) => v as i128,
                    Content::F64(v) if v.fract() == 0.0 && v.abs() < 2f64.powi(63) => v as i128,
                    other => return Err(type_error("integer", &other)),
                };
                <$t>::try_from(wide).map_err(|_| Error::custom(concat!("integer out of range for ", stringify!($t))))
            }
        }
    )*};
}
signed_impls!(i8, i16, i32, i64, isize);

macro_rules! unsigned_impls {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize_content(&self) -> Content {
                let v = *self as u64;
                if v <= i64::MAX as u64 {
                    Content::I64(v as i64)
                } else {
                    Content::U64(v)
                }
            }
        }
        impl Deserialize for $t {
            fn deserialize_content(c: Content) -> Result<$t, Error> {
                let wide: u128 = match c {
                    Content::I64(v) if v >= 0 => v as u128,
                    Content::U64(v) => v as u128,
                    Content::F64(v) if v.fract() == 0.0 && v >= 0.0 && v < 2f64.powi(64) => v as u128,
                    other => return Err(type_error("unsigned integer", &other)),
                };
                <$t>::try_from(wide).map_err(|_| Error::custom(concat!("integer out of range for ", stringify!($t))))
            }
        }
    )*};
}
unsigned_impls!(u8, u16, u32, u64, usize);

impl Serialize for f64 {
    fn serialize_content(&self) -> Content {
        Content::F64(*self)
    }
}

impl Deserialize for f64 {
    fn deserialize_content(c: Content) -> Result<f64, Error> {
        match c {
            Content::F64(v) => Ok(v),
            Content::I64(v) => Ok(v as f64),
            Content::U64(v) => Ok(v as f64),
            other => Err(type_error("float", &other)),
        }
    }
}

impl Serialize for f32 {
    fn serialize_content(&self) -> Content {
        Content::F64(*self as f64)
    }
}

impl Deserialize for f32 {
    fn deserialize_content(c: Content) -> Result<f32, Error> {
        f64::deserialize_content(c).map(|v| v as f32)
    }
}

impl Serialize for String {
    fn serialize_content(&self) -> Content {
        Content::Str(self.clone())
    }
}

impl Deserialize for String {
    fn deserialize_content(c: Content) -> Result<String, Error> {
        match c {
            Content::Str(s) => Ok(s),
            other => Err(type_error("string", &other)),
        }
    }
}

impl Serialize for str {
    fn serialize_content(&self) -> Content {
        Content::Str(self.to_string())
    }
}

impl Serialize for char {
    fn serialize_content(&self) -> Content {
        Content::Str(self.to_string())
    }
}

impl Deserialize for char {
    fn deserialize_content(c: Content) -> Result<char, Error> {
        match &c {
            Content::Str(s) if s.chars().count() == 1 => Ok(s.chars().next().unwrap()),
            other => Err(type_error("single-character string", other)),
        }
    }
}

// ---- container impls -------------------------------------------------------

impl<T: Serialize + ?Sized> Serialize for &T {
    fn serialize_content(&self) -> Content {
        (**self).serialize_content()
    }
}

impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn serialize_content(&self) -> Content {
        (**self).serialize_content()
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn deserialize_content(c: Content) -> Result<Box<T>, Error> {
        T::deserialize_content(c).map(Box::new)
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn serialize_content(&self) -> Content {
        match self {
            None => Content::Null,
            Some(v) => v.serialize_content(),
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn deserialize_content(c: Content) -> Result<Option<T>, Error> {
        match c {
            Content::Null => Ok(None),
            other => T::deserialize_content(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn serialize_content(&self) -> Content {
        Content::Seq(self.iter().map(Serialize::serialize_content).collect())
    }
}

impl<T: Serialize> Serialize for [T] {
    fn serialize_content(&self) -> Content {
        Content::Seq(self.iter().map(Serialize::serialize_content).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn deserialize_content(c: Content) -> Result<Vec<T>, Error> {
        match c {
            Content::Seq(items) => items.into_iter().map(T::deserialize_content).collect(),
            other => Err(type_error("sequence", &other)),
        }
    }
}

impl<V: Serialize> Serialize for BTreeMap<String, V> {
    fn serialize_content(&self) -> Content {
        Content::Map(
            self.iter()
                .map(|(k, v)| (k.clone(), v.serialize_content()))
                .collect(),
        )
    }
}

impl<V: Deserialize> Deserialize for BTreeMap<String, V> {
    fn deserialize_content(c: Content) -> Result<BTreeMap<String, V>, Error> {
        match c {
            Content::Map(entries) => entries
                .into_iter()
                .map(|(k, v)| Ok((k, V::deserialize_content(v)?)))
                .collect(),
            other => Err(type_error("map", &other)),
        }
    }
}

impl<V: Serialize> Serialize for HashMap<String, V> {
    fn serialize_content(&self) -> Content {
        // sort for deterministic output, matching BTreeMap behavior
        let mut entries: Vec<(&String, &V)> = self.iter().collect();
        entries.sort_by(|a, b| a.0.cmp(b.0));
        Content::Map(
            entries
                .into_iter()
                .map(|(k, v)| (k.clone(), v.serialize_content()))
                .collect(),
        )
    }
}

impl<V: Deserialize> Deserialize for HashMap<String, V> {
    fn deserialize_content(c: Content) -> Result<HashMap<String, V>, Error> {
        match c {
            Content::Map(entries) => entries
                .into_iter()
                .map(|(k, v)| Ok((k, V::deserialize_content(v)?)))
                .collect(),
            other => Err(type_error("map", &other)),
        }
    }
}

macro_rules! tuple_impls {
    ($(($($idx:tt $t:ident),+)),+) => {$(
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn serialize_content(&self) -> Content {
                Content::Seq(vec![$(self.$idx.serialize_content()),+])
            }
        }
        impl<$($t: Deserialize),+> Deserialize for ($($t,)+) {
            fn deserialize_content(c: Content) -> Result<($($t,)+), Error> {
                match c {
                    Content::Seq(items) => {
                        let mut it = items.into_iter();
                        let out = ($(
                            $t::deserialize_content(
                                it.next().ok_or_else(|| Error::custom("tuple too short"))?,
                            )?,
                        )+);
                        if it.next().is_some() {
                            return Err(Error::custom("tuple too long"));
                        }
                        Ok(out)
                    }
                    other => Err(type_error("sequence (tuple)", &other)),
                }
            }
        }
    )+};
}
tuple_impls!((0 A), (0 A, 1 B), (0 A, 1 B, 2 C), (0 A, 1 B, 2 C, 3 D));
