//! Minimal offline stand-in for `crossbeam`.
//!
//! Only `crossbeam::channel::{unbounded, Sender, Receiver}` is used in this
//! workspace (the worker-pool queue). `std::sync::mpsc` provides the same
//! semantics for that surface: clonable senders, blocking `recv`, iteration
//! that ends when every sender is dropped.

pub mod channel {
    //! MPMC-ish channel surface backed by `std::sync::mpsc` (MPSC, which is
    //! all the queue needs: many producers, one consumer per receiver).

    pub use std::sync::mpsc::{RecvError, RecvTimeoutError, SendError, TryRecvError};

    /// Sending half (clonable).
    pub type Sender<T> = std::sync::mpsc::Sender<T>;

    /// Receiving half.
    pub type Receiver<T> = std::sync::mpsc::Receiver<T>;

    /// Create an unbounded channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        std::sync::mpsc::channel()
    }
}

#[cfg(test)]
mod tests {
    use super::channel::unbounded;

    #[test]
    fn channel_round_trip_and_disconnect() {
        let (tx, rx) = unbounded::<u32>();
        let tx2 = tx.clone();
        std::thread::spawn(move || tx2.send(1).unwrap());
        tx.send(2).unwrap();
        drop(tx);
        let mut got: Vec<u32> = rx.iter().collect();
        got.sort_unstable();
        assert_eq!(got, vec![1, 2]);
    }
}
