//! # libpressio-predict
//!
//! Facade crate for the Rust reproduction of **"LibPressio-Predict:
//! Flexible and Fast Infrastructure For Inferring Compression
//! Performance"** (Underwood, Rahman, Di, Jin, Khan, Cappello — SC-W 2023).
//!
//! This crate re-exports the workspace so applications can depend on one
//! name:
//!
//! - [`core`] — options, data buffers, compressor/metrics plugin traits,
//!   deterministic option hashing.
//! - [`lossless`] — bitstreams, Huffman, LZSS, RLE, entropy tools.
//! - [`sz`] / [`zfp`] — pure-Rust SZ3-like and ZFP-like error-bounded
//!   compressors.
//! - [`dataset`] — stackable dataset-loading pipeline + the synthetic
//!   Hurricane Isabel generator.
//! - [`stats`] — regression, splines, random forests, SVD, k-fold,
//!   conformal intervals.
//! - [`predict`] — the prediction framework: features, predictors, scheme
//!   registry, invalidation-aware evaluation.
//! - [`bench_infra`] — checkpoint store, fault-tolerant task queue, and
//!   the Table 2 experiment driver.
//! - [`obs`] — structured tracing and metrics: spans, counters/gauges,
//!   JSONL event traces, aggregate reports.
//!
//! See `examples/quickstart.rs` for the Figure-4 flow end to end, and the
//! `pressio-bench` crate for the binaries that regenerate every table and
//! figure of the paper.

pub use pressio_bench_infra as bench_infra;
pub use pressio_core as core;
pub use pressio_dataset as dataset;
pub use pressio_lossless as lossless;
pub use pressio_obs as obs;
pub use pressio_predict as predict;
pub use pressio_stats as stats;
pub use pressio_stream as stream;
pub use pressio_sz as sz;
pub use pressio_zfp as zfp;

/// Workspace version, for reporting in experiment metadata.
pub const VERSION: &str = env!("CARGO_PKG_VERSION");

#[cfg(test)]
mod tests {
    #[test]
    fn reexports_are_wired() {
        let schemes = crate::predict::standard_schemes();
        assert!(schemes.len() >= 7);
        let compressors = crate::predict::standard_compressors();
        assert_eq!(compressors.names(), vec!["sz3", "zfp"]);
        assert!(!crate::VERSION.is_empty());
    }
}
