//! Fuzz the ZFP container decoder: `decompress` must reject corrupt
//! streams with an error — never a panic — for any mutation of a valid
//! container, across both container versions and all three rate-control
//! modes. Cases derive deterministically from a seed (see
//! `pressio_core::fuzz`); `PRESSIO_FUZZ_ITERS` deepens nightly runs.

use pressio_core::fuzz::Fuzzer;
use pressio_core::{Compressor, Data, Dtype, Options};
use pressio_zfp::ZfpCompressor;

/// Deterministic synthetic field: smooth signal plus seeded noise.
fn synth(n: usize, seed: u64) -> Vec<f64> {
    let mut s = seed | 1;
    (0..n)
        .map(|i| {
            s = s
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let noise = (s >> 11) as f64 / (1u64 << 53) as f64 - 0.5;
            (i as f64 * 0.017).cos() * 5.0 + noise * 0.3
        })
        .collect()
}

const DIMS: [&[usize]; 3] = [&[130], &[20, 20], &[8, 8, 8]];

fn field(dims: &[usize], f32_input: bool) -> (Data, Dtype) {
    let n: usize = dims.iter().product();
    let values = synth(n, 7);
    if f32_input {
        (
            Data::from_f32(
                dims.to_vec(),
                values.into_iter().map(|v| v as f32).collect(),
            ),
            Dtype::F32,
        )
    } else {
        (Data::from_f64(dims.to_vec(), values), Dtype::F64)
    }
}

/// Valid containers across all modes, dtypes, and ranks — including a
/// legacy v1 stream — so mutations reach the mode-specific header fields
/// (precision planes, rate budget) and both version branches.
fn corpus() -> Vec<Vec<u8>> {
    let mut out = Vec::new();
    for dims in DIMS {
        for f32_input in [false, true] {
            let (data, _) = field(dims, f32_input);
            for mode_opts in [
                Options::new()
                    .with("zfp:mode", "accuracy")
                    .with("pressio:abs", 1e-3),
                Options::new()
                    .with("zfp:mode", "precision")
                    .with("zfp:precision", 20u64),
                Options::new()
                    .with("zfp:mode", "rate")
                    .with("zfp:rate", 8.0),
            ] {
                let mut zfp = ZfpCompressor::new();
                zfp.set_options(&mode_opts).unwrap();
                out.push(zfp.compress(&data).unwrap());
            }
            let zfp = ZfpCompressor::new();
            out.push(zfp.compress_v1(&data).unwrap());
        }
    }
    out
}

#[test]
fn decompress_never_panics_on_mutated_containers() {
    let corpus = corpus();
    let zfp = ZfpCompressor::new();
    Fuzzer::from_env(600).run(&corpus, |case| {
        // the caller-supplied dtype/dims bound every output allocation,
        // so a corrupt header can only produce Err — try several shapes
        // so both the match and mismatch paths run against each case
        for dims in DIMS {
            for dtype in [Dtype::F32, Dtype::F64] {
                let _ = zfp.decompress(case, dtype, dims);
            }
        }
    });
}

#[test]
fn unmutated_corpus_round_trips() {
    // sanity for the corpus itself: every seed stream decompresses back
    // to its original shape with the matching dtype
    let zfp = ZfpCompressor::new();
    for dims in DIMS {
        for f32_input in [false, true] {
            let (data, dtype) = field(dims, f32_input);
            for bytes in [
                {
                    let mut z = ZfpCompressor::new();
                    z.set_options(&Options::new().with("pressio:abs", 1e-3))
                        .unwrap();
                    z.compress(&data).unwrap()
                },
                zfp.compress_v1(&data).unwrap(),
            ] {
                let out = zfp
                    .decompress(&bytes, dtype, dims)
                    .expect("corpus stream decodes");
                assert_eq!(out.dims(), dims);
            }
        }
    }
}
