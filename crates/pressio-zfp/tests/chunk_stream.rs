//! Streaming chunk entry points: independent chunks are byte-identical to
//! whole-buffer compression of the same chunk, and chained (temporal-delta)
//! mode preserves the absolute error bound across carried state.

use pressio_core::chunking::{concat_outer, last_outer_slice, slice_outer, OuterChunks};
use pressio_core::{Compressor, Data, Options};
use pressio_zfp::ZfpCompressor;

/// Correlated multi-timestep field: smooth base + slow temporal drift.
fn correlated_field(nx: usize, ny: usize, timesteps: usize) -> Data {
    let mut vals = Vec::with_capacity(nx * ny * timesteps);
    for t in 0..timesteps {
        let phase = t as f64 * 0.15;
        for y in 0..ny {
            for x in 0..nx {
                let fx = x as f64 / nx as f64;
                let fy = y as f64 / ny as f64;
                vals.push(
                    (fx * 6.0 + phase).sin() * (fy * 4.0).cos() + 0.3 * phase.cos() + fx * fy,
                );
            }
        }
    }
    Data::from_f64(vec![nx, ny, timesteps], vals)
}

#[test]
fn independent_chunk_encode_matches_whole_buffer_compress() {
    let abs = 1e-4;
    let mut codec = ZfpCompressor::new();
    codec
        .set_options(&Options::new().with("pressio:abs", abs))
        .unwrap();
    let data = correlated_field(12, 10, 7);
    for (start, count) in OuterChunks::new(7, 3).unwrap() {
        let chunk = slice_outer(&data, start, count).unwrap();
        let (streamed, _) = codec.encode_chunk(&chunk, None).unwrap();
        let whole = codec.compress(&chunk).unwrap();
        assert_eq!(streamed, whole, "chunk at {start} diverged from one-shot");
        let dec = codec
            .decode_chunk(&streamed, chunk.dtype(), chunk.dims(), None)
            .unwrap();
        for (a, b) in chunk
            .as_f64()
            .unwrap()
            .iter()
            .zip(dec.as_f64().unwrap().iter())
        {
            assert!((a - b).abs() <= abs, "bound violated: |{a} - {b}| > {abs}");
        }
    }
}

#[test]
fn chained_mode_preserves_abs_bound_and_state_parity() {
    let abs = 1e-3;
    let mut codec = ZfpCompressor::new();
    codec
        .set_options(&Options::new().with("pressio:abs", abs))
        .unwrap();
    let data = correlated_field(10, 8, 9);
    // residual + carried-slice addition can each round once
    let slack = abs * 1.01 + 1e-12;

    let mut enc_carried: Option<Data> = None;
    let mut dec_carried: Option<Data> = None;
    let mut decoded_chunks = Vec::new();
    for (start, count) in OuterChunks::new(9, 4).unwrap() {
        let chunk = slice_outer(&data, start, count).unwrap();
        let (comp, enc_decoded) = codec.encode_chunk(&chunk, enc_carried.as_ref()).unwrap();
        let dec = codec
            .decode_chunk(&comp, chunk.dtype(), chunk.dims(), dec_carried.as_ref())
            .unwrap();
        // encoder and decoder reconstruct bit-identical state
        assert_eq!(enc_decoded.to_le_bytes(), dec.to_le_bytes());
        enc_carried = Some(last_outer_slice(&enc_decoded).unwrap());
        dec_carried = Some(last_outer_slice(&dec).unwrap());
        decoded_chunks.push(dec);
    }
    let reconstructed = concat_outer(&decoded_chunks).unwrap();
    let orig = data.to_f64_vec();
    let dec = reconstructed.to_f64_vec();
    let mut worst = 0.0f64;
    for (a, b) in orig.iter().zip(dec.iter()) {
        worst = worst.max((a - b).abs());
    }
    assert!(
        worst <= slack,
        "chained abs bound violated: {worst} > {slack}"
    );
}
