//! Property-based parity for the chunked (v2) ZFP container: parallel
//! encodes must be **byte-identical** to sequential ones for arbitrary
//! dims/dtypes/bounds/modes, parallel decodes must reproduce sequential
//! decodes bit-for-bit, and legacy v1 streams must keep decoding to the
//! same values the v2 path produces.

use pressio_core::{Compressor, Data, Dtype, Options};
use pressio_zfp::ZfpCompressor;
use proptest::prelude::*;
use proptest::strategy;

/// 1-D shapes span multiple 256-block chunks (4 values/block); 2-D and 3-D
/// shapes cover partial blocks and single-chunk fall-through.
fn dims_strategy() -> strategy::OneOf<Vec<usize>> {
    prop_oneof![
        (200usize..4100).prop_map(|n| vec![n]),
        ((5usize..80), (5usize..80)).prop_map(|(a, b)| vec![a, b]),
        ((3usize..18), (3usize..18), (3usize..18)).prop_map(|(a, b, c)| vec![a, b, c]),
    ]
}

/// Deterministic synthetic field: smooth signal plus seeded noise.
fn synth(n: usize, seed: u64) -> Vec<f64> {
    let mut s = seed | 1;
    (0..n)
        .map(|i| {
            s = s
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let noise = (s >> 11) as f64 / (1u64 << 53) as f64 - 0.5;
            (i as f64 * 0.013).sin() * 10.0 + noise * 0.2
        })
        .collect()
}

fn make_data(dims: &[usize], seed: u64, f32_input: bool) -> (Data, Dtype) {
    let n: usize = dims.iter().product();
    let values = synth(n, seed);
    if f32_input {
        (
            Data::from_f32(
                dims.to_vec(),
                values.into_iter().map(|v| v as f32).collect(),
            ),
            Dtype::F32,
        )
    } else {
        (Data::from_f64(dims.to_vec(), values), Dtype::F64)
    }
}

fn zfp_with(mode: &str, abs: f64, threads: u64) -> ZfpCompressor {
    let mut zfp = ZfpCompressor::new();
    zfp.set_options(
        &Options::new()
            .with("zfp:mode", mode)
            .with("pressio:abs", abs)
            .with("pressio:nthreads", threads),
    )
    .unwrap();
    zfp
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn parallel_encode_is_byte_identical(
        dims in dims_strategy(),
        seed in any::<u64>(),
        f32_input in any::<bool>(),
        eb_exp in 2u32..6,
        mode_pick in 0usize..3,
    ) {
        let (data, dtype) = make_data(&dims, seed, f32_input);
        let abs = 10f64.powi(-(eb_exp as i32));
        let mode = ["accuracy", "precision", "rate"][mode_pick];

        let sequential = zfp_with(mode, abs, 1).compress(&data).unwrap();
        let reference = zfp_with(mode, abs, 1)
            .decompress(&sequential, dtype, &dims)
            .unwrap();
        for threads in [2u64, 3, 7] {
            let zfp = zfp_with(mode, abs, threads);
            let parallel = zfp.compress(&data).unwrap();
            prop_assert!(
                parallel == sequential,
                "{threads}-thread encode differs from sequential \
                 (dims {dims:?}, mode {mode}, {} vs {} bytes)",
                parallel.len(),
                sequential.len()
            );
            let decoded = zfp.decompress(&parallel, dtype, &dims).unwrap();
            prop_assert!(
                decoded == reference,
                "{threads}-thread decode differs from sequential (dims {dims:?})"
            );
        }
    }

    #[test]
    fn v2_decode_matches_v1_era_decode(
        dims in dims_strategy(),
        seed in any::<u64>(),
        f32_input in any::<bool>(),
        eb_exp in 2u32..6,
    ) {
        let (data, dtype) = make_data(&dims, seed, f32_input);
        let zfp = zfp_with("accuracy", 10f64.powi(-(eb_exp as i32)), 0);
        // a legacy stream written by the v1 (continuous-bitstream) encoder
        // must decode to exactly what the chunked v2 stream decodes to
        let legacy = zfp.compress_v1(&data).unwrap();
        let chunked = zfp.compress(&data).unwrap();
        prop_assert!(legacy[4] == 1 && chunked[4] == 2, "container versions");
        let from_legacy = zfp.decompress(&legacy, dtype, &dims).unwrap();
        let from_chunked = zfp.decompress(&chunked, dtype, &dims).unwrap();
        prop_assert!(
            from_legacy == from_chunked,
            "v1 and v2 decodes diverge (dims {dims:?})"
        );
    }
}
