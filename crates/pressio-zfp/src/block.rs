//! Per-block coding: fixed-point promotion, decorrelating transform,
//! negabinary mapping, and embedded bit-plane coding with group testing —
//! the ZFP pipeline, supporting fixed-accuracy, fixed-precision, and
//! fixed-rate modes.

use crate::transform::{
    bitplanes, degree_order, fwd_xform, inv_xform, negabinary_slice, negabinary_to_int_slice,
    transpose64,
};
use pressio_lossless::{BitReader, BitWriter};

/// Fraction bits of the per-block fixed-point representation. 52 bits
/// leave ~2^(P−e_max−6) of slack below any tolerance the cutoff admits, so
/// the inverse transform's right-shift rounding (tens of fixed-point ULPs
/// in the worst case) cannot breach the accuracy guarantee; the i64 budget
/// is 52 fraction + ~2 transform growth + 1 negabinary + guard < 63.
const P: i64 = 52;
/// Bit planes carried through the embedded coder (fraction bits + transform
/// growth + negabinary headroom).
pub const INTPREC: u32 = 58;
/// Exponent bias for the 12-bit block exponent field.
const E_BIAS: i64 = 2048;

/// Compression mode for the ZFP-like codec.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Mode {
    /// Absolute error tolerance (ZFP fixed-accuracy).
    Accuracy(f64),
    /// Number of bit planes kept per block (ZFP fixed-precision).
    Precision(u32),
    /// Bits per value (ZFP fixed-rate); every block gets exactly
    /// `rate × 4^d` bits.
    Rate(f64),
}

/// Block coding error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BlockError(pub &'static str);

impl std::fmt::Display for BlockError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "zfp block error: {}", self.0)
    }
}

impl std::error::Error for BlockError {}

fn block_exponent(values: &[f64]) -> i64 {
    let max = values.iter().fold(0.0f64, |m, &v| m.max(v.abs()));
    if max == 0.0 {
        return i64::MIN;
    }
    // smallest e with max < 2^e
    let mut e = max.log2().floor() as i64 + 1;
    // guard against rounding at exact powers of two
    while max >= (2.0f64).powi(e as i32) {
        e += 1;
    }
    e
}

/// Lowest encoded bit plane for a mode, given the block exponent and block
/// dimensionality. Deterministic on both sides of the stream.
fn plane_cutoff(mode: Mode, e_max: i64, d: usize) -> u32 {
    match mode {
        Mode::Accuracy(tol) => {
            // dropping planes below k leaves per-coefficient error < 2^k in
            // fixed point = 2^(e_max - P + k) absolute; the inverse
            // transform can amplify by ~2^d, plus rounding slack
            let k = (tol.log2().floor() as i64) + P - e_max - d as i64 - 2;
            k.clamp(0, INTPREC as i64) as u32
        }
        Mode::Precision(p) => INTPREC.saturating_sub(p),
        Mode::Rate(_) => 0,
    }
}

/// Budget in bits for one block under `mode` (None = unbounded).
pub fn block_bit_budget(mode: Mode, d: usize) -> Option<usize> {
    match mode {
        Mode::Rate(r) => Some(((r * (1usize << (2 * d)) as f64).ceil() as usize).max(16)),
        _ => None,
    }
}

/// Encode one 4^d block of `values` (length `4^d`). Bits are appended to
/// `w`; in rate mode the block is zero-padded to exactly the budget.
pub fn encode_block(values: &[f64], d: usize, mode: Mode, w: &mut BitWriter) {
    let size = 1usize << (2 * d);
    debug_assert_eq!(values.len(), size);
    let start_bits = w.len_bits();
    let mut budget = block_bit_budget(mode, d);
    if values.iter().any(|v| !v.is_finite()) {
        // raw escape: 2-bit tag 0b10, then 64-bit images
        write_budgeted(w, 0b01, 2, &mut budget); // LSB-first: tag bits 1,0
        for &v in values {
            write_budgeted(w, v.to_bits(), 64, &mut budget);
        }
        pad_to_budget(w, start_bits, mode, d);
        return;
    }
    let e_max = block_exponent(values);
    if e_max == i64::MIN {
        // all-zero block: tag 0b00
        write_budgeted(w, 0b00, 2, &mut budget);
        pad_to_budget(w, start_bits, mode, d);
        return;
    }
    // coded block: tag 0b11? keep tags: 0=zero, 1=raw, 2=coded
    write_budgeted(w, 0b10, 2, &mut budget); // value 2 LSB-first
    write_budgeted(w, (e_max + E_BIAS) as u64, 12, &mut budget);
    // fixed point
    let scale = (2.0f64).powi((P - e_max) as i32);
    let mut ints: Vec<i64> = values.iter().map(|&v| (v * scale).round() as i64).collect();
    fwd_xform(&mut ints, d);
    let order = degree_order(d);
    // negabinary-map all coefficients lane-wise, then permute into
    // total-degree order (same integer results as mapping after the gather)
    let mut neg = vec![0u64; size];
    negabinary_slice(&ints, &mut neg);
    let coeffs: Vec<u64> = order.iter().map(|&i| neg[i]).collect();
    let k_stop = plane_cutoff(mode, e_max, d);
    encode_planes(&coeffs, k_stop, w, &mut budget);
    pad_to_budget(w, start_bits, mode, d);
}

fn write_budgeted(w: &mut BitWriter, v: u64, n: u32, budget: &mut Option<usize>) {
    match budget {
        None => w.write_bits(v, n),
        Some(b) => {
            let take = (n as usize).min(*b) as u32;
            w.write_bits(v & mask(take), take);
            *b -= take as usize;
        }
    }
}

#[inline]
fn mask(n: u32) -> u64 {
    if n >= 64 {
        u64::MAX
    } else {
        (1u64 << n) - 1
    }
}

fn pad_to_budget(w: &mut BitWriter, start_bits: usize, mode: Mode, d: usize) {
    if let Some(total) = block_bit_budget(mode, d) {
        let written = w.len_bits() - start_bits;
        for _ in written..total {
            w.write_bit(false);
        }
    }
}

/// Embedded bit-plane encoder (ZFP's `encode_ints`): per plane, the bits of
/// already-significant coefficients are sent verbatim, then the remaining
/// positions are sent with group testing + unary run-length coding.
fn encode_planes(coeffs: &[u64], k_stop: u32, w: &mut BitWriter, budget: &mut Option<usize>) {
    let size = coeffs.len();
    // one bit-matrix transpose yields every plane at once; `planes[k]`
    // bit `i` = `coeffs[i]` bit `k`, exactly what the old per-plane
    // gather produced (pinned by `bitplanes_matches_scalar_reference`)
    let planes = bitplanes(coeffs);
    let mut n = 0usize; // number of significant coefficients so far
    let mut k = INTPREC;
    while k > k_stop {
        k -= 1;
        if matches!(budget, Some(0)) {
            break;
        }
        let mut x = planes[k as usize];
        // step 2: verbatim bits for significant coefficients
        let m = match budget {
            None => n,
            Some(b) => n.min(*b),
        };
        w.write_bits(x & mask(m as u32), m as u32);
        if let Some(b) = budget {
            *b -= m;
        }
        x = if m >= 64 { 0 } else { x >> m };
        // step 3: group testing for the rest
        loop {
            if n >= size || !consume(budget) {
                break;
            }
            let more = x != 0;
            w.write_bit(more);
            if !more {
                break;
            }
            // unary scan: emit zeros up to the next 1 bit; the 1 itself (or
            // the implied 1 at the final position) is consumed by the
            // increment below, mirroring the decoder exactly
            while n < size - 1 && consume(budget) {
                let bit = x & 1 == 1;
                w.write_bit(bit);
                if bit {
                    break;
                }
                x >>= 1;
                n += 1;
            }
            x >>= 1;
            n += 1;
        }
    }
}

#[inline]
fn consume(budget: &mut Option<usize>) -> bool {
    match budget {
        None => true,
        Some(0) => false,
        Some(b) => {
            *b -= 1;
            true
        }
    }
}

/// Decode one block previously written by [`encode_block`].
pub fn decode_block(r: &mut BitReader, d: usize, mode: Mode) -> Result<Vec<f64>, BlockError> {
    let size = 1usize << (2 * d);
    let start_pos = r.bit_position();
    let mut budget = block_bit_budget(mode, d);
    let tag = read_budgeted(r, 2, &mut budget).ok_or(BlockError("truncated tag"))?;
    let out = match tag {
        0b00 => Ok(vec![0.0; size]),
        0b01 => {
            let mut vals = Vec::with_capacity(size);
            for _ in 0..size {
                let bits =
                    read_budgeted(r, 64, &mut budget).ok_or(BlockError("truncated raw block"))?;
                vals.push(f64::from_bits(bits));
            }
            Ok(vals)
        }
        0b10 => {
            let e_biased =
                read_budgeted(r, 12, &mut budget).ok_or(BlockError("truncated exponent"))?;
            let e_max = e_biased as i64 - E_BIAS;
            if !(-1100..=1100).contains(&e_max) {
                return Err(BlockError("implausible block exponent"));
            }
            let k_stop = plane_cutoff(mode, e_max, d);
            let coeffs = decode_planes(size, k_stop, r, &mut budget)?;
            let order = degree_order(d);
            // undo the total-degree permutation, then negabinary-unmap the
            // whole block lane-wise (same integer results as per-element)
            let mut neg = vec![0u64; size];
            for (pos, &i) in order.iter().enumerate() {
                neg[i] = coeffs[pos];
            }
            let mut ints = vec![0i64; size];
            negabinary_to_int_slice(&neg, &mut ints);
            inv_xform(&mut ints, d);
            let scale = (2.0f64).powi((e_max - P) as i32);
            Ok(ints.iter().map(|&q| q as f64 * scale).collect())
        }
        _ => Err(BlockError("unknown block tag")),
    }?;
    // skip rate-mode padding so the next block starts on budget
    if let Some(total) = block_bit_budget(mode, d) {
        let consumed = r.bit_position() - start_pos;
        for _ in consumed..total {
            r.read_bit().ok_or(BlockError("truncated padding"))?;
        }
    }
    Ok(out)
}

fn read_budgeted(r: &mut BitReader, n: u32, budget: &mut Option<usize>) -> Option<u64> {
    match budget {
        None => r.read_bits(n),
        Some(b) => {
            let take = (n as usize).min(*b) as u32;
            *b -= take as usize;
            // short reads return what fits, zero-extended (mirrors encoder)
            r.read_bits(take)
        }
    }
}

/// Mirror of [`encode_planes`].
fn decode_planes(
    size: usize,
    k_stop: u32,
    r: &mut BitReader,
    budget: &mut Option<usize>,
) -> Result<Vec<u64>, BlockError> {
    let mut planes = [0u64; 64];
    let mut n = 0usize;
    let mut k = INTPREC;
    while k > k_stop {
        k -= 1;
        if matches!(budget, Some(0)) {
            break;
        }
        let m = match budget {
            None => n,
            Some(b) => n.min(*b),
        };
        let mut x_full = r.read_bits(m as u32).ok_or(BlockError("truncated plane"))?;
        if let Some(b) = budget {
            *b -= m;
        }
        loop {
            if n >= size || !consume(budget) {
                break;
            }
            let more = r.read_bit().ok_or(BlockError("truncated group bit"))?;
            if !more {
                break;
            }
            while n < size - 1 && consume(budget) {
                let bit = r.read_bit().ok_or(BlockError("truncated run"))?;
                if bit {
                    break;
                }
                n += 1;
            }
            x_full |= 1u64 << n;
            n += 1;
        }
        planes[k as usize] = x_full;
    }
    // a single transpose scatters every received plane back into
    // per-coefficient values (replaces the old per-plane bit deposit)
    transpose64(&mut planes);
    Ok(planes[..size].to_vec())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn smooth_block(d: usize, seed: f64) -> Vec<f64> {
        let size = 1usize << (2 * d);
        (0..size)
            .map(|i| {
                let x = (i & 3) as f64;
                let y = ((i >> 2) & 3) as f64;
                let z = ((i >> 4) & 3) as f64;
                (x * 0.3 + seed).sin() + (y * 0.2).cos() * 0.5 + z * 0.1
            })
            .collect()
    }

    fn round_trip(values: &[f64], d: usize, mode: Mode) -> Vec<f64> {
        let mut w = BitWriter::new();
        encode_block(values, d, mode, &mut w);
        let bytes = w.into_bytes();
        let mut r = BitReader::new(&bytes);
        decode_block(&mut r, d, mode).unwrap()
    }

    #[test]
    fn accuracy_mode_respects_tolerance() {
        for d in 1..=3usize {
            for tol in [1e-1, 1e-3, 1e-6] {
                let values = smooth_block(d, 0.7);
                let out = round_trip(&values, d, Mode::Accuracy(tol));
                for (v, o) in values.iter().zip(&out) {
                    assert!(
                        (v - o).abs() <= tol,
                        "d={d} tol={tol}: |{v} - {o}| = {}",
                        (v - o).abs()
                    );
                }
            }
        }
    }

    #[test]
    fn accuracy_mode_random_data() {
        let mut state = 99u64;
        let mut next = || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state >> 11) as f64 / (1u64 << 53) as f64 * 200.0 - 100.0
        };
        for d in 1..=3usize {
            let size = 1usize << (2 * d);
            for tol in [1e-2, 1e-5] {
                for _ in 0..20 {
                    let values: Vec<f64> = (0..size).map(|_| next()).collect();
                    let out = round_trip(&values, d, Mode::Accuracy(tol));
                    for (v, o) in values.iter().zip(&out) {
                        assert!((v - o).abs() <= tol, "d={d} tol={tol}");
                    }
                }
            }
        }
    }

    #[test]
    fn zero_block_is_two_bits() {
        let values = vec![0.0; 16];
        let mut w = BitWriter::new();
        encode_block(&values, 2, Mode::Accuracy(1e-6), &mut w);
        assert_eq!(w.len_bits(), 2);
        let bytes = w.into_bytes();
        let mut r = BitReader::new(&bytes);
        assert_eq!(
            decode_block(&mut r, 2, Mode::Accuracy(1e-6)).unwrap(),
            values
        );
    }

    #[test]
    fn non_finite_blocks_round_trip_exactly() {
        let mut values = smooth_block(2, 0.1);
        values[3] = f64::NAN;
        values[7] = f64::NEG_INFINITY;
        let out = round_trip(&values, 2, Mode::Accuracy(1e-3));
        for (v, o) in values.iter().zip(&out) {
            if v.is_nan() {
                assert!(o.is_nan());
            } else {
                assert_eq!(v, o);
            }
        }
    }

    #[test]
    fn rate_mode_hits_exact_budget() {
        let values = smooth_block(2, 0.5);
        for rate in [4.0, 8.0, 16.0] {
            let mut w = BitWriter::new();
            encode_block(&values, 2, Mode::Rate(rate), &mut w);
            assert_eq!(w.len_bits(), block_bit_budget(Mode::Rate(rate), 2).unwrap());
        }
    }

    #[test]
    fn rate_mode_round_trips_with_bounded_quality_loss() {
        let values = smooth_block(3, 0.2);
        let out = round_trip(&values, 3, Mode::Rate(16.0));
        // 16 bits/value on smooth data should reconstruct quite accurately
        for (v, o) in values.iter().zip(&out) {
            assert!((v - o).abs() < 0.05, "|{v}-{o}|");
        }
    }

    #[test]
    fn higher_rate_means_higher_fidelity() {
        let values = smooth_block(2, 0.9);
        let err = |rate: f64| {
            let out = round_trip(&values, 2, Mode::Rate(rate));
            values
                .iter()
                .zip(&out)
                .map(|(v, o)| (v - o).abs())
                .fold(0.0f64, f64::max)
        };
        let e4 = err(4.0);
        let e12 = err(12.0);
        assert!(e12 < e4, "rate 12 err {e12} !< rate 4 err {e4}");
    }

    #[test]
    fn precision_mode_monotone() {
        let values = smooth_block(2, 1.3);
        let err = |p: u32| {
            let out = round_trip(&values, 2, Mode::Precision(p));
            values
                .iter()
                .zip(&out)
                .map(|(v, o)| (v - o).abs())
                .fold(0.0f64, f64::max)
        };
        assert!(err(30) <= err(10));
        assert!(err(10) <= err(4) + 1e-12);
    }

    #[test]
    fn tiny_values_under_tolerance_become_cheap() {
        let values = vec![1e-12; 16];
        let mut w = BitWriter::new();
        encode_block(&values, 2, Mode::Accuracy(1e-3), &mut w);
        // whole block is below tolerance: header only, no planes
        assert!(w.len_bits() <= 14, "bits = {}", w.len_bits());
        let bytes = w.into_bytes();
        let mut r = BitReader::new(&bytes);
        let out = decode_block(&mut r, 2, Mode::Accuracy(1e-3)).unwrap();
        for (v, o) in values.iter().zip(&out) {
            assert!((v - o).abs() <= 1e-3);
        }
    }

    #[test]
    fn truncated_stream_errors() {
        let values = smooth_block(2, 0.4);
        let mut w = BitWriter::new();
        encode_block(&values, 2, Mode::Accuracy(1e-6), &mut w);
        let bytes = w.into_bytes();
        let mut r = BitReader::new(&bytes[..2]);
        assert!(decode_block(&mut r, 2, Mode::Accuracy(1e-6)).is_err());
    }

    #[test]
    fn smooth_blocks_compress_below_raw() {
        let values = smooth_block(3, 0.8);
        let mut w = BitWriter::new();
        encode_block(&values, 3, Mode::Accuracy(1e-4), &mut w);
        let raw_bits = 64 * values.len();
        assert!(
            w.len_bits() < raw_bits / 2,
            "coded {} bits vs raw {raw_bits}",
            w.len_bits()
        );
    }
}
