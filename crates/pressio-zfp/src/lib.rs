//! # pressio-zfp
//!
//! A pure-Rust, ZFP-like transform codec for floating-point arrays
//! (Lindstrom 2014 architecture): the volume is tiled into 4^d blocks, each
//! block is promoted to block-floating-point integers, decorrelated with the
//! lifting transform, mapped to negabinary, and coded plane by plane with
//! embedded group testing ([`transform`], [`block`]).
//!
//! Three modes mirror ZFP's: **fixed-accuracy** (`pressio:abs`),
//! **fixed-precision** (`zfp:precision` bit planes), and **fixed-rate**
//! (`zfp:rate` bits/value, constant-size blocks). Fixed-accuracy guarantees
//! the point-wise absolute error bound on finite data.
//!
//! ```
//! use pressio_core::{Compressor, Data, Dtype, Options};
//! use pressio_zfp::ZfpCompressor;
//!
//! let data = Data::from_f32(vec![64, 64],
//!     (0..4096).map(|i| (i as f32 * 0.01).sin()).collect());
//! let mut zfp = ZfpCompressor::new();
//! zfp.set_options(&Options::new().with("pressio:abs", 1e-3)).unwrap();
//! let compressed = zfp.compress(&data).unwrap();
//! let restored = zfp.decompress(&compressed, Dtype::F32, &[64, 64]).unwrap();
//! for (a, b) in data.as_f32().unwrap().iter().zip(restored.as_f32().unwrap()) {
//!     assert!((a - b).abs() <= 1e-3);
//! }
//! ```

#![warn(missing_docs)]

pub mod block;
pub mod transform;

pub use block::Mode;

use pressio_core::error::{Error, Result};
use pressio_core::metrics::invalidations;
use pressio_core::{Compressor, Data, Dtype, Options};
use pressio_lossless::{BitReader, BitWriter};

const MAGIC: &[u8; 4] = b"ZFRS";
/// Legacy container: one continuous bitstream after the header.
const VERSION_V1: u8 = 1;
/// Chunked container: per-chunk payload lengths enable parallel decode.
const VERSION: u8 = 2;

/// Blocks per chunk in the v2 container. This is a *format* constant —
/// chunk boundaries never depend on the thread count, which is what makes
/// parallel and sequential encodes byte-identical.
pub const CHUNK_BLOCKS: usize = 256;

/// The ZFP-like compressor plugin (`id = "zfp"`).
///
/// Recognized options:
/// - `pressio:abs` (`f64`, default `1e-4`) — tolerance for accuracy mode.
/// - `zfp:mode` (`"accuracy" | "precision" | "rate"`, default `"accuracy"`).
/// - `zfp:precision` (`u64`, planes, default 24) — precision mode only.
/// - `zfp:rate` (`f64`, bits/value, default 8.0) — rate mode only.
/// - `pressio:nthreads` (`u64`, default 0 = auto) — intra-task threads;
///   `1` forces the sequential path, output is identical either way.
#[derive(Clone, Debug)]
pub struct ZfpCompressor {
    abs: f64,
    /// Optional value-range-relative tolerance (`pressio:rel`): the
    /// effective tolerance becomes `rel × (max − min)` per buffer — the
    /// normalization the paper's footnote 6 discusses.
    rel: Option<f64>,
    mode: String,
    precision: u32,
    rate: f64,
    nthreads: Option<usize>,
}

impl Default for ZfpCompressor {
    fn default() -> Self {
        ZfpCompressor {
            abs: 1e-4,
            rel: None,
            mode: "accuracy".to_string(),
            precision: 24,
            rate: 8.0,
            nthreads: None,
        }
    }
}

impl ZfpCompressor {
    /// Compressor with default settings (accuracy mode, `abs = 1e-4`).
    pub fn new() -> Self {
        Self::default()
    }

    /// Streaming entry point: encode one outer-axis chunk, optionally
    /// chained on the previous chunk's last *decoded* slice. Returns the
    /// compressed bytes plus the decoded reconstruction — the frame layer
    /// checksums it and carries its last slice into the next chunk.
    pub fn encode_chunk(&self, chunk: &Data, carried: Option<&Data>) -> Result<(Vec<u8>, Data)> {
        pressio_core::chunking::encode_chunk_stateful(self, chunk, carried)
    }

    /// Streaming decode mirror of [`ZfpCompressor::encode_chunk`].
    pub fn decode_chunk(
        &self,
        compressed: &[u8],
        dtype: Dtype,
        dims: &[usize],
        carried: Option<&Data>,
    ) -> Result<Data> {
        pressio_core::chunking::decode_chunk_stateful(self, compressed, dtype, dims, carried)
    }

    fn effective_mode(&self, values: &[f64]) -> Mode {
        match self.mode.as_str() {
            "precision" => Mode::Precision(self.precision),
            "rate" => Mode::Rate(self.rate),
            _ => {
                let abs = match self.rel {
                    Some(rel) => {
                        let (mut lo, mut hi) = (f64::INFINITY, f64::NEG_INFINITY);
                        for &v in values {
                            if v.is_finite() {
                                lo = lo.min(v);
                                hi = hi.max(v);
                            }
                        }
                        let range = hi - lo;
                        if range.is_finite() && range > 0.0 {
                            rel * range
                        } else {
                            self.abs
                        }
                    }
                    None => self.abs,
                };
                Mode::Accuracy(abs)
            }
        }
    }
}

/// Collapse an arbitrary-rank shape to at most 3 dims (fastest first),
/// multiplying the excess into the last — same convention as `pressio-sz`.
fn collapse_dims(dims: &[usize]) -> Vec<usize> {
    match dims.len() {
        0 => vec![0],
        1..=3 => dims.to_vec(),
        _ => {
            let mut v = dims[..2].to_vec();
            v.push(dims[2..].iter().product());
            v
        }
    }
}

/// Gather one 4^d block at block coordinates `(bx, by, bz)`, replicating
/// edge values into the padding of partial blocks (ZFP's strategy keeps the
/// transform well-behaved at boundaries).
fn gather_block(
    values: &[f64],
    nd: &[usize],
    d: usize,
    bx: usize,
    by: usize,
    bz: usize,
) -> Vec<f64> {
    let size = 1usize << (2 * d);
    let nx = nd[0];
    let ny = *nd.get(1).unwrap_or(&1);
    let nz = *nd.get(2).unwrap_or(&1);
    let mut out = Vec::with_capacity(size);
    let zr = if d >= 3 { 4 } else { 1 };
    let yr = if d >= 2 { 4 } else { 1 };
    for dz in 0..zr {
        let z = (bz * 4 + dz).min(nz - 1);
        for dy in 0..yr {
            let y = (by * 4 + dy).min(ny - 1);
            for dx in 0..4 {
                let x = (bx * 4 + dx).min(nx - 1);
                out.push(values[(z * ny + y) * nx + x]);
            }
        }
    }
    out
}

/// Scatter a decoded block back, skipping padded lanes.
fn scatter_block(
    block: &[f64],
    out: &mut [f64],
    nd: &[usize],
    d: usize,
    bx: usize,
    by: usize,
    bz: usize,
) {
    let nx = nd[0];
    let ny = *nd.get(1).unwrap_or(&1);
    let nz = *nd.get(2).unwrap_or(&1);
    let zr = if d >= 3 { 4 } else { 1 };
    let yr = if d >= 2 { 4 } else { 1 };
    let mut i = 0usize;
    for dz in 0..zr {
        let z = bz * 4 + dz;
        for dy in 0..yr {
            let y = by * 4 + dy;
            for dx in 0..4 {
                let x = bx * 4 + dx;
                if x < nx && y < ny && z < nz {
                    out[(z * ny + y) * nx + x] = block[i];
                }
                i += 1;
            }
        }
    }
}

fn mode_tag(mode: &str) -> u8 {
    match mode {
        "precision" => 1,
        "rate" => 2,
        _ => 0,
    }
}

/// Number of 4^d blocks along each collapsed axis.
fn block_grid(nd: &[usize]) -> (usize, usize, usize) {
    (
        nd[0].div_ceil(4),
        nd.get(1).map_or(1, |&n| n.div_ceil(4)),
        nd.get(2).map_or(1, |&n| n.div_ceil(4)),
    )
}

impl ZfpCompressor {
    /// Shared header prefix (everything before the payload layout, which is
    /// where v1 and v2 diverge).
    fn write_header(&self, out: &mut Vec<u8>, version: u8, input: &Data, header_abs: f64) {
        out.extend_from_slice(MAGIC);
        out.push(version);
        out.push(if input.dtype() == Dtype::F32 { 0 } else { 1 });
        out.push(mode_tag(&self.mode));
        out.push(input.dims().len() as u8);
        for &dim in input.dims() {
            out.extend_from_slice(&(dim as u64).to_le_bytes());
        }
        out.extend_from_slice(&header_abs.to_le_bytes());
        out.extend_from_slice(&(self.precision as u64).to_le_bytes());
        out.extend_from_slice(&self.rate.to_le_bytes());
    }

    /// Encode with the legacy v1 container (one continuous bitstream).
    /// Kept so compatibility tests can mint v1-era streams; new code always
    /// writes v2.
    pub fn compress_v1(&self, input: &Data) -> Result<Vec<u8>> {
        let dtype = input.dtype();
        if !matches!(dtype, Dtype::F32 | Dtype::F64) {
            return Err(Error::UnsupportedData(format!(
                "zfp supports f32/f64, got {}",
                dtype.name()
            )));
        }
        let values = input.to_f64_vec();
        let nd = collapse_dims(input.dims());
        let d = nd.len().clamp(1, 3);
        let mode = self.effective_mode(&values);
        let header_abs = match mode {
            Mode::Accuracy(a) => a,
            _ => self.abs,
        };
        let mut out = Vec::new();
        self.write_header(&mut out, VERSION_V1, input, header_abs);
        let mut w = BitWriter::with_capacity(values.len());
        if !values.is_empty() {
            let (bx_n, by_n, bz_n) = block_grid(&nd);
            for bz in 0..bz_n {
                for by in 0..by_n {
                    for bx in 0..bx_n {
                        let blk = gather_block(&values, &nd, d, bx, by, bz);
                        block::encode_block(&blk, d, mode, &mut w);
                    }
                }
            }
        }
        let payload = w.into_bytes();
        out.extend_from_slice(&(payload.len() as u64).to_le_bytes());
        out.extend_from_slice(&payload);
        Ok(out)
    }
}

impl Compressor for ZfpCompressor {
    fn id(&self) -> &'static str {
        "zfp"
    }

    fn set_options(&mut self, opts: &Options) -> Result<()> {
        if let Some(abs) = opts.get_f64_opt("pressio:abs")? {
            if !(abs.is_finite() && abs > 0.0) {
                return Err(Error::InvalidValue {
                    key: "pressio:abs".into(),
                    reason: "tolerance must be positive and finite".into(),
                });
            }
            self.abs = abs;
        }
        if let Some(rel) = opts.get_f64_opt("pressio:rel")? {
            if rel == 0.0 {
                self.rel = None; // explicit clear
            } else if rel > 0.0 && rel.is_finite() {
                self.rel = Some(rel);
            } else {
                return Err(Error::InvalidValue {
                    key: "pressio:rel".into(),
                    reason: "relative bound must be positive and finite (0 clears)".into(),
                });
            }
        }
        if let Some(m) = opts.get_str_opt("zfp:mode")? {
            if !["accuracy", "precision", "rate"].contains(&m) {
                return Err(Error::InvalidValue {
                    key: "zfp:mode".into(),
                    reason: format!("unknown mode '{m}'"),
                });
            }
            self.mode = m.to_string();
        }
        if let Some(p) = opts.get_u64_opt("zfp:precision")? {
            if p == 0 || p > block::INTPREC as u64 {
                return Err(Error::InvalidValue {
                    key: "zfp:precision".into(),
                    reason: format!("precision must be in 1..={}", block::INTPREC),
                });
            }
            self.precision = p as u32;
        }
        if let Some(r) = opts.get_f64_opt("zfp:rate")? {
            if !(r > 0.0 && r <= 64.0) {
                return Err(Error::InvalidValue {
                    key: "zfp:rate".into(),
                    reason: "rate must be in (0, 64] bits/value".into(),
                });
            }
            self.rate = r;
        }
        if let Some(n) = opts.get_u64_opt("pressio:nthreads")? {
            self.nthreads = if n == 0 { None } else { Some(n as usize) };
        }
        Ok(())
    }

    fn get_options(&self) -> Options {
        Options::new()
            .with("pressio:abs", self.abs)
            .with("pressio:rel", self.rel.unwrap_or(0.0))
            .with("zfp:mode", self.mode.as_str())
            .with("zfp:precision", self.precision as u64)
            .with("zfp:rate", self.rate)
            .with("pressio:nthreads", self.nthreads.unwrap_or(0) as u64)
    }

    fn get_configuration(&self) -> Options {
        Options::new()
            .with("pressio:thread_safe", true)
            .with("pressio:stability", "stable")
            .with("pressio:dtypes", vec!["f32".to_string(), "f64".to_string()])
            .with(
                "predictors:error_dependent_settings",
                vec![
                    "pressio:abs".to_string(),
                    "pressio:rel".to_string(),
                    "zfp:mode".to_string(),
                    "zfp:precision".to_string(),
                    "zfp:rate".to_string(),
                ],
            )
            .with(
                "predictors:invalidate",
                vec![invalidations::ERROR_DEPENDENT.to_string()],
            )
    }

    fn compress(&self, input: &Data) -> Result<Vec<u8>> {
        let _span = pressio_obs::span("zfp:compress");
        let dtype = input.dtype();
        if !matches!(dtype, Dtype::F32 | Dtype::F64) {
            return Err(Error::UnsupportedData(format!(
                "zfp supports f32/f64, got {}",
                dtype.name()
            )));
        }
        let values = input.to_f64_vec();
        let nd = collapse_dims(input.dims());
        let d = nd.len().clamp(1, 3);
        let mode = self.effective_mode(&values);
        // the header must carry the *effective* tolerance so the decoder
        // derives the identical plane cutoff (rel is resolved at encode time)
        let header_abs = match mode {
            Mode::Accuracy(a) => a,
            _ => self.abs,
        };

        let mut out = Vec::new();
        self.write_header(&mut out, VERSION, input, header_abs);

        // v2 chunked layout: blocks in canonical linear order are grouped
        // into fixed-size chunks, each encoded into its own byte-aligned
        // bitstream. Chunk boundaries are format constants, so the stream
        // is identical at any thread count.
        let (bx_n, by_n, bz_n) = block_grid(&nd);
        let total_blocks = if values.is_empty() {
            0
        } else {
            bx_n * by_n * bz_n
        };
        let n_chunks = total_blocks.div_ceil(CHUNK_BLOCKS);
        let nthreads = pressio_core::threads::resolve(self.nthreads);
        let chunks: Vec<Vec<u8>> =
            pressio_core::threads::par_map_indexed(nthreads, n_chunks, |c| {
                let lo = c * CHUNK_BLOCKS;
                let hi = ((c + 1) * CHUNK_BLOCKS).min(total_blocks);
                let mut w = BitWriter::with_capacity(hi - lo);
                for i in lo..hi {
                    let bx = i % bx_n;
                    let by = (i / bx_n) % by_n;
                    let bz = i / (bx_n * by_n);
                    let blk = gather_block(&values, &nd, d, bx, by, bz);
                    block::encode_block(&blk, d, mode, &mut w);
                }
                w.into_bytes()
            });
        out.extend_from_slice(&(CHUNK_BLOCKS as u64).to_le_bytes());
        out.extend_from_slice(&(n_chunks as u64).to_le_bytes());
        for c in &chunks {
            out.extend_from_slice(&(c.len() as u64).to_le_bytes());
        }
        for c in &chunks {
            out.extend_from_slice(c);
        }
        if pressio_obs::is_enabled() {
            pressio_obs::add_counter("zfp:compress.bytes_in", input.size_in_bytes() as i64);
            pressio_obs::add_counter("zfp:compress.bytes_out", out.len() as i64);
        }
        Ok(out)
    }

    fn decompress(&self, compressed: &[u8], dtype: Dtype, dims: &[usize]) -> Result<Data> {
        let _span = pressio_obs::span("zfp:decompress");
        if pressio_obs::is_enabled() {
            pressio_obs::add_counter("zfp:decompress.bytes_in", compressed.len() as i64);
        }
        let mut pos = 0usize;
        let get = |pos: &mut usize, n: usize| -> Result<&[u8]> {
            let s = compressed
                .get(*pos..*pos + n)
                .ok_or_else(|| Error::CorruptStream("truncated zfp header".into()))?;
            *pos += n;
            Ok(s)
        };
        if get(&mut pos, 4)? != MAGIC {
            return Err(Error::CorruptStream("bad zfp magic".into()));
        }
        let version = get(&mut pos, 1)?[0];
        if version != VERSION_V1 && version != VERSION {
            return Err(Error::CorruptStream("unknown zfp version".into()));
        }
        let stored_dtype = if get(&mut pos, 1)?[0] == 0 {
            Dtype::F32
        } else {
            Dtype::F64
        };
        if stored_dtype != dtype {
            return Err(Error::UnsupportedData(format!(
                "stream holds {}, caller asked for {}",
                stored_dtype.name(),
                dtype.name()
            )));
        }
        let mode_tag = get(&mut pos, 1)?[0];
        let rank = get(&mut pos, 1)?[0] as usize;
        if rank > 8 {
            return Err(Error::CorruptStream("implausible rank".into()));
        }
        let mut stored_dims = Vec::with_capacity(rank);
        for _ in 0..rank {
            stored_dims.push(u64::from_le_bytes(get(&mut pos, 8)?.try_into().unwrap()) as usize);
        }
        if stored_dims != dims {
            return Err(Error::UnsupportedData(format!(
                "stream dims {stored_dims:?} do not match requested {dims:?}"
            )));
        }
        let abs = f64::from_le_bytes(get(&mut pos, 8)?.try_into().unwrap());
        let precision = u64::from_le_bytes(get(&mut pos, 8)?.try_into().unwrap()) as u32;
        let rate = f64::from_le_bytes(get(&mut pos, 8)?.try_into().unwrap());
        let mode = match mode_tag {
            1 => Mode::Precision(precision),
            2 => Mode::Rate(rate),
            _ => {
                if !(abs.is_finite() && abs > 0.0) {
                    return Err(Error::CorruptStream("invalid tolerance".into()));
                }
                Mode::Accuracy(abs)
            }
        };
        let nd = collapse_dims(dims);
        let d = nd.len().clamp(1, 3);
        let n: usize = dims.iter().product();
        let mut values = vec![0.0f64; n];
        let (bx_n, by_n, bz_n) = block_grid(&nd);
        if version == VERSION_V1 {
            let payload_len = u64::from_le_bytes(get(&mut pos, 8)?.try_into().unwrap()) as usize;
            let payload = compressed
                .get(pos..pos + payload_len)
                .ok_or_else(|| Error::CorruptStream("truncated zfp payload".into()))?;
            if n > 0 {
                let mut r = BitReader::new(payload);
                for bz in 0..bz_n {
                    for by in 0..by_n {
                        for bx in 0..bx_n {
                            let blk = block::decode_block(&mut r, d, mode)
                                .map_err(|e| Error::CorruptStream(e.to_string()))?;
                            scatter_block(&blk, &mut values, &nd, d, bx, by, bz);
                        }
                    }
                }
            }
        } else {
            // v2: per-chunk payload lengths let every chunk decode
            // independently (and therefore in parallel)
            let chunk_blocks = u64::from_le_bytes(get(&mut pos, 8)?.try_into().unwrap()) as usize;
            let n_chunks = u64::from_le_bytes(get(&mut pos, 8)?.try_into().unwrap()) as usize;
            let total_blocks = if n == 0 { 0 } else { bx_n * by_n * bz_n };
            if chunk_blocks == 0 || n_chunks != total_blocks.div_ceil(chunk_blocks) {
                return Err(Error::CorruptStream("bad zfp chunk table".into()));
            }
            let mut offsets = Vec::with_capacity(n_chunks + 1);
            offsets.push(0usize);
            for _ in 0..n_chunks {
                let len = u64::from_le_bytes(get(&mut pos, 8)?.try_into().unwrap()) as usize;
                let next = offsets
                    .last()
                    .unwrap()
                    .checked_add(len)
                    .ok_or_else(|| Error::CorruptStream("zfp chunk table overflow".into()))?;
                offsets.push(next);
            }
            let payload = compressed
                .get(pos..pos + offsets[n_chunks])
                .ok_or_else(|| Error::CorruptStream("truncated zfp payload".into()))?;
            let nthreads = pressio_core::threads::resolve(self.nthreads);
            let decoded: Vec<Result<Vec<Vec<f64>>>> =
                pressio_core::threads::par_map_indexed(nthreads, n_chunks, |c| {
                    let lo = c * chunk_blocks;
                    let hi = ((c + 1) * chunk_blocks).min(total_blocks);
                    let mut r = BitReader::new(&payload[offsets[c]..offsets[c + 1]]);
                    (lo..hi)
                        .map(|_| {
                            block::decode_block(&mut r, d, mode)
                                .map_err(|e| Error::CorruptStream(e.to_string()))
                        })
                        .collect()
                });
            for (c, chunk) in decoded.into_iter().enumerate() {
                let lo = c * chunk_blocks;
                for (k, blk) in chunk?.into_iter().enumerate() {
                    let i = lo + k;
                    let bx = i % bx_n;
                    let by = (i / bx_n) % by_n;
                    let bz = i / (bx_n * by_n);
                    scatter_block(&blk, &mut values, &nd, d, bx, by, bz);
                }
            }
        }
        Ok(match dtype {
            Dtype::F32 => Data::from_f32(dims.to_vec(), values.iter().map(|&v| v as f32).collect()),
            _ => Data::from_f64(dims.to_vec(), values),
        })
    }

    fn clone_box(&self) -> Box<dyn Compressor> {
        Box::new(self.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn field(nx: usize, ny: usize, nz: usize) -> Data {
        let values: Vec<f32> = (0..nx * ny * nz)
            .map(|i| {
                let x = (i % nx) as f32;
                let y = ((i / nx) % ny) as f32;
                let z = (i / (nx * ny)) as f32;
                (x * 0.11).sin() * (y * 0.13).cos() + 0.02 * z
            })
            .collect();
        Data::from_f32(vec![nx, ny, nz], values)
    }

    #[test]
    fn accuracy_round_trip_3d() {
        let data = field(21, 18, 7); // partial blocks on every axis
        let mut zfp = ZfpCompressor::new();
        for eb in [1e-2f64, 1e-4, 1e-6] {
            zfp.set_options(&Options::new().with("pressio:abs", eb))
                .unwrap();
            let c = zfp.compress(&data).unwrap();
            let out = zfp.decompress(&c, Dtype::F32, data.dims()).unwrap();
            for (a, b) in data.as_f32().unwrap().iter().zip(out.as_f32().unwrap()) {
                assert!(((a - b).abs() as f64) <= eb, "eb={eb}: |{a}-{b}|");
            }
        }
    }

    #[test]
    fn accuracy_round_trip_1d_2d() {
        for dims in [vec![103usize], vec![17, 13]] {
            let n: usize = dims.iter().product();
            let values: Vec<f64> = (0..n).map(|i| (i as f64 * 0.07).sin() * 3.0).collect();
            let data = Data::from_f64(dims.clone(), values.clone());
            let mut zfp = ZfpCompressor::new();
            zfp.set_options(&Options::new().with("pressio:abs", 1e-5))
                .unwrap();
            let c = zfp.compress(&data).unwrap();
            let out = zfp.decompress(&c, Dtype::F64, &dims).unwrap();
            for (a, b) in values.iter().zip(out.as_f64().unwrap()) {
                assert!((a - b).abs() <= 1e-5, "dims={dims:?}");
            }
        }
    }

    #[test]
    fn compresses_smooth_data() {
        let data = field(64, 64, 16);
        let mut zfp = ZfpCompressor::new();
        zfp.set_options(&Options::new().with("pressio:abs", 1e-3))
            .unwrap();
        let c = zfp.compress(&data).unwrap();
        let ratio = data.size_in_bytes() as f64 / c.len() as f64;
        assert!(ratio > 3.0, "ratio only {ratio:.2}");
    }

    #[test]
    fn rate_mode_output_size_is_deterministic() {
        let data = field(32, 32, 8);
        let mut zfp = ZfpCompressor::new();
        zfp.set_options(
            &Options::new()
                .with("zfp:mode", "rate")
                .with("zfp:rate", 8.0),
        )
        .unwrap();
        let c = zfp.compress(&data).unwrap();
        let out = zfp.decompress(&c, Dtype::F32, data.dims()).unwrap();
        assert_eq!(out.dims(), data.dims());
        // 8 bits/value over 4^3 blocks; payload should be close to n bytes
        let n = data.num_elements();
        let payload = c.len();
        assert!(payload < n * 2, "rate-mode stream too large: {payload}");
    }

    #[test]
    fn precision_mode_round_trips() {
        let data = field(16, 16, 4);
        let mut zfp = ZfpCompressor::new();
        zfp.set_options(
            &Options::new()
                .with("zfp:mode", "precision")
                .with("zfp:precision", 32u64),
        )
        .unwrap();
        let c = zfp.compress(&data).unwrap();
        let out = zfp.decompress(&c, Dtype::F32, data.dims()).unwrap();
        for (a, b) in data.as_f32().unwrap().iter().zip(out.as_f32().unwrap()) {
            assert!((a - b).abs() < 1e-2);
        }
    }

    #[test]
    fn sparse_zero_field_is_tiny() {
        let data = Data::from_f32(vec![64, 64], vec![0.0; 4096]);
        let zfp = ZfpCompressor::new();
        let c = zfp.compress(&data).unwrap();
        // 256 all-zero blocks at 2 bits each + header
        assert!(c.len() < 200, "len={}", c.len());
    }

    #[test]
    fn rejects_bad_options_and_dtypes() {
        let mut zfp = ZfpCompressor::new();
        assert!(zfp
            .set_options(&Options::new().with("pressio:abs", 0.0))
            .is_err());
        assert!(zfp
            .set_options(&Options::new().with("zfp:mode", "psychic"))
            .is_err());
        assert!(zfp
            .set_options(&Options::new().with("zfp:rate", 100.0))
            .is_err());
        let ints = Data::from_i32(vec![4], vec![1, 2, 3, 4]);
        assert!(zfp.compress(&ints).is_err());
    }

    #[test]
    fn corrupt_streams_error() {
        let data = field(8, 8, 4);
        let zfp = ZfpCompressor::new();
        let c = zfp.compress(&data).unwrap();
        assert!(zfp.decompress(&c[..10], Dtype::F32, data.dims()).is_err());
        assert!(zfp
            .decompress(b"garbage!", Dtype::F32, data.dims())
            .is_err());
        assert!(zfp.decompress(&c, Dtype::F64, data.dims()).is_err());
        assert!(zfp.decompress(&c, Dtype::F32, &[8, 8, 5]).is_err());
    }

    #[test]
    fn non_finite_values_round_trip() {
        let mut values: Vec<f64> = (0..256).map(|i| (i as f64 * 0.1).sin()).collect();
        values[7] = f64::NAN;
        values[100] = f64::INFINITY;
        let data = Data::from_f64(vec![16, 16], values.clone());
        let zfp = ZfpCompressor::new();
        let c = zfp.compress(&data).unwrap();
        let out = zfp.decompress(&c, Dtype::F64, &[16, 16]).unwrap();
        let out = out.as_f64().unwrap();
        assert!(out[7].is_nan());
        assert_eq!(out[100], f64::INFINITY);
    }

    #[test]
    fn relative_bound_scales_with_value_range() {
        let small: Vec<f32> = (0..1024).map(|i| (i as f32 * 0.013).sin()).collect();
        let large: Vec<f32> = small.iter().map(|v| v * 500.0).collect();
        let mut zfp = ZfpCompressor::new();
        zfp.set_options(&Options::new().with("pressio:rel", 1e-4))
            .unwrap();
        for (values, range) in [(small, 2.0f64), (large, 1000.0)] {
            let data = Data::from_f32(vec![32, 32], values.clone());
            let c = zfp.compress(&data).unwrap();
            let out = zfp.decompress(&c, Dtype::F32, &[32, 32]).unwrap();
            let bound = 1e-4 * range * 1.01;
            for (a, b) in values.iter().zip(out.as_f32().unwrap()) {
                assert!(((a - b).abs() as f64) <= bound, "range={range}");
            }
        }
        assert!(zfp
            .set_options(&Options::new().with("pressio:rel", f64::NAN))
            .is_err());
    }

    #[test]
    fn v1_streams_still_decode() {
        // 64×64×16 → 1024 blocks → 4 chunks in v2; both containers must
        // reconstruct the same values
        let data = field(64, 64, 16);
        let mut zfp = ZfpCompressor::new();
        zfp.set_options(&Options::new().with("pressio:abs", 1e-3))
            .unwrap();
        let v1 = zfp.compress_v1(&data).unwrap();
        let v2 = zfp.compress(&data).unwrap();
        assert_eq!(v1[4], 1);
        assert_eq!(v2[4], 2);
        let out1 = zfp.decompress(&v1, Dtype::F32, data.dims()).unwrap();
        let out2 = zfp.decompress(&v2, Dtype::F32, data.dims()).unwrap();
        assert_eq!(out1.as_f32().unwrap(), out2.as_f32().unwrap());
    }

    #[test]
    fn parallel_encode_is_byte_identical() {
        let data = field(33, 29, 9);
        let mut zfp = ZfpCompressor::new();
        zfp.set_options(
            &Options::new()
                .with("pressio:abs", 1e-4)
                .with("pressio:nthreads", 1u64),
        )
        .unwrap();
        let seq = zfp.compress(&data).unwrap();
        zfp.set_options(&Options::new().with("pressio:nthreads", 3u64))
            .unwrap();
        let par = zfp.compress(&data).unwrap();
        assert_eq!(seq, par);
        let out = zfp.decompress(&par, Dtype::F32, data.dims()).unwrap();
        assert_eq!(out.dims(), data.dims());
    }

    #[test]
    fn corrupt_chunk_table_errors() {
        let data = field(8, 8, 4);
        let zfp = ZfpCompressor::new();
        let mut c = zfp.compress(&data).unwrap();
        // chunk_blocks field sits right after the fixed header; zero it
        let chunk_off = 4 + 1 + 1 + 1 + 1 + 3 * 8 + 8 + 8 + 8;
        c[chunk_off..chunk_off + 8].copy_from_slice(&0u64.to_le_bytes());
        assert!(zfp.decompress(&c, Dtype::F32, data.dims()).is_err());
    }

    #[test]
    fn zfp_beats_itself_on_looser_bounds() {
        let data = field(48, 48, 12);
        let mut zfp = ZfpCompressor::new();
        zfp.set_options(&Options::new().with("pressio:abs", 1e-6))
            .unwrap();
        let tight = zfp.compress(&data).unwrap().len();
        zfp.set_options(&Options::new().with("pressio:abs", 1e-2))
            .unwrap();
        let loose = zfp.compress(&data).unwrap().len();
        assert!(loose < tight);
    }
}
