//! The reversible integer decorrelating transform, coefficient ordering,
//! and negabinary mapping used by the ZFP-like codec.
//!
//! The forward/inverse lifting pair is the transform from the ZFP reference
//! implementation (Lindstrom 2014); applied along each dimension of a 4^d
//! block it approximates an orthogonal basis. The right-shifts in the
//! forward lift drop low-order bits, so the pair is *near*-invertible: the
//! reconstruction differs by a handful of fixed-point ULPs, which the codec
//! absorbs in its guard-bit budget (exactly as ZFP does).

/// Forward lift of 4 elements at stride `s` within `p`.
#[inline]
pub fn fwd_lift(p: &mut [i64], base: usize, s: usize) {
    let (mut x, mut y, mut z, mut w) = (p[base], p[base + s], p[base + 2 * s], p[base + 3 * s]);
    // non-orthogonal transform: (x,y,z,w) -> decorrelated coefficients
    x += w;
    x >>= 1;
    w -= x;
    z += y;
    z >>= 1;
    y -= z;
    x += z;
    x >>= 1;
    z -= x;
    w += y;
    w >>= 1;
    y -= w;
    w += y >> 1;
    y -= w >> 1;
    p[base] = x;
    p[base + s] = y;
    p[base + 2 * s] = z;
    p[base + 3 * s] = w;
}

/// Exact inverse of [`fwd_lift`].
#[inline]
pub fn inv_lift(p: &mut [i64], base: usize, s: usize) {
    let (mut x, mut y, mut z, mut w) = (p[base], p[base + s], p[base + 2 * s], p[base + 3 * s]);
    y += w >> 1;
    w -= y >> 1;
    y += w;
    w <<= 1;
    w -= y;
    z += x;
    x <<= 1;
    x -= z;
    y += z;
    z <<= 1;
    z -= y;
    w += x;
    x <<= 1;
    x -= w;
    p[base] = x;
    p[base + s] = y;
    p[base + 2 * s] = z;
    p[base + 3 * s] = w;
}

/// Forward transform of a 4^d block (d = 1, 2, or 3), in place.
pub fn fwd_xform(block: &mut [i64], d: usize) {
    match d {
        1 => fwd_lift(block, 0, 1),
        2 => {
            for y in 0..4 {
                fwd_lift(block, 4 * y, 1);
            }
            for x in 0..4 {
                fwd_lift(block, x, 4);
            }
        }
        3 => {
            for z in 0..4 {
                for y in 0..4 {
                    fwd_lift(block, 16 * z + 4 * y, 1);
                }
            }
            for z in 0..4 {
                for x in 0..4 {
                    fwd_lift(block, 16 * z + x, 4);
                }
            }
            for y in 0..4 {
                for x in 0..4 {
                    fwd_lift(block, 4 * y + x, 16);
                }
            }
        }
        _ => panic!("unsupported block dimensionality {d}"),
    }
}

/// Inverse transform of a 4^d block, in place (reverse order of axes).
pub fn inv_xform(block: &mut [i64], d: usize) {
    match d {
        1 => inv_lift(block, 0, 1),
        2 => {
            for x in 0..4 {
                inv_lift(block, x, 4);
            }
            for y in 0..4 {
                inv_lift(block, 4 * y, 1);
            }
        }
        3 => {
            for y in 0..4 {
                for x in 0..4 {
                    inv_lift(block, 4 * y + x, 16);
                }
            }
            for z in 0..4 {
                for x in 0..4 {
                    inv_lift(block, 16 * z + x, 4);
                }
            }
            for z in 0..4 {
                for y in 0..4 {
                    inv_lift(block, 16 * z + 4 * y, 1);
                }
            }
        }
        _ => panic!("unsupported block dimensionality {d}"),
    }
}

/// Total-degree coefficient ordering for a 4^d block: low-frequency
/// coefficients (small coordinate sum) first, ties broken by linear index.
/// Deterministically generated, so encoder and decoder always agree.
pub fn degree_order(d: usize) -> Vec<usize> {
    let n = 1usize << (2 * d);
    let mut idx: Vec<usize> = (0..n).collect();
    idx.sort_by_key(|&i| {
        let x = i & 3;
        let y = (i >> 2) & 3;
        let z = (i >> 4) & 3;
        (x + y + z, i)
    });
    idx
}

/// Map a signed integer to its negabinary (sign-free) representation.
/// Negabinary keeps small-magnitude values small in *unsigned* terms, which
/// is what the embedded bit-plane coder needs.
#[inline]
pub fn int_to_negabinary(x: i64) -> u64 {
    const MASK: u64 = 0xaaaa_aaaa_aaaa_aaaa;
    ((x as u64).wrapping_add(MASK)) ^ MASK
}

/// Inverse of [`int_to_negabinary`].
#[inline]
pub fn negabinary_to_int(u: u64) -> i64 {
    const MASK: u64 = 0xaaaa_aaaa_aaaa_aaaa;
    (u ^ MASK).wrapping_sub(MASK) as i64
}

/// Lane map of [`int_to_negabinary`] over a slice (wrapping add + xor —
/// pure element-wise integer ops, so results are identical to the scalar
/// calls and the loop autovectorizes).
pub fn negabinary_slice(ints: &[i64], out: &mut [u64]) {
    for (o, &x) in out.iter_mut().zip(ints) {
        *o = int_to_negabinary(x);
    }
}

/// Lane map of [`negabinary_to_int`] over a slice.
pub fn negabinary_to_int_slice(neg: &[u64], out: &mut [i64]) {
    for (o, &u) in out.iter_mut().zip(neg) {
        *o = negabinary_to_int(u);
    }
}

/// In-place 64×64 bit-matrix transpose: bit `c` of row `r` swaps with bit
/// `r` of row `c` (LSB-first column convention).
///
/// Recursive masked block swaps (Hacker's Delight §7-3): 6 rounds of 32
/// swap pairs, ~6·64 word ops total — an order of magnitude fewer than
/// the per-plane bit gather it replaces in the bit-plane coder, and the
/// inner loop vectorizes.
pub fn transpose64(a: &mut [u64; 64]) {
    let mut j: usize = 32;
    let mut m: u64 = 0x0000_0000_ffff_ffff;
    while j != 0 {
        let mut k: usize = 0;
        while k < 64 {
            let t = ((a[k] >> j) ^ a[k + j]) & m;
            a[k] ^= t << j;
            a[k + j] ^= t;
            k = (k + j + 1) & !j;
        }
        j >>= 1;
        m ^= m << j;
    }
}

/// Bit-plane extraction via [`transpose64`]: returns `planes` with
/// `planes[k]` bit `i` = `coeffs[i]` bit `k` for every plane at once.
/// Identical to [`bitplanes_scalar`] (exact integer ops), but one
/// transpose instead of `INTPREC` per-coefficient gathers.
pub fn bitplanes(coeffs: &[u64]) -> [u64; 64] {
    debug_assert!(coeffs.len() <= 64);
    let mut m = [0u64; 64];
    m[..coeffs.len()].copy_from_slice(coeffs);
    transpose64(&mut m);
    m
}

/// Scalar reference for [`bitplanes`]: the per-plane gather loop the
/// embedded coder originally ran once per transmitted plane. Kept public
/// for parity tests and the kernel benchmarks.
pub fn bitplanes_scalar(coeffs: &[u64]) -> [u64; 64] {
    let mut planes = [0u64; 64];
    for (k, p) in planes.iter_mut().enumerate() {
        let mut x = 0u64;
        for (i, &c) in coeffs.iter().enumerate() {
            x |= ((c >> k) & 1) << i;
        }
        *p = x;
    }
    planes
}

#[cfg(test)]
mod tests {
    use super::*;

    fn xorshift(state: &mut u64) -> u64 {
        *state ^= *state << 13;
        *state ^= *state >> 7;
        *state ^= *state << 17;
        *state
    }

    #[test]
    fn lift_pair_is_near_inverse() {
        let mut state = 0xDEADBEEFu64;
        for _ in 0..1000 {
            let original: Vec<i64> = (0..4)
                .map(|_| (xorshift(&mut state) as i64) >> 24) // keep headroom
                .collect();
            let mut p = original.clone();
            fwd_lift(&mut p, 0, 1);
            inv_lift(&mut p, 0, 1);
            for (a, b) in p.iter().zip(&original) {
                assert!((a - b).abs() <= 4, "{p:?} vs {original:?}");
            }
        }
    }

    #[test]
    fn xform_near_round_trips_all_dims() {
        let mut state = 12345u64;
        for d in 1..=3usize {
            let n = 1usize << (2 * d);
            let mut worst = 0i64;
            for _ in 0..500 {
                let original: Vec<i64> = (0..n)
                    .map(|_| (xorshift(&mut state) as i64) >> 26)
                    .collect();
                let mut b = original.clone();
                fwd_xform(&mut b, d);
                inv_xform(&mut b, d);
                for (a, o) in b.iter().zip(&original) {
                    worst = worst.max((a - o).abs());
                }
            }
            // a handful of fixed-point ULPs; the codec reserves guard bits
            assert!(worst <= 64, "d={d}: worst lift error {worst}");
        }
    }

    #[test]
    fn transform_compacts_smooth_signal() {
        // a linear ramp should concentrate energy in low-order coefficients
        let mut b: Vec<i64> = (0..16).map(|i| (i as i64) * 1000).collect();
        fwd_xform(&mut b, 2);
        let order = degree_order(2);
        let low: i64 = order[..4].iter().map(|&i| b[i].abs()).sum();
        let high: i64 = order[12..].iter().map(|&i| b[i].abs()).sum();
        assert!(low > 10 * high.max(1), "low={low} high={high}");
    }

    #[test]
    fn degree_order_is_permutation() {
        for d in 1..=3usize {
            let n = 1usize << (2 * d);
            let mut o = degree_order(d);
            assert_eq!(o.len(), n);
            o.sort_unstable();
            assert_eq!(o, (0..n).collect::<Vec<_>>());
        }
    }

    #[test]
    fn degree_order_3d_starts_at_dc() {
        let o = degree_order(3);
        assert_eq!(o[0], 0); // DC coefficient first
                             // the next three are the three first-order coefficients
        let firsts: std::collections::BTreeSet<usize> = o[1..4].iter().copied().collect();
        assert_eq!(firsts, [1usize, 4, 16].into_iter().collect());
    }

    #[test]
    fn negabinary_round_trips() {
        for x in [-5i64, -1, 0, 1, 7, i64::MAX / 4, i64::MIN / 4, 12345678] {
            assert_eq!(negabinary_to_int(int_to_negabinary(x)), x);
        }
        let mut state = 777u64;
        for _ in 0..1000 {
            let x = (xorshift(&mut state) as i64) >> 8;
            assert_eq!(negabinary_to_int(int_to_negabinary(x)), x);
        }
    }

    #[test]
    #[allow(clippy::needless_range_loop)] // (r, c) are bit coordinates
    fn transpose64_is_a_true_transpose_and_involution() {
        let mut state = 0x1234_5678_9abc_def0u64;
        for _ in 0..50 {
            let mut a = [0u64; 64];
            for v in a.iter_mut() {
                *v = xorshift(&mut state);
            }
            let orig = a;
            transpose64(&mut a);
            for r in 0..64 {
                for c in 0..64 {
                    assert_eq!(
                        (a[r] >> c) & 1,
                        (orig[c] >> r) & 1,
                        "bit ({r},{c}) after transpose"
                    );
                }
            }
            transpose64(&mut a);
            assert_eq!(a, orig);
        }
    }

    #[test]
    fn bitplanes_matches_scalar_reference() {
        let mut state = 0xfeed_beefu64;
        for &size in &[4usize, 16, 64] {
            for _ in 0..100 {
                let coeffs: Vec<u64> = (0..size)
                    .map(|_| xorshift(&mut state) & ((1u64 << 58) - 1))
                    .collect();
                assert_eq!(bitplanes(&coeffs), bitplanes_scalar(&coeffs), "size {size}");
                // full-width values too
                let wide: Vec<u64> = (0..size).map(|_| xorshift(&mut state)).collect();
                assert_eq!(
                    bitplanes(&wide),
                    bitplanes_scalar(&wide),
                    "wide size {size}"
                );
            }
        }
    }

    #[test]
    fn negabinary_slice_matches_scalar_calls() {
        let mut state = 42u64;
        let ints: Vec<i64> = (0..129).map(|_| xorshift(&mut state) as i64 >> 3).collect();
        let mut neg = vec![0u64; ints.len()];
        negabinary_slice(&ints, &mut neg);
        for (i, &x) in ints.iter().enumerate() {
            assert_eq!(neg[i], int_to_negabinary(x));
        }
        let mut back = vec![0i64; ints.len()];
        negabinary_to_int_slice(&neg, &mut back);
        assert_eq!(back, ints);
    }

    #[test]
    fn negabinary_keeps_small_values_small() {
        // |x| small => few significant bits in negabinary
        for x in -8i64..=8 {
            let u = int_to_negabinary(x);
            assert!(u < 32, "x={x} -> {u}");
        }
    }
}
