//! Deterministic failpoint registry.
//!
//! Production code marks *injection sites* with [`check`] or [`inject`].
//! With no faults configured the whole machinery collapses to a single
//! relaxed atomic load per site — no locking, no allocation, no branch on
//! anything but one `u8`. A chaos run activates a schedule either through
//! the `PRESSIO_FAULTS` environment variable or programmatically via
//! [`configure`], and every decision a site makes is a pure function of
//! (site name, per-site hit index, schedule seed), so the same schedule
//! replays the same faults run after run.
//!
//! # Spec syntax
//!
//! A schedule is `;`-separated entries, each `site=action[,key=val...]`:
//!
//! ```text
//! store:put.io=err,times=1;queue:task.panic=panic,after=3,times=1
//! serve:conn.drop=drop,every=5;queue:task.delay=delay,ms=20,p=0.25,seed=7
//! ```
//!
//! Actions: `err`, `panic`, `delay` (with `ms=N`), `torn`, `corrupt`,
//! `drop`, `crash`, `stall` (with `ms=N`). `err`/`panic`/`delay` are
//! interpreted directly by [`inject`]; the rest are site-specific — the
//! code hosting the site decides what "torn" or "drop" means there.
//!
//! Modifiers (all optional, combinable):
//! - `times=N` — fire at most N times, then go quiet.
//! - `after=K` — ignore the first K hits of the site.
//! - `every=N` — of the hits remaining after `after`, fire every Nth
//!   (the 1st, N+1st, ...).
//! - `p=F` — fire with probability F, decided deterministically from
//!   `seed` and the hit index (same schedule → same decisions).
//! - `seed=S` — seed for `p` decisions (default 0).
//! - `ms=N` — duration for `delay`/`stall` (default 10).
//!
//! Every fired fault increments the `pressio-obs` counter `faults:<site>`
//! and the registry's own [`fired`] tally, so chaos tests can assert that
//! the schedule actually exercised what it claims to.

use pressio_core::error::{Error, Result};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU8, Ordering};
use std::sync::Mutex;

/// What a firing failpoint asks the site to do.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultAction {
    /// Fail with an injected error.
    Error,
    /// Panic (exercises catch_unwind containment / supervisors).
    Panic,
    /// Sleep for the given milliseconds, then proceed normally.
    Delay(u64),
    /// Site-specific: persist/transmit only a prefix of the payload.
    Torn,
    /// Site-specific: flip bytes in the payload.
    Corrupt,
    /// Site-specific: sever the connection / discard the response.
    Drop,
    /// Site-specific: die without cleanup (worker thread exit, abandoned
    /// temp file, ...), as a crash at this point would.
    Crash,
    /// Site-specific: hold the resource for the given milliseconds
    /// (slow client, straggler worker).
    Stall(u64),
}

impl FaultAction {
    fn name(self) -> &'static str {
        match self {
            FaultAction::Error => "err",
            FaultAction::Panic => "panic",
            FaultAction::Delay(_) => "delay",
            FaultAction::Torn => "torn",
            FaultAction::Corrupt => "corrupt",
            FaultAction::Drop => "drop",
            FaultAction::Crash => "crash",
            FaultAction::Stall(_) => "stall",
        }
    }
}

struct SiteConfig {
    action: FaultAction,
    times: Option<u64>,
    after: u64,
    every: u64,
    p: Option<f64>,
    seed: u64,
    hits: u64,
    fires: u64,
}

#[derive(Default)]
struct Registry {
    sites: HashMap<String, SiteConfig>,
}

// Fast-path state: a single relaxed load decides whether any site can
// possibly fire. UNINIT lazily reads PRESSIO_FAULTS exactly once.
const UNINIT: u8 = 0;
const DISABLED: u8 = 1;
const ENABLED: u8 = 2;

static STATE: AtomicU8 = AtomicU8::new(UNINIT);
static REGISTRY: Mutex<Option<Registry>> = Mutex::new(None);

/// Env var holding the default fault schedule.
pub const ENV_VAR: &str = "PRESSIO_FAULTS";
/// Options key carrying a fault schedule (e.g. from `pressio --faults`).
pub const OPTION_KEY: &str = "pressio:faults";

/// FNV-1a over `bytes` — the stable hash behind per-site decisions, also
/// exported for deterministic retry jitter.
pub fn hash64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf29ce484222325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

/// SplitMix64 finalizer — a cheap, high-quality mix for turning counters
/// into decisions without any global RNG state.
pub fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e3779b97f4a7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d049bb133111eb);
    x ^ (x >> 31)
}

fn fnv1a64(bytes: &[u8]) -> u64 {
    hash64(bytes)
}

/// Exponential backoff with deterministic jitter, shared by the queue's
/// task retries and the serve client's reconnect policy. Attempt 1 (the
/// first try) waits 0; attempt `n ≥ 2` waits uniformly in
/// `[d/2, d]` where `d = min(base_ms · 2^(n-2), max_ms)`. The jitter is a
/// pure function of `(key, n)`, so a replayed schedule waits identically.
pub fn backoff_ms(base_ms: u64, max_ms: u64, attempt: usize, key: &str) -> u64 {
    if base_ms == 0 || attempt <= 1 {
        return 0;
    }
    let exp = (attempt - 2).min(16) as u32;
    let raw = base_ms.saturating_mul(1u64 << exp).min(max_ms.max(base_ms));
    let jitter = splitmix64(hash64(key.as_bytes()) ^ attempt as u64) % (raw / 2 + 1);
    raw / 2 + jitter
}

fn parse_u64(site: &str, key: &str, val: &str) -> Result<u64> {
    val.parse::<u64>().map_err(|_| Error::InvalidValue {
        key: OPTION_KEY.into(),
        reason: format!("{site}: {key}={val} is not an integer"),
    })
}

fn parse_entry(entry: &str) -> Result<(String, SiteConfig)> {
    let (site, rest) = entry.split_once('=').ok_or_else(|| Error::InvalidValue {
        key: OPTION_KEY.into(),
        reason: format!("'{entry}' is not site=action[,key=val...]"),
    })?;
    let site = site.trim();
    if site.is_empty() {
        return Err(Error::InvalidValue {
            key: OPTION_KEY.into(),
            reason: format!("'{entry}' has an empty site name"),
        });
    }
    let mut parts = rest.split(',').map(str::trim);
    let action_name = parts.next().unwrap_or("");
    let mut ms = 10u64;
    let mut times = None;
    let mut after = 0u64;
    let mut every = 1u64;
    let mut p = None;
    let mut seed = 0u64;
    for kv in parts {
        let (k, v) = kv.split_once('=').ok_or_else(|| Error::InvalidValue {
            key: OPTION_KEY.into(),
            reason: format!("{site}: modifier '{kv}' is not key=val"),
        })?;
        match k {
            "ms" => ms = parse_u64(site, k, v)?,
            "times" => times = Some(parse_u64(site, k, v)?),
            "after" => after = parse_u64(site, k, v)?,
            "every" => every = parse_u64(site, k, v)?.max(1),
            "seed" => seed = parse_u64(site, k, v)?,
            "p" => {
                let f = v.parse::<f64>().ok().filter(|f| (0.0..=1.0).contains(f));
                p = Some(f.ok_or_else(|| Error::InvalidValue {
                    key: OPTION_KEY.into(),
                    reason: format!("{site}: p={v} must be a probability in [0, 1]"),
                })?);
            }
            other => {
                return Err(Error::InvalidValue {
                    key: OPTION_KEY.into(),
                    reason: format!("{site}: unknown modifier '{other}'"),
                })
            }
        }
    }
    let action = match action_name {
        "err" | "error" => FaultAction::Error,
        "panic" => FaultAction::Panic,
        "delay" => FaultAction::Delay(ms),
        "torn" => FaultAction::Torn,
        "corrupt" => FaultAction::Corrupt,
        "drop" => FaultAction::Drop,
        "crash" => FaultAction::Crash,
        "stall" => FaultAction::Stall(ms),
        other => {
            return Err(Error::InvalidValue {
                key: OPTION_KEY.into(),
                reason: format!("{site}: unknown action '{other}'"),
            })
        }
    };
    Ok((
        site.to_string(),
        SiteConfig {
            action,
            times,
            after,
            every,
            p,
            seed,
            hits: 0,
            fires: 0,
        },
    ))
}

/// Replace the active schedule with `spec`. An empty (or all-whitespace)
/// spec disables every site. Invalid specs leave the previous schedule
/// untouched and return an error.
pub fn configure(spec: &str) -> Result<()> {
    let mut sites = HashMap::new();
    for entry in spec.split(';') {
        let entry = entry.trim();
        if entry.is_empty() {
            continue;
        }
        let (site, config) = parse_entry(entry)?;
        sites.insert(site, config);
    }
    let enabled = !sites.is_empty();
    let mut registry = REGISTRY.lock().unwrap_or_else(|e| e.into_inner());
    *registry = Some(Registry { sites });
    STATE.store(if enabled { ENABLED } else { DISABLED }, Ordering::Release);
    Ok(())
}

/// Load the schedule from `PRESSIO_FAULTS` (no-op if unset or empty).
/// A malformed env spec is reported, not ignored.
pub fn configure_from_env() -> Result<()> {
    match std::env::var(ENV_VAR) {
        Ok(spec) if !spec.trim().is_empty() => configure(&spec),
        _ => {
            // Only settle the fast path; don't clobber an explicit configure.
            let _ = STATE.compare_exchange(UNINIT, DISABLED, Ordering::AcqRel, Ordering::Acquire);
            Ok(())
        }
    }
}

/// Load a schedule from an options bag's `pressio:faults` key, if present.
/// Returns whether a schedule was found.
pub fn configure_from_options(options: &pressio_core::Options) -> Result<bool> {
    match options.get_str_opt(OPTION_KEY)? {
        Some(spec) => {
            configure(spec)?;
            Ok(true)
        }
        None => Ok(false),
    }
}

/// Deactivate every failpoint and drop the schedule.
pub fn clear() {
    let mut registry = REGISTRY.lock().unwrap_or_else(|e| e.into_inner());
    *registry = Some(Registry::default());
    STATE.store(DISABLED, Ordering::Release);
}

/// Whether any schedule is active (false ⇒ every [`check`] is one atomic
/// load returning `None`).
pub fn enabled() -> bool {
    STATE.load(Ordering::Relaxed) == ENABLED
}

#[cold]
fn init_from_env_once() {
    // Racing initializers both read the same env var; last store wins with
    // identical content, so the race is benign.
    if STATE.load(Ordering::Acquire) == UNINIT {
        let _ = configure_from_env();
    }
}

#[cold]
fn check_slow(site: &str) -> Option<FaultAction> {
    let mut registry = REGISTRY.lock().unwrap_or_else(|e| e.into_inner());
    let config = registry.as_mut()?.sites.get_mut(site)?;
    let index = config.hits;
    config.hits += 1;
    if index < config.after {
        return None;
    }
    if (index - config.after) % config.every != 0 {
        return None;
    }
    if let Some(times) = config.times {
        if config.fires >= times {
            return None;
        }
    }
    if let Some(p) = config.p {
        let u = splitmix64(config.seed ^ fnv1a64(site.as_bytes()) ^ index);
        if (u >> 11) as f64 / (1u64 << 53) as f64 >= p {
            return None;
        }
    }
    config.fires += 1;
    let action = config.action;
    drop(registry);
    pressio_obs::add_counter(&format!("faults:{site}"), 1);
    Some(action)
}

/// Ask whether the failpoint `site` fires at this hit. The disabled path
/// is a single relaxed atomic load.
#[inline]
pub fn check(site: &str) -> Option<FaultAction> {
    match STATE.load(Ordering::Relaxed) {
        DISABLED => None,
        UNINIT => {
            init_from_env_once();
            if STATE.load(Ordering::Relaxed) == ENABLED {
                check_slow(site)
            } else {
                None
            }
        }
        _ => check_slow(site),
    }
}

/// The error every `err`-action failpoint produces, so tests and retry
/// classifiers can recognize injected failures.
pub fn injected_error(site: &str) -> Error {
    Error::Io(format!("injected fault at {site}"))
}

/// Convenience for plain fallible sites: `err` returns the injected
/// error, `panic` panics, `delay`/`stall` sleep then succeed. Any other
/// configured action also maps to the injected error — a site that wants
/// torn/corrupt/drop/crash semantics must use [`check`] directly.
#[inline]
pub fn inject(site: &str) -> Result<()> {
    match check(site) {
        None => Ok(()),
        Some(FaultAction::Panic) => panic!("injected panic at {site}"),
        Some(FaultAction::Delay(ms)) | Some(FaultAction::Stall(ms)) => {
            std::thread::sleep(std::time::Duration::from_millis(ms));
            Ok(())
        }
        Some(_) => Err(injected_error(site)),
    }
}

/// How many times `site` has fired under the current schedule.
pub fn fired(site: &str) -> u64 {
    let registry = REGISTRY.lock().unwrap_or_else(|e| e.into_inner());
    registry
        .as_ref()
        .and_then(|r| r.sites.get(site))
        .map_or(0, |c| c.fires)
}

/// Total fires across all sites under the current schedule.
pub fn fired_total() -> u64 {
    let registry = REGISTRY.lock().unwrap_or_else(|e| e.into_inner());
    registry
        .as_ref()
        .map_or(0, |r| r.sites.values().map(|c| c.fires).sum())
}

/// One `(site, action-name, fires)` row per configured site, sorted by
/// site — for logging what a chaos run actually injected.
pub fn report() -> Vec<(String, &'static str, u64)> {
    let registry = REGISTRY.lock().unwrap_or_else(|e| e.into_inner());
    let mut rows: Vec<_> = registry
        .as_ref()
        .map(|r| {
            r.sites
                .iter()
                .map(|(site, c)| (site.clone(), c.action.name(), c.fires))
                .collect()
        })
        .unwrap_or_default();
    rows.sort();
    rows
}

#[cfg(test)]
mod tests {
    use super::*;

    // The registry is process-global; serialize tests that configure it.
    static TEST_LOCK: Mutex<()> = Mutex::new(());

    fn lock() -> std::sync::MutexGuard<'static, ()> {
        TEST_LOCK.lock().unwrap_or_else(|e| e.into_inner())
    }

    #[test]
    fn disabled_registry_never_fires() {
        let _g = lock();
        clear();
        assert!(!enabled());
        for _ in 0..100 {
            assert_eq!(check("store:put.io"), None);
            assert!(inject("store:put.io").is_ok());
        }
        assert_eq!(fired_total(), 0);
    }

    #[test]
    fn times_and_after_shape_the_schedule() {
        let _g = lock();
        configure("s=err,after=2,times=3").unwrap();
        let fires: Vec<bool> = (0..8).map(|_| check("s").is_some()).collect();
        assert_eq!(
            fires,
            vec![false, false, true, true, true, false, false, false]
        );
        assert_eq!(fired("s"), 3);
        clear();
    }

    #[test]
    fn every_fires_periodically() {
        let _g = lock();
        configure("s=err,every=3").unwrap();
        let fires: Vec<bool> = (0..7).map(|_| check("s").is_some()).collect();
        assert_eq!(fires, vec![true, false, false, true, false, false, true]);
        clear();
    }

    #[test]
    fn probabilistic_fires_are_deterministic_and_seed_sensitive() {
        let _g = lock();
        let run = |spec: &str| -> Vec<bool> {
            configure(spec).unwrap();
            (0..64).map(|_| check("s").is_some()).collect()
        };
        let a = run("s=err,p=0.5,seed=1");
        let b = run("s=err,p=0.5,seed=1");
        let c = run("s=err,p=0.5,seed=2");
        assert_eq!(a, b, "same seed must replay identically");
        assert_ne!(a, c, "different seed must differ");
        let hits = a.iter().filter(|&&f| f).count();
        assert!((10..=54).contains(&hits), "p=0.5 over 64: {hits}");
        let none = run("s=err,p=0.0");
        assert!(none.iter().all(|&f| !f));
        let all = run("s=err,p=1.0");
        assert!(all.iter().all(|&f| f));
        clear();
    }

    #[test]
    fn actions_parse_and_inject_behaves() {
        let _g = lock();
        configure("a=delay,ms=1;b=err;c=torn;d=stall,ms=2").unwrap();
        assert_eq!(check("a"), Some(FaultAction::Delay(1)));
        assert!(matches!(inject("b"), Err(Error::Io(m)) if m.contains("injected fault at b")));
        assert_eq!(check("c"), Some(FaultAction::Torn));
        // site-specific action through inject degrades to the error
        assert!(inject("c").is_err());
        assert_eq!(check("d"), Some(FaultAction::Stall(2)));
        assert!(inject("a").is_ok(), "delay proceeds normally");
        clear();
    }

    #[test]
    #[should_panic(expected = "injected panic at boom")]
    fn panic_action_panics() {
        // no lock: panicking with the test lock held would poison it; a
        // dedicated site name keeps this isolated from other tests.
        configure("boom=panic").unwrap();
        let _ = inject("boom");
    }

    #[test]
    fn invalid_specs_are_rejected_and_preserve_previous_schedule() {
        let _g = lock();
        configure("keep=err,times=1").unwrap();
        for bad in [
            "nosuch",
            "s=frobnicate",
            "s=err,p=2.0",
            "s=err,times=x",
            "s=err,bogus=1",
            "=err",
        ] {
            assert!(configure(bad).is_err(), "{bad} should not parse");
        }
        assert!(check("keep").is_some(), "failed configure must not clobber");
        clear();
    }

    #[test]
    fn unknown_sites_do_not_fire_and_report_lists_activity() {
        let _g = lock();
        configure("x=err,times=1;y=corrupt").unwrap();
        assert_eq!(check("z"), None);
        let _ = check("x");
        let _ = check("y");
        assert_eq!(
            report(),
            vec![("x".to_string(), "err", 1), ("y".to_string(), "corrupt", 1)]
        );
        assert_eq!(fired_total(), 2);
        clear();
    }

    #[test]
    fn backoff_is_deterministic_capped_and_grows() {
        assert_eq!(backoff_ms(0, 1000, 5, "t"), 0, "disabled");
        assert_eq!(backoff_ms(10, 1000, 1, "t"), 0, "first attempt is free");
        let a2 = backoff_ms(10, 1000, 2, "t");
        let a5 = backoff_ms(10, 1000, 5, "t");
        assert!((5..=10).contains(&a2), "{a2}");
        assert!((40..=80).contains(&a5), "{a5}");
        assert_eq!(a2, backoff_ms(10, 1000, 2, "t"), "deterministic");
        // different keys get different jitter; the [40,80] window at
        // attempt 5 is wide enough that 8 keys can't all collide
        let by_key: std::collections::HashSet<u64> = (0..8)
            .map(|i| backoff_ms(10, 1000, 5, &format!("key-{i}")))
            .collect();
        assert!(by_key.len() > 1, "jitter ignores the key: {by_key:?}");
        assert!(backoff_ms(10, 50, 9, "t") <= 50, "cap respected");
    }

    #[test]
    fn empty_spec_disables() {
        let _g = lock();
        configure("s=err").unwrap();
        assert!(enabled());
        configure("  ;  ").unwrap();
        assert!(!enabled());
        assert_eq!(check("s"), None);
        clear();
    }

    #[test]
    fn options_key_activates() {
        let _g = lock();
        let opts = pressio_core::Options::new().with(OPTION_KEY, "o=err,times=1");
        assert!(configure_from_options(&opts).unwrap());
        assert_eq!(check("o"), Some(FaultAction::Error));
        assert!(!configure_from_options(&pressio_core::Options::new()).unwrap());
        clear();
    }
}
