//! Fuzz the failpoint-spec parser: `configure` must reject malformed
//! schedules with an error — never a panic — and must accept every spec
//! the grammar can produce. Cases derive deterministically from a seed
//! (see `pressio_core::fuzz`); `PRESSIO_FUZZ_ITERS` deepens nightly runs.

use pressio_core::fuzz::{Fuzzer, Rng};

/// The failpoint registry is process-global; these tests must not
/// interleave their configure/report cycles.
static REGISTRY_LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());

fn lock() -> std::sync::MutexGuard<'static, ()> {
    REGISTRY_LOCK
        .lock()
        .unwrap_or_else(|poisoned| poisoned.into_inner())
}

/// Valid schedules covering every action and modifier the parser knows.
fn corpus() -> Vec<Vec<u8>> {
    [
        "store.write=err",
        "queue.pop=delay,ms=25",
        "net.accept=torn,times=3,after=2",
        "pipeline.batch=corrupt,every=4,seed=99",
        "store.read=drop,p=0.25,seed=7",
        "worker.claim=panic,times=1",
        "conn.read=stall,ms=50;conn.write=err,every=2",
        "a=err;b=delay,ms=1;c=crash,after=10,times=2,every=3,seed=42",
        "  spaced.site = error , times=2 ; other=torn ",
        "",
    ]
    .into_iter()
    .map(|s| s.as_bytes().to_vec())
    .collect()
}

#[test]
fn configure_never_panics_on_mutated_specs() {
    let _guard = lock();
    let corpus = corpus();
    Fuzzer::from_env(800).run(&corpus, |case| {
        let spec = String::from_utf8_lossy(case);
        // Ok or Err are both fine; what matters is that a hostile
        // PRESSIO_FAULTS value can never take the process down
        let _ = pressio_faults::configure(&spec);
    });
    pressio_faults::clear();
}

/// Grammar-directed generator: every spec it emits is valid by
/// construction, so `configure` accepting all of them pins the grammar.
fn generate_valid_spec(rng: &mut Rng) -> String {
    const ACTIONS: [&str; 9] = [
        "err", "error", "panic", "delay", "torn", "corrupt", "drop", "crash", "stall",
    ];
    const SITES: [&str; 5] = ["store.write", "queue.pop", "net.accept", "conn.read", "w"];
    let entries = 1 + rng.below(4);
    let mut spec = String::new();
    for e in 0..entries {
        if e > 0 {
            spec.push(';');
        }
        spec.push_str(SITES[rng.below(SITES.len())]);
        spec.push('=');
        spec.push_str(ACTIONS[rng.below(ACTIONS.len())]);
        for _ in 0..rng.below(4) {
            match rng.below(6) {
                0 => spec.push_str(&format!(",ms={}", rng.below(1000))),
                1 => spec.push_str(&format!(",times={}", rng.below(10))),
                2 => spec.push_str(&format!(",after={}", rng.below(10))),
                3 => spec.push_str(&format!(",every={}", rng.below(10))),
                4 => spec.push_str(&format!(",seed={}", rng.next_u64() % 10_000)),
                _ => spec.push_str(&format!(",p=0.{}", rng.below(10))),
            }
        }
    }
    spec
}

#[test]
fn every_generated_valid_spec_is_accepted() {
    let _guard = lock();
    let fuzzer = Fuzzer::from_env(400);
    let mut rng = Rng::new(fuzzer.seed);
    for i in 0..fuzzer.iters {
        let spec = generate_valid_spec(&mut rng);
        pressio_faults::configure(&spec)
            .unwrap_or_else(|e| panic!("valid spec rejected at iteration {i}: '{spec}': {e}"));
    }
    pressio_faults::clear();
}

#[test]
fn rejected_specs_leave_previous_schedule_untouched() {
    let _guard = lock();
    // the documented contract: an invalid spec is atomic — it must not
    // half-apply or clobber the active schedule
    let fuzzer = Fuzzer::from_env(200);
    let mut rng = Rng::new(fuzzer.seed ^ 0xdead);
    for _ in 0..fuzzer.iters {
        let good = generate_valid_spec(&mut rng);
        pressio_faults::configure(&good).unwrap();
        let before = pressio_faults::report();
        let bad = format!("{good};broken spec with no equals sign");
        assert!(pressio_faults::configure(&bad).is_err());
        assert_eq!(
            pressio_faults::report(),
            before,
            "failed configure must not alter the active schedule"
        );
    }
    pressio_faults::clear();
}
