//! # pressio-stats
//!
//! Statistics and machine-learning substrate for the LibPressio-Predict
//! reproduction. The paper's prediction schemes were originally backed by
//! Python/R libraries through an embedded interpreter; this crate provides
//! native, serializable, deterministic equivalents:
//!
//! - [`descriptive`] — summaries, quantiles, and the MedAPE quality metric
//!   (paper §5).
//! - [`linalg`] — dense matrices, Cholesky SPD solves, one-sided Jacobi SVD
//!   and the SVD-truncation feature (Underwood 2023).
//! - [`regression`] — OLS linear models (Krasowska 2021).
//! - [`spline`] — natural cubic spline regression (Underwood 2023).
//! - [`tree`] / [`forest`] — CART random forests with FXRZ-style data
//!   augmentation (Rahman 2023).
//! - [`variogram`] — spatial-correlation features (Krasowska 2021).
//! - [`kfold`] — deterministic k-fold cross-validation splits (§4.3).
//! - [`temporal`] — previous-timestep delta statistics for streaming
//!   time-series prediction (LFZip-style residual summaries).
//! - [`conformal`] — split conformal prediction intervals (Ganguli 2023).

#![warn(missing_docs)]

pub mod conformal;
pub mod descriptive;
pub mod forest;
pub mod gp;
pub mod kfold;
pub mod lanes;
pub mod linalg;
pub mod mlp;
pub mod regression;
pub mod spline;
pub mod temporal;
pub mod tree;
pub mod variogram;

pub use conformal::{ConformalCalibration, Interval};
pub use descriptive::{medape, median, quantile, summarize, Summary};
pub use forest::{augment_by_interpolation, ForestParams, RandomForest};
pub use gp::GaussianProcess;
pub use kfold::{k_folds, Fold};
pub use linalg::{singular_values, svd_truncation_fraction, Matrix};
pub use mlp::{Mlp, MlpParams};
pub use regression::LinearModel;
pub use spline::NaturalSpline;
pub use temporal::{temporal_delta, TemporalDelta};
pub use tree::{RegressionTree, TreeParams};
pub use variogram::{variogram, variogram_score};
