//! Split conformal prediction intervals.
//!
//! Ganguli (2023) wraps its compressibility estimator in conformal
//! prediction to give *statistically guaranteed* error bounds — the feature
//! the paper singles out as enabling precise misprediction forecasting for
//! HDF5 parallel writes. This module provides the distribution-free split
//! conformal wrapper: calibrate on held-out residuals, then widen every
//! prediction by the `(1−α)(1 + 1/n)` residual quantile.

use serde::{Deserialize, Serialize};

/// A calibrated conformal interval generator.
#[derive(Debug, Clone, Serialize, Deserialize, PartialEq)]
pub struct ConformalCalibration {
    /// Sorted absolute calibration residuals.
    residuals: Vec<f64>,
}

/// A prediction interval `[lo, hi]` with its nominal coverage.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Interval {
    /// Lower bound.
    pub lo: f64,
    /// Upper bound.
    pub hi: f64,
    /// Nominal coverage (1 − α).
    pub coverage: f64,
}

impl ConformalCalibration {
    /// Calibrate from paired predictions and actuals on a held-out set.
    /// Returns `None` when no finite residuals are available.
    pub fn calibrate(predicted: &[f64], actual: &[f64]) -> Option<ConformalCalibration> {
        let mut residuals: Vec<f64> = predicted
            .iter()
            .zip(actual)
            .map(|(p, a)| (p - a).abs())
            .filter(|r| r.is_finite())
            .collect();
        if residuals.is_empty() {
            return None;
        }
        residuals.sort_by(|a, b| a.partial_cmp(b).unwrap());
        Some(ConformalCalibration { residuals })
    }

    /// Number of calibration residuals.
    pub fn len(&self) -> usize {
        self.residuals.len()
    }

    /// Whether the calibration set is empty (never true post-`calibrate`).
    pub fn is_empty(&self) -> bool {
        self.residuals.is_empty()
    }

    /// Half-width of the interval at miscoverage `alpha` — the ⌈(n+1)(1−α)⌉
    /// -th smallest residual (finite-sample valid split conformal quantile).
    pub fn half_width(&self, alpha: f64) -> f64 {
        let n = self.residuals.len();
        let alpha = alpha.clamp(0.0, 1.0);
        let rank = (((n + 1) as f64) * (1.0 - alpha)).ceil() as usize;
        if rank == 0 {
            return 0.0;
        }
        if rank > n {
            // requested coverage unattainable with this calibration size:
            // return the max residual (most honest finite answer)
            return self.residuals[n - 1];
        }
        self.residuals[rank - 1]
    }

    /// Interval around a point prediction at miscoverage `alpha`
    /// (e.g. `alpha = 0.1` → 90% coverage).
    pub fn interval(&self, prediction: f64, alpha: f64) -> Interval {
        let w = self.half_width(alpha);
        Interval {
            lo: prediction - w,
            hi: prediction + w,
            coverage: 1.0 - alpha,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pseudo_noise(i: usize) -> f64 {
        ((i as f64 * 12.9898).sin() * 43758.5453).fract() - 0.5
    }

    #[test]
    fn empirical_coverage_close_to_nominal() {
        // predictor is truth + noise; calibrate on half, test on half
        let n = 2000;
        let actual: Vec<f64> = (0..n).map(|i| (i as f64 * 0.01).sin() * 10.0).collect();
        let predicted: Vec<f64> = actual
            .iter()
            .enumerate()
            .map(|(i, a)| a + pseudo_noise(i))
            .collect();
        let cal = ConformalCalibration::calibrate(&predicted[..n / 2], &actual[..n / 2]).unwrap();
        for alpha in [0.1, 0.25] {
            let mut covered = 0usize;
            for i in n / 2..n {
                let iv = cal.interval(predicted[i], alpha);
                if iv.lo <= actual[i] && actual[i] <= iv.hi {
                    covered += 1;
                }
            }
            let rate = covered as f64 / (n / 2) as f64;
            assert!(
                rate >= 1.0 - alpha - 0.05,
                "alpha={alpha}: coverage {rate} below nominal"
            );
        }
    }

    #[test]
    fn tighter_alpha_means_wider_interval() {
        let predicted: Vec<f64> = (0..100).map(|i| i as f64).collect();
        let actual: Vec<f64> = (0..100).map(|i| i as f64 + pseudo_noise(i) * 4.0).collect();
        let cal = ConformalCalibration::calibrate(&predicted, &actual).unwrap();
        assert!(cal.half_width(0.01) >= cal.half_width(0.2));
        assert!(cal.half_width(0.2) >= cal.half_width(0.8));
    }

    #[test]
    fn perfect_predictor_gives_zero_width() {
        let v: Vec<f64> = (0..50).map(|i| i as f64).collect();
        let cal = ConformalCalibration::calibrate(&v, &v).unwrap();
        assert_eq!(cal.half_width(0.1), 0.0);
        let iv = cal.interval(7.0, 0.1);
        assert_eq!((iv.lo, iv.hi), (7.0, 7.0));
    }

    #[test]
    fn degenerate_inputs() {
        assert!(ConformalCalibration::calibrate(&[], &[]).is_none());
        assert!(ConformalCalibration::calibrate(&[f64::NAN], &[1.0]).is_none());
        let cal = ConformalCalibration::calibrate(&[1.0], &[2.0]).unwrap();
        // n=1: any coverage above 1/2 needs rank 2 > n -> max residual
        assert_eq!(cal.half_width(0.05), 1.0);
    }

    #[test]
    fn interval_reports_coverage() {
        let cal = ConformalCalibration::calibrate(&[1.0, 2.0], &[1.5, 2.5]).unwrap();
        let iv = cal.interval(0.0, 0.1);
        assert_eq!(iv.coverage, 0.9);
        assert!(iv.lo <= iv.hi);
    }

    #[test]
    fn serde_round_trip() {
        let cal = ConformalCalibration::calibrate(&[1.0, 2.0, 3.0], &[1.1, 2.2, 2.7]).unwrap();
        let json = serde_json::to_string(&cal).unwrap();
        let back: ConformalCalibration = serde_json::from_str(&json).unwrap();
        assert_eq!(cal, back);
    }
}
