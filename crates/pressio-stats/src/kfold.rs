//! Deterministic k-fold cross-validation splitting (paper §4.3 footnote 3):
//! the data is partitioned into `k` chunks; each fold trains on `k−1`
//! chunks and validates on the remaining one.

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

/// One train/validation split.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Fold {
    /// Indices used for training.
    pub train: Vec<usize>,
    /// Indices used for validation.
    pub validate: Vec<usize>,
}

/// Produce `k` folds over `n` items, shuffled deterministically by `seed`.
///
/// Every index appears in exactly one validation set; fold sizes differ by
/// at most one. Panics if `k < 2` or `n < k`.
pub fn k_folds(n: usize, k: usize, seed: u64) -> Vec<Fold> {
    assert!(k >= 2, "k-fold needs k >= 2");
    assert!(n >= k, "need at least k items");
    let mut indices: Vec<usize> = (0..n).collect();
    let mut rng = StdRng::seed_from_u64(seed);
    indices.shuffle(&mut rng);
    // chunk boundaries: first (n % k) folds get one extra
    let base = n / k;
    let extra = n % k;
    let mut folds = Vec::with_capacity(k);
    let mut start = 0usize;
    for f in 0..k {
        let len = base + usize::from(f < extra);
        let validate: Vec<usize> = indices[start..start + len].to_vec();
        let train: Vec<usize> = indices[..start]
            .iter()
            .chain(&indices[start + len..])
            .copied()
            .collect();
        folds.push(Fold { train, validate });
        start += len;
    }
    folds
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeSet;

    #[test]
    fn partition_is_disjoint_and_complete() {
        for (n, k) in [(10, 2), (10, 10), (48, 10), (100, 7)] {
            let folds = k_folds(n, k, 1);
            assert_eq!(folds.len(), k);
            let mut all_validation = BTreeSet::new();
            for f in &folds {
                for &i in &f.validate {
                    assert!(all_validation.insert(i), "index {i} validated twice");
                }
                // train + validate == everything
                let mut union: BTreeSet<usize> =
                    f.train.iter().chain(&f.validate).copied().collect();
                assert_eq!(union.len(), n);
                union.extend(0..n);
                assert_eq!(union.len(), n);
                // train and validate are disjoint
                let t: BTreeSet<usize> = f.train.iter().copied().collect();
                assert!(f.validate.iter().all(|i| !t.contains(i)));
            }
            assert_eq!(all_validation.len(), n);
        }
    }

    #[test]
    fn fold_sizes_balanced() {
        let folds = k_folds(48, 10, 3);
        let sizes: Vec<usize> = folds.iter().map(|f| f.validate.len()).collect();
        assert!(sizes.iter().all(|&s| s == 4 || s == 5));
        assert_eq!(sizes.iter().sum::<usize>(), 48);
    }

    #[test]
    fn deterministic_given_seed() {
        assert_eq!(k_folds(20, 4, 9), k_folds(20, 4, 9));
        assert_ne!(k_folds(20, 4, 9), k_folds(20, 4, 10));
    }

    #[test]
    #[should_panic(expected = "k >= 2")]
    fn k_one_panics() {
        let _ = k_folds(10, 1, 0);
    }

    #[test]
    #[should_panic(expected = "at least k items")]
    fn too_few_items_panics() {
        let _ = k_folds(3, 5, 0);
    }
}
