//! Ordinary least squares with feature standardization and serializable
//! state — the model behind the Krasowska (2021) scheme and the fit stage
//! of several other predictors.

use crate::linalg::{solve_spd, Matrix};
use serde::{Deserialize, Serialize};

/// Fit error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FitError {
    /// No (or not enough) training rows.
    TooFewSamples,
    /// Design matrix was numerically singular.
    Singular,
    /// Feature-dimension mismatch between fit and predict.
    DimensionMismatch,
}

impl std::fmt::Display for FitError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FitError::TooFewSamples => write!(f, "too few samples to fit"),
            FitError::Singular => write!(f, "singular design matrix"),
            FitError::DimensionMismatch => write!(f, "feature dimension mismatch"),
        }
    }
}

impl std::error::Error for FitError {}

/// A fitted linear model `y = b0 + Σ bi·(xi − μi)/σi` with standardized
/// features (standardization makes the ridge in the SPD solve scale-free).
#[derive(Debug, Clone, Serialize, Deserialize, PartialEq)]
pub struct LinearModel {
    intercept: f64,
    coefficients: Vec<f64>,
    feature_means: Vec<f64>,
    feature_stds: Vec<f64>,
}

impl LinearModel {
    /// Fit by OLS. `xs` is one row of features per sample; `ys` the targets.
    pub fn fit(xs: &[Vec<f64>], ys: &[f64]) -> Result<LinearModel, FitError> {
        let n = xs.len();
        if n == 0 || n != ys.len() {
            return Err(FitError::TooFewSamples);
        }
        let d = xs[0].len();
        if xs.iter().any(|r| r.len() != d) {
            return Err(FitError::DimensionMismatch);
        }
        if n < d + 1 {
            return Err(FitError::TooFewSamples);
        }
        // standardize features
        let mut means = vec![0.0f64; d];
        for row in xs {
            for (m, &x) in means.iter_mut().zip(row) {
                *m += x;
            }
        }
        for m in &mut means {
            *m /= n as f64;
        }
        let mut stds = vec![0.0f64; d];
        for row in xs {
            for ((s, &m), &x) in stds.iter_mut().zip(&means).zip(row) {
                *s += (x - m) * (x - m);
            }
        }
        for s in &mut stds {
            *s = (*s / n as f64).sqrt();
            if *s == 0.0 || !s.is_finite() {
                *s = 1.0; // constant feature: coefficient will be ~0
            }
        }
        // design with intercept column
        let mut design = Matrix::zeros(n, d + 1);
        for (r, row) in xs.iter().enumerate() {
            design.set(r, 0, 1.0);
            for (c, &x) in row.iter().enumerate() {
                design.set(r, c + 1, (x - means[c]) / stds[c]);
            }
        }
        let gram = design.gram();
        let rhs = design.t_mul_vec(ys);
        let beta = solve_spd(&gram, &rhs).ok_or(FitError::Singular)?;
        Ok(LinearModel {
            intercept: beta[0],
            coefficients: beta[1..].to_vec(),
            feature_means: means,
            feature_stds: stds,
        })
    }

    /// Predict a single sample.
    pub fn predict(&self, x: &[f64]) -> Result<f64, FitError> {
        if x.len() != self.coefficients.len() {
            return Err(FitError::DimensionMismatch);
        }
        let mut y = self.intercept;
        for (i, &xi) in x.iter().enumerate() {
            y += self.coefficients[i] * (xi - self.feature_means[i]) / self.feature_stds[i];
        }
        Ok(y)
    }

    /// Predict many samples.
    pub fn predict_batch(&self, xs: &[Vec<f64>]) -> Result<Vec<f64>, FitError> {
        xs.iter().map(|x| self.predict(x)).collect()
    }

    /// Number of features.
    pub fn num_features(&self) -> usize {
        self.coefficients.len()
    }

    /// Standardized coefficients (effect sizes).
    pub fn coefficients(&self) -> &[f64] {
        &self.coefficients
    }

    /// Serialize to JSON (the `predictors:state` payload).
    pub fn to_json(&self) -> String {
        serde_json::to_string(self).expect("LinearModel is always serializable")
    }

    /// Deserialize from [`LinearModel::to_json`].
    pub fn from_json(s: &str) -> Result<LinearModel, FitError> {
        serde_json::from_str(s).map_err(|_| FitError::Singular)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn noisy_plane(n: usize) -> (Vec<Vec<f64>>, Vec<f64>) {
        let mut xs = Vec::new();
        let mut ys = Vec::new();
        for i in 0..n {
            let a = (i % 17) as f64;
            let b = ((i * 7) % 13) as f64;
            xs.push(vec![a, b]);
            // deterministic pseudo-noise
            let noise = ((i as f64 * 12.9898).sin() * 43758.5453).fract() * 0.01;
            ys.push(2.0 + 3.0 * a - 0.5 * b + noise);
        }
        (xs, ys)
    }

    #[test]
    fn recovers_linear_relationship() {
        let (xs, ys) = noisy_plane(200);
        let m = LinearModel::fit(&xs, &ys).unwrap();
        let preds = m.predict_batch(&xs).unwrap();
        for (p, y) in preds.iter().zip(&ys) {
            assert!((p - y).abs() < 0.05, "{p} vs {y}");
        }
    }

    #[test]
    fn exact_fit_on_exact_data() {
        let xs: Vec<Vec<f64>> = (0..10).map(|i| vec![i as f64]).collect();
        let ys: Vec<f64> = (0..10).map(|i| 5.0 - 2.0 * i as f64).collect();
        let m = LinearModel::fit(&xs, &ys).unwrap();
        assert!((m.predict(&[20.0]).unwrap() - (5.0 - 40.0)).abs() < 1e-8);
    }

    #[test]
    fn constant_feature_is_harmless() {
        let xs: Vec<Vec<f64>> = (0..20).map(|i| vec![i as f64, 7.0]).collect();
        let ys: Vec<f64> = (0..20).map(|i| 1.0 + 2.0 * i as f64).collect();
        let m = LinearModel::fit(&xs, &ys).unwrap();
        assert!((m.predict(&[3.0, 7.0]).unwrap() - 7.0).abs() < 1e-6);
    }

    #[test]
    fn errors_on_degenerate_inputs() {
        assert_eq!(
            LinearModel::fit(&[], &[]).unwrap_err(),
            FitError::TooFewSamples
        );
        // fewer samples than features + intercept
        assert_eq!(
            LinearModel::fit(&[vec![1.0, 2.0]], &[1.0]).unwrap_err(),
            FitError::TooFewSamples
        );
        // ragged rows
        assert_eq!(
            LinearModel::fit(&[vec![1.0], vec![1.0, 2.0], vec![3.0]], &[1.0, 2.0, 3.0])
                .unwrap_err(),
            FitError::DimensionMismatch
        );
    }

    #[test]
    fn predict_dimension_checked() {
        let xs: Vec<Vec<f64>> = (0..5).map(|i| vec![i as f64]).collect();
        let ys = vec![0.0; 5];
        let m = LinearModel::fit(&xs, &ys).unwrap();
        assert_eq!(
            m.predict(&[1.0, 2.0]).unwrap_err(),
            FitError::DimensionMismatch
        );
    }

    #[test]
    fn json_state_round_trip() {
        let (xs, ys) = noisy_plane(50);
        let m = LinearModel::fit(&xs, &ys).unwrap();
        let restored = LinearModel::from_json(&m.to_json()).unwrap();
        assert_eq!(m, restored);
        assert_eq!(
            m.predict(&[1.0, 2.0]).unwrap(),
            restored.predict(&[1.0, 2.0]).unwrap()
        );
    }
}
