//! A small multi-layer perceptron regressor — the model family behind
//! Qin (2020)'s deep-learning compressibility estimator (Table 1: deep
//! learning, accurate, sampling, uses compressor internals).
//!
//! Two tanh hidden layers trained with full-batch gradient descent +
//! momentum on standardized inputs/targets. Initialization and training
//! are fully deterministic given the seed (a requirement for the
//! checkpointed bench).

use serde::{Deserialize, Serialize};

/// MLP hyper-parameters.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct MlpParams {
    /// Hidden width (both layers).
    pub hidden: usize,
    /// Training epochs (full-batch).
    pub epochs: usize,
    /// Learning rate.
    pub lr: f64,
    /// Momentum coefficient.
    pub momentum: f64,
    /// Init/shuffle seed.
    pub seed: u64,
}

impl Default for MlpParams {
    fn default() -> Self {
        MlpParams {
            hidden: 16,
            epochs: 400,
            lr: 0.02,
            momentum: 0.9,
            seed: 0x91A,
        }
    }
}

/// A fitted MLP: `x → tanh(W1 x + b1) → tanh(W2 h + b2) → w3·h + b3`.
#[derive(Debug, Clone, Serialize, Deserialize, PartialEq)]
pub struct Mlp {
    w1: Vec<Vec<f64>>, // hidden × d
    b1: Vec<f64>,
    w2: Vec<Vec<f64>>, // hidden × hidden
    b2: Vec<f64>,
    w3: Vec<f64>, // hidden
    b3: f64,
    x_means: Vec<f64>,
    x_stds: Vec<f64>,
    y_mean: f64,
    y_std: f64,
}

fn xorshift(state: &mut u64) -> f64 {
    *state ^= *state << 13;
    *state ^= *state >> 7;
    *state ^= *state << 17;
    (*state >> 11) as f64 / (1u64 << 53) as f64 * 2.0 - 1.0
}

struct Gradients {
    w1: Vec<Vec<f64>>,
    b1: Vec<f64>,
    w2: Vec<Vec<f64>>,
    b2: Vec<f64>,
    w3: Vec<f64>,
    b3: f64,
}

impl Mlp {
    /// Train on `(xs, ys)`. Needs at least 2 samples.
    pub fn fit(xs: &[Vec<f64>], ys: &[f64], params: &MlpParams) -> Option<Mlp> {
        let n = xs.len();
        if n < 2 || n != ys.len() {
            return None;
        }
        let d = xs[0].len();
        if d == 0 || xs.iter().any(|r| r.len() != d) {
            return None;
        }
        let h = params.hidden.max(2);
        // standardization
        let mut x_means = vec![0.0; d];
        for row in xs {
            for (m, &x) in x_means.iter_mut().zip(row) {
                *m += x / n as f64;
            }
        }
        let mut x_stds = vec![0.0; d];
        for row in xs {
            for ((s, &m), &x) in x_stds.iter_mut().zip(&x_means).zip(row) {
                *s += (x - m) * (x - m) / n as f64;
            }
        }
        for s in &mut x_stds {
            *s = s.sqrt().max(1e-12);
        }
        let y_mean = ys.iter().sum::<f64>() / n as f64;
        let y_std = (ys.iter().map(|y| (y - y_mean) * (y - y_mean)).sum::<f64>() / n as f64)
            .sqrt()
            .max(1e-12);
        let x_norm: Vec<Vec<f64>> = xs
            .iter()
            .map(|row| {
                row.iter()
                    .zip(x_means.iter().zip(&x_stds))
                    .map(|(&x, (&m, &s))| (x - m) / s)
                    .collect()
            })
            .collect();
        let y_norm: Vec<f64> = ys.iter().map(|y| (y - y_mean) / y_std).collect();

        // Xavier-ish init
        let mut state = params.seed | 1;
        let scale1 = (2.0 / (d + h) as f64).sqrt();
        let scale2 = (2.0 / (2 * h) as f64).sqrt();
        let mut net = Mlp {
            w1: (0..h)
                .map(|_| (0..d).map(|_| xorshift(&mut state) * scale1).collect())
                .collect(),
            b1: vec![0.0; h],
            w2: (0..h)
                .map(|_| (0..h).map(|_| xorshift(&mut state) * scale2).collect())
                .collect(),
            b2: vec![0.0; h],
            w3: (0..h).map(|_| xorshift(&mut state) * scale2).collect(),
            b3: 0.0,
            x_means,
            x_stds,
            y_mean,
            y_std,
        };
        let mut vel = Gradients {
            w1: vec![vec![0.0; d]; h],
            b1: vec![0.0; h],
            w2: vec![vec![0.0; h]; h],
            b2: vec![0.0; h],
            w3: vec![0.0; h],
            b3: 0.0,
        };
        for _ in 0..params.epochs {
            let mut grad = Gradients {
                w1: vec![vec![0.0; d]; h],
                b1: vec![0.0; h],
                w2: vec![vec![0.0; h]; h],
                b2: vec![0.0; h],
                w3: vec![0.0; h],
                b3: 0.0,
            };
            for (x, &y) in x_norm.iter().zip(&y_norm) {
                // forward
                let a1: Vec<f64> = (0..h)
                    .map(|i| {
                        (net.w1[i].iter().zip(x).map(|(w, v)| w * v).sum::<f64>() + net.b1[i])
                            .tanh()
                    })
                    .collect();
                let a2: Vec<f64> = (0..h)
                    .map(|i| {
                        (net.w2[i].iter().zip(&a1).map(|(w, v)| w * v).sum::<f64>() + net.b2[i])
                            .tanh()
                    })
                    .collect();
                let out: f64 = net.w3.iter().zip(&a2).map(|(w, v)| w * v).sum::<f64>() + net.b3;
                // backward (squared loss)
                let dout = 2.0 * (out - y) / n as f64;
                let mut da2 = vec![0.0; h];
                for i in 0..h {
                    grad.w3[i] += dout * a2[i];
                    da2[i] = dout * net.w3[i];
                }
                grad.b3 += dout;
                let mut da1 = vec![0.0; h];
                for i in 0..h {
                    let dz2 = da2[i] * (1.0 - a2[i] * a2[i]);
                    grad.b2[i] += dz2;
                    for j in 0..h {
                        grad.w2[i][j] += dz2 * a1[j];
                        da1[j] += dz2 * net.w2[i][j];
                    }
                }
                for i in 0..h {
                    let dz1 = da1[i] * (1.0 - a1[i] * a1[i]);
                    grad.b1[i] += dz1;
                    for (j, &xj) in x.iter().enumerate().take(d) {
                        grad.w1[i][j] += dz1 * xj;
                    }
                }
            }
            // momentum update
            for i in 0..h {
                for j in 0..d {
                    vel.w1[i][j] = params.momentum * vel.w1[i][j] - params.lr * grad.w1[i][j];
                    net.w1[i][j] += vel.w1[i][j];
                }
                vel.b1[i] = params.momentum * vel.b1[i] - params.lr * grad.b1[i];
                net.b1[i] += vel.b1[i];
                for j in 0..h {
                    vel.w2[i][j] = params.momentum * vel.w2[i][j] - params.lr * grad.w2[i][j];
                    net.w2[i][j] += vel.w2[i][j];
                }
                vel.b2[i] = params.momentum * vel.b2[i] - params.lr * grad.b2[i];
                net.b2[i] += vel.b2[i];
                vel.w3[i] = params.momentum * vel.w3[i] - params.lr * grad.w3[i];
                net.w3[i] += vel.w3[i];
            }
            vel.b3 = params.momentum * vel.b3 - params.lr * grad.b3;
            net.b3 += vel.b3;
        }
        Some(net)
    }

    /// Predict one sample.
    pub fn predict(&self, x: &[f64]) -> Option<f64> {
        if x.len() != self.x_means.len() {
            return None;
        }
        let xn: Vec<f64> = x
            .iter()
            .zip(self.x_means.iter().zip(&self.x_stds))
            .map(|(&v, (&m, &s))| (v - m) / s)
            .collect();
        let h = self.b1.len();
        let a1: Vec<f64> = (0..h)
            .map(|i| {
                (self.w1[i].iter().zip(&xn).map(|(w, v)| w * v).sum::<f64>() + self.b1[i]).tanh()
            })
            .collect();
        let a2: Vec<f64> = (0..h)
            .map(|i| {
                (self.w2[i].iter().zip(&a1).map(|(w, v)| w * v).sum::<f64>() + self.b2[i]).tanh()
            })
            .collect();
        let out: f64 = self.w3.iter().zip(&a2).map(|(w, v)| w * v).sum::<f64>() + self.b3;
        Some(out * self.y_std + self.y_mean)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn learns_linear_function() {
        let xs: Vec<Vec<f64>> = (0..60).map(|i| vec![i as f64 * 0.1]).collect();
        let ys: Vec<f64> = xs.iter().map(|x| 2.0 * x[0] - 1.0).collect();
        let net = Mlp::fit(&xs, &ys, &MlpParams::default()).unwrap();
        for (x, y) in xs.iter().zip(&ys) {
            let p = net.predict(x).unwrap();
            assert!((p - y).abs() < 0.4, "{p} vs {y}");
        }
    }

    #[test]
    fn learns_nonlinear_function() {
        let xs: Vec<Vec<f64>> = (0..100).map(|i| vec![i as f64 * 0.06 - 3.0]).collect();
        let ys: Vec<f64> = xs.iter().map(|x| x[0].sin()).collect();
        let net = Mlp::fit(
            &xs,
            &ys,
            &MlpParams {
                epochs: 1500,
                ..Default::default()
            },
        )
        .unwrap();
        let rmse = crate::descriptive::rmse(
            &ys,
            &xs.iter()
                .map(|x| net.predict(x).unwrap())
                .collect::<Vec<_>>(),
        );
        assert!(rmse < 0.25, "mlp rmse {rmse}");
    }

    #[test]
    fn deterministic_given_seed() {
        let xs: Vec<Vec<f64>> = (0..30).map(|i| vec![i as f64, (i * i) as f64]).collect();
        let ys: Vec<f64> = (0..30).map(|i| i as f64).collect();
        let a = Mlp::fit(&xs, &ys, &MlpParams::default()).unwrap();
        let b = Mlp::fit(&xs, &ys, &MlpParams::default()).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn degenerate_inputs_rejected() {
        assert!(Mlp::fit(&[], &[], &MlpParams::default()).is_none());
        assert!(Mlp::fit(&[vec![1.0]], &[1.0], &MlpParams::default()).is_none());
        let xs = vec![vec![1.0], vec![2.0]];
        let net = Mlp::fit(&xs, &[1.0, 2.0], &MlpParams::default()).unwrap();
        assert!(net.predict(&[1.0, 2.0]).is_none());
    }

    #[test]
    fn serde_round_trip() {
        let xs: Vec<Vec<f64>> = (0..20).map(|i| vec![i as f64]).collect();
        let ys: Vec<f64> = (0..20).map(|i| (i * 2) as f64).collect();
        let net = Mlp::fit(&xs, &ys, &MlpParams::default()).unwrap();
        let json = serde_json::to_string(&net).unwrap();
        let back: Mlp = serde_json::from_str(&json).unwrap();
        assert_eq!(net.predict(&[5.0]), back.predict(&[5.0]));
    }
}
