//! Gaussian-process regression — the model family behind Lu (2018)'s
//! compression-performance estimator (Table 1: regression, accurate,
//! sampling, uses compressor internals).
//!
//! Exact GP with a squared-exponential kernel: hyper-parameters are set by
//! the median heuristic (lengthscale) and the target variance (signal),
//! which is robust and deterministic — no iterative marginal-likelihood
//! optimization, keeping `fit` fast and reproducible.

use crate::linalg::{solve_spd, Matrix};
use crate::regression::FitError;
use serde::{Deserialize, Serialize};

/// A fitted Gaussian-process regressor.
#[derive(Debug, Clone, Serialize, Deserialize, PartialEq)]
pub struct GaussianProcess {
    train_x: Vec<Vec<f64>>,
    alpha: Vec<f64>,
    lengthscale: f64,
    signal_var: f64,
    y_mean: f64,
    feature_means: Vec<f64>,
    feature_stds: Vec<f64>,
}

fn sq_dist(a: &[f64], b: &[f64]) -> f64 {
    a.iter().zip(b).map(|(x, y)| (x - y) * (x - y)).sum()
}

impl GaussianProcess {
    /// Fit on `(xs, ys)` with noise variance fraction `noise` (of the
    /// target variance; e.g. `0.01`).
    pub fn fit(xs: &[Vec<f64>], ys: &[f64], noise: f64) -> Result<GaussianProcess, FitError> {
        let n = xs.len();
        if n == 0 || n != ys.len() {
            return Err(FitError::TooFewSamples);
        }
        let d = xs[0].len();
        if xs.iter().any(|r| r.len() != d) {
            return Err(FitError::DimensionMismatch);
        }
        // standardize features
        let mut means = vec![0.0f64; d];
        for row in xs {
            for (m, &x) in means.iter_mut().zip(row) {
                *m += x / n as f64;
            }
        }
        let mut stds = vec![0.0f64; d];
        for row in xs {
            for ((s, &m), &x) in stds.iter_mut().zip(&means).zip(row) {
                *s += (x - m) * (x - m) / n as f64;
            }
        }
        for s in &mut stds {
            *s = s.sqrt();
            if *s == 0.0 || !s.is_finite() {
                *s = 1.0;
            }
        }
        let train_x: Vec<Vec<f64>> = xs
            .iter()
            .map(|row| {
                row.iter()
                    .zip(means.iter().zip(&stds))
                    .map(|(&x, (&m, &s))| (x - m) / s)
                    .collect()
            })
            .collect();
        // median heuristic lengthscale over pairwise distances
        let mut dists = Vec::new();
        for i in 0..n.min(64) {
            for j in i + 1..n.min(64) {
                let dsq = sq_dist(&train_x[i], &train_x[j]);
                if dsq > 0.0 {
                    dists.push(dsq.sqrt());
                }
            }
        }
        dists.sort_by(|a, b| a.partial_cmp(b).unwrap());
        // half the median pairwise distance: the plain median tends to
        // over-smooth boundaries on densely sampled 1-d sweeps
        let lengthscale = if dists.is_empty() {
            1.0
        } else {
            (dists[dists.len() / 2] * 0.5).max(1e-6)
        };
        let y_mean = ys.iter().sum::<f64>() / n as f64;
        let y_var = ys.iter().map(|y| (y - y_mean) * (y - y_mean)).sum::<f64>() / n as f64;
        let signal_var = y_var.max(1e-12);
        let noise_var = (noise.max(1e-6) * signal_var).max(1e-12);
        // K + σ²I, then α = (K + σ²I)⁻¹ (y − ȳ)
        let mut k = Matrix::zeros(n, n);
        for i in 0..n {
            for j in i..n {
                let v = signal_var
                    * (-sq_dist(&train_x[i], &train_x[j]) / (2.0 * lengthscale * lengthscale))
                        .exp();
                k.set(i, j, v);
                k.set(j, i, v);
            }
            k.set(i, i, k.get(i, i) + noise_var);
        }
        let centered: Vec<f64> = ys.iter().map(|y| y - y_mean).collect();
        let alpha = solve_spd(&k, &centered).ok_or(FitError::Singular)?;
        Ok(GaussianProcess {
            train_x,
            alpha,
            lengthscale,
            signal_var,
            y_mean,
            feature_means: means,
            feature_stds: stds,
        })
    }

    /// Posterior mean at `x`.
    pub fn predict(&self, x: &[f64]) -> Result<f64, FitError> {
        if x.len() != self.feature_means.len() {
            return Err(FitError::DimensionMismatch);
        }
        let xs: Vec<f64> = x
            .iter()
            .zip(self.feature_means.iter().zip(&self.feature_stds))
            .map(|(&v, (&m, &s))| (v - m) / s)
            .collect();
        let mut mean = self.y_mean;
        for (xi, &a) in self.train_x.iter().zip(&self.alpha) {
            let k = self.signal_var
                * (-sq_dist(&xs, xi) / (2.0 * self.lengthscale * self.lengthscale)).exp();
            mean += k * a;
        }
        Ok(mean)
    }

    /// Number of training points retained.
    pub fn num_train(&self) -> usize {
        self.train_x.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn wave_data(n: usize) -> (Vec<Vec<f64>>, Vec<f64>) {
        let xs: Vec<Vec<f64>> = (0..n).map(|i| vec![i as f64 * 0.2]).collect();
        let ys: Vec<f64> = xs.iter().map(|x| (x[0]).sin() * 3.0 + 1.0).collect();
        (xs, ys)
    }

    #[test]
    fn interpolates_smooth_function() {
        let (xs, ys) = wave_data(60);
        let gp = GaussianProcess::fit(&xs, &ys, 0.001).unwrap();
        for (x, y) in xs.iter().zip(&ys) {
            let p = gp.predict(x).unwrap();
            assert!((p - y).abs() < 0.15, "{p} vs {y} at {x:?}");
        }
        // between training points too
        let p = gp.predict(&[3.1]).unwrap();
        assert!((p - (3.1f64.sin() * 3.0 + 1.0)).abs() < 0.2);
    }

    #[test]
    fn reverts_to_mean_far_from_data() {
        let (xs, ys) = wave_data(30);
        let mean = ys.iter().sum::<f64>() / ys.len() as f64;
        let gp = GaussianProcess::fit(&xs, &ys, 0.01).unwrap();
        let far = gp.predict(&[1e6]).unwrap();
        assert!(
            (far - mean).abs() < 1e-6,
            "far prediction {far} vs mean {mean}"
        );
    }

    #[test]
    fn multidimensional_fit() {
        let xs: Vec<Vec<f64>> = (0..80)
            .map(|i| vec![(i % 9) as f64, (i % 7) as f64])
            .collect();
        let ys: Vec<f64> = xs.iter().map(|r| r[0] * 2.0 - r[1] + 0.5).collect();
        let gp = GaussianProcess::fit(&xs, &ys, 0.001).unwrap();
        for (x, y) in xs.iter().zip(&ys).take(20) {
            assert!((gp.predict(x).unwrap() - y).abs() < 0.5);
        }
    }

    #[test]
    fn degenerate_inputs_error() {
        assert!(GaussianProcess::fit(&[], &[], 0.01).is_err());
        let gp = GaussianProcess::fit(&[vec![1.0]], &[2.0], 0.01).unwrap();
        assert!(gp.predict(&[1.0, 2.0]).is_err());
        // single point predicts its own value
        assert!((gp.predict(&[1.0]).unwrap() - 2.0).abs() < 0.1);
    }

    #[test]
    fn constant_targets_are_fine() {
        let xs: Vec<Vec<f64>> = (0..10).map(|i| vec![i as f64]).collect();
        let ys = vec![5.0; 10];
        let gp = GaussianProcess::fit(&xs, &ys, 0.01).unwrap();
        assert!((gp.predict(&[3.5]).unwrap() - 5.0).abs() < 1e-6);
    }

    #[test]
    fn serde_round_trip() {
        let (xs, ys) = wave_data(20);
        let gp = GaussianProcess::fit(&xs, &ys, 0.01).unwrap();
        let json = serde_json::to_string(&gp).unwrap();
        let back: GaussianProcess = serde_json::from_str(&json).unwrap();
        assert_eq!(gp, back);
        assert_eq!(gp.predict(&[1.0]).unwrap(), back.predict(&[1.0]).unwrap());
    }
}
