//! Random-forest regression with FXRZ-style data augmentation.
//!
//! Rahman (2023) predicts compression ratio with random forests over
//! dataset features, and cuts training cost by *augmenting* the training
//! set with interpolated pseudo-samples — both are implemented here.

use crate::tree::{RegressionTree, TreeParams};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// Forest hyper-parameters.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct ForestParams {
    /// Number of trees.
    pub num_trees: usize,
    /// Per-tree growth parameters (its `max_features` is overridden by
    /// `mtry` below).
    pub tree: TreeParams,
    /// Features examined per split (`None` = `max(1, d/3)`, the usual
    /// regression-forest default).
    pub mtry: Option<usize>,
    /// RNG seed for bootstrap sampling — forests are deterministic given
    /// the seed, which the checkpointed bench relies on.
    pub seed: u64,
}

impl Default for ForestParams {
    fn default() -> Self {
        ForestParams {
            num_trees: 50,
            tree: TreeParams::default(),
            mtry: None,
            seed: 0x5EED,
        }
    }
}

/// A fitted random forest.
#[derive(Debug, Clone, Serialize, Deserialize, PartialEq)]
pub struct RandomForest {
    trees: Vec<RegressionTree>,
    num_features: usize,
}

impl RandomForest {
    /// Fit on `(xs, ys)`; panics on empty input (caller validates).
    pub fn fit(xs: &[Vec<f64>], ys: &[f64], params: &ForestParams) -> RandomForest {
        assert_eq!(xs.len(), ys.len());
        assert!(!xs.is_empty(), "cannot fit a forest on zero samples");
        let n = xs.len();
        let d = xs[0].len();
        let mtry = params.mtry.unwrap_or_else(|| (d / 3).max(1));
        let tree_params = TreeParams {
            max_features: Some(mtry),
            ..params.tree
        };
        let mut rng = StdRng::seed_from_u64(params.seed);
        let trees = (0..params.num_trees)
            .map(|t| {
                // bootstrap sample
                let mut bxs = Vec::with_capacity(n);
                let mut bys = Vec::with_capacity(n);
                for _ in 0..n {
                    let i = rng.gen_range(0..n);
                    bxs.push(xs[i].clone());
                    bys.push(ys[i]);
                }
                RegressionTree::fit(&bxs, &bys, &tree_params, params.seed ^ (t as u64 + 1))
            })
            .collect();
        RandomForest {
            trees,
            num_features: d,
        }
    }

    /// Mean prediction across trees.
    pub fn predict(&self, x: &[f64]) -> f64 {
        let s: f64 = self.trees.iter().map(|t| t.predict(x)).sum();
        s / self.trees.len() as f64
    }

    /// Predict many samples.
    pub fn predict_batch(&self, xs: &[Vec<f64>]) -> Vec<f64> {
        xs.iter().map(|x| self.predict(x)).collect()
    }

    /// Per-tree predictions (for uncertainty diagnostics).
    pub fn predict_per_tree(&self, x: &[f64]) -> Vec<f64> {
        self.trees.iter().map(|t| t.predict(x)).collect()
    }

    /// Number of trees.
    pub fn num_trees(&self) -> usize {
        self.trees.len()
    }

    /// Feature dimension the forest expects.
    pub fn num_features(&self) -> usize {
        self.num_features
    }

    /// Serialize to JSON (the `predictors:state` payload).
    pub fn to_json(&self) -> String {
        serde_json::to_string(self).expect("RandomForest is always serializable")
    }

    /// Deserialize from [`RandomForest::to_json`].
    pub fn from_json(s: &str) -> Option<RandomForest> {
        serde_json::from_str(s).ok()
    }
}

/// FXRZ data augmentation: extend `(xs, ys)` with `factor × n` synthetic
/// samples obtained by convex interpolation between random training pairs.
/// Rahman (2023) reports this slashes the amount of real (expensive,
/// compressor-in-the-loop) training data needed.
pub fn augment_by_interpolation(xs: &mut Vec<Vec<f64>>, ys: &mut Vec<f64>, factor: f64, seed: u64) {
    let n = xs.len();
    if n < 2 || factor <= 0.0 {
        return;
    }
    let extra = (n as f64 * factor).round() as usize;
    let mut rng = StdRng::seed_from_u64(seed);
    for _ in 0..extra {
        let i = rng.gen_range(0..n);
        let mut j = rng.gen_range(0..n);
        if j == i {
            j = (j + 1) % n;
        }
        let t: f64 = rng.gen_range(0.0..1.0);
        let x: Vec<f64> = xs[i]
            .iter()
            .zip(&xs[j])
            .map(|(a, b)| a * (1.0 - t) + b * t)
            .collect();
        let y = ys[i] * (1.0 - t) + ys[j] * t;
        xs.push(x);
        ys.push(y);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::descriptive::rmse;

    fn friedman_like(n: usize) -> (Vec<Vec<f64>>, Vec<f64>) {
        // deterministic pseudo-random features, smooth nonlinear target
        let mut state = 0xABCDu64;
        let mut next = || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state >> 11) as f64 / (1u64 << 53) as f64
        };
        let xs: Vec<Vec<f64>> = (0..n).map(|_| (0..4).map(|_| next()).collect()).collect();
        let ys: Vec<f64> = xs
            .iter()
            .map(|r| {
                10.0 * (std::f64::consts::PI * r[0] * r[1]).sin()
                    + 20.0 * (r[2] - 0.5).powi(2)
                    + 5.0 * r[3]
            })
            .collect();
        (xs, ys)
    }

    #[test]
    fn learns_nonlinear_function() {
        let (xs, ys) = friedman_like(400);
        let f = RandomForest::fit(&xs, &ys, &ForestParams::default());
        let preds = f.predict_batch(&xs);
        let e = rmse(&ys, &preds);
        let spread = crate::descriptive::summarize(&ys).variance.sqrt();
        assert!(e < spread / 2.0, "forest rmse {e} vs target sd {spread}");
    }

    #[test]
    fn more_trees_do_not_hurt_much() {
        let (xs, ys) = friedman_like(200);
        let small = RandomForest::fit(
            &xs,
            &ys,
            &ForestParams {
                num_trees: 2,
                ..Default::default()
            },
        );
        let big = RandomForest::fit(
            &xs,
            &ys,
            &ForestParams {
                num_trees: 60,
                ..Default::default()
            },
        );
        let e_small = rmse(&ys, &small.predict_batch(&xs));
        let e_big = rmse(&ys, &big.predict_batch(&xs));
        assert!(e_big <= e_small * 1.5, "big {e_big} vs small {e_small}");
    }

    #[test]
    fn deterministic_given_seed() {
        let (xs, ys) = friedman_like(100);
        let p = ForestParams {
            num_trees: 10,
            ..Default::default()
        };
        let a = RandomForest::fit(&xs, &ys, &p);
        let b = RandomForest::fit(&xs, &ys, &p);
        assert_eq!(a, b);
    }

    #[test]
    fn augmentation_adds_convex_samples() {
        let mut xs = vec![vec![0.0, 0.0], vec![1.0, 2.0]];
        let mut ys = vec![0.0, 10.0];
        augment_by_interpolation(&mut xs, &mut ys, 5.0, 9);
        assert_eq!(xs.len(), 12);
        for (x, y) in xs.iter().zip(&ys).skip(2) {
            // every synthetic point lies on the segment
            let t = x[0]; // x0 interpolates 0..1
            assert!((x[1] - 2.0 * t).abs() < 1e-12);
            assert!((y - 10.0 * t).abs() < 1e-12);
        }
    }

    #[test]
    fn augmentation_noop_on_degenerate_input() {
        let mut xs = vec![vec![1.0]];
        let mut ys = vec![1.0];
        augment_by_interpolation(&mut xs, &mut ys, 3.0, 1);
        assert_eq!(xs.len(), 1);
        let mut xs2: Vec<Vec<f64>> = vec![vec![1.0], vec![2.0]];
        let mut ys2 = vec![1.0, 2.0];
        augment_by_interpolation(&mut xs2, &mut ys2, 0.0, 1);
        assert_eq!(xs2.len(), 2);
    }

    #[test]
    fn augmented_training_helps_with_few_real_samples() {
        let (xs_all, ys_all) = friedman_like(300);
        let (train_x, train_y) = (&xs_all[..30].to_vec(), &ys_all[..30].to_vec());
        let (test_x, test_y) = (&xs_all[100..].to_vec(), &ys_all[100..].to_vec());
        let params = ForestParams {
            num_trees: 30,
            ..Default::default()
        };
        let plain = RandomForest::fit(train_x, train_y, &params);
        let mut ax = train_x.clone();
        let mut ay = train_y.clone();
        augment_by_interpolation(&mut ax, &mut ay, 4.0, 77);
        let aug = RandomForest::fit(&ax, &ay, &params);
        let e_plain = rmse(test_y, &plain.predict_batch(test_x));
        let e_aug = rmse(test_y, &aug.predict_batch(test_x));
        // augmentation should not catastrophically hurt, and usually helps
        assert!(e_aug < e_plain * 1.25, "aug {e_aug} vs plain {e_plain}");
    }

    #[test]
    fn json_round_trip() {
        let (xs, ys) = friedman_like(50);
        let f = RandomForest::fit(
            &xs,
            &ys,
            &ForestParams {
                num_trees: 5,
                ..Default::default()
            },
        );
        let back = RandomForest::from_json(&f.to_json()).unwrap();
        assert_eq!(f, back);
        assert_eq!(f.predict(&xs[0]), back.predict(&xs[0]));
    }
}
