//! Natural cubic spline regression — the flexible 1-D smoother the
//! Underwood (2023) scheme fits between its SVD-truncation feature and the
//! observed compression ratio.
//!
//! The basis is the standard natural-spline construction (Hastie et al.,
//! *Elements of Statistical Learning* §5.2.1): linear beyond the boundary
//! knots, cubic between them, fit by ordinary least squares.

use crate::linalg::{solve_spd, Matrix};
use crate::regression::FitError;
use serde::{Deserialize, Serialize};

/// A fitted natural cubic spline `y = f(x)`.
#[derive(Debug, Clone, Serialize, Deserialize, PartialEq)]
pub struct NaturalSpline {
    knots: Vec<f64>,
    /// Coefficients over the natural-spline basis (length `knots.len()`).
    beta: Vec<f64>,
}

fn pos_cube(v: f64) -> f64 {
    if v > 0.0 {
        v * v * v
    } else {
        0.0
    }
}

/// Evaluate the natural-spline basis at `x` for the given knots:
/// `[1, x, N1(x), ..., N_{K-2}(x)]`.
fn basis(x: f64, knots: &[f64]) -> Vec<f64> {
    let k = knots.len();
    let mut out = Vec::with_capacity(k);
    out.push(1.0);
    out.push(x);
    if k < 3 {
        return out;
    }
    let last = knots[k - 1];
    let second_last = knots[k - 2];
    let d_last = (pos_cube(x - second_last) - pos_cube(x - last)) / (last - second_last);
    for &xi in &knots[..k - 2] {
        let d_k = (pos_cube(x - xi) - pos_cube(x - last)) / (last - xi);
        out.push(d_k - d_last);
    }
    out
}

impl NaturalSpline {
    /// Fit with `num_knots` knots placed at quantiles of `xs`.
    ///
    /// Needs at least `num_knots + 1` samples and at least 2 distinct `x`
    /// values; degenerates gracefully to a line when knots collide.
    pub fn fit(xs: &[f64], ys: &[f64], num_knots: usize) -> Result<NaturalSpline, FitError> {
        let n = xs.len();
        if n != ys.len() || n < 2 {
            return Err(FitError::TooFewSamples);
        }
        let num_knots = num_knots.clamp(2, n.max(2));
        // quantile knots over the sorted distinct xs
        let mut sorted: Vec<f64> = xs.iter().copied().filter(|v| v.is_finite()).collect();
        if sorted.len() < 2 {
            return Err(FitError::TooFewSamples);
        }
        sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
        sorted.dedup_by(|a, b| (*a - *b).abs() < 1e-300);
        if sorted.len() < 2 {
            return Err(FitError::Singular);
        }
        let k = num_knots.min(sorted.len());
        let mut knots: Vec<f64> = (0..k)
            .map(|i| {
                let pos = i as f64 / (k - 1) as f64 * (sorted.len() - 1) as f64;
                sorted[pos.round() as usize]
            })
            .collect();
        knots.dedup_by(|a, b| (*a - *b).abs() < 1e-300);
        if n < knots.len() + 1 {
            return Err(FitError::TooFewSamples);
        }
        let d = knots.len();
        let mut design = Matrix::zeros(n, d);
        for (r, &x) in xs.iter().enumerate() {
            let row = basis(x, &knots);
            for (c, &v) in row.iter().enumerate() {
                design.set(r, c, v);
            }
        }
        let gram = design.gram();
        let rhs = design.t_mul_vec(ys);
        let beta = solve_spd(&gram, &rhs).ok_or(FitError::Singular)?;
        Ok(NaturalSpline { knots, beta })
    }

    /// Evaluate the fitted spline at `x`.
    pub fn predict(&self, x: f64) -> f64 {
        basis(x, &self.knots)
            .iter()
            .zip(&self.beta)
            .map(|(b, c)| b * c)
            .sum()
    }

    /// Evaluate at many points.
    pub fn predict_batch(&self, xs: &[f64]) -> Vec<f64> {
        xs.iter().map(|&x| self.predict(x)).collect()
    }

    /// Serialize to JSON.
    pub fn to_json(&self) -> String {
        serde_json::to_string(self).expect("NaturalSpline is always serializable")
    }

    /// Deserialize from [`NaturalSpline::to_json`].
    pub fn from_json(s: &str) -> Result<NaturalSpline, FitError> {
        serde_json::from_str(s).map_err(|_| FitError::Singular)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fits_linear_data_exactly() {
        let xs: Vec<f64> = (0..50).map(|i| i as f64 * 0.1).collect();
        let ys: Vec<f64> = xs.iter().map(|x| 3.0 * x - 1.0).collect();
        let sp = NaturalSpline::fit(&xs, &ys, 5).unwrap();
        for &x in &xs {
            assert!((sp.predict(x) - (3.0 * x - 1.0)).abs() < 1e-6);
        }
        // natural splines extrapolate linearly
        assert!((sp.predict(10.0) - 29.0).abs() < 1e-4);
    }

    #[test]
    fn fits_smooth_nonlinear_data() {
        let xs: Vec<f64> = (0..200).map(|i| i as f64 * 0.05).collect();
        let ys: Vec<f64> = xs.iter().map(|x| x.sin()).collect();
        let sp = NaturalSpline::fit(&xs, &ys, 10).unwrap();
        let preds = sp.predict_batch(&xs);
        let max_err = xs
            .iter()
            .zip(&preds)
            .map(|(x, p)| (x.sin() - p).abs())
            .fold(0.0f64, f64::max);
        assert!(max_err < 0.05, "spline fit error {max_err}");
    }

    #[test]
    fn beats_line_on_curved_data() {
        let xs: Vec<f64> = (0..100).map(|i| i as f64 * 0.1).collect();
        let ys: Vec<f64> = xs.iter().map(|x| (x - 5.0) * (x - 5.0)).collect();
        let sp = NaturalSpline::fit(&xs, &ys, 8).unwrap();
        let line = crate::regression::LinearModel::fit(
            &xs.iter().map(|&x| vec![x]).collect::<Vec<_>>(),
            &ys,
        )
        .unwrap();
        let sp_rmse = crate::descriptive::rmse(&ys, &sp.predict_batch(&xs));
        let ln_rmse = crate::descriptive::rmse(
            &ys,
            &line
                .predict_batch(&xs.iter().map(|&x| vec![x]).collect::<Vec<_>>())
                .unwrap(),
        );
        assert!(
            sp_rmse < ln_rmse / 5.0,
            "spline {sp_rmse} vs line {ln_rmse}"
        );
    }

    #[test]
    fn degenerate_inputs_error() {
        assert!(NaturalSpline::fit(&[1.0], &[1.0], 4).is_err());
        assert!(NaturalSpline::fit(&[1.0, 1.0, 1.0], &[1.0, 2.0, 3.0], 4).is_err());
        assert!(NaturalSpline::fit(&[f64::NAN, f64::NAN], &[1.0, 2.0], 4).is_err());
    }

    #[test]
    fn duplicate_x_values_are_fine() {
        let xs = vec![0.0, 0.0, 1.0, 1.0, 2.0, 2.0, 3.0, 3.0];
        let ys = vec![0.1, -0.1, 1.1, 0.9, 2.1, 1.9, 3.1, 2.9];
        let sp = NaturalSpline::fit(&xs, &ys, 4).unwrap();
        assert!((sp.predict(1.0) - 1.0).abs() < 0.2);
    }

    #[test]
    fn json_round_trip() {
        let xs: Vec<f64> = (0..30).map(|i| i as f64).collect();
        let ys: Vec<f64> = xs.iter().map(|x| x.sqrt()).collect();
        let sp = NaturalSpline::fit(&xs, &ys, 6).unwrap();
        let restored = NaturalSpline::from_json(&sp.to_json()).unwrap();
        assert_eq!(sp, restored);
    }
}
