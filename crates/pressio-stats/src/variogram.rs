//! Empirical variograms of gridded data — the spatial-correlation feature
//! of the Krasowska (2021) scheme.
//!
//! The (semi-)variogram at lag `h` along an axis is
//! `γ(h) = mean((v[i] − v[i+h])²) / 2`; a slowly rising variogram means
//! strong spatial correlation (compressible), a flat-high one means noise.

/// Empirical variogram over the first `max_lag` lags, averaged across all
/// axes of the grid (dims fastest-first, collapsed to ≤3 like the codecs).
pub fn variogram(values: &[f64], dims: &[usize], max_lag: usize) -> Vec<f64> {
    let (nx, ny, nz) = match dims.len() {
        0 => (0, 1, 1),
        1 => (dims[0], 1, 1),
        2 => (dims[0], dims[1], 1),
        _ => (dims[0], dims[1], dims[2..].iter().product()),
    };
    let mut gamma = vec![0.0f64; max_lag];
    let mut counts = vec![0u64; max_lag];
    let at = |x: usize, y: usize, z: usize| values[(z * ny + y) * nx + x];
    for lag in 1..=max_lag {
        let g = &mut gamma[lag - 1];
        let c = &mut counts[lag - 1];
        // x axis
        if nx > lag {
            for z in 0..nz {
                for y in 0..ny {
                    for x in 0..nx - lag {
                        let d = at(x, y, z) - at(x + lag, y, z);
                        if d.is_finite() {
                            *g += d * d;
                            *c += 1;
                        }
                    }
                }
            }
        }
        // y axis
        if ny > lag {
            for z in 0..nz {
                for y in 0..ny - lag {
                    for x in 0..nx {
                        let d = at(x, y, z) - at(x, y + lag, z);
                        if d.is_finite() {
                            *g += d * d;
                            *c += 1;
                        }
                    }
                }
            }
        }
        // z axis
        if nz > lag {
            for z in 0..nz - lag {
                for y in 0..ny {
                    for x in 0..nx {
                        let d = at(x, y, z) - at(x, y, z + lag);
                        if d.is_finite() {
                            *g += d * d;
                            *c += 1;
                        }
                    }
                }
            }
        }
    }
    for (g, &c) in gamma.iter_mut().zip(&counts) {
        if c > 0 {
            *g /= 2.0 * c as f64;
        }
    }
    gamma
}

/// Scalar variogram feature: the lag-1 semivariance normalized by the data
/// variance (`0` = perfectly smooth, `~1` = uncorrelated noise). This is
/// the regression input Krasowska pairs with quantized entropy.
pub fn variogram_score(values: &[f64], dims: &[usize]) -> f64 {
    let g = variogram(values, dims, 1);
    let var = crate::descriptive::summarize(values).variance;
    if var <= 0.0 {
        return 0.0;
    }
    (g[0] / var).min(2.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smooth_field_has_rising_variogram() {
        let n = 256;
        let values: Vec<f64> = (0..n).map(|i| (i as f64 * 0.05).sin()).collect();
        let g = variogram(&values, &[n], 8);
        assert!(g[0] < g[3]);
        assert!(g[3] < g[7]);
    }

    #[test]
    fn noise_variogram_is_flat_at_variance() {
        let mut state = 42u64;
        let values: Vec<f64> = (0..8192)
            .map(|_| {
                state ^= state << 13;
                state ^= state >> 7;
                state ^= state << 17;
                (state >> 11) as f64 / (1u64 << 53) as f64 - 0.5
            })
            .collect();
        let g = variogram(&values, &[8192], 4);
        let var = crate::descriptive::summarize(&values).variance;
        for gamma in g {
            assert!(
                (gamma - var).abs() < var * 0.2,
                "gamma {gamma} vs var {var}"
            );
        }
    }

    #[test]
    fn constant_field_scores_zero() {
        let values = vec![5.0; 100];
        assert_eq!(variogram_score(&values, &[100]), 0.0);
        assert_eq!(variogram(&values, &[100], 3), vec![0.0, 0.0, 0.0]);
    }

    #[test]
    fn score_orders_smooth_below_noise() {
        let smooth: Vec<f64> = (0..1024).map(|i| (i as f64 * 0.01).sin()).collect();
        let mut state = 77u64;
        let noise: Vec<f64> = (0..1024)
            .map(|_| {
                state ^= state << 13;
                state ^= state >> 7;
                state ^= state << 17;
                (state >> 11) as f64 / (1u64 << 53) as f64
            })
            .collect();
        assert!(variogram_score(&smooth, &[1024]) < 0.1);
        assert!(variogram_score(&noise, &[1024]) > 0.5);
    }

    #[test]
    fn multi_axis_variogram_2d() {
        // varies along y only: x-lag differences are zero, y-lag nonzero
        let (nx, ny) = (16, 16);
        let values: Vec<f64> = (0..nx * ny).map(|i| (i / nx) as f64).collect();
        let g_all = variogram(&values, &[nx, ny], 1);
        assert!(g_all[0] > 0.0);
        // restricted to one row (1-d), it is constant -> zero
        let row: Vec<f64> = values[..nx].to_vec();
        assert_eq!(variogram(&row, &[nx], 1)[0], 0.0);
    }

    #[test]
    fn non_finite_pairs_skipped() {
        let values = vec![1.0, f64::NAN, 3.0, 4.0];
        let g = variogram(&values, &[4], 1);
        assert!(g[0].is_finite());
    }

    #[test]
    fn lag_longer_than_axis_is_zero_count() {
        let values = vec![1.0, 2.0];
        let g = variogram(&values, &[2], 3);
        assert_eq!(g.len(), 3);
        assert!(g[0] > 0.0);
        assert_eq!(g[1], 0.0); // no pairs at lag 2
        assert_eq!(g[2], 0.0);
    }
}
