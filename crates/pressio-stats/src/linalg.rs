//! Small dense linear algebra: column-major matrices, Cholesky solves for
//! normal equations, and a one-sided Jacobi SVD.
//!
//! The SVD backs the Underwood (2023) truncation metric; Cholesky backs OLS
//! and spline fitting. Sizes here are "features × samples" small, so simple
//! O(n³) routines are appropriate and dependency-free.

/// Dense row-major matrix.
#[derive(Debug, Clone, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Matrix {
    /// Zero matrix.
    pub fn zeros(rows: usize, cols: usize) -> Matrix {
        Matrix {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Build from row-major data. Panics on size mismatch.
    pub fn from_rows(rows: usize, cols: usize, data: Vec<f64>) -> Matrix {
        assert_eq!(rows * cols, data.len());
        Matrix { rows, cols, data }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Element access.
    #[inline]
    pub fn get(&self, r: usize, c: usize) -> f64 {
        self.data[r * self.cols + c]
    }

    /// Element assignment.
    #[inline]
    pub fn set(&mut self, r: usize, c: usize, v: f64) {
        self.data[r * self.cols + c] = v;
    }

    /// `self^T · self` (the Gram matrix of columns).
    pub fn gram(&self) -> Matrix {
        let mut g = Matrix::zeros(self.cols, self.cols);
        for i in 0..self.cols {
            for j in i..self.cols {
                let mut s = 0.0;
                for r in 0..self.rows {
                    s += self.get(r, i) * self.get(r, j);
                }
                g.set(i, j, s);
                g.set(j, i, s);
            }
        }
        g
    }

    /// `self^T · v` for a vector of length `rows`.
    pub fn t_mul_vec(&self, v: &[f64]) -> Vec<f64> {
        assert_eq!(v.len(), self.rows);
        let mut out = vec![0.0; self.cols];
        for (r, &vr) in v.iter().enumerate() {
            for (c, o) in out.iter_mut().enumerate() {
                *o += self.get(r, c) * vr;
            }
        }
        out
    }

    /// `self · v` for a vector of length `cols`.
    pub fn mul_vec(&self, v: &[f64]) -> Vec<f64> {
        assert_eq!(v.len(), self.cols);
        let mut out = vec![0.0; self.rows];
        for (r, o) in out.iter_mut().enumerate() {
            let mut s = 0.0;
            for (c, &vc) in v.iter().enumerate() {
                s += self.get(r, c) * vc;
            }
            *o = s;
        }
        out
    }
}

/// Solve the symmetric positive-definite system `A x = b` by Cholesky
/// decomposition with a tiny ridge for numerical safety. Returns `None`
/// when `A` is not (numerically) positive definite even after the ridge.
pub fn solve_spd(a: &Matrix, b: &[f64]) -> Option<Vec<f64>> {
    let n = a.rows();
    assert_eq!(a.cols(), n);
    assert_eq!(b.len(), n);
    // scale-aware ridge
    let trace: f64 = (0..n).map(|i| a.get(i, i)).sum();
    let ridge = 1e-12 * (trace / n.max(1) as f64).max(1e-300);
    let mut l = vec![0.0f64; n * n];
    for i in 0..n {
        for j in 0..=i {
            let mut s = a.get(i, j);
            if i == j {
                s += ridge;
            }
            for k in 0..j {
                s -= l[i * n + k] * l[j * n + k];
            }
            if i == j {
                if s <= 0.0 || !s.is_finite() {
                    return None;
                }
                l[i * n + i] = s.sqrt();
            } else {
                l[i * n + j] = s / l[j * n + j];
            }
        }
    }
    // forward then back substitution
    let mut y = vec![0.0f64; n];
    for i in 0..n {
        let mut s = b[i];
        for k in 0..i {
            s -= l[i * n + k] * y[k];
        }
        y[i] = s / l[i * n + i];
    }
    let mut x = vec![0.0f64; n];
    for i in (0..n).rev() {
        let mut s = y[i];
        for k in i + 1..n {
            s -= l[k * n + i] * x[k];
        }
        x[i] = s / l[i * n + i];
    }
    Some(x)
}

/// Singular values of `a` (descending), via one-sided Jacobi rotations on
/// the columns. Robust and dependency-free; O(rows·cols²) per sweep.
pub fn singular_values(a: &Matrix) -> Vec<f64> {
    let m = a.rows();
    let n = a.cols();
    // work on columns
    let mut u: Vec<Vec<f64>> = (0..n)
        .map(|c| (0..m).map(|r| a.get(r, c)).collect())
        .collect();
    let max_sweeps = 60;
    let eps = 1e-12;
    for _ in 0..max_sweeps {
        let mut off = 0.0f64;
        for p in 0..n {
            for q in p + 1..n {
                let mut alpha = 0.0;
                let mut beta = 0.0;
                let mut gamma = 0.0;
                for (&up, &uq) in u[p].iter().zip(u[q].iter()) {
                    alpha += up * up;
                    beta += uq * uq;
                    gamma += up * uq;
                }
                off = off.max(gamma.abs() / (alpha * beta).sqrt().max(1e-300));
                if gamma.abs() <= eps * (alpha * beta).sqrt() {
                    continue;
                }
                let zeta = (beta - alpha) / (2.0 * gamma);
                let t = zeta.signum() / (zeta.abs() + (1.0 + zeta * zeta).sqrt());
                let c = 1.0 / (1.0 + t * t).sqrt();
                let s = c * t;
                let (head, tail) = u.split_at_mut(q); // p < q
                for (up_r, uq_r) in head[p].iter_mut().zip(tail[0].iter_mut()) {
                    let (up, uq) = (*up_r, *uq_r);
                    *up_r = c * up - s * uq;
                    *uq_r = s * up + c * uq;
                }
            }
        }
        if off < eps {
            break;
        }
    }
    let mut sv: Vec<f64> = u
        .iter()
        .map(|col| col.iter().map(|v| v * v).sum::<f64>().sqrt())
        .collect();
    sv.sort_by(|a, b| b.partial_cmp(a).unwrap());
    sv
}

/// SVD-truncation information metric (Underwood 2023): the fraction of
/// singular values needed to capture `energy` (e.g. 0.99) of the total
/// squared spectrum, in `(0, 1]`. Smooth, low-rank data scores low;
/// noise-like data scores near 1.
pub fn svd_truncation_fraction(a: &Matrix, energy: f64) -> f64 {
    let sv = singular_values(a);
    let total: f64 = sv.iter().map(|s| s * s).sum();
    if total == 0.0 || sv.is_empty() {
        return 0.0;
    }
    let target = energy.clamp(0.0, 1.0) * total;
    let mut acc = 0.0;
    for (i, s) in sv.iter().enumerate() {
        acc += s * s;
        if acc >= target {
            return (i + 1) as f64 / sv.len() as f64;
        }
    }
    1.0
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn solve_spd_identity() {
        let mut a = Matrix::zeros(3, 3);
        for i in 0..3 {
            a.set(i, i, 1.0);
        }
        let x = solve_spd(&a, &[1.0, 2.0, 3.0]).unwrap();
        for (xi, bi) in x.iter().zip([1.0, 2.0, 3.0]) {
            assert!((xi - bi).abs() < 1e-9);
        }
    }

    #[test]
    fn solve_spd_known_system() {
        // A = [[4,2],[2,3]], b = [10, 9] -> x = [1.5, 2]
        let a = Matrix::from_rows(2, 2, vec![4.0, 2.0, 2.0, 3.0]);
        let x = solve_spd(&a, &[10.0, 9.0]).unwrap();
        assert!((x[0] - 1.5).abs() < 1e-9);
        assert!((x[1] - 2.0).abs() < 1e-9);
    }

    #[test]
    fn solve_spd_rejects_indefinite() {
        let a = Matrix::from_rows(2, 2, vec![1.0, 2.0, 2.0, 1.0]); // eigenvalues 3, -1
        assert!(solve_spd(&a, &[1.0, 1.0]).is_none());
    }

    #[test]
    fn gram_and_mul() {
        let a = Matrix::from_rows(3, 2, vec![1.0, 0.0, 0.0, 1.0, 1.0, 1.0]);
        let g = a.gram();
        assert_eq!(g.get(0, 0), 2.0);
        assert_eq!(g.get(0, 1), 1.0);
        assert_eq!(g.get(1, 1), 2.0);
        assert_eq!(a.t_mul_vec(&[1.0, 2.0, 3.0]), vec![4.0, 5.0]);
        assert_eq!(a.mul_vec(&[2.0, 5.0]), vec![2.0, 5.0, 7.0]);
    }

    #[test]
    fn svd_diagonal_matrix() {
        let mut a = Matrix::zeros(3, 3);
        a.set(0, 0, 3.0);
        a.set(1, 1, 2.0);
        a.set(2, 2, 1.0);
        let sv = singular_values(&a);
        assert!((sv[0] - 3.0).abs() < 1e-9);
        assert!((sv[1] - 2.0).abs() < 1e-9);
        assert!((sv[2] - 1.0).abs() < 1e-9);
    }

    #[test]
    fn svd_rank_one() {
        // outer product -> exactly one nonzero singular value
        let mut a = Matrix::zeros(4, 3);
        let u = [1.0, 2.0, 3.0, 4.0];
        let v = [1.0, 0.5, 0.25];
        for (r, &ur) in u.iter().enumerate() {
            for (c, &vc) in v.iter().enumerate() {
                a.set(r, c, ur * vc);
            }
        }
        let sv = singular_values(&a);
        assert!(sv[0] > 1.0);
        assert!(sv[1] < 1e-9, "sv = {sv:?}");
    }

    #[test]
    fn svd_frobenius_norm_preserved() {
        // sum of squared singular values equals squared Frobenius norm
        let a = Matrix::from_rows(3, 3, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0, 10.0]);
        let frob: f64 = (0..3)
            .flat_map(|r| (0..3).map(move |c| (r, c)))
            .map(|(r, c)| a.get(r, c) * a.get(r, c))
            .sum();
        let sv = singular_values(&a);
        let sv_sq: f64 = sv.iter().map(|s| s * s).sum();
        assert!((frob - sv_sq).abs() < 1e-6 * frob);
    }

    #[test]
    fn truncation_fraction_orders_smooth_vs_noise() {
        let n = 24;
        let mut smooth = Matrix::zeros(n, n);
        let mut noise = Matrix::zeros(n, n);
        let mut state = 7u64;
        for r in 0..n {
            for c in 0..n {
                smooth.set(r, c, ((r + c) as f64 * 0.1).sin());
                state ^= state << 13;
                state ^= state >> 7;
                state ^= state << 17;
                noise.set(r, c, (state >> 11) as f64 / (1u64 << 53) as f64);
            }
        }
        let fs = svd_truncation_fraction(&smooth, 0.99);
        let fn_ = svd_truncation_fraction(&noise, 0.99);
        assert!(fs < fn_, "smooth {fs} !< noise {fn_}");
    }

    #[test]
    fn truncation_fraction_edge_cases() {
        let z = Matrix::zeros(4, 4);
        assert_eq!(svd_truncation_fraction(&z, 0.99), 0.0);
        let mut one = Matrix::zeros(2, 2);
        one.set(0, 0, 5.0);
        assert!((svd_truncation_fraction(&one, 0.99) - 0.5).abs() < 1e-12);
    }
}
