//! CART regression trees — the base learner of the random forest behind
//! the Rahman (2023) FXRZ scheme.

use serde::{Deserialize, Serialize};

/// A node in the flattened tree.
#[derive(Debug, Clone, Serialize, Deserialize, PartialEq)]
pub enum Node {
    /// Terminal node with a predicted value.
    Leaf(f64),
    /// Binary split: `x[feature] <= threshold` goes left.
    Split {
        /// Feature index tested.
        feature: usize,
        /// Split threshold.
        threshold: f64,
        /// Index of the left child in the node arena.
        left: usize,
        /// Index of the right child in the node arena.
        right: usize,
    },
}

/// Tree growth hyper-parameters.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct TreeParams {
    /// Maximum depth (root = depth 0).
    pub max_depth: usize,
    /// Minimum samples required to attempt a split.
    pub min_samples_split: usize,
    /// Number of features examined per split (`None` = all) — the forest
    /// sets this for decorrelation.
    pub max_features: Option<usize>,
}

impl Default for TreeParams {
    fn default() -> Self {
        TreeParams {
            max_depth: 12,
            min_samples_split: 4,
            max_features: None,
        }
    }
}

/// A fitted regression tree (arena representation, node 0 is the root).
#[derive(Debug, Clone, Serialize, Deserialize, PartialEq)]
pub struct RegressionTree {
    nodes: Vec<Node>,
    num_features: usize,
}

impl RegressionTree {
    /// Grow a tree on `(xs, ys)`. `feature_order` is a permutation-seed used
    /// to pick the feature subset at each split (pass different values per
    /// tree for forest decorrelation).
    pub fn fit(xs: &[Vec<f64>], ys: &[f64], params: &TreeParams, seed: u64) -> RegressionTree {
        assert_eq!(xs.len(), ys.len());
        assert!(!xs.is_empty(), "cannot fit a tree on zero samples");
        let d = xs[0].len();
        let mut tree = RegressionTree {
            nodes: Vec::new(),
            num_features: d,
        };
        let idx: Vec<usize> = (0..xs.len()).collect();
        let mut rng = seed | 1;
        tree.grow(xs, ys, idx, params, 0, &mut rng);
        tree
    }

    fn grow(
        &mut self,
        xs: &[Vec<f64>],
        ys: &[f64],
        idx: Vec<usize>,
        params: &TreeParams,
        depth: usize,
        rng: &mut u64,
    ) -> usize {
        let mean = idx.iter().map(|&i| ys[i]).sum::<f64>() / idx.len() as f64;
        let sse: f64 = idx.iter().map(|&i| (ys[i] - mean) * (ys[i] - mean)).sum();
        if depth >= params.max_depth || idx.len() < params.min_samples_split || sse <= 1e-24 {
            self.nodes.push(Node::Leaf(mean));
            return self.nodes.len() - 1;
        }
        let d = self.num_features;
        let mtry = params.max_features.unwrap_or(d).clamp(1, d);
        // pseudo-random feature subset (xorshift)
        let mut features: Vec<usize> = (0..d).collect();
        for i in (1..features.len()).rev() {
            *rng ^= *rng << 13;
            *rng ^= *rng >> 7;
            *rng ^= *rng << 17;
            let j = (*rng as usize) % (i + 1);
            features.swap(i, j);
        }
        features.truncate(mtry);

        let mut best: Option<(usize, f64, f64)> = None; // (feature, threshold, sse)
        for &f in &features {
            // sort indices by this feature
            let mut order = idx.clone();
            order.sort_by(|&a, &b| {
                xs[a][f]
                    .partial_cmp(&xs[b][f])
                    .unwrap_or(std::cmp::Ordering::Equal)
            });
            // prefix sums for O(n) split scan
            let n = order.len();
            let mut prefix_sum = vec![0.0f64; n + 1];
            let mut prefix_sq = vec![0.0f64; n + 1];
            for (k, &i) in order.iter().enumerate() {
                prefix_sum[k + 1] = prefix_sum[k] + ys[i];
                prefix_sq[k + 1] = prefix_sq[k] + ys[i] * ys[i];
            }
            for k in 1..n {
                // no split between equal feature values
                if xs[order[k - 1]][f] >= xs[order[k]][f] {
                    continue;
                }
                let (nl, nr) = (k as f64, (n - k) as f64);
                let sl = prefix_sum[k];
                let sr = prefix_sum[n] - sl;
                let ql = prefix_sq[k];
                let qr = prefix_sq[n] - ql;
                let sse_split = (ql - sl * sl / nl) + (qr - sr * sr / nr);
                if best.is_none_or(|(_, _, b)| sse_split < b) {
                    let thr = 0.5 * (xs[order[k - 1]][f] + xs[order[k]][f]);
                    best = Some((f, thr, sse_split));
                }
            }
        }
        let Some((feature, threshold, best_sse)) = best else {
            self.nodes.push(Node::Leaf(mean));
            return self.nodes.len() - 1;
        };
        if best_sse >= sse {
            self.nodes.push(Node::Leaf(mean));
            return self.nodes.len() - 1;
        }
        let (left_idx, right_idx): (Vec<usize>, Vec<usize>) =
            idx.iter().partition(|&&i| xs[i][feature] <= threshold);
        // reserve this node's slot before recursing
        let me = self.nodes.len();
        self.nodes.push(Node::Leaf(mean)); // placeholder
        let left = self.grow(xs, ys, left_idx, params, depth + 1, rng);
        let right = self.grow(xs, ys, right_idx, params, depth + 1, rng);
        self.nodes[me] = Node::Split {
            feature,
            threshold,
            left,
            right,
        };
        me
    }

    /// Predict one sample.
    pub fn predict(&self, x: &[f64]) -> f64 {
        let mut node = 0usize;
        loop {
            match &self.nodes[node] {
                Node::Leaf(v) => return *v,
                Node::Split {
                    feature,
                    threshold,
                    left,
                    right,
                } => {
                    node = if x.get(*feature).copied().unwrap_or(0.0) <= *threshold {
                        *left
                    } else {
                        *right
                    };
                }
            }
        }
    }

    /// Number of nodes (size diagnostic).
    pub fn num_nodes(&self) -> usize {
        self.nodes.len()
    }

    /// Feature dimension the tree was trained on.
    pub fn num_features(&self) -> usize {
        self.num_features
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn step_data() -> (Vec<Vec<f64>>, Vec<f64>) {
        // y = 1 if x0 > 5 else 0, independent of x1
        let xs: Vec<Vec<f64>> = (0..100)
            .map(|i| vec![(i % 10) as f64, (i % 7) as f64])
            .collect();
        let ys: Vec<f64> = xs
            .iter()
            .map(|r| if r[0] > 5.0 { 1.0 } else { 0.0 })
            .collect();
        (xs, ys)
    }

    #[test]
    fn learns_step_function_exactly() {
        let (xs, ys) = step_data();
        let t = RegressionTree::fit(&xs, &ys, &TreeParams::default(), 42);
        for (x, y) in xs.iter().zip(&ys) {
            assert_eq!(t.predict(x), *y);
        }
    }

    #[test]
    fn depth_zero_gives_mean() {
        let (xs, ys) = step_data();
        let params = TreeParams {
            max_depth: 0,
            ..Default::default()
        };
        let t = RegressionTree::fit(&xs, &ys, &params, 1);
        let mean = ys.iter().sum::<f64>() / ys.len() as f64;
        assert!((t.predict(&xs[0]) - mean).abs() < 1e-12);
        assert_eq!(t.num_nodes(), 1);
    }

    #[test]
    fn constant_target_is_single_leaf() {
        let xs: Vec<Vec<f64>> = (0..20).map(|i| vec![i as f64]).collect();
        let ys = vec![3.5; 20];
        let t = RegressionTree::fit(&xs, &ys, &TreeParams::default(), 7);
        assert_eq!(t.num_nodes(), 1);
        assert_eq!(t.predict(&[100.0]), 3.5);
    }

    #[test]
    fn piecewise_quadratic_approximation_improves_with_depth() {
        let xs: Vec<Vec<f64>> = (0..200).map(|i| vec![i as f64 * 0.05]).collect();
        let ys: Vec<f64> = xs.iter().map(|r| r[0] * r[0]).collect();
        let rmse_at = |depth| {
            let params = TreeParams {
                max_depth: depth,
                min_samples_split: 2,
                max_features: None,
            };
            let t = RegressionTree::fit(&xs, &ys, &params, 3);
            crate::descriptive::rmse(&ys, &xs.iter().map(|x| t.predict(x)).collect::<Vec<_>>())
        };
        assert!(rmse_at(8) < rmse_at(2));
        assert!(rmse_at(2) < rmse_at(0));
    }

    #[test]
    fn deterministic_given_seed() {
        let (xs, ys) = step_data();
        let a = RegressionTree::fit(&xs, &ys, &TreeParams::default(), 5);
        let b = RegressionTree::fit(&xs, &ys, &TreeParams::default(), 5);
        assert_eq!(a, b);
    }

    #[test]
    fn serde_round_trip() {
        let (xs, ys) = step_data();
        let t = RegressionTree::fit(&xs, &ys, &TreeParams::default(), 42);
        let json = serde_json::to_string(&t).unwrap();
        let back: RegressionTree = serde_json::from_str(&json).unwrap();
        assert_eq!(t, back);
    }
}
