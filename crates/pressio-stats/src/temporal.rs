//! Temporal-delta statistics between consecutive timesteps.
//!
//! The LFZip observation: for correlated time series, the previous
//! timestep is a strong predictor of the current one, and the statistics
//! of the *residual* (current − previous) — not of the raw values — are
//! what govern how well a chained lossy codec will do. These summaries
//! feed the `temporal:*` feature group used by streaming prediction.

use crate::summarize;

/// Summary of how one timestep relates to its predecessor.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TemporalDelta {
    /// Mean of `|cur - prev|`.
    pub mean_abs_delta: f64,
    /// Root-mean-square of `cur - prev`.
    pub rms_delta: f64,
    /// Largest `|cur - prev|`.
    pub max_abs_delta: f64,
    /// Range (max − min) of the signed delta.
    pub delta_range: f64,
    /// Pearson correlation between `prev` and `cur` (0 when degenerate).
    pub correlation: f64,
    /// `std(cur) / std(cur − prev)` — how much a previous-timestep hold
    /// predictor shrinks the signal a codec has to encode (≥ 1 means the
    /// residual is easier than the raw values; 1 when degenerate).
    pub hold_gain: f64,
}

/// Compute [`TemporalDelta`] over two equal-length value slices.
///
/// # Panics
/// Panics if the slices differ in length or are empty.
pub fn temporal_delta(prev: &[f64], cur: &[f64]) -> TemporalDelta {
    assert_eq!(prev.len(), cur.len(), "timesteps must have equal length");
    assert!(!cur.is_empty(), "timesteps must be non-empty");
    let n = cur.len() as f64;

    let deltas: Vec<f64> = cur.iter().zip(prev.iter()).map(|(c, p)| c - p).collect();
    let mut abs_sum = 0.0;
    let mut sq_sum = 0.0;
    let mut max_abs = 0.0f64;
    let (mut dmin, mut dmax) = (f64::INFINITY, f64::NEG_INFINITY);
    for &d in &deltas {
        abs_sum += d.abs();
        sq_sum += d * d;
        max_abs = max_abs.max(d.abs());
        dmin = dmin.min(d);
        dmax = dmax.max(d);
    }

    let sp = summarize(prev);
    let sc = summarize(cur);
    let mut cov = 0.0;
    for (p, c) in prev.iter().zip(cur.iter()) {
        cov += (p - sp.mean) * (c - sc.mean);
    }
    cov /= n;
    let denom = (sp.variance * sc.variance).sqrt();
    let correlation = if denom > 0.0 && denom.is_finite() {
        (cov / denom).clamp(-1.0, 1.0)
    } else {
        0.0
    };

    let sd = summarize(&deltas);
    let cur_std = sc.variance.sqrt();
    let delta_std = sd.variance.sqrt();
    let hold_gain = if delta_std > 0.0 && cur_std.is_finite() {
        cur_std / delta_std
    } else {
        1.0
    };

    TemporalDelta {
        mean_abs_delta: abs_sum / n,
        rms_delta: (sq_sum / n).sqrt(),
        max_abs_delta: max_abs,
        delta_range: dmax - dmin,
        correlation,
        hold_gain,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identical_timesteps_have_zero_delta_and_full_correlation() {
        let v: Vec<f64> = (0..64).map(|i| (i as f64 * 0.1).sin()).collect();
        let td = temporal_delta(&v, &v);
        assert_eq!(td.mean_abs_delta, 0.0);
        assert_eq!(td.rms_delta, 0.0);
        assert_eq!(td.max_abs_delta, 0.0);
        assert_eq!(td.delta_range, 0.0);
        assert!((td.correlation - 1.0).abs() < 1e-12);
        assert_eq!(td.hold_gain, 1.0); // degenerate: zero residual std
    }

    #[test]
    fn constant_shift_is_pure_delta() {
        let prev: Vec<f64> = (0..32).map(|i| i as f64).collect();
        let cur: Vec<f64> = prev.iter().map(|v| v + 2.5).collect();
        let td = temporal_delta(&prev, &cur);
        assert!((td.mean_abs_delta - 2.5).abs() < 1e-12);
        assert!((td.rms_delta - 2.5).abs() < 1e-12);
        assert!((td.max_abs_delta - 2.5).abs() < 1e-12);
        assert!(td.delta_range.abs() < 1e-12);
        assert!((td.correlation - 1.0).abs() < 1e-12);
        assert_eq!(td.hold_gain, 1.0); // constant residual: zero std again
    }

    #[test]
    fn correlated_drift_yields_high_hold_gain() {
        // smooth signal, small temporal increment: residual std << signal std
        let prev: Vec<f64> = (0..256).map(|i| (i as f64 * 0.05).sin() * 10.0).collect();
        let cur: Vec<f64> = (0..256)
            .map(|i| (i as f64 * 0.05).sin() * 10.0 + (i as f64 * 0.3).cos() * 0.01)
            .collect();
        let td = temporal_delta(&prev, &cur);
        assert!(td.hold_gain > 100.0, "hold_gain {} too small", td.hold_gain);
        assert!(td.correlation > 0.999);
    }

    #[test]
    fn anticorrelated_signals_detected() {
        let prev: Vec<f64> = (0..64).map(|i| (i as f64 * 0.2).sin()).collect();
        let cur: Vec<f64> = prev.iter().map(|v| -v).collect();
        let td = temporal_delta(&prev, &cur);
        assert!(td.correlation < -0.999);
        assert!(td.hold_gain < 1.0);
    }
}
