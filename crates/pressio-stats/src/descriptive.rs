//! Descriptive statistics and prediction-quality metrics.
//!
//! Includes MedAPE — the Median Absolute Percentage Error the paper uses as
//! its quality axis (robust to outliers and metric scale, §5).

/// Summary statistics of a sample.
#[derive(Debug, Clone, PartialEq)]
pub struct Summary {
    /// Number of finite observations.
    pub count: usize,
    /// Arithmetic mean.
    pub mean: f64,
    /// Population variance.
    pub variance: f64,
    /// Minimum.
    pub min: f64,
    /// Maximum.
    pub max: f64,
    /// Fraction of exact zeros — the "sparsity" feature FXRZ's correction
    /// factor keys on.
    pub zero_fraction: f64,
}

/// Compute [`Summary`] over `values`, ignoring non-finite entries.
///
/// Two lane-strided passes (sum/min/max/zeros, then squared deviations)
/// replace the old Welford recurrence: the passes are branch-free and
/// autovectorize, and two-pass variance is at least as accurate as the
/// single-pass update on the feature-extraction inputs here.
pub fn summarize(values: &[f64]) -> Summary {
    let (count, sum, min, max, zeros) = crate::lanes::sum_min_max_zeros(values);
    if count == 0 {
        return Summary {
            count: 0,
            mean: 0.0,
            variance: 0.0,
            min: 0.0,
            max: 0.0,
            zero_fraction: 0.0,
        };
    }
    let mean = sum / count as f64;
    let m2 = crate::lanes::sum_sq_dev(values, mean);
    Summary {
        count,
        mean,
        variance: m2 / count as f64,
        min,
        max,
        zero_fraction: zeros as f64 / count as f64,
    }
}

/// `p`-quantile (0 ≤ p ≤ 1) with linear interpolation; ignores non-finite
/// values; returns `None` on an empty (or all-non-finite) sample.
pub fn quantile(values: &[f64], p: f64) -> Option<f64> {
    let mut v: Vec<f64> = values.iter().copied().filter(|x| x.is_finite()).collect();
    if v.is_empty() {
        return None;
    }
    v.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let pos = p.clamp(0.0, 1.0) * (v.len() - 1) as f64;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    let frac = pos - lo as f64;
    Some(v[lo] * (1.0 - frac) + v[hi] * frac)
}

/// Median (0.5-quantile).
pub fn median(values: &[f64]) -> Option<f64> {
    quantile(values, 0.5)
}

/// Median Absolute Percentage Error, in percent:
/// `median(|predicted - actual| / |actual|) × 100`.
///
/// Pairs where `actual == 0` are skipped (their percentage error is
/// undefined); returns `None` when no valid pairs remain.
pub fn medape(actual: &[f64], predicted: &[f64]) -> Option<f64> {
    let apes: Vec<f64> = actual
        .iter()
        .zip(predicted)
        .filter(|(a, p)| a.is_finite() && p.is_finite() && **a != 0.0)
        .map(|(a, p)| ((p - a) / a).abs() * 100.0)
        .collect();
    median(&apes)
}

/// Mean Absolute Percentage Error, in percent (same conventions as
/// [`medape`]; not robust to outliers — provided for comparisons).
pub fn mape(actual: &[f64], predicted: &[f64]) -> Option<f64> {
    let apes: Vec<f64> = actual
        .iter()
        .zip(predicted)
        .filter(|(a, p)| a.is_finite() && p.is_finite() && **a != 0.0)
        .map(|(a, p)| ((p - a) / a).abs() * 100.0)
        .collect();
    if apes.is_empty() {
        None
    } else {
        Some(apes.iter().sum::<f64>() / apes.len() as f64)
    }
}

/// Root-mean-square error between paired samples.
pub fn rmse(actual: &[f64], predicted: &[f64]) -> f64 {
    let n = actual.len().min(predicted.len());
    if n == 0 {
        return 0.0;
    }
    let sse: f64 = actual
        .iter()
        .zip(predicted)
        .map(|(a, p)| (a - p) * (a - p))
        .sum();
    (sse / n as f64).sqrt()
}

/// Coefficient of determination R² (1 − SSE/SST); `None` when the actuals
/// are constant.
pub fn r_squared(actual: &[f64], predicted: &[f64]) -> Option<f64> {
    let n = actual.len().min(predicted.len());
    if n == 0 {
        return None;
    }
    let mean: f64 = actual[..n].iter().sum::<f64>() / n as f64;
    let sst: f64 = actual[..n].iter().map(|a| (a - mean) * (a - mean)).sum();
    if sst == 0.0 {
        return None;
    }
    let sse: f64 = actual[..n]
        .iter()
        .zip(predicted)
        .map(|(a, p)| (a - p) * (a - p))
        .sum();
    Some(1.0 - sse / sst)
}

/// Pearson correlation coefficient; `None` when either side is constant.
pub fn pearson(xs: &[f64], ys: &[f64]) -> Option<f64> {
    let n = xs.len().min(ys.len());
    if n < 2 {
        return None;
    }
    let mx = xs[..n].iter().sum::<f64>() / n as f64;
    let my = ys[..n].iter().sum::<f64>() / n as f64;
    let mut sxy = 0.0;
    let mut sxx = 0.0;
    let mut syy = 0.0;
    for i in 0..n {
        let dx = xs[i] - mx;
        let dy = ys[i] - my;
        sxy += dx * dy;
        sxx += dx * dx;
        syy += dy * dy;
    }
    if sxx == 0.0 || syy == 0.0 {
        return None;
    }
    Some(sxy / (sxx * syy).sqrt())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summary_basics() {
        let s = summarize(&[1.0, 2.0, 3.0, 4.0]);
        assert_eq!(s.count, 4);
        assert_eq!(s.mean, 2.5);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 4.0);
        assert!((s.variance - 1.25).abs() < 1e-12);
        assert_eq!(s.zero_fraction, 0.0);
    }

    #[test]
    fn summary_ignores_non_finite_and_counts_zeros() {
        let s = summarize(&[0.0, 0.0, 1.0, f64::NAN, f64::INFINITY]);
        assert_eq!(s.count, 3);
        assert!((s.zero_fraction - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn summary_of_empty() {
        let s = summarize(&[]);
        assert_eq!(s.count, 0);
        assert_eq!(s.mean, 0.0);
    }

    #[test]
    fn quantiles_interpolate() {
        let v = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(quantile(&v, 0.0), Some(1.0));
        assert_eq!(quantile(&v, 1.0), Some(4.0));
        assert_eq!(quantile(&v, 0.5), Some(2.5));
        assert_eq!(median(&[5.0, 1.0, 3.0]), Some(3.0));
        assert_eq!(median(&[]), None);
    }

    #[test]
    fn medape_robust_to_one_outlier() {
        let actual = [10.0, 10.0, 10.0, 10.0, 10.0];
        let predicted = [11.0, 11.0, 11.0, 11.0, 1000.0];
        // mean APE is blown up by the outlier; median stays at 10%
        assert!((medape(&actual, &predicted).unwrap() - 10.0).abs() < 1e-9);
        assert!(mape(&actual, &predicted).unwrap() > 1000.0);
    }

    #[test]
    fn medape_skips_zero_actuals() {
        let actual = [0.0, 10.0];
        let predicted = [5.0, 20.0];
        assert!((medape(&actual, &predicted).unwrap() - 100.0).abs() < 1e-9);
        assert_eq!(medape(&[0.0], &[1.0]), None);
    }

    #[test]
    fn medape_exact_predictions_zero() {
        let a = [3.0, 7.0, 2.0];
        assert_eq!(medape(&a, &a), Some(0.0));
    }

    #[test]
    fn rmse_and_r2() {
        let a = [1.0, 2.0, 3.0];
        let p = [1.0, 2.0, 3.0];
        assert_eq!(rmse(&a, &p), 0.0);
        assert_eq!(r_squared(&a, &p), Some(1.0));
        let p2 = [2.0, 2.0, 2.0]; // predicting the mean -> R² = 0
        assert!((r_squared(&a, &p2).unwrap()).abs() < 1e-12);
        assert_eq!(r_squared(&[5.0, 5.0], &[5.0, 5.0]), None);
    }

    #[test]
    fn pearson_signs() {
        let x = [1.0, 2.0, 3.0, 4.0];
        let up = [2.0, 4.0, 6.0, 8.0];
        let down = [8.0, 6.0, 4.0, 2.0];
        assert!((pearson(&x, &up).unwrap() - 1.0).abs() < 1e-12);
        assert!((pearson(&x, &down).unwrap() + 1.0).abs() < 1e-12);
        assert_eq!(pearson(&x, &[1.0, 1.0, 1.0, 1.0]), None);
    }
}
