//! Lane-strided reduction kernels for the feature-extraction hot loops.
//!
//! The naive single-accumulator reductions in the feature extractors
//! serialize on the floating-point add's latency; these kernels keep
//! [`LANES`] independent accumulators (element `i` lands in lane
//! `i % LANES`) so the loop body is branch-free and autovectorizes, then
//! collapse with the fixed pairwise tree in [`pressio_core::lanes::fold`].
//!
//! Each kernel has a `_scalar` twin that mirrors the lane/fold order
//! exactly — the pair is **bit-identical** by construction, pinned by the
//! tests below, so callers can switch freely between them.

use pressio_core::lanes::{finite_or_zero, fold, LANES};

/// Sum of `|v[i+1] - v[i]|` over consecutive pairs where both values are
/// finite, plus the pair count — the "mean absolute first difference"
/// smoothness numerator.
pub fn sum_abs_diff(values: &[f64]) -> (f64, usize) {
    pair_reduce(values, |d| d.abs())
}

/// Exact-order scalar reference for [`sum_abs_diff`].
pub fn sum_abs_diff_scalar(values: &[f64]) -> (f64, usize) {
    pair_reduce_scalar(values, |d| d.abs())
}

/// Sum of `(v[i+1] - v[i])²` over finite consecutive pairs, plus the pair
/// count — the lag-1 residual-variance numerator (coding gain).
pub fn sum_sq_diff(values: &[f64]) -> (f64, usize) {
    pair_reduce(values, |d| d * d)
}

/// Exact-order scalar reference for [`sum_sq_diff`].
pub fn sum_sq_diff_scalar(values: &[f64]) -> (f64, usize) {
    pair_reduce_scalar(values, |d| d * d)
}

#[inline]
fn pair_reduce(values: &[f64], f: impl Fn(f64) -> f64) -> (f64, usize) {
    if values.len() < 2 {
        return (0.0, 0);
    }
    let a = &values[..values.len() - 1];
    let b = &values[1..];
    // Codegen notes, hard-won: every index into `acc`/`cnt` below is a
    // compile-time constant (the `for l in 0..LANES` loop fully unrolls and
    // the tail is unrolled by hand) so SROA promotes both arrays to SSA
    // registers — one dynamic index anywhere keeps them in a stack slot and
    // LLVM then compiles the conditional accumulate as masked stores, a
    // store-forwarding round trip per iteration that is *slower* than the
    // naive loop. The finiteness predicate uses `&` (not `&&`) to stay
    // branch-free, the masked difference `d` multiplies through a 0/1 mask
    // instead of selecting on the sum, and the pair count accumulates in
    // f64 lanes (exact below 2^53) so the body never crosses into the
    // integer domain.
    let mut acc = [0.0f64; LANES];
    let mut cnt = [0.0f64; LANES];
    let mut i = 0usize;
    while i + LANES <= a.len() {
        // fixed-size views drop per-element bounds checks
        let ca: &[f64; LANES] = a[i..i + LANES].try_into().unwrap();
        let cb: &[f64; LANES] = b[i..i + LANES].try_into().unwrap();
        for l in 0..LANES {
            let fin = (ca[l].abs() < f64::INFINITY) & (cb[l].abs() < f64::INFINITY);
            let m = if fin { 1.0 } else { 0.0 };
            let d = if fin { cb[l] - ca[l] } else { 0.0 };
            // for a finite pair this adds 1.0 * f(y - x), bit-identical to
            // adding f(y - x); for a skipped pair it adds 0.0 * f(0.0) = +0.0,
            // an exact no-op because the accumulator is never -0.0 (both
            // reducers map through non-negative f)
            acc[l] += m * f(d);
            cnt[l] += m;
        }
        i += LANES;
    }
    let rem = a.len() - i;
    let tail = |k: usize, acc: &mut f64, cnt: &mut f64| {
        if k < rem {
            let (x, y) = (a[i + k], b[i + k]);
            if x.is_finite() && y.is_finite() {
                *acc += f(y - x);
                *cnt += 1.0;
            }
        }
    };
    tail(0, &mut acc[0], &mut cnt[0]);
    tail(1, &mut acc[1], &mut cnt[1]);
    tail(2, &mut acc[2], &mut cnt[2]);
    tail(3, &mut acc[3], &mut cnt[3]);
    tail(4, &mut acc[4], &mut cnt[4]);
    tail(5, &mut acc[5], &mut cnt[5]);
    tail(6, &mut acc[6], &mut cnt[6]);
    // identity, but opaque: stops SLP's horizontal-reduction matcher from
    // seeing the fold tree and re-shuffling the loop body's lane order
    // around it (measurably worse codegen)
    let acc = std::hint::black_box(acc);
    let cnt = std::hint::black_box(cnt);
    let total = ((cnt[0] + cnt[1]) + (cnt[2] + cnt[3])) + ((cnt[4] + cnt[5]) + (cnt[6] + cnt[7]));
    (fold(acc), total as usize)
}

#[inline]
fn pair_reduce_scalar(values: &[f64], f: impl Fn(f64) -> f64) -> (f64, usize) {
    if values.len() < 2 {
        return (0.0, 0);
    }
    let mut acc = [0.0f64; LANES];
    let mut cnt = 0usize;
    for (i, w) in values.windows(2).enumerate() {
        if w[0].is_finite() && w[1].is_finite() {
            acc[i % LANES] += f(w[1] - w[0]);
            cnt += 1;
        }
    }
    (fold(acc), cnt)
}

/// First pass of the two-pass summary: `(count, sum, min, max, zeros)`
/// over finite values, lane-strided. The sum collapses through [`fold`];
/// min/max are order-insensitive.
pub fn sum_min_max_zeros(values: &[f64]) -> (usize, f64, f64, f64, usize) {
    // Same codegen discipline as `pair_reduce`: constant indices only (so
    // the lane arrays live in registers), counts in f64 lanes (exact below
    // 2^53, keeping the body out of the integer domain), and a black_box
    // barrier before the horizontal reductions.
    let mut sum = [0.0f64; LANES];
    let mut mn = [f64::INFINITY; LANES];
    let mut mx = [f64::NEG_INFINITY; LANES];
    let mut cnt = [0.0f64; LANES];
    let mut zeros = [0.0f64; LANES];
    let mut chunks = values.chunks_exact(LANES);
    for chunk in &mut chunks {
        let ch: &[f64; LANES] = chunk.try_into().unwrap();
        for l in 0..LANES {
            let v = ch[l];
            let fin = v.abs() < f64::INFINITY;
            cnt[l] += if fin { 1.0 } else { 0.0 };
            zeros[l] += if fin & (v == 0.0) { 1.0 } else { 0.0 };
            sum[l] += if fin { v } else { 0.0 };
            mn[l] = mn[l].min(if fin { v } else { f64::INFINITY });
            mx[l] = mx[l].max(if fin { v } else { f64::NEG_INFINITY });
        }
    }
    let rem = chunks.remainder();
    let mut tail = |l: usize| {
        if let Some(&v) = rem.get(l) {
            let fin = v.is_finite();
            cnt[l] += if fin { 1.0 } else { 0.0 };
            zeros[l] += if fin & (v == 0.0) { 1.0 } else { 0.0 };
            sum[l] += if fin { v } else { 0.0 };
            mn[l] = mn[l].min(if fin { v } else { f64::INFINITY });
            mx[l] = mx[l].max(if fin { v } else { f64::NEG_INFINITY });
        }
    };
    tail(0);
    tail(1);
    tail(2);
    tail(3);
    tail(4);
    tail(5);
    tail(6);
    let sum = std::hint::black_box(sum);
    let mn = std::hint::black_box(mn);
    let mx = std::hint::black_box(mx);
    let cnt = std::hint::black_box(cnt);
    let zeros = std::hint::black_box(zeros);
    let count = cnt.iter().sum::<f64>() as usize;
    let (mut min, mut max) = (f64::INFINITY, f64::NEG_INFINITY);
    for l in 0..LANES {
        min = min.min(mn[l]);
        max = max.max(mx[l]);
    }
    (
        count,
        fold(sum),
        min,
        max,
        zeros.iter().sum::<f64>() as usize,
    )
}

/// Second pass: `Σ (v − mean)²` over finite values, lane-strided.
pub fn sum_sq_dev(values: &[f64], mean: f64) -> f64 {
    let mut acc = [0.0f64; LANES];
    let mut chunks = values.chunks_exact(LANES);
    for chunk in &mut chunks {
        let ch: &[f64; LANES] = chunk.try_into().unwrap();
        for l in 0..LANES {
            let d = finite_or_zero(ch[l] - mean);
            // non-finite v gives non-finite d, masked to 0 above; finite v
            // always gives finite d
            acc[l] += d * d;
        }
    }
    let rem = chunks.remainder();
    let mut tail = |l: usize| {
        if let Some(&v) = rem.get(l) {
            let d = finite_or_zero(v - mean);
            acc[l] += d * d;
        }
    };
    tail(0);
    tail(1);
    tail(2);
    tail(3);
    tail(4);
    tail(5);
    tail(6);
    fold(std::hint::black_box(acc))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn synth(n: usize) -> Vec<f64> {
        let mut v: Vec<f64> = (0..n).map(|i| (i as f64 * 0.37).sin() * 5.0).collect();
        if n > 4 {
            v[1] = f64::NAN;
            v[n / 2] = f64::INFINITY;
            v[n - 2] = 0.0;
        }
        v
    }

    #[test]
    fn pair_kernels_match_scalar_references_bitwise() {
        for n in [0usize, 1, 2, 7, 8, 9, 61, 200, 1003] {
            let v = synth(n);
            let (a, ca) = sum_abs_diff(&v);
            let (b, cb) = sum_abs_diff_scalar(&v);
            assert_eq!(a.to_bits(), b.to_bits(), "abs n={n}");
            assert_eq!(ca, cb, "abs count n={n}");
            let (a, ca) = sum_sq_diff(&v);
            let (b, cb) = sum_sq_diff_scalar(&v);
            assert_eq!(a.to_bits(), b.to_bits(), "sq n={n}");
            assert_eq!(ca, cb, "sq count n={n}");
        }
    }

    #[test]
    fn pair_kernels_skip_non_finite_pairs() {
        let v = [1.0, f64::NAN, 2.0, 5.0];
        // only the (2.0, 5.0) pair is fully finite
        assert_eq!(sum_abs_diff(&v), (3.0, 1));
        assert_eq!(sum_sq_diff(&v), (9.0, 1));
    }

    #[test]
    fn first_pass_handles_masks_and_tails() {
        for n in [0usize, 3, 8, 17, 100] {
            let v = synth(n);
            let (count, sum, min, max, zeros) = sum_min_max_zeros(&v);
            let finite: Vec<f64> = v.iter().copied().filter(|x| x.is_finite()).collect();
            assert_eq!(count, finite.len(), "n={n}");
            assert_eq!(zeros, finite.iter().filter(|&&x| x == 0.0).count());
            if finite.is_empty() {
                assert_eq!(sum, 0.0);
            } else {
                let naive: f64 = finite.iter().sum();
                assert!((sum - naive).abs() <= 1e-9 * naive.abs().max(1.0));
                assert_eq!(min, finite.iter().copied().fold(f64::INFINITY, f64::min));
                assert_eq!(
                    max,
                    finite.iter().copied().fold(f64::NEG_INFINITY, f64::max)
                );
            }
        }
    }

    /// Dev harness for kernel codegen work — not a correctness test.
    /// `cargo test --release -p pressio-stats -- --ignored --nocapture timing`
    #[test]
    #[ignore = "timing harness, run manually in release mode"]
    fn timing_harness() {
        let n = 1usize << 16;
        let passes = 16;
        let v: Vec<f64> = (0..n).map(|i| (i as f64 * 0.37).sin() * 5.0).collect();
        let min_ms = |f: &dyn Fn() -> (f64, usize)| {
            let mut best = f64::INFINITY;
            for _ in 0..20 {
                let t = std::time::Instant::now();
                for _ in 0..passes {
                    std::hint::black_box(f());
                }
                best = best.min(t.elapsed().as_secs_f64() * 1e3);
            }
            best
        };
        let naive = min_ms(&|| {
            let mut acc = 0.0;
            let mut cnt = 0usize;
            for w in v.windows(2) {
                if w[0].is_finite() && w[1].is_finite() {
                    acc += (w[1] - w[0]).abs();
                    cnt += 1;
                }
            }
            (acc, cnt)
        });
        let lane = min_ms(&|| sum_abs_diff(&v));
        println!(
            "naive {naive:.3} ms  lane {lane:.3} ms  speedup {:.2}x",
            naive / lane
        );
    }

    #[test]
    fn second_pass_matches_naive_two_pass() {
        let v = synth(257);
        let (count, sum, _, _, _) = sum_min_max_zeros(&v);
        let mean = sum / count as f64;
        let lane = sum_sq_dev(&v, mean);
        let naive: f64 = v
            .iter()
            .filter(|x| x.is_finite())
            .map(|&x| (x - mean) * (x - mean))
            .sum();
        assert!((lane - naive).abs() <= 1e-9 * naive.max(1.0));
    }
}
