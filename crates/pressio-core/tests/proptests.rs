//! Property tests for the option system and the stable hashing that keys
//! the checkpoint database: hashes must be insertion-order independent,
//! sensitive to every hashable entry, and stable through serialization.

use pressio_core::hash::{hash_options, hash_options_hex, Sha256};
use pressio_core::{Options, Value};
use proptest::prelude::*;

fn arb_value() -> impl Strategy<Value = Value> {
    prop_oneof![
        any::<bool>().prop_map(Value::Bool),
        any::<i64>().prop_map(Value::I64),
        any::<u64>().prop_map(Value::U64),
        (-1e12f64..1e12).prop_map(Value::F64),
        "[a-z0-9:_]{0,24}".prop_map(Value::Str),
        prop::collection::vec(-1e6f64..1e6, 0..8).prop_map(Value::F64Vec),
        prop::collection::vec(any::<u64>(), 0..8).prop_map(Value::U64Vec),
        prop::collection::vec(any::<u8>(), 0..16).prop_map(Value::Bytes),
    ]
}

fn arb_entries() -> impl Strategy<Value = Vec<(String, Value)>> {
    prop::collection::vec(("[a-z][a-z0-9:_]{0,16}", arb_value()), 0..12).prop_map(|mut v| {
        // unique keys (later duplicates would overwrite anyway)
        v.sort_by(|a, b| a.0.cmp(&b.0));
        v.dedup_by(|a, b| a.0 == b.0);
        v
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn hash_is_insertion_order_independent(entries in arb_entries()) {
        let forward: Options = entries.iter().cloned().collect();
        let reversed: Options = entries.iter().rev().cloned().collect();
        prop_assert_eq!(hash_options(&forward), hash_options(&reversed));
    }

    #[test]
    fn hash_survives_json_round_trip(entries in arb_entries()) {
        let opts: Options = entries.into_iter().collect();
        let restored = Options::from_json(&opts.to_json().unwrap()).unwrap();
        prop_assert_eq!(hash_options(&opts), hash_options(&restored));
        prop_assert_eq!(opts, restored);
    }

    #[test]
    fn any_entry_change_changes_the_hash(entries in arb_entries(), extra_key in "[a-z]{3,8}") {
        let base: Options = entries.clone().into_iter().collect();
        if base.contains(&extra_key) {
            return Ok(()); // collision with an existing key: skip
        }
        let modified = base.clone().with(extra_key, 12345u64);
        prop_assert_ne!(hash_options(&base), hash_options(&modified));
    }

    #[test]
    fn opaque_entries_never_affect_the_hash(entries in arb_entries(), label in "[a-z]{1,12}") {
        let base: Options = entries.into_iter().collect();
        let mut with_opaque = base.clone();
        with_opaque.set("zzz:runtime_handle", Value::Opaque(label));
        prop_assert_eq!(hash_options(&base), hash_options(&with_opaque));
    }

    #[test]
    fn hex_is_64_lowercase_chars(entries in arb_entries()) {
        let opts: Options = entries.into_iter().collect();
        let hex = hash_options_hex(&opts);
        prop_assert_eq!(hex.len(), 64);
        prop_assert!(hex.chars().all(|c| c.is_ascii_hexdigit() && !c.is_ascii_uppercase()));
    }

    #[test]
    fn sha256_incremental_equals_oneshot(data in prop::collection::vec(any::<u8>(), 0..2000), split in 0usize..2000) {
        let split = split.min(data.len());
        let mut h = Sha256::new();
        h.update(&data[..split]);
        h.update(&data[split..]);
        prop_assert_eq!(h.finalize(), Sha256::digest(&data));
    }

    #[test]
    fn merge_then_extract_is_consistent(a in arb_entries(), b in arb_entries()) {
        let oa: Options = a.into_iter().collect();
        let ob: Options = b.into_iter().collect();
        let mut merged = oa.clone();
        merged.merge_from(&ob);
        // every key of b holds b's value in the merge
        for (k, v) in ob.iter() {
            prop_assert_eq!(merged.get(k), Some(v));
        }
        // keys only in a keep a's value
        for (k, v) in oa.iter() {
            if !ob.contains(k) {
                prop_assert_eq!(merged.get(k), Some(v));
            }
        }
    }
}
