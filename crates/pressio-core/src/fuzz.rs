//! Seeded, dependency-free fuzzing harness for parser hardening.
//!
//! This is deliberately not coverage-guided: there is no nightly
//! toolchain or cargo-fuzz in the build environment, and the parsers
//! under test (wire frames, failpoint specs) are small enough that
//! corpus-seeded random mutation reaches their error paths reliably.
//! Everything is a pure function of `(seed, iteration)`, so any failure
//! reproduces exactly from the numbers in the panic message — including
//! in CI, where the nightly tier raises `PRESSIO_FUZZ_ITERS` well above
//! the smoke default.

/// SplitMix64 PRNG — small state, full 64-bit period, and deterministic
/// across platforms, which is all a reproducible fuzzer needs.
pub struct Rng {
    state: u64,
}

impl Rng {
    /// Seed a generator; equal seeds yield equal streams.
    pub fn new(seed: u64) -> Rng {
        Rng { state: seed }
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e3779b97f4a7c15);
        let mut x = self.state;
        x = (x ^ (x >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
        x = (x ^ (x >> 27)).wrapping_mul(0x94d049bb133111eb);
        x ^ (x >> 31)
    }

    /// Uniform value in `[0, n)`; returns 0 when `n == 0`.
    pub fn below(&mut self, n: usize) -> usize {
        if n == 0 {
            0
        } else {
            (self.next_u64() % n as u64) as usize
        }
    }

    /// One random byte.
    pub fn byte(&mut self) -> u8 {
        (self.next_u64() & 0xff) as u8
    }
}

/// Boundary values a length-prefixed binary protocol is most likely to
/// mishandle; the mutator stamps these over random 4-byte windows.
const INTERESTING_U32: [u32; 8] = [
    0,
    1,
    0x7f,
    0xff,
    0xffff,
    64 << 20,       // pressio-serve MAX_FRAME
    (64 << 20) + 1, // one past it
    u32::MAX,
];

/// Derive one mutated case from `base`, spending `1..=4` stacked
/// mutation operators. `corpus` feeds the splice operator.
pub fn mutate(base: &[u8], corpus: &[Vec<u8>], rng: &mut Rng) -> Vec<u8> {
    let mut out = base.to_vec();
    for _ in 0..1 + rng.below(4) {
        match rng.below(8) {
            // flip one bit
            0 if !out.is_empty() => {
                let i = rng.below(out.len());
                out[i] ^= 1 << rng.below(8);
            }
            // overwrite one byte
            1 if !out.is_empty() => {
                let i = rng.below(out.len());
                out[i] = rng.byte();
            }
            // delete a range
            2 if !out.is_empty() => {
                let start = rng.below(out.len());
                let end = (start + 1 + rng.below(16)).min(out.len());
                out.drain(start..end);
            }
            // duplicate a range in place
            3 if !out.is_empty() => {
                let start = rng.below(out.len());
                let end = (start + 1 + rng.below(16)).min(out.len());
                let chunk: Vec<u8> = out[start..end].to_vec();
                let at = rng.below(out.len() + 1);
                out.splice(at..at, chunk);
            }
            // insert random bytes
            4 => {
                let at = rng.below(out.len() + 1);
                let chunk: Vec<u8> = (0..1 + rng.below(8)).map(|_| rng.byte()).collect();
                out.splice(at..at, chunk);
            }
            // truncate
            5 if !out.is_empty() => {
                out.truncate(rng.below(out.len()));
            }
            // splice a window from another corpus entry
            6 if !corpus.is_empty() => {
                let other = &corpus[rng.below(corpus.len())];
                if !other.is_empty() {
                    let start = rng.below(other.len());
                    let end = (start + 1 + rng.below(32)).min(other.len());
                    let at = rng.below(out.len() + 1);
                    out.splice(at..at, other[start..end].iter().copied());
                }
            }
            // stamp an interesting u32 (big-endian) over a 4-byte window
            7 if out.len() >= 4 => {
                let v = INTERESTING_U32[rng.below(INTERESTING_U32.len())];
                let at = rng.below(out.len() - 3);
                out[at..at + 4].copy_from_slice(&v.to_be_bytes());
            }
            _ => {}
        }
    }
    out
}

fn env_u64(name: &str, default: u64) -> u64 {
    std::env::var(name)
        .ok()
        .and_then(|v| v.trim().parse().ok())
        .unwrap_or(default)
}

/// Drives `iters` mutated cases through a check closure, catching panics
/// and re-raising them with the exact `(seed, iteration)` and a hex dump
/// so the case replays byte-for-byte.
pub struct Fuzzer {
    /// Base seed; every iteration derives its own stream from it.
    pub seed: u64,
    /// Number of mutated cases to run.
    pub iters: u64,
}

impl Fuzzer {
    /// Smoke-test defaults, overridable without recompiling:
    /// `PRESSIO_FUZZ_ITERS` scales depth (the nightly CI tier raises it),
    /// `PRESSIO_FUZZ_SEED` replays a reported failure.
    pub fn from_env(default_iters: u64) -> Fuzzer {
        Fuzzer {
            seed: env_u64("PRESSIO_FUZZ_SEED", 0x5eed_cafe_f00d_0001),
            iters: env_u64("PRESSIO_FUZZ_ITERS", default_iters),
        }
    }

    /// Replay a single case: the mutated input for `(seed, iteration)`.
    pub fn case(&self, corpus: &[Vec<u8>], iteration: u64) -> Vec<u8> {
        let mut rng = Rng::new(
            self.seed
                .wrapping_add(iteration)
                .wrapping_mul(0x9e3779b97f4a7c15),
        );
        let base = &corpus[rng.below(corpus.len())];
        mutate(base, corpus, &mut rng)
    }

    /// Run every case through `check`. A panic inside `check` fails the
    /// run with enough context (`seed`, iteration, input hex) to replay
    /// it exactly.
    pub fn run(&self, corpus: &[Vec<u8>], mut check: impl FnMut(&[u8])) {
        assert!(!corpus.is_empty(), "fuzz corpus must not be empty");
        for i in 0..self.iters {
            let case = self.case(corpus, i);
            let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                check(&case);
            }));
            if let Err(payload) = outcome {
                let msg = payload
                    .downcast_ref::<String>()
                    .cloned()
                    .or_else(|| payload.downcast_ref::<&str>().map(|s| s.to_string()))
                    .unwrap_or_else(|| "non-string panic payload".into());
                panic!(
                    "fuzz case panicked: seed={:#x} iteration={} input[{} bytes]={}: {msg}",
                    self.seed,
                    i,
                    case.len(),
                    hex_preview(&case, 256),
                );
            }
        }
    }
}

/// First `limit` bytes as hex (with an ellipsis when truncated) — enough
/// to eyeball a failing case without flooding the test log.
pub fn hex_preview(bytes: &[u8], limit: usize) -> String {
    let shown = &bytes[..bytes.len().min(limit)];
    let mut s = String::with_capacity(shown.len() * 2 + 1);
    for b in shown {
        s.push_str(&format!("{b:02x}"));
    }
    if bytes.len() > limit {
        s.push('…');
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rng_is_deterministic() {
        let a: Vec<u64> = {
            let mut r = Rng::new(42);
            (0..8).map(|_| r.next_u64()).collect()
        };
        let b: Vec<u64> = {
            let mut r = Rng::new(42);
            (0..8).map(|_| r.next_u64()).collect()
        };
        assert_eq!(a, b);
        let c: Vec<u64> = {
            let mut r = Rng::new(43);
            (0..8).map(|_| r.next_u64()).collect()
        };
        assert_ne!(a, c);
    }

    #[test]
    fn below_respects_bound() {
        let mut r = Rng::new(7);
        for _ in 0..1000 {
            assert!(r.below(13) < 13);
        }
        assert_eq!(r.below(0), 0);
        assert_eq!(r.below(1), 0);
    }

    #[test]
    fn cases_replay_identically() {
        let corpus = vec![b"hello world".to_vec(), vec![0u8; 64]];
        let fuzzer = Fuzzer { seed: 99, iters: 0 };
        for i in 0..50 {
            assert_eq!(fuzzer.case(&corpus, i), fuzzer.case(&corpus, i));
        }
    }

    #[test]
    fn mutation_changes_most_cases() {
        let corpus = vec![(0u8..=255).collect::<Vec<u8>>()];
        let fuzzer = Fuzzer { seed: 3, iters: 0 };
        let changed = (0..100)
            .filter(|&i| fuzzer.case(&corpus, i) != corpus[0])
            .count();
        assert!(changed > 90, "only {changed}/100 cases mutated");
    }

    #[test]
    fn run_reports_seed_and_iteration_on_panic() {
        let corpus = vec![vec![1, 2, 3]];
        let fuzzer = Fuzzer { seed: 5, iters: 10 };
        let err = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            fuzzer.run(&corpus, |_| panic!("boom"));
        }))
        .unwrap_err();
        let msg = err.downcast_ref::<String>().unwrap();
        assert!(msg.contains("seed=0x5"), "{msg}");
        assert!(msg.contains("iteration=0"), "{msg}");
        assert!(msg.contains("boom"), "{msg}");
    }

    #[test]
    fn hex_preview_truncates() {
        assert_eq!(hex_preview(&[0xab, 0xcd], 8), "abcd");
        assert_eq!(hex_preview(&[0xff; 4], 2), "ffff…");
    }
}
