//! The compressor plugin abstraction, mirroring `libpressio_compressor_plugin`.

use crate::data::{Data, Dtype};
use crate::error::Result;
use crate::metrics::MetricsPlugin;
use crate::options::Options;

/// Well-known option keys shared by every compressor.
pub mod keys {
    /// Absolute point-wise error bound (`pressio:abs`).
    pub const ABS: &str = "pressio:abs";
    /// Compressor-reported lossless flag.
    pub const LOSSLESS: &str = "pressio:lossless";
}

/// A lossy (or lossless) compressor plugin.
///
/// Implementations are configured through [`Options`] (`set_options`), expose
/// their current configuration (`get_options`) and static capabilities
/// (`get_configuration`), and provide `compress`/`decompress`. The
/// configuration structure carries the `predictors:*` invalidation metadata
/// the prediction framework uses to decide which cached metrics survive a
/// settings change (paper §4.2).
pub trait Compressor: Send + Sync {
    /// Stable identifier (`"sz3"`, `"zfp"`), used in registries and
    /// experiment metadata.
    fn id(&self) -> &'static str;

    /// Apply settings. Unknown keys are ignored (LibPressio convention) so a
    /// combined option structure can be broadcast to several plugins.
    fn set_options(&mut self, opts: &Options) -> Result<()>;

    /// Current settings, suitable for hashing into a checkpoint key.
    fn get_options(&self) -> Options;

    /// Static capabilities: supported dtypes, error-bound modes, and
    /// invalidation metadata (which settings are error-affecting).
    fn get_configuration(&self) -> Options;

    /// Compress `input` into a standalone byte stream.
    fn compress(&self, input: &Data) -> Result<Vec<u8>>;

    /// Decompress `compressed`, producing a buffer of the given type/shape.
    fn decompress(&self, compressed: &[u8], dtype: Dtype, dims: &[usize]) -> Result<Data>;

    /// Clone into a boxed trait object (object-safe `Clone`).
    fn clone_box(&self) -> Box<dyn Compressor>;
}

impl Clone for Box<dyn Compressor> {
    fn clone(&self) -> Self {
        self.clone_box()
    }
}

/// A compressor wrapped with a stack of metrics plugins.
///
/// Mirrors LibPressio's pattern of attaching metrics to a compressor handle:
/// every `compress`/`decompress` call fires the `begin_*`/`end_*` hooks of
/// each attached [`MetricsPlugin`] (Figure 3 of the paper), and
/// [`InstrumentedCompressor::metrics_results`] gathers their combined output.
pub struct InstrumentedCompressor {
    inner: Box<dyn Compressor>,
    metrics: Vec<Box<dyn MetricsPlugin>>,
}

impl InstrumentedCompressor {
    /// Wrap `inner` with no metrics attached.
    pub fn new(inner: Box<dyn Compressor>) -> Self {
        InstrumentedCompressor {
            inner,
            metrics: Vec::new(),
        }
    }

    /// Attach a metrics plugin; hooks fire in attachment order.
    pub fn attach(&mut self, metric: Box<dyn MetricsPlugin>) -> &mut Self {
        self.metrics.push(metric);
        self
    }

    /// Builder-style [`InstrumentedCompressor::attach`].
    pub fn with_metric(mut self, metric: Box<dyn MetricsPlugin>) -> Self {
        self.attach(metric);
        self
    }

    /// Access the wrapped compressor.
    pub fn compressor(&self) -> &dyn Compressor {
        self.inner.as_ref()
    }

    /// Mutable access (e.g. for `set_options`).
    pub fn compressor_mut(&mut self) -> &mut Box<dyn Compressor> {
        &mut self.inner
    }

    /// Forward settings to the compressor **and** every attached metric.
    pub fn set_options(&mut self, opts: &Options) -> Result<()> {
        self.inner.set_options(opts)?;
        for m in &mut self.metrics {
            m.set_options(opts)?;
        }
        Ok(())
    }

    /// Compress with metric hooks.
    pub fn compress(&mut self, input: &Data) -> Result<Vec<u8>> {
        for m in &mut self.metrics {
            m.begin_compress(input)?;
        }
        let result = self.inner.compress(input);
        for m in &mut self.metrics {
            m.end_compress(input, result.as_deref().unwrap_or(&[]), result.is_ok())?;
        }
        result
    }

    /// Decompress with metric hooks.
    pub fn decompress(&mut self, compressed: &[u8], dtype: Dtype, dims: &[usize]) -> Result<Data> {
        for m in &mut self.metrics {
            m.begin_decompress(compressed)?;
        }
        let result = self.inner.decompress(compressed, dtype, dims);
        for m in &mut self.metrics {
            match &result {
                Ok(out) => m.end_decompress(compressed, Some(out), true)?,
                Err(_) => m.end_decompress(compressed, None, false)?,
            }
        }
        result
    }

    /// Union of all attached metrics' results. Later plugins win on key
    /// collisions (attachment order is the precedence order).
    pub fn metrics_results(&self) -> Options {
        let mut out = Options::new();
        for m in &self.metrics {
            out.merge_from(&m.results());
        }
        out
    }

    /// Union of all attached metrics' invalidation metadata
    /// (`predictors:invalidate` lists), keyed by metric id.
    pub fn metrics_configuration(&self) -> Options {
        let mut out = Options::new();
        for m in &self.metrics {
            let cfg = m.get_configuration();
            for (k, v) in cfg.iter() {
                out.set(format!("{}:{k}", m.id()), v.clone());
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::error::Error;

    /// A compressor that truncates every f32 toward zero — enough structure
    /// to exercise the instrumentation plumbing.
    #[derive(Clone, Default)]
    struct TruncCompressor {
        opts: Options,
    }

    impl Compressor for TruncCompressor {
        fn id(&self) -> &'static str {
            "trunc"
        }
        fn set_options(&mut self, opts: &Options) -> Result<()> {
            self.opts.merge_from(opts);
            Ok(())
        }
        fn get_options(&self) -> Options {
            self.opts.clone()
        }
        fn get_configuration(&self) -> Options {
            Options::new().with("pressio:thread_safe", true)
        }
        fn compress(&self, input: &Data) -> Result<Vec<u8>> {
            let vals = input.as_f32()?;
            Ok(vals.iter().map(|v| v.trunc() as i8 as u8).collect())
        }
        fn decompress(&self, compressed: &[u8], dtype: Dtype, dims: &[usize]) -> Result<Data> {
            if dtype != Dtype::F32 {
                return Err(Error::UnsupportedData("trunc is f32 only".into()));
            }
            Ok(Data::from_f32(
                dims.to_vec(),
                compressed.iter().map(|&b| b as i8 as f32).collect(),
            ))
        }
        fn clone_box(&self) -> Box<dyn Compressor> {
            Box::new(self.clone())
        }
    }

    /// Counts hook invocations.
    #[derive(Default)]
    struct CountingMetric {
        begins: u32,
        ends: u32,
        d_begins: u32,
        d_ends: u32,
    }

    impl MetricsPlugin for CountingMetric {
        fn id(&self) -> &'static str {
            "count"
        }
        fn begin_compress(&mut self, _input: &Data) -> Result<()> {
            self.begins += 1;
            Ok(())
        }
        fn end_compress(&mut self, _input: &Data, _compressed: &[u8], _ok: bool) -> Result<()> {
            self.ends += 1;
            Ok(())
        }
        fn begin_decompress(&mut self, _compressed: &[u8]) -> Result<()> {
            self.d_begins += 1;
            Ok(())
        }
        fn end_decompress(
            &mut self,
            _compressed: &[u8],
            _output: Option<&Data>,
            _ok: bool,
        ) -> Result<()> {
            self.d_ends += 1;
            Ok(())
        }
        fn results(&self) -> Options {
            Options::new()
                .with("count:begin_compress", self.begins as u64)
                .with("count:end_compress", self.ends as u64)
                .with("count:begin_decompress", self.d_begins as u64)
                .with("count:end_decompress", self.d_ends as u64)
        }
    }

    #[test]
    fn hooks_fire_in_pairs() {
        let mut ic = InstrumentedCompressor::new(Box::new(TruncCompressor::default()))
            .with_metric(Box::new(CountingMetric::default()));
        let data = Data::from_f32(vec![4], vec![1.5, -2.5, 3.0, 0.0]);
        let bytes = ic.compress(&data).unwrap();
        let back = ic.decompress(&bytes, Dtype::F32, &[4]).unwrap();
        assert_eq!(back.as_f32().unwrap(), &[1.0, -2.0, 3.0, 0.0]);
        let r = ic.metrics_results();
        assert_eq!(r.get_u64("count:begin_compress").unwrap(), 1);
        assert_eq!(r.get_u64("count:end_compress").unwrap(), 1);
        assert_eq!(r.get_u64("count:begin_decompress").unwrap(), 1);
        assert_eq!(r.get_u64("count:end_decompress").unwrap(), 1);
    }

    #[test]
    fn boxed_compressor_clones() {
        let boxed: Box<dyn Compressor> = Box::new(TruncCompressor::default());
        let cloned = boxed.clone();
        assert_eq!(cloned.id(), "trunc");
    }

    #[test]
    fn set_options_reaches_compressor() {
        let mut ic = InstrumentedCompressor::new(Box::new(TruncCompressor::default()));
        ic.set_options(&Options::new().with("pressio:abs", 0.1))
            .unwrap();
        assert_eq!(
            ic.compressor()
                .get_options()
                .get_f64("pressio:abs")
                .unwrap(),
            0.1
        );
    }
}
