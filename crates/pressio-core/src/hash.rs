//! Deterministic option-structure hashing (paper §4.3).
//!
//! LibPressio-Predict-Bench indexes its checkpoint database by a *stable
//! cryptographic* hash of option structures: unlike `std::hash`, the digest
//! is identical across executions, architectures, and library versions, so a
//! restarted job finds its previous results. We implement SHA-256 from the
//! FIPS 180-4 specification (no external dependency) and define a canonical
//! byte encoding of [`Options`]: entries are walked in sorted-key order and
//! `Opaque` values (the analog of `void*` CUDA streams / `MPI_Comm`) are
//! skipped.

use crate::options::Options;
use crate::value::Value;

const K: [u32; 64] = [
    0x428a2f98, 0x71374491, 0xb5c0fbcf, 0xe9b5dba5, 0x3956c25b, 0x59f111f1, 0x923f82a4, 0xab1c5ed5,
    0xd807aa98, 0x12835b01, 0x243185be, 0x550c7dc3, 0x72be5d74, 0x80deb1fe, 0x9bdc06a7, 0xc19bf174,
    0xe49b69c1, 0xefbe4786, 0x0fc19dc6, 0x240ca1cc, 0x2de92c6f, 0x4a7484aa, 0x5cb0a9dc, 0x76f988da,
    0x983e5152, 0xa831c66d, 0xb00327c8, 0xbf597fc7, 0xc6e00bf3, 0xd5a79147, 0x06ca6351, 0x14292967,
    0x27b70a85, 0x2e1b2138, 0x4d2c6dfc, 0x53380d13, 0x650a7354, 0x766a0abb, 0x81c2c92e, 0x92722c85,
    0xa2bfe8a1, 0xa81a664b, 0xc24b8b70, 0xc76c51a3, 0xd192e819, 0xd6990624, 0xf40e3585, 0x106aa070,
    0x19a4c116, 0x1e376c08, 0x2748774c, 0x34b0bcb5, 0x391c0cb3, 0x4ed8aa4a, 0x5b9cca4f, 0x682e6ff3,
    0x748f82ee, 0x78a5636f, 0x84c87814, 0x8cc70208, 0x90befffa, 0xa4506ceb, 0xbef9a3f7, 0xc67178f2,
];

/// Incremental SHA-256 hasher.
#[derive(Clone)]
pub struct Sha256 {
    state: [u32; 8],
    buffer: [u8; 64],
    buffer_len: usize,
    total_len: u64,
}

impl Default for Sha256 {
    fn default() -> Self {
        Self::new()
    }
}

impl Sha256 {
    /// Fresh hasher with the FIPS initial state.
    pub fn new() -> Self {
        Sha256 {
            state: [
                0x6a09e667, 0xbb67ae85, 0x3c6ef372, 0xa54ff53a, 0x510e527f, 0x9b05688c, 0x1f83d9ab,
                0x5be0cd19,
            ],
            buffer: [0u8; 64],
            buffer_len: 0,
            total_len: 0,
        }
    }

    /// Absorb `data`.
    pub fn update(&mut self, data: &[u8]) {
        self.total_len = self.total_len.wrapping_add(data.len() as u64);
        let mut rest = data;
        if self.buffer_len > 0 {
            let take = (64 - self.buffer_len).min(rest.len());
            self.buffer[self.buffer_len..self.buffer_len + take].copy_from_slice(&rest[..take]);
            self.buffer_len += take;
            rest = &rest[take..];
            if self.buffer_len == 64 {
                let block = self.buffer;
                self.compress(&block);
                self.buffer_len = 0;
            }
        }
        while rest.len() >= 64 {
            let (block, tail) = rest.split_at(64);
            self.compress(block.try_into().unwrap());
            rest = tail;
        }
        if !rest.is_empty() {
            self.buffer[..rest.len()].copy_from_slice(rest);
            self.buffer_len = rest.len();
        }
    }

    fn compress(&mut self, block: &[u8; 64]) {
        let mut w = [0u32; 64];
        for (i, chunk) in block.chunks_exact(4).enumerate() {
            w[i] = u32::from_be_bytes(chunk.try_into().unwrap());
        }
        for i in 16..64 {
            let s0 = w[i - 15].rotate_right(7) ^ w[i - 15].rotate_right(18) ^ (w[i - 15] >> 3);
            let s1 = w[i - 2].rotate_right(17) ^ w[i - 2].rotate_right(19) ^ (w[i - 2] >> 10);
            w[i] = w[i - 16]
                .wrapping_add(s0)
                .wrapping_add(w[i - 7])
                .wrapping_add(s1);
        }
        let [mut a, mut b, mut c, mut d, mut e, mut f, mut g, mut h] = self.state;
        for i in 0..64 {
            let s1 = e.rotate_right(6) ^ e.rotate_right(11) ^ e.rotate_right(25);
            let ch = (e & f) ^ (!e & g);
            let t1 = h
                .wrapping_add(s1)
                .wrapping_add(ch)
                .wrapping_add(K[i])
                .wrapping_add(w[i]);
            let s0 = a.rotate_right(2) ^ a.rotate_right(13) ^ a.rotate_right(22);
            let maj = (a & b) ^ (a & c) ^ (b & c);
            let t2 = s0.wrapping_add(maj);
            h = g;
            g = f;
            f = e;
            e = d.wrapping_add(t1);
            d = c;
            c = b;
            b = a;
            a = t1.wrapping_add(t2);
        }
        self.state[0] = self.state[0].wrapping_add(a);
        self.state[1] = self.state[1].wrapping_add(b);
        self.state[2] = self.state[2].wrapping_add(c);
        self.state[3] = self.state[3].wrapping_add(d);
        self.state[4] = self.state[4].wrapping_add(e);
        self.state[5] = self.state[5].wrapping_add(f);
        self.state[6] = self.state[6].wrapping_add(g);
        self.state[7] = self.state[7].wrapping_add(h);
    }

    /// Finish and produce the 32-byte digest.
    pub fn finalize(mut self) -> [u8; 32] {
        let bit_len = self.total_len.wrapping_mul(8);
        self.update(&[0x80]);
        while self.buffer_len != 56 {
            self.update(&[0x00]);
        }
        // append length without re-counting it
        self.total_len = self.total_len.wrapping_sub(8);
        self.update(&bit_len.to_be_bytes());
        let mut out = [0u8; 32];
        for (i, word) in self.state.iter().enumerate() {
            out[i * 4..i * 4 + 4].copy_from_slice(&word.to_be_bytes());
        }
        out
    }

    /// One-shot digest.
    pub fn digest(data: &[u8]) -> [u8; 32] {
        let mut h = Sha256::new();
        h.update(data);
        h.finalize()
    }
}

/// Streaming FNV-1a 64-bit — the repo's standard cheap content checksum
/// (PSEL decision records, PSTF stream frames). Unlike [`Sha256`] it is
/// not collision-resistant; it guards against corruption, not adversaries.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Fnv1a64 {
    state: u64,
}

impl Fnv1a64 {
    /// Fresh hasher at the FNV offset basis.
    pub fn new() -> Fnv1a64 {
        Fnv1a64 {
            state: 0xcbf2_9ce4_8422_2325,
        }
    }

    /// Absorb bytes; chunk boundaries do not affect the result.
    pub fn update(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.state ^= b as u64;
            self.state = self.state.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }

    /// The digest so far (the hasher remains usable).
    pub fn finish(&self) -> u64 {
        self.state
    }
}

impl Default for Fnv1a64 {
    fn default() -> Self {
        Fnv1a64::new()
    }
}

/// One-shot FNV-1a 64 of a byte slice.
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h = Fnv1a64::new();
    h.update(bytes);
    h.finish()
}

/// Render a digest as lowercase hex.
pub fn to_hex(digest: &[u8; 32]) -> String {
    let mut s = String::with_capacity(64);
    for b in digest {
        s.push_str(&format!("{b:02x}"));
    }
    s
}

fn hash_value(h: &mut Sha256, v: &Value) {
    // A one-byte type tag keeps e.g. U64(1) and I64(1) distinct.
    match v {
        Value::Bool(b) => {
            h.update(&[0x01, *b as u8]);
        }
        Value::I64(x) => {
            h.update(&[0x02]);
            h.update(&x.to_le_bytes());
        }
        Value::U64(x) => {
            h.update(&[0x03]);
            h.update(&x.to_le_bytes());
        }
        Value::F64(x) => {
            h.update(&[0x04]);
            // canonicalize -0.0 so numerically equal configs hash equal
            let x = if *x == 0.0 { 0.0 } else { *x };
            h.update(&x.to_le_bytes());
        }
        Value::Str(s) => {
            h.update(&[0x05]);
            h.update(&(s.len() as u64).to_le_bytes());
            h.update(s.as_bytes());
        }
        Value::F64Vec(xs) => {
            h.update(&[0x06]);
            h.update(&(xs.len() as u64).to_le_bytes());
            for x in xs {
                let x = if *x == 0.0 { 0.0 } else { *x };
                h.update(&x.to_le_bytes());
            }
        }
        Value::U64Vec(xs) => {
            h.update(&[0x07]);
            h.update(&(xs.len() as u64).to_le_bytes());
            for x in xs {
                h.update(&x.to_le_bytes());
            }
        }
        Value::StrVec(xs) => {
            h.update(&[0x08]);
            h.update(&(xs.len() as u64).to_le_bytes());
            for s in xs {
                h.update(&(s.len() as u64).to_le_bytes());
                h.update(s.as_bytes());
            }
        }
        Value::Bytes(xs) => {
            h.update(&[0x09]);
            h.update(&(xs.len() as u64).to_le_bytes());
            h.update(xs);
        }
        Value::Opaque(_) => unreachable!("opaque values are filtered before hashing"),
    }
}

/// Stable digest of an option structure.
///
/// Entries are visited in sorted-key order (guaranteed by [`Options`]'s
/// `BTreeMap`); `Opaque` entries are skipped so runtime handles do not
/// perturb the key a result is stored under.
pub fn hash_options(opts: &Options) -> [u8; 32] {
    let mut h = Sha256::new();
    for (k, v) in opts.iter() {
        if !v.is_hashable() {
            continue;
        }
        h.update(&(k.len() as u64).to_le_bytes());
        h.update(k.as_bytes());
        hash_value(&mut h, v);
    }
    h.finalize()
}

/// Hex form of [`hash_options`] — the checkpoint database key.
pub fn hash_options_hex(opts: &Options) -> String {
    to_hex(&hash_options(opts))
}

#[cfg(test)]
mod tests {
    use super::*;

    /// FIPS 180-4 test vectors.
    #[test]
    fn sha256_known_vectors() {
        assert_eq!(
            to_hex(&Sha256::digest(b"")),
            "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855"
        );
        assert_eq!(
            to_hex(&Sha256::digest(b"abc")),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad"
        );
        assert_eq!(
            to_hex(&Sha256::digest(
                b"abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq"
            )),
            "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1"
        );
    }

    #[test]
    fn sha256_million_a() {
        let mut h = Sha256::new();
        let chunk = [b'a'; 1000];
        for _ in 0..1000 {
            h.update(&chunk);
        }
        assert_eq!(
            to_hex(&h.finalize()),
            "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0"
        );
    }

    #[test]
    fn incremental_matches_oneshot() {
        let data: Vec<u8> = (0..=255u8).cycle().take(1000).collect();
        for split in [0usize, 1, 63, 64, 65, 500, 999, 1000] {
            let mut h = Sha256::new();
            h.update(&data[..split]);
            h.update(&data[split..]);
            assert_eq!(h.finalize(), Sha256::digest(&data), "split={split}");
        }
    }

    #[test]
    fn option_hash_is_insertion_order_independent() {
        let a = Options::new().with("x", 1.0).with("y", "abs");
        let b = Options::new().with("y", "abs").with("x", 1.0);
        assert_eq!(hash_options(&a), hash_options(&b));
    }

    #[test]
    fn option_hash_distinguishes_values_and_types() {
        let base = Options::new().with("pressio:abs", 1e-6);
        let other = Options::new().with("pressio:abs", 1e-4);
        assert_ne!(hash_options(&base), hash_options(&other));
        let int1 = Options::new().with("n", 1u64);
        let sint1 = Options::new().with("n", 1i64);
        assert_ne!(hash_options(&int1), hash_options(&sint1));
    }

    #[test]
    fn opaque_entries_do_not_affect_hash() {
        let plain = Options::new().with("pressio:abs", 1e-6);
        let mut with_handle = plain.clone();
        with_handle.set("runtime:stream", Value::Opaque("cuda-stream-7".into()));
        assert_eq!(hash_options(&plain), hash_options(&with_handle));
    }

    #[test]
    fn negative_zero_canonicalized() {
        let a = Options::new().with("v", 0.0f64);
        let b = Options::new().with("v", -0.0f64);
        assert_eq!(hash_options(&a), hash_options(&b));
    }

    #[test]
    fn key_value_boundaries_unambiguous() {
        // ("ab" -> "c") must differ from ("a" -> "bc")
        let a = Options::new().with("ab", "c");
        let b = Options::new().with("a", "bc");
        assert_ne!(hash_options(&a), hash_options(&b));
    }

    #[test]
    fn fnv1a64_reference_vectors() {
        assert_eq!(fnv1a64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a64(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a64(b"foobar"), 0x85944171f73967e8);
    }

    #[test]
    fn fnv1a64_streaming_matches_one_shot() {
        let payload: Vec<u8> = (0..=255u8).cycle().take(1031).collect();
        let mut h = Fnv1a64::new();
        for piece in payload.chunks(7) {
            h.update(piece);
        }
        assert_eq!(h.finish(), fnv1a64(&payload));
        assert_eq!(Fnv1a64::default().finish(), fnv1a64(b""));
    }
}
