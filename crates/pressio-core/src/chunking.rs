//! Outer-axis chunk iteration for streaming compression.
//!
//! Dims are fastest-first everywhere in this crate, so the *last* dimension
//! is the slowest-varying (for a time series: the timestep axis) and a run
//! of consecutive outer slices is a contiguous block of memory. Streaming
//! splits a field along that axis into chunks of `chunk_outer` slices each;
//! every chunk keeps the full inner shape and gains an outer extent, so a
//! `[nx, ny, nz, t]` field yields rank-4 `[nx, ny, nz, c]` chunks that the
//! SZ and ZFP codecs already accept (both collapse high rank gracefully).
//!
//! The module also carries the chained-mode delta transform: a chunk can be
//! re-expressed as residuals against the *previous chunk's last decoded
//! slice* (a previous-timestep hold predictor, LFZip-style). Because the
//! reference slice is the decoded one, encoder and decoder reconstruct the
//! exact same state, and an absolute error bound on the residual stream
//! carries over to the reconstruction up to one float rounding step.

use crate::compressor::Compressor;
use crate::data::{Data, Dtype};
use crate::error::{Error, Result};

/// Split fastest-first dims into `(inner_dims, outer_extent)`.
///
/// Rank-1 data has an empty inner shape (each outer slice is one scalar).
pub fn split_dims(dims: &[usize]) -> Result<(Vec<usize>, usize)> {
    match dims.split_last() {
        Some((&outer, inner)) => Ok((inner.to_vec(), outer)),
        None => Err(Error::UnsupportedData(
            "cannot stream zero-rank data".into(),
        )),
    }
}

/// Elements in one outer slice (product of the inner dims).
pub fn inner_elems(inner_dims: &[usize]) -> usize {
    inner_dims.iter().product()
}

/// Iterator over `(start, count)` outer ranges covering `outer` slices in
/// chunks of at most `chunk_outer`.
#[derive(Debug, Clone)]
pub struct OuterChunks {
    outer: usize,
    chunk_outer: usize,
    next: usize,
}

impl OuterChunks {
    /// Plan chunk ranges; `chunk_outer` must be non-zero.
    pub fn new(outer: usize, chunk_outer: usize) -> Result<OuterChunks> {
        if chunk_outer == 0 {
            return Err(Error::InvalidValue {
                key: "stream:chunk_outer".into(),
                reason: "chunk size must be at least one outer slice".into(),
            });
        }
        Ok(OuterChunks {
            outer,
            chunk_outer,
            next: 0,
        })
    }
}

impl Iterator for OuterChunks {
    type Item = (usize, usize);

    fn next(&mut self) -> Option<(usize, usize)> {
        if self.next >= self.outer {
            return None;
        }
        let start = self.next;
        let count = self.chunk_outer.min(self.outer - start);
        self.next = start + count;
        Some((start, count))
    }
}

/// Extract `count` outer slices starting at `start` as a standalone buffer.
///
/// The result keeps the inner shape and has outer extent `count`.
pub fn slice_outer(data: &Data, start: usize, count: usize) -> Result<Data> {
    let (inner, outer) = split_dims(data.dims())?;
    if start + count > outer {
        return Err(Error::UnsupportedData(format!(
            "outer slice {start}+{count} exceeds extent {outer}"
        )));
    }
    let mut origin = vec![0usize; inner.len()];
    origin.push(start);
    let mut shape = inner;
    shape.push(count);
    data.slice_block(&origin, &shape)
}

/// Concatenate chunks along the outer axis (inverse of chunked
/// [`slice_outer`] extraction). All chunks must share dtype and inner shape.
pub fn concat_outer(chunks: &[Data]) -> Result<Data> {
    let first = chunks
        .first()
        .ok_or_else(|| Error::UnsupportedData("cannot concatenate zero chunks".into()))?;
    let (inner, _) = split_dims(first.dims())?;
    let dtype = first.dtype();
    let mut total_outer = 0usize;
    let mut bytes = Vec::new();
    for chunk in chunks {
        let (ci, co) = split_dims(chunk.dims())?;
        if ci != inner || chunk.dtype() != dtype {
            return Err(Error::UnsupportedData(
                "chunks disagree on dtype or inner shape".into(),
            ));
        }
        total_outer += co;
        bytes.extend_from_slice(&chunk.to_le_bytes());
    }
    let mut dims = inner;
    dims.push(total_outer);
    Data::from_le_bytes(dtype, dims, &bytes)
}

/// The last outer slice of `data`, with the outer axis dropped
/// (dims = inner shape). This is the carried state for chained streaming.
pub fn last_outer_slice(data: &Data) -> Result<Data> {
    let (inner, outer) = split_dims(data.dims())?;
    if outer == 0 {
        return Err(Error::UnsupportedData(
            "empty outer extent has no last slice".into(),
        ));
    }
    let slice = slice_outer(data, outer - 1, 1)?;
    Data::from_le_bytes(data.dtype(), inner, &slice.to_le_bytes())
}

fn check_delta_shapes(chunk: &Data, prev_last: &Data) -> Result<(usize, usize)> {
    let (inner, outer) = split_dims(chunk.dims())?;
    if prev_last.dims() != inner.as_slice() {
        return Err(Error::UnsupportedData(format!(
            "carried slice shape {:?} does not match chunk inner shape {:?}",
            prev_last.dims(),
            inner
        )));
    }
    if prev_last.dtype() != chunk.dtype() {
        return Err(Error::UnsupportedData(
            "carried slice dtype does not match chunk dtype".into(),
        ));
    }
    Ok((inner_elems(&inner), outer))
}

/// Forward temporal delta: every outer slice of `chunk` becomes its residual
/// against `prev_last` (the previous chunk's last decoded slice, broadcast
/// across the chunk — a previous-timestep hold predictor).
pub fn delta_forward(chunk: &Data, prev_last: &Data) -> Result<Data> {
    let (stride, outer) = check_delta_shapes(chunk, prev_last)?;
    match chunk.dtype() {
        Dtype::F32 => {
            let cur = chunk.as_f32()?;
            let prev = prev_last.as_f32()?;
            let mut out = Vec::with_capacity(cur.len());
            for s in 0..outer {
                for i in 0..stride {
                    out.push(cur[s * stride + i] - prev[i]);
                }
            }
            Ok(Data::from_f32(chunk.dims().to_vec(), out))
        }
        Dtype::F64 => {
            let cur = chunk.as_f64()?;
            let prev = prev_last.as_f64()?;
            let mut out = Vec::with_capacity(cur.len());
            for s in 0..outer {
                for i in 0..stride {
                    out.push(cur[s * stride + i] - prev[i]);
                }
            }
            Ok(Data::from_f64(chunk.dims().to_vec(), out))
        }
        other => Err(Error::UnsupportedData(format!(
            "chained streaming requires a float dtype, got {}",
            other.name()
        ))),
    }
}

/// Inverse of [`delta_forward`]: add `prev_last` back onto every outer slice
/// of the residual chunk.
pub fn delta_reconstruct(residual: &Data, prev_last: &Data) -> Result<Data> {
    let (stride, outer) = check_delta_shapes(residual, prev_last)?;
    match residual.dtype() {
        Dtype::F32 => {
            let res = residual.as_f32()?;
            let prev = prev_last.as_f32()?;
            let mut out = Vec::with_capacity(res.len());
            for s in 0..outer {
                for i in 0..stride {
                    out.push(res[s * stride + i] + prev[i]);
                }
            }
            Ok(Data::from_f32(residual.dims().to_vec(), out))
        }
        Dtype::F64 => {
            let res = residual.as_f64()?;
            let prev = prev_last.as_f64()?;
            let mut out = Vec::with_capacity(res.len());
            for s in 0..outer {
                for i in 0..stride {
                    out.push(res[s * stride + i] + prev[i]);
                }
            }
            Ok(Data::from_f64(residual.dims().to_vec(), out))
        }
        other => Err(Error::UnsupportedData(format!(
            "chained streaming requires a float dtype, got {}",
            other.name()
        ))),
    }
}

/// Encode one chunk, optionally chained on the previous chunk's last decoded
/// slice. Returns `(compressed, decoded)` where `decoded` is the chunk as a
/// decoder will reconstruct it — the encoder decompresses its own output so
/// both sides agree bit-for-bit on checksums and carried state.
pub fn encode_chunk_stateful(
    codec: &dyn Compressor,
    chunk: &Data,
    carried: Option<&Data>,
) -> Result<(Vec<u8>, Data)> {
    let payload = match carried {
        Some(prev) => delta_forward(chunk, prev)?,
        None => chunk.clone(),
    };
    let compressed = codec.compress(&payload)?;
    let decoded_payload = codec.decompress(&compressed, chunk.dtype(), chunk.dims())?;
    let decoded = match carried {
        Some(prev) => delta_reconstruct(&decoded_payload, prev)?,
        None => decoded_payload,
    };
    Ok((compressed, decoded))
}

/// Decode one chunk, optionally chained on the previous chunk's last decoded
/// slice (mirror of [`encode_chunk_stateful`]).
pub fn decode_chunk_stateful(
    codec: &dyn Compressor,
    compressed: &[u8],
    dtype: Dtype,
    dims: &[usize],
    carried: Option<&Data>,
) -> Result<Data> {
    let payload = codec.decompress(compressed, dtype, dims)?;
    match carried {
        Some(prev) => delta_reconstruct(&payload, prev),
        None => Ok(payload),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::options::Options;

    /// Lossless identity codec: the "compressed" stream is the LE bytes.
    #[derive(Clone)]
    struct IdentityCodec;

    impl Compressor for IdentityCodec {
        fn id(&self) -> &'static str {
            "identity"
        }
        fn set_options(&mut self, _opts: &Options) -> Result<()> {
            Ok(())
        }
        fn get_options(&self) -> Options {
            Options::new()
        }
        fn get_configuration(&self) -> Options {
            Options::new()
        }
        fn compress(&self, input: &Data) -> Result<Vec<u8>> {
            Ok(input.to_le_bytes())
        }
        fn decompress(&self, compressed: &[u8], dtype: Dtype, dims: &[usize]) -> Result<Data> {
            Data::from_le_bytes(dtype, dims.to_vec(), compressed)
        }
        fn clone_box(&self) -> Box<dyn Compressor> {
            Box::new(self.clone())
        }
    }

    fn field(nx: usize, t: usize) -> Data {
        let vals: Vec<f32> = (0..nx * t).map(|i| (i as f32) * 0.5 - 3.0).collect();
        Data::from_f32(vec![nx, t], vals)
    }

    #[test]
    fn outer_chunks_cover_exactly_once() {
        let ranges: Vec<_> = OuterChunks::new(10, 4).unwrap().collect();
        assert_eq!(ranges, vec![(0, 4), (4, 4), (8, 2)]);
        let ranges: Vec<_> = OuterChunks::new(8, 4).unwrap().collect();
        assert_eq!(ranges, vec![(0, 4), (4, 4)]);
        assert_eq!(OuterChunks::new(0, 4).unwrap().count(), 0);
        assert!(OuterChunks::new(3, 0).is_err());
    }

    #[test]
    fn slice_concat_roundtrip() {
        let data = field(5, 7);
        let chunks: Vec<Data> = OuterChunks::new(7, 3)
            .unwrap()
            .map(|(s, c)| slice_outer(&data, s, c).unwrap())
            .collect();
        assert_eq!(chunks[0].dims(), &[5, 3]);
        assert_eq!(chunks[2].dims(), &[5, 1]);
        let back = concat_outer(&chunks).unwrap();
        assert_eq!(back.dims(), data.dims());
        assert_eq!(back.to_le_bytes(), data.to_le_bytes());
    }

    #[test]
    fn rank1_slices_are_scalar_runs() {
        let data = Data::from_f64(vec![6], vec![0.0, 1.0, 2.0, 3.0, 4.0, 5.0]);
        let s = slice_outer(&data, 2, 3).unwrap();
        assert_eq!(s.dims(), &[3]);
        assert_eq!(s.as_f64().unwrap(), &[2.0, 3.0, 4.0]);
        let last = last_outer_slice(&data).unwrap();
        assert_eq!(last.dims(), &[] as &[usize]);
        assert_eq!(last.as_f64().unwrap(), &[5.0]);
    }

    #[test]
    fn delta_roundtrip_is_exact_for_identity() {
        let data = field(4, 6);
        let prev = last_outer_slice(&slice_outer(&data, 0, 2).unwrap()).unwrap();
        let cur = slice_outer(&data, 2, 3).unwrap();
        let res = delta_forward(&cur, &prev).unwrap();
        let back = delta_reconstruct(&res, &prev).unwrap();
        assert_eq!(back.to_le_bytes(), cur.to_le_bytes());
    }

    #[test]
    fn delta_rejects_shape_and_dtype_mismatch() {
        let cur = field(4, 2);
        let bad_shape = Data::from_f32(vec![3], vec![0.0; 3]);
        assert!(delta_forward(&cur, &bad_shape).is_err());
        let bad_dtype = Data::from_f64(vec![4], vec![0.0; 4]);
        assert!(delta_forward(&cur, &bad_dtype).is_err());
        let ints = Data::from_i32(vec![4, 2], vec![0; 8]);
        let prev = Data::from_i32(vec![4], vec![0; 4]);
        assert!(delta_forward(&ints, &prev).is_err());
    }

    #[test]
    fn stateful_chunk_pipeline_matches_whole_buffer() {
        let codec = IdentityCodec;
        let data = field(8, 9);
        for carried_mode in [false, true] {
            let mut carried: Option<Data> = None;
            let mut decoded_chunks = Vec::new();
            for (s, c) in OuterChunks::new(9, 4).unwrap() {
                let chunk = slice_outer(&data, s, c).unwrap();
                let (comp, enc_decoded) =
                    encode_chunk_stateful(&codec, &chunk, carried.as_ref()).unwrap();
                let dec = decode_chunk_stateful(
                    &codec,
                    &comp,
                    chunk.dtype(),
                    chunk.dims(),
                    carried.as_ref(),
                )
                .unwrap();
                // encoder-side and decoder-side reconstructions agree
                assert_eq!(enc_decoded.to_le_bytes(), dec.to_le_bytes());
                if carried_mode {
                    carried = Some(last_outer_slice(&dec).unwrap());
                }
                decoded_chunks.push(dec);
            }
            let back = concat_outer(&decoded_chunks).unwrap();
            assert_eq!(back.to_le_bytes(), data.to_le_bytes());
        }
    }
}
