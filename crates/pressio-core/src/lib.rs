//! # pressio-core
//!
//! Core abstractions of the LibPressio-Predict reproduction: typed
//! configuration ([`options::Options`]), n-dimensional data buffers
//! ([`data::Data`]), the compressor and metrics plugin traits
//! ([`compressor::Compressor`], [`metrics::MetricsPlugin`]), plugin
//! registries, deterministic option hashing ([`hash`]), and timing helpers.
//!
//! These mirror the roles of `pressio_options`, `pressio_data`,
//! `libpressio_compressor_plugin`, and `libpressio_metrics_plugin` in the C++
//! LibPressio library the paper builds on (Underwood et al., SC-W 2023).
//!
//! ## Quick example
//!
//! ```
//! use pressio_core::options::Options;
//! use pressio_core::hash::hash_options_hex;
//!
//! let cfg = Options::new()
//!     .with("pressio:abs", 1e-6)
//!     .with("sz3:predictor", "lorenzo");
//! // deterministic across runs: suitable as a checkpoint-database key
//! let key = hash_options_hex(&cfg);
//! assert_eq!(key.len(), 64);
//! ```

#![warn(missing_docs)]

pub mod chunking;
pub mod compressor;
pub mod data;
pub mod error;
pub mod external;
pub mod fuzz;
pub mod hash;
pub mod lanes;
pub mod metrics;
pub mod options;
pub mod registry;
pub mod threads;
pub mod timing;
pub mod value;

pub use compressor::{Compressor, InstrumentedCompressor};
pub use data::{Data, Dtype};
pub use error::{Error, Result};
pub use metrics::MetricsPlugin;
pub use options::Options;
pub use registry::Registry;
pub use value::Value;
