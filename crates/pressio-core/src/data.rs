//! N-dimensional typed data buffers, mirroring `pressio_data`.

use crate::error::{Error, Result};
use serde::{Deserialize, Serialize};

/// Element type of a buffer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Dtype {
    /// 32-bit IEEE float (the dominant type in HPC outputs).
    F32,
    /// 64-bit IEEE float.
    F64,
    /// 32-bit signed integer.
    I32,
    /// 64-bit signed integer.
    I64,
    /// Raw bytes (compressed streams, masks).
    U8,
}

impl Dtype {
    /// Size of one element in bytes.
    pub fn size(self) -> usize {
        match self {
            Dtype::F32 | Dtype::I32 => 4,
            Dtype::F64 | Dtype::I64 => 8,
            Dtype::U8 => 1,
        }
    }

    /// Canonical lowercase name (`"f32"`, ...).
    pub fn name(self) -> &'static str {
        match self {
            Dtype::F32 => "f32",
            Dtype::F64 => "f64",
            Dtype::I32 => "i32",
            Dtype::I64 => "i64",
            Dtype::U8 => "u8",
        }
    }

    /// Parse a canonical name.
    pub fn parse(s: &str) -> Result<Dtype> {
        match s {
            "f32" | "float" => Ok(Dtype::F32),
            "f64" | "double" => Ok(Dtype::F64),
            "i32" => Ok(Dtype::I32),
            "i64" => Ok(Dtype::I64),
            "u8" | "byte" => Ok(Dtype::U8),
            other => Err(Error::UnsupportedData(format!("unknown dtype '{other}'"))),
        }
    }
}

/// Typed storage. Keeping per-type vectors (instead of a `Vec<u8>` blob)
/// guarantees alignment for safe typed slices.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
enum Storage {
    F32(Vec<f32>),
    F64(Vec<f64>),
    I32(Vec<i32>),
    I64(Vec<i64>),
    U8(Vec<u8>),
}

/// An n-dimensional typed buffer.
///
/// Dimensions follow LibPressio's convention: `dims[0]` is the **fastest**
/// varying dimension. A Hurricane Isabel field is
/// `dims = [500, 500, 100]` (x fastest, z slowest).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Data {
    dims: Vec<usize>,
    storage: Storage,
}

impl Data {
    /// Build from an `f32` vector. Panics if `dims` does not match `len`.
    pub fn from_f32(dims: Vec<usize>, values: Vec<f32>) -> Data {
        assert_eq!(
            dims.iter().product::<usize>(),
            values.len(),
            "dims do not match element count"
        );
        Data {
            dims,
            storage: Storage::F32(values),
        }
    }

    /// Build from an `f64` vector. Panics if `dims` does not match `len`.
    pub fn from_f64(dims: Vec<usize>, values: Vec<f64>) -> Data {
        assert_eq!(dims.iter().product::<usize>(), values.len());
        Data {
            dims,
            storage: Storage::F64(values),
        }
    }

    /// Build from an `i32` vector.
    pub fn from_i32(dims: Vec<usize>, values: Vec<i32>) -> Data {
        assert_eq!(dims.iter().product::<usize>(), values.len());
        Data {
            dims,
            storage: Storage::I32(values),
        }
    }

    /// Build from an `i64` vector.
    pub fn from_i64(dims: Vec<usize>, values: Vec<i64>) -> Data {
        assert_eq!(dims.iter().product::<usize>(), values.len());
        Data {
            dims,
            storage: Storage::I64(values),
        }
    }

    /// Build a 1-d byte buffer (compressed streams).
    pub fn from_bytes(values: Vec<u8>) -> Data {
        Data {
            dims: vec![values.len()],
            storage: Storage::U8(values),
        }
    }

    /// An all-zero buffer of the given type and shape (decode targets).
    pub fn zeros(dtype: Dtype, dims: Vec<usize>) -> Data {
        let n: usize = dims.iter().product();
        let storage = match dtype {
            Dtype::F32 => Storage::F32(vec![0.0; n]),
            Dtype::F64 => Storage::F64(vec![0.0; n]),
            Dtype::I32 => Storage::I32(vec![0; n]),
            Dtype::I64 => Storage::I64(vec![0; n]),
            Dtype::U8 => Storage::U8(vec![0; n]),
        };
        Data { dims, storage }
    }

    /// Element type.
    pub fn dtype(&self) -> Dtype {
        match &self.storage {
            Storage::F32(_) => Dtype::F32,
            Storage::F64(_) => Dtype::F64,
            Storage::I32(_) => Dtype::I32,
            Storage::I64(_) => Dtype::I64,
            Storage::U8(_) => Dtype::U8,
        }
    }

    /// Shape, fastest-varying dimension first.
    pub fn dims(&self) -> &[usize] {
        &self.dims
    }

    /// Total number of elements.
    pub fn num_elements(&self) -> usize {
        self.dims.iter().product()
    }

    /// Total size in bytes (`num_elements * dtype.size()`), the denominator
    /// of every compression-ratio computation in this workspace.
    pub fn size_in_bytes(&self) -> usize {
        self.num_elements() * self.dtype().size()
    }

    /// Typed view as `f32`; errors for other dtypes.
    pub fn as_f32(&self) -> Result<&[f32]> {
        match &self.storage {
            Storage::F32(v) => Ok(v),
            other => Err(Error::UnsupportedData(format!(
                "expected f32 buffer, found {}",
                dtype_of(other).name()
            ))),
        }
    }

    /// Typed view as `f64`; errors for other dtypes.
    pub fn as_f64(&self) -> Result<&[f64]> {
        match &self.storage {
            Storage::F64(v) => Ok(v),
            other => Err(Error::UnsupportedData(format!(
                "expected f64 buffer, found {}",
                dtype_of(other).name()
            ))),
        }
    }

    /// Typed view as bytes; errors for other dtypes.
    pub fn as_u8(&self) -> Result<&[u8]> {
        match &self.storage {
            Storage::U8(v) => Ok(v),
            other => Err(Error::UnsupportedData(format!(
                "expected u8 buffer, found {}",
                dtype_of(other).name()
            ))),
        }
    }

    /// Every element widened to `f64`, in storage order.
    ///
    /// Allocates; use the typed views in hot paths. Prediction metrics use
    /// this for dtype-generic feature extraction.
    pub fn to_f64_vec(&self) -> Vec<f64> {
        match &self.storage {
            Storage::F32(v) => v.iter().map(|&x| x as f64).collect(),
            Storage::F64(v) => v.clone(),
            Storage::I32(v) => v.iter().map(|&x| x as f64).collect(),
            Storage::I64(v) => v.iter().map(|&x| x as f64).collect(),
            Storage::U8(v) => v.iter().map(|&x| x as f64).collect(),
        }
    }

    /// Raw little-endian byte image of the buffer (for file I/O).
    pub fn to_le_bytes(&self) -> Vec<u8> {
        match &self.storage {
            Storage::F32(v) => v.iter().flat_map(|x| x.to_le_bytes()).collect(),
            Storage::F64(v) => v.iter().flat_map(|x| x.to_le_bytes()).collect(),
            Storage::I32(v) => v.iter().flat_map(|x| x.to_le_bytes()).collect(),
            Storage::I64(v) => v.iter().flat_map(|x| x.to_le_bytes()).collect(),
            Storage::U8(v) => v.clone(),
        }
    }

    /// Rebuild a buffer from the little-endian image written by
    /// [`Data::to_le_bytes`].
    pub fn from_le_bytes(dtype: Dtype, dims: Vec<usize>, bytes: &[u8]) -> Result<Data> {
        let n: usize = dims.iter().product();
        if bytes.len() != n * dtype.size() {
            return Err(Error::UnsupportedData(format!(
                "byte length {} does not match {} elements of {}",
                bytes.len(),
                n,
                dtype.name()
            )));
        }
        let storage = match dtype {
            Dtype::F32 => Storage::F32(
                bytes
                    .chunks_exact(4)
                    .map(|c| f32::from_le_bytes(c.try_into().unwrap()))
                    .collect(),
            ),
            Dtype::F64 => Storage::F64(
                bytes
                    .chunks_exact(8)
                    .map(|c| f64::from_le_bytes(c.try_into().unwrap()))
                    .collect(),
            ),
            Dtype::I32 => Storage::I32(
                bytes
                    .chunks_exact(4)
                    .map(|c| i32::from_le_bytes(c.try_into().unwrap()))
                    .collect(),
            ),
            Dtype::I64 => Storage::I64(
                bytes
                    .chunks_exact(8)
                    .map(|c| i64::from_le_bytes(c.try_into().unwrap()))
                    .collect(),
            ),
            Dtype::U8 => Storage::U8(bytes.to_vec()),
        };
        Ok(Data { dims, storage })
    }

    /// Extract the hyper-rectangle starting at `origin` with shape `shape`.
    ///
    /// Both are in the same fastest-first order as [`Data::dims`]. Used by
    /// sampling-based estimators (Tao 2019, SECRE) to pull trial blocks.
    pub fn slice_block(&self, origin: &[usize], shape: &[usize]) -> Result<Data> {
        if origin.len() != self.dims.len() || shape.len() != self.dims.len() {
            return Err(Error::UnsupportedData(
                "origin/shape rank does not match data rank".into(),
            ));
        }
        for d in 0..self.dims.len() {
            if origin[d] + shape[d] > self.dims[d] {
                return Err(Error::UnsupportedData(format!(
                    "block exceeds bounds in dim {d}: {}+{} > {}",
                    origin[d], shape[d], self.dims[d]
                )));
            }
        }
        let n: usize = shape.iter().product();
        let mut indices = Vec::with_capacity(n);
        let mut coord = vec![0usize; shape.len()];
        // strides of the source array, fastest dimension first
        let mut strides = vec![1usize; self.dims.len()];
        for d in 1..self.dims.len() {
            strides[d] = strides[d - 1] * self.dims[d - 1];
        }
        'outer: loop {
            let mut idx = 0usize;
            for d in 0..shape.len() {
                idx += (origin[d] + coord[d]) * strides[d];
            }
            indices.push(idx);
            // odometer increment
            for d in 0..shape.len() {
                coord[d] += 1;
                if coord[d] < shape[d] {
                    continue 'outer;
                }
                coord[d] = 0;
            }
            break;
        }
        let storage = match &self.storage {
            Storage::F32(v) => Storage::F32(indices.iter().map(|&i| v[i]).collect()),
            Storage::F64(v) => Storage::F64(indices.iter().map(|&i| v[i]).collect()),
            Storage::I32(v) => Storage::I32(indices.iter().map(|&i| v[i]).collect()),
            Storage::I64(v) => Storage::I64(indices.iter().map(|&i| v[i]).collect()),
            Storage::U8(v) => Storage::U8(indices.iter().map(|&i| v[i]).collect()),
        };
        Ok(Data {
            dims: shape.to_vec(),
            storage,
        })
    }
}

fn dtype_of(s: &Storage) -> Dtype {
    match s {
        Storage::F32(_) => Dtype::F32,
        Storage::F64(_) => Dtype::F64,
        Storage::I32(_) => Dtype::I32,
        Storage::I64(_) => Dtype::I64,
        Storage::U8(_) => Dtype::U8,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn size_accounting() {
        let d = Data::from_f32(vec![4, 3], (0..12).map(|i| i as f32).collect());
        assert_eq!(d.num_elements(), 12);
        assert_eq!(d.size_in_bytes(), 48);
        assert_eq!(d.dtype(), Dtype::F32);
    }

    #[test]
    #[should_panic(expected = "dims do not match")]
    fn mismatched_dims_panic() {
        let _ = Data::from_f32(vec![5], vec![1.0, 2.0]);
    }

    #[test]
    fn typed_views() {
        let d = Data::from_f64(vec![2], vec![1.0, 2.0]);
        assert_eq!(d.as_f64().unwrap(), &[1.0, 2.0]);
        assert!(d.as_f32().is_err());
    }

    #[test]
    fn le_bytes_round_trip_all_types() {
        for dt in [Dtype::F32, Dtype::F64, Dtype::I32, Dtype::I64, Dtype::U8] {
            let src = Data::zeros(dt, vec![3, 2]);
            let bytes = src.to_le_bytes();
            let back = Data::from_le_bytes(dt, vec![3, 2], &bytes).unwrap();
            assert_eq!(src, back, "{dt:?}");
        }
    }

    #[test]
    fn le_bytes_rejects_bad_length() {
        assert!(Data::from_le_bytes(Dtype::F32, vec![2], &[0u8; 7]).is_err());
    }

    #[test]
    fn f32_le_round_trip_values() {
        let src = Data::from_f32(vec![3], vec![1.5, -2.25, 3.75]);
        let back = Data::from_le_bytes(Dtype::F32, vec![3], &src.to_le_bytes()).unwrap();
        assert_eq!(back.as_f32().unwrap(), &[1.5, -2.25, 3.75]);
    }

    #[test]
    fn slice_block_2d() {
        // 4 (fast) x 3 array laid out row-by-row with the fast dim contiguous
        let d = Data::from_f32(vec![4, 3], (0..12).map(|i| i as f32).collect());
        let b = d.slice_block(&[1, 1], &[2, 2]).unwrap();
        assert_eq!(b.dims(), &[2, 2]);
        // element (x=1,y=1) = 1 + 1*4 = 5; (2,1)=6; (1,2)=9; (2,2)=10
        assert_eq!(b.as_f32().unwrap(), &[5.0, 6.0, 9.0, 10.0]);
    }

    #[test]
    fn slice_block_full_is_identity() {
        let d = Data::from_f32(vec![2, 2, 2], (0..8).map(|i| i as f32).collect());
        let b = d.slice_block(&[0, 0, 0], &[2, 2, 2]).unwrap();
        assert_eq!(b, d);
    }

    #[test]
    fn slice_block_out_of_bounds() {
        let d = Data::from_f32(vec![4], (0..4).map(|i| i as f32).collect());
        assert!(d.slice_block(&[3], &[2]).is_err());
        assert!(d.slice_block(&[0, 0], &[1, 1]).is_err());
    }

    #[test]
    fn dtype_parse_round_trip() {
        for dt in [Dtype::F32, Dtype::F64, Dtype::I32, Dtype::I64, Dtype::U8] {
            assert_eq!(Dtype::parse(dt.name()).unwrap(), dt);
        }
        assert!(Dtype::parse("f16").is_err());
    }

    #[test]
    fn to_f64_widens() {
        let d = Data::from_i32(vec![3], vec![-1, 0, 7]);
        assert_eq!(d.to_f64_vec(), vec![-1.0, 0.0, 7.0]);
    }
}
