//! Small timing utilities shared by the metrics plugins, the prediction
//! framework's stage timers, and the benchmark harness.

use std::time::Instant;

/// Run `f`, returning its result and the elapsed wall-clock milliseconds.
pub fn time_ms<R>(f: impl FnOnce() -> R) -> (R, f64) {
    let t0 = Instant::now();
    let r = f();
    (r, t0.elapsed().as_secs_f64() * 1e3)
}

/// Streaming mean / standard-deviation accumulator (Welford's algorithm).
///
/// Table 2 of the paper reports every stage time as `mean ± sd`; this is the
/// accumulator behind those cells. Welford's update is numerically stable for
/// long runs where naive sum-of-squares cancels.
#[derive(Debug, Clone, Default)]
pub struct MeanStd {
    n: u64,
    mean: f64,
    m2: f64,
}

impl MeanStd {
    /// Empty accumulator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add one observation.
    pub fn push(&mut self, x: f64) {
        self.n += 1;
        let delta = x - self.mean;
        self.mean += delta / self.n as f64;
        self.m2 += delta * (x - self.mean);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Sample mean (0 when empty).
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// Sample standard deviation (n-1 denominator; 0 for fewer than two
    /// observations).
    pub fn std(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            (self.m2 / (self.n - 1) as f64).sqrt()
        }
    }

    /// Merge another accumulator into this one (parallel reduction).
    pub fn merge(&mut self, other: &MeanStd) {
        if other.n == 0 {
            return;
        }
        if self.n == 0 {
            *self = other.clone();
            return;
        }
        let n1 = self.n as f64;
        let n2 = other.n as f64;
        let delta = other.mean - self.mean;
        let total = n1 + n2;
        self.mean += delta * n2 / total;
        self.m2 += other.m2 + delta * delta * n1 * n2 / total;
        self.n += other.n;
    }

    /// `"mean ± sd"` with the given precision, as printed in Table 2.
    pub fn display(&self, precision: usize) -> String {
        format!("{:.p$} ± {:.p$}", self.mean(), self.std(), p = precision)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_std_matches_closed_form() {
        let mut acc = MeanStd::new();
        for x in [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0] {
            acc.push(x);
        }
        assert!((acc.mean() - 5.0).abs() < 1e-12);
        // sample sd of this classic dataset is sqrt(32/7)
        assert!((acc.std() - (32.0f64 / 7.0).sqrt()).abs() < 1e-12);
        assert_eq!(acc.count(), 8);
    }

    #[test]
    fn fewer_than_two_observations_have_zero_std() {
        let mut acc = MeanStd::new();
        assert_eq!(acc.std(), 0.0);
        acc.push(3.0);
        assert_eq!(acc.std(), 0.0);
        assert_eq!(acc.mean(), 3.0);
    }

    #[test]
    fn merge_equals_sequential() {
        let xs: Vec<f64> = (0..50).map(|i| (i as f64).sin() * 10.0).collect();
        let mut seq = MeanStd::new();
        for &x in &xs {
            seq.push(x);
        }
        let mut a = MeanStd::new();
        let mut b = MeanStd::new();
        for &x in &xs[..20] {
            a.push(x);
        }
        for &x in &xs[20..] {
            b.push(x);
        }
        a.merge(&b);
        assert!((a.mean() - seq.mean()).abs() < 1e-9);
        assert!((a.std() - seq.std()).abs() < 1e-9);
        assert_eq!(a.count(), seq.count());
    }

    #[test]
    fn merge_with_empty_is_identity() {
        let mut a = MeanStd::new();
        a.push(1.0);
        a.push(2.0);
        let before = (a.mean(), a.std(), a.count());
        a.merge(&MeanStd::new());
        assert_eq!((a.mean(), a.std(), a.count()), before);

        let mut empty = MeanStd::new();
        empty.merge(&a);
        assert_eq!((empty.mean(), empty.std(), empty.count()), before);
    }

    #[test]
    fn time_ms_measures() {
        let ((), ms) = time_ms(|| std::thread::sleep(std::time::Duration::from_millis(5)));
        assert!(ms >= 4.0);
    }

    #[test]
    fn display_formats() {
        let mut acc = MeanStd::new();
        acc.push(1.0);
        acc.push(3.0);
        assert_eq!(acc.display(2), "2.00 ± 1.41");
    }
}
