//! Typed option values, mirroring `pressio_option` from LibPressio.

use serde::{Deserialize, Serialize};
use std::fmt;

/// A dynamically-typed configuration value.
///
/// LibPressio options hold one of a small set of types; plugins introspect and
/// cast them. `Opaque` mirrors LibPressio's `void*` entries (CUDA streams,
/// `MPI_Comm`, ...): it carries only a label, participates in equality by
/// label, and is deliberately **excluded from option hashing** (see
/// [`crate::hash::hash_options`]) exactly as the paper's Section 4.3 footnote
/// requires.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Value {
    /// Boolean flag.
    Bool(bool),
    /// Signed 64-bit integer (covers i8..=i64 settings).
    I64(i64),
    /// Unsigned 64-bit integer (sizes, counts, seeds).
    U64(u64),
    /// Double-precision float (error bounds, rates, tolerances).
    F64(f64),
    /// String setting (mode names, paths, patterns).
    Str(String),
    /// Vector of doubles (feature vectors, per-dimension settings).
    F64Vec(Vec<f64>),
    /// Vector of unsigned integers (shapes, block sizes).
    U64Vec(Vec<u64>),
    /// Vector of strings (field lists, metric id lists).
    StrVec(Vec<String>),
    /// Raw bytes (serialized predictor state).
    Bytes(Vec<u8>),
    /// Label-only stand-in for non-serializable runtime handles.
    Opaque(String),
}

impl Value {
    /// Static name of the stored type, used in error messages.
    pub fn type_name(&self) -> &'static str {
        match self {
            Value::Bool(_) => "bool",
            Value::I64(_) => "i64",
            Value::U64(_) => "u64",
            Value::F64(_) => "f64",
            Value::Str(_) => "string",
            Value::F64Vec(_) => "f64vec",
            Value::U64Vec(_) => "u64vec",
            Value::StrVec(_) => "strvec",
            Value::Bytes(_) => "bytes",
            Value::Opaque(_) => "opaque",
        }
    }

    /// Lossless-or-widening numeric view as `f64`.
    ///
    /// Integral values convert; strings and aggregates do not. This mirrors
    /// LibPressio's `pressio_option_cast` with *implicit* conversion level.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::F64(v) => Some(*v),
            Value::I64(v) => Some(*v as f64),
            Value::U64(v) => Some(*v as f64),
            Value::Bool(b) => Some(if *b { 1.0 } else { 0.0 }),
            _ => None,
        }
    }

    /// Numeric view as `i64` when the value is integral (or an integral
    /// float).
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::I64(v) => Some(*v),
            Value::U64(v) => i64::try_from(*v).ok(),
            Value::F64(v) if v.fract() == 0.0 && v.abs() < 2f64.powi(63) => Some(*v as i64),
            Value::Bool(b) => Some(*b as i64),
            _ => None,
        }
    }

    /// Numeric view as `u64` when the value is a non-negative integer.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::U64(v) => Some(*v),
            Value::I64(v) => u64::try_from(*v).ok(),
            Value::F64(v) if v.fract() == 0.0 && *v >= 0.0 && *v < 2f64.powi(64) => Some(*v as u64),
            Value::Bool(b) => Some(*b as u64),
            _ => None,
        }
    }

    /// Boolean view; integers are truthy when nonzero.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            Value::I64(v) => Some(*v != 0),
            Value::U64(v) => Some(*v != 0),
            _ => None,
        }
    }

    /// String view (no numeric stringification — that would hide typos in
    /// option names).
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Slice view of an `F64Vec`.
    pub fn as_f64_slice(&self) -> Option<&[f64]> {
        match self {
            Value::F64Vec(v) => Some(v),
            _ => None,
        }
    }

    /// Slice view of a `U64Vec`.
    pub fn as_u64_slice(&self) -> Option<&[u64]> {
        match self {
            Value::U64Vec(v) => Some(v),
            _ => None,
        }
    }

    /// Slice view of a `StrVec`.
    pub fn as_str_slice(&self) -> Option<&[String]> {
        match self {
            Value::StrVec(v) => Some(v),
            _ => None,
        }
    }

    /// Byte view of a `Bytes` value.
    pub fn as_bytes(&self) -> Option<&[u8]> {
        match self {
            Value::Bytes(v) => Some(v),
            _ => None,
        }
    }

    /// Whether this value participates in deterministic option hashing.
    ///
    /// `Opaque` values are skipped, matching LibPressio's exclusion of
    /// `void*` entries from its stable cryptographic hash.
    pub fn is_hashable(&self) -> bool {
        !matches!(self, Value::Opaque(_))
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Bool(b) => write!(f, "{b}"),
            Value::I64(v) => write!(f, "{v}"),
            Value::U64(v) => write!(f, "{v}"),
            Value::F64(v) => write!(f, "{v}"),
            Value::Str(s) => write!(f, "{s}"),
            Value::F64Vec(v) => write!(f, "{v:?}"),
            Value::U64Vec(v) => write!(f, "{v:?}"),
            Value::StrVec(v) => write!(f, "{v:?}"),
            Value::Bytes(v) => write!(f, "<{} bytes>", v.len()),
            Value::Opaque(label) => write!(f, "<opaque:{label}>"),
        }
    }
}

macro_rules! impl_from {
    ($($ty:ty => $variant:ident via $conv:expr),* $(,)?) => {
        $(impl From<$ty> for Value {
            fn from(v: $ty) -> Self {
                #[allow(clippy::redundant_closure_call)]
                Value::$variant(($conv)(v))
            }
        })*
    };
}

impl_from! {
    bool => Bool via |v| v,
    i32 => I64 via |v| v as i64,
    i64 => I64 via |v| v,
    u32 => U64 via |v| v as u64,
    u64 => U64 via |v| v,
    usize => U64 via |v| v as u64,
    f32 => F64 via |v| v as f64,
    f64 => F64 via |v| v,
    String => Str via |v| v,
    Vec<f64> => F64Vec via |v| v,
    Vec<u64> => U64Vec via |v| v,
    Vec<String> => StrVec via |v| v,
    Vec<u8> => Bytes via |v| v,
}

impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::Str(v.to_string())
    }
}

impl From<&[u64]> for Value {
    fn from(v: &[u64]) -> Self {
        Value::U64Vec(v.to_vec())
    }
}

impl From<&[f64]> for Value {
    fn from(v: &[f64]) -> Self {
        Value::F64Vec(v.to_vec())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn numeric_casts_widen() {
        assert_eq!(Value::from(3i32).as_f64(), Some(3.0));
        assert_eq!(Value::from(3u32).as_i64(), Some(3));
        assert_eq!(Value::from(3.0f64).as_u64(), Some(3));
        assert_eq!(Value::from(true).as_f64(), Some(1.0));
    }

    #[test]
    fn non_integral_float_does_not_cast_to_int() {
        assert_eq!(Value::F64(1.5).as_i64(), None);
        assert_eq!(Value::F64(1.5).as_u64(), None);
    }

    #[test]
    fn negative_does_not_cast_to_u64() {
        assert_eq!(Value::I64(-1).as_u64(), None);
        assert_eq!(Value::F64(-1.0).as_u64(), None);
    }

    #[test]
    fn strings_do_not_cast_numerically() {
        assert_eq!(Value::from("3").as_f64(), None);
        assert_eq!(Value::from(3i64).as_str(), None);
    }

    #[test]
    fn opaque_is_not_hashable() {
        assert!(!Value::Opaque("mpi_comm".into()).is_hashable());
        assert!(Value::F64(1.0).is_hashable());
    }

    #[test]
    fn display_round_trips_simple_values() {
        assert_eq!(Value::F64(0.5).to_string(), "0.5");
        assert_eq!(Value::from("abs").to_string(), "abs");
        assert_eq!(Value::Bytes(vec![1, 2, 3]).to_string(), "<3 bytes>");
    }

    #[test]
    fn serde_round_trip() {
        let v = Value::F64Vec(vec![1.0, 2.5]);
        let json = serde_json::to_string(&v).unwrap();
        let back: Value = serde_json::from_str(&json).unwrap();
        assert_eq!(v, back);
    }
}
