//! Fixed-width lane-kernel primitives shared by the hot loops.
//!
//! The codec and feature-extraction kernels in this workspace are written
//! in an explicit lane style: process [`LANES`] elements per iteration
//! over small fixed arrays, with branchless select instead of data-
//! dependent branches, so the autovectorizer can turn each iteration into
//! a handful of SIMD instructions on any target without `std::simd` or
//! nightly features. This module pins the two conventions every such
//! kernel shares:
//!
//! - [`LANES`] is the workspace-wide lane width. It is a *semantic*
//!   constant for reductions, not just a tuning knob: kernels that reduce
//!   floating-point values accumulate into `[f64; LANES]` partial sums
//!   (element `i` goes to lane `i % LANES`) and collapse them with
//!   [`fold`], so their result is deterministic and reproducible by a
//!   plain scalar loop that mirrors the same order.
//! - [`fold`] is the one blessed horizontal reduction: a fixed pairwise
//!   tree, so parity tests can assert *exact* equality between a lane
//!   kernel and its scalar reference.
//!
//! Element-wise kernels (quantization, negabinary, bit-plane moves) have
//! no accumulation order and are bit-identical to their scalar references
//! by construction; only reductions need this discipline.

/// Workspace-wide lane width for the fixed-width kernels.
///
/// Eight `f64` lanes span two AVX2 registers or four NEON registers —
/// wide enough to hide FP latency on every target we build for, small
/// enough that remainder handling stays cheap.
pub const LANES: usize = 8;

/// Collapse per-lane partial sums with a fixed pairwise tree:
/// `((l0+l1)+(l2+l3)) + ((l4+l5)+(l6+l7))`.
///
/// The tree shape is part of the kernel contract — scalar references
/// reproduce lane-kernel results exactly by accumulating into the same
/// lanes and folding through this function.
#[inline]
pub fn fold(acc: [f64; LANES]) -> f64 {
    ((acc[0] + acc[1]) + (acc[2] + acc[3])) + ((acc[4] + acc[5]) + (acc[6] + acc[7]))
}

/// Branchless "keep finite values, zero the rest" select used by the
/// reduction kernels so NaN/inf payloads cannot poison partial sums.
#[inline]
pub fn finite_or_zero(v: f64) -> f64 {
    if v.is_finite() {
        v
    } else {
        0.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fold_is_the_documented_tree() {
        let acc = [1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0, 128.0];
        assert_eq!(fold(acc), 255.0);
        // tree shape: changing association would change this value for
        // catastrophic inputs; spot-check with a cancellation-heavy case
        let acc = [1e16, 1.0, -1e16, 1.0, 1.0, 1.0, 1.0, 1.0];
        assert_eq!(fold(acc), ((1e16 + 1.0) + (-1e16 + 1.0)) + 4.0);
    }

    #[test]
    fn finite_or_zero_masks_non_finite() {
        assert_eq!(finite_or_zero(3.5), 3.5);
        assert_eq!(finite_or_zero(f64::NAN), 0.0);
        assert_eq!(finite_or_zero(f64::INFINITY), 0.0);
        assert_eq!(finite_or_zero(f64::NEG_INFINITY), 0.0);
    }
}
