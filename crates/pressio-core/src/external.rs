//! The external metrics framework (paper §4.2, Figure 3 caption): metrics
//! can be written in *any* language and attached through a subprocess
//! bridge, "at the cost of some overhead".
//!
//! Protocol (line-oriented, stdin/stdout):
//!
//! ```text
//! child stdin:   api=1
//!                stage=begin_compress | end_decompress
//!                dtype=<f32|f64|...>
//!                dims=<d0> <d1> ...
//!                data=<n>            # n whitespace-separated f64 follow
//!                <v0> <v1> ... <vn-1>
//!                done
//! child stdout:  <name>=<f64 value>  # one metric per line
//! ```
//!
//! The child is spawned per hook invocation; results are namespaced as
//! `external:<name>`. Errors (missing binary, bad output, non-zero exit)
//! surface as [`Error::TaskFailed`] so a buggy external metric cannot
//! silently corrupt results — the failure containment the paper's bench
//! needed in practice.

use crate::data::Data;
use crate::error::{Error, Result};
use crate::metrics::{invalidations, MetricsPlugin};
use crate::options::Options;
use std::io::Write;
use std::process::{Command, Stdio};

/// A metrics plugin that shells out to an external program.
pub struct ExternalMetrics {
    command: String,
    args: Vec<String>,
    /// Invalidation class the external metric declares
    /// (`predictors:error_agnostic` by default; set error-dependent when
    /// the program inspects reconstructions).
    invalidation: String,
    results: Options,
}

impl ExternalMetrics {
    /// Bridge to `command` (invoked with `args` plus the protocol on
    /// stdin).
    pub fn new(command: impl Into<String>, args: Vec<String>) -> ExternalMetrics {
        ExternalMetrics {
            command: command.into(),
            args,
            invalidation: invalidations::ERROR_AGNOSTIC.to_string(),
            results: Options::new(),
        }
    }

    /// Declare the metric error-dependent (it will also receive the
    /// decompressed output through `end_decompress`).
    pub fn error_dependent(mut self) -> ExternalMetrics {
        self.invalidation = invalidations::ERROR_DEPENDENT.to_string();
        self
    }

    fn invoke(&self, stage: &str, data: &Data) -> Result<Options> {
        let mut child = Command::new(&self.command)
            .args(&self.args)
            .stdin(Stdio::piped())
            .stdout(Stdio::piped())
            .stderr(Stdio::null())
            .spawn()
            .map_err(|e| Error::TaskFailed(format!("spawn '{}': {e}", self.command)))?;
        {
            let stdin = child
                .stdin
                .as_mut()
                .ok_or_else(|| Error::TaskFailed("no stdin".into()))?;
            let mut payload = String::new();
            payload.push_str("api=1\n");
            payload.push_str(&format!("stage={stage}\n"));
            payload.push_str(&format!("dtype={}\n", data.dtype().name()));
            payload.push_str("dims=");
            for (i, d) in data.dims().iter().enumerate() {
                if i > 0 {
                    payload.push(' ');
                }
                payload.push_str(&d.to_string());
            }
            payload.push('\n');
            let values = data.to_f64_vec();
            payload.push_str(&format!("data={}\n", values.len()));
            for v in &values {
                payload.push_str(&format!("{v} "));
            }
            payload.push_str("\ndone\n");
            stdin
                .write_all(payload.as_bytes())
                .map_err(|e| Error::TaskFailed(format!("write to child: {e}")))?;
        }
        let output = child
            .wait_with_output()
            .map_err(|e| Error::TaskFailed(format!("wait for child: {e}")))?;
        if !output.status.success() {
            return Err(Error::TaskFailed(format!(
                "external metric '{}' exited with {}",
                self.command, output.status
            )));
        }
        let stdout = String::from_utf8_lossy(&output.stdout);
        let mut results = Options::new();
        for line in stdout.lines() {
            let line = line.trim();
            if line.is_empty() {
                continue;
            }
            let Some((name, value)) = line.split_once('=') else {
                return Err(Error::TaskFailed(format!(
                    "external metric produced malformed line '{line}'"
                )));
            };
            let value: f64 = value.trim().parse().map_err(|_| {
                Error::TaskFailed(format!("external metric value not numeric: '{line}'"))
            })?;
            results.set(format!("external:{}", name.trim()), value);
        }
        Ok(results)
    }
}

impl MetricsPlugin for ExternalMetrics {
    fn id(&self) -> &'static str {
        "external"
    }

    fn begin_compress(&mut self, input: &Data) -> Result<()> {
        let r = self.invoke("begin_compress", input)?;
        self.results.merge_from(&r);
        Ok(())
    }

    fn end_decompress(
        &mut self,
        _compressed: &[u8],
        output: Option<&Data>,
        ok: bool,
    ) -> Result<()> {
        if self.invalidation != invalidations::ERROR_DEPENDENT {
            return Ok(());
        }
        let (Some(output), true) = (output, ok) else {
            return Ok(());
        };
        let r = self.invoke("end_decompress", output)?;
        self.results.merge_from(&r);
        Ok(())
    }

    fn results(&self) -> Options {
        self.results.clone()
    }

    fn get_options(&self) -> Options {
        Options::new()
            .with("external:command", self.command.as_str())
            .with("external:args", self.args.clone())
    }

    fn get_configuration(&self) -> Options {
        Options::new().with("predictors:invalidate", vec![self.invalidation.clone()])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Write a tiny POSIX-shell metric program and return its path.
    fn script(name: &str, body: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join("pressio_external_metrics");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join(name);
        std::fs::write(&path, format!("#!/bin/sh\n{body}\n")).unwrap();
        #[cfg(unix)]
        {
            use std::os::unix::fs::PermissionsExt;
            std::fs::set_permissions(&path, std::fs::Permissions::from_mode(0o755)).unwrap();
        }
        path
    }

    #[test]
    fn awk_metric_computes_mean() {
        // an external metric in awk: mean of the data values
        let path = script(
            "mean.sh",
            r#"awk '
                /^data=/ { reading=1; next }
                /^done$/ { reading=0 }
                reading { for (i=1;i<=NF;i++) { s+=$i; n++ } }
                END { if (n>0) printf "mean=%.17g\n", s/n }
            '"#,
        );
        let mut m = ExternalMetrics::new(path.display().to_string(), vec![]);
        let data = Data::from_f32(vec![4], vec![1.0, 2.0, 3.0, 6.0]);
        m.begin_compress(&data).unwrap();
        let r = m.results();
        assert!((r.get_f64("external:mean").unwrap() - 3.0).abs() < 1e-12);
    }

    #[test]
    fn protocol_header_is_visible_to_the_program() {
        // echo back the dims line as a "metric count" to prove the header
        // arrives intact
        let path = script(
            "dims.sh",
            r#"awk '/^dims=/ { sub(/^dims=/, ""); print "rank=" NF }'"#,
        );
        let mut m = ExternalMetrics::new(path.display().to_string(), vec![]);
        let data = Data::from_f32(vec![2, 3, 4], vec![0.0; 24]);
        m.begin_compress(&data).unwrap();
        assert_eq!(m.results().get_f64("external:rank").unwrap(), 3.0);
    }

    #[test]
    fn missing_binary_errors() {
        let mut m = ExternalMetrics::new("/definitely/not/a/binary", vec![]);
        let data = Data::from_f32(vec![1], vec![0.0]);
        assert!(matches!(m.begin_compress(&data), Err(Error::TaskFailed(_))));
    }

    #[test]
    fn malformed_output_errors() {
        let path = script("bad.sh", "echo 'this is not key value'");
        let mut m = ExternalMetrics::new(path.display().to_string(), vec![]);
        let data = Data::from_f32(vec![1], vec![0.0]);
        assert!(m.begin_compress(&data).is_err());
    }

    #[test]
    fn nonzero_exit_errors() {
        let path = script("fail.sh", "cat > /dev/null; exit 3");
        let mut m = ExternalMetrics::new(path.display().to_string(), vec![]);
        let data = Data::from_f32(vec![1], vec![0.0]);
        assert!(m.begin_compress(&data).is_err());
    }

    #[test]
    fn error_dependent_mode_sees_reconstruction() {
        let path = script(
            "max.sh",
            r#"awk '
                /^data=/ { reading=1; next }
                /^done$/ { reading=0 }
                reading { for (i=1;i<=NF;i++) if ($i>m || n==0) { m=$i; n=1 } }
                END { printf "max=%.17g\n", m }
            '"#,
        );
        let mut m = ExternalMetrics::new(path.display().to_string(), vec![]).error_dependent();
        let recon = Data::from_f64(vec![3], vec![1.0, 9.0, 2.0]);
        m.end_decompress(&[], Some(&recon), true).unwrap();
        assert_eq!(m.results().get_f64("external:max").unwrap(), 9.0);
        // agnostic-mode plugin ignores decompress hooks
        let mut agnostic = ExternalMetrics::new("/definitely/not/a/binary".to_string(), vec![]);
        assert!(agnostic.end_decompress(&[], Some(&recon), true).is_ok());
    }
}
