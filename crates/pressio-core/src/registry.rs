//! Generic name → factory registries.
//!
//! LibPressio exposes compressors, metrics, datasets, and prediction schemes
//! through string-keyed registries so applications select plugins by
//! configuration rather than by link-time dependency. This module provides
//! the shared mechanism; each crate registers its plugins into a registry
//! instance owned by the caller (no global mutable state).

use crate::error::{Error, Result};
use std::collections::BTreeMap;

/// A registry mapping plugin names to boxed factory closures.
pub struct Registry<T: ?Sized> {
    kind: &'static str,
    factories: BTreeMap<String, Box<dyn Fn() -> Box<T> + Send + Sync>>,
}

impl<T: ?Sized> Registry<T> {
    /// Create an empty registry; `kind` appears in error messages
    /// (`"compressor"`, `"metric"`, `"scheme"`, ...).
    pub fn new(kind: &'static str) -> Self {
        Registry {
            kind,
            factories: BTreeMap::new(),
        }
    }

    /// Register a factory under `name`, replacing any previous registration.
    pub fn register(
        &mut self,
        name: impl Into<String>,
        factory: impl Fn() -> Box<T> + Send + Sync + 'static,
    ) -> &mut Self {
        self.factories.insert(name.into(), Box::new(factory));
        self
    }

    /// Instantiate the plugin registered under `name`.
    pub fn build(&self, name: &str) -> Result<Box<T>> {
        self.factories
            .get(name)
            .map(|f| f())
            .ok_or_else(|| Error::UnknownPlugin {
                kind: self.kind,
                name: name.to_string(),
            })
    }

    /// Whether `name` is registered.
    pub fn contains(&self, name: &str) -> bool {
        self.factories.contains_key(name)
    }

    /// All registered names, sorted.
    pub fn names(&self) -> Vec<&str> {
        self.factories.keys().map(String::as_str).collect()
    }

    /// Number of registered plugins.
    pub fn len(&self) -> usize {
        self.factories.len()
    }

    /// Whether the registry is empty.
    pub fn is_empty(&self) -> bool {
        self.factories.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    trait Greeter: Send {
        fn greet(&self) -> String;
    }

    struct English;
    impl Greeter for English {
        fn greet(&self) -> String {
            "hello".into()
        }
    }

    #[test]
    fn register_and_build() {
        let mut r: Registry<dyn Greeter> = Registry::new("greeter");
        r.register("en", || Box::new(English));
        assert!(r.contains("en"));
        assert_eq!(r.build("en").unwrap().greet(), "hello");
    }

    #[test]
    fn unknown_plugin_error_names_kind() {
        let r: Registry<dyn Greeter> = Registry::new("greeter");
        let err = match r.build("fr") {
            Err(e) => e,
            Ok(_) => panic!("expected error"),
        };
        assert!(err.to_string().contains("greeter"));
        assert!(err.to_string().contains("fr"));
    }

    #[test]
    fn names_sorted() {
        let mut r: Registry<dyn Greeter> = Registry::new("greeter");
        r.register("zz", || Box::new(English));
        r.register("aa", || Box::new(English));
        assert_eq!(r.names(), vec!["aa", "zz"]);
        assert_eq!(r.len(), 2);
    }

    #[test]
    fn reregistration_replaces() {
        struct Loud;
        impl Greeter for Loud {
            fn greet(&self) -> String {
                "HELLO".into()
            }
        }
        let mut r: Registry<dyn Greeter> = Registry::new("greeter");
        r.register("en", || Box::new(English));
        r.register("en", || Box::new(Loud));
        assert_eq!(r.build("en").unwrap().greet(), "HELLO");
        assert_eq!(r.len(), 1);
    }
}
