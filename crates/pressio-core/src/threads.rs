//! Thread-count resolution and sequential-fallback parallel helpers.
//!
//! One knob controls intra-task parallelism everywhere: the
//! `PRESSIO_THREADS` environment variable, the process-wide override set
//! with [`set_global_threads`] (the CLI `--threads` flag), or a
//! per-instance `pressio:nthreads` option on a compressor. Resolution
//! order is instance option → global override → `PRESSIO_THREADS` →
//! `available_parallelism()`. A resolved count of `1` forces the plain
//! sequential code path (no pool involvement at all), which is also the
//! reference behaviour the byte-identical-output guarantee is pinned
//! against.
//!
//! The helpers here never change *what* is computed — chunk boundaries
//! are fixed by the caller, results come back in order — only whether the
//! chunks run on pool threads.

use std::sync::atomic::{AtomicUsize, Ordering};

/// Process-wide thread-count override (0 = unset).
static GLOBAL_THREADS: AtomicUsize = AtomicUsize::new(0);

/// Set the process-wide thread count (the CLI `--threads` flag). `0`
/// clears the override.
pub fn set_global_threads(n: usize) {
    GLOBAL_THREADS.store(n, Ordering::Relaxed);
}

/// The machine's available parallelism (≥ 1).
pub fn available() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Resolve the effective thread count: `instance` option if set, else the
/// [`set_global_threads`] override, else `PRESSIO_THREADS`, else
/// [`available`]. Always ≥ 1.
pub fn resolve(instance: Option<usize>) -> usize {
    if let Some(n) = instance {
        return n.max(1);
    }
    let global = GLOBAL_THREADS.load(Ordering::Relaxed);
    if global > 0 {
        return global;
    }
    if let Ok(s) = std::env::var("PRESSIO_THREADS") {
        if let Ok(n) = s.trim().parse::<usize>() {
            if n > 0 {
                return n;
            }
        }
    }
    available()
}

/// Map `f` over indices `0..n`, in parallel when `nthreads > 1`, returning
/// results in index order. With `nthreads <= 1` this is a plain sequential
/// loop — identical to pre-parallelism behaviour.
pub fn par_map_indexed<R, F>(nthreads: usize, n: usize, f: F) -> Vec<R>
where
    R: Send,
    F: Fn(usize) -> R + Sync,
{
    if nthreads <= 1 || n <= 1 {
        (0..n).map(f).collect()
    } else {
        rayon::par_map(n, f)
    }
}

/// Map `f` over `items.chunks(chunk_len)`, in parallel when
/// `nthreads > 1`, returning per-chunk results in chunk order. The chunk
/// boundaries are identical in both modes, so callers that splice the
/// results byte-concatenate to the same stream either way.
pub fn par_chunks<T, R, F>(nthreads: usize, items: &[T], chunk_len: usize, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &[T]) -> R + Sync,
{
    let chunk_len = chunk_len.max(1);
    if nthreads <= 1 || items.len() <= chunk_len {
        items
            .chunks(chunk_len)
            .enumerate()
            .map(|(i, c)| f(i, c))
            .collect()
    } else {
        rayon::par_chunks(items, chunk_len, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn resolve_prefers_instance() {
        assert_eq!(resolve(Some(3)), 3);
        assert_eq!(resolve(Some(0)), 1); // clamped
    }

    #[test]
    fn global_override_round_trips() {
        set_global_threads(5);
        assert_eq!(resolve(None), 5);
        set_global_threads(0);
    }

    #[test]
    fn par_map_indexed_matches_sequential() {
        let seq = par_map_indexed(1, 100, |i| i * 3);
        let par = par_map_indexed(4, 100, |i| i * 3);
        assert_eq!(seq, par);
    }

    #[test]
    fn par_chunks_boundaries_are_thread_independent() {
        let items: Vec<u32> = (0..103).collect();
        let seq = par_chunks(1, &items, 10, |i, c| (i, c.to_vec()));
        let par = par_chunks(7, &items, 10, |i, c| (i, c.to_vec()));
        assert_eq!(seq, par);
        assert_eq!(seq.len(), 11);
    }
}
