//! Metrics plugins — the hook API of Figure 3, plus the built-in metrics
//! (`time`, `size`, `error_stat`) that ship with LibPressio and that the
//! prediction framework builds on.

use crate::data::Data;
use crate::error::Result;
use crate::options::Options;
use std::time::Instant;

/// Special invalidation keys recognized by the prediction framework
/// (paper §4.2). A metric lists, in its configuration under
/// `predictors:invalidate`, either concrete setting names
/// (e.g. `"sz3:predictor"`) or one of these classes.
pub mod invalidations {
    /// The metric's value changes when any error-affecting setting changes.
    pub const ERROR_DEPENDENT: &str = "predictors:error_dependent";
    /// The metric depends only on the data, never on compressor settings.
    pub const ERROR_AGNOSTIC: &str = "predictors:error_agnostic";
    /// The metric depends on runtime factors (thread counts, machine load).
    pub const RUNTIME: &str = "predictors:runtime";
    /// The metric varies between runs with identical inputs (randomized
    /// algorithms); callers may want replicates.
    pub const NONDETERMINISTIC: &str = "predictors:nondeterministic";
    /// Pseudo-key used by callers to request training-only metrics; never
    /// listed by a metric itself (paper §4.2 footnote 2).
    pub const TRAINING: &str = "predictors:training";
}

/// A metrics plugin observing compressor activity through hooks.
///
/// Rust rendering of the C++ API in Figure 3: error-*agnostic* metrics
/// typically implement only [`MetricsPlugin::begin_compress`] (they see the
/// uncompressed input); error-*dependent* metrics also implement
/// [`MetricsPlugin::end_decompress`] to compare input and output. Results are
/// returned as an [`Options`] structure from [`MetricsPlugin::results`].
pub trait MetricsPlugin: Send {
    /// Stable identifier used to namespace result keys.
    fn id(&self) -> &'static str;

    /// Called with the uncompressed input before compression begins.
    fn begin_compress(&mut self, _input: &Data) -> Result<()> {
        Ok(())
    }

    /// Called after compression with the produced stream (empty on failure).
    fn end_compress(&mut self, _input: &Data, _compressed: &[u8], _ok: bool) -> Result<()> {
        Ok(())
    }

    /// Called with the compressed stream before decompression begins.
    fn begin_decompress(&mut self, _compressed: &[u8]) -> Result<()> {
        Ok(())
    }

    /// Called after decompression with the reconstructed buffer.
    fn end_decompress(
        &mut self,
        _compressed: &[u8],
        _output: Option<&Data>,
        _ok: bool,
    ) -> Result<()> {
        Ok(())
    }

    /// Collected results so far, namespaced `"{id}:{name}"`.
    fn results(&self) -> Options;

    /// Apply settings; default accepts and ignores everything.
    fn set_options(&mut self, _opts: &Options) -> Result<()> {
        Ok(())
    }

    /// Current settings.
    fn get_options(&self) -> Options {
        Options::new()
    }

    /// Static metadata, including the `predictors:invalidate` list.
    fn get_configuration(&self) -> Options {
        Options::new()
    }
}

/// Wall-clock timing of compress/decompress calls (`time:*`).
#[derive(Default)]
pub struct TimeMetrics {
    compress_start: Option<Instant>,
    decompress_start: Option<Instant>,
    compress_ms: Option<f64>,
    decompress_ms: Option<f64>,
}

impl TimeMetrics {
    /// Fresh, with no observations.
    pub fn new() -> Self {
        Self::default()
    }
}

impl MetricsPlugin for TimeMetrics {
    fn id(&self) -> &'static str {
        "time"
    }

    fn begin_compress(&mut self, _input: &Data) -> Result<()> {
        self.compress_start = Some(Instant::now());
        Ok(())
    }

    fn end_compress(&mut self, _input: &Data, _compressed: &[u8], _ok: bool) -> Result<()> {
        if let Some(t0) = self.compress_start.take() {
            self.compress_ms = Some(t0.elapsed().as_secs_f64() * 1e3);
        }
        Ok(())
    }

    fn begin_decompress(&mut self, _compressed: &[u8]) -> Result<()> {
        self.decompress_start = Some(Instant::now());
        Ok(())
    }

    fn end_decompress(
        &mut self,
        _compressed: &[u8],
        _output: Option<&Data>,
        _ok: bool,
    ) -> Result<()> {
        if let Some(t0) = self.decompress_start.take() {
            self.decompress_ms = Some(t0.elapsed().as_secs_f64() * 1e3);
        }
        Ok(())
    }

    fn results(&self) -> Options {
        let mut o = Options::new();
        if let Some(ms) = self.compress_ms {
            o.set("time:compress_ms", ms);
        }
        if let Some(ms) = self.decompress_ms {
            o.set("time:decompress_ms", ms);
        }
        o
    }

    fn get_configuration(&self) -> Options {
        Options::new().with(
            "predictors:invalidate",
            vec![
                invalidations::RUNTIME.to_string(),
                invalidations::NONDETERMINISTIC.to_string(),
            ],
        )
    }
}

/// Size accounting: uncompressed/compressed bytes, compression ratio,
/// bit rate (`size:*`).
#[derive(Default)]
pub struct SizeMetrics {
    uncompressed: Option<u64>,
    compressed: Option<u64>,
    num_elements: Option<u64>,
}

impl SizeMetrics {
    /// Fresh, with no observations.
    pub fn new() -> Self {
        Self::default()
    }
}

impl MetricsPlugin for SizeMetrics {
    fn id(&self) -> &'static str {
        "size"
    }

    fn end_compress(&mut self, input: &Data, compressed: &[u8], ok: bool) -> Result<()> {
        if ok {
            self.uncompressed = Some(input.size_in_bytes() as u64);
            self.compressed = Some(compressed.len() as u64);
            self.num_elements = Some(input.num_elements() as u64);
        }
        Ok(())
    }

    fn results(&self) -> Options {
        let mut o = Options::new();
        if let (Some(u), Some(c), Some(n)) = (self.uncompressed, self.compressed, self.num_elements)
        {
            o.set("size:uncompressed_size", u);
            o.set("size:compressed_size", c);
            if c > 0 {
                o.set("size:compression_ratio", u as f64 / c as f64);
            }
            if n > 0 {
                o.set("size:bit_rate", (c as f64 * 8.0) / n as f64);
            }
        }
        o
    }

    fn get_configuration(&self) -> Options {
        Options::new().with(
            "predictors:invalidate",
            vec![invalidations::ERROR_DEPENDENT.to_string()],
        )
    }
}

/// Pointwise reconstruction-error statistics (`error_stat:*`): max abs error,
/// MSE, RMSE, PSNR, value range. The paper notes this metric mixes error-
/// dependent results with error-agnostic ones (the input's value range), so
/// its configuration lists both classes keyed per result.
#[derive(Default)]
pub struct ErrorStatMetrics {
    input: Option<Vec<f64>>,
    results: Options,
}

impl ErrorStatMetrics {
    /// Fresh, with no observations.
    pub fn new() -> Self {
        Self::default()
    }
}

impl MetricsPlugin for ErrorStatMetrics {
    fn id(&self) -> &'static str {
        "error_stat"
    }

    fn begin_compress(&mut self, input: &Data) -> Result<()> {
        let vals = input.to_f64_vec();
        let (mut lo, mut hi) = (f64::INFINITY, f64::NEG_INFINITY);
        for &v in &vals {
            lo = lo.min(v);
            hi = hi.max(v);
        }
        self.results.set("error_stat:value_min", lo);
        self.results.set("error_stat:value_max", hi);
        self.results.set("error_stat:value_range", hi - lo);
        self.input = Some(vals);
        Ok(())
    }

    fn end_decompress(
        &mut self,
        _compressed: &[u8],
        output: Option<&Data>,
        ok: bool,
    ) -> Result<()> {
        let (Some(input), Some(output), true) = (self.input.as_ref(), output, ok) else {
            return Ok(());
        };
        let out = output.to_f64_vec();
        if out.len() != input.len() {
            return Ok(());
        }
        let n = input.len().max(1) as f64;
        let mut max_abs = 0.0f64;
        let mut sse = 0.0f64;
        for (a, b) in input.iter().zip(&out) {
            let d = (a - b).abs();
            max_abs = max_abs.max(d);
            sse += d * d;
        }
        let mse = sse / n;
        let range = self
            .results
            .get_f64("error_stat:value_range")
            .unwrap_or(0.0);
        self.results.set("error_stat:max_error", max_abs);
        self.results.set("error_stat:mse", mse);
        self.results.set("error_stat:rmse", mse.sqrt());
        if mse > 0.0 && range > 0.0 {
            self.results
                .set("error_stat:psnr", 20.0 * (range / mse.sqrt()).log10());
        }
        Ok(())
    }

    fn results(&self) -> Options {
        self.results.clone()
    }

    fn get_configuration(&self) -> Options {
        // The mixed-class listing the paper describes for error_stat:
        // range statistics are error-agnostic; the error statistics are
        // error-dependent.
        Options::new()
            .with(
                "predictors:error_agnostic",
                vec![
                    "error_stat:value_min".to_string(),
                    "error_stat:value_max".to_string(),
                    "error_stat:value_range".to_string(),
                ],
            )
            .with(
                "predictors:error_dependent",
                vec![
                    "error_stat:max_error".to_string(),
                    "error_stat:mse".to_string(),
                    "error_stat:rmse".to_string(),
                    "error_stat:psnr".to_string(),
                ],
            )
            .with(
                "predictors:invalidate",
                vec![invalidations::ERROR_DEPENDENT.to_string()],
            )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn size_metrics_compute_ratio() {
        let mut m = SizeMetrics::new();
        let data = Data::from_f32(vec![8], vec![0.0; 8]); // 32 bytes
        m.end_compress(&data, &[0u8; 8], true).unwrap();
        let r = m.results();
        assert_eq!(r.get_u64("size:uncompressed_size").unwrap(), 32);
        assert_eq!(r.get_u64("size:compressed_size").unwrap(), 8);
        assert_eq!(r.get_f64("size:compression_ratio").unwrap(), 4.0);
        assert_eq!(r.get_f64("size:bit_rate").unwrap(), 8.0);
    }

    #[test]
    fn size_metrics_skip_failed_compress() {
        let mut m = SizeMetrics::new();
        let data = Data::from_f32(vec![2], vec![0.0; 2]);
        m.end_compress(&data, &[], false).unwrap();
        assert!(m.results().is_empty());
    }

    #[test]
    fn error_stat_range_then_errors() {
        let mut m = ErrorStatMetrics::new();
        let input = Data::from_f64(vec![4], vec![0.0, 1.0, 2.0, 3.0]);
        m.begin_compress(&input).unwrap();
        let r = m.results();
        assert_eq!(r.get_f64("error_stat:value_range").unwrap(), 3.0);

        let output = Data::from_f64(vec![4], vec![0.1, 1.0, 2.0, 2.9]);
        m.end_decompress(&[], Some(&output), true).unwrap();
        let r = m.results();
        let max_err = r.get_f64("error_stat:max_error").unwrap();
        assert!((max_err - 0.1).abs() < 1e-12);
        assert!(r.get_f64("error_stat:psnr").unwrap() > 0.0);
    }

    #[test]
    fn error_stat_exact_reconstruction_has_zero_error() {
        let mut m = ErrorStatMetrics::new();
        let input = Data::from_f64(vec![3], vec![5.0, 6.0, 7.0]);
        m.begin_compress(&input).unwrap();
        m.end_decompress(&[], Some(&input.clone()), true).unwrap();
        let r = m.results();
        assert_eq!(r.get_f64("error_stat:max_error").unwrap(), 0.0);
        assert_eq!(r.get_f64("error_stat:mse").unwrap(), 0.0);
        // psnr undefined (infinite) for exact reconstruction: key absent
        assert!(r.get_f64_opt("error_stat:psnr").unwrap().is_none());
    }

    #[test]
    fn time_metrics_report_positive_durations() {
        let mut m = TimeMetrics::new();
        let data = Data::from_f32(vec![1], vec![0.0]);
        m.begin_compress(&data).unwrap();
        std::thread::sleep(std::time::Duration::from_millis(2));
        m.end_compress(&data, &[], true).unwrap();
        let r = m.results();
        assert!(r.get_f64("time:compress_ms").unwrap() >= 1.0);
    }

    #[test]
    fn invalidation_metadata_present() {
        let cfg = SizeMetrics::new().get_configuration();
        let inv = cfg.get_str_slice("predictors:invalidate").unwrap();
        assert!(inv.contains(&invalidations::ERROR_DEPENDENT.to_string()));
    }
}
