//! Unified error type for the pressio crates.

use std::fmt;

/// Errors produced by compressors, metrics, datasets, and predictors.
///
/// The C LibPressio library reports errors through per-object error codes and
/// message strings; in Rust we use a single enum that implements
/// [`std::error::Error`] so errors compose with `?`.
#[derive(Debug, Clone, PartialEq)]
pub enum Error {
    /// An option was requested with the wrong type (e.g. asking for an `f64`
    /// from a string-valued entry).
    TypeMismatch {
        /// The option key involved.
        key: String,
        /// The type that was requested.
        expected: &'static str,
        /// The type actually stored.
        found: &'static str,
    },
    /// A required option was missing from the option structure.
    MissingOption(String),
    /// An option value was present and well-typed, but outside the domain the
    /// consumer accepts (e.g. a negative error bound).
    InvalidValue {
        /// The option key involved.
        key: String,
        /// Why the value was rejected.
        reason: String,
    },
    /// The requested plugin does not exist in the registry.
    UnknownPlugin {
        /// Registry kind ("compressor", "metric", "scheme", ...).
        kind: &'static str,
        /// The name that failed to resolve.
        name: String,
    },
    /// The input data had an unsupported type or shape.
    UnsupportedData(String),
    /// A compressed stream was malformed or truncated.
    CorruptStream(String),
    /// An I/O failure (message only, to keep the error `Clone`able).
    Io(String),
    /// The operation is unsupported by this plugin in its current
    /// configuration (e.g. the Jin scheme asked to model ZFP).
    Unsupported(String),
    /// A predictor was asked to predict before being fit.
    NotFitted(String),
    /// A numerical routine failed to converge or produced a degenerate
    /// result (singular matrix, empty sample, ...).
    Numerical(String),
    /// Serialization or deserialization of plugin state failed.
    Serialization(String),
    /// A worker task failed; carries the underlying message.
    TaskFailed(String),
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::TypeMismatch {
                key,
                expected,
                found,
            } => write!(
                f,
                "option '{key}': type mismatch (expected {expected}, found {found})"
            ),
            Error::MissingOption(key) => write!(f, "missing required option '{key}'"),
            Error::InvalidValue { key, reason } => {
                write!(f, "invalid value for option '{key}': {reason}")
            }
            Error::UnknownPlugin { kind, name } => {
                write!(f, "unknown {kind} plugin '{name}'")
            }
            Error::UnsupportedData(msg) => write!(f, "unsupported data: {msg}"),
            Error::CorruptStream(msg) => write!(f, "corrupt compressed stream: {msg}"),
            Error::Io(msg) => write!(f, "io error: {msg}"),
            Error::Unsupported(msg) => write!(f, "unsupported operation: {msg}"),
            Error::NotFitted(msg) => write!(f, "predictor not fitted: {msg}"),
            Error::Numerical(msg) => write!(f, "numerical error: {msg}"),
            Error::Serialization(msg) => write!(f, "serialization error: {msg}"),
            Error::TaskFailed(msg) => write!(f, "task failed: {msg}"),
        }
    }
}

impl std::error::Error for Error {}

impl From<std::io::Error> for Error {
    fn from(e: std::io::Error) -> Self {
        Error::Io(e.to_string())
    }
}

/// Convenience alias used throughout the workspace.
pub type Result<T> = std::result::Result<T, Error>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_informative() {
        let e = Error::TypeMismatch {
            key: "pressio:abs".into(),
            expected: "f64",
            found: "string",
        };
        let msg = e.to_string();
        assert!(msg.contains("pressio:abs"));
        assert!(msg.contains("f64"));
        assert!(msg.contains("string"));
    }

    #[test]
    fn io_error_converts() {
        let io = std::io::Error::new(std::io::ErrorKind::NotFound, "nope");
        let e: Error = io.into();
        assert!(matches!(e, Error::Io(_)));
        assert!(e.to_string().contains("nope"));
    }

    #[test]
    fn errors_are_cloneable_and_comparable() {
        let a = Error::MissingOption("x".into());
        let b = a.clone();
        assert_eq!(a, b);
    }
}
