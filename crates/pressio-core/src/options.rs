//! Option structures: ordered string → [`Value`] maps with typed accessors.
//!
//! Mirrors `pressio_options`. Keys are conventionally namespaced
//! (`pressio:abs`, `sz3:predictor`, `predictors:invalidate`, ...). The map is
//! a `BTreeMap` so iteration order is deterministic — a requirement for the
//! stable option hashing that indexes the checkpoint database (paper §4.3).

use crate::error::{Error, Result};
use crate::value::Value;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::fmt;

/// An ordered, typed option map.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct Options {
    entries: BTreeMap<String, Value>,
}

impl Options {
    /// Create an empty option structure.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the structure holds no entries.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Set `key` to `value`, replacing any previous entry.
    pub fn set(&mut self, key: impl Into<String>, value: impl Into<Value>) -> &mut Self {
        self.entries.insert(key.into(), value.into());
        self
    }

    /// Builder-style `set`.
    pub fn with(mut self, key: impl Into<String>, value: impl Into<Value>) -> Self {
        self.set(key, value);
        self
    }

    /// Remove an entry, returning it if present.
    pub fn remove(&mut self, key: &str) -> Option<Value> {
        self.entries.remove(key)
    }

    /// Raw value lookup.
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.entries.get(key)
    }

    /// Whether `key` is present.
    pub fn contains(&self, key: &str) -> bool {
        self.entries.contains_key(key)
    }

    /// Iterate entries in deterministic (sorted-key) order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &Value)> {
        self.entries.iter().map(|(k, v)| (k.as_str(), v))
    }

    /// Iterate the keys in deterministic order.
    pub fn keys(&self) -> impl Iterator<Item = &str> {
        self.entries.keys().map(String::as_str)
    }

    fn typed<'a, T>(
        &'a self,
        key: &str,
        expected: &'static str,
        cast: impl FnOnce(&'a Value) -> Option<T>,
    ) -> Result<T> {
        match self.entries.get(key) {
            None => Err(Error::MissingOption(key.to_string())),
            Some(v) => cast(v).ok_or_else(|| Error::TypeMismatch {
                key: key.to_string(),
                expected,
                found: v.type_name(),
            }),
        }
    }

    /// Required typed getters. Each returns [`Error::MissingOption`] when the
    /// key is absent and [`Error::TypeMismatch`] when it cannot cast.
    pub fn get_f64(&self, key: &str) -> Result<f64> {
        self.typed(key, "f64", Value::as_f64)
    }

    /// See [`Options::get_f64`].
    pub fn get_i64(&self, key: &str) -> Result<i64> {
        self.typed(key, "i64", Value::as_i64)
    }

    /// See [`Options::get_f64`].
    pub fn get_u64(&self, key: &str) -> Result<u64> {
        self.typed(key, "u64", Value::as_u64)
    }

    /// See [`Options::get_f64`].
    pub fn get_usize(&self, key: &str) -> Result<usize> {
        self.get_u64(key).map(|v| v as usize)
    }

    /// See [`Options::get_f64`].
    pub fn get_bool(&self, key: &str) -> Result<bool> {
        self.typed(key, "bool", Value::as_bool)
    }

    /// See [`Options::get_f64`].
    pub fn get_str(&self, key: &str) -> Result<&str> {
        self.typed(key, "string", |v| v.as_str())
    }

    /// See [`Options::get_f64`].
    pub fn get_f64_slice(&self, key: &str) -> Result<&[f64]> {
        self.typed(key, "f64vec", |v| v.as_f64_slice())
    }

    /// See [`Options::get_f64`].
    pub fn get_u64_slice(&self, key: &str) -> Result<&[u64]> {
        self.typed(key, "u64vec", |v| v.as_u64_slice())
    }

    /// See [`Options::get_f64`].
    pub fn get_str_slice(&self, key: &str) -> Result<&[String]> {
        self.typed(key, "strvec", |v| v.as_str_slice())
    }

    /// See [`Options::get_f64`].
    pub fn get_bytes(&self, key: &str) -> Result<&[u8]> {
        self.typed(key, "bytes", |v| v.as_bytes())
    }

    /// Optional typed getter: `Ok(None)` when absent, `Err` on wrong type.
    pub fn get_f64_opt(&self, key: &str) -> Result<Option<f64>> {
        self.opt(key, "f64", Value::as_f64)
    }

    /// See [`Options::get_f64_opt`].
    pub fn get_u64_opt(&self, key: &str) -> Result<Option<u64>> {
        self.opt(key, "u64", Value::as_u64)
    }

    /// See [`Options::get_f64_opt`].
    pub fn get_str_opt(&self, key: &str) -> Result<Option<&str>> {
        self.opt(key, "string", |v| v.as_str())
    }

    /// See [`Options::get_f64_opt`].
    pub fn get_bool_opt(&self, key: &str) -> Result<Option<bool>> {
        self.opt(key, "bool", Value::as_bool)
    }

    fn opt<'a, T>(
        &'a self,
        key: &str,
        expected: &'static str,
        cast: impl FnOnce(&'a Value) -> Option<T>,
    ) -> Result<Option<T>> {
        match self.entries.get(key) {
            None => Ok(None),
            Some(v) => cast(v).map(Some).ok_or_else(|| Error::TypeMismatch {
                key: key.to_string(),
                expected,
                found: v.type_name(),
            }),
        }
    }

    /// Overlay `other` onto `self`: entries in `other` win.
    pub fn merge_from(&mut self, other: &Options) {
        for (k, v) in other.iter() {
            self.entries.insert(k.to_string(), v.clone());
        }
    }

    /// Sub-structure of all entries whose key starts with `prefix`.
    ///
    /// Used to route a combined configuration to the plugin that owns the
    /// namespace (e.g. everything under `sz3:` to the SZ compressor).
    pub fn with_prefix(&self, prefix: &str) -> Options {
        let entries = self
            .entries
            .iter()
            .filter(|(k, _)| k.starts_with(prefix))
            .map(|(k, v)| (k.clone(), v.clone()))
            .collect();
        Options { entries }
    }

    /// Keep only entries whose keys are in `keys` (exact match).
    pub fn extract(&self, keys: &[&str]) -> Options {
        let entries = self
            .entries
            .iter()
            .filter(|(k, _)| keys.contains(&k.as_str()))
            .map(|(k, v)| (k.clone(), v.clone()))
            .collect();
        Options { entries }
    }

    /// Serialize to a canonical JSON string (sorted keys by construction).
    pub fn to_json(&self) -> Result<String> {
        serde_json::to_string(&self).map_err(|e| Error::Serialization(e.to_string()))
    }

    /// Parse from the JSON produced by [`Options::to_json`].
    pub fn from_json(s: &str) -> Result<Options> {
        serde_json::from_str(s).map_err(|e| Error::Serialization(e.to_string()))
    }
}

impl fmt::Display for Options {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (k, v) in self.iter() {
            writeln!(f, "{k} = {v}")?;
        }
        Ok(())
    }
}

impl FromIterator<(String, Value)> for Options {
    fn from_iter<I: IntoIterator<Item = (String, Value)>>(iter: I) -> Self {
        Options {
            entries: iter.into_iter().collect(),
        }
    }
}

impl<'a> IntoIterator for &'a Options {
    type Item = (&'a String, &'a Value);
    type IntoIter = std::collections::btree_map::Iter<'a, String, Value>;
    fn into_iter(self) -> Self::IntoIter {
        self.entries.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Options {
        Options::new()
            .with("pressio:abs", 1e-6)
            .with("sz3:predictor", "lorenzo")
            .with("sz3:block_size", 6u64)
            .with("app:fields", vec!["U".to_string(), "V".to_string()])
    }

    #[test]
    fn typed_get_success() {
        let o = sample();
        assert_eq!(o.get_f64("pressio:abs").unwrap(), 1e-6);
        assert_eq!(o.get_str("sz3:predictor").unwrap(), "lorenzo");
        assert_eq!(o.get_u64("sz3:block_size").unwrap(), 6);
        assert_eq!(o.get_str_slice("app:fields").unwrap().len(), 2);
    }

    #[test]
    fn missing_and_mismatch_errors() {
        let o = sample();
        assert!(matches!(
            o.get_f64("nope"),
            Err(Error::MissingOption(k)) if k == "nope"
        ));
        assert!(matches!(
            o.get_f64("sz3:predictor"),
            Err(Error::TypeMismatch { .. })
        ));
    }

    #[test]
    fn optional_getters() {
        let o = sample();
        assert_eq!(o.get_f64_opt("pressio:abs").unwrap(), Some(1e-6));
        assert_eq!(o.get_f64_opt("nope").unwrap(), None);
        assert!(o.get_f64_opt("sz3:predictor").is_err());
    }

    #[test]
    fn integer_widening_through_getters() {
        let o = Options::new().with("n", 5i32);
        assert_eq!(o.get_f64("n").unwrap(), 5.0);
        assert_eq!(o.get_usize("n").unwrap(), 5);
    }

    #[test]
    fn prefix_filtering() {
        let o = sample();
        let sz = o.with_prefix("sz3:");
        assert_eq!(sz.len(), 2);
        assert!(sz.contains("sz3:predictor"));
        assert!(!sz.contains("pressio:abs"));
    }

    #[test]
    fn extract_exact_keys() {
        let o = sample();
        let e = o.extract(&["pressio:abs", "missing"]);
        assert_eq!(e.len(), 1);
        assert!(e.contains("pressio:abs"));
    }

    #[test]
    fn merge_overwrites() {
        let mut a = sample();
        let b = Options::new().with("pressio:abs", 1e-4).with("new", true);
        a.merge_from(&b);
        assert_eq!(a.get_f64("pressio:abs").unwrap(), 1e-4);
        assert!(a.get_bool("new").unwrap());
    }

    #[test]
    fn iteration_is_sorted() {
        let o = sample();
        let keys: Vec<_> = o.keys().collect();
        let mut sorted = keys.clone();
        sorted.sort_unstable();
        assert_eq!(keys, sorted);
    }

    #[test]
    fn json_round_trip() {
        let o = sample();
        let s = o.to_json().unwrap();
        let back = Options::from_json(&s).unwrap();
        assert_eq!(o, back);
    }
}
