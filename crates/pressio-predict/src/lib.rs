//! # pressio-predict
//!
//! The paper's primary contribution: a lightweight, extendable framework
//! for describing, implementing, and using methods that predict compression
//! performance without running the compressor (Underwood et al., SC-W 2023).
//!
//! - [`features`] — the metric computations prediction methods consume,
//!   partitioned into error-agnostic and error-dependent classes (§4.2).
//! - [`predictor`] — the `predict_plugin` trait (`fit`/`predict`,
//!   serializable state) and four predictor families: identity ("simple"),
//!   linear, spline-GAM, random forest, and conformal forest.
//! - [`scheme`] / [`schemes`] — the `scheme_plugin` trait with
//!   self-describing capability metadata (regenerates Table 1) and the
//!   seven methods from the paper's background section.
//! - [`evaluator`] — invalidation-aware feature caching (Figure 4's `invs`
//!   flow; the answer to the paper's Q1).
//! - [`registry`] — name-based scheme and compressor registries.
//!
//! ## Figure 4, in Rust
//!
//! ```
//! use pressio_core::{Compressor, Data, Options};
//! use pressio_predict::registry::{standard_compressors, standard_schemes};
//! use pressio_predict::evaluator::CachedEvaluator;
//!
//! // get a scheme and a predictor for a compressor
//! let schemes = standard_schemes();
//! let scheme = schemes.build("khan2023").unwrap();
//! let mut comp = standard_compressors().build("sz3").unwrap();
//! comp.set_options(&Options::new().with("pressio:abs", 1e-4)).unwrap();
//! assert!(scheme.supports(comp.id()));
//!
//! // evaluate the metrics the scheme needs (with invalidation tracking)
//! let data = Data::from_f32(vec![32, 32],
//!     (0..1024).map(|i| (i as f32 * 0.02).sin()).collect());
//! let mut eval = CachedEvaluator::new(scheme);
//! let (features, _times) = eval.features("demo", &data, comp.as_ref()).unwrap();
//!
//! // predict
//! let predictor = eval.scheme().make_predictor();
//! let estimated_ratio = predictor.predict(&features).unwrap();
//! assert!(estimated_ratio > 1.0);
//! ```

#![warn(missing_docs)]

pub mod bandwidth;
pub mod evaluator;
pub mod features;
pub mod predictor;
pub mod registry;
pub mod scheme;
pub mod schemes;

pub use bandwidth::{bandwidth_features, BandwidthModel};
pub use evaluator::{CacheCounters, CachedEvaluator, FeatureTimes};
pub use predictor::{
    ConformalForestPredictor, ForestPredictor, GpPredictor, IdentityPredictor, LinearPredictor,
    MlpPredictor, Predictor, SplinePredictor,
};
pub use registry::{standard_compressors, standard_schemes};
pub use scheme::{format_table1, Scheme, SchemeInfo, StageTimes};
