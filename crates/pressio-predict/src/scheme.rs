//! The `scheme_plugin` abstraction (paper §4.2): a scheme bundles the
//! metrics a prediction method needs, their invalidation classes, and a
//! factory for the matching predictor — so applications can switch methods
//! without knowing their internals (Figure 4).

use crate::predictor::Predictor;
use pressio_core::error::Result;
use pressio_core::{Compressor, Data, Options};

/// Capability metadata — one row of the paper's Table 1.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SchemeInfo {
    /// Registry name (`"tao2019"`, ...).
    pub name: &'static str,
    /// Bibliographic reference.
    pub citation: &'static str,
    /// Whether the scheme has a training stage (Table 1 "training").
    pub training: bool,
    /// Whether it samples the data (Table 1 "sampling").
    pub sampling: bool,
    /// Black-box status: `"yes"`, `"no"`, or `"partial"` (Table 1 "~").
    pub black_box: &'static str,
    /// Design goal: `"fast"` or `"accurate"`.
    pub goal: &'static str,
    /// Metrics predicted (`"CR"`, `"CR, Bandwidth"`, ...).
    pub metrics: &'static str,
    /// Approach family (`"trial-based"`, `"regression"`, `"calculation"`,
    /// `"machine learning"`, `"deep learning"`).
    pub approach: &'static str,
    /// Special features (`"bounded"`, `"counterfactuals"`, or `""`).
    pub features: &'static str,
}

/// Stage timings of one end-to-end prediction (the columns of Table 2).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct StageTimes {
    /// Time computing error-agnostic features, ms (`None` if the scheme has
    /// none — rendered as "N/A" like the paper).
    pub error_agnostic_ms: Option<f64>,
    /// Time computing error-dependent features, ms.
    pub error_dependent_ms: Option<f64>,
    /// Time collecting training-only observations, ms.
    pub training_ms: Option<f64>,
    /// Model-fitting time, ms.
    pub fit_ms: Option<f64>,
    /// Single-prediction inference time, ms.
    pub inference_ms: Option<f64>,
}

/// A prediction scheme: feature extraction split by invalidation class,
/// plus a predictor factory.
pub trait Scheme: Send {
    /// Capability metadata (regenerates Table 1).
    fn info(&self) -> SchemeInfo;

    /// Whether the scheme can model this compressor in its current
    /// configuration (e.g. the Jin model is SZ-specific — its ZFP cell in
    /// Table 2 is N/A).
    fn supports(&self, compressor_id: &str) -> bool;

    /// Compute the error-agnostic features (depend only on the data).
    /// Schemes without any return an empty structure.
    fn error_agnostic_features(&self, data: &Data) -> Result<Options>;

    /// Compute the error-dependent features (depend on error-affecting
    /// compressor settings, notably `pressio:abs`).
    fn error_dependent_features(&self, data: &Data, compressor: &dyn Compressor)
        -> Result<Options>;

    /// Collect the training-only observation for one dataset — by default
    /// the ground truth: run the compressor and return the actual ratio.
    /// This is the "Training (ms)" column of Table 2 (≈ compression time).
    fn training_observation(&self, data: &Data, compressor: &dyn Compressor) -> Result<f64> {
        let compressed = compressor.compress(data)?;
        Ok(data.size_in_bytes() as f64 / compressed.len().max(1) as f64)
    }

    /// Instantiate the predictor this scheme pairs with.
    fn make_predictor(&self) -> Box<dyn Predictor>;

    /// Names of the feature keys the predictor consumes (for diagnostics
    /// and for `extract`-style narrowing as in Figure 4).
    fn feature_keys(&self) -> Vec<String>;
}

/// Render Table 1 from live scheme metadata.
pub fn format_table1(schemes: &[&dyn Scheme]) -> String {
    let mut out = String::new();
    out.push_str(
        "| method | training | sampling | black-box | goal | metrics | approach | features |\n",
    );
    out.push_str("|---|---|---|---|---|---|---|---|\n");
    for s in schemes {
        let i = s.info();
        let bb = match i.black_box {
            "yes" => "✓",
            "no" => "✗",
            _ => "~",
        };
        out.push_str(&format!(
            "| {} [{}] | {} | {} | {} | {} | {} | {} | {} |\n",
            i.name,
            i.citation,
            if i.training { "✓" } else { "✗" },
            if i.sampling { "✓" } else { "✗" },
            bb,
            i.goal,
            i.metrics,
            i.approach,
            i.features,
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::predictor::IdentityPredictor;

    struct Dummy;

    impl Scheme for Dummy {
        fn info(&self) -> SchemeInfo {
            SchemeInfo {
                name: "dummy",
                citation: "Nobody 2099",
                training: false,
                sampling: true,
                black_box: "partial",
                goal: "fast",
                metrics: "CR",
                approach: "trial-based",
                features: "",
            }
        }
        fn supports(&self, id: &str) -> bool {
            id == "sz3"
        }
        fn error_agnostic_features(&self, _data: &Data) -> Result<Options> {
            Ok(Options::new())
        }
        fn error_dependent_features(
            &self,
            _data: &Data,
            _compressor: &dyn Compressor,
        ) -> Result<Options> {
            Ok(Options::new().with("dummy:ratio", 2.0))
        }
        fn make_predictor(&self) -> Box<dyn Predictor> {
            Box::new(IdentityPredictor::new("dummy:ratio"))
        }
        fn feature_keys(&self) -> Vec<String> {
            vec!["dummy:ratio".to_string()]
        }
    }

    #[test]
    fn table1_renders_metadata() {
        let d = Dummy;
        let t = format_table1(&[&d]);
        assert!(t.contains("dummy [Nobody 2099]"));
        assert!(t.contains("| ✗ | ✓ | ~ |"));
        assert!(t.contains("trial-based"));
    }

    #[test]
    fn supports_filters_compressors() {
        let d = Dummy;
        assert!(d.supports("sz3"));
        assert!(!d.supports("zfp"));
    }
}
