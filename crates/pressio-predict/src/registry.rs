//! Standard registries: the schemes ported in the paper plus the two
//! compressors its evaluation targets.

use crate::scheme::Scheme;
use crate::schemes::{
    GanguliScheme, JinScheme, KhanScheme, KrasowskaScheme, LuScheme, QinScheme, RahmanScheme,
    TaoScheme, UnderwoodScheme, WangScheme,
};
use pressio_core::{Compressor, Registry};
use pressio_sz::SzCompressor;
use pressio_zfp::ZfpCompressor;

/// Registry of all bundled prediction schemes.
pub fn standard_schemes() -> Registry<dyn Scheme> {
    let mut r: Registry<dyn Scheme> = Registry::new("scheme");
    r.register("tao2019", || Box::new(TaoScheme::default()));
    r.register("krasowska2021", || Box::new(KrasowskaScheme));
    r.register("underwood2023", || Box::new(UnderwoodScheme));
    r.register("jin2022", || Box::new(JinScheme::default()));
    r.register("khan2023", || Box::new(KhanScheme::default()));
    r.register("rahman2023", || Box::new(RahmanScheme::default()));
    r.register("ganguli2023", || Box::new(GanguliScheme));
    r.register("lu2018", || Box::new(LuScheme::default()));
    r.register("qin2020", || Box::new(QinScheme::default()));
    r.register("wang2023", || Box::new(WangScheme::default()));
    r
}

/// Registry of the bundled compressors (`sz3`, `zfp`).
pub fn standard_compressors() -> Registry<dyn Compressor> {
    let mut r: Registry<dyn Compressor> = Registry::new("compressor");
    r.register("sz3", || Box::new(SzCompressor::new()));
    r.register("zfp", || Box::new(ZfpCompressor::new()));
    r
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_paper_schemes_registered() {
        let r = standard_schemes();
        // all ten rows of the paper's Table 1
        for name in [
            "tao2019",
            "krasowska2021",
            "underwood2023",
            "jin2022",
            "khan2023",
            "rahman2023",
            "ganguli2023",
            "lu2018",
            "qin2020",
            "wang2023",
        ] {
            assert!(r.contains(name), "{name} missing");
            let scheme = r.build(name).unwrap();
            assert_eq!(scheme.info().name, name);
        }
        assert!(!r.contains("not_a_scheme"));
    }

    #[test]
    fn compressors_registered_and_functional() {
        let r = standard_compressors();
        assert_eq!(r.names(), vec!["sz3", "zfp"]);
        for name in r.names() {
            let c = r.build(name).unwrap();
            assert_eq!(c.id(), name);
        }
    }

    #[test]
    fn scheme_support_matrix_matches_table2() {
        let r = standard_schemes();
        // Table 2: jin (sian) supports sz3 only; khan and rahman support both
        assert!(r.build("jin2022").unwrap().supports("sz3"));
        assert!(!r.build("jin2022").unwrap().supports("zfp"));
        for name in ["khan2023", "rahman2023"] {
            let s = r.build(name).unwrap();
            assert!(s.supports("sz3") && s.supports("zfp"), "{name}");
        }
    }
}
