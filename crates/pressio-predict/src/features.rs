//! Feature metrics used by the prediction schemes.
//!
//! Each function computes a group of named features into an [`Options`]
//! structure. Features are partitioned by invalidation class (paper §4.2):
//! **error-agnostic** features depend only on the data; **error-dependent**
//! features also depend on error-affecting compressor settings (here, the
//! `pressio:abs` bound). The evaluator in [`crate::evaluator`] caches each
//! class separately.

use pressio_core::{Data, Options};
use pressio_lossless::entropy::{quantized_entropy, shannon_entropy_symbols};
use pressio_stats::{summarize, svd_truncation_fraction, variogram_score, Matrix};
use pressio_sz::{predict_and_quantize, Predictor as SzPredictor};

/// Error-agnostic global statistics (`stat:*`): the FXRZ feature family.
///
/// All are O(n) single-pass quantities — this is what keeps Rahman's
/// error-agnostic stage two orders of magnitude below compression time.
pub fn global_stats(data: &Data) -> Options {
    let values = data.to_f64_vec();
    let s = summarize(&values);
    let std = s.variance.sqrt();
    // mean absolute first difference (cheap smoothness proxy, 1-d walk),
    // lane-strided reduction
    let (grad_sum, grad_n) = pressio_stats::lanes::sum_abs_diff(&values);
    let grad = if grad_n > 0 {
        grad_sum / grad_n as f64
    } else {
        0.0
    };
    // Lorenzo-residual estimate: the cheap predictor-fit proxy SZ-family
    // schemes key on
    let lorenzo_mae = pressio_sz::lorenzo::estimate_mean_abs_residual(&values, data.dims());
    Options::new()
        .with("stat:mean", s.mean)
        .with("stat:std", std)
        .with("stat:value_range", s.max - s.min)
        .with("stat:zero_fraction", s.zero_fraction)
        .with("stat:mean_abs_diff", grad)
        .with("stat:lorenzo_mae", lorenzo_mae)
        .with("stat:n_elements", s.count as u64)
}

/// Error-agnostic spatial-correlation feature (`variogram:score`),
/// Krasowska's second regressor.
pub fn variogram_features(data: &Data) -> Options {
    let values = data.to_f64_vec();
    Options::new().with("variogram:score", variogram_score(&values, data.dims()))
}

/// Error-agnostic SVD-truncation feature (`svd:truncation`), the Underwood
/// (2023) global-information measure. Deliberately the most expensive
/// error-agnostic metric (the paper's §6 measures it at ~771 ms vs <43 ms
/// for the error-dependent stage): it runs a Jacobi SVD over several 2-D
/// slices of the volume and averages the truncation fractions.
pub fn svd_features(data: &Data) -> Options {
    let dims = data.dims();
    let values = data.to_f64_vec();
    let (nx, ny, nz) = match dims.len() {
        0 => (0usize, 1usize, 1usize),
        1 => (dims[0], 1, 1),
        2 => (dims[0], dims[1], 1),
        _ => (dims[0], dims[1], dims[2..].iter().product()),
    };
    if nx < 2 || ny < 2 {
        // degenerate: treat the vector as a square-ish matrix
        let side = (values.len() as f64).sqrt().floor().max(1.0) as usize;
        if side < 2 {
            return Options::new().with("svd:truncation", 1.0);
        }
        let m = Matrix::from_rows(side, side, values[..side * side].to_vec());
        return Options::new().with("svd:truncation", svd_truncation_fraction(&m, 0.99));
    }
    // average over up to 4 evenly spaced z-slices; slices are independent,
    // so they run through the pool, and the per-slice results are summed in
    // slice order — bit-identical to the sequential loop
    let slices = nz.min(4);
    let nthreads = pressio_core::threads::resolve(None);
    let fractions = pressio_core::threads::par_map_indexed(nthreads, slices, |s| {
        let z = s * nz / slices;
        let mut m = Matrix::zeros(ny, nx);
        for y in 0..ny {
            for x in 0..nx {
                let v = values[(z * ny + y) * nx + x];
                m.set(y, x, if v.is_finite() { v } else { 0.0 });
            }
        }
        svd_truncation_fraction(&m, 0.99)
    });
    let acc: f64 = fractions.iter().sum();
    Options::new().with("svd:truncation", acc / slices as f64)
}

/// All three error-agnostic feature groups ([`global_stats`],
/// [`variogram_features`], [`svd_features`]) computed concurrently and
/// merged into one [`Options`]. Each group's values are identical to its
/// standalone call; only wall-clock changes with the thread count.
pub fn error_agnostic_all(data: &Data) -> Options {
    let nthreads = pressio_core::threads::resolve(None);
    let groups: [fn(&Data) -> Options; 3] = [global_stats, variogram_features, svd_features];
    let results =
        pressio_core::threads::par_map_indexed(nthreads, groups.len(), |i| groups[i](data));
    let mut merged = Options::new();
    for r in &results {
        merged.merge_from(r);
    }
    merged
}

/// Error-agnostic temporal-delta feature group (`temporal:*`): how the
/// current chunk relates to the previous timestep's last slice (LFZip).
///
/// `prev` is one outer slice (the previous chunk's trailing timestep);
/// `cur` is the current chunk. When `cur` spans several outer slices the
/// statistics are computed against its first slice-sized prefix — the
/// boundary the chained streaming delta actually codes against.
pub fn temporal_delta_features(prev: &Data, cur: &Data) -> Options {
    let prev_values = prev.to_f64_vec();
    let cur_values = cur.to_f64_vec();
    let n = prev_values.len().min(cur_values.len());
    if n == 0 {
        return Options::new();
    }
    let td = pressio_stats::temporal_delta(&prev_values[..n], &cur_values[..n]);
    Options::new()
        .with("temporal:mean_abs_delta", td.mean_abs_delta)
        .with("temporal:rms_delta", td.rms_delta)
        .with("temporal:max_abs_delta", td.max_abs_delta)
        .with("temporal:delta_range", td.delta_range)
        .with("temporal:correlation", td.correlation)
        .with("temporal:hold_gain", td.hold_gain)
}

/// Error-dependent quantized entropy (`qent:entropy`), Krasowska's first
/// regressor: the Shannon entropy of the data after bucketing at the
/// current absolute error bound.
pub fn quantized_entropy_features(data: &Data, abs_bound: f64) -> Options {
    let values = data.to_f64_vec();
    Options::new().with("qent:entropy", quantized_entropy(&values, abs_bound))
}

/// Error-agnostic Ganguli (2023) feature family (`spatial:*`): spatial
/// correlation, spatial diversity, spatial smoothness, and coding gain.
pub fn spatial_features(data: &Data) -> Options {
    let values = data.to_f64_vec();
    let dims = data.dims();
    let s = summarize(&values);
    let var = s.variance.max(1e-300);

    // spatial correlation: 1 − normalized lag-1 semivariance
    let correlation = (1.0 - variogram_score(&values, dims)).clamp(-1.0, 1.0);

    // spatial diversity: coefficient of variation of coarse-block means
    let block = 8usize;
    let mut block_means = Vec::new();
    for chunk in values.chunks(block * block) {
        let bs = summarize(chunk);
        if bs.count > 0 {
            block_means.push(bs.mean);
        }
    }
    let bm = summarize(&block_means);
    let diversity = if bm.mean.abs() > 1e-12 {
        (bm.variance.sqrt() / bm.mean.abs()).min(100.0)
    } else {
        bm.variance.sqrt().min(100.0)
    };

    // spatial smoothness: 1 / (1 + mean |Δ| / sd), lane-strided reduction
    let (grad_sum, n) = pressio_stats::lanes::sum_abs_diff(&values);
    let grad = if n > 0 { grad_sum / n as f64 } else { 0.0 };
    let smoothness = 1.0 / (1.0 + grad / var.sqrt());

    // coding gain: variance ratio of the signal to its lag-1 residual
    let (resid_sum, rn) = pressio_stats::lanes::sum_sq_diff(&values);
    let resid_var = if rn > 0 { resid_sum / rn as f64 } else { 0.0 };
    let coding_gain = if resid_var > 0.0 {
        (var / resid_var).log2().clamp(-10.0, 30.0)
    } else {
        30.0
    };

    Options::new()
        .with("spatial:correlation", correlation)
        .with("spatial:diversity", diversity)
        .with("spatial:smoothness", smoothness)
        .with("spatial:coding_gain", coding_gain)
}

/// Error-dependent SZ quantization profile (`quant:*`): runs the cheap
/// prediction + quantization stages (not the encoder) and summarizes the
/// symbol stream — the raw material of both the Jin and Khan models.
pub fn sz_quantization_profile(data: &Data, abs_bound: f64, sample_stride: usize) -> Options {
    let values = data.to_f64_vec();
    let dims: Vec<usize>;
    let sampled: Vec<f64>;
    let (vals, dims_ref): (&[f64], &[usize]) = if sample_stride > 1 {
        // stride-decimate to bound the cost (Khan's tightly coupled sampling)
        let d = Data::from_f64(data.dims().to_vec(), values.clone());
        let s = pressio_dataset_stride(&d, sample_stride);
        dims = s.dims().to_vec();
        sampled = s.to_f64_vec();
        (&sampled, &dims)
    } else {
        (&values, data.dims())
    };
    let qs = predict_and_quantize(vals, dims_ref, abs_bound, SzPredictor::Lorenzo, 6, false);
    let n = qs.symbols.len().max(1);
    let entropy = shannon_entropy_symbols(&qs.symbols);
    let unpred = qs.unpredictable.len() as f64 / n as f64;
    let zero_code = (pressio_sz::RADIUS) as u32;
    let hit = qs.symbols.iter().filter(|&&s| s == zero_code).count() as f64 / n as f64;
    Options::new()
        .with("quant:code_entropy", entropy)
        .with("quant:unpredictable_fraction", unpred)
        .with("quant:zero_code_fraction", hit)
        .with("quant:n", n as u64)
}

// small local stride sampler (avoids a dependency cycle with
// pressio-dataset, which depends on nothing here but keeps layering clean)
fn pressio_dataset_stride(data: &Data, stride: usize) -> Data {
    let s = stride.max(1);
    let dims = data.dims();
    let out_dims: Vec<usize> = dims.iter().map(|&d| d.div_ceil(s)).collect();
    let vals = data.to_f64_vec();
    let mut strides = vec![1usize; dims.len()];
    for d in 1..dims.len() {
        strides[d] = strides[d - 1] * dims[d - 1];
    }
    let n: usize = out_dims.iter().product();
    let mut out = Vec::with_capacity(n);
    let mut coord = vec![0usize; dims.len()];
    if n > 0 {
        'outer: loop {
            let idx: usize = coord.iter().zip(&strides).map(|(&c, &st)| c * s * st).sum();
            out.push(vals[idx]);
            for d in 0..coord.len() {
                coord[d] += 1;
                if coord[d] < out_dims[d] {
                    continue 'outer;
                }
                coord[d] = 0;
            }
            break;
        }
    }
    Data::from_f64(out_dims, out)
}

/// Extract a named feature vector from a merged feature [`Options`]
/// structure, in the order of `keys`; missing features error.
pub fn feature_vector(features: &Options, keys: &[String]) -> pressio_core::Result<Vec<f64>> {
    keys.iter().map(|k| features.get_f64(k)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn smooth_3d(n: usize) -> Data {
        let values: Vec<f32> = (0..n * n * 8)
            .map(|i| {
                let x = (i % n) as f32;
                let y = ((i / n) % n) as f32;
                let z = (i / (n * n)) as f32;
                (x * 0.1).sin() * (y * 0.15).cos() + z * 0.02
            })
            .collect();
        Data::from_f32(vec![n, n, 8], values)
    }

    fn noise_3d(n: usize) -> Data {
        let mut state = 5u64;
        let values: Vec<f32> = (0..n * n * 8)
            .map(|_| {
                state ^= state << 13;
                state ^= state >> 7;
                state ^= state << 17;
                ((state >> 11) as f64 / (1u64 << 53) as f64) as f32
            })
            .collect();
        Data::from_f32(vec![n, n, 8], values)
    }

    #[test]
    fn global_stats_basics() {
        let data = Data::from_f32(vec![4], vec![0.0, 0.0, 2.0, 4.0]);
        let f = global_stats(&data);
        assert_eq!(f.get_f64("stat:mean").unwrap(), 1.5);
        assert_eq!(f.get_f64("stat:zero_fraction").unwrap(), 0.5);
        assert_eq!(f.get_f64("stat:value_range").unwrap(), 4.0);
        assert_eq!(f.get_u64("stat:n_elements").unwrap(), 4);
    }

    #[test]
    fn smooth_data_scores_compressible_everywhere() {
        let smooth = smooth_3d(24);
        let noisy = noise_3d(24);
        let vs = variogram_features(&smooth)
            .get_f64("variogram:score")
            .unwrap();
        let vn = variogram_features(&noisy)
            .get_f64("variogram:score")
            .unwrap();
        assert!(vs < vn, "variogram {vs} !< {vn}");
        let ss = svd_features(&smooth).get_f64("svd:truncation").unwrap();
        let sn = svd_features(&noisy).get_f64("svd:truncation").unwrap();
        assert!(ss < sn, "svd {ss} !< {sn}");
        // note: quantized entropy measures the *marginal* distribution, not
        // spatial structure — that is exactly why Krasowska pairs it with
        // the variogram; no smooth-vs-noise ordering is asserted for it
    }

    #[test]
    fn quantized_entropy_depends_on_bound() {
        let data = smooth_3d(16);
        let tight = quantized_entropy_features(&data, 1e-6)
            .get_f64("qent:entropy")
            .unwrap();
        let loose = quantized_entropy_features(&data, 1e-2)
            .get_f64("qent:entropy")
            .unwrap();
        assert!(tight > loose);
    }

    #[test]
    fn spatial_features_distinguish_structure() {
        let smooth = spatial_features(&smooth_3d(24));
        let noisy = spatial_features(&noise_3d(24));
        assert!(
            smooth.get_f64("spatial:correlation").unwrap()
                > noisy.get_f64("spatial:correlation").unwrap()
        );
        assert!(
            smooth.get_f64("spatial:smoothness").unwrap()
                > noisy.get_f64("spatial:smoothness").unwrap()
        );
        assert!(
            smooth.get_f64("spatial:coding_gain").unwrap()
                > noisy.get_f64("spatial:coding_gain").unwrap()
        );
    }

    #[test]
    fn quant_profile_tracks_bound() {
        let data = smooth_3d(16);
        let tight = sz_quantization_profile(&data, 1e-6, 1);
        let loose = sz_quantization_profile(&data, 1e-2, 1);
        assert!(
            tight.get_f64("quant:code_entropy").unwrap()
                > loose.get_f64("quant:code_entropy").unwrap()
        );
        assert!(
            loose.get_f64("quant:zero_code_fraction").unwrap()
                > tight.get_f64("quant:zero_code_fraction").unwrap()
        );
    }

    #[test]
    fn quant_profile_sampling_reduces_n() {
        let data = smooth_3d(16);
        let full = sz_quantization_profile(&data, 1e-4, 1);
        let sampled = sz_quantization_profile(&data, 1e-4, 4);
        let nf = full.get_u64("quant:n").unwrap();
        let ns = sampled.get_u64("quant:n").unwrap();
        assert!(ns < nf / 16, "sampled {ns} vs full {nf}");
        // stride sampling decorrelates neighbors, so the sampled residual
        // entropy is biased *upward*; it must stay the same order of
        // magnitude but is not expected to match
        let ef = full.get_f64("quant:code_entropy").unwrap();
        let es = sampled.get_f64("quant:code_entropy").unwrap();
        assert!(es >= ef * 0.5 && es <= ef * 4.0 + 1.0, "{ef} vs {es}");
    }

    #[test]
    fn error_agnostic_all_matches_standalone_groups() {
        let data = smooth_3d(16);
        let merged = error_agnostic_all(&data);
        for group in [global_stats, variogram_features, svd_features] {
            let standalone = group(&data);
            for key in standalone.keys() {
                assert_eq!(
                    merged.get_f64(key).ok(),
                    standalone.get_f64(key).ok(),
                    "{key}"
                );
            }
        }
    }

    #[test]
    fn feature_vector_extraction() {
        let f = Options::new().with("a", 1.0).with("b", 2.0);
        let v = feature_vector(&f, &["b".into(), "a".into()]).unwrap();
        assert_eq!(v, vec![2.0, 1.0]);
        assert!(feature_vector(&f, &["missing".into()]).is_err());
    }

    #[test]
    fn degenerate_inputs_do_not_panic() {
        let tiny = Data::from_f32(vec![1], vec![3.0]);
        let _ = global_stats(&tiny);
        let _ = variogram_features(&tiny);
        let _ = svd_features(&tiny);
        let _ = spatial_features(&tiny);
        let _ = quantized_entropy_features(&tiny, 1e-3);
        let _ = sz_quantization_profile(&tiny, 1e-3, 1);
    }

    #[test]
    fn temporal_features_track_correlation() {
        let prev = Data::from_f32(vec![16], (0..16).map(|i| (i as f32 * 0.3).sin()).collect());
        let same = temporal_delta_features(&prev, &prev);
        assert_eq!(same.get_f64("temporal:mean_abs_delta").unwrap(), 0.0);
        assert!((same.get_f64("temporal:correlation").unwrap() - 1.0).abs() < 1e-9);

        // a chunk wider than one slice: only the leading slice is compared
        let chunk = Data::from_f32(
            vec![16, 2],
            (0..32).map(|i| (i as f32 * 0.3).sin() + 0.5).collect(),
        );
        let shifted = temporal_delta_features(&prev, &chunk);
        assert!((shifted.get_f64("temporal:mean_abs_delta").unwrap() - 0.5).abs() < 1e-6);
        assert!((shifted.get_f64("temporal:delta_range").unwrap()).abs() < 1e-6);
    }
}
