//! The `predict_plugin` abstraction (paper §4.2): Scikit-Learn
//! `BaseEstimator`-inspired `fit`/`predict` with serializable state.

use crate::features::feature_vector;
use pressio_core::error::{Error, Result};
use pressio_core::Options;
use pressio_stats::{
    augment_by_interpolation, ConformalCalibration, ForestParams, GaussianProcess, Interval,
    LinearModel, Mlp, MlpParams, NaturalSpline, RandomForest,
};
use serde::{Deserialize, Serialize};

/// A compression-performance predictor.
///
/// `fit` consumes one feature [`Options`] per training observation plus the
/// observed target (compression ratio); `predict` maps features to an
/// estimate. State must round-trip through `state`/`load_state` so trained
/// predictors can be checkpointed and shipped (the paper requires predictor
/// state to be serializable like every other LibPressio object).
pub trait Predictor: Send + Sync {
    /// Whether `fit` must be called before `predict`.
    fn requires_training(&self) -> bool;

    /// Train on features/targets (no-op for calculation-based predictors).
    fn fit(&mut self, features: &[Options], targets: &[f64]) -> Result<()>;

    /// Predict the target for one feature structure.
    fn predict(&self, features: &Options) -> Result<f64>;

    /// Optional conformal interval around [`Predictor::predict`] (only the
    /// Ganguli-style predictor provides one).
    fn predict_interval(&self, _features: &Options, _alpha: f64) -> Option<Interval> {
        None
    }

    /// Serialize trained state.
    fn state(&self) -> Result<Vec<u8>>;

    /// Restore trained state.
    fn load_state(&mut self, bytes: &[u8]) -> Result<()>;

    /// Persist [`Predictor::state`] to `path` atomically: the bytes are
    /// written to a sibling temp file, fsynced, and renamed into place, so
    /// a crash mid-save can never leave a torn file under the target name.
    fn save_to(&self, path: &std::path::Path) -> Result<()> {
        let state = self.state()?;
        let dir = path.parent().filter(|p| !p.as_os_str().is_empty());
        if let Some(dir) = dir {
            std::fs::create_dir_all(dir)?;
        }
        let file_name = path
            .file_name()
            .and_then(|n| n.to_str())
            .ok_or_else(|| Error::Io(format!("bad predictor path {}", path.display())))?;
        let tmp = path.with_file_name(format!(".{file_name}.tmp-{}", std::process::id()));
        {
            use std::io::Write as _;
            let mut f = std::fs::File::create(&tmp)?;
            f.write_all(&state)?;
            f.sync_all()?;
        }
        std::fs::rename(&tmp, path)?;
        Ok(())
    }

    /// Restore state saved by [`Predictor::save_to`].
    fn load_from(&mut self, path: &std::path::Path) -> Result<()> {
        let bytes = std::fs::read(path)
            .map_err(|e| Error::Io(format!("predictor state {}: {e}", path.display())))?;
        self.load_state(&bytes)
    }
}

/// The "simple" predictor module from the paper: the prediction *is* the
/// value of a single named metric. No training.
pub struct IdentityPredictor {
    key: String,
}

impl IdentityPredictor {
    /// Predict the value of feature `key` verbatim.
    pub fn new(key: impl Into<String>) -> IdentityPredictor {
        IdentityPredictor { key: key.into() }
    }
}

impl Predictor for IdentityPredictor {
    fn requires_training(&self) -> bool {
        false
    }

    fn fit(&mut self, _features: &[Options], _targets: &[f64]) -> Result<()> {
        Ok(())
    }

    fn predict(&self, features: &Options) -> Result<f64> {
        features.get_f64(&self.key)
    }

    fn state(&self) -> Result<Vec<u8>> {
        Ok(self.key.as_bytes().to_vec())
    }

    fn load_state(&mut self, bytes: &[u8]) -> Result<()> {
        self.key =
            String::from_utf8(bytes.to_vec()).map_err(|e| Error::Serialization(e.to_string()))?;
        Ok(())
    }
}

fn check_fitted<'a, T>(state: &'a Option<T>, what: &str) -> Result<&'a T> {
    state
        .as_ref()
        .ok_or_else(|| Error::NotFitted(format!("{what}: call fit() or load_state() first")))
}

fn to_rows(features: &[Options], keys: &[String]) -> Result<Vec<Vec<f64>>> {
    features.iter().map(|f| feature_vector(f, keys)).collect()
}

/// Log-space targets: compression ratios span orders of magnitude, and all
/// trainable predictors here model `log2(CR)` then exponentiate.
fn log_targets(targets: &[f64]) -> Result<Vec<f64>> {
    targets
        .iter()
        .map(|&t| {
            if t > 0.0 && t.is_finite() {
                Ok(t.log2())
            } else {
                Err(Error::InvalidValue {
                    key: "target".into(),
                    reason: format!("compression ratio must be positive, got {t}"),
                })
            }
        })
        .collect()
}

/// Linear regression over named features (Krasowska 2021 style).
#[derive(Serialize, Deserialize)]
pub struct LinearPredictor {
    keys: Vec<String>,
    model: Option<LinearModel>,
}

impl LinearPredictor {
    /// OLS over the given feature keys, predicting `log2(CR)`.
    pub fn new(keys: Vec<String>) -> LinearPredictor {
        LinearPredictor { keys, model: None }
    }
}

impl Predictor for LinearPredictor {
    fn requires_training(&self) -> bool {
        true
    }

    fn fit(&mut self, features: &[Options], targets: &[f64]) -> Result<()> {
        let rows = to_rows(features, &self.keys)?;
        let ys = log_targets(targets)?;
        self.model =
            Some(LinearModel::fit(&rows, &ys).map_err(|e| Error::Numerical(e.to_string()))?);
        Ok(())
    }

    fn predict(&self, features: &Options) -> Result<f64> {
        let model = check_fitted(&self.model, "linear predictor")?;
        let x = feature_vector(features, &self.keys)?;
        let log_cr = model
            .predict(&x)
            .map_err(|e| Error::Numerical(e.to_string()))?;
        Ok(log_cr.exp2())
    }

    fn state(&self) -> Result<Vec<u8>> {
        serde_json::to_vec(self).map_err(|e| Error::Serialization(e.to_string()))
    }

    fn load_state(&mut self, bytes: &[u8]) -> Result<()> {
        *self = serde_json::from_slice(bytes).map_err(|e| Error::Serialization(e.to_string()))?;
        Ok(())
    }
}

/// Additive spline + linear model (Underwood 2023 style): a natural cubic
/// spline over a primary feature plus a linear term in the secondary
/// features, fit by backfitting.
#[derive(Serialize, Deserialize)]
pub struct SplinePredictor {
    /// Feature receiving the spline.
    spline_key: String,
    /// Features entering linearly.
    linear_keys: Vec<String>,
    knots: usize,
    spline: Option<NaturalSpline>,
    linear: Option<LinearModel>,
}

impl SplinePredictor {
    /// Spline on `spline_key`, linear terms on `linear_keys`.
    pub fn new(spline_key: impl Into<String>, linear_keys: Vec<String>) -> SplinePredictor {
        SplinePredictor {
            spline_key: spline_key.into(),
            linear_keys,
            knots: 6,
            spline: None,
            linear: None,
        }
    }
}

impl Predictor for SplinePredictor {
    fn requires_training(&self) -> bool {
        true
    }

    fn fit(&mut self, features: &[Options], targets: &[f64]) -> Result<()> {
        let xs: Vec<f64> = features
            .iter()
            .map(|f| f.get_f64(&self.spline_key))
            .collect::<Result<_>>()?;
        let mut ys = log_targets(targets)?;
        let lin_rows = to_rows(features, &self.linear_keys)?;
        let mut spline = NaturalSpline::fit(&xs, &ys, self.knots)
            .map_err(|e| Error::Numerical(e.to_string()))?;
        let mut linear: Option<LinearModel> = None;
        if !self.linear_keys.is_empty() {
            // 3 backfitting rounds: spline residuals <-> linear residuals
            for _ in 0..3 {
                let spline_pred = spline.predict_batch(&xs);
                let resid: Vec<f64> = ys.iter().zip(&spline_pred).map(|(y, p)| y - p).collect();
                let lin = LinearModel::fit(&lin_rows, &resid)
                    .map_err(|e| Error::Numerical(e.to_string()))?;
                let lin_pred = lin
                    .predict_batch(&lin_rows)
                    .map_err(|e| Error::Numerical(e.to_string()))?;
                let resid2: Vec<f64> = ys.iter().zip(&lin_pred).map(|(y, p)| y - p).collect();
                spline = NaturalSpline::fit(&xs, &resid2, self.knots)
                    .map_err(|e| Error::Numerical(e.to_string()))?;
                linear = Some(lin);
            }
            // keep ys for clarity; the final model is spline(resid2) + linear
            let _ = &mut ys;
        }
        self.spline = Some(spline);
        self.linear = linear;
        Ok(())
    }

    fn predict(&self, features: &Options) -> Result<f64> {
        let spline = check_fitted(&self.spline, "spline predictor")?;
        let x = features.get_f64(&self.spline_key)?;
        let mut log_cr = spline.predict(x);
        if let Some(lin) = &self.linear {
            let xs = feature_vector(features, &self.linear_keys)?;
            log_cr += lin
                .predict(&xs)
                .map_err(|e| Error::Numerical(e.to_string()))?;
        }
        Ok(log_cr.exp2())
    }

    fn state(&self) -> Result<Vec<u8>> {
        serde_json::to_vec(self).map_err(|e| Error::Serialization(e.to_string()))
    }

    fn load_state(&mut self, bytes: &[u8]) -> Result<()> {
        *self = serde_json::from_slice(bytes).map_err(|e| Error::Serialization(e.to_string()))?;
        Ok(())
    }
}

/// Random-forest predictor with FXRZ data augmentation (Rahman 2023 style).
#[derive(Serialize, Deserialize)]
pub struct ForestPredictor {
    keys: Vec<String>,
    /// Synthetic-to-real augmentation factor (0 disables).
    pub augmentation: f64,
    params: ForestParams,
    forest: Option<RandomForest>,
}

impl ForestPredictor {
    /// Forest over the given feature keys, predicting `log2(CR)`.
    pub fn new(keys: Vec<String>) -> ForestPredictor {
        ForestPredictor {
            keys,
            augmentation: 2.0,
            params: ForestParams {
                num_trees: 40,
                ..Default::default()
            },
            forest: None,
        }
    }
}

impl Predictor for ForestPredictor {
    fn requires_training(&self) -> bool {
        true
    }

    fn fit(&mut self, features: &[Options], targets: &[f64]) -> Result<()> {
        let mut rows = to_rows(features, &self.keys)?;
        let mut ys = log_targets(targets)?;
        if rows.is_empty() {
            return Err(Error::NotFitted("no training data".into()));
        }
        augment_by_interpolation(&mut rows, &mut ys, self.augmentation, self.params.seed);
        self.forest = Some(RandomForest::fit(&rows, &ys, &self.params));
        Ok(())
    }

    fn predict(&self, features: &Options) -> Result<f64> {
        let forest = check_fitted(&self.forest, "forest predictor")?;
        let x = feature_vector(features, &self.keys)?;
        Ok(forest.predict(&x).exp2())
    }

    fn state(&self) -> Result<Vec<u8>> {
        serde_json::to_vec(self).map_err(|e| Error::Serialization(e.to_string()))
    }

    fn load_state(&mut self, bytes: &[u8]) -> Result<()> {
        *self = serde_json::from_slice(bytes).map_err(|e| Error::Serialization(e.to_string()))?;
        Ok(())
    }
}

/// Forest + split conformal intervals (Ganguli 2023 style): part of the
/// training set is held out to calibrate distribution-free bounds on the
/// log-ratio prediction error.
#[derive(Serialize, Deserialize)]
pub struct ConformalForestPredictor {
    inner: ForestPredictor,
    calibration: Option<ConformalCalibration>,
}

impl ConformalForestPredictor {
    /// Forest over `keys` with conformal calibration.
    pub fn new(keys: Vec<String>) -> ConformalForestPredictor {
        ConformalForestPredictor {
            inner: ForestPredictor::new(keys),
            calibration: None,
        }
    }
}

impl Predictor for ConformalForestPredictor {
    fn requires_training(&self) -> bool {
        true
    }

    fn fit(&mut self, features: &[Options], targets: &[f64]) -> Result<()> {
        let n = features.len();
        if n < 5 {
            // too small to split: fit without calibration
            self.inner.fit(features, targets)?;
            self.calibration = None;
            return Ok(());
        }
        // hold out every 4th sample for calibration
        let mut train_f = Vec::new();
        let mut train_t = Vec::new();
        let mut cal_f = Vec::new();
        let mut cal_t = Vec::new();
        for i in 0..n {
            if i % 4 == 3 {
                cal_f.push(features[i].clone());
                cal_t.push(targets[i]);
            } else {
                train_f.push(features[i].clone());
                train_t.push(targets[i]);
            }
        }
        self.inner.fit(&train_f, &train_t)?;
        let mut predicted = Vec::with_capacity(cal_f.len());
        let mut actual = Vec::with_capacity(cal_f.len());
        for (f, &t) in cal_f.iter().zip(&cal_t) {
            predicted.push(self.inner.predict(f)?.log2());
            actual.push(t.log2());
        }
        self.calibration = ConformalCalibration::calibrate(&predicted, &actual);
        Ok(())
    }

    fn predict(&self, features: &Options) -> Result<f64> {
        self.inner.predict(features)
    }

    fn predict_interval(&self, features: &Options, alpha: f64) -> Option<Interval> {
        let cal = self.calibration.as_ref()?;
        let point = self.inner.predict(features).ok()?;
        let iv = cal.interval(point.log2(), alpha);
        Some(Interval {
            lo: iv.lo.exp2(),
            hi: iv.hi.exp2(),
            coverage: iv.coverage,
        })
    }

    fn state(&self) -> Result<Vec<u8>> {
        serde_json::to_vec(self).map_err(|e| Error::Serialization(e.to_string()))
    }

    fn load_state(&mut self, bytes: &[u8]) -> Result<()> {
        *self = serde_json::from_slice(bytes).map_err(|e| Error::Serialization(e.to_string()))?;
        Ok(())
    }
}

/// Gaussian-process predictor (Lu 2018 style): exact GP regression over
/// named features, predicting `log2(CR)`.
#[derive(Serialize, Deserialize)]
pub struct GpPredictor {
    keys: Vec<String>,
    /// Noise-variance fraction of the target variance.
    pub noise: f64,
    model: Option<GaussianProcess>,
}

impl GpPredictor {
    /// GP over the given feature keys.
    pub fn new(keys: Vec<String>) -> GpPredictor {
        GpPredictor {
            keys,
            noise: 0.01,
            model: None,
        }
    }
}

impl Predictor for GpPredictor {
    fn requires_training(&self) -> bool {
        true
    }

    fn fit(&mut self, features: &[Options], targets: &[f64]) -> Result<()> {
        let rows = to_rows(features, &self.keys)?;
        let ys = log_targets(targets)?;
        self.model = Some(
            GaussianProcess::fit(&rows, &ys, self.noise)
                .map_err(|e| Error::Numerical(e.to_string()))?,
        );
        Ok(())
    }

    fn predict(&self, features: &Options) -> Result<f64> {
        let model = check_fitted(&self.model, "gp predictor")?;
        let x = feature_vector(features, &self.keys)?;
        let log_cr = model
            .predict(&x)
            .map_err(|e| Error::Numerical(e.to_string()))?;
        Ok(log_cr.exp2())
    }

    fn state(&self) -> Result<Vec<u8>> {
        serde_json::to_vec(self).map_err(|e| Error::Serialization(e.to_string()))
    }

    fn load_state(&mut self, bytes: &[u8]) -> Result<()> {
        *self = serde_json::from_slice(bytes).map_err(|e| Error::Serialization(e.to_string()))?;
        Ok(())
    }
}

/// Neural-network predictor (Qin 2020 style): a small MLP over named
/// features, predicting `log2(CR)`.
#[derive(Serialize, Deserialize)]
pub struct MlpPredictor {
    keys: Vec<String>,
    /// Network/training hyper-parameters.
    pub params: MlpParams,
    model: Option<Mlp>,
}

impl MlpPredictor {
    /// MLP over the given feature keys.
    pub fn new(keys: Vec<String>) -> MlpPredictor {
        MlpPredictor {
            keys,
            params: MlpParams::default(),
            model: None,
        }
    }
}

impl Predictor for MlpPredictor {
    fn requires_training(&self) -> bool {
        true
    }

    fn fit(&mut self, features: &[Options], targets: &[f64]) -> Result<()> {
        let rows = to_rows(features, &self.keys)?;
        let ys = log_targets(targets)?;
        self.model = Some(
            Mlp::fit(&rows, &ys, &self.params)
                .ok_or_else(|| Error::Numerical("mlp training failed".into()))?,
        );
        Ok(())
    }

    fn predict(&self, features: &Options) -> Result<f64> {
        let model = check_fitted(&self.model, "mlp predictor")?;
        let x = feature_vector(features, &self.keys)?;
        let log_cr = model
            .predict(&x)
            .ok_or_else(|| Error::Numerical("mlp dimension mismatch".into()))?;
        Ok(log_cr.exp2())
    }

    fn state(&self) -> Result<Vec<u8>> {
        serde_json::to_vec(self).map_err(|e| Error::Serialization(e.to_string()))
    }

    fn load_state(&mut self, bytes: &[u8]) -> Result<()> {
        *self = serde_json::from_slice(bytes).map_err(|e| Error::Serialization(e.to_string()))?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn training_set(n: usize) -> (Vec<Options>, Vec<f64>) {
        // CR = 2^(8 - entropy) roughly: log-linear in the feature
        let mut features = Vec::new();
        let mut targets = Vec::new();
        for i in 0..n {
            let entropy = (i % 9) as f64;
            let aux = (i % 5) as f64 * 0.1;
            features.push(
                Options::new()
                    .with("qent:entropy", entropy)
                    .with("variogram:score", aux),
            );
            targets.push((8.0 - entropy + aux).exp2());
        }
        (features, targets)
    }

    #[test]
    fn identity_predictor_returns_metric() {
        let p = IdentityPredictor::new("tao:sampled_ratio");
        assert!(!p.requires_training());
        let f = Options::new().with("tao:sampled_ratio", 12.5);
        assert_eq!(p.predict(&f).unwrap(), 12.5);
        assert!(p.predict(&Options::new()).is_err());
    }

    #[test]
    fn linear_predictor_learns_log_linear_law() {
        let (features, targets) = training_set(100);
        let mut p = LinearPredictor::new(vec![
            "qent:entropy".to_string(),
            "variogram:score".to_string(),
        ]);
        assert!(p.requires_training());
        assert!(matches!(p.predict(&features[0]), Err(Error::NotFitted(_))));
        p.fit(&features, &targets).unwrap();
        for (f, t) in features.iter().zip(&targets).take(20) {
            let pred = p.predict(f).unwrap();
            assert!((pred / t - 1.0).abs() < 0.05, "{pred} vs {t}");
        }
    }

    #[test]
    fn spline_predictor_fits_nonlinear_law() {
        // CR = 2^( (entropy-4)^2 / 4 ): nonlinear in entropy
        let mut features = Vec::new();
        let mut targets = Vec::new();
        for i in 0..120 {
            let e = (i % 12) as f64 * 0.75;
            features.push(Options::new().with("qent:entropy", e).with("aux", 0.0));
            targets.push(((e - 4.0) * (e - 4.0) / 4.0).exp2());
        }
        let mut p = SplinePredictor::new("qent:entropy", vec!["aux".to_string()]);
        p.fit(&features, &targets).unwrap();
        for (f, t) in features.iter().zip(&targets).take(12) {
            let pred = p.predict(f).unwrap();
            assert!((pred.log2() - t.log2()).abs() < 0.35, "{pred} vs {t}");
        }
    }

    #[test]
    fn spline_predictor_round_trips_state() {
        let (features, targets) = training_set(60);
        let mut p = SplinePredictor::new("qent:entropy", vec!["variogram:score".to_string()]);
        p.fit(&features, &targets).unwrap();
        let mut q = SplinePredictor::new("", vec![]);
        q.load_state(&p.state().unwrap()).unwrap();
        assert_eq!(
            p.predict(&features[7]).unwrap(),
            q.predict(&features[7]).unwrap()
        );
    }

    #[test]
    fn forest_predictor_round_trips_state() {
        let (features, targets) = training_set(80);
        let mut p = ForestPredictor::new(vec![
            "qent:entropy".to_string(),
            "variogram:score".to_string(),
        ]);
        p.fit(&features, &targets).unwrap();
        let state = p.state().unwrap();
        let mut q = ForestPredictor::new(vec![]);
        q.load_state(&state).unwrap();
        assert_eq!(
            p.predict(&features[3]).unwrap(),
            q.predict(&features[3]).unwrap()
        );
    }

    #[test]
    fn forest_learns_reasonably() {
        let (features, targets) = training_set(120);
        let mut p = ForestPredictor::new(vec![
            "qent:entropy".to_string(),
            "variogram:score".to_string(),
        ]);
        p.fit(&features, &targets).unwrap();
        let preds: Vec<f64> = features.iter().map(|f| p.predict(f).unwrap()).collect();
        let med = pressio_stats::medape(&targets, &preds).unwrap();
        assert!(med < 25.0, "forest MedAPE {med}%");
    }

    #[test]
    fn negative_targets_rejected() {
        let f = vec![Options::new().with("x", 1.0); 4];
        let mut p = LinearPredictor::new(vec!["x".to_string()]);
        assert!(p.fit(&f, &[1.0, 2.0, -1.0, 3.0]).is_err());
        assert!(p.fit(&f, &[1.0, 2.0, 0.0, 3.0]).is_err());
    }

    #[test]
    fn conformal_intervals_cover_training_law() {
        let (features, targets) = training_set(200);
        let mut p = ConformalForestPredictor::new(vec![
            "qent:entropy".to_string(),
            "variogram:score".to_string(),
        ]);
        p.fit(&features, &targets).unwrap();
        let mut covered = 0usize;
        for (f, &t) in features.iter().zip(&targets) {
            let iv = p.predict_interval(f, 0.1).unwrap();
            assert!(iv.lo <= iv.hi);
            if iv.lo <= t && t <= iv.hi {
                covered += 1;
            }
        }
        let rate = covered as f64 / targets.len() as f64;
        assert!(rate > 0.8, "coverage {rate}");
    }

    #[test]
    fn conformal_without_enough_data_has_no_interval() {
        let (features, targets) = training_set(4);
        let mut p = ConformalForestPredictor::new(vec![
            "qent:entropy".to_string(),
            "variogram:score".to_string(),
        ]);
        p.fit(&features, &targets).unwrap();
        assert!(p.predict_interval(&features[0], 0.1).is_none());
        // but the point prediction works
        assert!(p.predict(&features[0]).is_ok());
    }

    #[test]
    fn gp_predictor_learns_log_law() {
        let (features, targets) = training_set(80);
        let mut p = GpPredictor::new(vec![
            "qent:entropy".to_string(),
            "variogram:score".to_string(),
        ]);
        assert!(p.requires_training());
        p.fit(&features, &targets).unwrap();
        let preds: Vec<f64> = features.iter().map(|f| p.predict(f).unwrap()).collect();
        let med = pressio_stats::medape(&targets, &preds).unwrap();
        assert!(med < 20.0, "gp MedAPE {med}%");
        // state round trip
        let mut q = GpPredictor::new(vec![]);
        q.load_state(&p.state().unwrap()).unwrap();
        assert_eq!(
            p.predict(&features[5]).unwrap(),
            q.predict(&features[5]).unwrap()
        );
    }

    #[test]
    fn mlp_predictor_learns_log_law() {
        let (features, targets) = training_set(90);
        let mut p = MlpPredictor::new(vec![
            "qent:entropy".to_string(),
            "variogram:score".to_string(),
        ]);
        p.fit(&features, &targets).unwrap();
        let preds: Vec<f64> = features.iter().map(|f| p.predict(f).unwrap()).collect();
        let med = pressio_stats::medape(&targets, &preds).unwrap();
        assert!(med < 40.0, "mlp MedAPE {med}%");
        let mut q = MlpPredictor::new(vec![]);
        q.load_state(&p.state().unwrap()).unwrap();
        assert_eq!(
            p.predict(&features[5]).unwrap(),
            q.predict(&features[5]).unwrap()
        );
    }

    #[test]
    fn linear_state_round_trip() {
        let (features, targets) = training_set(50);
        let mut p = LinearPredictor::new(vec![
            "qent:entropy".to_string(),
            "variogram:score".to_string(),
        ]);
        p.fit(&features, &targets).unwrap();
        let mut q = LinearPredictor::new(vec![]);
        q.load_state(&p.state().unwrap()).unwrap();
        assert_eq!(
            p.predict(&features[0]).unwrap(),
            q.predict(&features[0]).unwrap()
        );
    }
}
