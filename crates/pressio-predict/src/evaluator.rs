//! Invalidation-aware cached feature evaluation — the machinery behind the
//! paper's first key question: *"How to generically enable maximum reuse of
//! previously observed metrics in predictions?"* (§1, Q1).
//!
//! Features are cached per invalidation class: **error-agnostic** results
//! are keyed by the dataset alone, so they survive any compressor
//! reconfiguration; **error-dependent** results are additionally keyed by a
//! stable hash of the compressor's error-affecting settings (taken from its
//! `predictors:error_dependent_settings` configuration metadata), so
//! changing `pressio:abs` misses the cache while changing a
//! performance-only knob does not. Explicit invalidation (Figure 4's
//! `invs` list) handles runtime/nondeterministic metrics.

use crate::scheme::Scheme;
use pressio_core::error::Result;
use pressio_core::hash::hash_options_hex;
use pressio_core::metrics::invalidations;
use pressio_core::timing::time_ms;
use pressio_core::{Compressor, Data, Options};
use std::collections::HashMap;

/// Per-call timing/caching report.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct FeatureTimes {
    /// Milliseconds spent computing error-agnostic features
    /// (`None` = served from cache).
    pub error_agnostic_ms: Option<f64>,
    /// Milliseconds spent computing error-dependent features
    /// (`None` = served from cache).
    pub error_dependent_ms: Option<f64>,
}

/// Cache hit/miss counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheCounters {
    /// Error-agnostic cache hits.
    pub agnostic_hits: u64,
    /// Error-agnostic recomputations.
    pub agnostic_misses: u64,
    /// Error-dependent cache hits.
    pub dependent_hits: u64,
    /// Error-dependent recomputations.
    pub dependent_misses: u64,
}

/// A scheme wrapped with the invalidation-tracking feature cache.
pub struct CachedEvaluator {
    scheme: Box<dyn Scheme>,
    agnostic: HashMap<String, Options>,
    dependent: HashMap<(String, String), Options>,
    counters: CacheCounters,
}

impl CachedEvaluator {
    /// Wrap a scheme.
    pub fn new(scheme: Box<dyn Scheme>) -> CachedEvaluator {
        CachedEvaluator {
            scheme,
            agnostic: HashMap::new(),
            dependent: HashMap::new(),
            counters: CacheCounters::default(),
        }
    }

    /// The wrapped scheme.
    pub fn scheme(&self) -> &dyn Scheme {
        self.scheme.as_ref()
    }

    /// Stable hash of the compressor's error-affecting settings: the
    /// error-dependent cache key component.
    pub fn error_settings_key(compressor: &dyn Compressor) -> String {
        let cfg = compressor.get_configuration();
        let opts = compressor.get_options();
        let subset = match cfg.get_str_slice("predictors:error_dependent_settings") {
            Ok(keys) => {
                let refs: Vec<&str> = keys.iter().map(String::as_str).collect();
                opts.extract(&refs)
            }
            // unknown compressor metadata: be conservative, use everything
            Err(_) => opts,
        };
        let keyed = subset.with("compressor:id", compressor.id());
        hash_options_hex(&keyed)
    }

    /// Compute (or reuse) the merged feature structure for `data` under
    /// the compressor's current configuration. `data_key` identifies the
    /// dataset (e.g. `"QRAIN@t07"`); callers are responsible for keying
    /// distinct data distinctly.
    pub fn features(
        &mut self,
        data_key: &str,
        data: &Data,
        compressor: &dyn Compressor,
    ) -> Result<(Options, FeatureTimes)> {
        let mut times = FeatureTimes::default();
        let agnostic = match self.agnostic.get(data_key) {
            Some(cached) => {
                self.counters.agnostic_hits += 1;
                pressio_obs::add_counter("evaluator:agnostic.hit", 1);
                cached.clone()
            }
            None => {
                let (result, ms) = time_ms(|| self.scheme.error_agnostic_features(data));
                let features = result?;
                times.error_agnostic_ms = Some(ms);
                self.counters.agnostic_misses += 1;
                pressio_obs::add_counter("evaluator:agnostic.miss", 1);
                pressio_obs::record_ms("evaluator:error_agnostic", ms);
                self.agnostic.insert(data_key.to_string(), features.clone());
                features
            }
        };
        let dep_key = (data_key.to_string(), Self::error_settings_key(compressor));
        let dependent = match self.dependent.get(&dep_key) {
            Some(cached) => {
                self.counters.dependent_hits += 1;
                pressio_obs::add_counter("evaluator:dependent.hit", 1);
                cached.clone()
            }
            None => {
                let (result, ms) =
                    time_ms(|| self.scheme.error_dependent_features(data, compressor));
                let features = result?;
                times.error_dependent_ms = Some(ms);
                self.counters.dependent_misses += 1;
                pressio_obs::add_counter("evaluator:dependent.miss", 1);
                pressio_obs::record_ms("evaluator:error_dependent", ms);
                self.dependent.insert(dep_key, features.clone());
                features
            }
        };
        let mut merged = agnostic;
        merged.merge_from(&dependent);
        Ok((merged, times))
    }

    /// Apply a Figure-4-style invalidation list. Recognized entries:
    /// the special classes (`predictors:error_agnostic`,
    /// `predictors:error_dependent`, `predictors:runtime`,
    /// `predictors:nondeterministic`), a dataset key (clears both classes
    /// for that dataset), or a concrete setting name (clears the
    /// error-dependent class, conservatively).
    pub fn invalidate(&mut self, keys: &[&str]) {
        for &key in keys {
            match key {
                invalidations::ERROR_AGNOSTIC => self.agnostic.clear(),
                invalidations::ERROR_DEPENDENT
                | invalidations::RUNTIME
                | invalidations::NONDETERMINISTIC => self.dependent.clear(),
                invalidations::TRAINING => { /* training results are not cached here */ }
                other => {
                    if self.agnostic.contains_key(other) {
                        self.agnostic.remove(other);
                        self.dependent.retain(|(dk, _), _| dk != other);
                    } else {
                        // a concrete compressor setting changed
                        self.dependent.clear();
                    }
                }
            }
        }
    }

    /// Cache statistics.
    pub fn counters(&self) -> CacheCounters {
        self.counters
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schemes::KrasowskaScheme;
    use pressio_core::Options as Opts;
    use pressio_sz::SzCompressor;

    fn data() -> Data {
        Data::from_f32(
            vec![32, 32],
            (0..1024).map(|i| (i as f32 * 0.01).sin()).collect(),
        )
    }

    fn sz(abs: f64) -> SzCompressor {
        let mut c = SzCompressor::new();
        c.set_options(&Opts::new().with("pressio:abs", abs))
            .unwrap();
        c
    }

    #[test]
    fn repeated_queries_hit_both_caches() {
        let mut ev = CachedEvaluator::new(Box::new(KrasowskaScheme));
        let d = data();
        let c = sz(1e-4);
        let (_, t1) = ev.features("d0", &d, &c).unwrap();
        assert!(t1.error_agnostic_ms.is_some());
        assert!(t1.error_dependent_ms.is_some());
        let (_, t2) = ev.features("d0", &d, &c).unwrap();
        assert_eq!(t2, FeatureTimes::default(), "second call must be all-cache");
        let counters = ev.counters();
        assert_eq!(counters.agnostic_hits, 1);
        assert_eq!(counters.dependent_hits, 1);
    }

    #[test]
    fn changing_error_bound_misses_only_dependent_cache() {
        let mut ev = CachedEvaluator::new(Box::new(KrasowskaScheme));
        let d = data();
        ev.features("d0", &d, &sz(1e-4)).unwrap();
        let (_, t) = ev.features("d0", &d, &sz(1e-2)).unwrap();
        assert!(t.error_agnostic_ms.is_none(), "agnostic must be reused");
        assert!(t.error_dependent_ms.is_some(), "dependent must recompute");
    }

    #[test]
    fn changing_runtime_setting_hits_dependent_cache() {
        // sz3:predictor is declared runtime-only, not error-affecting
        let mut ev = CachedEvaluator::new(Box::new(KrasowskaScheme));
        let d = data();
        let mut a = sz(1e-4);
        a.set_options(&Opts::new().with("sz3:predictor", "lorenzo"))
            .unwrap();
        let mut b = sz(1e-4);
        b.set_options(&Opts::new().with("sz3:predictor", "interp"))
            .unwrap();
        ev.features("d0", &d, &a).unwrap();
        let (_, t) = ev.features("d0", &d, &b).unwrap();
        assert!(
            t.error_dependent_ms.is_none(),
            "error-agnostic setting change must not invalidate"
        );
    }

    #[test]
    fn distinct_datasets_do_not_collide() {
        let mut ev = CachedEvaluator::new(Box::new(KrasowskaScheme));
        let d0 = data();
        let d1 = Data::from_f32(vec![16], (0..16).map(|i| i as f32).collect());
        let c = sz(1e-4);
        let (f0, _) = ev.features("d0", &d0, &c).unwrap();
        let (f1, _) = ev.features("d1", &d1, &c).unwrap();
        assert_ne!(
            f0.get_f64("qent:entropy").unwrap(),
            f1.get_f64("qent:entropy").unwrap()
        );
    }

    #[test]
    fn explicit_invalidation_forces_recompute() {
        let mut ev = CachedEvaluator::new(Box::new(KrasowskaScheme));
        let d = data();
        let c = sz(1e-4);
        ev.features("d0", &d, &c).unwrap();
        ev.invalidate(&[invalidations::ERROR_DEPENDENT]);
        let (_, t) = ev.features("d0", &d, &c).unwrap();
        assert!(t.error_dependent_ms.is_some());
        assert!(t.error_agnostic_ms.is_none());

        ev.invalidate(&[invalidations::ERROR_AGNOSTIC]);
        let (_, t) = ev.features("d0", &d, &c).unwrap();
        assert!(t.error_agnostic_ms.is_some());
    }

    #[test]
    fn dataset_key_invalidation_clears_both_classes() {
        let mut ev = CachedEvaluator::new(Box::new(KrasowskaScheme));
        let d = data();
        let c = sz(1e-4);
        ev.features("d0", &d, &c).unwrap();
        ev.invalidate(&["d0"]);
        let (_, t) = ev.features("d0", &d, &c).unwrap();
        assert!(t.error_agnostic_ms.is_some());
        assert!(t.error_dependent_ms.is_some());
    }

    #[test]
    fn concrete_setting_invalidation_clears_dependent() {
        let mut ev = CachedEvaluator::new(Box::new(KrasowskaScheme));
        let d = data();
        let c = sz(1e-4);
        ev.features("d0", &d, &c).unwrap();
        ev.invalidate(&["pressio:abs"]);
        let (_, t) = ev.features("d0", &d, &c).unwrap();
        assert!(t.error_agnostic_ms.is_none());
        assert!(t.error_dependent_ms.is_some());
    }
}
