//! Bandwidth / compression-time prediction (the paper's future-work item
//! 4: "some of the methods support predicting other metrics such as
//! bandwidth", and Jin's HDF5 work predicts compression and I/O time).
//!
//! Compression time is a **runtime** quantity (`predictors:runtime`
//! invalidation class): it depends on the machine and is
//! nondeterministic run to run, so the model is trained per machine on
//! observed timings and its predictions carry that caveat.

use crate::features::{feature_vector, global_stats};
use pressio_core::error::{Error, Result};
use pressio_core::{Data, Options};
use pressio_stats::{ForestParams, RandomForest};
use serde::{Deserialize, Serialize};

/// Feature keys the bandwidth model consumes.
fn keys() -> Vec<String> {
    vec![
        "bw:log_bytes".to_string(),
        "stat:std".to_string(),
        "stat:mean_abs_diff".to_string(),
        "stat:zero_fraction".to_string(),
        "stat:lorenzo_mae".to_string(),
        "bw:log_abs".to_string(),
    ]
}

/// Extract the bandwidth-model features for one dataset + error bound.
pub fn bandwidth_features(data: &Data, abs: f64) -> Options {
    let mut f = global_stats(data);
    f.set("bw:log_bytes", (data.size_in_bytes().max(1) as f64).log2());
    f.set("bw:log_abs", abs.max(1e-300).log10());
    f
}

/// A trained compression-bandwidth model for one (compressor, machine)
/// pair.
#[derive(Serialize, Deserialize)]
pub struct BandwidthModel {
    forest: Option<RandomForest>,
    feature_keys: Vec<String>,
}

impl Default for BandwidthModel {
    fn default() -> Self {
        Self::new()
    }
}

impl BandwidthModel {
    /// Untrained model.
    pub fn new() -> BandwidthModel {
        BandwidthModel {
            forest: None,
            feature_keys: keys(),
        }
    }

    /// Train on observed `(features, compression time in ms)` pairs
    /// (features from [`bandwidth_features`]).
    pub fn fit(&mut self, features: &[Options], times_ms: &[f64]) -> Result<()> {
        if features.is_empty() || features.len() != times_ms.len() {
            return Err(Error::NotFitted("no bandwidth observations".into()));
        }
        let rows: Vec<Vec<f64>> = features
            .iter()
            .map(|f| feature_vector(f, &self.feature_keys))
            .collect::<Result<_>>()?;
        let ys: Vec<f64> = times_ms
            .iter()
            .map(|&t| {
                if t > 0.0 && t.is_finite() {
                    Ok(t.log2())
                } else {
                    Err(Error::InvalidValue {
                        key: "time_ms".into(),
                        reason: format!("positive time required, got {t}"),
                    })
                }
            })
            .collect::<Result<_>>()?;
        self.forest = Some(RandomForest::fit(
            &rows,
            &ys,
            &ForestParams {
                num_trees: 30,
                ..Default::default()
            },
        ));
        Ok(())
    }

    /// Predicted compression time in milliseconds.
    pub fn predict_time_ms(&self, features: &Options) -> Result<f64> {
        let forest = self
            .forest
            .as_ref()
            .ok_or_else(|| Error::NotFitted("bandwidth model".into()))?;
        let x = feature_vector(features, &self.feature_keys)?;
        Ok(forest.predict(&x).exp2())
    }

    /// Predicted compression bandwidth in MB/s for a payload of
    /// `bytes`.
    pub fn predict_bandwidth_mbps(&self, features: &Options, bytes: usize) -> Result<f64> {
        let ms = self.predict_time_ms(features)?;
        Ok(bytes as f64 / 1e6 / (ms / 1e3).max(1e-9))
    }

    /// Serialize trained state.
    pub fn to_json(&self) -> Result<String> {
        serde_json::to_string(self).map_err(|e| Error::Serialization(e.to_string()))
    }

    /// Restore from [`BandwidthModel::to_json`].
    pub fn from_json(s: &str) -> Result<BandwidthModel> {
        serde_json::from_str(s).map_err(|e| Error::Serialization(e.to_string()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A deterministic "timing law" so the test is robust to machine load:
    /// time grows linearly in bytes and with data roughness.
    fn synthetic_time(f: &Options) -> f64 {
        let bytes = f.get_f64("bw:log_bytes").unwrap().exp2();
        let rough = f.get_f64("stat:mean_abs_diff").unwrap();
        bytes / 1e4 * (1.0 + rough) + 0.5
    }

    fn suite() -> (Vec<Options>, Vec<f64>) {
        let mut feats = Vec::new();
        let mut times = Vec::new();
        for k in 1..=12usize {
            let n = 16 * k;
            let data = Data::from_f32(
                vec![n, 16],
                (0..n * 16)
                    .map(|i| ((i % n) as f32 * 0.03 * k as f32).sin())
                    .collect(),
            );
            let f = bandwidth_features(&data, 1e-4);
            times.push(synthetic_time(&f));
            feats.push(f);
        }
        (feats, times)
    }

    #[test]
    fn learns_timing_law() {
        let (feats, times) = suite();
        let mut m = BandwidthModel::new();
        m.fit(&feats, &times).unwrap();
        let preds: Vec<f64> = feats
            .iter()
            .map(|f| m.predict_time_ms(f).unwrap())
            .collect();
        let med = pressio_stats::medape(&times, &preds).unwrap();
        assert!(med < 25.0, "bandwidth MedAPE {med}%");
    }

    #[test]
    fn bandwidth_is_bytes_over_time() {
        let (feats, times) = suite();
        let mut m = BandwidthModel::new();
        m.fit(&feats, &times).unwrap();
        let ms = m.predict_time_ms(&feats[0]).unwrap();
        let bw = m.predict_bandwidth_mbps(&feats[0], 2_000_000).unwrap();
        assert!((bw - 2.0 / (ms / 1e3)).abs() < 1e-9);
    }

    #[test]
    fn unfitted_model_errors() {
        let m = BandwidthModel::new();
        let (feats, _) = suite();
        assert!(matches!(
            m.predict_time_ms(&feats[0]),
            Err(Error::NotFitted(_))
        ));
    }

    #[test]
    fn rejects_degenerate_times() {
        let (feats, _) = suite();
        let mut m = BandwidthModel::new();
        assert!(m.fit(&feats, &vec![0.0; feats.len()]).is_err());
        assert!(m.fit(&[], &[]).is_err());
    }

    #[test]
    fn state_round_trip() {
        let (feats, times) = suite();
        let mut m = BandwidthModel::new();
        m.fit(&feats, &times).unwrap();
        let restored = BandwidthModel::from_json(&m.to_json().unwrap()).unwrap();
        assert_eq!(
            m.predict_time_ms(&feats[3]).unwrap(),
            restored.predict_time_ms(&feats[3]).unwrap()
        );
    }
}
