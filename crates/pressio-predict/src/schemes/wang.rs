//! `wang2023` — ZPerf (Wang 2023): a statistical gray-box stage model with
//! **counterfactual** capability (the Table 1 `counterfactuals` feature):
//! by decomposing compression into the stages common to compressors
//! (Cappello 2019) and estimating each stage separately, it can predict
//! the performance of compressor *variants that were never run* — e.g.
//! "what would SZ achieve with an interpolation predictor on this data?" —
//! letting compressor designers discard unfruitful designs early (§2.1).

use crate::predictor::{IdentityPredictor, Predictor};
use crate::scheme::{Scheme, SchemeInfo};
use crate::schemes::szmodel::estimate_sz_size_bytes;
use pressio_core::error::Result;
use pressio_core::{Compressor, Data, Options};
use pressio_sz::{predict_and_quantize, Predictor as SzPredictor};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// The Wang (2023) counterfactual stage-model scheme.
pub struct WangScheme {
    /// Number of sampled blocks per stage evaluation.
    pub block_count: usize,
    /// Edge of each sampled block.
    pub block_edge: usize,
    /// Sampling seed.
    pub seed: u64,
}

impl Default for WangScheme {
    fn default() -> Self {
        WangScheme {
            block_count: 10,
            block_edge: 14,
            seed: 0x3A6,
        }
    }
}

/// The prediction-stage designs the model can evaluate counterfactually.
pub const DESIGNS: [SzPredictor; 3] = [
    SzPredictor::Lorenzo,
    SzPredictor::Regression,
    SzPredictor::Interp,
];

impl WangScheme {
    /// Estimate the ratio an SZ pipeline with `design` as its prediction
    /// stage would achieve — without running that pipeline end to end.
    pub fn estimate_design(&self, data: &Data, abs: f64, design: SzPredictor) -> Result<f64> {
        let dims = data.dims();
        let shape: Vec<usize> = dims.iter().map(|&d| d.min(self.block_edge)).collect();
        let mut rng = StdRng::seed_from_u64(self.seed);
        let mut symbols = Vec::new();
        let mut unpred = 0usize;
        let mut total = 0usize;
        for _ in 0..self.block_count.max(1) {
            let origin: Vec<usize> = dims
                .iter()
                .zip(&shape)
                .map(|(&full, &b)| {
                    if full > b {
                        rng.gen_range(0..=full - b)
                    } else {
                        0
                    }
                })
                .collect();
            let block = data.slice_block(&origin, &shape)?;
            let values = block.to_f64_vec();
            let qs = predict_and_quantize(&values, block.dims(), abs, design, 6, false);
            unpred += qs.unpredictable.len();
            total += qs.symbols.len();
            symbols.extend(qs.symbols);
        }
        let n = data.num_elements();
        let unpred_frac = unpred as f64 / total.max(1) as f64;
        let mut size = estimate_sz_size_bytes(&symbols, n, unpred_frac, data.dtype().size());
        // stage-specific side streams: regression ships 4 f32 per block
        if design == SzPredictor::Regression {
            size += pressio_sz::regression::block_count(dims, 6) as f64 * 16.0;
        }
        Ok(data.size_in_bytes() as f64 / size)
    }
}

impl Scheme for WangScheme {
    fn info(&self) -> SchemeInfo {
        SchemeInfo {
            name: "wang2023",
            citation: "Wang 2023",
            // ZPerf builds on trained per-stage predictors (Lu/Qin models);
            // the paper's taxonomy marks it as training + sampling
            training: true,
            sampling: true,
            black_box: "no",
            goal: "accurate",
            metrics: "CR",
            approach: "calculation",
            features: "counterfactuals",
        }
    }

    fn supports(&self, compressor_id: &str) -> bool {
        compressor_id == "sz3"
    }

    fn error_agnostic_features(&self, _data: &Data) -> Result<Options> {
        Ok(Options::new())
    }

    /// Evaluates *all* prediction-stage designs: `wang:predicted_ratio` is
    /// the estimate for the compressor's configured design, and
    /// `wang:predicted_ratio_<design>` are the counterfactuals.
    fn error_dependent_features(
        &self,
        data: &Data,
        compressor: &dyn Compressor,
    ) -> Result<Options> {
        if !self.supports(compressor.id()) {
            return Err(pressio_core::Error::Unsupported(format!(
                "wang2023 models the SZ stage pipeline, not '{}'",
                compressor.id()
            )));
        }
        let opts = compressor.get_options();
        let abs = opts.get_f64("pressio:abs")?;
        let configured = opts.get_str_opt("sz3:predictor")?.unwrap_or("auto");
        let mut out = Options::new();
        let mut best = f64::MIN;
        let mut configured_ratio = None;
        for design in DESIGNS {
            let ratio = self.estimate_design(data, abs, design)?;
            out.set(format!("wang:predicted_ratio_{}", design.name()), ratio);
            best = best.max(ratio);
            if design.name() == configured {
                configured_ratio = Some(ratio);
            }
        }
        // "auto" picks the best design, which is what SZ's selection does
        out.set("wang:predicted_ratio", configured_ratio.unwrap_or(best));
        Ok(out)
    }

    fn make_predictor(&self) -> Box<dyn Predictor> {
        Box::new(IdentityPredictor::new("wang:predicted_ratio"))
    }

    fn feature_keys(&self) -> Vec<String> {
        let mut keys = vec!["wang:predicted_ratio".to_string()];
        keys.extend(
            DESIGNS
                .iter()
                .map(|d| format!("wang:predicted_ratio_{}", d.name())),
        );
        keys
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pressio_core::Options as Opts;
    use pressio_sz::SzCompressor;

    fn smooth(n: usize) -> Data {
        Data::from_f32(
            vec![n, n, 4],
            (0..n * n * 4)
                .map(|i| {
                    let x = (i % n) as f32;
                    let y = ((i / n) % n) as f32;
                    (x * 0.05).sin() * (y * 0.04).cos() * 2.0
                })
                .collect(),
        )
    }

    fn sz(abs: f64, predictor: &str) -> SzCompressor {
        let mut c = SzCompressor::new();
        c.set_options(
            &Opts::new()
                .with("pressio:abs", abs)
                .with("sz3:predictor", predictor),
        )
        .unwrap();
        c
    }

    #[test]
    fn counterfactual_features_present_for_all_designs() {
        let scheme = WangScheme::default();
        let f = scheme
            .error_dependent_features(&smooth(40), &sz(1e-4, "auto"))
            .unwrap();
        for design in ["lorenzo", "regression", "interp"] {
            assert!(
                f.get_f64(&format!("wang:predicted_ratio_{design}"))
                    .unwrap()
                    > 0.0,
                "{design}"
            );
        }
        assert!(f.get_f64("wang:predicted_ratio").unwrap() > 0.0);
    }

    #[test]
    fn counterfactual_ranking_matches_reality() {
        // the design the model ranks best should actually be (near-)best
        // when each variant is really run — the "discard unfruitful
        // designs early" use case
        let data = smooth(40);
        let scheme = WangScheme::default();
        let abs = 1e-4;
        let mut predicted = Vec::new();
        let mut actual = Vec::new();
        for design in DESIGNS {
            predicted.push(scheme.estimate_design(&data, abs, design).unwrap());
            let comp = sz(abs, design.name());
            let c = comp.compress(&data).unwrap();
            actual.push(data.size_in_bytes() as f64 / c.len() as f64);
        }
        let pred_best = predicted
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
            .unwrap()
            .0;
        let best_actual = actual.iter().cloned().fold(f64::MIN, f64::max);
        assert!(
            actual[pred_best] > best_actual * 0.7,
            "picked design achieves {:.1} vs best {:.1} (predicted {predicted:?}, actual {actual:?})",
            actual[pred_best],
            best_actual
        );
    }

    #[test]
    fn configured_predictor_selects_matching_estimate() {
        let data = smooth(24);
        let scheme = WangScheme::default();
        let f = scheme
            .error_dependent_features(&data, &sz(1e-4, "interp"))
            .unwrap();
        assert_eq!(
            f.get_f64("wang:predicted_ratio").unwrap(),
            f.get_f64("wang:predicted_ratio_interp").unwrap()
        );
    }

    #[test]
    fn rejects_non_sz() {
        let scheme = WangScheme::default();
        assert!(!scheme.supports("zfp"));
        let zfp = pressio_zfp::ZfpCompressor::new();
        assert!(scheme.error_dependent_features(&smooth(8), &zfp).is_err());
    }
}
