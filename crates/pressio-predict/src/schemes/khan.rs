//! `khan2023` — SECRE (Khan 2023): surrogate-based error-controlled ratio
//! estimation. Models the *stages* of the compressor like Jin, but couples
//! the stage surrogates with tight block sampling so the whole estimate
//! costs a few percent of a real compression (Table 2: ~5 ms vs 322 ms).
//! Gray-box: uses compressor internals for both SZ and ZFP.

use crate::predictor::{IdentityPredictor, Predictor};
use crate::scheme::{Scheme, SchemeInfo};
use pressio_core::error::Result;
use pressio_core::{Compressor, Data, Options};
use pressio_lossless::huffman::{histogram, Codebook};
use pressio_lossless::BitWriter;
use pressio_sz::{predict_and_quantize, Predictor as SzPredictor};
use pressio_zfp::block::{encode_block, Mode};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// The Khan (2023) SECRE scheme.
pub struct KhanScheme {
    /// Number of sampled blocks.
    pub block_count: usize,
    /// Edge of each sampled block (SZ path; ZFP uses native 4^d blocks).
    pub block_edge: usize,
    /// Sampling seed.
    pub seed: u64,
}

impl Default for KhanScheme {
    fn default() -> Self {
        KhanScheme {
            block_count: 12,
            block_edge: 12,
            seed: 0x5EC2E,
        }
    }
}

impl KhanScheme {
    fn sample_origins(
        &self,
        dims: &[usize],
        shape: &[usize],
        align: usize,
        rng: &mut StdRng,
    ) -> Vec<Vec<usize>> {
        (0..self.block_count.max(1))
            .map(|_| {
                dims.iter()
                    .zip(shape)
                    .map(|(&full, &b)| {
                        if full > b {
                            let max_o = (full - b) / align;
                            rng.gen_range(0..=max_o) * align
                        } else {
                            0
                        }
                    })
                    .collect()
            })
            .collect()
    }

    /// SZ surrogate: quantize sampled blocks (stage 1–2), model the encoder
    /// (stage 3) by Huffman expected code length of the pooled histogram.
    fn estimate_sz(&self, data: &Data, abs: f64) -> Result<f64> {
        let dims = data.dims();
        let shape: Vec<usize> = dims.iter().map(|&d| d.min(self.block_edge)).collect();
        let mut rng = StdRng::seed_from_u64(self.seed);
        let mut symbols = Vec::new();
        let mut unpred = 0usize;
        let mut total = 0usize;
        for origin in self.sample_origins(dims, &shape, 1, &mut rng) {
            let block = data.slice_block(&origin, &shape)?;
            let values = block.to_f64_vec();
            let qs =
                predict_and_quantize(&values, block.dims(), abs, SzPredictor::Lorenzo, 6, false);
            unpred += qs.unpredictable.len();
            total += qs.symbols.len();
            symbols.extend(qs.symbols);
        }
        let freqs = histogram(&symbols);
        let book = Codebook::from_frequencies(&freqs);
        let bits_per_symbol = book.expected_code_length(&freqs);
        let n = data.num_elements() as f64;
        let unpred_frac = unpred as f64 / total.max(1) as f64;
        let size = n * bits_per_symbol / 8.0
            + n * unpred_frac * data.dtype().size() as f64
            + freqs.len() as f64 * 38.0 / 8.0
            + 76.0;
        Ok(data.size_in_bytes() as f64 / size.max(1.0))
    }

    /// ZFP surrogate: run the real per-block coder on a sample of aligned
    /// 4^d blocks and extrapolate bits/value to the whole volume.
    fn estimate_zfp(&self, data: &Data, abs: f64) -> Result<f64> {
        let dims = data.dims();
        let d = dims.len().clamp(1, 3);
        let shape: Vec<usize> = dims.iter().take(3).map(|&v| v.min(4)).collect();
        let mut rng = StdRng::seed_from_u64(self.seed);
        // collapse >3-d like the codec does
        let nd: Vec<usize> = match dims.len() {
            0..=3 => dims.to_vec(),
            _ => {
                let mut v = dims[..2].to_vec();
                v.push(dims[2..].iter().product());
                v
            }
        };
        let full = Data::from_f64(nd.clone(), data.to_f64_vec());
        let mut bits = 0usize;
        let mut samples = 0usize;
        for origin in self.sample_origins(&nd, &shape, 4, &mut rng) {
            let block = full.slice_block(&origin, &shape)?;
            // pad to a full 4^d block by edge replication, as the codec does
            let padded = pad_block(&block.to_f64_vec(), block.dims(), d);
            let mut w = BitWriter::new();
            encode_block(&padded, d, Mode::Accuracy(abs), &mut w);
            bits += w.len_bits();
            samples += 1;
        }
        let block_elems = 1usize << (2 * d);
        let bits_per_value = bits as f64 / (samples * block_elems).max(1) as f64;
        let n = data.num_elements() as f64;
        let size = n * bits_per_value / 8.0 + 96.0;
        Ok(data.size_in_bytes() as f64 / size.max(1.0))
    }
}

/// Replicate-pad a (possibly partial) block to 4^d.
fn pad_block(values: &[f64], dims: &[usize], d: usize) -> Vec<f64> {
    let nx = dims.first().copied().unwrap_or(1).max(1);
    let ny = dims.get(1).copied().unwrap_or(1).max(1);
    let nz = dims.get(2).copied().unwrap_or(1).max(1);
    let zr = if d >= 3 { 4 } else { 1 };
    let yr = if d >= 2 { 4 } else { 1 };
    let mut out = Vec::with_capacity(1 << (2 * d));
    for z in 0..zr {
        let zc = z.min(nz - 1);
        for y in 0..yr {
            let yc = y.min(ny - 1);
            for x in 0..4 {
                let xc = x.min(nx - 1);
                out.push(values[(zc * ny + yc) * nx + xc]);
            }
        }
    }
    out
}

impl Scheme for KhanScheme {
    fn info(&self) -> SchemeInfo {
        SchemeInfo {
            name: "khan2023",
            citation: "Khan 2023",
            training: false,
            sampling: true,
            black_box: "no",
            goal: "fast",
            metrics: "CR",
            approach: "calculation",
            features: "",
        }
    }

    fn supports(&self, compressor_id: &str) -> bool {
        matches!(compressor_id, "sz3" | "zfp")
    }

    fn error_agnostic_features(&self, _data: &Data) -> Result<Options> {
        Ok(Options::new())
    }

    fn error_dependent_features(
        &self,
        data: &Data,
        compressor: &dyn Compressor,
    ) -> Result<Options> {
        let abs = compressor.get_options().get_f64("pressio:abs")?;
        let ratio = match compressor.id() {
            "sz3" => self.estimate_sz(data, abs)?,
            "zfp" => self.estimate_zfp(data, abs)?,
            other => {
                return Err(pressio_core::Error::Unsupported(format!(
                    "khan2023 models sz3/zfp, not '{other}'"
                )))
            }
        };
        Ok(Options::new().with("khan:predicted_ratio", ratio))
    }

    fn make_predictor(&self) -> Box<dyn Predictor> {
        Box::new(IdentityPredictor::new("khan:predicted_ratio"))
    }

    fn feature_keys(&self) -> Vec<String> {
        vec!["khan:predicted_ratio".to_string()]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pressio_core::Options as Opts;
    use pressio_sz::SzCompressor;
    use pressio_zfp::ZfpCompressor;
    use std::time::Instant;

    fn smooth(n: usize, nz: usize) -> Data {
        Data::from_f32(
            vec![n, n, nz],
            (0..n * n * nz)
                .map(|i| {
                    let x = (i % n) as f32;
                    let y = ((i / n) % n) as f32;
                    (x * 0.08).sin() * (y * 0.06).cos()
                })
                .collect(),
        )
    }

    #[test]
    fn sz_estimate_within_factor_two_on_smooth_data() {
        let data = smooth(48, 8);
        let mut sz = SzCompressor::new();
        sz.set_options(
            &Opts::new()
                .with("pressio:abs", 1e-4)
                .with("sz3:predictor", "lorenzo"),
        )
        .unwrap();
        let scheme = KhanScheme::default();
        let pred = scheme
            .error_dependent_features(&data, &sz)
            .unwrap()
            .get_f64("khan:predicted_ratio")
            .unwrap();
        let truth = data.size_in_bytes() as f64 / sz.compress(&data).unwrap().len() as f64;
        assert!(
            pred > truth / 2.0 && pred < truth * 2.0,
            "pred {pred} vs truth {truth}"
        );
    }

    #[test]
    fn zfp_estimate_within_factor_two() {
        let data = smooth(48, 8);
        let mut zfp = ZfpCompressor::new();
        zfp.set_options(&Opts::new().with("pressio:abs", 1e-4))
            .unwrap();
        let scheme = KhanScheme::default();
        let pred = scheme
            .error_dependent_features(&data, &zfp)
            .unwrap()
            .get_f64("khan:predicted_ratio")
            .unwrap();
        let truth = data.size_in_bytes() as f64 / zfp.compress(&data).unwrap().len() as f64;
        assert!(
            pred > truth / 2.0 && pred < truth * 2.0,
            "pred {pred} vs truth {truth}"
        );
    }

    #[test]
    fn estimation_is_much_faster_than_compression() {
        let data = smooth(96, 32);
        let sz = SzCompressor::new();
        let scheme = KhanScheme::default();
        let t0 = Instant::now();
        let _ = scheme.error_dependent_features(&data, &sz).unwrap();
        let est = t0.elapsed();
        let t0 = Instant::now();
        let _ = sz.compress(&data).unwrap();
        let comp = t0.elapsed();
        assert!(
            est.as_secs_f64() < comp.as_secs_f64() / 2.0,
            "estimate {est:?} not ≪ compress {comp:?}"
        );
    }

    #[test]
    fn unsupported_compressor_errors() {
        struct Fake;
        impl Compressor for Fake {
            fn id(&self) -> &'static str {
                "fake"
            }
            fn set_options(&mut self, _: &Options) -> Result<()> {
                Ok(())
            }
            fn get_options(&self) -> Options {
                Options::new().with("pressio:abs", 1e-3)
            }
            fn get_configuration(&self) -> Options {
                Options::new()
            }
            fn compress(&self, _: &Data) -> Result<Vec<u8>> {
                Ok(vec![])
            }
            fn decompress(&self, _: &[u8], _: pressio_core::Dtype, _: &[usize]) -> Result<Data> {
                unimplemented!()
            }
            fn clone_box(&self) -> Box<dyn Compressor> {
                Box::new(Fake)
            }
        }
        let scheme = KhanScheme::default();
        assert!(!scheme.supports("fake"));
        assert!(scheme
            .error_dependent_features(&smooth(8, 4), &Fake)
            .is_err());
    }

    #[test]
    fn tiny_data_does_not_panic() {
        let data = Data::from_f32(vec![3, 2], vec![1.0; 6]);
        let sz = SzCompressor::new();
        let zfp = ZfpCompressor::new();
        let scheme = KhanScheme::default();
        assert!(scheme.error_dependent_features(&data, &sz).is_ok());
        assert!(scheme.error_dependent_features(&data, &zfp).is_ok());
    }
}
