//! `qin2020` — deep-neural-network estimation of lossy compressibility
//! (Qin 2020, IEEE LOCS): the same internals-derived feature family as
//! Lu (2018) fed to a small MLP (Table 1: deep learning, accurate,
//! training + sampling, not black-box).

use crate::features::{global_stats, sz_quantization_profile};
use crate::predictor::{MlpPredictor, Predictor};
use crate::scheme::{Scheme, SchemeInfo};
use pressio_core::error::Result;
use pressio_core::{Compressor, Data, Options};

/// The Qin (2020) deep-learning scheme.
pub struct QinScheme {
    /// Stride used to sample the data for the quantization profile.
    pub sample_stride: usize,
}

impl Default for QinScheme {
    fn default() -> Self {
        QinScheme { sample_stride: 4 }
    }
}

impl Scheme for QinScheme {
    fn info(&self) -> SchemeInfo {
        SchemeInfo {
            name: "qin2020",
            citation: "Qin 2020",
            training: true,
            sampling: true,
            black_box: "no",
            goal: "accurate",
            metrics: "CR",
            approach: "deep learning",
            features: "",
        }
    }

    fn supports(&self, compressor_id: &str) -> bool {
        matches!(compressor_id, "sz3" | "zfp")
    }

    fn error_agnostic_features(&self, data: &Data) -> Result<Options> {
        Ok(global_stats(data))
    }

    fn error_dependent_features(
        &self,
        data: &Data,
        compressor: &dyn Compressor,
    ) -> Result<Options> {
        let abs = compressor.get_options().get_f64("pressio:abs")?;
        let mut f = sz_quantization_profile(data, abs, self.sample_stride);
        f.set("qin:log_abs", abs.max(1e-300).log10());
        Ok(f)
    }

    fn make_predictor(&self) -> Box<dyn Predictor> {
        Box::new(MlpPredictor::new(self.feature_keys()))
    }

    fn feature_keys(&self) -> Vec<String> {
        vec![
            "quant:code_entropy".to_string(),
            "quant:unpredictable_fraction".to_string(),
            "quant:zero_code_fraction".to_string(),
            "stat:std".to_string(),
            "stat:mean_abs_diff".to_string(),
            "stat:zero_fraction".to_string(),
            "qin:log_abs".to_string(),
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pressio_core::Options as Opts;
    use pressio_sz::SzCompressor;

    #[test]
    fn mlp_scheme_fits_and_predicts() {
        let scheme = QinScheme::default();
        let mut sz = SzCompressor::new();
        sz.set_options(&Opts::new().with("pressio:abs", 1e-4))
            .unwrap();
        let datasets: Vec<Data> = (1..=12usize)
            .map(|k| {
                let n = 24;
                Data::from_f32(
                    vec![n, n],
                    (0..n * n)
                        .map(|i| ((i % n) as f32 * 0.015 * k as f32).sin() * 3.0)
                        .collect(),
                )
            })
            .collect();
        let mut feats = Vec::new();
        let mut targets = Vec::new();
        for d in &datasets {
            let mut f = scheme.error_agnostic_features(d).unwrap();
            f.merge_from(&scheme.error_dependent_features(d, &sz).unwrap());
            feats.push(f);
            targets.push(scheme.training_observation(d, &sz).unwrap());
        }
        let mut p = scheme.make_predictor();
        p.fit(&feats, &targets).unwrap();
        let preds: Vec<f64> = feats.iter().map(|f| p.predict(f).unwrap()).collect();
        let med = pressio_stats::medape(&targets, &preds).unwrap();
        assert!(med < 60.0, "qin2020 in-sample MedAPE {med}%");
    }
}
