//! `ganguli2023` — lightweight effective compressibility estimation
//! (Ganguli 2023): three bespoke spatial metrics (correlation, diversity,
//! smoothness) plus coding gain and a distortion term, fed to a mixture
//! model with **conformal prediction** for statistically guaranteed bounds
//! on the estimate — the "bounded" feature of Table 1 that makes it suited
//! to the HDF5 parallel-write use case (§2.1).

use crate::features::{quantized_entropy_features, spatial_features};
use crate::predictor::{ConformalForestPredictor, Predictor};
use crate::scheme::{Scheme, SchemeInfo};
use pressio_core::error::Result;
use pressio_core::{Compressor, Data, Options};

/// The Ganguli (2023) bounded-estimation scheme.
#[derive(Default)]
pub struct GanguliScheme;

impl Scheme for GanguliScheme {
    fn info(&self) -> SchemeInfo {
        SchemeInfo {
            name: "ganguli2023",
            citation: "Ganguli 2023",
            training: true,
            sampling: false,
            black_box: "yes",
            goal: "accurate",
            metrics: "CR",
            approach: "regression",
            features: "bounded",
        }
    }

    fn supports(&self, _compressor_id: &str) -> bool {
        true
    }

    fn error_agnostic_features(&self, data: &Data) -> Result<Options> {
        Ok(spatial_features(data))
    }

    fn error_dependent_features(
        &self,
        data: &Data,
        compressor: &dyn Compressor,
    ) -> Result<Options> {
        // "general distortion" term: entropy after quantization at the bound
        let abs = compressor.get_options().get_f64("pressio:abs")?;
        Ok(quantized_entropy_features(data, abs))
    }

    fn make_predictor(&self) -> Box<dyn Predictor> {
        Box::new(ConformalForestPredictor::new(self.feature_keys()))
    }

    fn feature_keys(&self) -> Vec<String> {
        vec![
            "spatial:correlation".to_string(),
            "spatial:diversity".to_string(),
            "spatial:smoothness".to_string(),
            "spatial:coding_gain".to_string(),
            "qent:entropy".to_string(),
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pressio_core::Options as Opts;
    use pressio_sz::SzCompressor;

    #[test]
    fn provides_conformal_intervals_that_cover() {
        let scheme = GanguliScheme;
        let mut sz = SzCompressor::new();
        sz.set_options(&Opts::new().with("pressio:abs", 1e-4))
            .unwrap();
        let datasets: Vec<Data> = (1..=24usize)
            .map(|k| {
                let n = 24;
                Data::from_f32(
                    vec![n, n],
                    (0..n * n)
                        .map(|i| ((i % n) as f32 * 0.01 * k as f32 * k as f32).sin())
                        .collect(),
                )
            })
            .collect();
        let mut feats = Vec::new();
        let mut targets = Vec::new();
        for d in &datasets {
            let mut f = scheme.error_agnostic_features(d).unwrap();
            f.merge_from(&scheme.error_dependent_features(d, &sz).unwrap());
            feats.push(f);
            targets.push(scheme.training_observation(d, &sz).unwrap());
        }
        let mut p = scheme.make_predictor();
        p.fit(&feats, &targets).unwrap();
        let mut covered = 0usize;
        for (f, &t) in feats.iter().zip(&targets) {
            let iv = p.predict_interval(f, 0.2).expect("interval expected");
            assert!(iv.lo > 0.0, "compression-ratio bound must stay positive");
            if iv.lo <= t && t <= iv.hi {
                covered += 1;
            }
        }
        assert!(
            covered as f64 / targets.len() as f64 > 0.6,
            "coverage {covered}/{}",
            targets.len()
        );
    }

    #[test]
    fn table1_row_is_bounded() {
        assert_eq!(GanguliScheme.info().features, "bounded");
    }
}
