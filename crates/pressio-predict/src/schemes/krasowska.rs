//! `krasowska2021` — quantized entropy + variogram with linear regression
//! (Krasowska 2021, DRBSD-7): the first fully black-box predictor, using no
//! compressor internals beyond the notion of an absolute error bound.

use crate::features::{quantized_entropy_features, variogram_features};
use crate::predictor::{LinearPredictor, Predictor};
use crate::scheme::{Scheme, SchemeInfo};
use pressio_core::error::Result;
use pressio_core::{Compressor, Data, Options};

/// The Krasowska (2021) black-box regression scheme.
#[derive(Default)]
pub struct KrasowskaScheme;

impl Scheme for KrasowskaScheme {
    fn info(&self) -> SchemeInfo {
        SchemeInfo {
            name: "krasowska2021",
            citation: "Krasowska 2021",
            training: true,
            sampling: false,
            black_box: "yes",
            goal: "accurate",
            metrics: "CR",
            approach: "regression",
            features: "",
        }
    }

    fn supports(&self, _compressor_id: &str) -> bool {
        true // fully black-box
    }

    fn error_agnostic_features(&self, data: &Data) -> Result<Options> {
        Ok(variogram_features(data))
    }

    fn error_dependent_features(
        &self,
        data: &Data,
        compressor: &dyn Compressor,
    ) -> Result<Options> {
        let abs = compressor.get_options().get_f64("pressio:abs")?;
        Ok(quantized_entropy_features(data, abs))
    }

    fn make_predictor(&self) -> Box<dyn Predictor> {
        Box::new(LinearPredictor::new(self.feature_keys()))
    }

    fn feature_keys(&self) -> Vec<String> {
        vec!["qent:entropy".to_string(), "variogram:score".to_string()]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pressio_core::Options as Opts;
    use pressio_sz::SzCompressor;

    #[test]
    fn end_to_end_regression_tracks_ratio_ordering() {
        let scheme = KrasowskaScheme;
        let mut sz = SzCompressor::new();
        sz.set_options(&Opts::new().with("pressio:abs", 1e-4))
            .unwrap();
        // datasets of increasing roughness
        let datasets: Vec<Data> = (1..=8usize)
            .map(|k| {
                let n = 32;
                Data::from_f32(
                    vec![n, n],
                    (0..n * n)
                        .map(|i| ((i % n) as f32 * 0.03 * k as f32 * k as f32).sin())
                        .collect(),
                )
            })
            .collect();
        let mut feats = Vec::new();
        let mut targets = Vec::new();
        for d in &datasets {
            let mut f = scheme.error_agnostic_features(d).unwrap();
            f.merge_from(&scheme.error_dependent_features(d, &sz).unwrap());
            feats.push(f);
            targets.push(scheme.training_observation(d, &sz).unwrap());
        }
        let mut p = scheme.make_predictor();
        p.fit(&feats, &targets).unwrap();
        // the smoother dataset must be predicted more compressible
        let smooth_pred = p.predict(&feats[0]).unwrap();
        let rough_pred = p.predict(&feats[7]).unwrap();
        assert!(
            smooth_pred > rough_pred,
            "smooth {smooth_pred} !> rough {rough_pred} (targets {:.1} vs {:.1})",
            targets[0],
            targets[7]
        );
    }

    #[test]
    fn black_box_supports_everything() {
        let s = KrasowskaScheme;
        assert!(s.supports("sz3"));
        assert!(s.supports("zfp"));
        assert!(s.supports("anything_else"));
    }
}
