//! `underwood2023` — SVD truncation + cubic spline regression (Underwood &
//! Bessac 2023): evolves Krasowska by swapping the variogram for the SVD
//! truncation measure (global spatial information) and the linear fit for a
//! spline. The SVD makes its error-agnostic stage expensive (§6 measures
//! ~771 ms vs <43 ms error-dependent), so it pays off when many predictions
//! reuse the same data — the invalidation-reuse case the paper highlights.

use crate::features::{quantized_entropy_features, svd_features};
use crate::predictor::{Predictor, SplinePredictor};
use crate::scheme::{Scheme, SchemeInfo};
use pressio_core::error::Result;
use pressio_core::{Compressor, Data, Options};

/// The Underwood (2023) SVD + spline scheme.
#[derive(Default)]
pub struct UnderwoodScheme;

impl Scheme for UnderwoodScheme {
    fn info(&self) -> SchemeInfo {
        SchemeInfo {
            name: "underwood2023",
            citation: "Underwood 2023",
            training: true,
            sampling: false,
            black_box: "yes",
            goal: "accurate",
            metrics: "CR",
            approach: "regression",
            features: "",
        }
    }

    fn supports(&self, _compressor_id: &str) -> bool {
        true
    }

    fn error_agnostic_features(&self, data: &Data) -> Result<Options> {
        Ok(svd_features(data))
    }

    fn error_dependent_features(
        &self,
        data: &Data,
        compressor: &dyn Compressor,
    ) -> Result<Options> {
        let abs = compressor.get_options().get_f64("pressio:abs")?;
        Ok(quantized_entropy_features(data, abs))
    }

    fn make_predictor(&self) -> Box<dyn Predictor> {
        // spline over the error-dependent entropy, linear in the SVD term
        Box::new(SplinePredictor::new(
            "qent:entropy",
            vec!["svd:truncation".to_string()],
        ))
    }

    fn feature_keys(&self) -> Vec<String> {
        vec!["qent:entropy".to_string(), "svd:truncation".to_string()]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pressio_core::Options as Opts;
    use pressio_sz::SzCompressor;
    use std::time::Instant;

    fn wave(n: usize, freq: f32) -> Data {
        Data::from_f32(
            vec![n, n],
            (0..n * n)
                .map(|i| ((i % n) as f32 * freq).sin() * ((i / n) as f32 * freq * 0.7).cos())
                .collect(),
        )
    }

    #[test]
    fn error_agnostic_stage_is_the_expensive_one() {
        let scheme = UnderwoodScheme;
        let data = wave(64, 0.05);
        let sz = SzCompressor::new();
        let t0 = Instant::now();
        let _ = scheme.error_agnostic_features(&data).unwrap();
        let agnostic = t0.elapsed();
        let t0 = Instant::now();
        let _ = scheme.error_dependent_features(&data, &sz).unwrap();
        let dependent = t0.elapsed();
        assert!(
            agnostic > dependent,
            "SVD stage {agnostic:?} should dominate entropy stage {dependent:?}"
        );
    }

    #[test]
    fn spline_fit_and_predict_end_to_end() {
        let scheme = UnderwoodScheme;
        let mut sz = SzCompressor::new();
        sz.set_options(&Opts::new().with("pressio:abs", 1e-4))
            .unwrap();
        let datasets: Vec<Data> = (1..=10usize).map(|k| wave(32, 0.02 * k as f32)).collect();
        let mut feats = Vec::new();
        let mut targets = Vec::new();
        for d in &datasets {
            let mut f = scheme.error_agnostic_features(d).unwrap();
            f.merge_from(&scheme.error_dependent_features(d, &sz).unwrap());
            feats.push(f);
            targets.push(scheme.training_observation(d, &sz).unwrap());
        }
        let mut p = scheme.make_predictor();
        p.fit(&feats, &targets).unwrap();
        let preds: Vec<f64> = feats.iter().map(|f| p.predict(f).unwrap()).collect();
        let med = pressio_stats::medape(&targets, &preds).unwrap();
        assert!(med < 60.0, "in-sample MedAPE {med}%");
    }
}
