//! Shared analytic model of the SZ encoding stages, used by the Jin (2022)
//! ratio-quality scheme and the Wang (2023) counterfactual stage model:
//! quantization-code distribution → Huffman encoding efficiency →
//! dictionary-stage efficiency on the modal-code runs.

use pressio_lossless::huffman::{histogram, Codebook};

/// Estimate the compressed size in bytes from the quantization stage's
/// output statistics, without running the encoder.
///
/// * `symbols` — quantization symbols (sampled or full).
/// * `total_elements` — elements in the full dataset being modeled (the
///   symbol statistics are extrapolated to this count).
/// * `unpredictable_fraction` — fraction of escape-coded points.
/// * `value_size` — bytes per verbatim value (4 for f32).
pub fn estimate_sz_size_bytes(
    symbols: &[u32],
    total_elements: usize,
    unpredictable_fraction: f64,
    value_size: usize,
) -> f64 {
    let n = total_elements as f64;
    if symbols.is_empty() || total_elements == 0 {
        return 1.0;
    }
    let freqs = histogram(symbols);
    let book = Codebook::from_frequencies(&freqs);
    let sample_n = symbols.len() as f64;
    // modal code (overwhelmingly the zero-residual bin)
    let (modal_sym, modal_count) = freqs
        .iter()
        .copied()
        .max_by_key(|&(_, c)| c)
        .unwrap_or((0, 0));
    let p = modal_count as f64 / sample_n;
    let l0 = book.code_length(modal_sym).unwrap_or(1) as f64;
    let huffman_modal_bits = n * p * l0;
    // dictionary stage: one ~25-bit token per maximal modal run (≈ n(1−p)
    // runs under independence), plus the 258-byte match cap amortized
    let lzss_modal_bits = n * (1.0 - p) * 25.0 + n * p * l0 * 25.0 / (258.0 * 8.0);
    let modal_bits = huffman_modal_bits.min(lzss_modal_bits);
    let rest_bits: f64 = freqs
        .iter()
        .filter(|&&(s, _)| s != modal_sym)
        .map(|&(s, c)| (c as f64 / sample_n) * n * book.code_length(s).unwrap_or(32) as f64)
        .sum();
    let payload_bytes = (modal_bits + rest_bits) / 8.0;
    let table_bytes = freqs.len() as f64 * 38.0 / 8.0 + 12.0;
    let unpred_bytes = n * unpredictable_fraction * value_size as f64;
    let header_bytes = 64.0;
    (payload_bytes + table_bytes + unpred_bytes + header_bytes).max(1.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constant_symbols_estimate_near_token_floor() {
        let symbols = vec![7u32; 10_000];
        let size = estimate_sz_size_bytes(&symbols, 10_000, 0.0, 4);
        // modal run collapses: far below the 1-bit/symbol Huffman floor
        assert!(size < 10_000.0 / 8.0, "size {size}");
        assert!(size > 50.0, "still pays table+header: {size}");
    }

    #[test]
    fn uniform_symbols_estimate_near_entropy() {
        let symbols: Vec<u32> = (0..4096u32).map(|i| i % 16).collect();
        let size = estimate_sz_size_bytes(&symbols, 4096, 0.0, 4);
        // 16 equiprobable symbols = 4 bits each
        let expected = 4096.0 * 4.0 / 8.0;
        assert!(
            (size - expected).abs() < expected * 0.3,
            "{size} vs {expected}"
        );
    }

    #[test]
    fn unpredictable_points_add_verbatim_cost() {
        let symbols = vec![1u32; 1000];
        let clean = estimate_sz_size_bytes(&symbols, 1000, 0.0, 4);
        let dirty = estimate_sz_size_bytes(&symbols, 1000, 0.25, 4);
        assert!((dirty - clean - 1000.0 * 0.25 * 4.0).abs() < 1.0);
    }

    #[test]
    fn extrapolates_sample_statistics() {
        let symbols: Vec<u32> = (0..1000u32).map(|i| i % 4).collect();
        let small = estimate_sz_size_bytes(&symbols, 1000, 0.0, 4);
        let big = estimate_sz_size_bytes(&symbols, 10_000, 0.0, 4);
        // payload scales 10x, table/header (~95 bytes) do not
        let fixed = 4.0 * 38.0 / 8.0 + 12.0 + 64.0; // 4-symbol table + header
        let payload_small = small - fixed;
        let payload_big = big - fixed;
        assert!(
            (payload_big - 10.0 * payload_small).abs() < payload_small,
            "{small} -> {big} (payload {payload_small} -> {payload_big})"
        );
    }

    #[test]
    fn empty_inputs_do_not_divide_by_zero() {
        assert_eq!(estimate_sz_size_bytes(&[], 100, 0.0, 4), 1.0);
        assert_eq!(estimate_sz_size_bytes(&[1], 0, 0.0, 4), 1.0);
    }
}
