//! `rahman2023` — FXRZ (Rahman 2023, ICDE): a feature-driven random forest
//! over cheap error-agnostic dataset statistics plus the requested error
//! bound, with interpolation-based data augmentation to cut training cost.
//! The paper credits its **sparsity correction factor** for the best MedAPE
//! on Hurricane (§6); here that is the `stat:zero_fraction` feature family,
//! which the ablation bench can disable.

use crate::features::global_stats;
use crate::predictor::{ForestPredictor, Predictor};
use crate::scheme::{Scheme, SchemeInfo};
use pressio_core::error::Result;
use pressio_core::{Compressor, Data, Options};

/// The Rahman (2023) FXRZ scheme.
pub struct RahmanScheme {
    /// Include the sparsity-correction features (`stat:zero_fraction`).
    pub sparsity_correction: bool,
    /// Data-augmentation factor passed to the forest (synthetic:real).
    pub augmentation: f64,
}

impl Default for RahmanScheme {
    fn default() -> Self {
        RahmanScheme {
            sparsity_correction: true,
            augmentation: 2.0,
        }
    }
}

impl RahmanScheme {
    fn keys(&self) -> Vec<String> {
        let mut keys = vec![
            "stat:std".to_string(),
            "stat:value_range".to_string(),
            "stat:mean_abs_diff".to_string(),
            "stat:lorenzo_mae".to_string(),
            "rahman:log_abs".to_string(),
            "rahman:log_rel_bound".to_string(),
        ];
        if self.sparsity_correction {
            keys.push("stat:zero_fraction".to_string());
        }
        keys
    }
}

impl Scheme for RahmanScheme {
    fn info(&self) -> SchemeInfo {
        SchemeInfo {
            name: "rahman2023",
            citation: "Rahman 2023",
            training: true,
            sampling: true,
            black_box: "partial",
            goal: "fast",
            metrics: "various",
            approach: "machine learning",
            features: "",
        }
    }

    fn supports(&self, compressor_id: &str) -> bool {
        // black-box features + per-compressor training: any compressor
        matches!(compressor_id, "sz3" | "zfp")
    }

    fn error_agnostic_features(&self, data: &Data) -> Result<Options> {
        Ok(global_stats(data))
    }

    /// The "error-dependent" inputs cost nothing: they come from the
    /// requested settings, not from re-touching the data — which is why the
    /// paper's Table 2 lists FXRZ's error-dependent stage as N/A.
    fn error_dependent_features(
        &self,
        data: &Data,
        compressor: &dyn Compressor,
    ) -> Result<Options> {
        let abs = compressor.get_options().get_f64("pressio:abs")?;
        // relative bound = abs / value range (needs the agnostic stats to
        // already be merged at predict time; recompute range cheaply here
        // to stay self-contained)
        let range = {
            let v = data.to_f64_vec();
            let s = pressio_stats::summarize(&v);
            (s.max - s.min).max(1e-300)
        };
        Ok(Options::new()
            .with("rahman:log_abs", abs.max(1e-300).log10())
            .with("rahman:log_rel_bound", (abs / range).max(1e-300).log10()))
    }

    fn make_predictor(&self) -> Box<dyn Predictor> {
        let mut p = ForestPredictor::new(self.keys());
        p.augmentation = self.augmentation;
        Box::new(p)
    }

    fn feature_keys(&self) -> Vec<String> {
        self.keys()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pressio_core::Options as Opts;
    use pressio_sz::SzCompressor;

    fn fields() -> Vec<Data> {
        let mut out = Vec::new();
        // several smooth fields with varying roughness + sparse fields
        for k in 1..=6usize {
            let n = 32;
            let values: Vec<f32> = (0..n * n)
                .map(|i| {
                    let x = (i % n) as f32;
                    let y = (i / n) as f32;
                    (x * 0.05 * k as f32).sin() * (y * 0.04).cos() * k as f32
                })
                .collect();
            out.push(Data::from_f32(vec![n, n], values));
        }
        for k in 1..=4usize {
            let n = 32;
            let values: Vec<f32> = (0..n * n)
                .map(|i| {
                    if (i * 7 + k) % (40 * k) == 0 {
                        (i as f32 * 0.01).sin()
                    } else {
                        0.0
                    }
                })
                .collect();
            out.push(Data::from_f32(vec![n, n], values));
        }
        out
    }

    fn train_and_eval(scheme: &RahmanScheme) -> f64 {
        let sz = {
            let mut c = SzCompressor::new();
            c.set_options(&Opts::new().with("pressio:abs", 1e-4))
                .unwrap();
            c
        };
        let datasets = fields();
        let mut feats = Vec::new();
        let mut targets = Vec::new();
        for d in &datasets {
            let mut f = scheme.error_agnostic_features(d).unwrap();
            f.merge_from(&scheme.error_dependent_features(d, &sz).unwrap());
            feats.push(f);
            targets.push(scheme.training_observation(d, &sz).unwrap());
        }
        let mut p = scheme.make_predictor();
        assert!(p.requires_training());
        p.fit(&feats, &targets).unwrap();
        let preds: Vec<f64> = feats.iter().map(|f| p.predict(f).unwrap()).collect();
        pressio_stats::medape(&targets, &preds).unwrap()
    }

    #[test]
    fn fits_training_data_well() {
        let med = train_and_eval(&RahmanScheme::default());
        assert!(med < 40.0, "in-sample MedAPE {med}%");
    }

    #[test]
    fn sparsity_correction_toggles_feature_set() {
        let with = RahmanScheme::default();
        let without = RahmanScheme {
            sparsity_correction: false,
            ..Default::default()
        };
        assert!(with
            .feature_keys()
            .contains(&"stat:zero_fraction".to_string()));
        assert!(!without
            .feature_keys()
            .contains(&"stat:zero_fraction".to_string()));
    }

    #[test]
    fn error_dependent_inputs_are_setting_derived() {
        let scheme = RahmanScheme::default();
        let d = Data::from_f32(vec![16], (0..16).map(|i| i as f32).collect());
        let mut sz = SzCompressor::new();
        sz.set_options(&Opts::new().with("pressio:abs", 1e-3))
            .unwrap();
        let f = scheme.error_dependent_features(&d, &sz).unwrap();
        assert!((f.get_f64("rahman:log_abs").unwrap() - (-3.0)).abs() < 1e-9);
        assert!(f.get_f64("rahman:log_rel_bound").unwrap() < 0.0);
    }

    #[test]
    fn training_observation_is_true_ratio() {
        let scheme = RahmanScheme::default();
        let d = fields().remove(0);
        let sz = SzCompressor::new();
        let obs = scheme.training_observation(&d, &sz).unwrap();
        let truth = d.size_in_bytes() as f64 / sz.compress(&d).unwrap().len() as f64;
        assert!((obs - truth).abs() < 1e-9);
    }
}
