//! `tao2019` — block-sampling trial compression (Tao 2019, expanded in
//! Liang 2019): compress a handful of sampled blocks with the *actual*
//! compressor and report the average ratio. No training, not very accurate,
//! but only needs to preserve the ranking between compressors (§2.2).

use crate::predictor::{IdentityPredictor, Predictor};
use crate::scheme::{Scheme, SchemeInfo};
use pressio_core::error::Result;
use pressio_core::{Compressor, Data, Options};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// The Tao (2019) trial-based sampling scheme.
pub struct TaoScheme {
    /// Edge length of each sampled block.
    pub block_edge: usize,
    /// Number of sampled blocks.
    pub block_count: usize,
    /// Sampling seed (pinned: the metric is `predictors:nondeterministic`
    /// only if callers vary it).
    pub seed: u64,
}

impl Default for TaoScheme {
    fn default() -> Self {
        // block size chosen relative to compressor internals in the
        // original design; 16^d blocks cover whole SZ regression tiles and
        // multiple ZFP blocks
        TaoScheme {
            block_edge: 16,
            block_count: 8,
            seed: 0x7A0,
        }
    }
}

impl Scheme for TaoScheme {
    fn info(&self) -> SchemeInfo {
        SchemeInfo {
            name: "tao2019",
            citation: "Tao 2019",
            training: false,
            sampling: true,
            black_box: "partial",
            goal: "fast",
            metrics: "CR",
            approach: "trial-based",
            features: "",
        }
    }

    fn supports(&self, _compressor_id: &str) -> bool {
        true // trial-based: works with any compressor
    }

    fn error_agnostic_features(&self, _data: &Data) -> Result<Options> {
        Ok(Options::new())
    }

    fn error_dependent_features(
        &self,
        data: &Data,
        compressor: &dyn Compressor,
    ) -> Result<Options> {
        let dims = data.dims();
        let shape: Vec<usize> = dims.iter().map(|&d| d.min(self.block_edge)).collect();
        let mut rng = StdRng::seed_from_u64(self.seed);
        let mut uncompressed = 0usize;
        let mut compressed = 0usize;
        for _ in 0..self.block_count.max(1) {
            let origin: Vec<usize> = dims
                .iter()
                .zip(&shape)
                .map(|(&full, &b)| {
                    if full > b {
                        rng.gen_range(0..=full - b)
                    } else {
                        0
                    }
                })
                .collect();
            let block = data.slice_block(&origin, &shape)?;
            let bytes = compressor.compress(&block)?;
            uncompressed += block.size_in_bytes();
            compressed += bytes.len();
        }
        let ratio = uncompressed as f64 / compressed.max(1) as f64;
        Ok(Options::new().with("tao:sampled_ratio", ratio))
    }

    fn make_predictor(&self) -> Box<dyn Predictor> {
        Box::new(IdentityPredictor::new("tao:sampled_ratio"))
    }

    fn feature_keys(&self) -> Vec<String> {
        vec!["tao:sampled_ratio".to_string()]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pressio_sz::SzCompressor;

    fn smooth(n: usize) -> Data {
        Data::from_f32(
            vec![n, n],
            (0..n * n).map(|i| ((i % n) as f32 * 0.1).sin()).collect(),
        )
    }

    #[test]
    fn sampled_ratio_tracks_true_ratio_within_factor() {
        let data = smooth(64);
        let sz = SzCompressor::new();
        let scheme = TaoScheme::default();
        let f = scheme.error_dependent_features(&data, &sz).unwrap();
        let sampled = f.get_f64("tao:sampled_ratio").unwrap();
        let truth = data.size_in_bytes() as f64 / sz.compress(&data).unwrap().len() as f64;
        // trial sampling carries per-block header overhead, so on highly
        // compressible data it *underestimates* substantially — the paper
        // calls the method "not very accurate"; it only needs to preserve
        // compressor rankings. Expect the right order of magnitude.
        assert!(
            sampled > truth / 10.0 && sampled < truth * 10.0,
            "sampled {sampled} vs truth {truth}"
        );
        assert!(
            sampled > 1.0,
            "sampled ratio must still show compressibility"
        );
    }

    #[test]
    fn end_to_end_with_identity_predictor() {
        let data = smooth(32);
        let sz = SzCompressor::new();
        let scheme = TaoScheme::default();
        let f = scheme.error_dependent_features(&data, &sz).unwrap();
        let p = scheme.make_predictor();
        assert!(!p.requires_training());
        let pred = p.predict(&f).unwrap();
        assert!(pred > 1.0);
    }

    #[test]
    fn deterministic_given_seed() {
        let data = smooth(48);
        let sz = SzCompressor::new();
        let scheme = TaoScheme::default();
        let a = scheme.error_dependent_features(&data, &sz).unwrap();
        let b = scheme.error_dependent_features(&data, &sz).unwrap();
        assert_eq!(
            a.get_f64("tao:sampled_ratio").unwrap(),
            b.get_f64("tao:sampled_ratio").unwrap()
        );
    }

    #[test]
    fn small_data_blocks_clamped() {
        let data = smooth(4); // smaller than block_edge
        let sz = SzCompressor::new();
        let scheme = TaoScheme::default();
        let f = scheme.error_dependent_features(&data, &sz).unwrap();
        assert!(f.get_f64("tao:sampled_ratio").unwrap() > 0.0);
    }
}
