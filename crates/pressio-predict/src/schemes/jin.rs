//! `jin2022` — the ratio-quality analytic model (Jin 2022, ICDE): run the
//! cheap prediction + quantization stages of the SZ pipeline on the *full*
//! data, then *calculate* the encoded size from the quantization-code
//! distribution (Huffman encoding efficiency) instead of running the
//! expensive encoder. SZ-specific by construction — its ZFP cell in
//! Table 2 is N/A.

use crate::predictor::{IdentityPredictor, Predictor};
use crate::scheme::{Scheme, SchemeInfo};
use crate::schemes::szmodel::estimate_sz_size_bytes;
use pressio_core::error::Result;
use pressio_core::{Compressor, Data, Options};
use pressio_sz::{predict_and_quantize, Predictor as SzPredictor};

/// The Jin (2022) calculation-based scheme.
pub struct JinScheme {
    /// Which SZ predictor stage to model (must match the compressor's).
    pub sz_predictor: SzPredictor,
}

impl Default for JinScheme {
    fn default() -> Self {
        JinScheme {
            sz_predictor: SzPredictor::Lorenzo,
        }
    }
}

impl JinScheme {
    /// Analytic size model, following Jin (2022)'s decomposition:
    /// quantization-code distribution → Huffman encoding efficiency →
    /// subsequent lossless (dictionary) encoding efficiency.
    ///
    /// The Huffman payload is `n·E[len]` bits. The dictionary stage is
    /// modeled on the *modal* code (overwhelmingly the zero-residual code):
    /// its maximal runs — about `n·(1−p)` of them for modal probability `p`
    /// under an independence approximation — collapse into ~25-bit LZSS
    /// match tokens, with a capped-match correction for very long runs.
    /// The smaller of the Huffman and dictionary estimates is used, so the
    /// correction only engages where repetition actually helps.
    fn predicted_ratio(&self, data: &Data, abs_bound: f64) -> f64 {
        let values = data.to_f64_vec();
        let qs = predict_and_quantize(&values, data.dims(), abs_bound, self.sz_predictor, 6, false);
        let n = qs.symbols.len().max(1);
        let unpred_frac = qs.unpredictable.len() as f64 / n as f64;
        let size = estimate_sz_size_bytes(&qs.symbols, n, unpred_frac, data.dtype().size());
        data.size_in_bytes() as f64 / size
    }
}

impl Scheme for JinScheme {
    fn info(&self) -> SchemeInfo {
        SchemeInfo {
            name: "jin2022",
            citation: "Jin 2022",
            // the paper's taxonomy marks Jin as training: its stage-model
            // parameters are calibrated offline (our constants play that
            // role); no per-dataset training happens at prediction time
            training: true,
            sampling: false,
            black_box: "no",
            goal: "fast",
            metrics: "CR, Bandwidth",
            approach: "calculation",
            features: "",
        }
    }

    fn supports(&self, compressor_id: &str) -> bool {
        // models the SZ prediction/quantization/encoding pipeline only
        compressor_id == "sz3"
    }

    fn error_agnostic_features(&self, _data: &Data) -> Result<Options> {
        Ok(Options::new())
    }

    fn error_dependent_features(
        &self,
        data: &Data,
        compressor: &dyn Compressor,
    ) -> Result<Options> {
        if !self.supports(compressor.id()) {
            return Err(pressio_core::Error::Unsupported(format!(
                "jin2022 models SZ-family compressors, not '{}'",
                compressor.id()
            )));
        }
        let abs = compressor.get_options().get_f64("pressio:abs")?;
        Ok(Options::new().with("jin:predicted_ratio", self.predicted_ratio(data, abs)))
    }

    fn make_predictor(&self) -> Box<dyn Predictor> {
        Box::new(IdentityPredictor::new("jin:predicted_ratio"))
    }

    fn feature_keys(&self) -> Vec<String> {
        vec!["jin:predicted_ratio".to_string()]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pressio_core::Options as Opts;
    use pressio_sz::SzCompressor;
    use pressio_zfp::ZfpCompressor;

    fn smooth(n: usize) -> Data {
        Data::from_f32(
            vec![n, n, 4],
            (0..n * n * 4)
                .map(|i| ((i % n) as f32 * 0.07).sin() * ((i / n % n) as f32 * 0.05).cos())
                .collect(),
        )
    }

    fn sz_with(abs: f64) -> SzCompressor {
        let mut sz = SzCompressor::new();
        sz.set_options(
            &Opts::new()
                .with("pressio:abs", abs)
                .with("sz3:predictor", "lorenzo"),
        )
        .unwrap();
        sz
    }

    #[test]
    fn prediction_is_close_on_dense_smooth_data() {
        let data = smooth(48);
        let sz = sz_with(1e-4);
        let scheme = JinScheme::default();
        let f = scheme.error_dependent_features(&data, &sz).unwrap();
        let predicted = f.get_f64("jin:predicted_ratio").unwrap();
        let truth = data.size_in_bytes() as f64 / sz.compress(&data).unwrap().len() as f64;
        let err = ((predicted - truth) / truth).abs();
        assert!(
            err < 0.5,
            "predicted {predicted} vs truth {truth} ({err:.2})"
        );
    }

    #[test]
    fn underestimates_on_very_sparse_data() {
        // the model skips the dictionary stage, so sparse fields (where
        // LZSS crushes the Huffman stream) are *under*-predicted — the
        // paper's documented failure mode for calculation methods
        let n = 64;
        let values: Vec<f32> = (0..n * n)
            .map(|i| if i % 211 == 0 { 1.0 } else { 0.0 })
            .collect();
        let data = Data::from_f32(vec![n, n], values);
        let sz = sz_with(1e-6);
        let scheme = JinScheme::default();
        let predicted = scheme
            .error_dependent_features(&data, &sz)
            .unwrap()
            .get_f64("jin:predicted_ratio")
            .unwrap();
        let truth = data.size_in_bytes() as f64 / sz.compress(&data).unwrap().len() as f64;
        assert!(predicted < truth, "predicted {predicted} vs truth {truth}");
    }

    #[test]
    fn rejects_zfp() {
        let scheme = JinScheme::default();
        assert!(!scheme.supports("zfp"));
        let zfp = ZfpCompressor::new();
        assert!(scheme.error_dependent_features(&smooth(8), &zfp).is_err());
    }

    #[test]
    fn prediction_tracks_error_bound() {
        let data = smooth(32);
        let scheme = JinScheme::default();
        let tight = scheme
            .error_dependent_features(&data, &sz_with(1e-6))
            .unwrap()
            .get_f64("jin:predicted_ratio")
            .unwrap();
        let loose = scheme
            .error_dependent_features(&data, &sz_with(1e-2))
            .unwrap()
            .get_f64("jin:predicted_ratio")
            .unwrap();
        assert!(loose > tight, "loose {loose} !> tight {tight}");
    }
}
