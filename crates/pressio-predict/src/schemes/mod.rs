//! The bundled prediction schemes — one module per method ported in the
//! paper (§5) or listed in its Table 1.

pub mod ganguli;
pub mod jin;
pub mod khan;
pub mod krasowska;
pub mod lu;
pub mod qin;
pub mod rahman;
pub mod szmodel;
pub mod tao;
pub mod underwood;
pub mod wang;

pub use ganguli::GanguliScheme;
pub use jin::JinScheme;
pub use khan::KhanScheme;
pub use krasowska::KrasowskaScheme;
pub use lu::LuScheme;
pub use qin::QinScheme;
pub use rahman::RahmanScheme;
pub use tao::TaoScheme;
pub use underwood::UnderwoodScheme;
pub use wang::WangScheme;
