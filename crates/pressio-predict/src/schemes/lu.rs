//! `lu2018` — Gaussian-process modeling of lossy compression (Lu 2018,
//! IPDPS): regression over internals-derived features from sampled data,
//! trained per compressor (Table 1: training + sampling, not black-box,
//! accurate).

use crate::features::{global_stats, sz_quantization_profile};
use crate::predictor::{GpPredictor, Predictor};
use crate::scheme::{Scheme, SchemeInfo};
use pressio_core::error::Result;
use pressio_core::{Compressor, Data, Options};

/// The Lu (2018) Gaussian-process scheme.
pub struct LuScheme {
    /// Stride used to sample the data for the quantization profile.
    pub sample_stride: usize,
}

impl Default for LuScheme {
    fn default() -> Self {
        LuScheme { sample_stride: 4 }
    }
}

impl Scheme for LuScheme {
    fn info(&self) -> SchemeInfo {
        SchemeInfo {
            name: "lu2018",
            citation: "Lu 2018",
            training: true,
            sampling: true,
            black_box: "no",
            goal: "accurate",
            metrics: "CR",
            approach: "regression",
            features: "",
        }
    }

    fn supports(&self, compressor_id: &str) -> bool {
        matches!(compressor_id, "sz3" | "zfp")
    }

    fn error_agnostic_features(&self, data: &Data) -> Result<Options> {
        Ok(global_stats(data))
    }

    fn error_dependent_features(
        &self,
        data: &Data,
        compressor: &dyn Compressor,
    ) -> Result<Options> {
        let abs = compressor.get_options().get_f64("pressio:abs")?;
        // internals-derived features: the sampled quantization profile
        let mut f = sz_quantization_profile(data, abs, self.sample_stride);
        f.set("lu:log_abs", abs.max(1e-300).log10());
        Ok(f)
    }

    fn make_predictor(&self) -> Box<dyn Predictor> {
        Box::new(GpPredictor::new(self.feature_keys()))
    }

    fn feature_keys(&self) -> Vec<String> {
        vec![
            "quant:code_entropy".to_string(),
            "quant:unpredictable_fraction".to_string(),
            "quant:zero_code_fraction".to_string(),
            "stat:std".to_string(),
            "stat:zero_fraction".to_string(),
            "lu:log_abs".to_string(),
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pressio_core::Options as Opts;
    use pressio_sz::SzCompressor;

    #[test]
    fn gp_scheme_fits_and_predicts() {
        let scheme = LuScheme::default();
        let mut sz = SzCompressor::new();
        sz.set_options(&Opts::new().with("pressio:abs", 1e-4))
            .unwrap();
        let datasets: Vec<Data> = (1..=10usize)
            .map(|k| {
                let n = 24;
                Data::from_f32(
                    vec![n, n],
                    (0..n * n)
                        .map(|i| ((i % n) as f32 * 0.02 * k as f32).sin() * k as f32)
                        .collect(),
                )
            })
            .collect();
        let mut feats = Vec::new();
        let mut targets = Vec::new();
        for d in &datasets {
            let mut f = scheme.error_agnostic_features(d).unwrap();
            f.merge_from(&scheme.error_dependent_features(d, &sz).unwrap());
            feats.push(f);
            targets.push(scheme.training_observation(d, &sz).unwrap());
        }
        let mut p = scheme.make_predictor();
        assert!(p.requires_training());
        p.fit(&feats, &targets).unwrap();
        let preds: Vec<f64> = feats.iter().map(|f| p.predict(f).unwrap()).collect();
        let med = pressio_stats::medape(&targets, &preds).unwrap();
        assert!(med < 30.0, "lu2018 in-sample MedAPE {med}%");
    }
}
