//! File-level persistence property: for every predictor type, `save_to`
//! followed by `load_from` into a fresh instance reproduces the trained
//! predictor exactly — identical predictions on arbitrary probe points.

use pressio_core::Options;
use pressio_predict::{
    ConformalForestPredictor, ForestPredictor, GpPredictor, IdentityPredictor, LinearPredictor,
    MlpPredictor, Predictor, SplinePredictor,
};
use proptest::prelude::*;
use std::sync::atomic::{AtomicU64, Ordering};

static FILE_SEQ: AtomicU64 = AtomicU64::new(0);

fn keys() -> Vec<String> {
    vec!["k0".into(), "k1".into(), "k2".into()]
}

fn row(values: &[f64]) -> Options {
    let mut o = Options::new();
    for (k, v) in keys().iter().zip(values) {
        o.set(k.clone(), *v);
    }
    o
}

/// Every bundled predictor, fresh and untrained.
fn all_predictors() -> Vec<(&'static str, Box<dyn Predictor>)> {
    vec![
        ("identity", Box::new(IdentityPredictor::new("k0"))),
        ("linear", Box::new(LinearPredictor::new(keys()))),
        (
            "spline",
            Box::new(SplinePredictor::new("k0", vec!["k1".into(), "k2".into()])),
        ),
        ("forest", Box::new(ForestPredictor::new(keys()))),
        (
            "conformal_forest",
            Box::new(ConformalForestPredictor::new(keys())),
        ),
        ("gp", Box::new(GpPredictor::new(keys()))),
        ("mlp", Box::new(MlpPredictor::new(keys()))),
    ]
}

fn fresh(name: &str) -> Box<dyn Predictor> {
    all_predictors()
        .into_iter()
        .find(|(n, _)| *n == name)
        .map(|(_, p)| p)
        .unwrap()
}

fn save_dir() -> std::path::PathBuf {
    let dir = std::env::temp_dir().join("pressio_predictor_persistence");
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    #[test]
    fn save_load_round_trips_for_every_predictor(
        rows in prop::collection::vec(
            prop::collection::vec(0.1f64..100.0, 3), 12..20),
        probes in prop::collection::vec(
            prop::collection::vec(0.1f64..100.0, 3), 1..5),
    ) {
        let features: Vec<Options> = rows.iter().map(|r| row(r)).collect();
        // a smooth positive target so every model family can fit it
        let targets: Vec<f64> = rows
            .iter()
            .map(|r| 1.0 + r[0] * 0.5 + r[1] * 0.1 + (r[2] * 0.01).sin().abs())
            .collect();
        for (name, mut predictor) in all_predictors() {
            predictor.fit(&features, &targets).unwrap();
            let path = save_dir().join(format!(
                "{name}-{}-{}.state",
                std::process::id(),
                FILE_SEQ.fetch_add(1, Ordering::Relaxed)
            ));
            predictor.save_to(&path).unwrap();
            let mut restored = fresh(name);
            restored.load_from(&path).unwrap();
            for probe in &probes {
                let f = row(probe);
                let a = predictor.predict(&f).unwrap();
                let b = restored.predict(&f).unwrap();
                prop_assert!(
                    a == b || (a - b).abs() <= 1e-12 * a.abs().max(1.0),
                    "{name}: {a} != {b} after save/load"
                );
                // conformal intervals must survive persistence too
                if let (Some(ia), Some(ib)) = (
                    predictor.predict_interval(&f, 0.1),
                    restored.predict_interval(&f, 0.1),
                ) {
                    prop_assert_eq!(ia.lo.to_bits(), ib.lo.to_bits());
                    prop_assert_eq!(ia.hi.to_bits(), ib.hi.to_bits());
                }
            }
            let _ = std::fs::remove_file(&path);
        }
    }
}

#[test]
fn save_is_atomic_no_temp_residue() {
    let dir = save_dir().join("atomic");
    let _ = std::fs::remove_dir_all(&dir);
    let mut p = LinearPredictor::new(keys());
    let features: Vec<Options> = (0..8).map(|i| row(&[i as f64, 1.0, 2.0])).collect();
    let targets: Vec<f64> = (0..8).map(|i| 1.0 + i as f64).collect();
    p.fit(&features, &targets).unwrap();
    let path = dir.join("model.state");
    p.save_to(&path).unwrap();
    assert!(path.is_file());
    // no dotfile temp residue next to the artifact
    let residue: Vec<_> = std::fs::read_dir(&dir)
        .unwrap()
        .filter_map(|e| e.ok())
        .filter(|e| e.file_name().to_string_lossy().starts_with('.'))
        .collect();
    assert!(residue.is_empty(), "{residue:?}");
    let mut restored = LinearPredictor::new(keys());
    restored.load_from(&path).unwrap();
    assert_eq!(
        p.predict(&row(&[3.0, 1.0, 2.0])).unwrap(),
        restored.predict(&row(&[3.0, 1.0, 2.0])).unwrap()
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn load_from_missing_file_is_a_clear_error() {
    let mut p = LinearPredictor::new(keys());
    let err = p
        .load_from(std::path::Path::new("/nonexistent/predictor.state"))
        .unwrap_err();
    assert!(
        err.to_string().contains("/nonexistent/predictor.state"),
        "{err}"
    );
}
