//! Library entry points for the ablation studies.
//!
//! Each ablation is a standalone `--bin ablation_*` for direct invocation
//! from scripts, but the study bodies live here so `pressio bench
//! --ablation <name>` can run the same code in-process (the CLI crate
//! links this module; the bins are thin `main()` wrappers around it).
//! Every function writes its markdown report to the supplied writer.

use crate::BenchArgs;
use pressio_core::timing::{time_ms, MeanStd};
use pressio_core::{Compressor, Options};
use pressio_dataset::{synthetic::FAMILIES, DatasetPlugin, Hurricane, SyntheticSuite};
use pressio_predict::bandwidth::{bandwidth_features, BandwidthModel};
use pressio_predict::evaluator::CachedEvaluator;
use pressio_predict::registry::standard_schemes;
use pressio_predict::schemes::RahmanScheme;
use pressio_predict::Scheme;
use pressio_stats::{k_folds, medape};
use pressio_sz::SzCompressor;
use std::io::Write;
use std::time::Instant;

type Result = std::io::Result<()>;

/// Every ablation reachable through [`run`], in help-text order.
pub const NAMES: [&str; 6] = [
    "bandwidth",
    "datasets",
    "insample",
    "invalidation",
    "rahman",
    "tao_sweep",
];

/// Dispatch an ablation by name; callers wanting a friendlier unknown-name
/// error should check [`NAMES`] first.
pub fn run(name: &str, args: &BenchArgs, out: &mut dyn Write) -> Result {
    match name {
        "bandwidth" => bandwidth(args, out),
        "datasets" => datasets(args, out),
        "insample" => insample(args, out),
        "invalidation" => invalidation(args, out),
        "rahman" => rahman(args, out),
        "tao_sweep" => tao_sweep(args, out),
        other => Err(std::io::Error::new(
            std::io::ErrorKind::InvalidInput,
            format!(
                "unknown ablation '{other}' (available: {})",
                NAMES.join(", ")
            ),
        )),
    }
}

fn median_time_ms(comp: &SzCompressor, data: &pressio_core::Data, reps: usize) -> f64 {
    let mut times: Vec<f64> = (0..reps.max(1))
        .map(|_| {
            let (r, ms) = time_ms(|| comp.compress(data));
            r.unwrap();
            ms
        })
        .collect();
    times.sort_by(|a, b| a.partial_cmp(b).unwrap());
    times[times.len() / 2]
}

/// Future-work item 4 of the paper (§7): bandwidth prediction. Trains the
/// runtime-class bandwidth model on observed compression timings across
/// Hurricane fields at several sizes, then validates predicted vs measured
/// compression time out-of-sample.
///
/// Timing is `predictors:runtime` + `predictors:nondeterministic`, so each
/// observation is the median of several replicates (the refinement to the
/// validation model the paper's §7 calls for).
pub fn bandwidth(args: &BenchArgs, out: &mut dyn Write) -> Result {
    let reps = if args.quick { 2 } else { 3 };
    let abs = 1e-4;
    let mut sz = SzCompressor::new();
    // pin the predictor: "auto" trial-selection adds timing variance that
    // is about the selection, not the pipeline being modeled
    sz.set_options(
        &Options::new()
            .with("pressio:abs", abs)
            .with("sz3:predictor", "lorenzo"),
    )
    .unwrap();

    // observations across sizes and fields (sizes vary the dominant term)
    let mut feats = Vec::new();
    let mut times = Vec::new();
    let mut tags = Vec::new();
    for scale in [16usize, 24, 32, 48] {
        let mut h = Hurricane::with_dims(scale, scale, scale / 2, 1)
            .with_fields(&["P", "TC", "U", "QRAIN", "QVAPOR", "W"]);
        for i in 0..h.len() {
            let meta = h.load_metadata(i).unwrap();
            let data = h.load_data(i).unwrap();
            feats.push(bandwidth_features(&data, abs));
            times.push(median_time_ms(&sz, &data, reps));
            tags.push(format!("{}@{scale}", meta.name));
        }
    }
    // odd observations train, even validate (interleaves sizes and fields)
    let (mut tf, mut tt, mut vf, mut vt, mut vtag) = (vec![], vec![], vec![], vec![], vec![]);
    for i in 0..feats.len() {
        if i % 2 == 0 {
            tf.push(feats[i].clone());
            tt.push(times[i]);
        } else {
            vf.push(feats[i].clone());
            vt.push(times[i]);
            vtag.push(tags[i].clone());
        }
    }
    let mut model = BandwidthModel::new();
    model.fit(&tf, &tt).unwrap();

    writeln!(
        out,
        "# Bandwidth prediction (sz3 @1e-4, runtime-class metric, median of {reps} reps)\n"
    )?;
    writeln!(
        out,
        "| dataset | measured (ms) | predicted (ms) | measured MB/s | predicted MB/s |"
    )?;
    writeln!(out, "|---|---|---|---|---|")?;
    let mut preds = Vec::new();
    for ((f, &t), tag) in vf.iter().zip(&vt).zip(&vtag) {
        let p = model.predict_time_ms(f).unwrap();
        preds.push(p);
        let bytes = f.get_f64("bw:log_bytes").unwrap().exp2();
        writeln!(
            out,
            "| {tag} | {t:.2} | {p:.2} | {:.1} | {:.1} |",
            bytes / 1e6 / (t / 1e3),
            bytes / 1e6 / (p / 1e3)
        )?;
    }
    let med = pressio_stats::medape(&vt, &preds).unwrap();
    writeln!(out, "\nout-of-sample compression-time MedAPE: {med:.1}%")?;
    writeln!(out, "shape check: predictions track payload size and data roughness; residual error reflects the runtime/nondeterministic invalidation class")
}

/// Future-work item 2 of the paper (§7): extend the evaluation beyond
/// weather data. Runs the out-of-sample prediction comparison on four
/// structurally distinct synthetic families (turbulence, shocks, wave
/// packets, plateaus) and reports per-family MedAPE for each scheme —
/// "different datasets have different structural patterns".
pub fn datasets(args: &BenchArgs, out: &mut dyn Write) -> Result {
    let realizations = if args.quick { 4 } else { 10 };
    let mut suite = SyntheticSuite::new(args.dims.0, args.dims.1, args.dims.2, realizations);
    let n = suite.len();
    let mut datasets = Vec::new();
    let mut families = Vec::new();
    for i in 0..n {
        let meta = suite.load_metadata(i).unwrap();
        families.push(
            meta.attributes
                .get_str("synthetic:family")
                .unwrap()
                .to_string(),
        );
        datasets.push(suite.load_data(i).unwrap());
    }
    let mut sz = SzCompressor::new();
    sz.set_options(&Options::new().with("pressio:abs", 1e-4))
        .unwrap();
    let truths: Vec<f64> = datasets
        .iter()
        .map(|d| d.size_in_bytes() as f64 / sz.compress(d).unwrap().len() as f64)
        .collect();

    let registry = standard_schemes();
    writeln!(
        out,
        "# Non-weather dataset study: out-of-sample MedAPE by family (sz3 @1e-4)\n"
    )?;
    write!(out, "| scheme |")?;
    for f in FAMILIES {
        write!(out, " {f} |")?;
    }
    writeln!(out, " all |")?;
    write!(out, "|---|")?;
    for _ in FAMILIES {
        write!(out, "---|")?;
    }
    writeln!(out, "---|")?;
    for name in ["khan2023", "jin2022", "rahman2023", "krasowska2021"] {
        let scheme = registry.build(name).unwrap();
        let trainable = scheme.make_predictor().requires_training();
        let feats: Vec<Options> = datasets
            .iter()
            .map(|d| {
                let mut f = scheme.error_agnostic_features(d).unwrap();
                f.merge_from(&scheme.error_dependent_features(d, &sz).unwrap());
                f
            })
            .collect();
        let mut preds = vec![0.0f64; n];
        if trainable {
            for fold in k_folds(n, 5, 17) {
                let train_f: Vec<Options> = fold.train.iter().map(|&i| feats[i].clone()).collect();
                let train_t: Vec<f64> = fold.train.iter().map(|&i| truths[i]).collect();
                let mut p = scheme.make_predictor();
                p.fit(&train_f, &train_t).unwrap();
                for &i in &fold.validate {
                    preds[i] = p.predict(&feats[i]).unwrap();
                }
            }
        } else {
            let p = scheme.make_predictor();
            for i in 0..n {
                preds[i] = p.predict(&feats[i]).unwrap();
            }
        }
        write!(out, "| {name} |")?;
        for family in FAMILIES {
            let (t, p): (Vec<f64>, Vec<f64>) = truths
                .iter()
                .zip(&preds)
                .zip(&families)
                .filter(|(_, f)| f.as_str() == family)
                .map(|((t, p), _)| (*t, *p))
                .unzip();
            write!(out, " {:.1} |", medape(&t, &p).unwrap_or(f64::NAN))?;
        }
        writeln!(out, " {:.1} |", medape(&truths, &preds).unwrap())?;
    }
    writeln!(out, "\nshape check: calculation methods are family-sensitive (shock/plateau stress them differently); trained methods track all families once trained on them")
}

/// Future-work item 1 of the paper (§7): compare **in-sample** prediction
/// (train and predict on the same fields — the "best-case" most prior work
/// reports) against the **out-of-sample** setting the paper insists on
/// (predict on fields never seen in training). The gap quantifies how much
/// of published accuracy comes from field similarity.
pub fn insample(args: &BenchArgs, out: &mut dyn Write) -> Result {
    let timesteps = if args.quick { 3 } else { 6 };
    let mut hurricane = Hurricane::with_dims(args.dims.0, args.dims.1, args.dims.2, timesteps);
    let n = hurricane.len();
    let datasets: Vec<_> = (0..n).map(|i| hurricane.load_data(i).unwrap()).collect();
    let mut sz = SzCompressor::new();
    sz.set_options(&Options::new().with("pressio:abs", 1e-4))
        .unwrap();
    let truths: Vec<f64> = datasets
        .iter()
        .map(|d| d.size_in_bytes() as f64 / sz.compress(d).unwrap().len() as f64)
        .collect();

    let registry = standard_schemes();
    writeln!(
        out,
        "# In-sample (best case) vs out-of-sample (paper setting) MedAPE, sz3 @1e-4\n"
    )?;
    writeln!(
        out,
        "| scheme | in-sample (%) | out-of-sample (%) | degradation |"
    )?;
    writeln!(out, "|---|---|---|---|")?;
    for name in [
        "krasowska2021",
        "underwood2023",
        "rahman2023",
        "lu2018",
        "qin2020",
        "ganguli2023",
    ] {
        let scheme = registry.build(name).unwrap();
        let feats: Vec<Options> = datasets
            .iter()
            .map(|d| {
                let mut f = scheme.error_agnostic_features(d).unwrap();
                f.merge_from(&scheme.error_dependent_features(d, &sz).unwrap());
                f
            })
            .collect();
        // in-sample: fit on everything, predict everything
        let mut p = scheme.make_predictor();
        p.fit(&feats, &truths).unwrap();
        let preds_in: Vec<f64> = feats.iter().map(|f| p.predict(f).unwrap()).collect();
        let in_sample = medape(&truths, &preds_in).unwrap();
        // out-of-sample: 5-fold CV
        let mut preds_out = vec![0.0f64; n];
        for fold in k_folds(n, 5, 42) {
            let train_f: Vec<Options> = fold.train.iter().map(|&i| feats[i].clone()).collect();
            let train_t: Vec<f64> = fold.train.iter().map(|&i| truths[i]).collect();
            let mut p = scheme.make_predictor();
            p.fit(&train_f, &train_t).unwrap();
            for &i in &fold.validate {
                preds_out[i] = p.predict(&feats[i]).unwrap();
            }
        }
        let out_sample = medape(&truths, &preds_out).unwrap();
        writeln!(
            out,
            "| {name} | {in_sample:.1} | {out_sample:.1} | {:.1}x |",
            out_sample / in_sample.max(1e-9)
        )?;
    }
    writeln!(out, "\nshape check: every trained scheme degrades out-of-sample; the paper's evaluation deliberately reports the harder number")
}

/// Ablation: invalidation-aware metric reuse (the paper's Q1 and §6 —
/// methods "leverage the ability to compute a subset of error-agnostic
/// metrics up front, and then use them to conduct many different
/// predictions"). Predicts at a sweep of error bounds with and without the
/// cached evaluator and reports the time saved.
pub fn invalidation(args: &BenchArgs, out: &mut dyn Write) -> Result {
    let mut hurricane = Hurricane::with_dims(args.dims.0, args.dims.1, args.dims.2, 1);
    let n = hurricane.len().min(if args.quick { 4 } else { 13 });
    let datasets: Vec<_> = (0..n)
        .map(|i| {
            (
                hurricane.load_metadata(i).unwrap().name,
                hurricane.load_data(i).unwrap(),
            )
        })
        .collect();
    let bounds = [1e-6, 3e-6, 1e-5, 3e-5, 1e-4, 3e-4, 1e-3, 3e-3];
    let registry = standard_schemes();

    writeln!(
        out,
        "# Ablation: error-agnostic metric reuse across an error-bound sweep\n"
    )?;
    writeln!(
        out,
        "{} datasets x {} bounds, scheme = underwood2023 (expensive SVD agnostic stage)\n",
        n,
        bounds.len()
    )?;
    // without reuse: recompute every feature for every bound
    let scheme = registry.build("underwood2023").unwrap();
    let t0 = Instant::now();
    for (_, data) in &datasets {
        for &abs in &bounds {
            let mut sz = SzCompressor::new();
            sz.set_options(&Options::new().with("pressio:abs", abs))
                .unwrap();
            let _ = scheme.error_agnostic_features(data).unwrap();
            let _ = scheme.error_dependent_features(data, &sz).unwrap();
        }
    }
    let naive = t0.elapsed().as_secs_f64();
    writeln!(out, "no reuse (recompute everything):        {naive:.2}s")?;

    // with reuse: the cached evaluator recomputes agnostic features once
    let scheme = registry.build("underwood2023").unwrap();
    let mut eval = CachedEvaluator::new(scheme);
    let t0 = Instant::now();
    for (name, data) in &datasets {
        for &abs in &bounds {
            let mut sz = SzCompressor::new();
            sz.set_options(&Options::new().with("pressio:abs", abs))
                .unwrap();
            let _ = eval.features(name, data, &sz).unwrap();
        }
    }
    let cached = t0.elapsed().as_secs_f64();
    let counters = eval.counters();
    writeln!(out, "with invalidation-aware reuse:          {cached:.2}s")?;
    writeln!(
        out,
        "agnostic cache: {} hits / {} misses; dependent cache: {} hits / {} misses",
        counters.agnostic_hits,
        counters.agnostic_misses,
        counters.dependent_hits,
        counters.dependent_misses
    )?;
    writeln!(out, "speedup: {:.1}x", naive / cached.max(1e-9))?;
    writeln!(
        out,
        "\nshape check: the SVD is computed once per dataset instead of once per (dataset, bound)"
    )
}

/// Ablation: FXRZ design choices (paper §6 credits the **sparsity
/// correction** for Rahman's winning MedAPE on mixed sparse/dense
/// Hurricane data; Rahman 2023 credits **data augmentation** for reducing
/// training cost). This sweep toggles both and reports out-of-sample
/// MedAPE split by sparse vs dense fields.
pub fn rahman(args: &BenchArgs, out: &mut dyn Write) -> Result {
    let timesteps = if args.quick { 3 } else { 8 };
    let mut hurricane = Hurricane::with_dims(args.dims.0, args.dims.1, args.dims.2, timesteps);
    let n = hurricane.len();
    let mut datasets = Vec::new();
    let mut sparse_flags = Vec::new();
    for i in 0..n {
        let meta = hurricane.load_metadata(i).unwrap();
        sparse_flags.push(meta.attributes.get_bool("hurricane:sparse").unwrap());
        datasets.push(hurricane.load_data(i).unwrap());
    }
    let mut sz = SzCompressor::new();
    sz.set_options(&Options::new().with("pressio:abs", 1e-4))
        .unwrap();
    let truths: Vec<f64> = datasets
        .iter()
        .map(|d| d.size_in_bytes() as f64 / sz.compress(d).unwrap().len() as f64)
        .collect();

    writeln!(
        out,
        "# Ablation: rahman2023 sparsity correction x data augmentation (sz3, abs=1e-4)\n"
    )?;
    writeln!(out, "| sparsity correction | augmentation | MedAPE all (%) | MedAPE sparse (%) | MedAPE dense (%) |")?;
    writeln!(out, "|---|---|---|---|---|")?;
    for sparsity in [true, false] {
        for augmentation in [2.0f64, 0.0] {
            let scheme = RahmanScheme {
                sparsity_correction: sparsity,
                augmentation,
            };
            let feats: Vec<Options> = datasets
                .iter()
                .map(|d| {
                    let mut f = scheme.error_agnostic_features(d).unwrap();
                    f.merge_from(&scheme.error_dependent_features(d, &sz).unwrap());
                    f
                })
                .collect();
            // out-of-sample via 5 folds
            let mut pred = vec![0.0f64; n];
            for fold in k_folds(n, 5, 99) {
                let train_f: Vec<Options> = fold.train.iter().map(|&i| feats[i].clone()).collect();
                let train_t: Vec<f64> = fold.train.iter().map(|&i| truths[i]).collect();
                let mut p = scheme.make_predictor();
                p.fit(&train_f, &train_t).unwrap();
                for &i in &fold.validate {
                    pred[i] = p.predict(&feats[i]).unwrap();
                }
            }
            let all = pressio_stats::medape(&truths, &pred).unwrap();
            let (mut st, mut sp, mut dt, mut dp) = (vec![], vec![], vec![], vec![]);
            for i in 0..n {
                if sparse_flags[i] {
                    st.push(truths[i]);
                    sp.push(pred[i]);
                } else {
                    dt.push(truths[i]);
                    dp.push(pred[i]);
                }
            }
            let sparse = pressio_stats::medape(&st, &sp).unwrap_or(f64::NAN);
            let dense = pressio_stats::medape(&dt, &dp).unwrap_or(f64::NAN);
            writeln!(
                out,
                "| {} | {} | {all:.1} | {sparse:.1} | {dense:.1} |",
                if sparsity { "on" } else { "off" },
                if augmentation > 0.0 { "on" } else { "off" },
            )?;
        }
    }
    writeln!(
        out,
        "\nshape check: disabling the sparsity features should hurt most on the sparse fields"
    )
}

/// Ablation: Tao (2019) sampling parameters — block size × block count
/// sweep, reporting estimation time and MedAPE against the true ratio.
/// The original design tied block size to compressor internals (§2.2);
/// this sweep shows the accuracy/time trade-off empirically. Estimation
/// delegates to [`pressio_select::trial_sampled_ratio`] — the exact code
/// the auto-selection trial consult runs — over both of the selector's
/// codecs, so the sweep measures the estimator the product actually uses.
pub fn tao_sweep(args: &BenchArgs, out: &mut dyn Write) -> Result {
    let mut hurricane = Hurricane::with_dims(args.dims.0, args.dims.1, args.dims.2, 2);
    let n = hurricane.len().min(if args.quick { 6 } else { 13 });
    let datasets: Vec<_> = (0..n).map(|i| hurricane.load_data(i).unwrap()).collect();
    let compressors: Vec<Box<dyn Compressor>> = pressio_select::CODECS
        .iter()
        .map(|name| {
            let mut comp = pressio_predict::standard_compressors().build(name).unwrap();
            comp.set_options(&Options::new().with("pressio:abs", 1e-4))
                .unwrap();
            comp
        })
        .collect();
    let truths: Vec<f64> = compressors
        .iter()
        .flat_map(|comp| {
            datasets
                .iter()
                .map(|d| d.size_in_bytes() as f64 / comp.compress(d).unwrap().len() as f64)
        })
        .collect();

    writeln!(
        out,
        "# Ablation: tao2019 block-size / block-count sweep (sz3 + zfp, abs=1e-4)\n"
    )?;
    writeln!(out, "| block edge | blocks | est. time (ms) | MedAPE (%) |")?;
    writeln!(out, "|---|---|---|---|")?;
    for edge in [4usize, 8, 16, 24] {
        for count in [2usize, 8, 24] {
            let params = pressio_select::TrialParams {
                block_edge: edge,
                block_count: count,
                seed: 0x7A0,
            };
            let mut t = MeanStd::new();
            let mut preds = Vec::new();
            for comp in &compressors {
                for d in &datasets {
                    let (ratio, ms) = time_ms(|| {
                        pressio_select::trial_sampled_ratio(d, comp.as_ref(), &params).unwrap()
                    });
                    t.push(ms);
                    preds.push(ratio);
                }
            }
            let med = pressio_stats::medape(&truths, &preds).unwrap();
            writeln!(out, "| {edge} | {count} | {} | {med:.1} |", t.display(3))?;
        }
    }
    writeln!(out, "\nshape check: larger blocks amortize per-block stream overhead (error falls), more blocks cost linearly more time")
}
