//! # pressio-bench
//!
//! Benchmark harness regenerating every table and figure of the paper's
//! evaluation (see `DESIGN.md` for the experiment index):
//!
//! | target | reproduces |
//! |---|---|
//! | `--bin table1` | Table 1 (method taxonomy, from live registry metadata) |
//! | `--bin table2` | Table 2 (Hurricane stage timings + MedAPE, 10-fold CV) |
//! | `--bin fig2_pipeline` | Figure 2 (dataset-loader pipeline: cold vs cached vs sampled) |
//! | `--bin ablation_checkpoint` | checkpoint-restart speedup ablation |
//! | `--bin ablation_affinity` | data-affinity vs round-robin scheduling ablation |
//! | `--bin ablation_tao_sweep` | Tao block-size/count accuracy-vs-time sweep |
//! | `--bin ablation_rahman` | FXRZ sparsity-correction / augmentation ablation |
//! | `--bin ablation_invalidation` | error-agnostic metric reuse across bounds |
//! | `cargo bench` | Criterion microbenches (compressor baselines, metric costs, scheme estimate costs) |
//!
//! Binaries accept `--quick` for a reduced problem size and
//! `--timesteps N` / `--dims NX,NY,NZ` to re-scale the synthetic Hurricane.

#![warn(missing_docs)]

pub mod ablations;

use pressio_dataset::Hurricane;

/// Simple CLI options shared by the bench binaries.
#[derive(Debug, Clone)]
pub struct BenchArgs {
    /// Grid dims of the synthetic hurricane.
    pub dims: (usize, usize, usize),
    /// Timesteps to generate.
    pub timesteps: usize,
    /// Reduced preset requested.
    pub quick: bool,
    /// Evaluate every registered scheme, not just the paper's three.
    pub all_schemes: bool,
    /// Worker threads.
    pub workers: usize,
    /// Write a JSONL observability trace to this path.
    pub trace: Option<std::path::PathBuf>,
}

impl Default for BenchArgs {
    fn default() -> Self {
        BenchArgs {
            dims: (64, 64, 32),
            timesteps: 48,
            quick: false,
            all_schemes: false,
            // match the hardware: timing columns are only meaningful
            // without thread oversubscription (scheduling demos that need
            // multiple workers request them explicitly)
            workers: std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(4),
            trace: None,
        }
    }
}

impl BenchArgs {
    /// Parse from `std::env::args()`-style input. Unknown flags abort with
    /// a usage message (fail-fast beats silently ignored typos).
    pub fn parse(args: impl Iterator<Item = String>) -> BenchArgs {
        let mut out = BenchArgs::default();
        let mut it = args.peekable();
        while let Some(arg) = it.next() {
            match arg.as_str() {
                "--quick" => {
                    out.quick = true;
                    out.dims = (32, 32, 16);
                    out.timesteps = 6;
                }
                "--all-schemes" => out.all_schemes = true,
                "--timesteps" => {
                    out.timesteps = it
                        .next()
                        .and_then(|v| v.parse().ok())
                        .unwrap_or_else(|| usage("--timesteps needs a number"));
                }
                "--workers" => {
                    out.workers = it
                        .next()
                        .and_then(|v| v.parse().ok())
                        .unwrap_or_else(|| usage("--workers needs a number"));
                }
                "--trace" => {
                    let path = it.next().unwrap_or_else(|| usage("--trace needs a path"));
                    out.trace = Some(std::path::PathBuf::from(path));
                }
                "--dims" => {
                    let spec = it.next().unwrap_or_else(|| usage("--dims needs NX,NY,NZ"));
                    let parts: Vec<usize> =
                        spec.split(',').filter_map(|p| p.parse().ok()).collect();
                    if parts.len() != 3 {
                        usage("--dims needs NX,NY,NZ");
                    }
                    out.dims = (parts[0], parts[1], parts[2]);
                }
                other => usage(&format!("unknown flag '{other}'")),
            }
        }
        out
    }

    /// Build the hurricane generator for these args.
    pub fn hurricane(&self) -> Hurricane {
        Hurricane::with_dims(self.dims.0, self.dims.1, self.dims.2, self.timesteps)
    }

    /// Scheme list for the Table 2 run.
    pub fn schemes(&self) -> Vec<String> {
        if self.all_schemes {
            pressio_predict::standard_schemes()
                .names()
                .into_iter()
                .map(String::from)
                .collect()
        } else {
            vec!["khan2023".into(), "jin2022".into(), "rahman2023".into()]
        }
    }
}

fn usage(msg: &str) -> ! {
    eprintln!(
        "error: {msg}\nusage: [--quick] [--all-schemes] [--timesteps N] [--dims NX,NY,NZ] [--workers N] [--trace PATH]"
    );
    std::process::exit(2)
}

/// Install the process-global observability collector for this run when
/// `--trace PATH` was given: every span/counter/gauge is aggregated in
/// memory and streamed to `PATH` as JSON lines. Returns the collector so
/// the caller can render [`print_obs_summary`] at the end; `None` means
/// tracing is off and all instrumentation stays a near-free no-op.
pub fn init_tracing(args: &BenchArgs) -> Option<std::sync::Arc<pressio_obs::Collector>> {
    let path = args.trace.as_deref()?;
    let sink = match pressio_obs::JsonlSink::create(path) {
        Ok(sink) => sink,
        Err(e) => {
            eprintln!("error: cannot create trace file {}: {e}", path.display());
            std::process::exit(2)
        }
    };
    let collector = std::sync::Arc::new(pressio_obs::Collector::with_sink(Box::new(sink)));
    pressio_obs::install(collector.clone());
    Some(collector)
}

/// Uninstall the global collector, flush the trace file, and print the
/// aggregate report (per-span mean ± sd tables, counters, gauges) to
/// stdout. A no-op when [`init_tracing`] returned `None`.
pub fn print_obs_summary(collector: Option<std::sync::Arc<pressio_obs::Collector>>) {
    let Some(collector) = collector else { return };
    let _ = pressio_obs::uninstall();
    collector.flush();
    println!("\n## Observability report\n");
    print!("{}", collector.report().format());
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(args: &[&str]) -> BenchArgs {
        BenchArgs::parse(args.iter().map(|s| s.to_string()))
    }

    #[test]
    fn defaults_match_paper_scale() {
        let a = parse(&[]);
        assert_eq!(a.timesteps, 48);
        assert!(!a.quick);
        assert_eq!(a.schemes().len(), 3);
    }

    #[test]
    fn quick_reduces_scale() {
        let a = parse(&["--quick"]);
        assert!(a.quick);
        assert!(a.timesteps < 48);
    }

    #[test]
    fn dims_and_timesteps_parse() {
        let a = parse(&["--dims", "10,20,30", "--timesteps", "5", "--workers", "2"]);
        assert_eq!(a.dims, (10, 20, 30));
        assert_eq!(a.timesteps, 5);
        assert_eq!(a.workers, 2);
        let h = a.hurricane();
        assert_eq!(h.dims(), vec![10, 20, 30]);
    }

    #[test]
    fn all_schemes_expands_list() {
        let a = parse(&["--all-schemes"]);
        assert!(a.schemes().len() >= 7);
    }

    #[test]
    fn trace_flag_parses_and_round_trips() {
        let dir = std::env::temp_dir().join("pressio_bench_trace_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("t.jsonl");
        let a = parse(&["--trace", path.to_str().unwrap()]);
        assert_eq!(a.trace.as_deref(), Some(path.as_path()));

        let collector = init_tracing(&a).expect("tracing enabled");
        pressio_obs::record_ms("bench:test_stage", 2.0);
        print_obs_summary(Some(collector.clone()));
        assert!(!pressio_obs::is_enabled(), "summary must uninstall");
        let (events, skipped) = pressio_obs::read_trace(&path).unwrap();
        assert_eq!(skipped, 0);
        assert!(events.iter().any(|e| e.name() == "bench:test_stage"));
        assert_eq!(collector.report().spans["bench:test_stage"].count(), 1);
    }

    #[test]
    fn no_trace_flag_disables_tracing() {
        let a = parse(&[]);
        assert!(a.trace.is_none());
        assert!(init_tracing(&a).is_none());
        print_obs_summary(None);
    }
}
