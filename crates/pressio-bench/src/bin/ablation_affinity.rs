//! Ablation: data-affinity scheduling vs round-robin (paper §4.3). Thin
//! wrapper over [`pressio_bench_infra::affinity`], which `pressio bench
//! --ablation affinity` also drives.

use pressio_bench::BenchArgs;
use pressio_bench_infra::affinity::{format_affinity, run_affinity_ablation, AffinityConfig};

fn main() {
    let args = BenchArgs::parse(std::env::args().skip(1));
    let report = run_affinity_ablation(&AffinityConfig {
        dims: args.dims,
        workers: args.workers,
        quick: args.quick,
    })
    .expect("affinity ablation failed");
    print!("{}", format_affinity(&report));
}
