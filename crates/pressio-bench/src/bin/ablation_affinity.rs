//! Ablation: data-affinity scheduling vs round-robin (paper §4.3 — "we
//! attempt to schedule as many jobs with the same data to the same
//! workers"). Tasks simulate a load-then-compute pattern where each worker
//! pays a load cost the first time it touches a dataset; the report shows
//! distinct-load counts and wall time under both policies.

use pressio_bench::BenchArgs;
use pressio_bench_infra::queue::{run_tasks, PoolConfig, Scheduling, Task};
use pressio_core::{Data, Options};
use pressio_dataset::{DatasetPlugin, Hurricane};
use std::collections::HashMap;
use std::sync::{Arc, Mutex};
use std::time::Instant;

fn main() {
    let mut args = BenchArgs::parse(std::env::args().skip(1));
    // scheduling semantics need several workers even on a single core
    args.workers = args.workers.max(4);
    let mut hurricane = Hurricane::with_dims(args.dims.0, args.dims.1, args.dims.2, 2);
    let n_data = hurricane.len().min(if args.quick { 6 } else { 13 });
    let datasets: Arc<Vec<Data>> = Arc::new(
        (0..n_data)
            .map(|i| hurricane.load_data(i).unwrap())
            .collect(),
    );
    // several error bounds per dataset: the repeated-data workload
    let bounds = [1e-6, 1e-5, 1e-4, 1e-3];
    let tasks: Vec<Task> = (0..n_data)
        .flat_map(|di| {
            bounds.iter().enumerate().map(move |(bi, &abs)| {
                Task::new(
                    format!("d{di:02}b{bi}"),
                    di as u64,
                    Options::new()
                        .with("dataset", di as u64)
                        .with("pressio:abs", abs),
                )
            })
        })
        .collect();

    println!("# Ablation: data-affinity vs round-robin scheduling\n");
    println!(
        "{} tasks = {} datasets x {} bounds, {} workers",
        tasks.len(),
        n_data,
        bounds.len(),
        args.workers
    );
    for scheduling in [Scheduling::DataAffinity, Scheduling::RoundRobin] {
        // per-worker "loaded dataset" caches: first touch costs a deep copy
        let caches: Arc<Vec<Mutex<HashMap<u64, Data>>>> = Arc::new(
            (0..args.workers)
                .map(|_| Mutex::new(HashMap::new()))
                .collect(),
        );
        let ds = datasets.clone();
        let cs = caches.clone();
        let t0 = Instant::now();
        let (outcomes, stats) = run_tasks(
            tasks.clone(),
            PoolConfig {
                workers: args.workers,
                scheduling,
                max_attempts: 1,
            },
            Arc::new(move |task: &Task, w| {
                let di = task.config.get_u64("dataset")? as usize;
                let abs = task.config.get_f64("pressio:abs")?;
                let mut cache = cs[w].lock().unwrap();
                // simulated load: deep-copy into the worker-local cache
                let data = cache
                    .entry(di as u64)
                    .or_insert_with(|| ds[di].clone())
                    .clone();
                // the compute: a khan-style fast estimate
                let scheme = pressio_predict::schemes::KhanScheme::default();
                let mut sz = pressio_sz::SzCompressor::new();
                pressio_core::Compressor::set_options(
                    &mut sz,
                    &Options::new().with("pressio:abs", abs),
                )?;
                pressio_predict::Scheme::error_dependent_features(&scheme, &data, &sz)
            }),
        );
        let elapsed = t0.elapsed().as_secs_f64();
        assert!(outcomes.iter().all(|o| o.result.is_ok()));
        println!(
            "{scheduling:?}: {:.2}s, distinct dataset loads = {} (per-worker {:?})",
            elapsed,
            stats.total_loads(),
            stats.distinct_keys_per_worker
        );
    }
    println!("\nshape check: affinity performs ~1 load per dataset; round-robin up to workers x datasets");
}
