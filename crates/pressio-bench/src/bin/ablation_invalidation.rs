//! Ablation: invalidation-aware metric reuse (the paper's Q1 and §6 —
//! methods "leverage the ability to compute a subset of error-agnostic
//! metrics up front, and then use them to conduct many different
//! predictions"). Predicts at a sweep of error bounds with and without the
//! cached evaluator and reports the time saved.

use pressio_bench::BenchArgs;
use pressio_core::{Compressor, Options};
use pressio_dataset::{DatasetPlugin, Hurricane};
use pressio_predict::evaluator::CachedEvaluator;
use pressio_predict::registry::standard_schemes;
use pressio_sz::SzCompressor;
use std::time::Instant;

fn main() {
    let args = BenchArgs::parse(std::env::args().skip(1));
    let mut hurricane = Hurricane::with_dims(args.dims.0, args.dims.1, args.dims.2, 1);
    let n = hurricane.len().min(if args.quick { 4 } else { 13 });
    let datasets: Vec<_> = (0..n)
        .map(|i| {
            (
                hurricane.load_metadata(i).unwrap().name,
                hurricane.load_data(i).unwrap(),
            )
        })
        .collect();
    let bounds = [1e-6, 3e-6, 1e-5, 3e-5, 1e-4, 3e-4, 1e-3, 3e-3];
    let registry = standard_schemes();

    println!("# Ablation: error-agnostic metric reuse across an error-bound sweep\n");
    println!(
        "{} datasets x {} bounds, scheme = underwood2023 (expensive SVD agnostic stage)\n",
        n,
        bounds.len()
    );
    // without reuse: recompute every feature for every bound
    let scheme = registry.build("underwood2023").unwrap();
    let t0 = Instant::now();
    for (_, data) in &datasets {
        for &abs in &bounds {
            let mut sz = SzCompressor::new();
            sz.set_options(&Options::new().with("pressio:abs", abs))
                .unwrap();
            let _ = scheme.error_agnostic_features(data).unwrap();
            let _ = scheme.error_dependent_features(data, &sz).unwrap();
        }
    }
    let naive = t0.elapsed().as_secs_f64();
    println!("no reuse (recompute everything):        {naive:.2}s");

    // with reuse: the cached evaluator recomputes agnostic features once
    let scheme = registry.build("underwood2023").unwrap();
    let mut eval = CachedEvaluator::new(scheme);
    let t0 = Instant::now();
    for (name, data) in &datasets {
        for &abs in &bounds {
            let mut sz = SzCompressor::new();
            sz.set_options(&Options::new().with("pressio:abs", abs))
                .unwrap();
            let _ = eval.features(name, data, &sz).unwrap();
        }
    }
    let cached = t0.elapsed().as_secs_f64();
    let counters = eval.counters();
    println!("with invalidation-aware reuse:          {cached:.2}s");
    println!(
        "agnostic cache: {} hits / {} misses; dependent cache: {} hits / {} misses",
        counters.agnostic_hits,
        counters.agnostic_misses,
        counters.dependent_hits,
        counters.dependent_misses
    );
    println!("speedup: {:.1}x", naive / cached.max(1e-9));
    println!(
        "\nshape check: the SVD is computed once per dataset instead of once per (dataset, bound)"
    );
}
