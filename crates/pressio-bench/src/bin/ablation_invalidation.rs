//! Ablation: invalidation-aware metric reuse (the paper's Q1 and §6 —
//! methods "leverage the ability to compute a subset of error-agnostic
//! metrics up front, and then use them to conduct many different
//! predictions"). Predicts at a sweep of error bounds with and without the
//! cached evaluator and reports the time saved.
//!
//! Thin wrapper: the study body lives in `pressio_bench::ablations` so
//! `pressio bench --ablation invalidation` runs the identical code in-process.

use pressio_bench::BenchArgs;

fn main() {
    let args = BenchArgs::parse(std::env::args().skip(1));
    pressio_bench::ablations::invalidation(&args, &mut std::io::stdout().lock()).unwrap();
}
