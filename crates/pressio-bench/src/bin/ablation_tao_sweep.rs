//! Ablation: Tao (2019) sampling parameters — block size × block count
//! sweep, reporting estimation time and MedAPE against the true ratio.
//! The original design tied block size to compressor internals (§2.2);
//! this sweep shows the accuracy/time trade-off empirically.

use pressio_bench::BenchArgs;
use pressio_core::timing::{time_ms, MeanStd};
use pressio_core::{Compressor, Options};
use pressio_dataset::{DatasetPlugin, Hurricane};
use pressio_predict::schemes::TaoScheme;
use pressio_predict::Scheme;
use pressio_sz::SzCompressor;

fn main() {
    let args = BenchArgs::parse(std::env::args().skip(1));
    let mut hurricane = Hurricane::with_dims(args.dims.0, args.dims.1, args.dims.2, 2);
    let n = hurricane.len().min(if args.quick { 6 } else { 13 });
    let datasets: Vec<_> = (0..n).map(|i| hurricane.load_data(i).unwrap()).collect();
    let mut sz = SzCompressor::new();
    sz.set_options(&Options::new().with("pressio:abs", 1e-4))
        .unwrap();
    let truths: Vec<f64> = datasets
        .iter()
        .map(|d| d.size_in_bytes() as f64 / sz.compress(d).unwrap().len() as f64)
        .collect();

    println!("# Ablation: tao2019 block-size / block-count sweep (sz3, abs=1e-4)\n");
    println!("| block edge | blocks | est. time (ms) | MedAPE (%) |");
    println!("|---|---|---|---|");
    for edge in [4usize, 8, 16, 24] {
        for count in [2usize, 8, 24] {
            let scheme = TaoScheme {
                block_edge: edge,
                block_count: count,
                seed: 0x7A0,
            };
            let mut t = MeanStd::new();
            let mut preds = Vec::new();
            for d in &datasets {
                let (f, ms) = time_ms(|| scheme.error_dependent_features(d, &sz).unwrap());
                t.push(ms);
                preds.push(f.get_f64("tao:sampled_ratio").unwrap());
            }
            let med = pressio_stats::medape(&truths, &preds).unwrap();
            println!("| {edge} | {count} | {} | {med:.1} |", t.display(3));
        }
    }
    println!("\nshape check: larger blocks amortize per-block stream overhead (error falls), more blocks cost linearly more time");
}
