//! Ablation: Tao (2019) sampling parameters — block size × block count
//! sweep, reporting estimation time and MedAPE against the true ratio.
//! The original design tied block size to compressor internals (§2.2);
//! this sweep shows the accuracy/time trade-off empirically.
//!
//! Thin wrapper: the study body lives in `pressio_bench::ablations` so
//! `pressio bench --ablation tao_sweep` runs the identical code in-process.

use pressio_bench::BenchArgs;

fn main() {
    let args = BenchArgs::parse(std::env::args().skip(1));
    pressio_bench::ablations::tao_sweep(&args, &mut std::io::stdout().lock()).unwrap();
}
