//! Future-work item 1 of the paper (§7): compare **in-sample** prediction
//! (train and predict on the same fields — the "best-case" most prior work
//! reports) against the **out-of-sample** setting the paper insists on
//! (predict on fields never seen in training). The gap quantifies how much
//! of published accuracy comes from field similarity.

use pressio_bench::BenchArgs;
use pressio_core::{Compressor, Options};
use pressio_dataset::{DatasetPlugin, Hurricane};
use pressio_predict::registry::standard_schemes;
use pressio_stats::{k_folds, medape};
use pressio_sz::SzCompressor;

fn main() {
    let args = BenchArgs::parse(std::env::args().skip(1));
    let timesteps = if args.quick { 3 } else { 6 };
    let mut hurricane = Hurricane::with_dims(args.dims.0, args.dims.1, args.dims.2, timesteps);
    let n = hurricane.len();
    let datasets: Vec<_> = (0..n).map(|i| hurricane.load_data(i).unwrap()).collect();
    let mut sz = SzCompressor::new();
    sz.set_options(&Options::new().with("pressio:abs", 1e-4))
        .unwrap();
    let truths: Vec<f64> = datasets
        .iter()
        .map(|d| d.size_in_bytes() as f64 / sz.compress(d).unwrap().len() as f64)
        .collect();

    let registry = standard_schemes();
    println!("# In-sample (best case) vs out-of-sample (paper setting) MedAPE, sz3 @1e-4\n");
    println!("| scheme | in-sample (%) | out-of-sample (%) | degradation |");
    println!("|---|---|---|---|");
    for name in [
        "krasowska2021",
        "underwood2023",
        "rahman2023",
        "lu2018",
        "qin2020",
        "ganguli2023",
    ] {
        let scheme = registry.build(name).unwrap();
        let feats: Vec<Options> = datasets
            .iter()
            .map(|d| {
                let mut f = scheme.error_agnostic_features(d).unwrap();
                f.merge_from(&scheme.error_dependent_features(d, &sz).unwrap());
                f
            })
            .collect();
        // in-sample: fit on everything, predict everything
        let mut p = scheme.make_predictor();
        p.fit(&feats, &truths).unwrap();
        let preds_in: Vec<f64> = feats.iter().map(|f| p.predict(f).unwrap()).collect();
        let in_sample = medape(&truths, &preds_in).unwrap();
        // out-of-sample: 5-fold CV
        let mut preds_out = vec![0.0f64; n];
        for fold in k_folds(n, 5, 42) {
            let train_f: Vec<Options> = fold.train.iter().map(|&i| feats[i].clone()).collect();
            let train_t: Vec<f64> = fold.train.iter().map(|&i| truths[i]).collect();
            let mut p = scheme.make_predictor();
            p.fit(&train_f, &train_t).unwrap();
            for &i in &fold.validate {
                preds_out[i] = p.predict(&feats[i]).unwrap();
            }
        }
        let out_sample = medape(&truths, &preds_out).unwrap();
        println!(
            "| {name} | {in_sample:.1} | {out_sample:.1} | {:.1}x |",
            out_sample / in_sample.max(1e-9)
        );
    }
    println!("\nshape check: every trained scheme degrades out-of-sample; the paper's evaluation deliberately reports the harder number");
}
