//! Future-work item 1 of the paper (§7): compare **in-sample** prediction
//! (train and predict on the same fields — the "best-case" most prior work
//! reports) against the **out-of-sample** setting the paper insists on
//! (predict on fields never seen in training). The gap quantifies how much
//! of published accuracy comes from field similarity.
//!
//! Thin wrapper: the study body lives in `pressio_bench::ablations` so
//! `pressio bench --ablation insample` runs the identical code in-process.

use pressio_bench::BenchArgs;

fn main() {
    let args = BenchArgs::parse(std::env::args().skip(1));
    pressio_bench::ablations::insample(&args, &mut std::io::stdout().lock()).unwrap();
}
