//! Future-work item 4 of the paper (§7): bandwidth prediction. Trains the
//! runtime-class bandwidth model on observed compression timings across
//! Hurricane fields at several sizes, then validates predicted vs measured
//! compression time out-of-sample.
//!
//! Timing is `predictors:runtime` + `predictors:nondeterministic`, so each
//! observation is the median of several replicates (the refinement to the
//! validation model the paper's §7 calls for).
//!
//! Thin wrapper: the study body lives in `pressio_bench::ablations` so
//! `pressio bench --ablation bandwidth` runs the identical code in-process.

use pressio_bench::BenchArgs;

fn main() {
    let args = BenchArgs::parse(std::env::args().skip(1));
    pressio_bench::ablations::bandwidth(&args, &mut std::io::stdout().lock()).unwrap();
}
