//! Future-work item 4 of the paper (§7): bandwidth prediction. Trains the
//! runtime-class bandwidth model on observed compression timings across
//! Hurricane fields at several sizes, then validates predicted vs measured
//! compression time out-of-sample.
//!
//! Timing is `predictors:runtime` + `predictors:nondeterministic`, so each
//! observation is the median of several replicates (the refinement to the
//! validation model the paper's §7 calls for).

use pressio_bench::BenchArgs;
use pressio_core::timing::time_ms;
use pressio_core::{Compressor, Options};
use pressio_dataset::{DatasetPlugin, Hurricane};
use pressio_predict::bandwidth::{bandwidth_features, BandwidthModel};
use pressio_sz::SzCompressor;

fn median_time_ms(comp: &SzCompressor, data: &pressio_core::Data, reps: usize) -> f64 {
    let mut times: Vec<f64> = (0..reps.max(1))
        .map(|_| {
            let (r, ms) = time_ms(|| comp.compress(data));
            r.unwrap();
            ms
        })
        .collect();
    times.sort_by(|a, b| a.partial_cmp(b).unwrap());
    times[times.len() / 2]
}

fn main() {
    let args = BenchArgs::parse(std::env::args().skip(1));
    let reps = if args.quick { 2 } else { 3 };
    let abs = 1e-4;
    let mut sz = SzCompressor::new();
    // pin the predictor: "auto" trial-selection adds timing variance that
    // is about the selection, not the pipeline being modeled
    sz.set_options(
        &Options::new()
            .with("pressio:abs", abs)
            .with("sz3:predictor", "lorenzo"),
    )
    .unwrap();

    // observations across sizes and fields (sizes vary the dominant term)
    let mut feats = Vec::new();
    let mut times = Vec::new();
    let mut tags = Vec::new();
    for scale in [16usize, 24, 32, 48] {
        let mut h = Hurricane::with_dims(scale, scale, scale / 2, 1)
            .with_fields(&["P", "TC", "U", "QRAIN", "QVAPOR", "W"]);
        for i in 0..h.len() {
            let meta = h.load_metadata(i).unwrap();
            let data = h.load_data(i).unwrap();
            feats.push(bandwidth_features(&data, abs));
            times.push(median_time_ms(&sz, &data, reps));
            tags.push(format!("{}@{scale}", meta.name));
        }
    }
    // odd observations train, even validate (interleaves sizes and fields)
    let (mut tf, mut tt, mut vf, mut vt, mut vtag) = (vec![], vec![], vec![], vec![], vec![]);
    for i in 0..feats.len() {
        if i % 2 == 0 {
            tf.push(feats[i].clone());
            tt.push(times[i]);
        } else {
            vf.push(feats[i].clone());
            vt.push(times[i]);
            vtag.push(tags[i].clone());
        }
    }
    let mut model = BandwidthModel::new();
    model.fit(&tf, &tt).unwrap();

    println!("# Bandwidth prediction (sz3 @1e-4, runtime-class metric, median of {reps} reps)\n");
    println!("| dataset | measured (ms) | predicted (ms) | measured MB/s | predicted MB/s |");
    println!("|---|---|---|---|---|");
    let mut preds = Vec::new();
    for ((f, &t), tag) in vf.iter().zip(&vt).zip(&vtag) {
        let p = model.predict_time_ms(f).unwrap();
        preds.push(p);
        let bytes = f.get_f64("bw:log_bytes").unwrap().exp2();
        println!(
            "| {tag} | {t:.2} | {p:.2} | {:.1} | {:.1} |",
            bytes / 1e6 / (t / 1e3),
            bytes / 1e6 / (p / 1e3)
        );
    }
    let med = pressio_stats::medape(&vt, &preds).unwrap();
    println!("\nout-of-sample compression-time MedAPE: {med:.1}%");
    println!("shape check: predictions track payload size and data roughness; residual error reflects the runtime/nondeterministic invalidation class");
}
