//! Regenerates **Table 2** of the paper: Hurricane performance results with
//! 10-fold cross-validation — per-stage timings (error-dependent,
//! error-agnostic, training, fit, inference) and MedAPE for each scheme ×
//! compressor, plus the compressor baselines.
//!
//! Run `--quick` for a fast smoke-scale pass, or `--all-schemes` to extend
//! the comparison beyond the paper's three ported methods.

use pressio_bench::BenchArgs;
use pressio_bench_infra::experiment::{format_table2, run_table2, Table2Config};

fn main() {
    let args = BenchArgs::parse(std::env::args().skip(1));
    let tracing = pressio_bench::init_tracing(&args);
    let mut hurricane = args.hurricane();
    let cfg = Table2Config {
        schemes: args.schemes(),
        compressors: vec!["sz3".into(), "zfp".into()],
        abs_bounds: vec![1e-6, 1e-4],
        folds: 10,
        seed: 0xBE7C,
        workers: args.workers,
        checkpoint: Some(std::env::temp_dir().join("pressio_table2_checkpoint.jsonl")),
    };
    eprintln!(
        "running Table 2: hurricane {:?} x {} timesteps x 13 fields, bounds {:?}, {} workers",
        args.dims, args.timesteps, cfg.abs_bounds, cfg.workers
    );
    let t0 = std::time::Instant::now();
    let table = run_table2(&mut hurricane, &cfg).expect("table 2 experiment");
    eprintln!(
        "done in {:.1}s ({} truth results reused from checkpoint, {} computed)",
        t0.elapsed().as_secs_f64(),
        table.checkpoint_hits,
        table.checkpoint_misses
    );
    println!("# Table 2: Hurricane Performance Results using 10-Fold Cross-Validation\n");
    print!("{}", format_table2(&table));
    println!();
    println!("## Paper values (authors' testbed, 500x500x100 Hurricane Isabel; shape reference)\n");
    println!("| method      | E-Dep (ms) | E-Agn (ms) | Training (ms) | Fit (ms)       | Inference (ms) | Comp/Decomp (ms)            | MedAPE (%) |");
    println!("|-------------|------------|------------|---------------|----------------|----------------|------------------------------|------------|");
    println!("| sz3         |            |            |               |                |                | 322.8 ± 30.1 / 101.98 ± 26.72 |           |");
    println!("| sz3 khan    | 5 ± .47    | N/A        | N/A           | N/A            | N/A            |                              | 232.57     |");
    println!("| sz3 sian    | 518 ± .43  | N/A        | N/A           | N/A            | N/A            |                              | 25.88      |");
    println!("| sz3 rahman  | N/A        | 7 ± 0.51   | 322.8 ± 30.1  | 370.34 ± 14.90 | 0.135 ± 0.0438 |                              | 20.20      |");
    println!("| zfp         |            |            |               |                |                | 65.49 ± 25.33 / 33.86 ± 16.21 |           |");
    println!("| zfp khan    | 5 ± .47    | N/A        | N/A           | N/A            | N/A            |                              | 381.12     |");
    println!("| zfp sian    | N/A        | N/A        | N/A           | N/A            | N/A            |                              | N/A        |");
    println!("| zfp rahman  | N/A        | 7 ± .51    | 65.49 ± 25.33 | 360.49 ± 14.98 | .09 ± .04      |                              | 13.86      |");
    println!();
    println!("shape checks to compare (see EXPERIMENTS.md):");
    println!("  - sz3 compression slower than zfp; decompression faster than compression");
    println!("  - khan error-dependent time << compression time; jin comparable to compression");
    println!("  - rahman error-agnostic time << compression; inference sub-millisecond");
    println!("  - rahman achieves the lowest MedAPE on both compressors");
    println!("  - jin on zfp is N/A (SZ-specific model)");
    pressio_bench::print_obs_summary(tracing);
    if let Some(path) = &args.trace {
        eprintln!("trace written to {}", path.display());
    }
}
