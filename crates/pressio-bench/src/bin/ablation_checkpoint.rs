//! Ablation: checkpoint-restart speedup (paper §3/§4.3 — "fine-grained
//! checkpoint restart allows us to re-run only the affected results
//! quickly"). Thin wrapper over `pressio_bench_infra::restart`, which is
//! shared with `pressio bench --ablation checkpoint`.

use pressio_bench::BenchArgs;
use pressio_bench_infra::restart::{format_checkpoint, run_checkpoint_ablation, RestartConfig};

fn main() {
    let args = BenchArgs::parse(std::env::args().skip(1));
    let report = run_checkpoint_ablation(&RestartConfig {
        dims: args.dims,
        workers: args.workers,
        quick: args.quick,
        checkpoint: Some(std::env::temp_dir().join("pressio_ablation_checkpoint.jsonl")),
    })
    .unwrap();
    print!("{}", format_checkpoint(&report));
}
