//! Ablation: checkpoint-restart speedup (paper §3/§4.3 — "fine-grained
//! checkpoint restart allows us to re-run only the affected results
//! quickly"). Runs the ground-truth collection of the Table 2 experiment
//! twice against the same store and reports the restart speedup.

use pressio_bench::BenchArgs;
use pressio_bench_infra::experiment::{run_table2, Table2Config};
use std::time::Instant;

fn main() {
    let args = BenchArgs::parse(std::env::args().skip(1));
    let ckpt = std::env::temp_dir().join("pressio_ablation_checkpoint.jsonl");
    let _ = std::fs::remove_file(&ckpt);
    let cfg = Table2Config {
        schemes: vec!["khan2023".into()],
        compressors: vec!["sz3".into(), "zfp".into()],
        abs_bounds: vec![1e-6, 1e-4],
        folds: 3,
        seed: 1,
        workers: args.workers,
        checkpoint: Some(ckpt.clone()),
    };
    let mut hurricane = if args.quick {
        args.hurricane()
    } else {
        pressio_dataset::Hurricane::with_dims(args.dims.0, args.dims.1, args.dims.2, 8)
    };

    println!("# Ablation: checkpointed restart vs recompute-all\n");
    let t0 = Instant::now();
    let first = run_table2(&mut hurricane, &cfg).unwrap();
    let cold = t0.elapsed().as_secs_f64();
    println!(
        "cold run:    {cold:.2}s ({} truth results computed)",
        first.checkpoint_misses
    );

    let t0 = Instant::now();
    let second = run_table2(&mut hurricane, &cfg).unwrap();
    let warm = t0.elapsed().as_secs_f64();
    println!(
        "restart run: {warm:.2}s ({} reused, {} recomputed)",
        second.checkpoint_hits, second.checkpoint_misses
    );
    println!(
        "restart speedup on truth collection: {:.1}x",
        cold / warm.max(1e-9)
    );
    assert_eq!(second.checkpoint_misses, 0, "restart recomputed truth!");
    let _ = std::fs::remove_file(&ckpt);
}
