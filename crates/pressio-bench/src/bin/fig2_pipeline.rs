//! Demonstrates **Figure 2** of the paper: a stacked dataset-loader
//! pipeline (`folder_loader` → `local_cache` → `sampler`) and measures what
//! each stage buys — cold load vs node-local-cache load vs metadata-only
//! planning vs sampled load.

use pressio_bench::BenchArgs;
use pressio_core::timing::{time_ms, MeanStd};
use pressio_dataset::{DatasetPlugin, FolderLoader, Hurricane, LocalCache, Sampler, Strategy};

fn main() {
    let args = BenchArgs::parse(std::env::args().skip(1));
    let base = std::env::temp_dir().join("pressio_fig2");
    let raw_dir = base.join("raw");
    let cache_dir = base.join("cache");
    let _ = std::fs::remove_dir_all(&base);

    // materialize a slice of the hurricane onto "the parallel filesystem"
    let mut source = Hurricane::with_dims(args.dims.0, args.dims.1, args.dims.2, 2);
    let n = source.len().min(if args.quick { 8 } else { 26 });
    eprintln!("writing {n} raw fields to {}", raw_dir.display());
    for i in 0..n {
        let meta = source.load_metadata(i).unwrap();
        let data = source.load_data(i).unwrap();
        pressio_dataset::io::write_raw(&raw_dir, &meta.name.replace('@', "-"), &data).unwrap();
    }

    // Figure 2 stack: io_loader/folder_loader -> local_cache -> sampler
    let folder = FolderLoader::open(&raw_dir, None).unwrap();
    let cache = LocalCache::new(Box::new(folder), &cache_dir).unwrap();
    let mut pipeline = Sampler::new(
        Box::new(cache),
        Strategy::RandomBlocks {
            shape: vec![16, 16, 16],
            count: 4,
            seed: 11,
        },
    );

    // metadata-only planning pass (must be nearly free)
    let (metas, meta_ms) = time_ms(|| pipeline.load_metadata_all().unwrap());
    println!("# Figure 2 pipeline: folder_loader -> local_cache -> sampler\n");
    println!(
        "metadata-only planning over {} datasets: {meta_ms:.2} ms total",
        metas.len()
    );

    let mut cold = MeanStd::new();
    for i in 0..metas.len() {
        let ((), ms) = time_ms(|| {
            pipeline.load_data(i).unwrap();
        });
        cold.push(ms);
    }
    let mut warm = MeanStd::new();
    for i in 0..metas.len() {
        let ((), ms) = time_ms(|| {
            pipeline.load_data(i).unwrap();
        });
        warm.push(ms);
    }
    println!(
        "cold sampled load  (folder -> cache-miss -> sample): {} ms",
        cold.display(3)
    );
    println!(
        "warm sampled load  (local-cache hit -> sample):      {} ms",
        warm.display(3)
    );
    println!(
        "sampled payload: {:?} of full {:?} ({}x reduction)",
        metas[0].dims,
        args.dims,
        (args.dims.0 * args.dims.1 * args.dims.2) as f64
            / metas[0].dims.iter().product::<usize>() as f64
    );
    println!();
    println!(
        "shape check: metadata pass ≪ one cold load; warm loads served from the node-local tier"
    );
    let _ = std::fs::remove_dir_all(&base);
}
