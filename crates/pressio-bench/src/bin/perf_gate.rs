//! CI perf/regression gate for the serving path.
//!
//! Compares the freshly generated `BENCH_serve.json` (from
//! `cargo bench -p pressio-bench --bench serve`, typically in
//! `PRESSIO_BENCH_QUICK=1` mode on PRs) against the committed baseline in
//! `ci/serve_baseline.json`, and fails when single-shard throughput drops
//! or cache-hit latency rises beyond the baseline's tolerances. CI
//! runners are noisy, so the tolerances are deliberately generous: the
//! gate exists to catch structural regressions (a lost cache, an
//! accidental serialization point), not 5% jitter.
//!
//! A second mode gates the single-thread SIMD-lane kernels: `--kernels`
//! compares the per-kernel scalar-vs-lane entries of `BENCH_parallel.json`
//! (from `cargo bench -p pressio-bench --bench parallel`, quick mode on
//! PRs) against `ci/parallel_baseline.json`. Each kernel is held to two
//! bars: a machine-independent `min_speedup` floor on the scalar/lane
//! min-time ratio — the real teeth, immune to runner hardware — and a
//! generous tolerance band around the recorded lane throughput that
//! catches "the kernel silently fell back to scalar" on comparable
//! hardware.
//!
//! A third mode gates compressor auto-selection: `--select` compares the
//! regret numbers in `BENCH_select.json` (from
//! `cargo bench -p pressio-bench --bench select`, quick mode on PRs)
//! against `ci/select_baseline.json`. Selection regret is
//! machine-independent — it measures ranking quality, not speed — so the
//! gate's ceilings are absolute percentages, not tolerance bands around a
//! recorded value: mean regret over the hurricane fields must stay at or
//! under the baseline's `max_mean_regret_pct` (the paper-level 5% bar)
//! and no single field may exceed `max_field_regret_pct`.
//!
//! Usage:
//!   perf_gate                      gate the serving path
//!   perf_gate --update             refresh the serve baseline's metrics
//!   perf_gate --kernels            gate the lane kernels
//!   perf_gate --kernels --update   refresh per-kernel lane throughput
//!                                  (min_speedup floors and tolerances are
//!                                  preserved)
//!   perf_gate --select             gate selection regret
//!   perf_gate --select --update    refresh the recorded regret numbers
//!                                  (the regret ceilings are preserved)
//!   perf_gate --stream             gate the streaming path
//!   perf_gate --stream --update    refresh recorded streamed throughput
//!                                  (memory/online bars are preserved)
//!
//! A fourth mode gates the streaming path: `--stream` checks
//! `BENCH_stream.json` (from `cargo bench -p pressio-bench --bench stream`,
//! quick mode on PRs) against `ci/stream_baseline.json`. Its teeth are
//! machine-independent: the streamed peak working set must stay flat as
//! the timestep count grows 8 → 48 (the bounded-memory claim) and stay
//! under the whole-buffer working set; the online-learning rolling error
//! must end at or below where it started with at least one refit. A
//! generous tolerance band around recorded streamed throughput catches
//! "chunking suddenly costs 10x" on comparable hardware.

use serde::{Deserialize, Serialize};
use serde_json::parse_content;
use std::path::{Path, PathBuf};
use std::process::ExitCode;

#[derive(Serialize, Deserialize)]
struct SingleShard {
    requests_per_s: f64,
    cache_hit_mean_ms: f64,
}

#[derive(Serialize, Deserialize)]
struct Tolerance {
    /// Allowed fractional throughput drop before the gate fails.
    throughput_drop_frac: f64,
    /// Allowed fractional cache-hit latency rise before the gate fails.
    cache_hit_rise_frac: f64,
}

#[derive(Serialize, Deserialize)]
struct Baseline {
    comment: String,
    single_shard: SingleShard,
    tolerance: Tolerance,
}

fn repo_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("../..")
}

fn read_text(path: &Path) -> String {
    std::fs::read_to_string(path).unwrap_or_else(|e| panic!("reading {}: {e}", path.display()))
}

/// Walk a `Content` tree by map keys / sequence indices.
fn lookup<'a>(mut node: &'a serde::Content, path: &[&str]) -> Option<&'a serde::Content> {
    for step in path {
        node = match node {
            serde::Content::Map(entries) => &entries.iter().find(|(k, _)| k == step)?.1,
            serde::Content::Seq(items) => items.get(step.parse::<usize>().ok()?)?,
            _ => return None,
        };
    }
    Some(node)
}

fn as_f64(node: &serde::Content) -> Option<f64> {
    match node {
        serde::Content::F64(v) => Some(*v),
        serde::Content::I64(v) => Some(*v as f64),
        serde::Content::U64(v) => Some(*v as f64),
        _ => None,
    }
}

fn metric(bench: &serde::Content, path: &[&str]) -> f64 {
    lookup(bench, path)
        .and_then(as_f64)
        .unwrap_or_else(|| panic!("BENCH_serve.json: missing numeric field {}", path.join(".")))
}

/// Single-shard throughput from the scaling curve (falls back to the
/// multi-client throughput block for pre-scaling bench files).
fn single_shard_rps(bench: &serde::Content) -> f64 {
    if let Some(serde::Content::Seq(points)) = lookup(bench, &["scaling"]) {
        for p in points {
            if lookup(p, &["shards"]).and_then(as_f64) == Some(1.0) {
                return lookup(p, &["requests_per_s"])
                    .and_then(as_f64)
                    .expect("scaling point without requests_per_s");
            }
        }
    }
    metric(bench, &["throughput", "requests_per_s"])
}

// ---- SIMD-lane kernel gate --------------------------------------------------

#[derive(Serialize, Deserialize)]
struct KernelBar {
    name: String,
    /// Recorded lane throughput (min-of-N), machine-dependent; refreshed
    /// by `--kernels --update`.
    lane_mb_per_s: f64,
    /// Machine-independent floor on the scalar/lane speedup ratio; a
    /// kernel whose lane path stops beating its scalar twin by at least
    /// this factor fails the gate on any hardware.
    min_speedup: f64,
}

#[derive(Serialize, Deserialize)]
struct KernelBaseline {
    comment: String,
    kernels: Vec<KernelBar>,
    tolerance: Tolerance,
}

fn kernel_gate(update: bool) -> ExitCode {
    let bench_path = repo_root().join("BENCH_parallel.json");
    let baseline_path = repo_root().join("ci/parallel_baseline.json");
    let bench = parse_content(&read_text(&bench_path))
        .unwrap_or_else(|e| panic!("parsing {}: {e}", bench_path.display()));

    let kernels = match lookup(&bench, &["kernels"]) {
        Some(serde::Content::Seq(items)) => items,
        _ => panic!(
            "BENCH_parallel.json has no kernels section; regenerate with \
             `cargo bench -p pressio-bench --bench parallel`"
        ),
    };
    let find = |name: &str| -> Option<(f64, f64)> {
        kernels
            .iter()
            .find(|k| matches!(lookup(k, &["name"]), Some(serde::Content::Str(s)) if s == name))
            .map(|k| {
                (
                    lookup(k, &["speedup"]).and_then(as_f64).unwrap_or(0.0),
                    lookup(k, &["lane_mb_per_s"])
                        .and_then(as_f64)
                        .unwrap_or(0.0),
                )
            })
    };

    let mut baseline: KernelBaseline = serde_json::from_str(&read_text(&baseline_path))
        .unwrap_or_else(|e| panic!("parsing {}: {e}", baseline_path.display()));

    if update {
        for bar in &mut baseline.kernels {
            let (_, mbs) = find(&bar.name)
                .unwrap_or_else(|| panic!("BENCH_parallel.json has no kernel '{}'", bar.name));
            bar.lane_mb_per_s = mbs;
        }
        let json = serde_json::to_string(&baseline).expect("baseline serializes");
        std::fs::write(&baseline_path, json + "\n")
            .unwrap_or_else(|e| panic!("writing {}: {e}", baseline_path.display()));
        println!("kernel baseline refreshed from BENCH_parallel.json");
        return ExitCode::SUCCESS;
    }

    let tol = baseline.tolerance.throughput_drop_frac;
    let mut failed = false;
    for bar in &baseline.kernels {
        let Some((speedup, mbs)) = find(&bar.name) else {
            eprintln!(
                "FAIL: kernel '{}' missing from BENCH_parallel.json",
                bar.name
            );
            failed = true;
            continue;
        };
        let floor = bar.lane_mb_per_s * (1.0 - tol);
        println!(
            "{:<18} speedup {speedup:.2}x (floor {:.2}x)  lane {mbs:.0} MB/s (floor {floor:.0})",
            bar.name, bar.min_speedup
        );
        if speedup < bar.min_speedup {
            eprintln!(
                "FAIL: {} lane path is only {speedup:.2}x its scalar twin (floor {:.2}x)",
                bar.name, bar.min_speedup
            );
            failed = true;
        }
        if mbs < floor {
            eprintln!(
                "FAIL: {} lane throughput regressed {:.0}% below baseline (tolerance {:.0}%)",
                bar.name,
                (1.0 - mbs / bar.lane_mb_per_s) * 100.0,
                tol * 100.0
            );
            failed = true;
        }
    }
    if failed {
        eprintln!(
            "if this change intentionally trades kernel performance, refresh the baseline:\n  \
             PRESSIO_BENCH_QUICK=1 cargo bench -p pressio-bench --bench parallel\n  \
             cargo run -p pressio-bench --bin perf_gate -- --kernels --update"
        );
        return ExitCode::FAILURE;
    }
    println!("kernel perf gate passed");
    ExitCode::SUCCESS
}

// ---- selection regret gate --------------------------------------------------

#[derive(Serialize, Deserialize)]
struct SelectBaseline {
    comment: String,
    /// Last recorded run (informational; refreshed by `--select --update`).
    recorded_mean_regret_pct: f64,
    recorded_max_regret_pct: f64,
    recorded_exact_matches: u64,
    recorded_fields: u64,
    /// Machine-independent ceilings — the gate's teeth.
    max_mean_regret_pct: f64,
    max_field_regret_pct: f64,
}

fn select_gate(update: bool) -> ExitCode {
    let bench_path = repo_root().join("BENCH_select.json");
    let baseline_path = repo_root().join("ci/select_baseline.json");
    let bench = parse_content(&read_text(&bench_path))
        .unwrap_or_else(|e| panic!("parsing {}: {e}", bench_path.display()));

    let mean = lookup(&bench, &["mean_regret_pct"])
        .and_then(as_f64)
        .expect("BENCH_select.json: missing mean_regret_pct");
    let max = lookup(&bench, &["max_regret_pct"])
        .and_then(as_f64)
        .expect("BENCH_select.json: missing max_regret_pct");
    let exact = lookup(&bench, &["exact_matches"])
        .and_then(as_f64)
        .unwrap_or(0.0);
    let fields = match lookup(&bench, &["fields"]) {
        Some(serde::Content::Seq(items)) => items.len(),
        _ => 0,
    };

    let mut baseline: SelectBaseline = serde_json::from_str(&read_text(&baseline_path))
        .unwrap_or_else(|e| panic!("parsing {}: {e}", baseline_path.display()));

    if update {
        baseline.recorded_mean_regret_pct = mean;
        baseline.recorded_max_regret_pct = max;
        baseline.recorded_exact_matches = exact as u64;
        baseline.recorded_fields = fields as u64;
        let json = serde_json::to_string(&baseline).expect("baseline serializes");
        std::fs::write(&baseline_path, json + "\n")
            .unwrap_or_else(|e| panic!("writing {}: {e}", baseline_path.display()));
        println!(
            "select baseline refreshed: mean regret {mean:.2}%, max {max:.2}%, \
             {exact:.0}/{fields} exact"
        );
        return ExitCode::SUCCESS;
    }

    println!(
        "selection regret: mean {mean:.2}% (ceiling {:.2}%)  max {max:.2}% (ceiling {:.2}%)  \
         {exact:.0}/{fields} fields match the oracle",
        baseline.max_mean_regret_pct, baseline.max_field_regret_pct
    );
    let mut failed = false;
    if mean > baseline.max_mean_regret_pct {
        eprintln!(
            "FAIL: mean selection regret {mean:.2}% exceeds the {:.2}% ceiling",
            baseline.max_mean_regret_pct
        );
        failed = true;
    }
    if max > baseline.max_field_regret_pct {
        eprintln!(
            "FAIL: a field's selection regret {max:.2}% exceeds the {:.2}% ceiling",
            baseline.max_field_regret_pct
        );
        failed = true;
    }
    if failed {
        eprintln!(
            "the selector is mis-ranking candidates; inspect BENCH_select.json per-field rows:\n  \
             PRESSIO_BENCH_QUICK=1 cargo bench -p pressio-bench --bench select\n  \
             cargo run -p pressio-bench --bin perf_gate -- --select --update  (refresh recorded \
             numbers once the regression is understood)"
        );
        return ExitCode::FAILURE;
    }
    println!("select regret gate passed");
    ExitCode::SUCCESS
}

// ---- streaming gate ---------------------------------------------------------

#[derive(Serialize, Deserialize)]
struct StreamBaseline {
    comment: String,
    /// Recorded streamed throughput (machine-dependent; refreshed by
    /// `--stream --update`).
    recorded_streamed_mb_per_s: f64,
    /// Allowed fractional throughput drop before the gate fails.
    throughput_drop_frac: f64,
    /// Machine-independent bars — the gate's teeth.
    /// Allowed fractional growth of the streamed peak working set between
    /// the smallest and largest timestep counts (bounded-memory claim).
    max_peak_growth_frac: f64,
    /// The online learner must refit at least this many times mid-stream.
    min_refits: u64,
}

fn stream_gate(update: bool) -> ExitCode {
    let bench_path = repo_root().join("BENCH_stream.json");
    let baseline_path = repo_root().join("ci/stream_baseline.json");
    let bench = parse_content(&read_text(&bench_path))
        .unwrap_or_else(|e| panic!("parsing {}: {e}", bench_path.display()));

    let streamed_mbs = lookup(&bench, &["throughput", "streamed_mb_per_s"])
        .and_then(as_f64)
        .expect("BENCH_stream.json: missing throughput.streamed_mb_per_s");

    let mut baseline: StreamBaseline = serde_json::from_str(&read_text(&baseline_path))
        .unwrap_or_else(|e| panic!("parsing {}: {e}", baseline_path.display()));

    if update {
        baseline.recorded_streamed_mb_per_s = streamed_mbs;
        let json = serde_json::to_string(&baseline).expect("baseline serializes");
        std::fs::write(&baseline_path, json + "\n")
            .unwrap_or_else(|e| panic!("writing {}: {e}", baseline_path.display()));
        println!("stream baseline refreshed: {streamed_mbs:.1} MB/s streamed");
        return ExitCode::SUCCESS;
    }

    let mut failed = false;

    // bounded memory: streaming 6x more timesteps must not grow the peak
    // working set, and the peak must stay under the whole-buffer footprint
    let points = match lookup(&bench, &["memory", "points"]) {
        Some(serde::Content::Seq(items)) if items.len() >= 2 => items,
        _ => panic!("BENCH_stream.json: memory.points needs at least two entries"),
    };
    let point = |p: &serde::Content, key: &str| {
        lookup(p, &[key])
            .and_then(as_f64)
            .unwrap_or_else(|| panic!("BENCH_stream.json: memory point missing {key}"))
    };
    let (small, large) = (&points[0], &points[points.len() - 1]);
    let (t_small, t_large) = (point(small, "timesteps"), point(large, "timesteps"));
    let (peak_small, peak_large) = (
        point(small, "peak_working_set_bytes"),
        point(large, "peak_working_set_bytes"),
    );
    let peak_ceiling = peak_small * (1.0 + baseline.max_peak_growth_frac);
    let whole = lookup(&bench, &["memory", "whole_buffer_working_set_bytes"])
        .and_then(as_f64)
        .expect("BENCH_stream.json: missing memory.whole_buffer_working_set_bytes");
    println!(
        "peak working set: {peak_small:.0} B at t={t_small:.0} -> {peak_large:.0} B at \
         t={t_large:.0} (ceiling {peak_ceiling:.0}), whole-buffer {whole:.0} B"
    );
    if peak_large > peak_ceiling {
        eprintln!(
            "FAIL: streamed peak working set grew {:.1}% from t={t_small:.0} to t={t_large:.0} \
             (allowed {:.1}%) — memory is no longer bounded in the timestep count",
            (peak_large / peak_small - 1.0) * 100.0,
            baseline.max_peak_growth_frac * 100.0
        );
        failed = true;
    }
    if peak_large >= whole {
        eprintln!(
            "FAIL: streamed peak working set {peak_large:.0} B is not below the whole-buffer \
             working set {whole:.0} B"
        );
        failed = true;
    }

    // online learning: the rolling error trajectory must converge
    let errors = match lookup(&bench, &["online", "rolling_error"]) {
        Some(serde::Content::Seq(items)) => items.iter().filter_map(as_f64).collect::<Vec<_>>(),
        _ => panic!("BENCH_stream.json: missing online.rolling_error"),
    };
    let cummin = match lookup(&bench, &["online", "cummin_rolling_error"]) {
        Some(serde::Content::Seq(items)) => items.iter().filter_map(as_f64).collect::<Vec<_>>(),
        _ => panic!("BENCH_stream.json: missing online.cummin_rolling_error"),
    };
    let refits = lookup(&bench, &["online", "refits"])
        .and_then(as_f64)
        .expect("BENCH_stream.json: missing online.refits");
    let (initial, last) = (
        errors.first().copied().unwrap_or(f64::NAN),
        errors.last().copied().unwrap_or(f64::NAN),
    );
    println!(
        "online: {refits:.0} refits over {} chunks, rolling error {initial:.3} -> {last:.3}",
        errors.len()
    );
    if cummin.windows(2).any(|w| w[1] > w[0]) {
        eprintln!("FAIL: online.cummin_rolling_error is not non-increasing");
        failed = true;
    }
    // NaN fails closed: a missing trajectory is a gate failure
    if last.is_nan() || initial.is_nan() || last > initial {
        eprintln!(
            "FAIL: online rolling error ended at {last:.4}, above its starting {initial:.4} — \
             mid-stream refits are not refining the model"
        );
        failed = true;
    }
    if refits < baseline.min_refits as f64 {
        eprintln!(
            "FAIL: only {refits:.0} online refits (need at least {})",
            baseline.min_refits
        );
        failed = true;
    }

    // throughput: generous band, catches structural chunking regressions
    let floor = baseline.recorded_streamed_mb_per_s * (1.0 - baseline.throughput_drop_frac);
    println!(
        "streamed throughput: {streamed_mbs:.1} MB/s (baseline {:.1}, floor {floor:.1})",
        baseline.recorded_streamed_mb_per_s
    );
    if streamed_mbs < floor {
        eprintln!(
            "FAIL: streamed throughput regressed {:.0}% below baseline (tolerance {:.0}%)",
            (1.0 - streamed_mbs / baseline.recorded_streamed_mb_per_s) * 100.0,
            baseline.throughput_drop_frac * 100.0
        );
        failed = true;
    }

    if failed {
        eprintln!(
            "if this change intentionally trades streaming performance, refresh the baseline:\n  \
             PRESSIO_BENCH_QUICK=1 cargo bench -p pressio-bench --bench stream\n  \
             cargo run -p pressio-bench --bin perf_gate -- --stream --update"
        );
        return ExitCode::FAILURE;
    }
    println!("stream gate passed");
    ExitCode::SUCCESS
}

fn main() -> ExitCode {
    let update = std::env::args().any(|a| a == "--update");
    if std::env::args().any(|a| a == "--kernels") {
        return kernel_gate(update);
    }
    if std::env::args().any(|a| a == "--select") {
        return select_gate(update);
    }
    if std::env::args().any(|a| a == "--stream") {
        return stream_gate(update);
    }
    let bench_path = repo_root().join("BENCH_serve.json");
    let baseline_path = repo_root().join("ci/serve_baseline.json");
    let bench = parse_content(&read_text(&bench_path))
        .unwrap_or_else(|e| panic!("parsing {}: {e}", bench_path.display()));

    let rps = single_shard_rps(&bench);
    let hit_ms = metric(&bench, &["cache_hit", "mean_ms"]);

    if update {
        let old: Baseline = serde_json::from_str(&read_text(&baseline_path))
            .unwrap_or_else(|e| panic!("parsing {}: {e}", baseline_path.display()));
        let refreshed = Baseline {
            comment: old.comment,
            single_shard: SingleShard {
                requests_per_s: rps,
                cache_hit_mean_ms: hit_ms,
            },
            tolerance: old.tolerance,
        };
        let json = serde_json::to_string(&refreshed).expect("baseline serializes");
        std::fs::write(&baseline_path, json + "\n")
            .unwrap_or_else(|e| panic!("writing {}: {e}", baseline_path.display()));
        println!("baseline refreshed: {rps:.0} req/s single-shard, {hit_ms:.3} ms cache-hit");
        return ExitCode::SUCCESS;
    }

    let baseline: Baseline = serde_json::from_str(&read_text(&baseline_path))
        .unwrap_or_else(|e| panic!("parsing {}: {e}", baseline_path.display()));
    let base = &baseline.single_shard;
    let tol = &baseline.tolerance;
    let rps_floor = base.requests_per_s * (1.0 - tol.throughput_drop_frac);
    let hit_ceiling = base.cache_hit_mean_ms * (1.0 + tol.cache_hit_rise_frac);

    println!(
        "single-shard throughput: {rps:.0} req/s (baseline {:.0}, floor {rps_floor:.0})",
        base.requests_per_s
    );
    println!(
        "cache-hit latency:       {hit_ms:.3} ms (baseline {:.3}, ceiling {hit_ceiling:.3})",
        base.cache_hit_mean_ms
    );

    let mut failed = false;
    if rps < rps_floor {
        eprintln!(
            "FAIL: single-shard throughput regressed {:.0}% below baseline (tolerance {:.0}%)",
            (1.0 - rps / base.requests_per_s) * 100.0,
            tol.throughput_drop_frac * 100.0
        );
        failed = true;
    }
    if hit_ms > hit_ceiling {
        eprintln!(
            "FAIL: cache-hit latency regressed {:.0}% above baseline (tolerance {:.0}%)",
            (hit_ms / base.cache_hit_mean_ms - 1.0) * 100.0,
            tol.cache_hit_rise_frac * 100.0
        );
        failed = true;
    }
    if failed {
        eprintln!(
            "if this change intentionally trades serve performance, refresh the baseline:\n  \
             PRESSIO_BENCH_QUICK=1 cargo bench -p pressio-bench --bench serve\n  \
             cargo run -p pressio-bench --bin perf_gate -- --update"
        );
        return ExitCode::FAILURE;
    }
    println!("perf gate passed");
    ExitCode::SUCCESS
}
