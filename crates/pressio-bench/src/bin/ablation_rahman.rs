//! Ablation: FXRZ design choices (paper §6 credits the **sparsity
//! correction** for Rahman's winning MedAPE on mixed sparse/dense
//! Hurricane data; Rahman 2023 credits **data augmentation** for reducing
//! training cost). This sweep toggles both and reports out-of-sample
//! MedAPE split by sparse vs dense fields.
//!
//! Thin wrapper: the study body lives in `pressio_bench::ablations` so
//! `pressio bench --ablation rahman` runs the identical code in-process.

use pressio_bench::BenchArgs;

fn main() {
    let args = BenchArgs::parse(std::env::args().skip(1));
    pressio_bench::ablations::rahman(&args, &mut std::io::stdout().lock()).unwrap();
}
