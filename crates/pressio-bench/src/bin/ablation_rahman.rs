//! Ablation: FXRZ design choices (paper §6 credits the **sparsity
//! correction** for Rahman's winning MedAPE on mixed sparse/dense
//! Hurricane data; Rahman 2023 credits **data augmentation** for reducing
//! training cost). This sweep toggles both and reports out-of-sample
//! MedAPE split by sparse vs dense fields.

use pressio_bench::BenchArgs;
use pressio_core::{Compressor, Options};
use pressio_dataset::{DatasetPlugin, Hurricane};
use pressio_predict::schemes::RahmanScheme;
use pressio_predict::Scheme;
use pressio_stats::k_folds;
use pressio_sz::SzCompressor;

fn main() {
    let args = BenchArgs::parse(std::env::args().skip(1));
    let timesteps = if args.quick { 3 } else { 8 };
    let mut hurricane = Hurricane::with_dims(args.dims.0, args.dims.1, args.dims.2, timesteps);
    let n = hurricane.len();
    let mut datasets = Vec::new();
    let mut sparse_flags = Vec::new();
    for i in 0..n {
        let meta = hurricane.load_metadata(i).unwrap();
        sparse_flags.push(meta.attributes.get_bool("hurricane:sparse").unwrap());
        datasets.push(hurricane.load_data(i).unwrap());
    }
    let mut sz = SzCompressor::new();
    sz.set_options(&Options::new().with("pressio:abs", 1e-4))
        .unwrap();
    let truths: Vec<f64> = datasets
        .iter()
        .map(|d| d.size_in_bytes() as f64 / sz.compress(d).unwrap().len() as f64)
        .collect();

    println!("# Ablation: rahman2023 sparsity correction x data augmentation (sz3, abs=1e-4)\n");
    println!("| sparsity correction | augmentation | MedAPE all (%) | MedAPE sparse (%) | MedAPE dense (%) |");
    println!("|---|---|---|---|---|");
    for sparsity in [true, false] {
        for augmentation in [2.0f64, 0.0] {
            let scheme = RahmanScheme {
                sparsity_correction: sparsity,
                augmentation,
            };
            let feats: Vec<Options> = datasets
                .iter()
                .map(|d| {
                    let mut f = scheme.error_agnostic_features(d).unwrap();
                    f.merge_from(&scheme.error_dependent_features(d, &sz).unwrap());
                    f
                })
                .collect();
            // out-of-sample via 5 folds
            let mut pred = vec![0.0f64; n];
            for fold in k_folds(n, 5, 99) {
                let train_f: Vec<Options> = fold.train.iter().map(|&i| feats[i].clone()).collect();
                let train_t: Vec<f64> = fold.train.iter().map(|&i| truths[i]).collect();
                let mut p = scheme.make_predictor();
                p.fit(&train_f, &train_t).unwrap();
                for &i in &fold.validate {
                    pred[i] = p.predict(&feats[i]).unwrap();
                }
            }
            let all = pressio_stats::medape(&truths, &pred).unwrap();
            let (mut st, mut sp, mut dt, mut dp) = (vec![], vec![], vec![], vec![]);
            for i in 0..n {
                if sparse_flags[i] {
                    st.push(truths[i]);
                    sp.push(pred[i]);
                } else {
                    dt.push(truths[i]);
                    dp.push(pred[i]);
                }
            }
            let sparse = pressio_stats::medape(&st, &sp).unwrap_or(f64::NAN);
            let dense = pressio_stats::medape(&dt, &dp).unwrap_or(f64::NAN);
            println!(
                "| {} | {} | {all:.1} | {sparse:.1} | {dense:.1} |",
                if sparsity { "on" } else { "off" },
                if augmentation > 0.0 { "on" } else { "off" },
            );
        }
    }
    println!(
        "\nshape check: disabling the sparsity features should hurt most on the sparse fields"
    );
}
