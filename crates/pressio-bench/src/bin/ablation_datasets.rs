//! Future-work item 2 of the paper (§7): extend the evaluation beyond
//! weather data. Runs the out-of-sample prediction comparison on four
//! structurally distinct synthetic families (turbulence, shocks, wave
//! packets, plateaus) and reports per-family MedAPE for each scheme —
//! "different datasets have different structural patterns".

use pressio_bench::BenchArgs;
use pressio_core::{Compressor, Options};
use pressio_dataset::{synthetic::FAMILIES, DatasetPlugin, SyntheticSuite};
use pressio_predict::registry::standard_schemes;
use pressio_stats::{k_folds, medape};
use pressio_sz::SzCompressor;

fn main() {
    let args = BenchArgs::parse(std::env::args().skip(1));
    let realizations = if args.quick { 4 } else { 10 };
    let mut suite = SyntheticSuite::new(args.dims.0, args.dims.1, args.dims.2, realizations);
    let n = suite.len();
    let mut datasets = Vec::new();
    let mut families = Vec::new();
    for i in 0..n {
        let meta = suite.load_metadata(i).unwrap();
        families.push(
            meta.attributes
                .get_str("synthetic:family")
                .unwrap()
                .to_string(),
        );
        datasets.push(suite.load_data(i).unwrap());
    }
    let mut sz = SzCompressor::new();
    sz.set_options(&Options::new().with("pressio:abs", 1e-4))
        .unwrap();
    let truths: Vec<f64> = datasets
        .iter()
        .map(|d| d.size_in_bytes() as f64 / sz.compress(d).unwrap().len() as f64)
        .collect();

    let registry = standard_schemes();
    println!("# Non-weather dataset study: out-of-sample MedAPE by family (sz3 @1e-4)\n");
    print!("| scheme |");
    for f in FAMILIES {
        print!(" {f} |");
    }
    println!(" all |");
    print!("|---|");
    for _ in FAMILIES {
        print!("---|");
    }
    println!("---|");
    for name in ["khan2023", "jin2022", "rahman2023", "krasowska2021"] {
        let scheme = registry.build(name).unwrap();
        let trainable = scheme.make_predictor().requires_training();
        let feats: Vec<Options> = datasets
            .iter()
            .map(|d| {
                let mut f = scheme.error_agnostic_features(d).unwrap();
                f.merge_from(&scheme.error_dependent_features(d, &sz).unwrap());
                f
            })
            .collect();
        let mut preds = vec![0.0f64; n];
        if trainable {
            for fold in k_folds(n, 5, 17) {
                let train_f: Vec<Options> = fold.train.iter().map(|&i| feats[i].clone()).collect();
                let train_t: Vec<f64> = fold.train.iter().map(|&i| truths[i]).collect();
                let mut p = scheme.make_predictor();
                p.fit(&train_f, &train_t).unwrap();
                for &i in &fold.validate {
                    preds[i] = p.predict(&feats[i]).unwrap();
                }
            }
        } else {
            let p = scheme.make_predictor();
            for i in 0..n {
                preds[i] = p.predict(&feats[i]).unwrap();
            }
        }
        print!("| {name} |");
        for family in FAMILIES {
            let (t, p): (Vec<f64>, Vec<f64>) = truths
                .iter()
                .zip(&preds)
                .zip(&families)
                .filter(|(_, f)| f.as_str() == family)
                .map(|((t, p), _)| (*t, *p))
                .unzip();
            print!(" {:.1} |", medape(&t, &p).unwrap_or(f64::NAN));
        }
        println!(" {:.1} |", medape(&truths, &preds).unwrap());
    }
    println!("\nshape check: calculation methods are family-sensitive (shock/plateau stress them differently); trained methods track all families once trained on them");
}
