//! Future-work item 2 of the paper (§7): extend the evaluation beyond
//! weather data. Runs the out-of-sample prediction comparison on four
//! structurally distinct synthetic families (turbulence, shocks, wave
//! packets, plateaus) and reports per-family MedAPE for each scheme —
//! "different datasets have different structural patterns".
//!
//! Thin wrapper: the study body lives in `pressio_bench::ablations` so
//! `pressio bench --ablation datasets` runs the identical code in-process.

use pressio_bench::BenchArgs;

fn main() {
    let args = BenchArgs::parse(std::env::args().skip(1));
    pressio_bench::ablations::datasets(&args, &mut std::io::stdout().lock()).unwrap();
}
