//! Regenerates **Table 1** of the paper (the estimation-method taxonomy)
//! from the live scheme registry's self-describing capability metadata —
//! the registry introspection the paper's §4.2 provides for exactly this.
//!
//! All ten rows of the paper's Table 1 are implemented and registered;
//! the reference block below reprints the paper's table for comparison.

use pressio_predict::registry::standard_schemes;
use pressio_predict::scheme::format_table1;

fn main() {
    let registry = standard_schemes();
    let schemes: Vec<_> = registry
        .names()
        .iter()
        .map(|n| registry.build(n).expect("registered scheme builds"))
        .collect();
    let refs: Vec<&dyn pressio_predict::Scheme> = schemes.iter().map(|b| b.as_ref()).collect();
    println!("# Table 1: Estimation Methods (from live registry metadata)\n");
    print!("{}", format_table1(&refs));
    println!();
    println!("paper reference rows (for comparison):");
    println!("| Tao [15]       | ✗ | ✓ | ~ | fast     | CR            | trial-based      |             |");
    println!("| Krasowska [9]  | ✓ | ✗ | ✓ | accurate | CR            | regression       |             |");
    println!("| Underwood [17] | ✓ | ✗ | ✓ | accurate | CR            | regression       |             |");
    println!("| Ganguli [2]    | ✓ | ✗ | ✓ | accurate | CR            | regression       | bounded     |");
    println!("| Jin [5, 6]     | ✓ | ✗ | ✗ | fast     | CR, Bandwidth | calculation      |             |");
    println!("| Khan [7]       | ✗ | ✓ | ✗ | fast     | CR            | calculation      |             |");
    println!("| Rahman [13]    | ✓ | ✓ | ~ | fast     | various       | machine learning |             |");
    println!("| Lu [11]        | ✓ | ✓ | ✗ | accurate | CR            | regression       |             |");
    println!("| Qin [12]       | ✓ | ✓ | ✗ | accurate | CR            | deep learning    |             |");
    println!("| Wang [20]      | ✓ | ✓ | ✗ | accurate | CR            | calculation      | counterfactuals |");
}
