//! Selection-regret bench: how much compression ratio does the
//! `pressio-select` meta-codec give up versus an oracle that compresses
//! every hurricane field with every policy-admissible (codec, bound)
//! candidate and keeps the best? Regret is computed over the same
//! admissible grid the selector chooses from, so it measures exactly the
//! ranking error of the trial consult — not the policy itself. Writes a
//! `BENCH_select.json` summary to the repo root for CI's regret gate
//! (`perf_gate --select` against `ci/select_baseline.json`).
//!
//! `PRESSIO_BENCH_QUICK=1` skips the criterion wall and shrinks the field
//! set: that is the PR-speed mode the CI `perf` job runs.

use criterion::{criterion_group, Criterion};
use pressio_core::{Compressor, Data};
use pressio_dataset::{DatasetPlugin, Hurricane};
use pressio_predict::standard_compressors;
use pressio_select::{decode_header, Policy, SelectCodec};
use std::collections::BTreeMap;

fn quick_mode() -> bool {
    std::env::var("PRESSIO_BENCH_QUICK").is_ok_and(|v| !v.trim().is_empty() && v != "0")
}

const DIMS: (usize, usize, usize) = (16, 16, 8);

fn fields(limit: usize) -> Vec<(String, Data)> {
    let mut hurricane = Hurricane::with_dims(DIMS.0, DIMS.1, DIMS.2, 1);
    (0..hurricane.len().min(limit))
        .map(|i| {
            let name = hurricane.load_metadata(i).unwrap().name;
            (name, hurricane.load_data(i).unwrap())
        })
        .collect()
}

/// Actual ratio of one admissible candidate, measured the same way for the
/// oracle and the selector: uncompressed bytes over compressed stream bytes.
fn candidate_ratio(data: &Data, codec: &str, abs: f64) -> f64 {
    let mut comp = standard_compressors().build(codec).unwrap();
    comp.set_options(&pressio_core::Options::new().with("pressio:abs", abs))
        .unwrap();
    let stream = comp.compress(data).unwrap();
    data.size_in_bytes() as f64 / stream.len().max(1) as f64
}

fn bench_select(c: &mut Criterion) {
    let (_, data) = fields(1).pop().unwrap();
    let codec = SelectCodec::new();
    let mut group = c.benchmark_group("select");
    group.bench_function("trial_decide", |b| {
        b.iter(|| criterion::black_box(codec.decide(&data)))
    });
    group.bench_function("compress_with_header", |b| {
        b.iter(|| criterion::black_box(codec.compress(&data).unwrap()))
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_select
}

// ---- BENCH_select.json summary ---------------------------------------------

#[derive(serde::Serialize)]
struct FieldResult {
    field: String,
    /// What the selector picked (codec @ abs) and whether it consulted.
    selected_codec: String,
    selected_abs: f64,
    consult: String,
    /// Best candidate over the admissible grid: `codec @ abs`.
    oracle_codec: String,
    oracle_abs: f64,
    selected_ratio: f64,
    oracle_ratio: f64,
    /// max(0, (oracle - selected) / oracle * 100): 0 means the selector
    /// found the oracle's winner.
    regret_pct: f64,
}

#[derive(serde::Serialize)]
struct Summary {
    dims: Vec<usize>,
    psnr_floor: f64,
    quick: bool,
    fields: Vec<FieldResult>,
    /// How often each codec won the selection.
    winner_counts: BTreeMap<String, usize>,
    /// How often the selector agreed with the oracle exactly.
    exact_matches: usize,
    mean_regret_pct: f64,
    max_regret_pct: f64,
}

fn write_summary() {
    let quick = quick_mode();
    let policy = Policy::default();
    let limit = if quick { 6 } else { 13 };
    let select = SelectCodec::new();

    let mut results = Vec::new();
    let mut winner_counts: BTreeMap<String, usize> = BTreeMap::new();
    for (field, data) in fields(limit) {
        // the admissible grid: every codec at every bound the policy allows
        let range = pressio_select::value_range(&data);
        let admissible = policy.feasible_bounds(range);
        let (mut oracle_codec, mut oracle_abs, mut oracle_ratio) = ("", 0.0, f64::NEG_INFINITY);
        for codec in pressio_select::CODECS {
            for &abs in &admissible {
                let ratio = candidate_ratio(&data, codec, abs);
                if ratio > oracle_ratio {
                    (oracle_codec, oracle_abs, oracle_ratio) = (codec, abs, ratio);
                }
            }
        }

        // the selector's pick, measured on the container it actually wrote:
        // payload after the decision-record header is the winner's stream
        let container = select.compress(&data).unwrap();
        let (record, offset) = decode_header(&container).unwrap();
        let selected_ratio = data.size_in_bytes() as f64 / (container.len() - offset).max(1) as f64;

        let regret_pct = ((oracle_ratio - selected_ratio) / oracle_ratio * 100.0).max(0.0);
        *winner_counts.entry(record.codec.clone()).or_insert(0) += 1;
        results.push(FieldResult {
            field,
            selected_codec: record.codec,
            selected_abs: record.abs,
            consult: record.consult,
            oracle_codec: oracle_codec.to_string(),
            oracle_abs,
            selected_ratio,
            oracle_ratio,
            regret_pct,
        });
    }

    let exact_matches = results
        .iter()
        .filter(|r| r.selected_codec == r.oracle_codec && r.selected_abs == r.oracle_abs)
        .count();
    let mean_regret_pct =
        results.iter().map(|r| r.regret_pct).sum::<f64>() / results.len().max(1) as f64;
    let max_regret_pct = results.iter().map(|r| r.regret_pct).fold(0.0, f64::max);
    let summary = Summary {
        dims: vec![DIMS.0, DIMS.1, DIMS.2],
        psnr_floor: policy.psnr_floor,
        quick,
        winner_counts,
        exact_matches,
        mean_regret_pct,
        max_regret_pct,
        fields: results,
    };
    let json = serde_json::to_string(&summary).expect("summary serializes");
    let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_select.json");
    std::fs::write(&path, json + "\n").expect("write BENCH_select.json");
    println!("\nwrote {}", path.display());
    println!(
        "  fields {}  exact matches {}  mean regret {:.2}%  max regret {:.2}%",
        summary.fields.len(),
        summary.exact_matches,
        summary.mean_regret_pct,
        summary.max_regret_pct
    );
    for r in &summary.fields {
        println!(
            "  {:12} selected {:4}@{:.0e} ratio {:7.2}  oracle {:4}@{:.0e} ratio {:7.2}  regret {:5.2}%",
            r.field,
            r.selected_codec,
            r.selected_abs,
            r.selected_ratio,
            r.oracle_codec,
            r.oracle_abs,
            r.oracle_ratio,
            r.regret_pct
        );
    }
}

fn main() {
    if !quick_mode() {
        benches();
    }
    write_summary();
}
