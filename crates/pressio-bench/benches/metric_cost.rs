//! Criterion bench: per-feature metric costs — the §6 comparison where the
//! SVD-truncation metric (~771 ms on the authors' testbed) dwarfs the
//! error-dependent quantized entropy (<43 ms), making the Underwood scheme
//! worthwhile only under heavy reuse.
//! Shape expectation: svd ≫ quant_profile > {qent, variogram, stats}.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use pressio_dataset::{DatasetPlugin, Hurricane};
use pressio_predict::features;

fn bench_metrics(c: &mut Criterion) {
    let mut hurricane = Hurricane::with_dims(64, 64, 32, 1);
    let p_index = pressio_dataset::FIELDS
        .iter()
        .position(|&f| f == "P")
        .unwrap();
    let data = hurricane.load_data(p_index).unwrap();
    let bytes = data.size_in_bytes() as u64;

    let mut group = c.benchmark_group("metric_cost");
    group.throughput(Throughput::Bytes(bytes));
    group.bench_function("global_stats", |b| b.iter(|| features::global_stats(&data)));
    group.bench_function("variogram", |b| {
        b.iter(|| features::variogram_features(&data))
    });
    group.bench_function("quantized_entropy", |b| {
        b.iter(|| features::quantized_entropy_features(&data, 1e-4))
    });
    group.bench_function("spatial_ganguli", |b| {
        b.iter(|| features::spatial_features(&data))
    });
    group.bench_function("sz_quant_profile_full", |b| {
        b.iter(|| features::sz_quantization_profile(&data, 1e-4, 1))
    });
    group.bench_function("sz_quant_profile_sampled", |b| {
        b.iter(|| features::sz_quantization_profile(&data, 1e-4, 4))
    });
    group.bench_function("svd_truncation", |b| {
        b.iter(|| features::svd_features(&data))
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_metrics
}
criterion_main!(benches);
