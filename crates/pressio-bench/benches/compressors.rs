//! Criterion baseline bench: SZ3 and ZFP compression/decompression times on
//! a Hurricane field at both paper error bounds — the §6 baseline numbers
//! ("SZ3 ... 322.8 ± 30.1 ms ... ZFP tends to be faster ... 65.49 ± 25.33").
//! Shape expectation: zfp compress < sz3 compress; decompress < compress.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use pressio_core::{Compressor, Options};
use pressio_dataset::{DatasetPlugin, Hurricane};
use pressio_sz::SzCompressor;
use pressio_zfp::ZfpCompressor;

fn bench_compressors(c: &mut Criterion) {
    let mut hurricane = Hurricane::with_dims(64, 64, 32, 1);
    let p_index = pressio_dataset::FIELDS
        .iter()
        .position(|&f| f == "P")
        .unwrap();
    let data = hurricane.load_data(p_index).unwrap();
    let bytes = data.size_in_bytes() as u64;

    let mut group = c.benchmark_group("compressor_baseline");
    group.throughput(Throughput::Bytes(bytes));
    for abs in [1e-6f64, 1e-4] {
        let opts = Options::new().with("pressio:abs", abs);
        let mut sz = SzCompressor::new();
        sz.set_options(&opts).unwrap();
        let mut zfp = ZfpCompressor::new();
        zfp.set_options(&opts).unwrap();

        group.bench_with_input(BenchmarkId::new("sz3_compress", abs), &abs, |b, _| {
            b.iter(|| sz.compress(&data).unwrap())
        });
        group.bench_with_input(BenchmarkId::new("zfp_compress", abs), &abs, |b, _| {
            b.iter(|| zfp.compress(&data).unwrap())
        });
        let sz_stream = sz.compress(&data).unwrap();
        let zfp_stream = zfp.compress(&data).unwrap();
        group.bench_with_input(BenchmarkId::new("sz3_decompress", abs), &abs, |b, _| {
            b.iter(|| {
                sz.decompress(&sz_stream, data.dtype(), data.dims())
                    .unwrap()
            })
        });
        group.bench_with_input(BenchmarkId::new("zfp_decompress", abs), &abs, |b, _| {
            b.iter(|| {
                zfp.decompress(&zfp_stream, data.dtype(), data.dims())
                    .unwrap()
            })
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_compressors
}
criterion_main!(benches);
