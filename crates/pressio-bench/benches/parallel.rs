//! Data-parallel kernel bench: chunked ZFP encode/decode and parallel
//! feature extraction at 1 thread vs N threads, plus a `BENCH_parallel.json`
//! summary (mean ± std per configuration) written to the repo root so the
//! CI acceptance check can read the speedup without parsing bench output.
//!
//! Determinism note: the 1-thread and N-thread encodes are byte-identical
//! by construction (chunk boundaries are format constants), so this bench
//! measures the same work under both configurations.

use criterion::{criterion_group, BenchmarkId, Criterion, Throughput};
use pressio_core::timing::MeanStd;
use pressio_core::{Compressor, Data, Options};
use pressio_dataset::{DatasetPlugin, Hurricane};
use pressio_predict::features;
use pressio_zfp::ZfpCompressor;
use std::time::Instant;

/// Threads for the parallel configuration: the acceptance criterion is
/// stated at 4 threads, so pin it there and record the host's cores.
const PAR_THREADS: usize = 4;

fn host_cores() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

fn load_field() -> Data {
    let mut hurricane = Hurricane::with_dims(64, 64, 32, 1);
    let p_index = pressio_dataset::FIELDS
        .iter()
        .position(|&f| f == "P")
        .unwrap();
    hurricane.load_data(p_index).unwrap()
}

fn zfp_with_threads(threads: usize) -> ZfpCompressor {
    let mut zfp = ZfpCompressor::new();
    zfp.set_options(
        &Options::new()
            .with("pressio:abs", 1e-4)
            .with("pressio:nthreads", threads as u64),
    )
    .unwrap();
    zfp
}

fn bench_parallel(c: &mut Criterion) {
    let data = load_field();
    let bytes = data.size_in_bytes() as u64;

    let mut group = c.benchmark_group("parallel_kernels");
    group.throughput(Throughput::Bytes(bytes));
    for threads in [1usize, PAR_THREADS] {
        let zfp = zfp_with_threads(threads);
        group.bench_with_input(BenchmarkId::new("zfp_encode", threads), &threads, |b, _| {
            b.iter(|| zfp.compress(&data).unwrap())
        });
        let stream = zfp.compress(&data).unwrap();
        group.bench_with_input(BenchmarkId::new("zfp_decode", threads), &threads, |b, _| {
            b.iter(|| zfp.decompress(&stream, data.dtype(), data.dims()).unwrap())
        });
        group.bench_with_input(
            BenchmarkId::new("feature_extract", threads),
            &threads,
            |b, _| {
                b.iter(|| {
                    pressio_core::threads::set_global_threads(threads);
                    features::error_agnostic_all(&data)
                })
            },
        );
        pressio_core::threads::set_global_threads(0);
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_parallel
}

// ---- BENCH_parallel.json summary -------------------------------------------

#[derive(serde::Serialize)]
struct Stat {
    mean_ms: f64,
    std_ms: f64,
    samples: u64,
}

impl From<&MeanStd> for Stat {
    fn from(m: &MeanStd) -> Stat {
        Stat {
            mean_ms: m.mean(),
            std_ms: m.std(),
            samples: m.count(),
        }
    }
}

#[derive(serde::Serialize)]
struct Entry {
    name: String,
    bytes: u64,
    sequential: Stat,
    parallel: Stat,
    /// sequential mean / parallel mean (> 1 means the parallel path wins).
    speedup: f64,
}

#[derive(serde::Serialize)]
struct Summary {
    host_cores: usize,
    parallel_threads: usize,
    entries: Vec<Entry>,
}

fn measure(samples: usize, mut f: impl FnMut()) -> MeanStd {
    f(); // warm-up
    let mut agg = MeanStd::new();
    for _ in 0..samples {
        let start = Instant::now();
        f();
        agg.push(start.elapsed().as_secs_f64() * 1e3);
    }
    agg
}

fn write_summary() {
    let data = load_field();
    let bytes = data.size_in_bytes() as u64;
    let samples = 10;

    let mut entries = Vec::new();
    {
        let seq = zfp_with_threads(1);
        let par = zfp_with_threads(PAR_THREADS);
        let s = measure(samples, || {
            criterion::black_box(seq.compress(&data).unwrap());
        });
        let p = measure(samples, || {
            criterion::black_box(par.compress(&data).unwrap());
        });
        entries.push(Entry {
            name: "zfp_encode".into(),
            bytes,
            speedup: s.mean() / p.mean(),
            sequential: Stat::from(&s),
            parallel: Stat::from(&p),
        });

        let stream = seq.compress(&data).unwrap();
        let s = measure(samples, || {
            criterion::black_box(seq.decompress(&stream, data.dtype(), data.dims()).unwrap());
        });
        let p = measure(samples, || {
            criterion::black_box(par.decompress(&stream, data.dtype(), data.dims()).unwrap());
        });
        entries.push(Entry {
            name: "zfp_decode".into(),
            bytes,
            speedup: s.mean() / p.mean(),
            sequential: Stat::from(&s),
            parallel: Stat::from(&p),
        });
    }
    {
        pressio_core::threads::set_global_threads(1);
        let s = measure(samples, || {
            criterion::black_box(features::error_agnostic_all(&data));
        });
        pressio_core::threads::set_global_threads(PAR_THREADS);
        let p = measure(samples, || {
            criterion::black_box(features::error_agnostic_all(&data));
        });
        pressio_core::threads::set_global_threads(0);
        entries.push(Entry {
            name: "feature_extract".into(),
            bytes,
            speedup: s.mean() / p.mean(),
            sequential: Stat::from(&s),
            parallel: Stat::from(&p),
        });
    }

    let summary = Summary {
        host_cores: host_cores(),
        parallel_threads: PAR_THREADS,
        entries,
    };
    let json = serde_json::to_string(&summary).expect("summary serializes");
    let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_parallel.json");
    std::fs::write(&path, json + "\n").expect("write BENCH_parallel.json");
    println!("\nwrote {}", path.display());
    for e in &summary.entries {
        println!(
            "  {:<16} seq {:8.3} ms  par({}) {:8.3} ms  speedup {:.2}x",
            e.name, e.sequential.mean_ms, PAR_THREADS, e.parallel.mean_ms, e.speedup
        );
    }
}

fn main() {
    benches();
    write_summary();
}
