//! Data-parallel kernel bench: chunked ZFP encode/decode and parallel
//! feature extraction at 1 thread vs N threads, plus single-thread
//! scalar-vs-lane timings for the SIMD-lane kernels, all summarized into
//! `BENCH_parallel.json` at the repo root so the CI acceptance check can
//! read speedups without parsing bench output.
//!
//! Determinism note: the 1-thread and N-thread encodes are byte-identical
//! by construction (chunk boundaries are format constants), and every lane
//! kernel is bit-identical to its scalar reference, so each comparison
//! measures the same work under both configurations.
//!
//! `PRESSIO_BENCH_QUICK=1` skips the criterion wall, shrinks the field,
//! and cuts the sample count — the CI perf-kernels job runs in this mode.

use criterion::{criterion_group, BenchmarkId, Criterion, Throughput};
use pressio_core::timing::MeanStd;
use pressio_core::{Compressor, Data, Options};
use pressio_dataset::{DatasetPlugin, Hurricane};
use pressio_lossless::huffman::{histogram, Codebook};
use pressio_lossless::BitWriter;
use pressio_predict::features;
use pressio_sz::quantizer::Quantizer;
use pressio_zfp::transform::{bitplanes, bitplanes_scalar};
use pressio_zfp::ZfpCompressor;
use std::time::Instant;

/// Threads for the parallel configuration: the acceptance criterion is
/// stated at 4 threads, so pin it there and record the host's cores.
const PAR_THREADS: usize = 4;

fn quick() -> bool {
    std::env::var("PRESSIO_BENCH_QUICK").is_ok_and(|v| !v.trim().is_empty() && v != "0")
}

fn host_cores() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

fn load_field() -> Data {
    let (nx, ny, nz) = if quick() { (32, 32, 16) } else { (64, 64, 32) };
    let mut hurricane = Hurricane::with_dims(nx, ny, nz, 1);
    let p_index = pressio_dataset::FIELDS
        .iter()
        .position(|&f| f == "P")
        .unwrap();
    hurricane.load_data(p_index).unwrap()
}

fn zfp_with_threads(threads: usize) -> ZfpCompressor {
    let mut zfp = ZfpCompressor::new();
    zfp.set_options(
        &Options::new()
            .with("pressio:abs", 1e-4)
            .with("pressio:nthreads", threads as u64),
    )
    .unwrap();
    zfp
}

fn bench_parallel(c: &mut Criterion) {
    let data = load_field();
    let bytes = data.size_in_bytes() as u64;

    let mut group = c.benchmark_group("parallel_kernels");
    group.throughput(Throughput::Bytes(bytes));
    for threads in [1usize, PAR_THREADS] {
        let zfp = zfp_with_threads(threads);
        group.bench_with_input(BenchmarkId::new("zfp_encode", threads), &threads, |b, _| {
            b.iter(|| zfp.compress(&data).unwrap())
        });
        let stream = zfp.compress(&data).unwrap();
        group.bench_with_input(BenchmarkId::new("zfp_decode", threads), &threads, |b, _| {
            b.iter(|| zfp.decompress(&stream, data.dtype(), data.dims()).unwrap())
        });
        group.bench_with_input(
            BenchmarkId::new("feature_extract", threads),
            &threads,
            |b, _| {
                b.iter(|| {
                    pressio_core::threads::set_global_threads(threads);
                    features::error_agnostic_all(&data)
                })
            },
        );
        pressio_core::threads::set_global_threads(0);
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_parallel
}

// ---- BENCH_parallel.json summary -------------------------------------------

#[derive(serde::Serialize)]
struct Stat {
    mean_ms: f64,
    std_ms: f64,
    /// Fastest sample — the noise-robust estimator the kernel gate keys on
    /// (scheduler interference only ever adds time, never removes it).
    min_ms: f64,
    samples: u64,
}

impl Stat {
    fn from_samples(samples: &[f64]) -> Stat {
        let mut agg = MeanStd::new();
        for &x in samples {
            agg.push(x);
        }
        Stat {
            mean_ms: agg.mean(),
            std_ms: agg.std(),
            min_ms: samples.iter().copied().fold(f64::INFINITY, f64::min),
            samples: samples.len() as u64,
        }
    }
}

#[derive(serde::Serialize)]
struct Entry {
    name: String,
    bytes: u64,
    sequential: Stat,
    parallel: Stat,
    /// sequential mean / parallel mean (> 1 means the parallel path wins).
    speedup: f64,
}

#[derive(serde::Serialize)]
struct KernelEntry {
    name: String,
    bytes: u64,
    scalar: Stat,
    lane: Stat,
    /// scalar min / lane min, both single-threaded (> 1 = lane wins);
    /// min-of-N is the noise-robust ratio the CI gate checks.
    speedup: f64,
    /// Lane-kernel throughput, the machine-dependent gate metric.
    lane_mb_per_s: f64,
}

#[derive(serde::Serialize)]
struct Summary {
    host_cores: usize,
    parallel_threads: usize,
    entries: Vec<Entry>,
    /// Single-thread scalar-vs-lane kernel comparisons.
    kernels: Vec<KernelEntry>,
}

fn measure(samples: usize, mut f: impl FnMut()) -> Vec<f64> {
    f(); // warm-up
    (0..samples)
        .map(|_| {
            let start = Instant::now();
            f();
            start.elapsed().as_secs_f64() * 1e3
        })
        .collect()
}

fn kernel_entry(
    name: &str,
    bytes: u64,
    samples: usize,
    scalar_f: impl FnMut(),
    lane_f: impl FnMut(),
) -> KernelEntry {
    // min-of-N on both sides: kernel runs are short enough that mean-based
    // ratios swing ±25% with scheduler noise, which would make the CI gate
    // flaky; the fastest sample is stable run-to-run
    let s = Stat::from_samples(&measure(samples, scalar_f));
    let l = Stat::from_samples(&measure(samples, lane_f));
    KernelEntry {
        name: name.into(),
        bytes,
        speedup: s.min_ms / l.min_ms,
        lane_mb_per_s: bytes as f64 / (l.min_ms / 1e3) / 1e6,
        scalar: s,
        lane: l,
    }
}

/// The kernel comparisons: each pits the pre-overhaul naive loop (single
/// accumulator / per-element call / per-bit write / per-plane gather)
/// against the lane kernel that replaced it, both single-threaded on the
/// same input, producing identical results.
fn kernel_entries(data: &Data, samples: usize) -> Vec<KernelEntry> {
    // kernel timings are short; extra samples make min-of-N tight
    let samples = samples.max(15);
    let values = data.to_f64_vec();
    let n = values.len();
    let mut kernels = Vec::new();

    // --- quantize: per-element Quantizer::quantize vs quantize_slice ----
    let eb = 1e-4;
    let preds: Vec<f64> = std::iter::once(0.0)
        .chain(values[..n - 1].iter().copied())
        .collect();
    let mut recon_s = vec![0.0f64; n];
    let mut recon_l = vec![0.0f64; n];
    kernels.push(kernel_entry(
        "quantize",
        (n * 8) as u64,
        samples,
        || {
            let mut q = Quantizer::new(eb, pressio_sz::RADIUS, false, n);
            for i in 0..n {
                recon_s[i] = q.quantize(preds[i], values[i]);
            }
            criterion::black_box(&recon_s);
        },
        || {
            let mut q = Quantizer::new(eb, pressio_sz::RADIUS, false, n);
            q.quantize_slice(&preds, &values, &mut recon_l);
            criterion::black_box(&recon_l);
        },
    ));

    // --- bitplane_transpose: per-plane gather vs one 64x64 transpose ----
    let nblocks = if quick() { 2048 } else { 8192 };
    let mut state = 0x9e37_79b9_7f4a_7c15u64;
    let blocks: Vec<Vec<u64>> = (0..nblocks)
        .map(|_| {
            (0..64)
                .map(|_| {
                    state ^= state << 13;
                    state ^= state >> 7;
                    state ^= state << 17;
                    state & ((1u64 << 58) - 1)
                })
                .collect()
        })
        .collect();
    kernels.push(kernel_entry(
        "bitplane_transpose",
        (nblocks * 64 * 8) as u64,
        samples,
        || {
            let mut acc = 0u64;
            for b in &blocks {
                acc ^= bitplanes_scalar(b)[31];
            }
            criterion::black_box(acc);
        },
        || {
            let mut acc = 0u64;
            for b in &blocks {
                acc ^= bitplanes(b)[31];
            }
            criterion::black_box(acc);
        },
    ));

    // --- feature_reduce: single-accumulator windows(2) loop vs lanes ----
    // 512 KiB buffer (L2-resident) swept several times per sample: large
    // enough to time reliably, small enough that the comparison measures
    // compute throughput rather than DRAM bandwidth
    let reduce_n = 1usize << 16;
    let passes = 16usize;
    let tiled: Vec<f64> = values.iter().cycle().take(reduce_n).copied().collect();
    kernels.push(kernel_entry(
        "feature_reduce",
        (reduce_n * passes * 8) as u64,
        samples,
        || {
            for _ in 0..passes {
                // the pre-overhaul mean-abs-diff loop, verbatim
                let mut grad = 0.0f64;
                let mut grad_n = 0usize;
                for w in tiled.windows(2) {
                    if w[0].is_finite() && w[1].is_finite() {
                        grad += (w[1] - w[0]).abs();
                        grad_n += 1;
                    }
                }
                criterion::black_box((grad, grad_n));
            }
        },
        || {
            for _ in 0..passes {
                criterion::black_box(pressio_stats::lanes::sum_abs_diff(&tiled));
            }
        },
    ));

    // --- huffman_encode: per-bit code emission vs bulk reversed write ---
    let mut q = Quantizer::new(eb, pressio_sz::RADIUS, false, n);
    q.quantize_slice(&preds, &values, &mut recon_l);
    let symbols = q.symbols;
    let book = Codebook::from_frequencies(&histogram(&symbols));
    kernels.push(kernel_entry(
        "huffman_encode",
        (symbols.len() * 4) as u64,
        samples,
        || {
            let mut w = BitWriter::with_capacity(symbols.len() / 2);
            for &s in &symbols {
                let (code, len) = book.code(s).unwrap();
                for b in (0..len).rev() {
                    w.write_bit((code >> b) & 1 == 1);
                }
            }
            criterion::black_box(w.into_bytes());
        },
        || {
            let mut w = BitWriter::with_capacity(symbols.len() / 2);
            book.encode(&symbols, &mut w).unwrap();
            criterion::black_box(w.into_bytes());
        },
    ));

    kernels
}

fn write_summary() {
    let data = load_field();
    let bytes = data.size_in_bytes() as u64;
    let samples = if quick() { 5 } else { 10 };

    let mut entries = Vec::new();
    {
        let seq = zfp_with_threads(1);
        let par = zfp_with_threads(PAR_THREADS);
        let s = Stat::from_samples(&measure(samples, || {
            criterion::black_box(seq.compress(&data).unwrap());
        }));
        let p = Stat::from_samples(&measure(samples, || {
            criterion::black_box(par.compress(&data).unwrap());
        }));
        entries.push(Entry {
            name: "zfp_encode".into(),
            bytes,
            speedup: s.mean_ms / p.mean_ms,
            sequential: s,
            parallel: p,
        });

        let stream = seq.compress(&data).unwrap();
        let s = Stat::from_samples(&measure(samples, || {
            criterion::black_box(seq.decompress(&stream, data.dtype(), data.dims()).unwrap());
        }));
        let p = Stat::from_samples(&measure(samples, || {
            criterion::black_box(par.decompress(&stream, data.dtype(), data.dims()).unwrap());
        }));
        entries.push(Entry {
            name: "zfp_decode".into(),
            bytes,
            speedup: s.mean_ms / p.mean_ms,
            sequential: s,
            parallel: p,
        });
    }
    {
        pressio_core::threads::set_global_threads(1);
        let s = Stat::from_samples(&measure(samples, || {
            criterion::black_box(features::error_agnostic_all(&data));
        }));
        pressio_core::threads::set_global_threads(PAR_THREADS);
        let p = Stat::from_samples(&measure(samples, || {
            criterion::black_box(features::error_agnostic_all(&data));
        }));
        pressio_core::threads::set_global_threads(0);
        entries.push(Entry {
            name: "feature_extract".into(),
            bytes,
            speedup: s.mean_ms / p.mean_ms,
            sequential: s,
            parallel: p,
        });
    }

    let kernels = kernel_entries(&data, samples);

    let summary = Summary {
        host_cores: host_cores(),
        parallel_threads: PAR_THREADS,
        entries,
        kernels,
    };
    let json = serde_json::to_string(&summary).expect("summary serializes");
    let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_parallel.json");
    std::fs::write(&path, json + "\n").expect("write BENCH_parallel.json");
    println!("\nwrote {}", path.display());
    for e in &summary.entries {
        println!(
            "  {:<18} seq {:8.3} ms  par({}) {:8.3} ms  speedup {:.2}x",
            e.name, e.sequential.mean_ms, PAR_THREADS, e.parallel.mean_ms, e.speedup
        );
    }
    for k in &summary.kernels {
        println!(
            "  {:<18} scalar {:5.3} ms  lane {:5.3} ms  speedup {:.2}x  ({:.0} MB/s)",
            k.name, k.scalar.mean_ms, k.lane.mean_ms, k.speedup, k.lane_mb_per_s
        );
    }
}

fn main() {
    if !quick() {
        benches();
    }
    write_summary();
}
