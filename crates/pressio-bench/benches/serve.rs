//! Serving-path bench: cold prediction latency (feature extraction on
//! every request) vs cache-hit latency (content-hash hit in the prediction
//! cache), plus multi-client batched throughput. Writes a
//! `BENCH_serve.json` summary to the repo root so CI and readers get the
//! cache speedup without parsing bench output.

use criterion::{criterion_group, Criterion};
use pressio_core::timing::MeanStd;
use pressio_core::{Data, Options};
use pressio_dataset::{DatasetPlugin, Hurricane};
use pressio_serve::{Client, Endpoint, ServeConfig, Server, ServerHandle};
use std::cell::Cell;
use std::time::Instant;

const DIMS: (usize, usize, usize) = (16, 16, 8);

fn start_server() -> ServerHandle {
    let dir = std::env::temp_dir().join(format!("pressio_serve_bench_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let mut config = ServeConfig::new(Endpoint::Tcp("127.0.0.1:0".into()), dir.join("models"));
    config.workers = 2;
    let handle = Server::start(config).expect("start server");
    // train once: every predict below goes through this resident model
    let mut client = Client::connect(handle.endpoint()).expect("connect");
    let trained = client
        .call(
            &Options::new()
                .with("serve:op", "train")
                .with("serve:model", "bench")
                .with("serve:scheme", "rahman2023")
                .with("serve:dims", vec![8u64, 8, 4])
                .with("serve:timesteps", 1u64)
                .with("serve:bounds", vec![1e-4]),
        )
        .expect("train");
    assert_eq!(
        trained.get_str("serve:type").unwrap(),
        "trained",
        "{trained}"
    );
    handle
}

fn sample_field() -> Data {
    Hurricane::with_dims(DIMS.0, DIMS.1, DIMS.2, 1)
        .load_data(0)
        .unwrap()
}

/// A fresh buffer per call: unique content hash, so every request is a
/// full cold miss (feature extraction runs).
fn perturbed(base: &Data, salt: u64) -> Data {
    let mut values = base.to_f64_vec();
    values[0] += 1e-3 * (salt as f64 + 1.0);
    Data::from_f64(base.dims().to_vec(), values)
}

fn bench_serve(c: &mut Criterion) {
    let handle = start_server();
    let mut client = Client::connect(handle.endpoint()).unwrap();
    let base = sample_field();
    let extra = Options::new().with("pressio:abs", 1e-4);

    let mut group = c.benchmark_group("serve");
    let salt = Cell::new(0u64);
    group.bench_function("predict_cold", |b| {
        b.iter(|| {
            salt.set(salt.get() + 1);
            let data = perturbed(&base, salt.get());
            let resp = client.predict("bench", &data, &extra).unwrap();
            assert_eq!(resp.get_str("serve:type").unwrap(), "prediction");
        })
    });
    // warm the caches once, then every request is a prediction-cache hit
    client.predict("bench", &base, &extra).unwrap();
    group.bench_function("predict_cache_hit", |b| {
        b.iter(|| {
            let resp = client.predict("bench", &base, &extra).unwrap();
            assert!(resp.get_bool("serve:cached").unwrap());
        })
    });
    group.finish();
    client.shutdown().unwrap();
    handle.wait().unwrap();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_serve
}

// ---- BENCH_serve.json summary ----------------------------------------------

#[derive(serde::Serialize)]
struct Stat {
    mean_ms: f64,
    std_ms: f64,
    samples: u64,
}

impl From<&MeanStd> for Stat {
    fn from(m: &MeanStd) -> Stat {
        Stat {
            mean_ms: m.mean(),
            std_ms: m.std(),
            samples: m.count(),
        }
    }
}

#[derive(serde::Serialize)]
struct Throughput {
    clients: usize,
    requests: u64,
    elapsed_s: f64,
    requests_per_s: f64,
}

#[derive(serde::Serialize)]
struct Summary {
    transport: String,
    dims: Vec<usize>,
    workers: usize,
    cold: Stat,
    cache_hit: Stat,
    /// cold mean / cache-hit mean (> 1: the cache pays for itself).
    cache_speedup: f64,
    throughput: Throughput,
}

fn measure(samples: usize, mut f: impl FnMut()) -> MeanStd {
    f(); // warm-up
    let mut agg = MeanStd::new();
    for _ in 0..samples {
        let start = Instant::now();
        f();
        agg.push(start.elapsed().as_secs_f64() * 1e3);
    }
    agg
}

fn write_summary() {
    let handle = start_server();
    let mut client = Client::connect(handle.endpoint()).unwrap();
    let base = sample_field();
    let extra = Options::new().with("pressio:abs", 1e-4);
    let samples = 20;

    let mut salt = 0u64;
    let cold = measure(samples, || {
        salt += 1;
        let data = perturbed(&base, salt);
        criterion::black_box(client.predict("bench", &data, &extra).unwrap());
    });

    client.predict("bench", &base, &extra).unwrap(); // warm the caches
    let hit = measure(samples, || {
        criterion::black_box(client.predict("bench", &base, &extra).unwrap());
    });

    // batched throughput: several clients hammering one model; same-model
    // requests batch inside the pipeline
    let clients = 4usize;
    let per_client = 50u64;
    let endpoint = handle.endpoint().clone();
    let t0 = Instant::now();
    let threads: Vec<_> = (0..clients)
        .map(|ci| {
            let endpoint = endpoint.clone();
            let base = base.clone();
            std::thread::spawn(move || {
                let mut client = Client::connect(&endpoint).unwrap();
                let extra = Options::new().with("pressio:abs", 1e-4);
                for i in 0..per_client {
                    // small working set: mostly cache hits, some misses
                    let data = perturbed(&base, (ci as u64 * per_client + i) % 8);
                    let resp = client.predict("bench", &data, &extra).unwrap();
                    assert_eq!(resp.get_str("serve:type").unwrap(), "prediction");
                }
            })
        })
        .collect();
    for t in threads {
        t.join().unwrap();
    }
    let elapsed_s = t0.elapsed().as_secs_f64();
    let requests = clients as u64 * per_client;

    client.shutdown().unwrap();
    handle.wait().unwrap();

    let summary = Summary {
        transport: "tcp".into(),
        dims: vec![DIMS.0, DIMS.1, DIMS.2],
        workers: 2,
        cache_speedup: cold.mean() / hit.mean(),
        cold: Stat::from(&cold),
        cache_hit: Stat::from(&hit),
        throughput: Throughput {
            clients,
            requests,
            elapsed_s,
            requests_per_s: requests as f64 / elapsed_s,
        },
    };
    let json = serde_json::to_string(&summary).expect("summary serializes");
    let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_serve.json");
    std::fs::write(&path, json + "\n").expect("write BENCH_serve.json");
    println!("\nwrote {}", path.display());
    println!(
        "  cold {:8.3} ms  cache-hit {:8.3} ms  speedup {:.1}x  throughput {:.0} req/s",
        summary.cold.mean_ms,
        summary.cache_hit.mean_ms,
        summary.cache_speedup,
        summary.throughput.requests_per_s
    );
}

fn main() {
    benches();
    write_summary();
}
