//! Serving-path bench: cold prediction latency (feature extraction on
//! every request) vs cache-hit latency (content-hash hit in the prediction
//! cache), multi-client batched throughput, and a shard scaling curve
//! (1..=3 shards behind a supervisor, load driven by topology-aware
//! clients). Writes a `BENCH_serve.json` summary to the repo root so CI's
//! perf gate and readers get the numbers without parsing bench output.
//!
//! `PRESSIO_BENCH_QUICK=1` skips the criterion wall and shrinks sample
//! counts: that is the PR-speed mode the CI `perf` job runs.

use criterion::{criterion_group, Criterion};
use pressio_core::timing::MeanStd;
use pressio_core::{Data, Options};
use pressio_dataset::{DatasetPlugin, Hurricane};
use pressio_serve::shard::InProcessSpawner;
use pressio_serve::{
    Client, Endpoint, ServeConfig, Server, ServerHandle, ShardedClient, Supervisor,
    SupervisorConfig,
};
use std::cell::Cell;
use std::sync::Arc;
use std::time::Instant;

fn quick_mode() -> bool {
    std::env::var("PRESSIO_BENCH_QUICK").is_ok_and(|v| !v.trim().is_empty() && v != "0")
}

const DIMS: (usize, usize, usize) = (16, 16, 8);

fn start_server() -> ServerHandle {
    let dir = std::env::temp_dir().join(format!("pressio_serve_bench_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let mut config = ServeConfig::new(Endpoint::Tcp("127.0.0.1:0".into()), dir.join("models"));
    config.workers = 2;
    let handle = Server::start(config).expect("start server");
    // train once: every predict below goes through this resident model
    let mut client = Client::connect(handle.endpoint()).expect("connect");
    let trained = client
        .call(
            &Options::new()
                .with("serve:op", "train")
                .with("serve:model", "bench")
                .with("serve:scheme", "rahman2023")
                .with("serve:dims", vec![8u64, 8, 4])
                .with("serve:timesteps", 1u64)
                .with("serve:bounds", vec![1e-4]),
        )
        .expect("train");
    assert_eq!(
        trained.get_str("serve:type").unwrap(),
        "trained",
        "{trained}"
    );
    handle
}

fn sample_field() -> Data {
    Hurricane::with_dims(DIMS.0, DIMS.1, DIMS.2, 1)
        .load_data(0)
        .unwrap()
}

/// A fresh buffer per call: unique content hash, so every request is a
/// full cold miss (feature extraction runs).
fn perturbed(base: &Data, salt: u64) -> Data {
    let mut values = base.to_f64_vec();
    values[0] += 1e-3 * (salt as f64 + 1.0);
    Data::from_f64(base.dims().to_vec(), values)
}

fn bench_serve(c: &mut Criterion) {
    let handle = start_server();
    let mut client = Client::connect(handle.endpoint()).unwrap();
    let base = sample_field();
    let extra = Options::new().with("pressio:abs", 1e-4);

    let mut group = c.benchmark_group("serve");
    let salt = Cell::new(0u64);
    group.bench_function("predict_cold", |b| {
        b.iter(|| {
            salt.set(salt.get() + 1);
            let data = perturbed(&base, salt.get());
            let resp = client.predict("bench", &data, &extra).unwrap();
            assert_eq!(resp.get_str("serve:type").unwrap(), "prediction");
        })
    });
    // warm the caches once, then every request is a prediction-cache hit
    client.predict("bench", &base, &extra).unwrap();
    group.bench_function("predict_cache_hit", |b| {
        b.iter(|| {
            let resp = client.predict("bench", &base, &extra).unwrap();
            assert!(resp.get_bool("serve:cached").unwrap());
        })
    });
    group.finish();
    client.shutdown().unwrap();
    handle.wait().unwrap();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_serve
}

// ---- BENCH_serve.json summary ----------------------------------------------

#[derive(serde::Serialize)]
struct Stat {
    mean_ms: f64,
    std_ms: f64,
    samples: u64,
}

impl From<&MeanStd> for Stat {
    fn from(m: &MeanStd) -> Stat {
        Stat {
            mean_ms: m.mean(),
            std_ms: m.std(),
            samples: m.count(),
        }
    }
}

#[derive(serde::Serialize)]
struct Throughput {
    clients: usize,
    requests: u64,
    elapsed_s: f64,
    requests_per_s: f64,
}

#[derive(serde::Serialize)]
struct ScalePoint {
    shards: usize,
    clients: usize,
    requests: u64,
    elapsed_s: f64,
    requests_per_s: f64,
    /// This point's throughput over the 1-shard point's.
    speedup_vs_single: f64,
}

#[derive(serde::Serialize)]
struct Summary {
    transport: String,
    dims: Vec<usize>,
    workers: usize,
    cores: usize,
    quick: bool,
    cold: Stat,
    cache_hit: Stat,
    /// cold mean / cache-hit mean (> 1: the cache pays for itself).
    cache_speedup: f64,
    throughput: Throughput,
    /// Supervisor + N shards, content-hash-routed load.
    scaling: Vec<ScalePoint>,
}

fn measure(samples: usize, mut f: impl FnMut()) -> MeanStd {
    f(); // warm-up
    let mut agg = MeanStd::new();
    for _ in 0..samples {
        let start = Instant::now();
        f();
        agg.push(start.elapsed().as_secs_f64() * 1e3);
    }
    agg
}

/// One point of the scaling curve: a supervisor with `shards` in-process
/// shards over a fresh model store, hammered by `clients` topology-aware
/// clients whose requests route directly to their content-hash home
/// shard. Two passes over a shared working set: the first is cold, the
/// second hits each shard's now-warm prediction cache.
fn measure_scaling(shards: usize, clients: usize, per_client: u64, base: &Data) -> (u64, f64) {
    let dir = std::env::temp_dir().join(format!(
        "pressio_serve_bench_scale_{}_{}",
        std::process::id(),
        shards
    ));
    let _ = std::fs::remove_dir_all(&dir);
    let mut template = ServeConfig::new(Endpoint::Tcp("127.0.0.1:0".into()), dir.join("models"));
    template.workers = 1; // per shard; parallelism comes from the shards
    let sup = Supervisor::start(
        SupervisorConfig::new(Endpoint::Tcp("127.0.0.1:0".into()), template, shards),
        Arc::new(InProcessSpawner),
    )
    .expect("start supervisor");
    let mut admin = Client::connect(sup.endpoint()).expect("connect supervisor");
    let trained = admin
        .call(
            &Options::new()
                .with("serve:op", "train")
                .with("serve:model", "bench")
                .with("serve:scheme", "rahman2023")
                .with("serve:dims", vec![8u64, 8, 4])
                .with("serve:timesteps", 1u64)
                .with("serve:bounds", vec![1e-4]),
        )
        .expect("train via supervisor");
    assert_eq!(trained.get_str("serve:type").unwrap(), "trained");

    let t0 = Instant::now();
    let threads: Vec<_> = (0..clients)
        .map(|ci| {
            let endpoint = sup.endpoint().clone();
            let base = base.clone();
            std::thread::spawn(move || {
                let mut client = ShardedClient::connect(&endpoint).expect("sharded client");
                let extra = Options::new().with("pressio:abs", 1e-4);
                for i in 0..per_client {
                    // 16-buffer working set shared across clients: hashes
                    // spread over shards, repeats hit warm caches
                    let data = perturbed(&base, (ci as u64 * per_client + i) % 16);
                    let resp = client.predict("bench", &data, &extra).unwrap();
                    assert_eq!(resp.get_str("serve:type").unwrap(), "prediction");
                }
            })
        })
        .collect();
    for t in threads {
        t.join().unwrap();
    }
    let elapsed_s = t0.elapsed().as_secs_f64();
    sup.trigger_shutdown();
    sup.wait().expect("supervisor drain");
    let _ = std::fs::remove_dir_all(&dir);
    (clients as u64 * per_client, elapsed_s)
}

fn write_summary() {
    let quick = quick_mode();
    let handle = start_server();
    let mut client = Client::connect(handle.endpoint()).unwrap();
    let base = sample_field();
    let extra = Options::new().with("pressio:abs", 1e-4);
    let samples = if quick { 8 } else { 20 };

    let mut salt = 0u64;
    let cold = measure(samples, || {
        salt += 1;
        let data = perturbed(&base, salt);
        criterion::black_box(client.predict("bench", &data, &extra).unwrap());
    });

    client.predict("bench", &base, &extra).unwrap(); // warm the caches
    let hit = measure(samples, || {
        criterion::black_box(client.predict("bench", &base, &extra).unwrap());
    });

    // batched throughput: several clients hammering one model; same-model
    // requests batch inside the pipeline
    let clients = 4usize;
    let per_client = if quick { 20u64 } else { 50u64 };
    let endpoint = handle.endpoint().clone();
    let t0 = Instant::now();
    let threads: Vec<_> = (0..clients)
        .map(|ci| {
            let endpoint = endpoint.clone();
            let base = base.clone();
            std::thread::spawn(move || {
                let mut client = Client::connect(&endpoint).unwrap();
                let extra = Options::new().with("pressio:abs", 1e-4);
                for i in 0..per_client {
                    // small working set: mostly cache hits, some misses
                    let data = perturbed(&base, (ci as u64 * per_client + i) % 8);
                    let resp = client.predict("bench", &data, &extra).unwrap();
                    assert_eq!(resp.get_str("serve:type").unwrap(), "prediction");
                }
            })
        })
        .collect();
    for t in threads {
        t.join().unwrap();
    }
    let elapsed_s = t0.elapsed().as_secs_f64();
    let requests = clients as u64 * per_client;

    client.shutdown().unwrap();
    handle.wait().unwrap();

    // shard scaling curve: same load shape against 1, 2, 3 shards. On a
    // single core the curve documents parity (routing overhead stays flat);
    // on multi-core boxes the aggregate climbs with the shard count.
    let scale_per_client = if quick { 16u64 } else { 40u64 };
    let mut scaling = Vec::new();
    let mut single_rps = 0.0f64;
    for shards in 1..=3usize {
        let (reqs, secs) = measure_scaling(shards, 4, scale_per_client, &base);
        let rps = reqs as f64 / secs;
        if shards == 1 {
            single_rps = rps;
        }
        scaling.push(ScalePoint {
            shards,
            clients: 4,
            requests: reqs,
            elapsed_s: secs,
            requests_per_s: rps,
            speedup_vs_single: rps / single_rps,
        });
    }

    let summary = Summary {
        transport: "tcp".into(),
        dims: vec![DIMS.0, DIMS.1, DIMS.2],
        workers: 2,
        cores: std::thread::available_parallelism().map_or(1, |n| n.get()),
        quick,
        cache_speedup: cold.mean() / hit.mean(),
        cold: Stat::from(&cold),
        cache_hit: Stat::from(&hit),
        throughput: Throughput {
            clients,
            requests,
            elapsed_s,
            requests_per_s: requests as f64 / elapsed_s,
        },
        scaling,
    };
    let json = serde_json::to_string(&summary).expect("summary serializes");
    let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_serve.json");
    std::fs::write(&path, json + "\n").expect("write BENCH_serve.json");
    println!("\nwrote {}", path.display());
    println!(
        "  cold {:8.3} ms  cache-hit {:8.3} ms  speedup {:.1}x  throughput {:.0} req/s",
        summary.cold.mean_ms,
        summary.cache_hit.mean_ms,
        summary.cache_speedup,
        summary.throughput.requests_per_s
    );
    for p in &summary.scaling {
        println!(
            "  shards={}  {:7.0} req/s  ({:.2}x vs single, {} cores)",
            p.shards, p.requests_per_s, p.speedup_vs_single, summary.cores
        );
    }
}

fn main() {
    if !quick_mode() {
        benches();
    }
    write_summary();
}
