//! Criterion bench: per-scheme estimate cost vs running the compressor —
//! the headline comparison of Table 2's timing columns. Shape expectation:
//! khan/rahman/tao ≪ sz3 compression; jin comparable to compression (it
//! runs the full prediction+quantization stages).

use criterion::{criterion_group, criterion_main, Criterion};
use pressio_core::{Compressor, Options};
use pressio_dataset::{DatasetPlugin, Hurricane};
use pressio_predict::registry::standard_schemes;
use pressio_sz::SzCompressor;

fn bench_schemes(c: &mut Criterion) {
    let mut hurricane = Hurricane::with_dims(64, 64, 32, 1);
    let p_index = pressio_dataset::FIELDS
        .iter()
        .position(|&f| f == "P")
        .unwrap();
    let data = hurricane.load_data(p_index).unwrap();
    let mut sz = SzCompressor::new();
    sz.set_options(
        &Options::new()
            .with("pressio:abs", 1e-4)
            .with("sz3:predictor", "lorenzo"),
    )
    .unwrap();

    let registry = standard_schemes();
    let mut group = c.benchmark_group("scheme_estimate_vs_compress");
    group.bench_function("sz3_compress_truth", |b| {
        b.iter(|| sz.compress(&data).unwrap())
    });
    for name in [
        "tao2019",
        "khan2023",
        "jin2022",
        "krasowska2021",
        "rahman2023",
    ] {
        let scheme = registry.build(name).unwrap();
        group.bench_function(format!("{name}_error_dependent"), |b| {
            b.iter(|| scheme.error_dependent_features(&data, &sz).unwrap())
        });
    }
    for name in ["rahman2023", "underwood2023", "ganguli2023"] {
        let scheme = registry.build(name).unwrap();
        group.bench_function(format!("{name}_error_agnostic"), |b| {
            b.iter(|| scheme.error_agnostic_features(&data).unwrap())
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_schemes
}
criterion_main!(benches);
