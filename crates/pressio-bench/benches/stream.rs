//! Streaming-path bench: PSTF chunked streaming vs whole-buffer
//! compression throughput, the bounded-memory claim (the streamed peak
//! working set must not grow with the timestep count), and the online
//! learning error trajectory against a live `--online` daemon. Writes a
//! `BENCH_stream.json` summary to the repo root for CI's
//! `perf_gate --stream` and for readers.
//!
//! `PRESSIO_BENCH_QUICK=1` skips the criterion wall and shrinks sample
//! counts: that is the PR-speed mode the CI `perf` job runs.

use criterion::{criterion_group, Criterion, Throughput};
use pressio_core::{Compressor, Data, Dtype, Options};
use pressio_dataset::{DatasetPlugin, Hurricane};
use pressio_serve::{Client, Endpoint, ServeConfig, Server};
use pressio_stream::{StreamEncoder, StreamHeader};
use pressio_sz::SzCompressor;
use std::time::Instant;

fn quick_mode() -> bool {
    std::env::var("PRESSIO_BENCH_QUICK").is_ok_and(|v| !v.trim().is_empty() && v != "0")
}

const DIMS: (usize, usize, usize) = (16, 16, 8);
const CHUNK_OUTER: usize = 1;

/// A stacked single-field time series: dims `[nx, ny, nz, t]`, the shape
/// `pressio stream` chunks along its outer (timestep) axis.
fn stacked_field(timesteps: usize) -> Data {
    let mut source = Hurricane::with_dims(DIMS.0, DIMS.1, DIMS.2, timesteps).with_fields(&["TC"]);
    let mut bytes = Vec::new();
    for t in 0..timesteps {
        bytes.extend_from_slice(&source.load_data(t).unwrap().to_le_bytes());
    }
    Data::from_le_bytes(Dtype::F32, vec![DIMS.0, DIMS.1, DIMS.2, timesteps], &bytes).unwrap()
}

fn header(chunk_outer: usize) -> StreamHeader {
    StreamHeader {
        codec: "sz3".into(),
        dtype: Dtype::F32,
        inner_dims: vec![DIMS.0, DIMS.1, DIMS.2],
        chunk_outer,
        chained: false,
        codec_options: Options::new().with("pressio:abs", 1e-4),
    }
}

/// Stream `data` chunk-at-a-time and report
/// `(compressed_bytes, peak_working_set_bytes)`. The peak working set is
/// the frame-level bound the decoder also obeys: the largest single
/// chunk's raw slice plus its compressed form — NOT the whole field.
fn stream_once(data: &Data) -> (u64, u64) {
    let mut encoder = StreamEncoder::new(std::io::sink(), header(CHUNK_OUTER)).unwrap();
    let outer = *data.dims().last().unwrap();
    let mut compressed = 0u64;
    let mut peak = 0u64;
    for (start, count) in pressio_core::chunking::OuterChunks::new(outer, CHUNK_OUTER).unwrap() {
        let chunk = pressio_core::chunking::slice_outer(data, start, count).unwrap();
        let record = encoder.write_chunk(&chunk).unwrap();
        compressed += record.comp_len as u64;
        peak = peak.max(record.raw_len as u64 + record.comp_len as u64);
    }
    (compressed, peak)
}

fn bench_stream(c: &mut Criterion) {
    let data = stacked_field(8);
    let bytes = data.size_in_bytes() as u64;

    let mut group = c.benchmark_group("stream");
    group.throughput(Throughput::Bytes(bytes));
    group.bench_function("streamed_compress", |b| b.iter(|| stream_once(&data)));
    group.bench_function("whole_buffer_compress", |b| {
        let mut sz = SzCompressor::new();
        sz.set_options(&Options::new().with("pressio:abs", 1e-4))
            .unwrap();
        b.iter(|| sz.compress(&data).unwrap())
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_stream
}

// ---- BENCH_stream.json summary ---------------------------------------------

#[derive(serde::Serialize)]
struct MemoryPoint {
    timesteps: usize,
    raw_bytes: u64,
    compressed_bytes: u64,
    /// Largest single chunk (raw slice + its compressed form) seen while
    /// streaming — the frame-level working-set bound.
    peak_working_set_bytes: u64,
}

#[derive(serde::Serialize)]
struct Memory {
    chunk_outer: usize,
    points: Vec<MemoryPoint>,
    /// What one-shot compression of the largest series must hold at once.
    whole_buffer_working_set_bytes: u64,
}

#[derive(serde::Serialize)]
struct ThroughputStat {
    streamed_mb_per_s: f64,
    whole_buffer_mb_per_s: f64,
    /// streamed / whole-buffer (1.0 = framing costs nothing).
    streamed_over_whole: f64,
}

#[derive(serde::Serialize)]
struct Online {
    chunks: usize,
    window: usize,
    refit_every: usize,
    refits: u64,
    /// Rolling prediction error after each chunk, as the daemon reported it.
    rolling_error: Vec<f64>,
    /// Running minimum of `rolling_error` — non-increasing by construction;
    /// the gate checks the *raw* trajectory against it.
    cummin_rolling_error: Vec<f64>,
    initial_rolling_error: f64,
    final_rolling_error: f64,
}

#[derive(serde::Serialize)]
struct Summary {
    codec: String,
    dims: Vec<usize>,
    quick: bool,
    throughput: ThroughputStat,
    memory: Memory,
    online: Online,
}

/// Min-of-N wall time for `f`, in seconds.
fn min_time(samples: usize, mut f: impl FnMut()) -> f64 {
    f(); // warm-up
    let mut best = f64::INFINITY;
    for _ in 0..samples {
        let start = Instant::now();
        f();
        best = best.min(start.elapsed().as_secs_f64());
    }
    best
}

/// Stream a hurricane time series through a live `--online` daemon,
/// reporting each chunk's real achieved ratio so the learner refines the
/// model mid-stream; returns the per-chunk rolling errors and refit count.
fn run_online(timesteps: usize, window: usize, refit_every: usize) -> (Vec<f64>, u64) {
    let dir = std::env::temp_dir().join(format!("pressio_stream_bench_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let mut config = ServeConfig::new(Endpoint::Tcp("127.0.0.1:0".into()), dir.join("models"));
    config.online = true;
    config.online_window = window;
    config.online_refit_every = refit_every;
    let handle = Server::start(config).expect("start online daemon");
    let mut client = Client::connect(handle.endpoint()).expect("connect");
    let trained = client
        .call(
            &Options::new()
                .with("serve:op", "train")
                .with("serve:model", "bench")
                .with("serve:scheme", "rahman2023")
                .with("serve:dims", vec![8u64, 8, 4])
                .with("serve:timesteps", 1u64)
                .with("serve:bounds", vec![1e-4]),
        )
        .expect("train");
    assert_eq!(trained.get_str("serve:type").unwrap(), "trained");

    let begun = client
        .stream_begin(
            "bench-online",
            &Options::new()
                .with("serve:model", "bench")
                .with("pressio:abs", 1e-4),
        )
        .unwrap();
    assert!(begun.get_bool("stream:online").unwrap(), "{begun}");

    let mut source = Hurricane::with_dims(DIMS.0, DIMS.1, DIMS.2, timesteps).with_fields(&["TC"]);
    // each wire chunk is one 3-D timestep: inner [nx, ny], outer = nz
    let side_header = StreamHeader {
        inner_dims: vec![DIMS.0, DIMS.1],
        chunk_outer: DIMS.2,
        ..header(CHUNK_OUTER)
    };
    let mut encoder = StreamEncoder::new(std::io::sink(), side_header).unwrap();
    let mut errors = Vec::with_capacity(timesteps);
    for t in 0..timesteps {
        let chunk = source.load_data(t).unwrap();
        let record = encoder.write_chunk(&chunk).unwrap();
        let actual = record.raw_len as f64 / record.comp_len.max(1) as f64;
        let resp = client
            .stream_chunk(
                "bench-online",
                &chunk,
                &Options::new().with("stream:actual", actual),
            )
            .unwrap();
        errors.push(resp.get_f64("stream:online.error").unwrap());
    }
    let ended = client.stream_end("bench-online").unwrap();
    let refits = ended.get_u64("stream:online.refits").unwrap();

    client.shutdown().unwrap();
    handle.wait().unwrap();
    let _ = std::fs::remove_dir_all(&dir);
    (errors, refits)
}

fn write_summary() {
    let quick = quick_mode();
    let samples = if quick { 3 } else { 8 };

    // throughput + bounded-memory sweep: same field, 8 vs 48 timesteps
    let small = stacked_field(8);
    let large = stacked_field(48);

    let streamed_s = min_time(samples, || {
        criterion::black_box(stream_once(&large));
    });
    let mut sz = SzCompressor::new();
    sz.set_options(&Options::new().with("pressio:abs", 1e-4))
        .unwrap();
    let mut whole_compressed = 0u64;
    let whole_s = min_time(samples, || {
        whole_compressed = sz.compress(&large).unwrap().len() as u64;
    });
    let mb = large.size_in_bytes() as f64 / (1 << 20) as f64;
    let streamed_mbs = mb / streamed_s;
    let whole_mbs = mb / whole_s;

    let mut points = Vec::new();
    for data in [&small, &large] {
        let (compressed, peak) = stream_once(data);
        points.push(MemoryPoint {
            timesteps: *data.dims().last().unwrap(),
            raw_bytes: data.size_in_bytes() as u64,
            compressed_bytes: compressed,
            peak_working_set_bytes: peak,
        });
    }
    let memory = Memory {
        chunk_outer: CHUNK_OUTER,
        points,
        whole_buffer_working_set_bytes: large.size_in_bytes() as u64 + whole_compressed,
    };

    // online trajectory: a small window so the final rolling error reflects
    // the refined model, not the cold model's early misses
    let (window, refit_every, chunks) = (16usize, 6usize, 48usize);
    let (rolling_error, refits) = run_online(chunks, window, refit_every);
    let mut cummin = Vec::with_capacity(rolling_error.len());
    let mut best = f64::INFINITY;
    for &e in &rolling_error {
        best = best.min(e);
        cummin.push(best);
    }
    let online = Online {
        chunks,
        window,
        refit_every,
        refits,
        initial_rolling_error: rolling_error.first().copied().unwrap_or(0.0),
        final_rolling_error: rolling_error.last().copied().unwrap_or(0.0),
        rolling_error,
        cummin_rolling_error: cummin,
    };

    let summary = Summary {
        codec: "sz3".into(),
        dims: vec![DIMS.0, DIMS.1, DIMS.2],
        quick,
        throughput: ThroughputStat {
            streamed_mb_per_s: streamed_mbs,
            whole_buffer_mb_per_s: whole_mbs,
            streamed_over_whole: streamed_mbs / whole_mbs,
        },
        memory,
        online,
    };
    let json = serde_json::to_string(&summary).expect("summary serializes");
    let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_stream.json");
    std::fs::write(&path, json + "\n").expect("write BENCH_stream.json");
    println!("\nwrote {}", path.display());
    println!(
        "  streamed {streamed_mbs:8.1} MB/s  whole-buffer {whole_mbs:8.1} MB/s  ratio {:.2}",
        summary.throughput.streamed_over_whole
    );
    for p in &summary.memory.points {
        println!(
            "  t={:<3} raw {:>9} B  peak working set {:>7} B",
            p.timesteps, p.raw_bytes, p.peak_working_set_bytes
        );
    }
    println!(
        "  online: {refits} refits, rolling error {:.3} -> {:.3}",
        summary.online.initial_rolling_error, summary.online.final_rolling_error
    );
}

fn main() {
    if !quick_mode() {
        benches();
    }
    write_summary();
}
