//! Property coverage for `stream.resume` offset boundaries.
//!
//! Across dtypes (f32/f64), chained/independent chunk series, and stream
//! lengths, a resume at any already-acked offset — zero, mid-stream, or
//! the final chunk — re-attaches and answers the authoritative acked
//! offset, a resume past the end is a typed rejection that leaves the
//! session fully usable, and a replay of the chunk right after a
//! mid-stream resume point is served idempotently from the cache.

use pressio_core::{Data, Dtype, Options};
use pressio_serve::protocol::{code, op};
use pressio_serve::{Client, Endpoint, ServeConfig, Server};
use proptest::prelude::*;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::OnceLock;

/// One daemon for every case: proptest runs many cases per test and a
/// fresh server per case would dominate the runtime. The handle leaks on
/// purpose — the daemon lives until the test process exits.
fn endpoint() -> &'static Endpoint {
    static SERVER: OnceLock<Endpoint> = OnceLock::new();
    SERVER.get_or_init(|| {
        let dir = std::env::temp_dir().join("pressio_resume_prop");
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let config = ServeConfig::new(Endpoint::Tcp("127.0.0.1:0".into()), dir.join("models"));
        let handle = Server::start(config).unwrap();
        let mut client = Client::connect(handle.endpoint()).unwrap();
        let trained = client
            .call(
                &Options::new()
                    .with("serve:op", op::TRAIN)
                    .with("serve:model", "hurr")
                    .with("serve:scheme", "rahman2023")
                    .with("serve:dims", vec![8u64, 8, 4])
                    .with("serve:timesteps", 1u64)
                    .with("serve:bounds", vec![1e-4]),
            )
            .unwrap();
        assert_eq!(trained.get_str("serve:type").unwrap(), "trained");
        let endpoint = handle.endpoint().clone();
        std::mem::forget(handle);
        endpoint
    })
}

fn unique_stream_id(tag: &str) -> String {
    static NEXT: AtomicU64 = AtomicU64::new(0);
    format!("prop-{tag}-{}", NEXT.fetch_add(1, Ordering::Relaxed))
}

/// Deterministic chunk series. Independent mode: every chunk is a fresh
/// synthetic field. Chained mode: chunk `t` drifts from chunk `t-1`, so
/// the carried trailing slice (temporal features) actually varies.
fn chunk_series(n: usize, seed: u64, f32_input: bool, chained: bool) -> Vec<Data> {
    let dims = vec![8usize, 8, 2];
    let len: usize = dims.iter().product();
    let mut s = seed | 1;
    let mut prev = vec![0.0f64; len];
    (0..n)
        .map(|t| {
            let values: Vec<f64> = (0..len)
                .map(|i| {
                    s = s
                        .wrapping_mul(6364136223846793005)
                        .wrapping_add(1442695040888963407);
                    let noise = (s >> 11) as f64 / (1u64 << 53) as f64 - 0.5;
                    let base = ((i + t * len) as f64 * 0.013).sin() * 6.0 + noise * 0.05;
                    if chained {
                        prev[i] * 0.9 + base * 0.1
                    } else {
                        base
                    }
                })
                .collect();
            prev.clone_from(&values);
            if f32_input {
                Data::from_f32(dims.clone(), values.into_iter().map(|v| v as f32).collect())
            } else {
                Data::from_f64(dims.clone(), values)
            }
        })
        .collect()
}

/// Which resume offset the case exercises.
#[derive(Debug, Clone, Copy)]
enum Offset {
    Zero,
    Mid,
    Final,
    PastEnd,
}

fn offset_strategy() -> impl Strategy<Value = Offset> {
    prop_oneof![
        Just(Offset::Zero),
        Just(Offset::Mid),
        Just(Offset::Final),
        Just(Offset::PastEnd),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn resume_offsets_behave_at_every_boundary(
        n in 2usize..5,
        seed in 1u64..u64::MAX,
        f32_input in any::<bool>(),
        chained in any::<bool>(),
        offset in offset_strategy(),
    ) {
        let mut client = Client::connect(endpoint()).unwrap();
        let id = unique_stream_id(if chained { "ch" } else { "ind" });
        let data = chunk_series(n, seed, f32_input, chained);
        prop_assert_eq!(data[0].dtype(), if f32_input { Dtype::F32 } else { Dtype::F64 });

        let begun = client
            .stream_begin(
                &id,
                &Options::new()
                    .with("serve:model", "hurr")
                    .with("pressio:abs", 1e-4),
            )
            .unwrap();
        prop_assert_eq!(begun.get_str("serve:type").unwrap(), "stream.begun");
        let token = begun.get_str("stream:token").unwrap().to_string();

        let mut predictions = Vec::new();
        for (t, chunk) in data.iter().enumerate() {
            let resp = client
                .stream_chunk_at(&id, t as u64 + 1, chunk, &Options::new())
                .unwrap();
            prop_assert_eq!(resp.get_str("serve:type").unwrap(), "stream.prediction");
            predictions.push(resp.get_f64("serve:prediction").unwrap());
        }

        let acked = n as u64;
        let claim = match offset {
            Offset::Zero => 0,
            Offset::Mid => acked / 2,
            Offset::Final => acked,
            Offset::PastEnd => acked + 1,
        };
        let resumed = client.stream_resume(&id, &token, claim).unwrap();
        match offset {
            Offset::Zero | Offset::Mid | Offset::Final => {
                prop_assert!(
                    resumed.get_str("serve:type").unwrap() == "stream.resumed",
                    "offset {:?}: {}", offset, resumed
                );
                prop_assert_eq!(resumed.get_u64("stream:acked").unwrap(), acked);
                prop_assert_eq!(resumed.get_str("stream:token").unwrap(), token.as_str());
                prop_assert!(!resumed.get_bool("stream:rehydrated").unwrap());

                // the chunk right after the claimed offset replays from
                // the idempotent cache with its original prediction
                if claim < acked {
                    let seq = claim + 1;
                    let replay = client
                        .stream_chunk_at(&id, seq, &data[seq as usize - 1], &Options::new())
                        .unwrap();
                    prop_assert_eq!(
                        replay.get_str("serve:type").unwrap(),
                        "stream.prediction"
                    );
                    prop_assert!(replay.get_bool("stream:replayed").unwrap());
                    prop_assert_eq!(
                        replay.get_f64("serve:prediction").unwrap(),
                        predictions[seq as usize - 1]
                    );
                }
            }
            Offset::PastEnd => {
                // typed rejection carrying the authoritative offset; the
                // session must remain fully usable
                prop_assert!(
                    resumed.get_str("serve:code").unwrap() == code::BAD_REQUEST,
                    "past-end resume must be rejected: {}", resumed
                );
                prop_assert!(resumed.get_str("serve:message").unwrap().contains("past"));
                prop_assert_eq!(resumed.get_u64("stream:acked").unwrap(), acked);
            }
        }

        // regardless of the resume outcome the session accepts the next
        // fresh chunk and a clean end
        let next = client
            .stream_chunk_at(&id, acked + 1, &data[0], &Options::new())
            .unwrap();
        prop_assert!(
            next.get_str("serve:type").unwrap() == "stream.prediction",
            "session unusable after {:?} resume: {}", offset, next
        );
        let ended = client.stream_end(&id).unwrap();
        prop_assert_eq!(ended.get_u64("stream:chunks").unwrap(), acked + 1);
    }
}
