//! End-to-end daemon tests over a real socket: train → persist → load →
//! predict, cache-hit fast path, overload backpressure, deadlines, and
//! persistence across a daemon restart.

use pressio_core::Options;
use pressio_dataset::{DatasetPlugin, Hurricane};
use pressio_serve::protocol::{self, code, op};
use pressio_serve::{Client, Endpoint, ServeConfig, Server};
use std::path::PathBuf;

fn temp_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join("pressio_serve_e2e").join(name);
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn local_config(dir: &std::path::Path) -> ServeConfig {
    ServeConfig::new(Endpoint::Tcp("127.0.0.1:0".into()), dir.join("models"))
}

fn train_request(model: &str, scheme: &str) -> Options {
    Options::new()
        .with("serve:op", op::TRAIN)
        .with("serve:model", model)
        .with("serve:scheme", scheme)
        .with("serve:dims", vec![8u64, 8, 4])
        .with("serve:timesteps", 1u64)
        .with("serve:bounds", vec![1e-4])
}

fn sample_data(index: usize) -> pressio_core::Data {
    Hurricane::with_dims(8, 8, 4, 1).load_data(index).unwrap()
}

#[test]
fn train_persist_load_predict_roundtrip() {
    let dir = temp_dir("roundtrip");
    let handle = Server::start(local_config(&dir)).unwrap();
    let mut client = Client::connect(handle.endpoint()).unwrap();

    assert_eq!(
        client.ping().unwrap().get_str("serve:type").unwrap(),
        "pong"
    );

    // train a model on the trainable Rahman scheme
    let trained = client.call(&train_request("hurr", "rahman2023")).unwrap();
    assert_eq!(
        trained.get_str("serve:type").unwrap(),
        "trained",
        "{trained}"
    );
    assert_eq!(trained.get_u64("serve:version").unwrap(), 1);
    assert!(trained.get_u64("serve:samples").unwrap() > 0);

    // the artifact is on disk and listed
    let models = client.models().unwrap();
    let listed = models.get_str_slice("serve:models").unwrap().to_vec();
    assert_eq!(listed, vec!["hurr@1".to_string()]);

    // predict: first call computes features, second is a pure cache hit
    let data = sample_data(0);
    let extra = Options::new().with("pressio:abs", 1e-4);
    let cold = client.predict("hurr", &data, &extra).unwrap();
    assert_eq!(cold.get_str("serve:type").unwrap(), "prediction", "{cold}");
    let prediction = cold.get_f64("serve:prediction").unwrap();
    assert!(prediction.is_finite() && prediction > 0.0, "{prediction}");
    assert!(!cold.get_bool("serve:cached").unwrap());

    let computed_after_cold = client
        .stats()
        .unwrap()
        .get_u64("serve:features.computed")
        .unwrap();
    assert!(computed_after_cold >= 2, "agnostic + dependent features");

    let warm = client.predict("hurr", &data, &extra).unwrap();
    assert!(warm.get_bool("serve:cached").unwrap(), "{warm}");
    assert_eq!(warm.get_f64("serve:prediction").unwrap(), prediction);

    // the cache hit must have skipped feature extraction entirely
    let stats = client.stats().unwrap();
    assert_eq!(
        stats.get_u64("serve:features.computed").unwrap(),
        computed_after_cold,
        "cache hit recomputed features"
    );
    assert!(stats.get_u64("serve:prediction_cache.hits").unwrap() >= 1);

    // a different bound shares the agnostic features but not the
    // error-dependent ones or the prediction
    let other = client
        .predict("hurr", &data, &Options::new().with("pressio:abs", 1e-3))
        .unwrap();
    assert!(!other.get_bool("serve:cached").unwrap());
    let stats2 = client.stats().unwrap();
    assert_eq!(
        stats2.get_u64("serve:features.computed").unwrap(),
        computed_after_cold + 1,
        "only the error-dependent features should be recomputed"
    );

    // graceful shutdown drains and exits cleanly
    assert_eq!(
        client.shutdown().unwrap().get_str("serve:type").unwrap(),
        "bye"
    );
    handle.wait().unwrap();

    // a fresh daemon over the same store serves the persisted model
    let handle = Server::start(local_config(&dir)).unwrap();
    let mut client = Client::connect(handle.endpoint()).unwrap();
    let loaded = client.load("hurr").unwrap();
    assert_eq!(loaded.get_str("serve:type").unwrap(), "loaded", "{loaded}");
    assert_eq!(loaded.get_u64("serve:version").unwrap(), 1);
    let again = client.predict("hurr", &data, &extra).unwrap();
    assert_eq!(again.get_f64("serve:prediction").unwrap(), prediction);
    client.shutdown().unwrap();
    handle.wait().unwrap();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn calculation_scheme_predicts_without_a_model() {
    let dir = temp_dir("schemeless");
    let handle = Server::start(local_config(&dir)).unwrap();
    let mut client = Client::connect(handle.endpoint()).unwrap();
    let mut req = Options::new()
        .with("serve:op", op::PREDICT)
        .with("serve:scheme", "khan2023")
        .with("pressio:abs", 1e-3);
    protocol::data_into_request(&mut req, &sample_data(0));
    let resp = client.call(&req).unwrap();
    assert_eq!(resp.get_str("serve:type").unwrap(), "prediction", "{resp}");
    assert!(resp.get_f64("serve:prediction").unwrap().is_finite());
    // a trainable scheme without a model is a clear not-found error
    let mut req = Options::new()
        .with("serve:op", op::PREDICT)
        .with("serve:scheme", "rahman2023")
        .with("pressio:abs", 1e-3);
    protocol::data_into_request(&mut req, &sample_data(0));
    let resp = client.call(&req).unwrap();
    assert!(protocol::is_error(&resp, code::NOT_FOUND), "{resp}");
    client.shutdown().unwrap();
    handle.wait().unwrap();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn overload_answers_overloaded_not_unbounded_queueing() {
    let dir = temp_dir("overload");
    let mut config = local_config(&dir);
    config.workers = 1;
    config.queue_capacity = 1;
    let handle = Server::start(config).unwrap();
    // 8 concurrent sleeps against 1 worker + queue of 1: most must be
    // rejected immediately rather than queued without bound.
    let endpoint = handle.endpoint().clone();
    let workers: Vec<_> = (0..8)
        .map(|_| {
            let endpoint = endpoint.clone();
            std::thread::spawn(move || {
                let mut client = Client::connect(&endpoint).unwrap();
                client
                    .call(
                        &Options::new()
                            .with("serve:op", op::SLEEP)
                            .with("serve:ms", 300u64),
                    )
                    .unwrap()
            })
        })
        .collect();
    let responses: Vec<Options> = workers.into_iter().map(|w| w.join().unwrap()).collect();
    let slept = responses
        .iter()
        .filter(|r| r.get_str("serve:type") == Ok("slept"))
        .count();
    let overloaded = responses
        .iter()
        .filter(|r| protocol::is_error(r, code::OVERLOADED))
        .count();
    assert_eq!(slept + overloaded, 8, "{responses:?}");
    assert!(slept >= 1, "at least the first sleep must run");
    assert!(
        overloaded >= 5,
        "1 worker + queue of 1 cannot absorb 8 sleeps: {responses:?}"
    );
    let mut client = Client::connect(handle.endpoint()).unwrap();
    client.shutdown().unwrap();
    handle.wait().unwrap();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn queued_request_past_deadline_answers_deadline_exceeded() {
    let dir = temp_dir("deadline");
    let mut config = local_config(&dir);
    config.workers = 1;
    config.queue_capacity = 8;
    let handle = Server::start(config).unwrap();
    let endpoint = handle.endpoint().clone();
    // occupy the single worker
    let blocker = {
        let endpoint = endpoint.clone();
        std::thread::spawn(move || {
            let mut client = Client::connect(&endpoint).unwrap();
            client
                .call(
                    &Options::new()
                        .with("serve:op", op::SLEEP)
                        .with("serve:ms", 400u64),
                )
                .unwrap()
        })
    };
    std::thread::sleep(std::time::Duration::from_millis(100));
    // this one expires while queued behind the sleeper
    let mut client = Client::connect(&endpoint).unwrap();
    let resp = client
        .call(
            &Options::new()
                .with("serve:op", op::SLEEP)
                .with("serve:ms", 1u64)
                .with("serve:deadline_ms", 50u64),
        )
        .unwrap();
    assert!(protocol::is_error(&resp, code::DEADLINE_EXCEEDED), "{resp}");
    blocker.join().unwrap();
    client.shutdown().unwrap();
    handle.wait().unwrap();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn unknown_op_is_bad_request_and_connection_survives() {
    let dir = temp_dir("badop");
    let handle = Server::start(local_config(&dir)).unwrap();
    let mut client = Client::connect(handle.endpoint()).unwrap();
    let resp = client
        .call(&Options::new().with("serve:op", "frobnicate"))
        .unwrap();
    assert!(protocol::is_error(&resp, code::BAD_REQUEST), "{resp}");
    // the connection is still usable afterwards
    assert_eq!(
        client.ping().unwrap().get_str("serve:type").unwrap(),
        "pong"
    );
    client.shutdown().unwrap();
    handle.wait().unwrap();
    let _ = std::fs::remove_dir_all(&dir);
}
