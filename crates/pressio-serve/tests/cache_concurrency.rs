//! Concurrency correctness for the sharded LRU: N threads hammering the
//! cache through a start barrier must never lose an update, corrupt the
//! recency index, or grow past the capacity bound.

use pressio_serve::ShardedLru;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Barrier};

#[test]
fn concurrent_insert_get_no_lost_updates() {
    let threads = 8;
    let per_thread = if std::env::var_os("CI_FAST").is_some() {
        200
    } else {
        1000
    };
    // Capacity comfortably above the working set, so nothing the test
    // wrote can be evicted: every write must be readable afterwards.
    let cache: Arc<ShardedLru<u64>> = Arc::new(ShardedLru::new("t", 8, threads * per_thread * 2));
    let barrier = Arc::new(Barrier::new(threads));
    let hits = Arc::new(AtomicU64::new(0));
    let handles: Vec<_> = (0..threads)
        .map(|t| {
            let cache = cache.clone();
            let barrier = barrier.clone();
            let hits = hits.clone();
            std::thread::spawn(move || {
                barrier.wait();
                for i in 0..per_thread {
                    let key = format!("k-{t}-{i}");
                    cache.insert(key.clone(), (t * per_thread + i) as u64);
                    // read back something this thread already wrote
                    let probe = format!("k-{t}-{}", i / 2);
                    if cache.get(&probe) == Some((t * per_thread + i / 2) as u64) {
                        hits.fetch_add(1, Ordering::Relaxed);
                    }
                }
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }
    // Own-key reads can never miss when capacity exceeds the working set.
    assert_eq!(
        hits.load(Ordering::Relaxed),
        (threads * per_thread) as u64,
        "a thread lost one of its own writes"
    );
    // Every key from every thread is still present with the right value.
    for t in 0..threads {
        for i in 0..per_thread {
            assert_eq!(
                cache.get(&format!("k-{t}-{i}")),
                Some((t * per_thread + i) as u64)
            );
        }
    }
    let stats = cache.stats();
    assert_eq!(stats.insertions, (threads * per_thread) as u64);
    assert_eq!(stats.evictions, 0);
    assert_eq!(stats.len, threads * per_thread);
}

#[test]
fn concurrent_churn_stays_bounded() {
    let threads = 8;
    let per_thread = if std::env::var_os("CI_FAST").is_some() {
        500
    } else {
        2500
    };
    // Tiny capacity: almost every insert evicts. The invariant under
    // arbitrary interleaving is conservation: insertions that did not
    // evict are still resident.
    let cache: Arc<ShardedLru<usize>> = Arc::new(ShardedLru::new("t", 4, 16));
    let barrier = Arc::new(Barrier::new(threads));
    let handles: Vec<_> = (0..threads)
        .map(|t| {
            let cache = cache.clone();
            let barrier = barrier.clone();
            std::thread::spawn(move || {
                barrier.wait();
                for i in 0..per_thread {
                    cache.insert(format!("k-{t}-{i}"), i);
                    let _ = cache.get(&format!("k-{}-{i}", (t + 1) % threads));
                }
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }
    assert!(
        cache.len() <= cache.capacity(),
        "{} entries exceed bound {}",
        cache.len(),
        cache.capacity()
    );
    let stats = cache.stats();
    assert_eq!(stats.insertions, (threads * per_thread) as u64);
    assert_eq!(
        stats.evictions + stats.len as u64,
        stats.insertions,
        "evictions + resident must equal insertions (no lost or duplicated entries)"
    );
}

#[test]
fn concurrent_same_key_overwrites_end_consistent() {
    let threads = 8;
    let rounds = 500;
    let cache: Arc<ShardedLru<u64>> = Arc::new(ShardedLru::new("t", 2, 8));
    let barrier = Arc::new(Barrier::new(threads));
    let handles: Vec<_> = (0..threads as u64)
        .map(|t| {
            let cache = cache.clone();
            let barrier = barrier.clone();
            std::thread::spawn(move || {
                barrier.wait();
                for _ in 0..rounds {
                    cache.insert("shared", t);
                    let got = cache.get("shared");
                    // the value must always be one some thread wrote
                    assert!(matches!(got, Some(v) if v < threads as u64));
                }
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }
    // exactly one copy of the contended key survives
    assert_eq!(cache.len(), 1);
    assert!(cache.get("shared").is_some());
}
