//! Resumable-stream tests over live sockets: journal rehydration after a
//! lost session (byte-identical continuations), idempotent chunk replay
//! with exactly-once online observations, typed resume rejections that
//! leave the session intact, idle-session reaping on every stream op,
//! and the resilient sender riding through injected overload, dropped
//! connections, session loss, and torn journal tails.
//!
//! The servers run in-process, so the process-global fault registry
//! reaches their handlers; every test takes the lock because a schedule
//! configured by one test must not fire on another's sockets.

use pressio_core::Options;
use pressio_dataset::{DatasetPlugin, Hurricane};
use pressio_serve::protocol::{code, op};
use pressio_serve::{Client, Endpoint, ResilientStreamSender, RetryPolicy, ServeConfig, Server};
use std::path::PathBuf;
use std::sync::Mutex;

static TEST_LOCK: Mutex<()> = Mutex::new(());

fn temp_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir()
        .join("pressio_stream_resume")
        .join(name);
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn local_config(dir: &std::path::Path) -> ServeConfig {
    ServeConfig::new(Endpoint::Tcp("127.0.0.1:0".into()), dir.join("models"))
}

fn train_request(model: &str) -> Options {
    Options::new()
        .with("serve:op", op::TRAIN)
        .with("serve:model", model)
        .with("serve:scheme", "rahman2023")
        .with("serve:dims", vec![8u64, 8, 4])
        .with("serve:timesteps", 1u64)
        .with("serve:bounds", vec![1e-4])
}

/// A single-field hurricane time series: `load_data(t)` is timestep `t`.
fn chunks(n: usize) -> Vec<pressio_core::Data> {
    let mut source = Hurricane::with_dims(8, 8, 4, n).with_fields(&["TC"]);
    (0..n).map(|t| source.load_data(t).unwrap()).collect()
}

fn extra() -> Options {
    Options::new()
        .with("serve:model", "hurr")
        .with("pressio:abs", 1e-4)
}

/// Stream every chunk on a fresh session and collect its predictions —
/// the unfailed reference a recovered stream must match byte for byte.
fn reference_predictions(
    client: &mut Client,
    stream_id: &str,
    data: &[pressio_core::Data],
) -> Vec<f64> {
    let begun = client.stream_begin(stream_id, &extra()).unwrap();
    assert_eq!(begun.get_str("serve:type").unwrap(), "stream.begun");
    let mut predictions = Vec::new();
    for (t, chunk) in data.iter().enumerate() {
        let resp = client
            .stream_chunk_at(stream_id, t as u64 + 1, chunk, &Options::new())
            .unwrap();
        assert_eq!(
            resp.get_str("serve:type").unwrap(),
            "stream.prediction",
            "{resp}"
        );
        predictions.push(resp.get_f64("serve:prediction").unwrap());
    }
    client.stream_end(stream_id).unwrap();
    predictions
}

#[test]
fn lost_session_is_rehydrated_from_the_journal_byte_identically() {
    let _guard = TEST_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    pressio_faults::clear();
    let dir = temp_dir("rehydrate");
    let handle = Server::start(local_config(&dir)).unwrap();
    let mut client = Client::connect(handle.endpoint()).unwrap();
    client.call(&train_request("hurr")).unwrap();

    let data = chunks(6);
    let reference = reference_predictions(&mut client, "ref", &data);

    // the faulted stream: three chunks land, then the in-memory session
    // is lost (as a crashed-and-respawned shard would lose it)
    let begun = client.stream_begin("fault", &extra()).unwrap();
    assert_eq!(begun.get_str("serve:type").unwrap(), "stream.begun");
    let token = begun.get_str("stream:token").unwrap().to_string();
    assert_eq!(begun.get_u64("stream:acked").unwrap(), 0);
    let mut recovered = Vec::new();
    for (t, chunk) in data.iter().take(3).enumerate() {
        let resp = client
            .stream_chunk_at("fault", t as u64 + 1, chunk, &Options::new())
            .unwrap();
        assert_eq!(resp.get_u64("stream:acked").unwrap(), t as u64 + 1);
        assert_eq!(resp.get_str("stream:token").unwrap(), token);
        recovered.push(resp.get_f64("serve:prediction").unwrap());
    }

    pressio_faults::configure("stream:session.lost=err,times=1").unwrap();
    let lost = client
        .stream_chunk_at("fault", 4, &data[3], &Options::new())
        .unwrap();
    assert_eq!(pressio_faults::fired("stream:session.lost"), 1);
    pressio_faults::clear();
    assert_eq!(
        lost.get_str("serve:code").unwrap(),
        code::NOT_FOUND,
        "{lost}"
    );

    // resume rehydrates from the durable journal: config, acked offset,
    // and the carried trailing slice for temporal features
    let resumed = client.stream_resume("fault", &token, 3).unwrap();
    assert_eq!(
        resumed.get_str("serve:type").unwrap(),
        "stream.resumed",
        "{resumed}"
    );
    assert_eq!(resumed.get_u64("stream:acked").unwrap(), 3);
    assert!(resumed.get_bool("stream:rehydrated").unwrap());
    for (t, chunk) in data.iter().enumerate().skip(3) {
        let resp = client
            .stream_chunk_at("fault", t as u64 + 1, chunk, &Options::new())
            .unwrap();
        assert_eq!(
            resp.get_str("serve:type").unwrap(),
            "stream.prediction",
            "{resp}"
        );
        recovered.push(resp.get_f64("serve:prediction").unwrap());
    }
    assert_eq!(
        recovered, reference,
        "resumed stream diverged from the unfailed run"
    );

    let stats = client.stats().unwrap();
    assert!(stats.get_u64("serve:stream.resumes").unwrap() >= 1);

    // end removes the journal: a later resume has nothing to rebuild from
    let ended = client.stream_end("fault").unwrap();
    assert_eq!(ended.get_u64("stream:chunks").unwrap(), 6);
    let gone = client.stream_resume("fault", &token, 0).unwrap();
    assert_eq!(gone.get_str("serve:code").unwrap(), code::NOT_FOUND);

    client.shutdown().unwrap();
    handle.wait().unwrap();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn replayed_chunks_are_idempotent_and_observed_exactly_once() {
    let _guard = TEST_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    pressio_faults::clear();
    let dir = temp_dir("replay");
    let mut config = local_config(&dir);
    config.online = true;
    config.online_window = 32;
    config.online_refit_every = 100; // never refit: predictions stay pinned
    let handle = Server::start(config).unwrap();
    let mut client = Client::connect(handle.endpoint()).unwrap();
    client.call(&train_request("hurr")).unwrap();

    let data = chunks(4);
    client.stream_begin("replay", &extra()).unwrap();
    let mut firsts = Vec::new();
    for (t, chunk) in data.iter().enumerate() {
        let resp = client
            .stream_chunk_at(
                "replay",
                t as u64 + 1,
                chunk,
                &Options::new().with("stream:actual", 2.0 + t as f64),
            )
            .unwrap();
        assert_eq!(resp.get_str("serve:type").unwrap(), "stream.prediction");
        assert!(resp.get_bool_opt("stream:replayed").unwrap().is_none());
        firsts.push(resp);
    }
    let stats = client.stats().unwrap();
    assert_eq!(stats.get_u64("serve:stream.observed").unwrap(), 4);

    // re-sending an already-acked chunk answers from the cache: same
    // prediction, same online fields, learner NOT re-fed
    for seq in [2u64, 4] {
        let replay = client
            .stream_chunk_at(
                "replay",
                seq,
                &data[seq as usize - 1],
                &Options::new().with("stream:actual", 99.0), // must be ignored
            )
            .unwrap();
        assert_eq!(
            replay.get_str("serve:type").unwrap(),
            "stream.prediction",
            "{replay}"
        );
        assert!(replay.get_bool("stream:replayed").unwrap());
        assert_eq!(replay.get_u64("stream:acked").unwrap(), 4);
        let first = &firsts[seq as usize - 1];
        assert_eq!(
            replay.get_f64("serve:prediction").unwrap(),
            first.get_f64("serve:prediction").unwrap(),
            "replayed prediction diverged for seq {seq}"
        );
        assert_eq!(
            replay.get_f64_opt("stream:online.error").unwrap(),
            first.get_f64_opt("stream:online.error").unwrap(),
            "replay must return the cached rolling error, not recompute it"
        );
    }
    let stats = client.stats().unwrap();
    assert_eq!(
        stats.get_u64("serve:stream.observed").unwrap(),
        4,
        "replays re-fed the online learner"
    );
    assert_eq!(stats.get_u64("serve:stream.replays").unwrap(), 2);

    // seq 0 and a skip-ahead seq are typed rejections, not silent appends
    let zero = client
        .stream_chunk_at("replay", 0, &data[0], &Options::new())
        .unwrap();
    assert_eq!(zero.get_str("serve:code").unwrap(), code::BAD_REQUEST);
    let skip = client
        .stream_chunk_at("replay", 7, &data[0], &Options::new())
        .unwrap();
    assert_eq!(skip.get_str("serve:code").unwrap(), code::BAD_REQUEST);

    let ended = client.stream_end("replay").unwrap();
    assert_eq!(ended.get_u64("stream:chunks").unwrap(), 4);
    assert_eq!(ended.get_u64("stream:observed").unwrap(), 4);

    client.shutdown().unwrap();
    handle.wait().unwrap();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn resume_rejections_are_typed_and_leave_the_session_intact() {
    let _guard = TEST_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    pressio_faults::clear();
    let dir = temp_dir("reject");
    let handle = Server::start(local_config(&dir)).unwrap();
    let mut client = Client::connect(handle.endpoint()).unwrap();
    client.call(&train_request("hurr")).unwrap();

    let data = chunks(3);
    let begun = client.stream_begin("rj", &extra()).unwrap();
    let token = begun.get_str("stream:token").unwrap().to_string();
    for (t, chunk) in data.iter().take(2).enumerate() {
        client
            .stream_chunk_at("rj", t as u64 + 1, chunk, &Options::new())
            .unwrap();
    }

    // wrong token: rejected without touching the session
    let bad = client.stream_resume("rj", "deadbeefdeadbeef", 1).unwrap();
    assert_eq!(
        bad.get_str("serve:code").unwrap(),
        code::BAD_REQUEST,
        "{bad}"
    );
    assert!(bad.get_str("serve:message").unwrap().contains("token"));

    // past-end offset: typed rejection carrying the authoritative acked
    // offset so a rewinding client can recover
    let past = client.stream_resume("rj", &token, 9).unwrap();
    assert_eq!(
        past.get_str("serve:code").unwrap(),
        code::BAD_REQUEST,
        "{past}"
    );
    assert!(past.get_str("serve:message").unwrap().contains("past"));
    assert_eq!(past.get_u64("stream:acked").unwrap(), 2);

    // an unknown stream with no journal is a typed not-found
    let missing = client.stream_resume("never-begun", &token, 0).unwrap();
    assert_eq!(missing.get_str("serve:code").unwrap(), code::NOT_FOUND);

    // a rejected resume is retryable when injected as overload
    pressio_faults::configure("stream:resume.reject=err,times=1").unwrap();
    let shed = client.stream_resume("rj", &token, 2).unwrap();
    assert_eq!(pressio_faults::fired("stream:resume.reject"), 1);
    pressio_faults::clear();
    assert_eq!(shed.get_str("serve:code").unwrap(), code::OVERLOADED);

    // the session survived every rejection: a valid resume and the next
    // chunk still work
    let ok = client.stream_resume("rj", &token, 2).unwrap();
    assert_eq!(ok.get_str("serve:type").unwrap(), "stream.resumed");
    assert_eq!(ok.get_u64("stream:acked").unwrap(), 2);
    assert!(!ok.get_bool("stream:rehydrated").unwrap());
    let resp = client
        .stream_chunk_at("rj", 3, &data[2], &Options::new())
        .unwrap();
    assert_eq!(resp.get_str("serve:type").unwrap(), "stream.prediction");
    let ended = client.stream_end("rj").unwrap();
    assert_eq!(ended.get_u64("stream:chunks").unwrap(), 3);

    client.shutdown().unwrap();
    handle.wait().unwrap();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn idle_sessions_are_reaped_on_stream_ops_and_counted() {
    let _guard = TEST_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    pressio_faults::clear();
    let dir = temp_dir("reap");
    let mut config = local_config(&dir);
    config.stream_idle_secs = 1;
    let handle = Server::start(config).unwrap();
    let mut client = Client::connect(handle.endpoint()).unwrap();
    client.call(&train_request("hurr")).unwrap();

    let data = chunks(1);
    client.stream_begin("idle", &extra()).unwrap();
    let stats = client.stats().unwrap();
    assert_eq!(stats.get_u64("serve:streams.active").unwrap(), 1);
    assert_eq!(stats.get_u64("serve:session.reaped").unwrap(), 0);

    std::thread::sleep(std::time::Duration::from_millis(1300));

    // ANY stream op sweeps — not just a begin that hits the session cap.
    // This begin both opens a new session and reaps the idle one.
    client.stream_begin("fresh", &extra()).unwrap();
    let stats = client.stats().unwrap();
    assert_eq!(
        stats.get_u64("serve:streams.active").unwrap(),
        1,
        "idle session survived the sweep"
    );
    assert_eq!(stats.get_u64("serve:session.reaped").unwrap(), 1);

    // the reaped session is gone from memory…
    let gone = client
        .stream_chunk_at("idle", 1, &data[0], &Options::new())
        .unwrap();
    assert_eq!(gone.get_str("serve:code").unwrap(), code::NOT_FOUND);

    // …but an active one is refreshed by its own traffic: chunk, sleep
    // less than the expiry, chunk again — still alive
    client
        .stream_chunk_at("fresh", 1, &data[0], &Options::new())
        .unwrap();
    std::thread::sleep(std::time::Duration::from_millis(600));
    let resp = client
        .stream_chunk_at("fresh", 2, &data[0], &Options::new())
        .unwrap();
    assert_eq!(resp.get_str("serve:type").unwrap(), "stream.prediction");

    client.stream_end("fresh").unwrap();
    client.shutdown().unwrap();
    handle.wait().unwrap();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn resilient_sender_rides_through_overload_drop_and_session_loss() {
    let _guard = TEST_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    pressio_faults::clear();
    let dir = temp_dir("sender");
    let handle = Server::start(local_config(&dir)).unwrap();
    let mut client = Client::connect(handle.endpoint()).unwrap();
    client.call(&train_request("hurr")).unwrap();

    let data = chunks(6);
    let reference = reference_predictions(&mut client, "ref", &data);

    let mut sender = ResilientStreamSender::new(
        handle.endpoint().clone(),
        "fault",
        RetryPolicy {
            max_attempts: 8,
            base_ms: 5,
            max_ms: 20,
        },
    );
    let begun = sender.begin(&extra()).unwrap();
    assert_eq!(begun.get_str("serve:type").unwrap(), "stream.begun");

    let mut recovered = vec![f64::NAN; data.len()];
    let mut sent = 0usize;
    // configure() replaces the registry (and its fired counts), so each
    // phase's count is read just before the next phase is armed
    let (mut overloads, mut drops) = (0, 0);
    let (mut armed_overload, mut armed_drop, mut armed_loss) = (false, false, false);
    while sender.next_seq() <= data.len() as u64 {
        let seq = sender.next_seq();
        match seq {
            // transient overload on chunk 2: retried in place
            2 if !armed_overload => {
                pressio_faults::configure("stream:chunk.overload=err,times=2").unwrap();
                armed_overload = true;
            }
            // the response for chunk 4 is severed mid-frame: the sender
            // reconnects, resumes, and the re-send answers from the
            // idempotent replay cache
            4 if !armed_drop => {
                overloads = pressio_faults::fired("stream:chunk.overload");
                pressio_faults::configure("serve:conn.drop=drop,times=1").unwrap();
                armed_drop = true;
            }
            // the in-memory session vanishes before chunk 5: the sender
            // resumes and the journal rehydrates it
            5 if !armed_loss => {
                drops = pressio_faults::fired("serve:conn.drop");
                pressio_faults::configure("stream:session.lost=err,times=1").unwrap();
                armed_loss = true;
            }
            _ => {}
        }
        let resp = sender
            .send_chunk(seq, &data[seq as usize - 1], &Options::new())
            .unwrap();
        if resp.get_str_opt("serve:type").unwrap() == Some("stream.rewound") {
            continue;
        }
        assert_eq!(
            resp.get_str("serve:type").unwrap(),
            "stream.prediction",
            "{resp}"
        );
        recovered[seq as usize - 1] = resp.get_f64("serve:prediction").unwrap();
        sent += 1;
    }
    let losses = pressio_faults::fired("stream:session.lost");
    pressio_faults::clear();
    assert_eq!(overloads, 2, "the overload failpoint must fire twice");
    assert_eq!(drops, 1, "the drop failpoint must fire once");
    assert_eq!(losses, 1, "the session-loss failpoint must fire once");
    assert!(sent >= data.len(), "not every chunk produced a response");
    assert_eq!(
        recovered, reference,
        "sender-recovered stream diverged from the unfailed run"
    );
    assert!(sender.resumes() >= 2, "resumes: {}", sender.resumes());
    assert!(sender.retries() >= 3, "retries: {}", sender.retries());

    let ended = sender.end().unwrap();
    assert_eq!(ended.get_str("serve:type").unwrap(), "stream.ended");
    assert_eq!(ended.get_u64("stream:chunks").unwrap(), 6);

    client.shutdown().unwrap();
    handle.wait().unwrap();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn torn_journal_tail_rewinds_the_sender_and_observes_each_chunk_once() {
    let _guard = TEST_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    pressio_faults::clear();
    let dir = temp_dir("torn");
    let mut config = local_config(&dir);
    config.online = true;
    config.online_window = 32;
    config.online_refit_every = 100; // never refit: predictions stay pinned
    let handle = Server::start(config).unwrap();
    let mut client = Client::connect(handle.endpoint()).unwrap();
    client.call(&train_request("hurr")).unwrap();

    let data = chunks(6);
    // online reference run needs per-chunk actuals; any deterministic
    // series works as long as the faulted run repeats it
    let actual = |seq: u64| 2.0 + seq as f64 / 10.0;
    client.stream_begin("ref", &extra()).unwrap();
    let mut reference = Vec::new();
    for (t, chunk) in data.iter().enumerate() {
        let resp = client
            .stream_chunk_at(
                "ref",
                t as u64 + 1,
                chunk,
                &Options::new().with("stream:actual", actual(t as u64 + 1)),
            )
            .unwrap();
        reference.push((
            resp.get_f64("serve:prediction").unwrap(),
            resp.get_f64_opt("stream:online.error").unwrap(),
        ));
    }
    client.stream_end("ref").unwrap();

    let mut sender = ResilientStreamSender::new(
        handle.endpoint().clone(),
        "torn",
        RetryPolicy {
            max_attempts: 8,
            base_ms: 5,
            max_ms: 20,
        },
    );
    sender.begin(&extra()).unwrap();
    let mut recovered = vec![(f64::NAN, None); data.len()];
    let mut rewound = false;
    // configure() replaces the registry (and its fired counts): read the
    // torn count before arming the session loss
    let mut torn = 0;
    let (mut armed_torn, mut armed_loss) = (false, false);
    while sender.next_seq() <= data.len() as u64 {
        let seq = sender.next_seq();
        match seq {
            // chunk 3's journal record is torn mid-frame: the server
            // acks it in memory but the durable prefix ends at chunk 2
            3 if !armed_torn => {
                pressio_faults::configure("stream:journal.torn=torn,times=1").unwrap();
                armed_torn = true;
            }
            // …then the in-memory session is lost before chunk 5: the
            // resume finds acked=2 < progress=4, rejects past-end, and
            // the sender rewinds to re-send chunks 3 and 4
            5 if !armed_loss => {
                torn = pressio_faults::fired("stream:journal.torn");
                pressio_faults::configure("stream:session.lost=err,times=1").unwrap();
                armed_loss = true;
            }
            _ => {}
        }
        let resp = sender
            .send_chunk(
                seq,
                &data[seq as usize - 1],
                &Options::new().with("stream:actual", actual(seq)),
            )
            .unwrap();
        if resp.get_str_opt("serve:type").unwrap() == Some("stream.rewound") {
            rewound = true;
            assert!(
                sender.next_seq() < seq,
                "a rewound response must lower next_seq"
            );
            continue;
        }
        assert_eq!(
            resp.get_str("serve:type").unwrap(),
            "stream.prediction",
            "{resp}"
        );
        recovered[seq as usize - 1] = (
            resp.get_f64("serve:prediction").unwrap(),
            resp.get_f64_opt("stream:online.error").unwrap(),
        );
    }
    let losses = pressio_faults::fired("stream:session.lost");
    pressio_faults::clear();
    assert_eq!(torn, 1, "the torn-journal failpoint must fire once");
    assert_eq!(losses, 1, "the session-loss failpoint must fire once");
    assert!(rewound, "the sender never rewound past the torn tail");
    assert_eq!(
        recovered, reference,
        "rewound stream diverged from the unfailed run"
    );

    // exactly-once: the rehydrated learner was re-fed only the re-sent
    // gap, so the session observed each of the 6 chunks exactly once
    let ended = sender.end().unwrap();
    assert_eq!(ended.get_u64("stream:chunks").unwrap(), 6);
    assert_eq!(
        ended.get_u64("stream:observed").unwrap(),
        6,
        "learner observations diverged from one-per-chunk"
    );

    client.shutdown().unwrap();
    handle.wait().unwrap();
    let _ = std::fs::remove_dir_all(&dir);
}
