//! Property tests for model-artifact corruption handling: any truncation
//! or single-bit flip of a persisted PSRV artifact must be *rejected* on
//! load (an error, never a panic, never a silently-wrong model) and
//! quarantined by `load_resilient` so later loads fall back cleanly.

use pressio_core::error::Error;
use pressio_serve::ModelStore;
use proptest::prelude::*;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};

static CASE: AtomicU64 = AtomicU64::new(0);

fn fresh_store() -> (ModelStore, PathBuf) {
    let dir = std::env::temp_dir()
        .join("pressio_store_corruption")
        .join(format!(
            "{}-{}",
            std::process::id(),
            CASE.fetch_add(1, Ordering::Relaxed)
        ));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    (ModelStore::open(&dir).unwrap(), dir)
}

fn artifact_path(dir: &std::path::Path, name: &str, version: u64) -> PathBuf {
    dir.join(name).join(format!("{version:06}.pmodel"))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    // Truncating the artifact at any point yields a load error and a
    // quarantine — never a panic, never a model.
    #[test]
    fn truncated_artifacts_are_rejected_and_quarantined(cut_fraction in 0.0f64..1.0) {
        let (store, dir) = fresh_store();
        let state: Vec<u8> = (0u16..256).map(|i| (i % 251) as u8).collect();
        store.save("m", "rahman2023", &state).unwrap();

        let path = artifact_path(&dir, "m", 1);
        let bytes = std::fs::read(&path).unwrap();
        let cut = ((bytes.len() as f64 * cut_fraction) as usize).min(bytes.len() - 1);
        std::fs::write(&path, &bytes[..cut]).unwrap();

        let err = store.load("m", Some(1)).unwrap_err();
        prop_assert!(
            matches!(err, Error::CorruptStream(_) | Error::Io(_)),
            "unexpected error class: {err}"
        );
        // pinned resilient load quarantines rather than serving junk
        prop_assert!(store.load_resilient("m", Some(1)).is_err());
        prop_assert!(path.with_extension("pmodel.quarantined").exists());
        prop_assert!(store.versions("m").unwrap().is_empty());
        let _ = std::fs::remove_dir_all(&dir);
    }

    // Flipping any single bit anywhere in the artifact is caught by the
    // checksums (header sha for the state, trailer sha for everything).
    #[test]
    fn bit_flips_anywhere_are_rejected_and_fall_back(offset_fraction in 0.0f64..1.0, bit in 0u8..8) {
        let (store, dir) = fresh_store();
        let state: Vec<u8> = (0u16..256).map(|i| (i % 251) as u8).collect();
        store.save("m", "rahman2023", &state).unwrap();
        store.save("m", "rahman2023", &state).unwrap(); // version 2

        let path = artifact_path(&dir, "m", 2);
        let mut bytes = std::fs::read(&path).unwrap();
        let offset = ((bytes.len() as f64 * offset_fraction) as usize).min(bytes.len() - 1);
        bytes[offset] ^= 1 << bit;
        std::fs::write(&path, &bytes).unwrap();

        let err = store.load("m", Some(2)).unwrap_err();
        prop_assert!(matches!(err, Error::CorruptStream(_)), "{err}");
        // unpinned resilient load quarantines v2 and serves v1
        let artifact = store.load_resilient("m", None).unwrap();
        prop_assert_eq!(artifact.version, 1);
        prop_assert_eq!(artifact.state.as_slice(), state.as_slice());
        prop_assert!(path.with_extension("pmodel.quarantined").exists());
        let _ = std::fs::remove_dir_all(&dir);
    }
}
