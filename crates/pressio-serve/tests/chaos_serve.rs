//! Chaos tests for the serve daemon: dropped connections healed by client
//! retry (byte-identical answers), slow-client stalls, corrupt-model
//! quarantine with version fallback, and the load-shedding circuit
//! breaker tripping and recovering.
//!
//! The servers here run in-process, so the process-global fault registry
//! reaches their connection loops; every test takes the lock because a
//! schedule configured by one test must not fire on another's sockets.

use pressio_core::Options;
use pressio_dataset::{DatasetPlugin, Hurricane};
use pressio_serve::protocol::{self, code, op};
use pressio_serve::{Client, Endpoint, RetryPolicy, ServeConfig, Server};
use std::path::PathBuf;
use std::sync::Mutex;

static TEST_LOCK: Mutex<()> = Mutex::new(());

fn temp_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join("pressio_chaos_serve").join(name);
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn local_config(dir: &std::path::Path) -> ServeConfig {
    ServeConfig::new(Endpoint::Tcp("127.0.0.1:0".into()), dir.join("models"))
}

fn train_request(model: &str) -> Options {
    Options::new()
        .with("serve:op", op::TRAIN)
        .with("serve:model", model)
        .with("serve:scheme", "rahman2023")
        .with("serve:dims", vec![8u64, 8, 4])
        .with("serve:timesteps", 1u64)
        .with("serve:bounds", vec![1e-4])
}

fn sample_data() -> pressio_core::Data {
    Hurricane::with_dims(8, 8, 4, 1).load_data(0).unwrap()
}

#[test]
fn dropped_connection_is_healed_by_client_retry_byte_identical() {
    let _guard = TEST_LOCK.lock().unwrap();
    pressio_faults::clear();
    let dir = temp_dir("conn_drop");
    let handle = Server::start(local_config(&dir)).unwrap();
    let mut client = Client::connect(handle.endpoint()).unwrap();
    client.call(&train_request("hurr")).unwrap();

    let data = sample_data();
    let extra = Options::new().with("pressio:abs", 1e-4);
    let reference = client
        .predict("hurr", &data, &extra)
        .unwrap()
        .get_f64("serve:prediction")
        .unwrap();

    // the next response is severed mid-frame; call_resilient must
    // reconnect, resend, and land the identical prediction
    pressio_faults::configure("serve:conn.drop=drop,times=1").unwrap();
    let req = Client::predict_request("hurr", &data, &extra);
    let resp = client
        .call_resilient(&req, &RetryPolicy::default())
        .unwrap();
    let drops = pressio_faults::fired("serve:conn.drop");
    pressio_faults::clear();
    assert_eq!(drops, 1, "the drop failpoint must have fired");
    assert_eq!(resp.get_str("serve:type").unwrap(), "prediction", "{resp}");
    assert_eq!(
        resp.get_f64("serve:prediction").unwrap(),
        reference,
        "retried prediction diverged"
    );

    // call_resilient left the client on a fresh, working connection
    client.shutdown().unwrap();
    handle.wait().unwrap();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn stalled_connection_delays_but_completes() {
    let _guard = TEST_LOCK.lock().unwrap();
    pressio_faults::clear();
    let dir = temp_dir("conn_stall");
    let handle = Server::start(local_config(&dir)).unwrap();
    let mut client = Client::connect(handle.endpoint()).unwrap();

    pressio_faults::configure("serve:conn.stall=stall,ms=80,times=1").unwrap();
    let t0 = std::time::Instant::now();
    let pong = client.ping().unwrap();
    let elapsed = t0.elapsed();
    let stalls = pressio_faults::fired("serve:conn.stall");
    pressio_faults::clear();
    assert_eq!(pong.get_str("serve:type").unwrap(), "pong");
    assert_eq!(stalls, 1);
    assert!(elapsed.as_millis() >= 80, "stall not applied: {elapsed:?}");

    client.shutdown().unwrap();
    handle.wait().unwrap();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn corrupt_latest_model_is_quarantined_and_served_from_previous_version() {
    let _guard = TEST_LOCK.lock().unwrap();
    pressio_faults::clear();
    let dir = temp_dir("quarantine");
    let handle = Server::start(local_config(&dir)).unwrap();
    let mut client = Client::connect(handle.endpoint()).unwrap();
    client.call(&train_request("hurr")).unwrap();
    client.call(&train_request("hurr")).unwrap(); // version 2
    client.shutdown().unwrap();
    handle.wait().unwrap();

    // corrupt version 2 on disk
    let v2 = dir.join("models").join("hurr").join("000002.pmodel");
    let mut bytes = std::fs::read(&v2).unwrap();
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0xff;
    std::fs::write(&v2, &bytes).unwrap();

    // a fresh daemon must fall back to version 1, not fail the request
    let handle = Server::start(local_config(&dir)).unwrap();
    let mut client = Client::connect(handle.endpoint()).unwrap();
    let resp = client
        .predict(
            "hurr",
            &sample_data(),
            &Options::new().with("pressio:abs", 1e-4),
        )
        .unwrap();
    assert_eq!(resp.get_str("serve:type").unwrap(), "prediction", "{resp}");
    assert_eq!(resp.get_str("serve:model").unwrap(), "hurr@1");
    assert!(
        dir.join("models")
            .join("hurr")
            .join("000002.pmodel.quarantined")
            .exists(),
        "corrupt artifact was not quarantined"
    );
    // version listings no longer show the quarantined artifact
    let listed = client.models().unwrap();
    assert_eq!(
        listed.get_str_slice("serve:models").unwrap().to_vec(),
        vec!["hurr@1".to_string()]
    );
    // pinning the quarantined version is an error, never a silent swap
    let resp = client
        .predict(
            "hurr@2",
            &sample_data(),
            &Options::new().with("pressio:abs", 1e-4),
        )
        .unwrap();
    assert_eq!(resp.get_str("serve:type").unwrap(), "error", "{resp}");

    client.shutdown().unwrap();
    handle.wait().unwrap();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn breaker_trips_sheds_and_recovers() {
    let _guard = TEST_LOCK.lock().unwrap();
    pressio_faults::clear();
    let dir = temp_dir("breaker");
    let mut config = local_config(&dir);
    config.workers = 1;
    config.queue_capacity = 1;
    config.breaker_threshold = 2;
    config.breaker_cooldown_ms = 150;
    let handle = Server::start(config).unwrap();
    let endpoint = handle.endpoint().clone();

    // occupy the single worker, fill the queue slot
    let blocker = {
        let endpoint = endpoint.clone();
        std::thread::spawn(move || {
            let mut c = Client::connect(&endpoint).unwrap();
            c.call(
                &Options::new()
                    .with("serve:op", op::SLEEP)
                    .with("serve:ms", 500u64),
            )
            .unwrap()
        })
    };
    std::thread::sleep(std::time::Duration::from_millis(100));
    let mut filler = Client::connect(&endpoint).unwrap();
    let filler_pending = std::thread::spawn({
        let endpoint = endpoint.clone();
        move || {
            let mut c = Client::connect(&endpoint).unwrap();
            c.call(
                &Options::new()
                    .with("serve:op", op::SLEEP)
                    .with("serve:ms", 1u64),
            )
            .unwrap()
        }
    });
    std::thread::sleep(std::time::Duration::from_millis(50));

    // queue full: consecutive rejections trip the breaker (threshold 2),
    // after which requests are shed without touching the queue
    let mut saw_breaker_shed = false;
    for _ in 0..6 {
        let resp = filler
            .call(
                &Options::new()
                    .with("serve:op", op::SLEEP)
                    .with("serve:ms", 1u64),
            )
            .unwrap();
        assert!(protocol::is_error(&resp, code::OVERLOADED), "{resp}");
        if resp
            .get_str("serve:message")
            .unwrap_or("")
            .contains("circuit breaker")
        {
            saw_breaker_shed = true;
        }
    }
    assert!(saw_breaker_shed, "breaker never shed a request");
    let stats = filler.stats().unwrap();
    assert_eq!(stats.get_str("serve:breaker.state").unwrap(), "open");
    assert!(stats.get_u64("serve:breaker.trips").unwrap() >= 1);
    assert!(stats.get_u64("serve:breaker.shed").unwrap() >= 1);

    // drain the backlog, wait out the cooldown: the half-open probe
    // succeeds and the breaker closes
    blocker.join().unwrap();
    filler_pending.join().unwrap();
    std::thread::sleep(std::time::Duration::from_millis(200));
    let resp = filler
        .call(
            &Options::new()
                .with("serve:op", op::SLEEP)
                .with("serve:ms", 1u64),
        )
        .unwrap();
    assert_eq!(resp.get_str("serve:type").unwrap(), "slept", "{resp}");
    let stats = filler.stats().unwrap();
    assert_eq!(stats.get_str("serve:breaker.state").unwrap(), "closed");

    filler.shutdown().unwrap();
    handle.wait().unwrap();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn client_side_faults_are_healed_by_retry_byte_identical() {
    let _guard = TEST_LOCK.lock().unwrap();
    pressio_faults::clear();
    let dir = temp_dir("client_faults");
    let handle = Server::start(local_config(&dir)).unwrap();
    let mut client = Client::connect(handle.endpoint()).unwrap();
    client.call(&train_request("hurr")).unwrap();

    let data = sample_data();
    let extra = Options::new().with("pressio:abs", 1e-4);
    let reference = client
        .predict("hurr", &data, &extra)
        .unwrap()
        .get_f64("serve:prediction")
        .unwrap();

    // each client-side loss window in turn: request lost before the
    // write, connection dead with the response in flight, response
    // arrived torn and discarded — call_resilient must heal all three
    // and land the identical prediction
    let req = Client::predict_request("hurr", &data, &extra);
    for spec in [
        "serve:client.request=err,times=1",
        "serve:client.conn=drop,times=1",
        "serve:client.response=drop,times=1",
    ] {
        pressio_faults::configure(spec).unwrap();
        let resp = client
            .call_resilient(&req, &RetryPolicy::default())
            .unwrap();
        let site = spec.split('=').next().unwrap();
        let fires = pressio_faults::fired(site);
        pressio_faults::clear();
        assert_eq!(fires, 1, "{site} must have fired exactly once");
        assert_eq!(resp.get_str("serve:type").unwrap(), "prediction", "{resp}");
        assert_eq!(
            resp.get_f64("serve:prediction").unwrap(),
            reference,
            "retried prediction diverged after {site}"
        );
    }

    client.shutdown().unwrap();
    handle.wait().unwrap();
    let _ = std::fs::remove_dir_all(&dir);
}
