//! Fuzz the wire-protocol frame parser: `read_frame` must never panic on
//! adversarial input — torn frames, lying length prefixes, non-UTF-8
//! payloads, malformed JSON — only return `Ok`/`Err`. Cases are seeded
//! mutations of real frames (see `pressio_core::fuzz`), so every failure
//! replays from the `seed`/`iteration` pair in the panic message; the
//! nightly CI tier deepens the run via `PRESSIO_FUZZ_ITERS`.

use pressio_core::fuzz::Fuzzer;
use pressio_core::{Data, Options};
use pressio_serve::protocol::{self, error_response, frame_bytes, op, read_frame};
use pressio_serve::Client;

/// Real frames of every message shape the protocol produces: ops with
/// and without payloads, an embedded data buffer, and an error response.
fn corpus() -> Vec<Vec<u8>> {
    let data = Data::from_f32(vec![4, 4], (0..16).map(|i| i as f32 * 0.5).collect());
    let messages = vec![
        Options::new().with("serve:op", op::PING),
        Options::new().with("serve:op", op::STATS),
        Options::new().with("serve:op", op::TOPOLOGY),
        Options::new()
            .with("serve:op", op::TRAIN)
            .with("serve:model", "m")
            .with("serve:scheme", "rahman2023")
            .with("serve:dims", vec![8u64, 8, 4])
            .with("serve:timesteps", 1u64)
            .with("serve:bounds", vec![1e-4]),
        Client::predict_request("m@1", &data, &Options::new().with("pressio:abs", 1e-4)),
        error_response("overloaded", "queue full (depth 64)"),
        Options::new(), // empty payload: the 4-byte prefix dominates
    ];
    messages
        .into_iter()
        .map(|m| frame_bytes(&m).unwrap())
        .collect()
}

#[test]
fn read_frame_never_panics_on_mutated_frames() {
    let corpus = corpus();
    Fuzzer::from_env(600).run(&corpus, |case| {
        let mut cursor = std::io::Cursor::new(case);
        // drain the whole stream: a mutated case may contain several
        // frames (splice/duplicate operators), and frame re-sync after a
        // successful parse is part of the surface under test
        while let Ok(Some(_)) = read_frame(&mut cursor) {}
    });
}

#[test]
fn options_json_parser_never_panics_on_mutated_payloads() {
    // strip the length prefixes: this targets the JSON payload parser
    // directly, where mutations stay syntactically "almost JSON"
    let corpus: Vec<Vec<u8>> = corpus().into_iter().map(|f| f[4..].to_vec()).collect();
    Fuzzer::from_env(600).run(&corpus, |case| {
        let text = String::from_utf8_lossy(case);
        let _ = Options::from_json(&text);
    });
}

#[test]
fn surviving_frames_reserialize() {
    // anything the parser accepts must be writable again: a mutated frame
    // that parses is a valid Options and must round-trip
    let corpus = corpus();
    Fuzzer::from_env(400).run(&corpus, |case| {
        let mut cursor = std::io::Cursor::new(case);
        if let Ok(Some(parsed)) = read_frame(&mut cursor) {
            let bytes = frame_bytes(&parsed).expect("parsed frame must reserialize");
            let back = read_frame(&mut std::io::Cursor::new(bytes))
                .expect("reserialized frame must parse")
                .expect("non-empty stream");
            assert_eq!(
                protocol::frame_bytes(&back).unwrap(),
                protocol::frame_bytes(&parsed).unwrap(),
                "round-trip through bytes must be stable"
            );
        }
    });
}
