//! Fuzz the wire-protocol frame parser: `read_frame` must never panic on
//! adversarial input — torn frames, lying length prefixes, non-UTF-8
//! payloads, malformed JSON — only return `Ok`/`Err`. Cases are seeded
//! mutations of real frames (see `pressio_core::fuzz`), so every failure
//! replays from the `seed`/`iteration` pair in the panic message; the
//! nightly CI tier deepens the run via `PRESSIO_FUZZ_ITERS`.

use pressio_core::fuzz::Fuzzer;
use pressio_core::{Data, Options};
use pressio_serve::protocol::{self, error_response, frame_bytes, op, read_frame};
use pressio_serve::{Client, Endpoint, ServeConfig, Server};

/// Real frames of every message shape the protocol produces: ops with
/// and without payloads, an embedded data buffer, and an error response.
fn corpus() -> Vec<Vec<u8>> {
    let data = Data::from_f32(vec![4, 4], (0..16).map(|i| i as f32 * 0.5).collect());
    let messages = vec![
        Options::new().with("serve:op", op::PING),
        Options::new().with("serve:op", op::STATS),
        Options::new().with("serve:op", op::TOPOLOGY),
        Options::new()
            .with("serve:op", op::TRAIN)
            .with("serve:model", "m")
            .with("serve:scheme", "rahman2023")
            .with("serve:dims", vec![8u64, 8, 4])
            .with("serve:timesteps", 1u64)
            .with("serve:bounds", vec![1e-4]),
        Client::predict_request("m@1", &data, &Options::new().with("pressio:abs", 1e-4)),
        error_response("overloaded", "queue full (depth 64)"),
        Options::new(), // empty payload: the 4-byte prefix dominates
    ];
    messages
        .into_iter()
        .map(|m| frame_bytes(&m).unwrap())
        .collect()
}

#[test]
fn read_frame_never_panics_on_mutated_frames() {
    let corpus = corpus();
    Fuzzer::from_env(600).run(&corpus, |case| {
        let mut cursor = std::io::Cursor::new(case);
        // drain the whole stream: a mutated case may contain several
        // frames (splice/duplicate operators), and frame re-sync after a
        // successful parse is part of the surface under test
        while let Ok(Some(_)) = read_frame(&mut cursor) {}
    });
}

#[test]
fn options_json_parser_never_panics_on_mutated_payloads() {
    // strip the length prefixes: this targets the JSON payload parser
    // directly, where mutations stay syntactically "almost JSON"
    let corpus: Vec<Vec<u8>> = corpus().into_iter().map(|f| f[4..].to_vec()).collect();
    Fuzzer::from_env(600).run(&corpus, |case| {
        let text = String::from_utf8_lossy(case);
        let _ = Options::from_json(&text);
    });
}

/// Grammar of `stream.resume` (and neighboring session-op) frames the
/// fuzzer mutates: ids from plain to hostile (path traversal, huge,
/// empty), tokens from well-formed hex to truncated and oversized, and
/// acked offsets across the whole u64 range.
fn resume_corpus() -> Vec<Vec<u8>> {
    let resume = |id: &str, token: &str, acked: u64| {
        Options::new()
            .with("serve:op", op::STREAM_RESUME)
            .with("stream:id", id)
            .with("stream:token", token)
            .with("stream:acked", acked)
    };
    let messages = vec![
        resume("s1", "00e1d2c3b4a59687", 0),
        resume("s1", "00e1d2c3b4a59687", 3),
        resume("s1", "00e1d2c3b4a59687", u64::MAX),
        resume("", "", 1),
        resume("../../etc/passwd", "deadbeef", 7),
        resume(&"x".repeat(4096), &"f".repeat(4096), 42),
        // resume with fields missing or mistyped
        Options::new().with("serve:op", op::STREAM_RESUME),
        Options::new()
            .with("serve:op", op::STREAM_RESUME)
            .with("stream:id", "s1")
            .with("stream:acked", "not-a-number"),
        // the surrounding session grammar, so splices can cross ops
        Options::new()
            .with("serve:op", op::STREAM_BEGIN)
            .with("stream:id", "s1")
            .with("stream:token", "00e1d2c3b4a59687")
            .with("serve:scheme", "rahman2023"),
        Options::new()
            .with("serve:op", op::STREAM_CHUNK)
            .with("stream:id", "s1")
            .with("stream:seq", 2u64),
        Options::new()
            .with("serve:op", op::STREAM_END)
            .with("stream:id", "s1"),
    ];
    messages
        .into_iter()
        .map(|m| frame_bytes(&m).unwrap())
        .collect()
}

#[test]
fn mutated_stream_resume_frames_never_kill_a_live_server() {
    let dir = std::env::temp_dir().join("pressio_fuzz_resume");
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    let config = ServeConfig::new(Endpoint::Tcp("127.0.0.1:0".into()), dir.join("models"));
    let handle = Server::start(config).unwrap();
    let endpoint = handle.endpoint().clone();

    // every mutated frame goes at a real connection: the server may
    // answer, reject, or drop the connection — but must never panic or
    // stop accepting. Responses are deliberately not awaited (a lying
    // length prefix would stall a reader); dropping the connection is
    // part of the hostile-client surface.
    let corpus = resume_corpus();
    Fuzzer::from_env(300).run(&corpus, |case| {
        let mut conn = endpoint.connect().expect("server must keep accepting");
        let _ = std::io::Write::write_all(&mut conn, case);
        let _ = std::io::Write::flush(&mut conn);
    });

    // the parser side of the same corpus never panics either
    Fuzzer::from_env(300).run(&corpus, |case| {
        let mut cursor = std::io::Cursor::new(case);
        while let Ok(Some(_)) = read_frame(&mut cursor) {}
    });

    // the daemon survived the barrage and still answers typed responses
    let mut client = Client::connect(&endpoint).unwrap();
    let stats = client.stats().unwrap();
    assert_eq!(stats.get_str("serve:type").unwrap(), "stats");
    let resume = client.stream_resume("never-opened", "deadbeef", 0).unwrap();
    assert_eq!(resume.get_str("serve:code").unwrap(), "not_found");

    client.shutdown().unwrap();
    handle.wait().unwrap();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn hostile_resume_field_values_get_typed_answers() {
    let dir = std::env::temp_dir().join("pressio_fuzz_resume_fields");
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    let config = ServeConfig::new(Endpoint::Tcp("127.0.0.1:0".into()), dir.join("models"));
    let handle = Server::start(config).unwrap();
    let mut client = Client::connect(handle.endpoint()).unwrap();

    // well-formed frames with fuzzer-derived field values: every one must
    // get a typed JSON answer over the same connection — hostile ids,
    // tokens, and offsets can be rejected but never break the session loop
    let seeds: Vec<Vec<u8>> = vec![
        b"stream-id\x00token\xffoffset".to_vec(),
        b"../../escape\x01\x02\x03\x04\x05\x06\x07\x08".to_vec(),
        vec![0xff; 64],
    ];
    Fuzzer::from_env(200).run(&seeds, |case| {
        let mid = case.len() / 2;
        let id = String::from_utf8_lossy(&case[..mid]).into_owned();
        let token = String::from_utf8_lossy(&case[mid..]).into_owned();
        let mut acked = [0u8; 8];
        for (i, b) in case.iter().take(8).enumerate() {
            acked[i] = *b;
        }
        let resp = client
            .stream_resume(&id, &token, u64::from_le_bytes(acked))
            .expect("a well-formed resume frame must get a typed answer");
        let kind = resp.get_str("serve:type").expect("response must be typed");
        assert!(
            kind == "error" || kind == "stream.resumed",
            "unexpected resume answer: {resp}"
        );
    });

    let stats = client.stats().unwrap();
    assert_eq!(stats.get_str("serve:type").unwrap(), "stats");
    client.shutdown().unwrap();
    handle.wait().unwrap();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn surviving_frames_reserialize() {
    // anything the parser accepts must be writable again: a mutated frame
    // that parses is a valid Options and must round-trip
    let corpus = corpus();
    Fuzzer::from_env(400).run(&corpus, |case| {
        let mut cursor = std::io::Cursor::new(case);
        if let Ok(Some(parsed)) = read_frame(&mut cursor) {
            let bytes = frame_bytes(&parsed).expect("parsed frame must reserialize");
            let back = read_frame(&mut std::io::Cursor::new(bytes))
                .expect("reserialized frame must parse")
                .expect("non-empty stream");
            assert_eq!(
                protocol::frame_bytes(&back).unwrap(),
                protocol::frame_bytes(&parsed).unwrap(),
                "round-trip through bytes must be stable"
            );
        }
    });
}
