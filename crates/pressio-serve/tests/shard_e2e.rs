//! End-to-end multi-shard tests: supervisor spawn/restart, consistent-hash
//! routing with failover, reload invalidation, batch coalescing, and
//! byte-identical parity between single-process and sharded serving.

use pressio_core::Options;
use pressio_dataset::{DatasetPlugin, Hurricane};
use pressio_serve::protocol::op;
use pressio_serve::shard::{routing_key, InProcessSpawner};
use pressio_serve::{
    Client, Endpoint, ServeConfig, Server, ShardedClient, Supervisor, SupervisorConfig, Topology,
};
use std::path::PathBuf;
use std::sync::Arc;
use std::time::{Duration, Instant};

fn temp_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join("pressio_shard_e2e").join(name);
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn local_config(dir: &std::path::Path) -> ServeConfig {
    ServeConfig::new(Endpoint::Tcp("127.0.0.1:0".into()), dir.join("models"))
}

fn train_request(model: &str) -> Options {
    Options::new()
        .with("serve:op", op::TRAIN)
        .with("serve:model", model)
        .with("serve:scheme", "rahman2023")
        .with("serve:dims", vec![8u64, 8, 4])
        .with("serve:timesteps", 1u64)
        .with("serve:bounds", vec![1e-4])
}

fn sample_data(index: usize) -> pressio_core::Data {
    Hurricane::with_dims(8, 8, 4, 2).load_data(index).unwrap()
}

fn start_supervisor(
    dir: &std::path::Path,
    shards: usize,
    restart_max: u32,
) -> pressio_serve::shard::SupervisorHandle {
    let mut config = SupervisorConfig::new(
        Endpoint::Tcp("127.0.0.1:0".into()),
        local_config(dir),
        shards,
    );
    config.restart_max = restart_max;
    Supervisor::start(config, Arc::new(InProcessSpawner)).unwrap()
}

#[test]
fn sharded_predictions_are_byte_identical_to_single_process() {
    let dir = temp_dir("parity");
    let extra = Options::new().with("pressio:abs", 1e-4);

    // single-process reference
    let handle = Server::start(local_config(&dir)).unwrap();
    let mut client = Client::connect(handle.endpoint()).unwrap();
    let trained = client.call(&train_request("m")).unwrap();
    assert_eq!(
        trained.get_str("serve:type").unwrap(),
        "trained",
        "{trained}"
    );
    let reference: Vec<u64> = (0..4)
        .map(|i| {
            client
                .predict("m", &sample_data(i), &extra)
                .unwrap()
                .get_f64("serve:prediction")
                .unwrap()
                .to_bits()
        })
        .collect();
    client.shutdown().unwrap();
    handle.wait().unwrap();

    // 3-shard deployment over the same model store
    let sup = start_supervisor(&dir, 3, 1);
    let topology = sup.topology();
    assert_eq!(topology.shards.len(), 3);
    assert_eq!(topology.generation, 1);

    // via the shard-aware client (direct routing)
    let mut routed = ShardedClient::connect(sup.endpoint()).unwrap();
    for (i, &want) in reference.iter().enumerate() {
        let resp = routed.predict("m", &sample_data(i), &extra).unwrap();
        assert_eq!(
            resp.get_f64("serve:prediction").unwrap().to_bits(),
            want,
            "sharded prediction {i} differs from single-process"
        );
        // the answering shard is the content-hash home shard
        let req = Client::predict_request("m", &sample_data(i), &extra);
        let home = topology.route(&routing_key(&req).unwrap());
        assert_eq!(resp.get_u64("serve:shard").unwrap(), home as u64);
    }

    // via the supervisor proxy (topology-unaware client)
    let mut plain = Client::connect(sup.endpoint()).unwrap();
    for (i, &want) in reference.iter().enumerate() {
        let resp = plain.predict("m", &sample_data(i), &extra).unwrap();
        assert_eq!(resp.get_f64("serve:prediction").unwrap().to_bits(), want);
        // second hit through the proxy lands on the same shard's warm cache
        let again = plain.predict("m", &sample_data(i), &extra).unwrap();
        assert!(again.get_bool("serve:cached").unwrap(), "{again}");
    }

    sup.trigger_shutdown();
    sup.wait().unwrap();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn supervisor_restarts_dead_shard_and_bumps_generation() {
    let dir = temp_dir("restart");
    let sup = start_supervisor(&dir, 2, 2);
    let mut client = Client::connect(sup.endpoint()).unwrap();
    client.call(&train_request("m")).unwrap();
    let extra = Options::new().with("pressio:abs", 1e-4);

    // find a buffer homed on shard 0 and one homed on shard 1
    let topology = sup.topology();
    let mut on0 = None;
    let mut on1 = None;
    for i in 0..16 {
        let req = Client::predict_request("m", &sample_data(i % 4), &extra)
            .with("pressio:rel", 1e-3 * (i + 1) as f64);
        match topology.route(&routing_key(&req).unwrap()) {
            0 if on0.is_none() => on0 = Some(req),
            1 if on1.is_none() => on1 = Some(req),
            _ => {}
        }
    }
    let (on0, on1) = (
        on0.expect("a key homed on shard 0"),
        on1.expect("a key homed on shard 1"),
    );

    // warm shard 1's cache, then kill shard 0
    let warm = client.call(&on1).unwrap();
    assert_eq!(warm.get_str("serve:type").unwrap(), "prediction", "{warm}");
    sup.kill_shard(0);

    // the proxy fails over: shard 0's request still gets an answer
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        let resp = client.call(&on0).unwrap();
        if resp.get_str("serve:type") == Ok("prediction") {
            break;
        }
        assert!(
            Instant::now() < deadline,
            "failover never succeeded: {resp}"
        );
        std::thread::sleep(Duration::from_millis(50));
    }

    // the monitor respawns shard 0 under a bumped generation
    let deadline = Instant::now() + Duration::from_secs(10);
    while sup.topology().generation < 2 {
        assert!(Instant::now() < deadline, "shard was never restarted");
        std::thread::sleep(Duration::from_millis(50));
    }
    let topo2 = sup.topology();
    assert_eq!(topo2.shards.len(), 2);
    // the topology file on disk reflects the restart
    let on_disk = Topology::load(&dir.join("models")).unwrap().unwrap();
    assert_eq!(on_disk.generation, topo2.generation);

    // shard 1's cache was NOT poisoned by shard 0's death: its key is
    // still warm
    let again = client.call(&on1).unwrap();
    assert!(again.get_bool("serve:cached").unwrap(), "{again}");

    // and the restarted shard 0 serves its keys again (cold cache)
    let resp = client.call(&on0).unwrap();
    assert_eq!(resp.get_str("serve:type").unwrap(), "prediction", "{resp}");

    sup.trigger_shutdown();
    sup.wait().unwrap();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn sharded_client_fails_over_when_home_shard_stays_dead() {
    let dir = temp_dir("failover");
    // restart budget 0: the killed shard stays dead
    let sup = start_supervisor(&dir, 3, 0);
    Client::connect(sup.endpoint())
        .unwrap()
        .call(&train_request("m"))
        .unwrap();
    let extra = Options::new().with("pressio:abs", 1e-4);
    let mut routed = ShardedClient::connect(sup.endpoint()).unwrap();
    // a request homed on shard 2
    let topology = routed.topology().clone();
    let req = (0..32)
        .map(|i| {
            Client::predict_request("m", &sample_data(i % 4), &extra)
                .with("pressio:rel", 1e-3 * (i + 1) as f64)
        })
        .find(|r| topology.route(&routing_key(r).unwrap()) == 2)
        .expect("a key homed on shard 2");
    sup.kill_shard(2);
    std::thread::sleep(Duration::from_millis(100));
    let resp = routed.call(&req).unwrap();
    assert_eq!(resp.get_str("serve:type").unwrap(), "prediction", "{resp}");
    // it was served by a surviving shard, in rendezvous failover order
    let served_by = resp.get_u64("serve:shard").unwrap() as usize;
    assert_ne!(served_by, 2);
    let order = topology.failover_order(&routing_key(&req).unwrap());
    assert_eq!(order[0].0, 2, "home shard first in the order");
    assert!(order[1..].iter().any(|(i, _)| *i == served_by));
    sup.trigger_shutdown();
    sup.wait().unwrap();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn reload_invalidates_predictions_cached_under_old_model_version() {
    let dir = temp_dir("reload");
    let mut config = local_config(&dir);
    // a long TTL so the stale window is deterministic: without reload,
    // server A would keep resolving v1 for a minute
    config.latest_ttl_ms = 60_000;
    let handle_a = Server::start(config).unwrap();
    let mut client_a = Client::connect(handle_a.endpoint()).unwrap();
    client_a.call(&train_request("m")).unwrap();
    let extra = Options::new().with("pressio:abs", 1e-4);
    let data = sample_data(0);
    let v1 = client_a.predict("m", &data, &extra).unwrap();
    assert_eq!(v1.get_str("serve:model").unwrap(), "m@1", "{v1}");
    assert!(client_a
        .predict("m", &data, &extra)
        .unwrap()
        .get_bool("serve:cached")
        .unwrap());

    // another server over the same store trains version 2
    let handle_b = Server::start(local_config(&dir)).unwrap();
    let mut client_b = Client::connect(handle_b.endpoint()).unwrap();
    let trained = client_b.call(&train_request("m")).unwrap();
    assert_eq!(trained.get_u64("serve:version").unwrap(), 2);

    // server A still serves v1 from its TTL'd resolution + cache
    let stale = client_a.predict("m", &data, &extra).unwrap();
    assert_eq!(stale.get_str("serve:model").unwrap(), "m@1");
    assert!(stale.get_bool("serve:cached").unwrap());

    // reload: after this, nothing cached under v1 may be served
    let reloaded = client_a
        .call(&Options::new().with("serve:op", op::RELOAD))
        .unwrap();
    assert_eq!(
        reloaded.get_str("serve:type").unwrap(),
        "reloaded",
        "{reloaded}"
    );
    assert!(reloaded.get_u64("serve:models.dropped").unwrap() >= 1);
    assert!(reloaded.get_u64("serve:predictions.purged").unwrap() >= 1);
    let fresh = client_a.predict("m", &data, &extra).unwrap();
    assert_eq!(
        fresh.get_str("serve:model").unwrap(),
        "m@2",
        "reload must not serve predictions cached under the old version: {fresh}"
    );
    assert!(!fresh.get_bool("serve:cached").unwrap());

    client_a.shutdown().unwrap();
    handle_a.wait().unwrap();
    client_b.shutdown().unwrap();
    handle_b.wait().unwrap();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn supervisor_train_broadcasts_reload_to_every_shard() {
    let dir = temp_dir("broadcast");
    let sup = start_supervisor(&dir, 2, 1);
    let mut client = Client::connect(sup.endpoint()).unwrap();
    client.call(&train_request("m")).unwrap();
    let extra = Options::new().with("pressio:abs", 1e-4);
    // warm every shard with a direct predict so both resolve v1
    let topology = sup.topology();
    for shard in &topology.shards {
        let mut direct = Client::connect(shard).unwrap();
        let resp = direct.predict("m", &sample_data(0), &extra).unwrap();
        assert_eq!(resp.get_str("serve:model").unwrap(), "m@1", "{resp}");
    }
    // retrain through the supervisor: the reload broadcast must reach
    // every shard, so none keeps serving v1 out of its TTL cache
    let trained = client.call(&train_request("m")).unwrap();
    assert_eq!(trained.get_u64("serve:version").unwrap(), 2);
    for shard in &topology.shards {
        let mut direct = Client::connect(shard).unwrap();
        let resp = direct.predict("m", &sample_data(0), &extra).unwrap();
        assert_eq!(
            resp.get_str("serve:model").unwrap(),
            "m@2",
            "shard {shard} still serves the superseded version: {resp}"
        );
    }
    sup.trigger_shutdown();
    sup.wait().unwrap();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn identical_buffers_in_one_batch_coalesce_into_one_extraction() {
    let dir = temp_dir("coalesce");
    let mut config = local_config(&dir);
    config.workers = 1;
    config.batch_max = 8;
    config.queue_capacity = 16;
    let handle = Server::start(config).unwrap();
    let endpoint = handle.endpoint().clone();
    let mut client = Client::connect(&endpoint).unwrap();
    client.call(&train_request("m")).unwrap();
    let extra = Options::new().with("pressio:abs", 1e-4);

    // occupy the single worker so the predicts pile into one batch
    let blocker = {
        let endpoint = endpoint.clone();
        std::thread::spawn(move || {
            Client::connect(&endpoint)
                .unwrap()
                .call(
                    &Options::new()
                        .with("serve:op", op::SLEEP)
                        .with("serve:ms", 400u64),
                )
                .unwrap()
        })
    };
    std::thread::sleep(Duration::from_millis(100));
    // four connections submit the SAME buffer while the worker sleeps
    let workers: Vec<_> = (0..4)
        .map(|_| {
            let endpoint = endpoint.clone();
            let extra = extra.clone();
            std::thread::spawn(move || {
                Client::connect(&endpoint)
                    .unwrap()
                    .predict("m", &sample_data(0), &extra)
                    .unwrap()
            })
        })
        .collect();
    let responses: Vec<Options> = workers.into_iter().map(|w| w.join().unwrap()).collect();
    blocker.join().unwrap();
    let first = responses[0].get_f64("serve:prediction").unwrap();
    for resp in &responses {
        assert_eq!(resp.get_str("serve:type").unwrap(), "prediction", "{resp}");
        assert_eq!(resp.get_f64("serve:prediction").unwrap(), first);
    }
    let stats = client.stats().unwrap();
    // 4 identical cold requests need agnostic+dependent features exactly
    // once: 2 extractions ran, 6 were coalesced away
    assert_eq!(
        stats.get_u64("serve:features.computed").unwrap(),
        2,
        "identical buffers must extract once: {stats}"
    );
    assert_eq!(stats.get_u64("serve:coalesced").unwrap(), 6, "{stats}");
    client.shutdown().unwrap();
    handle.wait().unwrap();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn topology_op_works_on_standalone_and_sharded_servers() {
    let dir = temp_dir("topology_op");
    // standalone server synthesizes a single-shard topology
    let handle = Server::start(local_config(&dir)).unwrap();
    let mut client = Client::connect(handle.endpoint()).unwrap();
    let resp = client
        .call(&Options::new().with("serve:op", op::TOPOLOGY))
        .unwrap();
    let topo = Topology::from_options(&resp).unwrap();
    assert_eq!(topo.shards, vec![handle.endpoint().clone()]);
    assert_eq!(topo.generation, 0);
    client.shutdown().unwrap();
    handle.wait().unwrap();

    // sharded: shards themselves serve the supervisor-written topology
    let sup = start_supervisor(&dir, 2, 1);
    let shard0 = sup.topology().shards[0].clone();
    let mut direct = Client::connect(&shard0).unwrap();
    let resp = direct
        .call(&Options::new().with("serve:op", op::TOPOLOGY))
        .unwrap();
    let topo = Topology::from_options(&resp).unwrap();
    assert_eq!(topo.shards.len(), 2);
    assert_eq!(topo.generation, 1);
    assert_eq!(topo.base, *sup.endpoint());
    sup.trigger_shutdown();
    sup.wait().unwrap();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn supervisor_proxy_reuses_pooled_shard_connections() {
    let dir = temp_dir("pool");
    let sup = start_supervisor(&dir, 2, 1);
    let mut client = Client::connect(sup.endpoint()).unwrap();
    let trained = client.call(&train_request("m")).unwrap();
    assert_eq!(
        trained.get_str("serve:type").unwrap(),
        "trained",
        "{trained}"
    );
    let extra = Options::new().with("pressio:abs", 1e-4);
    let reference: Vec<u64> = (0..4)
        .map(|i| {
            client
                .predict("m", &sample_data(i), &extra)
                .unwrap()
                .get_f64("serve:prediction")
                .unwrap()
                .to_bits()
        })
        .collect();
    for _ in 0..2 {
        for (i, &want) in reference.iter().enumerate() {
            let resp = client.predict("m", &sample_data(i), &extra).unwrap();
            assert_eq!(resp.get_f64("serve:prediction").unwrap().to_bits(), want);
        }
    }

    // 12 routed predicts over 2 shards: after each shard's first dial,
    // every subsequent proxied request rides the parked connection
    let stats = client.stats().unwrap();
    let reused = stats.get_u64("serve:proxy.conn_reuse").unwrap();
    assert!(
        reused >= 10,
        "proxy must reuse pooled connections, saw {reused}: {stats}"
    );

    // a killed shard's parked connection must not wedge the proxy: the
    // stale-socket retry and the failover order keep answers flowing
    sup.kill_shard(0);
    let deadline = Instant::now() + Duration::from_secs(10);
    for (i, &want) in reference.iter().cycle().enumerate().take(8) {
        loop {
            match client.predict("m", &sample_data(i % 4), &extra) {
                Ok(resp) if resp.get_str("serve:type").unwrap() == "prediction" => {
                    assert_eq!(resp.get_f64("serve:prediction").unwrap().to_bits(), want);
                    break;
                }
                _ if Instant::now() < deadline => {
                    std::thread::sleep(Duration::from_millis(50));
                }
                other => panic!("prediction never recovered after shard kill: {other:?}"),
            }
        }
    }
    sup.trigger_shutdown();
    sup.wait().unwrap();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn mid_stream_shard_kill_resumes_on_failover_shard_byte_identically() {
    let dir = temp_dir("stream_kill");
    let sup = start_supervisor(&dir, 2, 2);
    let mut client = Client::connect(sup.endpoint()).unwrap();
    client.call(&train_request("m")).unwrap();
    let extra = Options::new()
        .with("serve:model", "m")
        .with("pressio:abs", 1e-4);

    let mut source = Hurricane::with_dims(8, 8, 4, 6).with_fields(&["TC"]);
    let data: Vec<pressio_core::Data> = (0..6).map(|t| source.load_data(t).unwrap()).collect();

    // unfailed reference stream, proxied through the supervisor: stream
    // ops route by stream:id, so the whole session has shard affinity
    client.stream_begin("ref", &extra).unwrap();
    let reference: Vec<u64> = data
        .iter()
        .enumerate()
        .map(|(t, chunk)| {
            let resp = client
                .stream_chunk_at("ref", t as u64 + 1, chunk, &Options::new())
                .unwrap();
            assert_eq!(
                resp.get_str("serve:type").unwrap(),
                "stream.prediction",
                "{resp}"
            );
            resp.get_f64("serve:prediction").unwrap().to_bits()
        })
        .collect();
    client.stream_end("ref").unwrap();

    // the faulted stream: find its home shard before starting
    let probe = Options::new()
        .with("serve:op", op::STREAM_CHUNK)
        .with("stream:id", "kill");
    let home = sup.topology().route(&routing_key(&probe).unwrap());

    let mut sender = pressio_serve::ResilientStreamSender::new(
        sup.endpoint().clone(),
        "kill",
        pressio_serve::RetryPolicy {
            max_attempts: 20,
            base_ms: 20,
            max_ms: 200,
        },
    );
    let begun = sender.begin(&extra).unwrap();
    assert_eq!(begun.get_str("serve:type").unwrap(), "stream.begun");
    let mut recovered = vec![0u64; data.len()];
    while sender.next_seq() <= data.len() as u64 {
        let seq = sender.next_seq();
        if seq == 4 {
            // kill the session's home shard mid-stream: the proxy fails
            // over, the failover shard rehydrates the session from the
            // shared journal, and the stream continues
            sup.kill_shard(home);
        }
        let resp = sender
            .send_chunk(seq, &data[seq as usize - 1], &Options::new())
            .unwrap();
        if resp.get_str_opt("serve:type").unwrap() == Some("stream.rewound") {
            continue;
        }
        assert_eq!(
            resp.get_str("serve:type").unwrap(),
            "stream.prediction",
            "chunk {seq} after shard kill: {resp}"
        );
        recovered[seq as usize - 1] = resp.get_f64("serve:prediction").unwrap().to_bits();
    }
    assert_eq!(
        recovered, reference,
        "stream resumed across a shard kill diverged from the unfailed run"
    );
    assert!(
        sender.resumes() >= 1,
        "the sender must have resumed the session (resumes: {})",
        sender.resumes()
    );

    let ended = sender.end().unwrap();
    assert_eq!(
        ended.get_str("serve:type").unwrap(),
        "stream.ended",
        "{ended}"
    );
    assert_eq!(ended.get_u64("stream:chunks").unwrap(), 6);

    sup.trigger_shutdown();
    sup.wait().unwrap();
    let _ = std::fs::remove_dir_all(&dir);
}
