//! End-to-end streaming tests over a real socket: session lifecycle,
//! per-chunk predictions with temporal features, the configurable frame
//! cap, and online learning (rolling-window refits with hot version
//! bumps) against a live `--online` daemon.

use pressio_core::{Dtype, Options};
use pressio_dataset::{DatasetPlugin, Hurricane};
use pressio_serve::protocol::{code, op};
use pressio_serve::{Client, Endpoint, ServeConfig, Server};
use pressio_stream::{StreamEncoder, StreamHeader};
use std::path::PathBuf;

fn temp_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join("pressio_stream_e2e").join(name);
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn local_config(dir: &std::path::Path) -> ServeConfig {
    ServeConfig::new(Endpoint::Tcp("127.0.0.1:0".into()), dir.join("models"))
}

/// A single-field hurricane time series: `load_data(t)` is timestep `t`.
fn timesteps(n: usize) -> Hurricane {
    Hurricane::with_dims(8, 8, 4, n).with_fields(&["TC"])
}

fn train_request(model: &str) -> Options {
    Options::new()
        .with("serve:op", op::TRAIN)
        .with("serve:model", model)
        .with("serve:scheme", "rahman2023")
        .with("serve:dims", vec![8u64, 8, 4])
        .with("serve:timesteps", 1u64)
        .with("serve:bounds", vec![1e-4])
}

#[test]
fn stream_session_lifecycle_with_temporal_features() {
    let dir = temp_dir("lifecycle");
    let handle = Server::start(local_config(&dir)).unwrap();
    let mut client = Client::connect(handle.endpoint()).unwrap();

    let trained = client.call(&train_request("hurr")).unwrap();
    assert_eq!(
        trained.get_str("serve:type").unwrap(),
        "trained",
        "{trained}"
    );

    // chunking to an unopened stream is a typed not-found, not a hang
    let orphan = client
        .stream_chunk("nope", &timesteps(1).load_data(0).unwrap(), &Options::new())
        .unwrap();
    assert_eq!(orphan.get_str("serve:code").unwrap(), code::NOT_FOUND);

    let extra = Options::new()
        .with("serve:model", "hurr")
        .with("pressio:abs", 1e-4);
    let begun = client.stream_begin("s-lifecycle", &extra).unwrap();
    assert_eq!(
        begun.get_str("serve:type").unwrap(),
        "stream.begun",
        "{begun}"
    );
    assert!(!begun.get_bool("stream:online").unwrap());
    assert!(begun.get_str("serve:model").unwrap().starts_with("hurr@"));

    // a duplicate begin for an open id is rejected
    let dup = client.stream_begin("s-lifecycle", &extra).unwrap();
    assert_eq!(dup.get_str("serve:code").unwrap(), code::BAD_REQUEST);

    let mut source = timesteps(5);
    for t in 0..5 {
        let chunk = source.load_data(t).unwrap();
        let resp = client
            .stream_chunk("s-lifecycle", &chunk, &Options::new())
            .unwrap();
        assert_eq!(
            resp.get_str("serve:type").unwrap(),
            "stream.prediction",
            "{resp}"
        );
        assert_eq!(resp.get_u64("stream:seq").unwrap(), t as u64 + 1);
        let prediction = resp.get_f64("serve:prediction").unwrap();
        assert!(prediction.is_finite() && prediction > 0.0, "{prediction}");
        assert!(resp.get_str("serve:model").unwrap().starts_with("hurr@"));
    }

    let stats = client.stats().unwrap();
    assert_eq!(stats.get_u64("serve:streams.active").unwrap(), 1);
    assert_eq!(stats.get_u64("serve:stream.chunks").unwrap(), 5);

    let ended = client.stream_end("s-lifecycle").unwrap();
    assert_eq!(ended.get_str("serve:type").unwrap(), "stream.ended");
    assert_eq!(ended.get_u64("stream:chunks").unwrap(), 5);

    // the session is gone: end again → not found, active count drops
    let again = client.stream_end("s-lifecycle").unwrap();
    assert_eq!(again.get_str("serve:code").unwrap(), code::NOT_FOUND);
    let stats = client.stats().unwrap();
    assert_eq!(stats.get_u64("serve:streams.active").unwrap(), 0);

    client.shutdown().unwrap();
    handle.wait().unwrap();
}

#[test]
fn online_mode_refits_and_bumps_model_version() {
    let dir = temp_dir("online");
    let mut config = local_config(&dir);
    config.online = true;
    config.online_window = 32;
    config.online_refit_every = 4;
    let handle = Server::start(config).unwrap();
    let mut client = Client::connect(handle.endpoint()).unwrap();

    let trained = client.call(&train_request("hurr")).unwrap();
    assert_eq!(
        trained.get_str("serve:type").unwrap(),
        "trained",
        "{trained}"
    );
    assert_eq!(trained.get_u64("serve:version").unwrap(), 1);

    let extra = Options::new()
        .with("serve:model", "hurr")
        .with("pressio:abs", 1e-4);
    let begun = client.stream_begin("s-online", &extra).unwrap();
    assert!(begun.get_bool("stream:online").unwrap(), "{begun}");

    // stream 12 timesteps; each chunk reports the *real* achieved ratio
    // from the frame encoder's chunk record as stream:actual
    let mut source = timesteps(12);
    let header = StreamHeader {
        codec: "sz3".into(),
        dtype: Dtype::F32,
        inner_dims: vec![8, 8],
        chunk_outer: 4,
        chained: false,
        codec_options: Options::new().with("pressio:abs", 1e-4),
    };
    let mut encoder = StreamEncoder::new(Vec::new(), header).unwrap();
    let mut saw_error = false;
    let mut max_version = 0u64;
    for t in 0..12 {
        let chunk = source.load_data(t).unwrap();
        let record = encoder.write_chunk(&chunk).unwrap();
        let actual = record.raw_len as f64 / record.comp_len as f64;
        let resp = client
            .stream_chunk(
                "s-online",
                &chunk,
                &Options::new().with("stream:actual", actual),
            )
            .unwrap();
        assert_eq!(
            resp.get_str("serve:type").unwrap(),
            "stream.prediction",
            "{resp}"
        );
        if let Ok(Some(err)) = resp.get_f64_opt("stream:online.error") {
            saw_error = true;
            assert!(err.is_finite() && err >= 0.0);
        }
        if let Ok(Some(v)) = resp.get_u64_opt("stream:online.version") {
            max_version = max_version.max(v);
        }
    }
    assert!(saw_error, "online responses never reported a rolling error");
    assert!(max_version >= 2, "no online refit bumped the model version");

    // refits went through the versioned store: new versions are listed,
    // and the daemon's counters saw them
    let models = client.models().unwrap();
    let listed = models.get_str_slice("serve:models").unwrap().to_vec();
    assert!(
        listed.iter().any(|m| m == &format!("hurr@{max_version}")),
        "{listed:?}"
    );
    let stats = client.stats().unwrap();
    assert!(stats.get_u64("serve:online.refits").unwrap() >= 1);

    let ended = client.stream_end("s-online").unwrap();
    assert!(ended.get_u64("stream:online.refits").unwrap() >= 1);
    assert!(ended.get_f64("stream:online.error").unwrap().is_finite());

    // the refined model serves normal predict traffic at its new version
    let data = source.load_data(0).unwrap();
    let pred = client
        .predict("hurr", &data, &Options::new().with("pressio:abs", 1e-4))
        .unwrap();
    assert!(pred
        .get_str("serve:model")
        .unwrap()
        .ends_with(&format!("@{max_version}")));

    client.shutdown().unwrap();
    handle.wait().unwrap();
}

#[test]
fn configured_frame_cap_drops_oversized_frames_before_allocation() {
    let dir = temp_dir("frame_cap");
    let mut config = local_config(&dir);
    config.max_frame = 64 << 10; // 64 KiB
    let handle = Server::start(config).unwrap();

    // a declared length over the cap (but under the protocol ceiling)
    // gets the connection dropped without the body ever being read
    let mut conn = handle.endpoint().connect().unwrap();
    let declared = (1u32 << 20).to_be_bytes();
    std::io::Write::write_all(&mut conn, &declared).unwrap();
    std::io::Write::flush(&mut conn).unwrap();
    let mut buf = [0u8; 16];
    let got = std::io::Read::read(&mut conn, &mut buf).unwrap_or(0);
    assert_eq!(
        got, 0,
        "server answered an over-cap frame instead of dropping"
    );

    // the daemon is still healthy for well-behaved clients
    let mut client = Client::connect(handle.endpoint()).unwrap();
    assert_eq!(
        client.ping().unwrap().get_str("serve:type").unwrap(),
        "pong"
    );

    client.shutdown().unwrap();
    handle.wait().unwrap();
}
