//! Bounded, batching request pipeline.
//!
//! Connection threads submit work items into a bounded queue; a fixed pool
//! of worker threads drains them in **batches grouped by batch key** (the
//! model reference for predictions), so requests for the same model amortize
//! model resolution and run their feature extraction together on the
//! `pressio_core::threads` pool. Backpressure is explicit: when the queue
//! is full, [`Pipeline::submit`] fails immediately and the caller answers
//! `overloaded` — the queue can never grow without bound.
//!
//! Every accepted item is guaranteed exactly one reply: workers answer
//! expired items with `deadline_exceeded` before processing, and shutdown
//! drains the queue before the workers exit.

use crate::protocol::{self, code};
use pressio_core::Options;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::SyncSender;
use std::sync::{Arc, Condvar, Mutex};
use std::time::Instant;

/// One queued request.
pub struct WorkItem {
    /// Requests sharing a batch key may be processed in one batch.
    pub batch_key: String,
    /// The decoded request frame.
    pub request: Options,
    /// Absolute deadline; items popped after it answer `deadline_exceeded`.
    pub deadline: Instant,
    /// Reply channel back to the connection thread (capacity ≥ 1, so
    /// workers never block on a slow connection).
    pub reply: SyncSender<Options>,
}

impl WorkItem {
    /// Send the reply, ignoring a connection that already went away.
    pub fn respond(&self, response: Options) {
        let _ = self.reply.send(response);
    }

    /// Whether the item's deadline has already passed.
    pub fn expired(&self) -> bool {
        Instant::now() > self.deadline
    }

    /// Send the reply unless the deadline passed while it was being
    /// computed: the client has stopped waiting by contract, so a late
    /// success is replaced with `deadline_exceeded` (error responses pass
    /// through — they carry diagnostics worth delivering either way).
    pub fn respond_checked(&self, response: Options) {
        let is_error = response.get_str_opt("serve:type").ok().flatten() == Some("error");
        if self.expired() && !is_error {
            pressio_obs::add_counter("serve:deadline.exceeded_late", 1);
            self.respond(protocol::error_response(
                code::DEADLINE_EXCEEDED,
                "deadline passed during compute",
            ));
            return;
        }
        self.respond(response);
    }
}

struct Shared {
    queue: Mutex<VecDeque<WorkItem>>,
    /// Signals workers that the queue gained an item or state changed.
    cond: Condvar,
    capacity: usize,
    batch_max: usize,
    /// New submissions are rejected once draining starts.
    draining: AtomicBool,
}

/// Handle to the worker pool; dropping without [`Pipeline::shutdown`] joins
/// nothing (the server owns shutdown ordering explicitly).
pub struct Pipeline {
    shared: Arc<Shared>,
    workers: Mutex<Vec<std::thread::JoinHandle<()>>>,
}

impl Pipeline {
    /// Spawn `workers` threads processing batches with `handler`. The
    /// handler receives 1..=`batch_max` items sharing one batch key and
    /// must reply to every one of them.
    pub fn start(
        capacity: usize,
        batch_max: usize,
        workers: usize,
        handler: Arc<dyn Fn(Vec<WorkItem>) + Send + Sync>,
    ) -> Pipeline {
        let shared = Arc::new(Shared {
            queue: Mutex::new(VecDeque::new()),
            cond: Condvar::new(),
            capacity: capacity.max(1),
            batch_max: batch_max.max(1),
            draining: AtomicBool::new(false),
        });
        let workers = (0..workers.max(1))
            .map(|w| {
                let shared = shared.clone();
                let handler = handler.clone();
                std::thread::Builder::new()
                    .name(format!("pressio-serve-worker-{w}"))
                    .spawn(move || worker_loop(&shared, handler.as_ref()))
                    .expect("spawn pipeline worker")
            })
            .collect();
        Pipeline {
            shared,
            workers: Mutex::new(workers),
        }
    }

    /// Enqueue an item, or reject it immediately when the queue is at
    /// capacity or the pipeline is draining. On rejection the item is
    /// handed back so the caller can answer `overloaded` itself.
    pub fn submit(&self, item: WorkItem) -> std::result::Result<(), WorkItem> {
        if self.shared.draining.load(Ordering::Acquire) {
            return Err(item);
        }
        {
            let mut queue = self.shared.queue.lock().unwrap_or_else(|e| e.into_inner());
            if queue.len() >= self.shared.capacity {
                pressio_obs::add_counter("serve:queue.rejected", 1);
                return Err(item);
            }
            queue.push_back(item);
            pressio_obs::set_gauge("serve:queue.depth", queue.len() as f64);
        }
        self.shared.cond.notify_one();
        Ok(())
    }

    /// Queued (not yet claimed) items.
    pub fn depth(&self) -> usize {
        self.shared
            .queue
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .len()
    }

    /// Graceful shutdown: stop accepting, let workers drain everything
    /// already queued, then join them. Idempotent — later calls find the
    /// handle list already empty.
    pub fn shutdown(&self) {
        self.shared.draining.store(true, Ordering::Release);
        self.shared.cond.notify_all();
        let workers = std::mem::take(&mut *self.workers.lock().unwrap_or_else(|e| e.into_inner()));
        for w in workers {
            let _ = w.join();
        }
    }
}

fn worker_loop(shared: &Shared, handler: &(dyn Fn(Vec<WorkItem>) + Send + Sync)) {
    loop {
        let batch = {
            let mut queue = shared.queue.lock().unwrap_or_else(|e| e.into_inner());
            loop {
                if let Some(first) = queue.pop_front() {
                    // gather up to batch_max - 1 more items with the same
                    // batch key, preserving the arrival order of the rest
                    let mut batch = vec![first];
                    let key = batch[0].batch_key.clone();
                    let mut i = 0;
                    while batch.len() < shared.batch_max && i < queue.len() {
                        if queue[i].batch_key == key {
                            batch.push(queue.remove(i).expect("index in range"));
                        } else {
                            i += 1;
                        }
                    }
                    pressio_obs::set_gauge("serve:queue.depth", queue.len() as f64);
                    break batch;
                }
                if shared.draining.load(Ordering::Acquire) {
                    return;
                }
                queue = shared.cond.wait(queue).unwrap_or_else(|e| e.into_inner());
            }
        };
        pressio_obs::add_counter("serve:batch.count", 1);
        pressio_obs::set_gauge("serve:batch.size", batch.len() as f64);
        let now = Instant::now();
        let (live, expired): (Vec<WorkItem>, Vec<WorkItem>) =
            batch.into_iter().partition(|item| now <= item.deadline);
        for item in expired {
            pressio_obs::add_counter("serve:deadline.exceeded", 1);
            item.respond(protocol::error_response(
                code::DEADLINE_EXCEEDED,
                "request expired while queued",
            ));
        }
        if !live.is_empty() {
            handler(live);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::mpsc::sync_channel;
    use std::time::Duration;

    fn item(key: &str, deadline_ms: u64) -> (WorkItem, std::sync::mpsc::Receiver<Options>) {
        let (tx, rx) = sync_channel(1);
        (
            WorkItem {
                batch_key: key.to_string(),
                request: Options::new().with("k", key),
                deadline: Instant::now() + Duration::from_millis(deadline_ms),
                reply: tx,
            },
            rx,
        )
    }

    #[test]
    fn every_submitted_item_gets_exactly_one_reply() {
        let handler: Arc<dyn Fn(Vec<WorkItem>) + Send + Sync> = Arc::new(|batch| {
            for it in batch {
                let echo = it.request.clone().with("serve:type", "echo");
                it.respond(echo);
            }
        });
        let p = Pipeline::start(64, 4, 2, handler);
        let receivers: Vec<_> = (0..20)
            .map(|i| {
                let (it, rx) = item(&format!("m{}", i % 3), 5_000);
                p.submit(it).map_err(|_| ()).unwrap();
                rx
            })
            .collect();
        for rx in receivers {
            let resp = rx.recv_timeout(Duration::from_secs(5)).unwrap();
            assert_eq!(resp.get_str("serve:type").unwrap(), "echo");
        }
        p.shutdown();
    }

    #[test]
    fn full_queue_rejects_instead_of_blocking() {
        // a handler that parks until released
        let gate = Arc::new((Mutex::new(false), Condvar::new()));
        let g = gate.clone();
        let handler: Arc<dyn Fn(Vec<WorkItem>) + Send + Sync> = Arc::new(move |batch| {
            let (lock, cond) = &*g;
            let mut open = lock.lock().unwrap();
            while !*open {
                open = cond.wait(open).unwrap();
            }
            for it in batch {
                it.respond(Options::new().with("serve:type", "late"));
            }
        });
        let p = Pipeline::start(2, 1, 1, handler);
        let mut receivers = Vec::new();
        let mut rejected = 0;
        for _ in 0..10 {
            let (it, rx) = item("m", 10_000);
            match p.submit(it) {
                Ok(()) => receivers.push(rx),
                Err(it) => {
                    rejected += 1;
                    it.respond(protocol::error_response(code::OVERLOADED, "full"));
                }
            }
        }
        assert!(rejected >= 7, "capacity 2 + one in-flight: got {rejected}");
        let (lock, cond) = &*gate;
        *lock.lock().unwrap() = true;
        cond.notify_all();
        for rx in receivers {
            rx.recv_timeout(Duration::from_secs(5)).unwrap();
        }
        p.shutdown();
    }

    #[test]
    fn expired_items_answer_deadline_exceeded() {
        let handler: Arc<dyn Fn(Vec<WorkItem>) + Send + Sync> = Arc::new(|batch| {
            for it in batch {
                std::thread::sleep(Duration::from_millis(50));
                it.respond(Options::new().with("serve:type", "done"));
            }
        });
        let p = Pipeline::start(16, 1, 1, handler);
        let (slow, slow_rx) = item("a", 5_000);
        p.submit(slow).map_err(|_| ()).unwrap();
        let (doomed, doomed_rx) = item("b", 1); // expires while 'a' runs
        p.submit(doomed).map_err(|_| ()).unwrap();
        assert_eq!(
            slow_rx
                .recv_timeout(Duration::from_secs(5))
                .unwrap()
                .get_str("serve:type")
                .unwrap(),
            "done"
        );
        let resp = doomed_rx.recv_timeout(Duration::from_secs(5)).unwrap();
        assert!(protocol::is_error(&resp, code::DEADLINE_EXCEEDED), "{resp}");
        p.shutdown();
    }

    #[test]
    fn shutdown_drains_queued_items() {
        let handler: Arc<dyn Fn(Vec<WorkItem>) + Send + Sync> = Arc::new(|batch| {
            for it in batch {
                it.respond(Options::new().with("serve:type", "drained"));
            }
        });
        let p = Pipeline::start(64, 8, 1, handler);
        let receivers: Vec<_> = (0..16)
            .map(|_| {
                let (it, rx) = item("m", 10_000);
                p.submit(it).map_err(|_| ()).unwrap();
                rx
            })
            .collect();
        p.shutdown(); // must not drop queued work
        for rx in receivers {
            let resp = rx.recv_timeout(Duration::from_secs(5)).unwrap();
            assert_eq!(resp.get_str("serve:type").unwrap(), "drained");
        }
    }

    #[test]
    fn respond_checked_replaces_late_success_with_deadline_exceeded() {
        // expired item: a late success becomes deadline_exceeded ...
        let (it, rx) = item("m", 1);
        std::thread::sleep(Duration::from_millis(10));
        assert!(it.expired());
        it.respond_checked(Options::new().with("serve:type", "prediction"));
        let resp = rx.recv().unwrap();
        assert!(protocol::is_error(&resp, code::DEADLINE_EXCEEDED), "{resp}");
        // ... but an error response keeps its diagnostics
        let (it, rx) = item("m", 1);
        std::thread::sleep(Duration::from_millis(10));
        it.respond_checked(protocol::error_response(code::NOT_FOUND, "no model"));
        assert!(protocol::is_error(&rx.recv().unwrap(), code::NOT_FOUND));
        // a live item passes successes through untouched
        let (it, rx) = item("m", 10_000);
        it.respond_checked(Options::new().with("serve:type", "prediction"));
        assert_eq!(
            rx.recv().unwrap().get_str("serve:type").unwrap(),
            "prediction"
        );
    }

    #[test]
    fn batches_group_by_key() {
        let sizes = Arc::new(Mutex::new(Vec::new()));
        let s = sizes.clone();
        let handler: Arc<dyn Fn(Vec<WorkItem>) + Send + Sync> = Arc::new(move |batch| {
            assert!(batch.iter().all(|i| i.batch_key == batch[0].batch_key));
            s.lock().unwrap().push(batch.len());
            for it in batch {
                it.respond(Options::new());
            }
        });
        // one worker, started idle; fill the queue before it can drain it
        let p = Pipeline::start(64, 8, 1, handler);
        let mut receivers = Vec::new();
        {
            let mut q = p.shared.queue.lock().unwrap();
            for i in 0..12 {
                let (it, rx) = item(if i % 2 == 0 { "even" } else { "odd" }, 10_000);
                q.push_back(it);
                receivers.push(rx);
            }
        }
        p.shared.cond.notify_all();
        for rx in receivers {
            rx.recv_timeout(Duration::from_secs(5)).unwrap();
        }
        let sizes = sizes.lock().unwrap().clone();
        assert!(
            sizes.iter().any(|&s| s > 1),
            "same-key items must batch: {sizes:?}"
        );
        p.shutdown();
    }
}
