//! Streaming prediction sessions and the rolling-window online learner.
//!
//! A client streaming a chunked field (see `pressio-stream`) opens a
//! session with `stream.begin`, sends each chunk through `stream.chunk`
//! for a per-chunk prediction, and closes with `stream.end`. The session
//! carries the previous chunk's trailing timestep so chunk features can
//! include the `temporal:*` group — the same previous-timestep boundary
//! the chained frame codec delta-codes against — without the client ever
//! buffering more than one chunk.
//!
//! When the daemon runs with `--online`, each `stream.chunk` may also
//! report the *observed* outcome (`stream:actual`, e.g. the achieved
//! compression ratio from the encoder's chunk record). The
//! [`OnlineLearner`] keeps a bounded rolling window of
//! `(features, actual)` pairs and, every `refit_every` observations,
//! refits the session's model on the window. Refits go through the
//! normal model store (`save` bumps the version, `install_model` makes it
//! hot), so online refinement is hot-reload safe: every response names
//! the exact `model@version` that produced it, concurrent `predict`
//! traffic picks the refreshed version up through the latest-version TTL
//! cache, and a daemon restart replays from the persisted artifacts.

use pressio_core::{Data, Options};
use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// Hard bound on concurrently open stream sessions per daemon.
pub const MAX_SESSIONS: usize = 128;

/// Default idle expiry: sessions quiet longer than this are reaped by the
/// sweep that runs on every stream op (configurable via
/// `ServeConfig::stream_idle_secs`).
pub const DEFAULT_IDLE_EXPIRY: Duration = Duration::from_secs(300);

/// Mint a session token for `id`: a process-unique, hard-to-guess-enough
/// tag a resuming client must echo back so one stream cannot hijack
/// another's session. Derivation mixes the stream id, the process id, the
/// wall clock, and a process-global counter through fnv1a64.
pub fn mint_token(id: &str) -> String {
    static COUNTER: AtomicU64 = AtomicU64::new(0);
    let nanos = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_nanos() as u64)
        .unwrap_or(0);
    let mut seed = Vec::with_capacity(id.len() + 24);
    seed.extend_from_slice(id.as_bytes());
    seed.extend_from_slice(&std::process::id().to_le_bytes());
    seed.extend_from_slice(&nanos.to_le_bytes());
    seed.extend_from_slice(&COUNTER.fetch_add(1, Ordering::Relaxed).to_le_bytes());
    format!("{:016x}", pressio_core::hash::fnv1a64(&seed))
}

/// Rolling window of `(features, actual)` observations driving online
/// model refinement, plus the rolling prediction-error trajectory.
#[derive(Debug)]
pub struct OnlineLearner {
    window: VecDeque<(Options, f64)>,
    window_cap: usize,
    refit_every: usize,
    since_refit: usize,
    errors: VecDeque<f64>,
    refits: u64,
}

impl OnlineLearner {
    /// A learner keeping at most `window_cap` observations and refitting
    /// every `refit_every` of them. Both are clamped to at least 1.
    pub fn new(window_cap: usize, refit_every: usize) -> OnlineLearner {
        OnlineLearner {
            window: VecDeque::new(),
            window_cap: window_cap.max(1),
            refit_every: refit_every.max(1),
            since_refit: 0,
            errors: VecDeque::new(),
            refits: 0,
        }
    }

    /// Record one `(features, predicted, actual)` triple. Returns the
    /// rolling mean relative error after this observation.
    pub fn observe(&mut self, features: Options, predicted: f64, actual: f64) -> f64 {
        let rel = (predicted - actual).abs() / actual.abs().max(1e-12);
        self.errors.push_back(rel);
        while self.errors.len() > self.window_cap {
            self.errors.pop_front();
        }
        self.window.push_back((features, actual));
        while self.window.len() > self.window_cap {
            self.window.pop_front();
        }
        self.since_refit += 1;
        self.rolling_error()
    }

    /// Mean relative error over the rolling window (0 before any
    /// observation).
    pub fn rolling_error(&self) -> f64 {
        if self.errors.is_empty() {
            return 0.0;
        }
        self.errors.iter().sum::<f64>() / self.errors.len() as f64
    }

    /// Whether enough observations accumulated since the last refit. A
    /// refit also needs at least 4 window samples so tiny windows never
    /// feed a degenerate fit.
    pub fn should_refit(&self) -> bool {
        self.since_refit >= self.refit_every && self.window.len() >= 4
    }

    /// Snapshot the window as parallel `(features, targets)` vectors for
    /// a predictor fit.
    pub fn window_snapshot(&self) -> (Vec<Options>, Vec<f64>) {
        let features = self.window.iter().map(|(f, _)| f.clone()).collect();
        let targets = self.window.iter().map(|(_, t)| *t).collect();
        (features, targets)
    }

    /// Reset the refit cadence counter after a successful refit.
    pub fn mark_refit(&mut self) {
        self.since_refit = 0;
        self.refits += 1;
    }

    /// Observations currently in the window.
    pub fn observations(&self) -> usize {
        self.window.len()
    }

    /// Successful refits so far.
    pub fn refits(&self) -> u64 {
        self.refits
    }
}

/// The cached outcome of one processed chunk: everything a replayed
/// `stream.chunk` (same `stream:seq`, already acked) needs to answer
/// idempotently — without recomputing features, re-predicting, or
/// re-feeding the online learner.
#[derive(Debug, Clone)]
pub(crate) struct ChunkOutcome {
    pub(crate) prediction: f64,
    /// `name@version` that produced the prediction ("" when model-less).
    pub(crate) model_tag: String,
    pub(crate) online_error: Option<f64>,
    pub(crate) online_observations: Option<u64>,
    pub(crate) online_version: Option<u64>,
    /// Whether this chunk fed the online learner (exactly-once replay
    /// protection: a replay of an observed chunk never observes again).
    pub(crate) observed: bool,
}

/// One open streaming session.
pub(crate) struct StreamSession {
    /// Client-chosen identifier (by convention the stream's content
    /// hash), also the shard routing key for every op that carries it.
    pub(crate) id: String,
    /// Session token: minted at `stream.begin` (client-supplied or
    /// server-minted) and required by `stream.resume`.
    pub(crate) token: String,
    pub(crate) scheme_name: String,
    /// Unversioned model name; `None` streams against the scheme's
    /// untrained (analytic) predictor.
    pub(crate) model_name: Option<String>,
    pub(crate) comp_id: String,
    /// Compressor knobs captured at `stream.begin`, re-applied per chunk.
    pub(crate) codec_options: Options,
    /// Trailing outer slice of the previous chunk — the carried state for
    /// `temporal:*` features.
    pub(crate) prev_last: Option<Data>,
    pub(crate) chunks: u64,
    /// Chunks that fed the online learner (exactly-once accounting).
    pub(crate) observed: u64,
    /// Per-chunk outcomes, indexed by `seq - 1`, serving idempotent
    /// replays of already-acked chunks.
    pub(crate) outcomes: Vec<ChunkOutcome>,
    pub(crate) last_active: Instant,
    pub(crate) learner: Option<OnlineLearner>,
}

impl StreamSession {
    /// The cached outcome for 1-based `seq`, when that chunk was acked.
    pub(crate) fn outcome(&self, seq: u64) -> Option<&ChunkOutcome> {
        if seq == 0 || seq > self.chunks {
            return None;
        }
        self.outcomes.get(seq as usize - 1)
    }
}

/// The daemon's registry of open sessions: bounded, idle-reaped, each
/// session under its own lock so long feature extractions never block
/// unrelated streams.
pub(crate) struct SessionMap {
    inner: Mutex<HashMap<String, Arc<Mutex<StreamSession>>>>,
    idle_expiry: Duration,
}

/// Why a `stream.begin` was refused.
#[derive(Debug, PartialEq, Eq)]
pub(crate) enum BeginError {
    /// The id is already an open session.
    Duplicate,
    /// The registry is at [`MAX_SESSIONS`] even after reaping idle ones.
    Full,
}

impl SessionMap {
    pub(crate) fn new(idle_expiry: Duration) -> SessionMap {
        SessionMap {
            inner: Mutex::new(HashMap::new()),
            idle_expiry,
        }
    }

    /// Reap every session idle past the expiry. Runs on *every* stream op
    /// (not just a capacity-pressured `begin`), so abandoned sessions are
    /// collected even on a daemon that never fills up. Sessions whose lock
    /// is held (mid-chunk) are definitionally not idle. Returns the number
    /// reaped so the caller can bump the `serve:session.reaped` counter.
    pub(crate) fn sweep(&self) -> usize {
        let mut map = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        let before = map.len();
        map.retain(|_, entry| match entry.try_lock() {
            Ok(s) => s.last_active.elapsed() < self.idle_expiry,
            Err(_) => true, // mid-chunk: definitionally not idle
        });
        before - map.len()
    }

    /// Open a session, reaping idle sessions first if at capacity.
    pub(crate) fn begin(&self, session: StreamSession) -> Result<(), BeginError> {
        let mut map = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        if map.contains_key(&session.id) {
            return Err(BeginError::Duplicate);
        }
        if map.len() >= MAX_SESSIONS {
            map.retain(|_, entry| match entry.try_lock() {
                Ok(s) => s.last_active.elapsed() < self.idle_expiry,
                Err(_) => true, // mid-chunk: definitionally not idle
            });
        }
        if map.len() >= MAX_SESSIONS {
            return Err(BeginError::Full);
        }
        map.insert(session.id.clone(), Arc::new(Mutex::new(session)));
        Ok(())
    }

    pub(crate) fn get(&self, id: &str) -> Option<Arc<Mutex<StreamSession>>> {
        self.inner
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .get(id)
            .cloned()
    }

    /// Close and return a session.
    pub(crate) fn end(&self, id: &str) -> Option<Arc<Mutex<StreamSession>>> {
        self.inner
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .remove(id)
    }

    pub(crate) fn active(&self) -> usize {
        self.inner.lock().unwrap_or_else(|e| e.into_inner()).len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn session(id: &str) -> StreamSession {
        StreamSession {
            id: id.to_string(),
            token: mint_token(id),
            scheme_name: "rahman2023".into(),
            model_name: None,
            comp_id: "sz3".into(),
            codec_options: Options::new(),
            prev_last: None,
            chunks: 0,
            observed: 0,
            outcomes: Vec::new(),
            last_active: Instant::now(),
            learner: None,
        }
    }

    #[test]
    fn learner_rolls_its_window_and_error() {
        let mut learner = OnlineLearner::new(4, 2);
        // first observations: large error, then perfect predictions
        learner.observe(Options::new(), 2.0, 1.0); // rel 1.0
        assert!((learner.rolling_error() - 1.0).abs() < 1e-12);
        for _ in 0..4 {
            learner.observe(Options::new(), 1.0, 1.0);
        }
        // the bad first observation fell out of the window
        assert_eq!(learner.observations(), 4);
        assert_eq!(learner.rolling_error(), 0.0);
    }

    #[test]
    fn refit_cadence_requires_count_and_window() {
        let mut learner = OnlineLearner::new(16, 3);
        for _ in 0..3 {
            learner.observe(Options::new(), 1.0, 1.0);
        }
        // cadence reached but window < 4
        assert!(!learner.should_refit());
        learner.observe(Options::new(), 1.0, 1.0);
        assert!(learner.should_refit());
        learner.mark_refit();
        assert!(!learner.should_refit());
        assert_eq!(learner.refits(), 1);
        let (features, targets) = learner.window_snapshot();
        assert_eq!(features.len(), 4);
        assert_eq!(targets, vec![1.0; 4]);
    }

    #[test]
    fn tokens_are_unique_per_mint() {
        let a = mint_token("s");
        let b = mint_token("s");
        assert_ne!(a, b, "two mints for one id must differ");
        assert_eq!(a.len(), 16);
        assert!(a.chars().all(|c| c.is_ascii_hexdigit()));
    }

    #[test]
    fn sweep_reaps_idle_sessions_and_counts_them() {
        let map = SessionMap::new(Duration::from_millis(20));
        map.begin(session("idle")).unwrap();
        map.begin(session("busy")).unwrap();
        // nothing idle yet
        assert_eq!(map.sweep(), 0);
        let busy = map.get("busy").unwrap();
        let held = busy.lock().unwrap();
        std::thread::sleep(Duration::from_millis(40));
        // the idle session goes; the locked (mid-chunk) one survives
        assert_eq!(map.sweep(), 1);
        assert!(map.get("idle").is_none());
        assert!(map.get("busy").is_some());
        drop(held);
        assert_eq!(map.sweep(), 1);
        assert_eq!(map.active(), 0);
    }

    #[test]
    fn outcome_lookup_respects_acked_window() {
        let mut s = session("s");
        s.chunks = 2;
        s.outcomes = vec![
            ChunkOutcome {
                prediction: 1.5,
                model_tag: "m@1".into(),
                online_error: None,
                online_observations: None,
                online_version: None,
                observed: false,
            };
            2
        ];
        assert!(s.outcome(0).is_none());
        assert_eq!(s.outcome(1).unwrap().prediction, 1.5);
        assert_eq!(s.outcome(2).unwrap().model_tag, "m@1");
        assert!(s.outcome(3).is_none(), "past-end seq has no cached outcome");
    }

    #[test]
    fn session_map_bounds_and_duplicates() {
        let map = SessionMap::new(DEFAULT_IDLE_EXPIRY);
        assert!(map.begin(session("a")).is_ok());
        assert_eq!(map.begin(session("a")), Err(BeginError::Duplicate));
        for i in 0..MAX_SESSIONS - 1 {
            assert!(map.begin(session(&format!("s{i}"))).is_ok());
        }
        // full, and nothing is idle yet
        assert_eq!(map.begin(session("overflow")), Err(BeginError::Full));
        assert_eq!(map.active(), MAX_SESSIONS);
        assert!(map.end("a").is_some());
        assert!(map.end("a").is_none());
        assert!(map.begin(session("overflow")).is_ok());
        assert!(map.get("overflow").is_some());
        assert!(map.get("missing").is_none());
    }
}
