//! Load-shedding circuit breaker for the request pipeline.
//!
//! When the pipeline is saturated, every queued request that will
//! eventually be rejected (`overloaded`) or expire (`deadline_exceeded`)
//! still costs queue slots, wakeups, and client-perceived latency. The
//! breaker converts sustained saturation into *fast* rejection: after
//! `threshold` consecutive overload-class failures it opens and sheds
//! incoming requests immediately, without touching the queue. After
//! `cooldown` it moves to half-open and lets a single probe request
//! through; the probe's outcome decides whether the breaker closes
//! (recovered) or re-opens (still saturated).
//!
//! Only *overload-class* outcomes (queue full, deadline exceeded) count as
//! failures — a `bad_request` or `not_found` says nothing about capacity.
//! A `threshold` of 0 disables the breaker entirely: [`allow`] is then a
//! single atomic load.
//!
//! [`allow`]: CircuitBreaker::allow

use std::sync::atomic::{AtomicU64, AtomicU8, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

const CLOSED: u8 = 0;
const OPEN: u8 = 1;
const HALF_OPEN: u8 = 2;

/// A consecutive-failure circuit breaker (closed → open → half-open).
pub struct CircuitBreaker {
    threshold: u32,
    cooldown: Duration,
    /// CLOSED / OPEN / HALF_OPEN; mirrored outside `inner` so the common
    /// closed-state `allow` check is one atomic load, no lock.
    state: AtomicU8,
    inner: Mutex<Inner>,
    trips: AtomicU64,
    shed: AtomicU64,
}

struct Inner {
    consecutive_failures: u32,
    opened_at: Option<Instant>,
    /// In half-open, whether the single probe slot has been handed out.
    probe_in_flight: bool,
}

impl CircuitBreaker {
    /// Breaker that opens after `threshold` consecutive overload-class
    /// failures and probes again after `cooldown_ms`. `threshold == 0`
    /// disables it (every request allowed).
    pub fn new(threshold: u32, cooldown_ms: u64) -> CircuitBreaker {
        CircuitBreaker {
            threshold,
            cooldown: Duration::from_millis(cooldown_ms),
            state: AtomicU8::new(CLOSED),
            inner: Mutex::new(Inner {
                consecutive_failures: 0,
                opened_at: None,
                probe_in_flight: false,
            }),
            trips: AtomicU64::new(0),
            shed: AtomicU64::new(0),
        }
    }

    /// Whether this request may proceed to the queue. `false` means shed
    /// it now with `overloaded`. In half-open, exactly one caller gets
    /// `true` (the probe) until its outcome is reported.
    pub fn allow(&self) -> bool {
        if self.threshold == 0 || self.state.load(Ordering::Relaxed) == CLOSED {
            return true;
        }
        let mut inner = self.inner.lock().unwrap();
        match self.state.load(Ordering::Relaxed) {
            CLOSED => true, // closed while we waited for the lock
            OPEN => {
                let cooled = inner
                    .opened_at
                    .is_some_and(|t| t.elapsed() >= self.cooldown);
                if cooled {
                    self.state.store(HALF_OPEN, Ordering::Relaxed);
                    inner.probe_in_flight = true;
                    true
                } else {
                    self.shed.fetch_add(1, Ordering::Relaxed);
                    false
                }
            }
            _ => {
                if inner.probe_in_flight {
                    self.shed.fetch_add(1, Ordering::Relaxed);
                    false
                } else {
                    inner.probe_in_flight = true;
                    true
                }
            }
        }
    }

    /// Report a successful (non-overload) outcome.
    pub fn on_success(&self) {
        if self.threshold == 0 {
            return;
        }
        let mut inner = self.inner.lock().unwrap();
        inner.consecutive_failures = 0;
        inner.probe_in_flight = false;
        if self.state.load(Ordering::Relaxed) != CLOSED {
            self.state.store(CLOSED, Ordering::Relaxed);
            inner.opened_at = None;
        }
    }

    /// Report an overload-class failure (queue full or deadline exceeded).
    pub fn on_failure(&self) {
        if self.threshold == 0 {
            return;
        }
        let mut inner = self.inner.lock().unwrap();
        match self.state.load(Ordering::Relaxed) {
            OPEN => {} // already open; nothing to count
            HALF_OPEN => {
                // failed probe: back to open, restart the cooldown clock
                inner.probe_in_flight = false;
                inner.opened_at = Some(Instant::now());
                self.state.store(OPEN, Ordering::Relaxed);
                self.trips.fetch_add(1, Ordering::Relaxed);
                pressio_obs::add_counter("serve:breaker.trips", 1);
            }
            _ => {
                inner.consecutive_failures += 1;
                if inner.consecutive_failures >= self.threshold {
                    inner.consecutive_failures = 0;
                    inner.opened_at = Some(Instant::now());
                    self.state.store(OPEN, Ordering::Relaxed);
                    self.trips.fetch_add(1, Ordering::Relaxed);
                    pressio_obs::add_counter("serve:breaker.trips", 1);
                }
            }
        }
    }

    /// Current state as a stable string: `closed`, `open`, or `half_open`.
    pub fn state_name(&self) -> &'static str {
        match self.state.load(Ordering::Relaxed) {
            OPEN => "open",
            HALF_OPEN => "half_open",
            _ => "closed",
        }
    }

    /// Times the breaker has tripped open (including failed probes).
    pub fn trips(&self) -> u64 {
        self.trips.load(Ordering::Relaxed)
    }

    /// Requests shed without queueing while open/half-open.
    pub fn shed(&self) -> u64 {
        self.shed.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_breaker_always_allows() {
        let b = CircuitBreaker::new(0, 10);
        for _ in 0..100 {
            b.on_failure();
            assert!(b.allow());
        }
        assert_eq!(b.trips(), 0);
        assert_eq!(b.state_name(), "closed");
    }

    #[test]
    fn trips_after_threshold_consecutive_failures() {
        let b = CircuitBreaker::new(3, 10_000);
        b.on_failure();
        b.on_failure();
        assert!(b.allow(), "below threshold stays closed");
        b.on_success(); // resets the streak
        b.on_failure();
        b.on_failure();
        b.on_failure();
        assert_eq!(b.state_name(), "open");
        assert_eq!(b.trips(), 1);
        assert!(!b.allow());
        assert!(b.shed() >= 1);
    }

    #[test]
    fn half_open_probe_closes_on_success() {
        let b = CircuitBreaker::new(1, 0); // cooldown 0: next allow is the probe
        b.on_failure();
        assert_eq!(b.state_name(), "open");
        assert!(b.allow(), "cooldown elapsed: probe goes through");
        assert_eq!(b.state_name(), "half_open");
        assert!(!b.allow(), "only one probe at a time");
        b.on_success();
        assert_eq!(b.state_name(), "closed");
        assert!(b.allow());
    }

    #[test]
    fn failed_probe_reopens() {
        let b = CircuitBreaker::new(1, 0);
        b.on_failure();
        assert!(b.allow());
        b.on_failure(); // probe failed
        assert_eq!(b.state_name(), "open");
        assert_eq!(b.trips(), 2);
    }
}
