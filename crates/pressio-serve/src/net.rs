//! Transport abstraction: one [`Endpoint`] type covering Unix-domain
//! sockets and TCP, with a common [`Conn`] stream so the protocol, server,
//! and client are transport-agnostic.

use pressio_core::error::{Error, Result};
use std::io::{Read, Write};
use std::net::{TcpListener, TcpStream};
#[cfg(unix)]
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::PathBuf;
use std::time::Duration;

/// Where a server listens / a client connects.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Endpoint {
    /// A Unix-domain socket path (preferred for local serving).
    #[cfg(unix)]
    Unix(PathBuf),
    /// A TCP `host:port` address (`port` may be 0 when binding: the chosen
    /// port is reported by [`Listener::local_endpoint`]).
    Tcp(String),
}

impl std::fmt::Display for Endpoint {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            #[cfg(unix)]
            Endpoint::Unix(p) => write!(f, "unix:{}", p.display()),
            Endpoint::Tcp(a) => write!(f, "tcp:{a}"),
        }
    }
}

impl Endpoint {
    /// Bind a listener. For Unix sockets a stale socket file from a
    /// previous run is removed first (binding over it would otherwise
    /// fail forever).
    pub fn bind(&self) -> Result<Listener> {
        match self {
            #[cfg(unix)]
            Endpoint::Unix(path) => {
                if path.exists() {
                    let _ = std::fs::remove_file(path);
                }
                if let Some(parent) = path.parent() {
                    if !parent.as_os_str().is_empty() {
                        std::fs::create_dir_all(parent)?;
                    }
                }
                Ok(Listener::Unix(UnixListener::bind(path)?, path.clone()))
            }
            Endpoint::Tcp(addr) => {
                Ok(Listener::Tcp(TcpListener::bind(addr).map_err(|e| {
                    Error::Io(format!("binding tcp {addr}: {e}"))
                })?))
            }
        }
    }

    /// Connect a client stream.
    pub fn connect(&self) -> Result<Conn> {
        match self {
            #[cfg(unix)]
            Endpoint::Unix(path) => Ok(Conn::Unix(UnixStream::connect(path).map_err(|e| {
                Error::Io(format!("connecting unix socket {}: {e}", path.display()))
            })?)),
            Endpoint::Tcp(addr) => {
                let stream = TcpStream::connect(addr)
                    .map_err(|e| Error::Io(format!("connecting tcp {addr}: {e}")))?;
                // request/response framing: latency matters, not batching
                let _ = stream.set_nodelay(true);
                Ok(Conn::Tcp(stream))
            }
        }
    }
}

/// A bound listener.
pub enum Listener {
    /// Unix listener plus its socket path (removed by the server on
    /// shutdown).
    #[cfg(unix)]
    Unix(UnixListener, PathBuf),
    /// TCP listener.
    Tcp(TcpListener),
}

impl Listener {
    /// Accept one connection.
    pub fn accept(&self) -> Result<Conn> {
        match self {
            #[cfg(unix)]
            Listener::Unix(l, _) => Ok(Conn::Unix(l.accept()?.0)),
            Listener::Tcp(l) => {
                let stream = l.accept()?.0;
                let _ = stream.set_nodelay(true);
                Ok(Conn::Tcp(stream))
            }
        }
    }

    /// The concrete endpoint (resolves a `port 0` TCP bind).
    pub fn local_endpoint(&self) -> Result<Endpoint> {
        match self {
            #[cfg(unix)]
            Listener::Unix(_, path) => Ok(Endpoint::Unix(path.clone())),
            Listener::Tcp(l) => Ok(Endpoint::Tcp(l.local_addr()?.to_string())),
        }
    }
}

/// A connected stream (either transport).
pub enum Conn {
    /// Unix-domain stream.
    #[cfg(unix)]
    Unix(UnixStream),
    /// TCP stream.
    Tcp(TcpStream),
}

impl Conn {
    /// Set (or clear) the read timeout; used by the server to poll the
    /// shutdown flag while idle.
    pub fn set_read_timeout(&self, dur: Option<Duration>) -> Result<()> {
        match self {
            #[cfg(unix)]
            Conn::Unix(s) => s.set_read_timeout(dur)?,
            Conn::Tcp(s) => s.set_read_timeout(dur)?,
        }
        Ok(())
    }
}

impl Read for Conn {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        match self {
            #[cfg(unix)]
            Conn::Unix(s) => s.read(buf),
            Conn::Tcp(s) => s.read(buf),
        }
    }
}

impl Write for Conn {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        match self {
            #[cfg(unix)]
            Conn::Unix(s) => s.write(buf),
            Conn::Tcp(s) => s.write(buf),
        }
    }

    fn flush(&mut self) -> std::io::Result<()> {
        match self {
            #[cfg(unix)]
            Conn::Unix(s) => s.flush(),
            Conn::Tcp(s) => s.flush(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tcp_port_zero_resolves_to_real_port() {
        let listener = Endpoint::Tcp("127.0.0.1:0".into()).bind().unwrap();
        let ep = listener.local_endpoint().unwrap();
        let Endpoint::Tcp(addr) = &ep else {
            panic!("expected tcp endpoint");
        };
        assert!(!addr.ends_with(":0"), "{addr}");
        // and it is connectable
        let _conn = ep.connect().unwrap();
    }

    #[cfg(unix)]
    #[test]
    fn unix_bind_replaces_stale_socket() {
        let dir = std::env::temp_dir().join("pressio_net_tests");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("stale.sock");
        let ep = Endpoint::Unix(path.clone());
        drop(ep.bind().unwrap()); // leaves the socket file behind
        assert!(path.exists());
        let listener = ep.bind().unwrap(); // must not fail on the stale file
        drop(listener);
        let _ = std::fs::remove_file(&path);
    }
}
