//! Transport abstraction: one [`Endpoint`] type covering Unix-domain
//! sockets and TCP, with a common [`Conn`] stream so the protocol, server,
//! and client are transport-agnostic.

use pressio_core::error::{Error, Result};
use std::io::{Read, Write};
use std::net::{TcpListener, TcpStream};
#[cfg(unix)]
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::PathBuf;
use std::time::Duration;

/// Where a server listens / a client connects.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Endpoint {
    /// A Unix-domain socket path (preferred for local serving).
    #[cfg(unix)]
    Unix(PathBuf),
    /// A TCP `host:port` address (`port` may be 0 when binding: the chosen
    /// port is reported by [`Listener::local_endpoint`]).
    Tcp(String),
}

impl std::fmt::Display for Endpoint {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            #[cfg(unix)]
            Endpoint::Unix(p) => write!(f, "unix:{}", p.display()),
            Endpoint::Tcp(a) => write!(f, "tcp:{a}"),
        }
    }
}

impl Endpoint {
    /// Parse the `Display` form back into an endpoint: `unix:<path>` or
    /// `tcp:<host:port>`. A bare `host:port` is accepted as TCP, so
    /// endpoints round-trip through topology files and log lines.
    pub fn parse(spec: &str) -> Result<Endpoint> {
        if let Some(path) = spec.strip_prefix("unix:") {
            #[cfg(unix)]
            return Ok(Endpoint::Unix(PathBuf::from(path)));
            #[cfg(not(unix))]
            return Err(Error::Unsupported(format!(
                "unix endpoint '{path}' on a non-unix platform"
            )));
        }
        let addr = spec.strip_prefix("tcp:").unwrap_or(spec);
        if addr.is_empty() {
            return Err(Error::InvalidValue {
                key: "serve:endpoint".into(),
                reason: format!("'{spec}' is not unix:<path> or tcp:<host:port>"),
            });
        }
        Ok(Endpoint::Tcp(addr.to_string()))
    }

    /// Bind a listener. For Unix sockets a stale socket file from a
    /// previous run is removed first (binding over it would otherwise
    /// fail forever).
    pub fn bind(&self) -> Result<Listener> {
        match self {
            #[cfg(unix)]
            Endpoint::Unix(path) => {
                if path.exists() {
                    let _ = std::fs::remove_file(path);
                }
                if let Some(parent) = path.parent() {
                    if !parent.as_os_str().is_empty() {
                        std::fs::create_dir_all(parent)?;
                    }
                }
                Ok(Listener::Unix(UnixListener::bind(path)?, path.clone()))
            }
            Endpoint::Tcp(addr) => {
                Ok(Listener::Tcp(TcpListener::bind(addr).map_err(|e| {
                    Error::Io(format!("binding tcp {addr}: {e}"))
                })?))
            }
        }
    }

    /// Bind a TCP listener with `SO_REUSEPORT` set, so several shard
    /// processes can accept on the *same* address and the kernel spreads
    /// incoming connections across them. Linux-only (the option predates
    /// portability); Unix-socket endpoints and other platforms report
    /// [`Error::Unsupported`] so callers can fall back to the
    /// per-shard-endpoint pool.
    pub fn bind_reuseport(&self) -> Result<Listener> {
        match self {
            #[cfg(unix)]
            Endpoint::Unix(path) => Err(Error::Unsupported(format!(
                "SO_REUSEPORT applies to TCP, not unix socket {}",
                path.display()
            ))),
            Endpoint::Tcp(addr) => reuseport::bind(addr).map(Listener::Tcp),
        }
    }

    /// Whether [`bind_reuseport`](Self::bind_reuseport) can work here at
    /// all (TCP endpoint on Linux).
    pub fn supports_reuseport(&self) -> bool {
        matches!(self, Endpoint::Tcp(_)) && cfg!(target_os = "linux")
    }

    /// Connect a client stream.
    pub fn connect(&self) -> Result<Conn> {
        match self {
            #[cfg(unix)]
            Endpoint::Unix(path) => Ok(Conn::Unix(UnixStream::connect(path).map_err(|e| {
                Error::Io(format!("connecting unix socket {}: {e}", path.display()))
            })?)),
            Endpoint::Tcp(addr) => {
                let stream = TcpStream::connect(addr)
                    .map_err(|e| Error::Io(format!("connecting tcp {addr}: {e}")))?;
                // request/response framing: latency matters, not batching
                let _ = stream.set_nodelay(true);
                Ok(Conn::Tcp(stream))
            }
        }
    }
}

/// `SO_REUSEPORT` binding. std's `TcpListener::bind` offers no hook to set
/// socket options between `socket()` and `bind()`, and the workspace has no
/// libc crate, so this talks to the C library (which std already links)
/// directly: `socket` → `setsockopt(SO_REUSEPORT)` → `bind` → `listen`,
/// then hands the fd to `TcpListener::from_raw_fd`. IPv4 only — the serve
/// endpoints in this repo are `127.0.0.1`/`0.0.0.0` style.
#[cfg(target_os = "linux")]
mod reuseport {
    use pressio_core::error::{Error, Result};
    use std::net::{SocketAddr, TcpListener, ToSocketAddrs};
    use std::os::fd::FromRawFd;

    extern "C" {
        fn socket(domain: i32, ty: i32, protocol: i32) -> i32;
        fn setsockopt(fd: i32, level: i32, name: i32, value: *const u8, len: u32) -> i32;
        #[link_name = "bind"]
        fn c_bind(fd: i32, addr: *const SockaddrIn, len: u32) -> i32;
        fn listen(fd: i32, backlog: i32) -> i32;
        fn close(fd: i32) -> i32;
    }

    const AF_INET: i32 = 2;
    const SOCK_STREAM: i32 = 1;
    const SOCK_CLOEXEC: i32 = 0o2000000;
    const SOL_SOCKET: i32 = 1;
    const SO_REUSEADDR: i32 = 2;
    const SO_REUSEPORT: i32 = 15;

    /// `struct sockaddr_in` (all fields big-endian where the ABI says so).
    #[repr(C)]
    struct SockaddrIn {
        family: u16,
        port_be: u16,
        addr_be: u32,
        zero: [u8; 8],
    }

    fn io_err(what: &str, addr: &str) -> Error {
        Error::Io(format!(
            "{what} for SO_REUSEPORT bind {addr}: {}",
            std::io::Error::last_os_error()
        ))
    }

    pub fn bind(addr: &str) -> Result<TcpListener> {
        let sock_addr = addr
            .to_socket_addrs()
            .map_err(|e| Error::Io(format!("resolving {addr}: {e}")))?
            .find(|a| matches!(a, SocketAddr::V4(_)));
        let SocketAddr::V4(v4) = sock_addr.ok_or_else(|| {
            Error::Unsupported(format!(
                "SO_REUSEPORT bind needs an IPv4 address, got {addr}"
            ))
        })?
        else {
            unreachable!("filtered to V4 above");
        };
        let fd = unsafe { socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0) };
        if fd < 0 {
            return Err(io_err("socket()", addr));
        }
        let guard = scopeguard(fd);
        let one: i32 = 1;
        for opt in [SO_REUSEADDR, SO_REUSEPORT] {
            let rc = unsafe {
                setsockopt(
                    fd,
                    SOL_SOCKET,
                    opt,
                    (&one as *const i32).cast(),
                    std::mem::size_of::<i32>() as u32,
                )
            };
            if rc != 0 {
                return Err(io_err("setsockopt()", addr));
            }
        }
        let sa = SockaddrIn {
            family: AF_INET as u16,
            port_be: v4.port().to_be(),
            addr_be: u32::from(*v4.ip()).to_be(),
            zero: [0; 8],
        };
        if unsafe { c_bind(fd, &sa, std::mem::size_of::<SockaddrIn>() as u32) } != 0 {
            return Err(io_err("bind()", addr));
        }
        if unsafe { listen(fd, 128) } != 0 {
            return Err(io_err("listen()", addr));
        }
        std::mem::forget(guard);
        // SAFETY: fd is a freshly bound, listening TCP socket we own.
        Ok(unsafe { TcpListener::from_raw_fd(fd) })
    }

    /// Close `fd` on early error return.
    fn scopeguard(fd: i32) -> impl Drop {
        struct G(i32);
        impl Drop for G {
            fn drop(&mut self) {
                unsafe { close(self.0) };
            }
        }
        G(fd)
    }
}

#[cfg(not(target_os = "linux"))]
mod reuseport {
    use pressio_core::error::{Error, Result};
    use std::net::TcpListener;

    pub fn bind(addr: &str) -> Result<TcpListener> {
        Err(Error::Unsupported(format!(
            "SO_REUSEPORT bind ({addr}) is only implemented on Linux"
        )))
    }
}

/// A bound listener.
pub enum Listener {
    /// Unix listener plus its socket path (removed by the server on
    /// shutdown).
    #[cfg(unix)]
    Unix(UnixListener, PathBuf),
    /// TCP listener.
    Tcp(TcpListener),
}

impl Listener {
    /// Accept one connection.
    pub fn accept(&self) -> Result<Conn> {
        match self {
            #[cfg(unix)]
            Listener::Unix(l, _) => Ok(Conn::Unix(l.accept()?.0)),
            Listener::Tcp(l) => {
                let stream = l.accept()?.0;
                let _ = stream.set_nodelay(true);
                Ok(Conn::Tcp(stream))
            }
        }
    }

    /// The concrete endpoint (resolves a `port 0` TCP bind).
    pub fn local_endpoint(&self) -> Result<Endpoint> {
        match self {
            #[cfg(unix)]
            Listener::Unix(_, path) => Ok(Endpoint::Unix(path.clone())),
            Listener::Tcp(l) => Ok(Endpoint::Tcp(l.local_addr()?.to_string())),
        }
    }
}

/// A connected stream (either transport).
pub enum Conn {
    /// Unix-domain stream.
    #[cfg(unix)]
    Unix(UnixStream),
    /// TCP stream.
    Tcp(TcpStream),
}

impl Conn {
    /// Set (or clear) the read timeout; used by the server to poll the
    /// shutdown flag while idle.
    pub fn set_read_timeout(&self, dur: Option<Duration>) -> Result<()> {
        match self {
            #[cfg(unix)]
            Conn::Unix(s) => s.set_read_timeout(dur)?,
            Conn::Tcp(s) => s.set_read_timeout(dur)?,
        }
        Ok(())
    }
}

impl Read for Conn {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        match self {
            #[cfg(unix)]
            Conn::Unix(s) => s.read(buf),
            Conn::Tcp(s) => s.read(buf),
        }
    }
}

impl Write for Conn {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        match self {
            #[cfg(unix)]
            Conn::Unix(s) => s.write(buf),
            Conn::Tcp(s) => s.write(buf),
        }
    }

    fn flush(&mut self) -> std::io::Result<()> {
        match self {
            #[cfg(unix)]
            Conn::Unix(s) => s.flush(),
            Conn::Tcp(s) => s.flush(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tcp_port_zero_resolves_to_real_port() {
        let listener = Endpoint::Tcp("127.0.0.1:0".into()).bind().unwrap();
        let ep = listener.local_endpoint().unwrap();
        let Endpoint::Tcp(addr) = &ep else {
            panic!("expected tcp endpoint");
        };
        assert!(!addr.ends_with(":0"), "{addr}");
        // and it is connectable
        let _conn = ep.connect().unwrap();
    }

    #[test]
    fn endpoint_display_parse_round_trip() {
        let tcp = Endpoint::Tcp("127.0.0.1:8080".into());
        assert_eq!(Endpoint::parse(&tcp.to_string()).unwrap(), tcp);
        // bare host:port is accepted as tcp
        assert_eq!(Endpoint::parse("127.0.0.1:8080").unwrap(), tcp);
        #[cfg(unix)]
        {
            let ux = Endpoint::Unix(PathBuf::from("/tmp/x.sock"));
            assert_eq!(Endpoint::parse(&ux.to_string()).unwrap(), ux);
        }
        assert!(Endpoint::parse("tcp:").is_err());
        assert!(Endpoint::parse("").is_err());
    }

    #[cfg(target_os = "linux")]
    #[test]
    fn reuseport_allows_two_listeners_on_one_port() {
        let a = Endpoint::Tcp("127.0.0.1:0".into())
            .bind_reuseport()
            .unwrap();
        let ep = a.local_endpoint().unwrap();
        // a second listener on the *same* concrete port must succeed
        let b = ep.bind_reuseport().unwrap();
        assert_eq!(b.local_endpoint().unwrap(), ep);
        // and the shared port accepts a connection (landing on either)
        let _conn = ep.connect().unwrap();
        #[cfg(unix)]
        assert!(Endpoint::Unix(PathBuf::from("/tmp/x.sock"))
            .bind_reuseport()
            .is_err());
    }

    #[cfg(unix)]
    #[test]
    fn unix_bind_replaces_stale_socket() {
        let dir = std::env::temp_dir().join("pressio_net_tests");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("stale.sock");
        let ep = Endpoint::Unix(path.clone());
        drop(ep.bind().unwrap()); // leaves the socket file behind
        assert!(path.exists());
        let listener = ep.bind().unwrap(); // must not fail on the stale file
        drop(listener);
        let _ = std::fs::remove_file(&path);
    }
}
