//! Multi-process scale-out: consistent-hash routing, the shard topology
//! file, and the acceptor/supervisor that keeps N shard servers running.
//!
//! Routing is rendezvous (highest-random-weight) hashing over the
//! request's *content hash* ([`crate::protocol::data_content_hash`]), the
//! same hash the per-shard LRUs are keyed by. Every buffer therefore has
//! exactly one home shard whose caches stay hot for it: hit rates are
//! additive across shards instead of diluted by the kernel's arbitrary
//! `SO_REUSEPORT` connection spreading. Rendezvous hashing also gives the
//! two properties the tests pin down: growing from N to N+1 shards moves
//! only ~1/(N+1) of the keys (each key moves only if the new shard wins
//! its weight contest), and the per-key weight ranking doubles as a
//! deterministic failover order when a shard dies.
//!
//! The [`Supervisor`] owns the *base* endpoint as control plane and
//! routing proxy — topology-unaware clients keep talking to the same
//! address they used for a single-process server — while each shard
//! listens on a private derived endpoint ([`shard_endpoint`]) that
//! topology-aware clients ([`crate::client::ShardedClient`]) hit
//! directly. Shards share one read-only model store; `train` is routed to
//! the model's home shard and followed by a `reload` broadcast so every
//! shard drops state cached under superseded model versions.

use crate::client::Client;
use crate::net::{Conn, Endpoint};
use crate::protocol::{self, code, op};
use crate::server::{ServeConfig, Server, ServerHandle};
use pressio_core::error::{Error, Result};
use pressio_core::Options;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

// ---- rendezvous routing ----------------------------------------------------

fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// The rendezvous weight of `key` on shard `shard`. Deterministic and
/// independent of the shard count, which is what makes the routing stable
/// under rebalancing.
pub fn shard_weight(key: &str, shard: usize) -> u64 {
    splitmix64(fnv1a(key.as_bytes()) ^ splitmix64(shard as u64 + 1))
}

/// Shard indices ordered by descending weight for `key`: element 0 is the
/// home shard, the rest is the failover order.
pub fn rendezvous_order(key: &str, shards: usize) -> Vec<usize> {
    let mut order: Vec<usize> = (0..shards).collect();
    order.sort_by_key(|&s| std::cmp::Reverse((shard_weight(key, s), s)));
    order
}

/// The home shard for `key` among `shards` shards.
pub fn route(key: &str, shards: usize) -> usize {
    (0..shards)
        .max_by_key(|&s| (shard_weight(key, s), s))
        .unwrap_or(0)
}

/// The routing key for a request: the stream id when one is present
/// (every chunk of a stream must land on the shard holding its session —
/// by convention the id is the stream's content hash), else the data
/// content hash when a buffer is embedded (cache affinity), else the
/// model/scheme reference (so `train` and `load` for one model always
/// land on the same shard), else `None` (caller picks any shard).
pub fn routing_key(request: &Options) -> Option<String> {
    if let Ok(Some(id)) = request.get_str_opt("stream:id") {
        return Some(format!("stream:{id}"));
    }
    if let Ok(hash) = protocol::data_content_hash(request) {
        return Some(hash);
    }
    if let Ok(Some(model)) = request.get_str_opt("serve:model") {
        return Some(format!("model:{model}"));
    }
    if let Ok(Some(scheme)) = request.get_str_opt("serve:scheme") {
        return Some(format!("scheme:{scheme}"));
    }
    None
}

// ---- shard endpoints & topology --------------------------------------------

/// The private routed endpoint of shard `index`, derived from the base
/// endpoint: `unix:<path>` → `unix:<path>.s<index>`; `tcp:host:port` →
/// `tcp:host:(port+1+index)` (or `host:0` when the base port is 0, each
/// shard then resolving its own ephemeral port).
pub fn shard_endpoint(base: &Endpoint, index: usize) -> Endpoint {
    match base {
        #[cfg(unix)]
        Endpoint::Unix(path) => {
            Endpoint::Unix(PathBuf::from(format!("{}.s{index}", path.display())))
        }
        Endpoint::Tcp(addr) => {
            let (host, port) = match addr.rsplit_once(':') {
                Some((h, p)) => (h, p.parse::<u16>().unwrap_or(0)),
                None => (addr.as_str(), 0u16),
            };
            if port == 0 {
                Endpoint::Tcp(format!("{host}:0"))
            } else {
                Endpoint::Tcp(format!("{host}:{}", port as usize + 1 + index))
            }
        }
    }
}

/// The shard layout of a deployment, persisted as `.topology.json` next to
/// the model store so shards and clients can discover it.
#[derive(Debug, Clone, PartialEq)]
pub struct Topology {
    /// Bumped every time a shard is (re)spawned; clients refetch when the
    /// generation changes.
    pub generation: u64,
    /// The supervisor's control-plane / proxy endpoint.
    pub base: Endpoint,
    /// The shared `SO_REUSEPORT` data port, when bound.
    pub shared: Option<Endpoint>,
    /// Private routed endpoint of each shard, indexed by shard number.
    pub shards: Vec<Endpoint>,
}

impl Topology {
    /// A synthesized topology for a standalone single-process server.
    pub fn single(endpoint: Endpoint) -> Topology {
        Topology {
            generation: 0,
            base: endpoint.clone(),
            shared: None,
            shards: vec![endpoint],
        }
    }

    /// Where the topology file lives for a model store rooted at `dir`.
    pub fn path(dir: &Path) -> PathBuf {
        dir.join(".topology.json")
    }

    /// Load the topology file, `Ok(None)` when none has been written.
    pub fn load(dir: &Path) -> Result<Option<Topology>> {
        let path = Topology::path(dir);
        let text = match std::fs::read_to_string(&path) {
            Ok(t) => t,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(None),
            Err(e) => return Err(Error::Io(format!("reading {}: {e}", path.display()))),
        };
        Topology::from_options(&Options::from_json(&text)?).map(Some)
    }

    /// Atomically write the topology file (tmp + rename, so a concurrent
    /// reader never sees a torn file).
    pub fn save(&self, dir: &Path) -> Result<()> {
        let path = Topology::path(dir);
        std::fs::create_dir_all(dir)?;
        let tmp = path.with_extension("json.tmp");
        std::fs::write(&tmp, self.to_options().to_json()?)?;
        std::fs::rename(&tmp, &path)
            .map_err(|e| Error::Io(format!("renaming {}: {e}", tmp.display())))?;
        Ok(())
    }

    /// The wire/JSON form (a `topology` response).
    pub fn to_options(&self) -> Options {
        let mut resp = Options::new()
            .with("serve:type", "topology")
            .with("topology:generation", self.generation)
            .with("topology:base", self.base.to_string())
            .with(
                "topology:shards",
                self.shards
                    .iter()
                    .map(|e| e.to_string())
                    .collect::<Vec<String>>(),
            );
        if let Some(shared) = &self.shared {
            resp = resp.with("topology:shared", shared.to_string());
        }
        resp
    }

    /// Parse the wire/JSON form back.
    pub fn from_options(msg: &Options) -> Result<Topology> {
        let mut shards = Vec::new();
        for spec in msg.get_str_slice("topology:shards")? {
            shards.push(Endpoint::parse(spec)?);
        }
        if shards.is_empty() {
            return Err(Error::InvalidValue {
                key: "topology:shards".into(),
                reason: "topology lists no shards".into(),
            });
        }
        Ok(Topology {
            generation: msg.get_u64_opt("topology:generation")?.unwrap_or(0),
            base: Endpoint::parse(msg.get_str("topology:base")?)?,
            shared: match msg.get_str_opt("topology:shared")? {
                Some(s) => Some(Endpoint::parse(s)?),
                None => None,
            },
            shards,
        })
    }

    /// The home shard index for `key`.
    pub fn route(&self, key: &str) -> usize {
        route(key, self.shards.len())
    }

    /// Shard endpoints in failover order for `key` (home shard first).
    pub fn failover_order(&self, key: &str) -> Vec<(usize, Endpoint)> {
        rendezvous_order(key, self.shards.len())
            .into_iter()
            .map(|i| (i, self.shards[i].clone()))
            .collect()
    }
}

// ---- shard spawning --------------------------------------------------------

/// A running shard as the supervisor sees it.
pub trait ShardHandle: Send {
    /// The concrete routed endpoint (port-0 binds resolved).
    fn endpoint(&self) -> Endpoint;
    /// Whether the shard is still serving (`&mut` so process-backed
    /// handles can reap the child with `try_wait`).
    fn is_alive(&mut self) -> bool;
    /// Best-effort graceful shutdown (drain, then exit).
    fn shutdown(&mut self);
}

/// Starts shard servers. The supervisor is spawner-agnostic so the CLI can
/// back it with real child processes while tests and benches use
/// [`InProcessSpawner`] threads — same routing, same topology file, same
/// restart logic.
pub trait ShardSpawner: Send + Sync {
    /// Start a shard with this fully-prepared config (`listen`,
    /// `shard_index`, and `extra_listeners` already set).
    fn spawn(&self, config: ServeConfig) -> Result<Box<dyn ShardHandle>>;
}

/// Runs each shard as an in-process [`Server`] (threads, not processes).
/// Process isolation is lost, but routing/failover/restart behave the
/// same, which is what the tests and the scaling bench need.
pub struct InProcessSpawner;

struct InProcessShard {
    endpoint: Endpoint,
    handle: Option<ServerHandle>,
}

impl ShardHandle for InProcessShard {
    fn endpoint(&self) -> Endpoint {
        self.endpoint.clone()
    }

    fn is_alive(&mut self) -> bool {
        self.handle.as_ref().is_some_and(|h| h.is_running())
    }

    fn shutdown(&mut self) {
        if let Some(handle) = self.handle.take() {
            handle.trigger_shutdown();
            let _ = handle.wait();
        }
    }
}

impl ShardSpawner for InProcessSpawner {
    fn spawn(&self, config: ServeConfig) -> Result<Box<dyn ShardHandle>> {
        let handle = Server::start(config)?;
        Ok(Box::new(InProcessShard {
            endpoint: handle.endpoint().clone(),
            handle: Some(handle),
        }))
    }
}

// ---- supervisor ------------------------------------------------------------

/// Supervisor tunables.
pub struct SupervisorConfig {
    /// The base (control-plane / proxy) endpoint.
    pub listen: Endpoint,
    /// How many shard servers to run.
    pub shards: usize,
    /// Bind every shard to this shared TCP address with `SO_REUSEPORT`
    /// (Linux only; must carry a concrete port). Topology-unaware clients
    /// can connect here and let the kernel pick a shard.
    pub shared_data_addr: Option<String>,
    /// Restarts allowed per shard slot before it is left dead (requests
    /// then fail over to the surviving shards).
    pub restart_max: u32,
    /// Template for each shard's [`ServeConfig`] (`listen`, `shard_index`,
    /// and `extra_listeners` are overridden per shard).
    pub template: ServeConfig,
}

impl SupervisorConfig {
    /// Defaults: `shards` shard servers, no shared data port, 3 restarts.
    pub fn new(listen: Endpoint, template: ServeConfig, shards: usize) -> SupervisorConfig {
        SupervisorConfig {
            listen,
            shards: shards.max(1),
            shared_data_addr: None,
            restart_max: 3,
            template,
        }
    }
}

struct ShardSlot {
    handle: Box<dyn ShardHandle>,
    endpoint: Endpoint,
    restarts: u32,
}

struct SupervisorState {
    config: SupervisorConfig,
    spawner: Arc<dyn ShardSpawner>,
    slots: Mutex<Vec<ShardSlot>>,
    generation: AtomicU64,
    base: Endpoint,
    shared: Option<Endpoint>,
    stop: AtomicBool,
    routed: AtomicU64,
    failovers: AtomicU64,
    restarts_total: AtomicU64,
    /// Parked proxy connections, one per shard slot. An entry leaves the
    /// pool while a request is in flight (request/response frames must
    /// never interleave on one socket) and returns on success; errors drop
    /// it so the next request dials fresh. The endpoint is stored with the
    /// client so a restarted shard's stale connection is never reused.
    pool: Mutex<std::collections::HashMap<usize, (Endpoint, Client)>>,
    conn_reuse: AtomicU64,
}

impl SupervisorState {
    fn shard_config(&self, index: usize) -> ServeConfig {
        let mut config = self.config.template.clone();
        config.listen = shard_endpoint(&self.config.listen, index);
        config.shard_index = Some(index);
        config.extra_listeners = match &self.config.shared_data_addr {
            Some(addr) => vec![crate::server::ExtraListener {
                endpoint: Endpoint::Tcp(addr.clone()),
                reuseport: true,
            }],
            None => Vec::new(),
        };
        config
    }

    fn topology(&self) -> Topology {
        let slots = self.slots.lock().unwrap_or_else(|e| e.into_inner());
        Topology {
            generation: self.generation.load(Ordering::Acquire),
            base: self.base.clone(),
            shared: self.shared.clone(),
            shards: slots.iter().map(|s| s.endpoint.clone()).collect(),
        }
    }

    fn write_topology(&self) {
        let _ = self.topology().save(&self.config.template.model_dir);
    }

    /// Take shard `index`'s parked connection, if its endpoint still
    /// matches; a mismatch means the shard restarted elsewhere, so the
    /// stale connection is dropped instead of handed out.
    fn take_pooled(&self, index: usize, endpoint: &Endpoint) -> Option<Client> {
        let mut pool = self.pool.lock().unwrap_or_else(|e| e.into_inner());
        match pool.remove(&index) {
            Some((ep, client)) if &ep == endpoint => Some(client),
            _ => None,
        }
    }

    /// Park a healthy connection for the next request to shard `index`.
    fn park(&self, index: usize, endpoint: &Endpoint, client: Client) {
        let mut pool = self.pool.lock().unwrap_or_else(|e| e.into_inner());
        pool.insert(index, (endpoint.clone(), client));
    }

    /// One pooled request/response against shard `index`: reuse the parked
    /// connection when available, dial otherwise, and reconnect once when
    /// a reused socket turns out stale — pooling must never cause a
    /// spurious failover that a fresh dial would have avoided.
    fn call_shard(&self, index: usize, endpoint: &Endpoint, request: &Options) -> Option<Options> {
        let pooled = self.take_pooled(index, endpoint);
        let reused = pooled.is_some();
        let mut client = match pooled {
            Some(client) => client,
            None => Client::connect(endpoint).ok()?,
        };
        match client.call(request) {
            Ok(resp) => {
                if reused {
                    self.conn_reuse.fetch_add(1, Ordering::Relaxed);
                    pressio_obs::add_counter("proxy:conn.reuse", 1);
                }
                self.park(index, endpoint, client);
                Some(resp)
            }
            Err(_) if reused => {
                // stale parked socket (peer closed it while idle, or the
                // shard restarted on the same endpoint): one fresh dial
                let mut fresh = Client::connect(endpoint).ok()?;
                let resp = fresh.call(request).ok()?;
                self.park(index, endpoint, fresh);
                Some(resp)
            }
            Err(_) => None,
        }
    }

    /// Forward `request` to the home shard for `key`, walking the
    /// rendezvous failover order when shards are unreachable.
    fn forward(&self, key: &str, request: &Options) -> Options {
        self.routed.fetch_add(1, Ordering::Relaxed);
        let order = self.topology().failover_order(key);
        for (attempt, (index, endpoint)) in order.iter().enumerate() {
            if let Some(resp) = self.call_shard(*index, endpoint, request) {
                if attempt > 0 {
                    self.failovers.fetch_add(attempt as u64, Ordering::Relaxed);
                    pressio_obs::add_counter("serve:supervisor.failover", attempt as i64);
                }
                return resp;
            }
        }
        protocol::error_response(code::INTERNAL, "no shard reachable for request")
    }

    /// Send `request` to every shard, returning per-shard success count.
    fn broadcast(&self, request: &Options) -> (usize, usize) {
        let endpoints: Vec<Endpoint> = {
            let slots = self.slots.lock().unwrap_or_else(|e| e.into_inner());
            slots.iter().map(|s| s.endpoint.clone()).collect()
        };
        let mut ok = 0usize;
        for (index, endpoint) in endpoints.iter().enumerate() {
            if self.call_shard(index, endpoint, request).is_some() {
                ok += 1;
            }
        }
        (ok, endpoints.len())
    }

    fn shutdown_shards(&self) {
        let mut slots = self.slots.lock().unwrap_or_else(|e| e.into_inner());
        for slot in slots.iter_mut() {
            slot.handle.shutdown();
        }
    }
}

/// The acceptor/supervisor: spawns shards, restarts the ones that die,
/// publishes the topology, and proxies requests for topology-unaware
/// clients.
pub struct Supervisor;

/// A running supervisor.
pub struct SupervisorHandle {
    endpoint: Endpoint,
    state: Arc<SupervisorState>,
    threads: Vec<std::thread::JoinHandle<()>>,
}

impl SupervisorHandle {
    /// The concrete base endpoint.
    pub fn endpoint(&self) -> &Endpoint {
        &self.endpoint
    }

    /// The current topology (generation, shard endpoints).
    pub fn topology(&self) -> Topology {
        self.state.topology()
    }

    /// Request a full (shards + supervisor) graceful shutdown.
    pub fn trigger_shutdown(&self) {
        if !self.state.stop.swap(true, Ordering::AcqRel) {
            self.state.shutdown_shards();
            let _ = self.endpoint.connect(); // wake the accept loop
        }
    }

    /// Block until the supervisor has exited.
    pub fn wait(mut self) -> Result<()> {
        for t in self.threads.drain(..) {
            t.join()
                .map_err(|_| Error::TaskFailed("supervisor thread panicked".into()))?;
        }
        Ok(())
    }

    /// Kill shard `index` without draining (testing: simulates a crash the
    /// monitor must notice and restart).
    pub fn kill_shard(&self, index: usize) {
        let mut slots = self.state.slots.lock().unwrap_or_else(|e| e.into_inner());
        if let Some(slot) = slots.get_mut(index) {
            slot.handle.shutdown();
        }
    }
}

impl Supervisor {
    /// Spawn the shards, write the topology, and start the control plane.
    pub fn start(
        config: SupervisorConfig,
        spawner: Arc<dyn ShardSpawner>,
    ) -> Result<SupervisorHandle> {
        if let Some(addr) = &config.shared_data_addr {
            if addr.ends_with(":0") {
                return Err(Error::InvalidValue {
                    key: "serve:shared_data_addr".into(),
                    reason: "shared SO_REUSEPORT port must be concrete, not 0".into(),
                });
            }
            if !Endpoint::Tcp(addr.clone()).supports_reuseport() {
                return Err(Error::Unsupported(format!(
                    "shared data port {addr} needs SO_REUSEPORT (Linux TCP only)"
                )));
            }
        }
        let listener = config.listen.bind()?;
        let base = listener.local_endpoint()?;
        let shared = config
            .shared_data_addr
            .as_ref()
            .map(|a| Endpoint::Tcp(a.clone()));
        let state = Arc::new(SupervisorState {
            slots: Mutex::new(Vec::new()),
            generation: AtomicU64::new(0),
            base: base.clone(),
            shared,
            stop: AtomicBool::new(false),
            routed: AtomicU64::new(0),
            failovers: AtomicU64::new(0),
            restarts_total: AtomicU64::new(0),
            pool: Mutex::new(std::collections::HashMap::new()),
            conn_reuse: AtomicU64::new(0),
            spawner,
            config,
        });
        {
            let mut slots = state.slots.lock().unwrap_or_else(|e| e.into_inner());
            for index in 0..state.config.shards {
                let handle = state.spawner.spawn(state.shard_config(index))?;
                let endpoint = handle.endpoint();
                slots.push(ShardSlot {
                    handle,
                    endpoint,
                    restarts: 0,
                });
            }
        }
        state.generation.store(1, Ordering::Release);
        state.write_topology();
        pressio_obs::add_counter("serve:supervisor.started", 1);

        let monitor_state = state.clone();
        let monitor = std::thread::Builder::new()
            .name("pressio-serve-monitor".into())
            .spawn(move || monitor_loop(&monitor_state))
            .map_err(|e| Error::Io(format!("spawning monitor thread: {e}")))?;
        let accept_state = state.clone();
        let accept = std::thread::Builder::new()
            .name("pressio-serve-supervisor".into())
            .spawn(move || supervisor_accept_loop(listener, &accept_state))
            .map_err(|e| Error::Io(format!("spawning supervisor accept thread: {e}")))?;
        Ok(SupervisorHandle {
            endpoint: base,
            state,
            threads: vec![accept, monitor],
        })
    }
}

/// Poll shard liveness; respawn dead shards (bumping the topology
/// generation) until their restart budget runs out.
fn monitor_loop(state: &SupervisorState) {
    while !state.stop.load(Ordering::Acquire) {
        std::thread::sleep(Duration::from_millis(50));
        if state.stop.load(Ordering::Acquire) {
            break;
        }
        let mut slots = state.slots.lock().unwrap_or_else(|e| e.into_inner());
        let mut changed = false;
        for (index, slot) in slots.iter_mut().enumerate() {
            if slot.handle.is_alive() || slot.restarts >= state.config.restart_max {
                continue;
            }
            match state.spawner.spawn(state.shard_config(index)) {
                Ok(handle) => {
                    slot.endpoint = handle.endpoint();
                    slot.handle = handle;
                    slot.restarts += 1;
                    state.restarts_total.fetch_add(1, Ordering::Relaxed);
                    pressio_obs::add_counter("serve:supervisor.restart", 1);
                    changed = true;
                }
                Err(_) => {
                    // spawn failed: burn one restart so a persistent
                    // failure cannot loop forever
                    slot.restarts += 1;
                }
            }
        }
        drop(slots);
        if changed {
            state.generation.fetch_add(1, Ordering::AcqRel);
            state.write_topology();
        }
    }
}

fn supervisor_accept_loop(listener: crate::net::Listener, state: &Arc<SupervisorState>) {
    let mut connections = Vec::new();
    while !state.stop.load(Ordering::Acquire) {
        let conn = match listener.accept() {
            Ok(c) => c,
            Err(_) => continue,
        };
        if state.stop.load(Ordering::Acquire) {
            break;
        }
        let state = state.clone();
        if let Ok(handle) = std::thread::Builder::new()
            .name("pressio-serve-sup-conn".into())
            .spawn(move || supervisor_connection_loop(conn, &state))
        {
            connections.push(handle);
        }
        connections.retain(|h| !h.is_finished());
    }
    for handle in connections {
        let _ = handle.join();
    }
    #[cfg(unix)]
    if let crate::net::Listener::Unix(_, path) = &listener {
        let _ = std::fs::remove_file(path);
    }
}

fn supervisor_connection_loop(mut conn: Conn, state: &Arc<SupervisorState>) {
    let _ = conn.set_read_timeout(Some(Duration::from_millis(200)));
    while let Ok(Some(request)) = read_frame_polled(&mut conn, &state.stop) {
        let op_name = request
            .get_str_opt("serve:op")
            .ok()
            .flatten()
            .unwrap_or("")
            .to_string();
        let started = Instant::now();
        let mut shutting_down = false;
        let response = match op_name.as_str() {
            op::PING => Options::new()
                .with("serve:type", "pong")
                .with("serve:role", "supervisor"),
            op::TOPOLOGY => state.topology().to_options(),
            op::STATS => supervisor_stats(state),
            op::RELOAD => {
                let (ok, total) = state.broadcast(&request);
                Options::new()
                    .with("serve:type", "reloaded")
                    .with("serve:shards.reloaded", ok as u64)
                    .with("serve:shards.total", total as u64)
            }
            op::SHUTDOWN => {
                shutting_down = true;
                Options::new().with("serve:type", "bye")
            }
            op::TRAIN => {
                // train on the model's home shard, then tell every other
                // shard to re-resolve so the new version is hot everywhere
                let key = routing_key(&request).unwrap_or_default();
                let resp = state.forward(&key, &request);
                if resp.get_str_opt("serve:type").ok().flatten() == Some("trained") {
                    let reload = Options::new().with("serve:op", op::RELOAD);
                    let _ = state.broadcast(&reload);
                }
                resp
            }
            op::PREDICT
            | op::LOAD
            | op::MODELS
            | op::SLEEP
            | op::STREAM_BEGIN
            | op::STREAM_CHUNK
            | op::STREAM_END
            | op::STREAM_RESUME => {
                let key = routing_key(&request).unwrap_or_else(|| {
                    // no routing affinity: spread by request counter
                    format!("rr:{}", state.routed.load(Ordering::Relaxed))
                });
                state.forward(&key, &request)
            }
            other => {
                protocol::error_response(code::BAD_REQUEST, format!("unknown serve:op '{other}'"))
            }
        };
        let response = response.with("serve:elapsed_ms", started.elapsed().as_secs_f64() * 1e3);
        let write_ok = protocol::write_frame(&mut conn, &response).is_ok();
        if shutting_down {
            if !state.stop.swap(true, Ordering::AcqRel) {
                state.shutdown_shards();
                let _ = state.base.connect(); // wake our own accept loop
            }
            break;
        }
        if !write_ok {
            break;
        }
    }
}

/// Aggregate stats across shards plus the supervisor's own counters.
fn supervisor_stats(state: &SupervisorState) -> Options {
    let endpoints: Vec<Endpoint> = {
        let slots = state.slots.lock().unwrap_or_else(|e| e.into_inner());
        slots.iter().map(|s| s.endpoint.clone()).collect()
    };
    let summed = [
        "serve:feature_cache.hits",
        "serve:feature_cache.misses",
        "serve:prediction_cache.hits",
        "serve:prediction_cache.misses",
        "serve:features.computed",
        "serve:predictions.served",
        "serve:coalesced",
        "serve:reloads",
    ];
    let mut totals = vec![0u64; summed.len()];
    let mut live = 0usize;
    for endpoint in &endpoints {
        let Ok(mut client) = Client::connect(endpoint) else {
            continue;
        };
        let Ok(stats) = client.stats() else {
            continue;
        };
        live += 1;
        for (slot, key) in totals.iter_mut().zip(summed.iter()) {
            *slot += stats.get_u64_opt(key).ok().flatten().unwrap_or(0);
        }
    }
    let mut resp = Options::new()
        .with("serve:type", "stats")
        .with("serve:role", "supervisor")
        .with("serve:shards.total", endpoints.len() as u64)
        .with("serve:shards.live", live as u64)
        .with("serve:generation", state.generation.load(Ordering::Acquire))
        .with("serve:routed", state.routed.load(Ordering::Relaxed))
        .with("serve:failovers", state.failovers.load(Ordering::Relaxed))
        .with(
            "serve:restarts",
            state.restarts_total.load(Ordering::Relaxed),
        )
        .with(
            "serve:proxy.conn_reuse",
            state.conn_reuse.load(Ordering::Relaxed),
        );
    for (total, key) in totals.iter().zip(summed.iter()) {
        resp.set(*key, *total);
    }
    resp
}

/// Frame read tolerant of poll timeouts, mirroring the server's loop so an
/// idle proxied connection notices shutdown.
fn read_frame_polled(conn: &mut Conn, stop: &AtomicBool) -> Result<Option<Options>> {
    let mut len_buf = [0u8; 4];
    let mut filled = 0usize;
    while filled < 4 {
        match std::io::Read::read(conn, &mut len_buf[filled..]) {
            Ok(0) => {
                return if filled == 0 {
                    Ok(None)
                } else {
                    Err(Error::Io("connection closed mid-frame header".into()))
                }
            }
            Ok(n) => filled += n,
            Err(e)
                if matches!(
                    e.kind(),
                    std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                ) =>
            {
                if filled == 0 && stop.load(Ordering::Acquire) {
                    return Ok(None);
                }
            }
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(e) => return Err(e.into()),
        }
    }
    let len = u32::from_be_bytes(len_buf) as usize;
    if len > protocol::MAX_FRAME {
        return Err(Error::CorruptStream(format!(
            "frame length {len} exceeds MAX_FRAME"
        )));
    }
    let mut payload = vec![0u8; len];
    let mut got = 0usize;
    while got < len {
        match std::io::Read::read(conn, &mut payload[got..]) {
            Ok(0) => return Err(Error::Io("connection closed mid-frame body".into())),
            Ok(n) => got += n,
            Err(e)
                if matches!(
                    e.kind(),
                    std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                ) => {}
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(e) => return Err(e.into()),
        }
    }
    let text = std::str::from_utf8(&payload)
        .map_err(|e| Error::CorruptStream(format!("frame is not UTF-8: {e}")))?;
    Options::from_json(text).map(Some)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn route_is_stable_and_in_range() {
        for shards in 1..=8 {
            for i in 0..64 {
                let key = format!("key-{i}");
                let a = route(&key, shards);
                let b = route(&key, shards);
                assert_eq!(a, b, "routing must be deterministic");
                assert!(a < shards);
            }
        }
    }

    #[test]
    fn rebalance_moves_about_one_over_n_keys() {
        // growing N → N+1 shards must move only the keys the new shard
        // wins: ~1/(N+1) of them, never a full reshuffle
        for n in 2..=6 {
            let keys: Vec<String> = (0..2000).map(|i| format!("buf-{i}")).collect();
            let moved = keys
                .iter()
                .filter(|k| route(k, n) != route(k, n + 1))
                .count();
            let expected = keys.len() / (n + 1);
            assert!(
                moved as f64 <= expected as f64 * 1.5,
                "{n}→{} shards moved {moved} keys (expected ≈{expected})",
                n + 1,
            );
            assert!(
                moved as f64 >= expected as f64 * 0.5,
                "{n}→{} shards moved only {moved} keys (expected ≈{expected})",
                n + 1,
            );
            // and every moved key lands on the *new* shard
            for k in &keys {
                if route(k, n) != route(k, n + 1) {
                    assert_eq!(route(k, n + 1), n, "moved keys must land on the new shard");
                }
            }
        }
    }

    #[test]
    fn rendezvous_order_is_a_permutation_with_route_first() {
        for shards in 1..=6 {
            for i in 0..32 {
                let key = format!("k{i}");
                let order = rendezvous_order(&key, shards);
                assert_eq!(order.len(), shards);
                let mut sorted = order.clone();
                sorted.sort_unstable();
                assert_eq!(sorted, (0..shards).collect::<Vec<_>>());
                assert_eq!(order[0], route(&key, shards));
            }
        }
    }

    #[test]
    fn routing_spreads_keys_across_shards() {
        let shards = 4;
        let mut counts = vec![0usize; shards];
        for i in 0..4000 {
            counts[route(&format!("data-{i}"), shards)] += 1;
        }
        for (shard, &count) in counts.iter().enumerate() {
            assert!(
                count > 600 && count < 1400,
                "shard {shard} got {count}/4000 keys — routing is badly skewed"
            );
        }
    }

    #[test]
    fn shard_endpoint_derivation() {
        #[cfg(unix)]
        {
            let base = Endpoint::Unix(PathBuf::from("/tmp/s.sock"));
            assert_eq!(
                shard_endpoint(&base, 2),
                Endpoint::Unix(PathBuf::from("/tmp/s.sock.s2"))
            );
        }
        let tcp = Endpoint::Tcp("127.0.0.1:9000".into());
        assert_eq!(
            shard_endpoint(&tcp, 0),
            Endpoint::Tcp("127.0.0.1:9001".into())
        );
        assert_eq!(
            shard_endpoint(&tcp, 3),
            Endpoint::Tcp("127.0.0.1:9004".into())
        );
        // port 0 stays ephemeral per shard
        let any = Endpoint::Tcp("127.0.0.1:0".into());
        assert_eq!(shard_endpoint(&any, 5), Endpoint::Tcp("127.0.0.1:0".into()));
    }

    #[test]
    fn topology_round_trips_through_json_and_disk() {
        let dir = std::env::temp_dir().join(format!("pressio_topo_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let topo = Topology {
            generation: 7,
            base: Endpoint::Tcp("127.0.0.1:9000".into()),
            shared: Some(Endpoint::Tcp("127.0.0.1:9100".into())),
            shards: vec![
                Endpoint::Tcp("127.0.0.1:9001".into()),
                Endpoint::Tcp("127.0.0.1:9002".into()),
            ],
        };
        let back = Topology::from_options(&topo.to_options()).unwrap();
        assert_eq!(back, topo);
        topo.save(&dir).unwrap();
        assert_eq!(Topology::load(&dir).unwrap(), Some(topo));
        std::fs::remove_dir_all(&dir).unwrap();
        assert_eq!(Topology::load(&dir).unwrap(), None);
    }

    #[test]
    fn routing_key_prefers_content_hash() {
        let data = pressio_core::Data::from_f32(vec![4], vec![1.0, 2.0, 3.0, 4.0]);
        let mut req = Options::new().with("serve:model", "m");
        assert_eq!(routing_key(&req), Some("model:m".into()));
        protocol::data_into_request(&mut req, &data);
        let key = routing_key(&req).unwrap();
        assert_eq!(key, protocol::data_content_hash(&req).unwrap());
        assert_eq!(routing_key(&Options::new()), None);
    }
}
