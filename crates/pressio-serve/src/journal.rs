//! Crash-safe per-session stream journals.
//!
//! Every streaming session journals its begin configuration and each
//! processed chunk to an append-only file under `<model_dir>/sessions/`,
//! so a respawned daemon — or the rendezvous-failover shard sharing the
//! same model store — can rehydrate the session on `stream.resume`: the
//! carried trailing slice, the acked chunk offset, the cached per-chunk
//! predictions (idempotent replay), and the online learner's window all
//! come back.
//!
//! The format follows the store's durability discipline adapted to an
//! append log: each record is `[u32 BE payload length][u64 LE fnv1a64 of
//! payload][payload JSON]`, appended then `fsync`ed before the chunk is
//! acked. A torn tail (crash or the `stream:journal.torn` failpoint mid-
//! append) is detected by the length/checksum framing and the journal
//! loads cleanly up to the last complete record — an ack never names
//! state the journal might not have.

use pressio_core::error::{Error, Result};
use pressio_core::Options;
use std::io::{Read, Write};
use std::path::{Path, PathBuf};

/// Cap on one journal record (a record embeds at most one trailing outer
/// slice, far below the 64 MiB wire frame cap).
const MAX_RECORD: usize = 64 << 20;

/// The journal directory for a model store rooted at `model_dir`.
pub fn journal_dir(model_dir: &Path) -> PathBuf {
    model_dir.join("sessions")
}

/// Append-only, fsync'd journals for streaming sessions, one file per
/// stream id under `<model_dir>/sessions/`.
#[derive(Debug)]
pub struct SessionJournal {
    dir: PathBuf,
}

impl SessionJournal {
    /// Open (creating if needed) the journal directory for a model store.
    pub fn open(model_dir: &Path) -> Result<SessionJournal> {
        let dir = journal_dir(model_dir);
        std::fs::create_dir_all(&dir)
            .map_err(|e| Error::Io(format!("creating session journal dir: {e}")))?;
        Ok(SessionJournal { dir })
    }

    /// The journal file for a stream id. The id is hashed so a hostile id
    /// can never escape the journal directory or collide with a path
    /// separator — the id itself is stored inside the begin record.
    pub fn path(&self, id: &str) -> PathBuf {
        self.dir.join(format!(
            "{:016x}.psj",
            pressio_core::hash::fnv1a64(id.as_bytes())
        ))
    }

    /// Truncate (or create) the journal for `id` — called at
    /// `stream.begin` so a reused id never resumes against a stale log.
    pub fn reset(&self, id: &str) -> Result<()> {
        std::fs::File::create(self.path(id))
            .map_err(|e| Error::Io(format!("resetting session journal: {e}")))?;
        Ok(())
    }

    /// Append one record and fsync. Under the `stream:journal.torn`
    /// failpoint only a prefix of the record reaches the file (simulating
    /// a crash mid-append); the loader stops at the torn tail.
    pub fn append(&self, id: &str, record: &Options) -> Result<()> {
        let json = record.to_json()?;
        let payload = json.as_bytes();
        let mut frame = Vec::with_capacity(12 + payload.len());
        frame.extend_from_slice(&(payload.len() as u32).to_be_bytes());
        frame.extend_from_slice(&pressio_core::hash::fnv1a64(payload).to_le_bytes());
        frame.extend_from_slice(payload);
        if matches!(
            pressio_faults::check("stream:journal.torn"),
            Some(pressio_faults::FaultAction::Torn)
        ) {
            frame.truncate(frame.len() / 2);
        }
        let mut file = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(self.path(id))
            .map_err(|e| Error::Io(format!("opening session journal: {e}")))?;
        file.write_all(&frame)
            .map_err(|e| Error::Io(format!("appending session journal: {e}")))?;
        file.sync_all()
            .map_err(|e| Error::Io(format!("fsyncing session journal: {e}")))?;
        Ok(())
    }

    /// Load every complete record for `id`, stopping cleanly at a torn or
    /// corrupt tail (the crash window of an interrupted append). Returns
    /// `None` when no journal exists for the id.
    pub fn load(&self, id: &str) -> Result<Option<Vec<Options>>> {
        let bytes = match std::fs::read(self.path(id)) {
            Ok(b) => b,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(None),
            Err(e) => return Err(Error::Io(format!("reading session journal: {e}"))),
        };
        let mut cursor = std::io::Cursor::new(&bytes);
        let mut records = Vec::new();
        loop {
            let mut len_buf = [0u8; 4];
            match cursor.read_exact(&mut len_buf) {
                Ok(()) => {}
                Err(_) => break, // clean EOF or torn length prefix
            }
            let len = u32::from_be_bytes(len_buf) as usize;
            if len > MAX_RECORD {
                break; // corrupt prefix: trust nothing past it
            }
            let mut sum_buf = [0u8; 8];
            if cursor.read_exact(&mut sum_buf).is_err() {
                break;
            }
            let mut payload = vec![0u8; len];
            if cursor.read_exact(&mut payload).is_err() {
                break; // torn tail: the record was never fully appended
            }
            if pressio_core::hash::fnv1a64(&payload) != u64::from_le_bytes(sum_buf) {
                break; // checksum mismatch: stop at the last good record
            }
            let text = match std::str::from_utf8(&payload) {
                Ok(t) => t,
                Err(_) => break,
            };
            match Options::from_json(text) {
                Ok(record) => records.push(record),
                Err(_) => break,
            }
        }
        Ok(Some(records))
    }

    /// Delete the journal for `id` (at `stream.end`); missing is fine.
    pub fn remove(&self, id: &str) -> Result<()> {
        match std::fs::remove_file(self.path(id)) {
            Ok(()) => Ok(()),
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(()),
            Err(e) => Err(Error::Io(format!("removing session journal: {e}"))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_store(name: &str) -> PathBuf {
        let dir = std::env::temp_dir()
            .join("pressio_journal_tests")
            .join(name);
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn record(seq: u64) -> Options {
        Options::new()
            .with("j:type", "chunk")
            .with("j:seq", seq)
            .with("j:prediction", seq as f64 * 1.5)
    }

    #[test]
    fn append_and_load_round_trip() {
        let dir = temp_store("roundtrip");
        let journal = SessionJournal::open(&dir).unwrap();
        assert!(journal.load("s").unwrap().is_none(), "no journal yet");
        journal.reset("s").unwrap();
        for seq in 1..=3 {
            journal.append("s", &record(seq)).unwrap();
        }
        let records = journal.load("s").unwrap().unwrap();
        assert_eq!(records.len(), 3);
        for (i, r) in records.iter().enumerate() {
            assert_eq!(r.get_u64("j:seq").unwrap(), i as u64 + 1);
        }
        journal.remove("s").unwrap();
        assert!(journal.load("s").unwrap().is_none());
        journal.remove("s").unwrap(); // idempotent
    }

    #[test]
    fn torn_tail_loads_up_to_last_complete_record() {
        let dir = temp_store("torn");
        let journal = SessionJournal::open(&dir).unwrap();
        journal.reset("s").unwrap();
        journal.append("s", &record(1)).unwrap();
        journal.append("s", &record(2)).unwrap();
        // tear the file mid-record, as a crash mid-append would
        let path = journal.path("s");
        let bytes = std::fs::read(&path).unwrap();
        std::fs::write(&path, &bytes[..bytes.len() - 7]).unwrap();
        let records = journal.load("s").unwrap().unwrap();
        assert_eq!(records.len(), 1, "torn record must not surface");
        assert_eq!(records[0].get_u64("j:seq").unwrap(), 1);
        // appends continue after the tear is truncated away by reset
        journal.reset("s").unwrap();
        journal.append("s", &record(9)).unwrap();
        assert_eq!(journal.load("s").unwrap().unwrap().len(), 1);
    }

    #[test]
    fn corrupt_checksum_stops_the_load_cleanly() {
        let dir = temp_store("corrupt");
        let journal = SessionJournal::open(&dir).unwrap();
        journal.reset("s").unwrap();
        journal.append("s", &record(1)).unwrap();
        journal.append("s", &record(2)).unwrap();
        let path = journal.path("s");
        let mut bytes = std::fs::read(&path).unwrap();
        let last = bytes.len() - 1;
        bytes[last] ^= 0x5a; // flip a payload byte of record 2
        std::fs::write(&path, &bytes).unwrap();
        let records = journal.load("s").unwrap().unwrap();
        assert_eq!(records.len(), 1);
    }

    #[test]
    fn torn_failpoint_tears_the_append() {
        let dir = temp_store("failpoint");
        let journal = SessionJournal::open(&dir).unwrap();
        journal.reset("s").unwrap();
        journal.append("s", &record(1)).unwrap();
        pressio_faults::configure("stream:journal.torn=torn,times=1").unwrap();
        journal.append("s", &record(2)).unwrap();
        pressio_faults::clear();
        assert_eq!(
            journal.load("s").unwrap().unwrap().len(),
            1,
            "the torn append must not count as durable"
        );
        // the next good append lands after the torn tail is ignored...
        journal.append("s", &record(3)).unwrap();
        // ...but the loader cannot resync past garbage: records after a
        // tear stay invisible until the journal is reset. That is the
        // conservative contract: acked state is a prefix.
        assert_eq!(journal.load("s").unwrap().unwrap().len(), 1);
    }

    #[test]
    fn hostile_ids_stay_inside_the_journal_dir() {
        let dir = temp_store("hostile");
        let journal = SessionJournal::open(&dir).unwrap();
        for id in ["../escape", "a/b", "", "..", "\0nul"] {
            let path = journal.path(id);
            assert!(path.starts_with(journal_dir(&dir)), "{id} -> {path:?}");
            journal.reset(id).unwrap();
            journal.append(id, &record(1)).unwrap();
            assert_eq!(journal.load(id).unwrap().unwrap().len(), 1);
            journal.remove(id).unwrap();
        }
    }
}
