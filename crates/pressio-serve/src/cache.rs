//! Sharded, content-hash-keyed LRU cache for features and predictions.
//!
//! Keys are content hashes (SHA-256 of the data buffer plus the scheme and
//! error-affecting compressor settings), so identical buffers queried
//! through different connections share entries. The map is split into
//! shards, each behind its own mutex, so concurrent connections contend
//! only when they hash to the same shard. Eviction is true LRU per shard
//! via a recency index (`BTreeMap<tick, key>`), giving O(log n) touch and
//! eviction with strictly bounded memory.
//!
//! Hit/miss/eviction counts are mirrored into `pressio-obs` counters
//! (`<name>.hit`, `<name>.miss`, `<name>.eviction`) so a `--trace` run
//! shows cache effectiveness alongside the request spans.

use std::collections::{BTreeMap, HashMap};
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// Aggregate statistics across all shards.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups that found a live entry.
    pub hits: u64,
    /// Lookups that missed.
    pub misses: u64,
    /// Entries inserted.
    pub insertions: u64,
    /// Entries evicted to respect the capacity bound.
    pub evictions: u64,
    /// Live entries right now.
    pub len: usize,
}

struct Shard<V> {
    /// key → (recency tick, value). The tick doubles as the index into
    /// `order`, so the pair of maps stays consistent under the shard lock.
    entries: HashMap<String, (u64, V)>,
    /// recency tick → key, oldest first.
    order: BTreeMap<u64, String>,
    tick: u64,
}

impl<V> Shard<V> {
    fn new() -> Shard<V> {
        Shard {
            entries: HashMap::new(),
            order: BTreeMap::new(),
            tick: 0,
        }
    }

    fn touch(&mut self, key: &str) {
        self.tick += 1;
        let tick = self.tick;
        if let Some((old, _)) = self.entries.get(key) {
            let old = *old;
            self.order.remove(&old);
            self.order.insert(tick, key.to_string());
            self.entries.get_mut(key).unwrap().0 = tick;
        }
    }
}

/// A sharded LRU map with per-instance obs counter names.
pub struct ShardedLru<V> {
    shards: Box<[Mutex<Shard<V>>]>,
    per_shard_capacity: usize,
    hits: AtomicU64,
    misses: AtomicU64,
    insertions: AtomicU64,
    evictions: AtomicU64,
    hit_counter: String,
    miss_counter: String,
    eviction_counter: String,
}

impl<V: Clone> ShardedLru<V> {
    /// A cache named `name` (the obs counter prefix) holding at most
    /// `capacity` entries split over `shards` shards. Capacity is
    /// distributed evenly (rounded up), so total occupancy never exceeds
    /// `max(capacity, shards)`.
    pub fn new(name: &str, shards: usize, capacity: usize) -> ShardedLru<V> {
        let shards = shards.max(1);
        let per_shard_capacity = capacity.div_ceil(shards).max(1);
        ShardedLru {
            shards: (0..shards).map(|_| Mutex::new(Shard::new())).collect(),
            per_shard_capacity,
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            insertions: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
            hit_counter: format!("{name}.hit"),
            miss_counter: format!("{name}.miss"),
            eviction_counter: format!("{name}.eviction"),
        }
    }

    fn shard(&self, key: &str) -> &Mutex<Shard<V>> {
        let mut h = std::collections::hash_map::DefaultHasher::new();
        key.hash(&mut h);
        &self.shards[(h.finish() as usize) % self.shards.len()]
    }

    /// Look `key` up, refreshing its recency on a hit.
    pub fn get(&self, key: &str) -> Option<V> {
        let mut shard = self.shard(key).lock().unwrap_or_else(|e| e.into_inner());
        match shard.entries.get(key).map(|(_, v)| v.clone()) {
            Some(v) => {
                shard.touch(key);
                drop(shard);
                self.hits.fetch_add(1, Ordering::Relaxed);
                pressio_obs::add_counter(&self.hit_counter, 1);
                Some(v)
            }
            None => {
                drop(shard);
                self.misses.fetch_add(1, Ordering::Relaxed);
                pressio_obs::add_counter(&self.miss_counter, 1);
                None
            }
        }
    }

    /// Insert (or refresh) `key`, evicting the shard's least-recently-used
    /// entry if the shard is at capacity.
    pub fn insert(&self, key: impl Into<String>, value: V) {
        let key = key.into();
        let mut evicted = 0u64;
        {
            let mut shard = self.shard(&key).lock().unwrap_or_else(|e| e.into_inner());
            if shard.entries.contains_key(&key) {
                shard.touch(&key);
                shard.entries.get_mut(&key).unwrap().1 = value;
            } else {
                while shard.entries.len() >= self.per_shard_capacity {
                    // oldest tick = least recently used
                    let Some((&old_tick, _)) = shard.order.iter().next() else {
                        break;
                    };
                    let victim = shard.order.remove(&old_tick).expect("index consistent");
                    shard.entries.remove(&victim);
                    evicted += 1;
                }
                shard.tick += 1;
                let tick = shard.tick;
                shard.order.insert(tick, key.clone());
                shard.entries.insert(key, (tick, value));
            }
        }
        self.insertions.fetch_add(1, Ordering::Relaxed);
        if evicted > 0 {
            self.evictions.fetch_add(evicted, Ordering::Relaxed);
            pressio_obs::add_counter(&self.eviction_counter, evicted as i64);
        }
    }

    /// Remove every entry whose key satisfies `predicate`, returning how
    /// many were removed. Used by model hot-reload: predictions cached
    /// under a superseded model version are invalidated in one sweep
    /// instead of lingering until LRU eviction.
    pub fn purge_where(&self, predicate: impl Fn(&str) -> bool) -> usize {
        let mut removed = 0usize;
        for shard in self.shards.iter() {
            let mut shard = shard.lock().unwrap_or_else(|e| e.into_inner());
            let victims: Vec<(u64, String)> = shard
                .entries
                .iter()
                .filter(|(k, _)| predicate(k))
                .map(|(k, (tick, _))| (*tick, k.clone()))
                .collect();
            for (tick, key) in victims {
                shard.order.remove(&tick);
                shard.entries.remove(&key);
                removed += 1;
            }
        }
        if removed > 0 {
            self.evictions.fetch_add(removed as u64, Ordering::Relaxed);
            pressio_obs::add_counter(&self.eviction_counter, removed as i64);
        }
        removed
    }

    /// Drop every entry (counts as evictions).
    pub fn clear(&self) -> usize {
        self.purge_where(|_| true)
    }

    /// Live entries across all shards.
    pub fn len(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.lock().unwrap_or_else(|e| e.into_inner()).entries.len())
            .sum()
    }

    /// Whether the cache holds no entries.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The hard occupancy bound (shards × per-shard capacity).
    pub fn capacity(&self) -> usize {
        self.per_shard_capacity * self.shards.len()
    }

    /// Aggregate counters plus the current size.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            insertions: self.insertions.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            len: self.len(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn get_insert_round_trip_and_counters() {
        let c: ShardedLru<u64> = ShardedLru::new("t", 4, 64);
        assert!(c.get("missing").is_none());
        c.insert("a", 1);
        c.insert("b", 2);
        assert_eq!(c.get("a"), Some(1));
        assert_eq!(c.get("b"), Some(2));
        let s = c.stats();
        assert_eq!((s.hits, s.misses, s.insertions, s.len), (2, 1, 2, 2));
    }

    #[test]
    fn overwrite_replaces_value_without_growth() {
        let c: ShardedLru<&'static str> = ShardedLru::new("t", 2, 8);
        c.insert("k", "old");
        c.insert("k", "new");
        assert_eq!(c.get("k"), Some("new"));
        assert_eq!(c.len(), 1);
        assert_eq!(c.stats().evictions, 0);
    }

    #[test]
    fn lru_evicts_oldest_not_hottest() {
        // single shard so the recency order is total
        let c: ShardedLru<u32> = ShardedLru::new("t", 1, 3);
        c.insert("a", 1);
        c.insert("b", 2);
        c.insert("c", 3);
        c.get("a"); // refresh a: b is now the LRU
        c.insert("d", 4);
        assert_eq!(c.get("b"), None, "LRU entry must be the victim");
        assert_eq!(c.get("a"), Some(1));
        assert_eq!(c.get("c"), Some(3));
        assert_eq!(c.get("d"), Some(4));
        assert_eq!(c.len(), 3);
        assert_eq!(c.stats().evictions, 1);
    }

    #[test]
    fn size_stays_bounded_under_churn() {
        let c: ShardedLru<usize> = ShardedLru::new("t", 8, 32);
        for i in 0..10_000 {
            c.insert(format!("k{i}"), i);
        }
        assert!(c.len() <= c.capacity(), "{} > {}", c.len(), c.capacity());
        let s = c.stats();
        assert_eq!(s.insertions, 10_000);
        assert_eq!(s.evictions as usize + s.len, 10_000);
    }

    #[test]
    fn purge_where_removes_only_matching_keys() {
        let c: ShardedLru<u32> = ShardedLru::new("t", 4, 64);
        for i in 0..20 {
            c.insert(format!("p:m@1:{i}"), i);
            c.insert(format!("p:m@2:{i}"), i);
        }
        let removed = c.purge_where(|k| k.starts_with("p:m@1:"));
        assert_eq!(removed, 20);
        assert_eq!(c.len(), 20);
        assert!(c.get("p:m@1:3").is_none());
        assert_eq!(c.get("p:m@2:3"), Some(3));
        // purged slots are reusable and recency stays consistent
        for i in 0..20 {
            c.insert(format!("p:m@3:{i}"), i);
        }
        assert!(c.len() <= c.capacity());
        let live = c.len();
        assert_eq!(c.clear(), live, "clear reports what it removed");
        assert!(c.is_empty());
    }

    #[test]
    fn zero_capacity_clamps_to_one_per_shard() {
        let c: ShardedLru<u8> = ShardedLru::new("t", 4, 0);
        c.insert("a", 1);
        assert_eq!(c.get("a"), Some(1));
        assert!(c.capacity() >= 1);
    }
}
