//! Blocking client for the serve protocol, used by `pressio query`, the
//! end-to-end tests, and the serve benchmark.
//!
//! [`Client::call_resilient`] layers fault tolerance over the bare
//! [`Client::call`]: transport errors (dropped connection, torn frame)
//! trigger a reconnect, transient server errors (`overloaded`,
//! `deadline_exceeded` — see [`protocol::is_retryable`]) trigger a resend,
//! both under a [`RetryPolicy`] budget with deterministic exponential
//! backoff + jitter (`pressio_faults::backoff_ms`). Fatal server errors
//! (`bad_request`, `not_found`, `internal`) return immediately: resending
//! those reproduces the same answer.

use crate::net::{Conn, Endpoint};
use crate::protocol::{self, op, read_frame, write_frame};
use pressio_core::error::{Error, Result};
use pressio_core::{Data, Options};

/// Retry budget and backoff shape for [`Client::call_resilient`].
#[derive(Debug, Clone, Copy)]
pub struct RetryPolicy {
    /// Total attempts, including the first (1 = no retries).
    pub max_attempts: usize,
    /// Backoff before the second attempt, doubling per attempt after.
    pub base_ms: u64,
    /// Ceiling on any single backoff.
    pub max_ms: u64,
}

impl Default for RetryPolicy {
    fn default() -> RetryPolicy {
        RetryPolicy {
            max_attempts: 4,
            base_ms: 10,
            max_ms: 500,
        }
    }
}

/// One connection to a `pressio-serve` daemon; requests are strictly
/// serial per client (pipeline parallelism comes from multiple clients).
pub struct Client {
    conn: Conn,
    endpoint: Endpoint,
}

impl Client {
    /// Connect to a daemon.
    pub fn connect(endpoint: &Endpoint) -> Result<Client> {
        Ok(Client {
            conn: endpoint.connect()?,
            endpoint: endpoint.clone(),
        })
    }

    /// Send one request frame and wait for its response frame.
    ///
    /// Three client-side failpoints bracket the exchange so chaos tests
    /// can exercise every loss window the retry layer must cover:
    /// `serve:client.request` (the request never leaves the client),
    /// `serve:client.conn` (the connection dies with the response in
    /// flight), and `serve:client.response` (the response arrives torn
    /// and is discarded). All three surface as transport-class
    /// [`Error::Io`], which [`call_resilient`](Self::call_resilient)
    /// answers with reconnect + resend.
    pub fn call(&mut self, request: &Options) -> Result<Options> {
        pressio_faults::inject("serve:client.request")?;
        write_frame(&mut self.conn, request)?;
        if pressio_faults::check("serve:client.conn").is_some() {
            // the server may still process the request; only idempotent
            // ops are safe to resend through this window
            return Err(pressio_faults::injected_error("serve:client.conn"));
        }
        let response = read_frame(&mut self.conn)?
            .ok_or_else(|| Error::Io("server closed the connection before replying".into()))?;
        if pressio_faults::check("serve:client.response").is_some() {
            return Err(pressio_faults::injected_error("serve:client.response"));
        }
        Ok(response)
    }

    /// [`call`](Self::call) with retries: reconnects on transport errors,
    /// resends on retryable server errors, backs off deterministically
    /// between attempts. Returns the last outcome when the budget runs out.
    ///
    /// Only safe for idempotent requests (`predict`, `ping`, `stats`,
    /// `models`, `load`); a retried `train` would persist a second model
    /// version.
    pub fn call_resilient(&mut self, request: &Options, policy: &RetryPolicy) -> Result<Options> {
        let op_key = request.get_str_opt("serve:op").ok().flatten().unwrap_or("");
        let mut attempt = 1usize;
        loop {
            let outcome = self.call(request);
            let reconnect = match &outcome {
                Ok(resp) if protocol::is_retryable(resp) => false,
                Ok(_) => return outcome,
                // transport-level failure: the connection is in an unknown
                // state (possibly mid-frame), so it must be re-established
                Err(Error::Io(_)) | Err(Error::CorruptStream(_)) => true,
                Err(_) => return outcome,
            };
            if attempt >= policy.max_attempts {
                return outcome;
            }
            attempt += 1;
            pressio_obs::add_counter("serve:client.retry", 1);
            let wait = pressio_faults::backoff_ms(policy.base_ms, policy.max_ms, attempt, op_key);
            if wait > 0 {
                std::thread::sleep(std::time::Duration::from_millis(wait));
            }
            if reconnect {
                // a dead connection must be replaced before the next call;
                // failed reconnects burn attempts from the same budget
                loop {
                    match self.endpoint.connect() {
                        Ok(conn) => {
                            self.conn = conn;
                            break;
                        }
                        Err(e) => {
                            if attempt >= policy.max_attempts {
                                return Err(e);
                            }
                            attempt += 1;
                            pressio_obs::add_counter("serve:client.retry", 1);
                            let wait = pressio_faults::backoff_ms(
                                policy.base_ms,
                                policy.max_ms,
                                attempt,
                                op_key,
                            );
                            std::thread::sleep(std::time::Duration::from_millis(wait));
                        }
                    }
                }
            }
        }
    }

    /// `ping` → expects `pong`.
    pub fn ping(&mut self) -> Result<Options> {
        self.call(&Options::new().with("serve:op", op::PING))
    }

    /// `stats` → cache/queue/model counters.
    pub fn stats(&mut self) -> Result<Options> {
        self.call(&Options::new().with("serve:op", op::STATS))
    }

    /// `models` → every persisted `name@version`.
    pub fn models(&mut self) -> Result<Options> {
        self.call(&Options::new().with("serve:op", op::MODELS))
    }

    /// `load` → make `name[@version]` resident.
    pub fn load(&mut self, model_ref: &str) -> Result<Options> {
        self.call(
            &Options::new()
                .with("serve:op", op::LOAD)
                .with("serve:model", model_ref),
        )
    }

    /// `shutdown` → graceful daemon drain; the `bye` response is the last
    /// frame the server sends.
    pub fn shutdown(&mut self) -> Result<Options> {
        self.call(&Options::new().with("serve:op", op::SHUTDOWN))
    }

    /// Build a `predict` request for `data` against a trained model. Extra
    /// compressor knobs (e.g. `pressio:abs`) ride along in `extra`.
    pub fn predict_request(model_ref: &str, data: &Data, extra: &Options) -> Options {
        let mut req = extra
            .clone()
            .with("serve:op", op::PREDICT)
            .with("serve:model", model_ref);
        protocol::data_into_request(&mut req, data);
        req
    }

    /// `predict` against a trained model; returns the full response (use
    /// `serve:prediction` / `serve:cached`).
    pub fn predict(&mut self, model_ref: &str, data: &Data, extra: &Options) -> Result<Options> {
        self.call(&Self::predict_request(model_ref, data, extra))
    }

    /// `stream.begin` → open a streaming session. `extra` carries the
    /// scheme/model reference and compressor knobs captured for the whole
    /// stream (e.g. `serve:model`, `serve:compressor`, `pressio:abs`).
    pub fn stream_begin(&mut self, stream_id: &str, extra: &Options) -> Result<Options> {
        self.call(
            &extra
                .clone()
                .with("serve:op", op::STREAM_BEGIN)
                .with("stream:id", stream_id),
        )
    }

    /// `stream.chunk` → per-chunk prediction for an open stream. Pass the
    /// observed outcome as `stream:actual` in `extra` to feed online
    /// learning on an `--online` daemon.
    pub fn stream_chunk(
        &mut self,
        stream_id: &str,
        chunk: &Data,
        extra: &Options,
    ) -> Result<Options> {
        let mut req = extra
            .clone()
            .with("serve:op", op::STREAM_CHUNK)
            .with("stream:id", stream_id);
        protocol::data_into_request(&mut req, chunk);
        self.call(&req)
    }

    /// `stream.end` → close a streaming session and get its summary.
    pub fn stream_end(&mut self, stream_id: &str) -> Result<Options> {
        self.call(
            &Options::new()
                .with("serve:op", op::STREAM_END)
                .with("stream:id", stream_id),
        )
    }

    /// Build a seq-tagged `stream.chunk` request. Tagging the 1-based
    /// `seq` makes the chunk idempotent: replaying a seq at or below the
    /// server's acked offset answers from the cached outcome without
    /// re-feeding the online learner.
    pub fn stream_chunk_request(
        stream_id: &str,
        seq: u64,
        chunk: &Data,
        extra: &Options,
    ) -> Options {
        let mut req = extra
            .clone()
            .with("serve:op", op::STREAM_CHUNK)
            .with("stream:id", stream_id)
            .with("stream:seq", seq);
        protocol::data_into_request(&mut req, chunk);
        req
    }

    /// Seq-tagged [`stream_chunk`](Self::stream_chunk): idempotent under
    /// replay (see [`stream_chunk_request`](Self::stream_chunk_request)).
    pub fn stream_chunk_at(
        &mut self,
        stream_id: &str,
        seq: u64,
        chunk: &Data,
        extra: &Options,
    ) -> Result<Options> {
        self.call(&Self::stream_chunk_request(stream_id, seq, chunk, extra))
    }

    /// `stream.resume` → rehydrate a session after a disconnect or crash.
    /// `token` is the session token from `stream.begun`; `acked` is the
    /// client's last-acked chunk offset. The `stream.resumed` response
    /// carries the server's authoritative `stream:acked` to replay from.
    pub fn stream_resume(&mut self, stream_id: &str, token: &str, acked: u64) -> Result<Options> {
        self.call(
            &Options::new()
                .with("serve:op", op::STREAM_RESUME)
                .with("stream:id", stream_id)
                .with("stream:token", token)
                .with("stream:acked", acked),
        )
    }
}

/// A topology-aware client: fetches the shard [`Topology`] once from the
/// base endpoint, then routes every request *directly* to its home shard
/// by content hash, bypassing the supervisor proxy on the hot path. On a
/// transport failure it walks the rendezvous failover order, and on any
/// failover (or periodically) refetches the topology in case shards were
/// restarted under a new generation.
pub struct ShardedClient {
    base: Endpoint,
    topology: Topology,
    /// One cached connection per shard index, opened lazily.
    conns: Vec<Option<Client>>,
    policy: RetryPolicy,
}

use crate::shard::{routing_key, Topology};

impl ShardedClient {
    /// Connect to `base` (a supervisor or standalone server) and fetch the
    /// topology.
    pub fn connect(base: &Endpoint) -> Result<ShardedClient> {
        let topology = Self::fetch_topology(base)?;
        let conns = (0..topology.shards.len()).map(|_| None).collect();
        Ok(ShardedClient {
            base: base.clone(),
            topology,
            conns,
            policy: RetryPolicy::default(),
        })
    }

    fn fetch_topology(base: &Endpoint) -> Result<Topology> {
        let mut client = Client::connect(base)?;
        let resp = client.call(&Options::new().with("serve:op", op::TOPOLOGY))?;
        Topology::from_options(&resp)
    }

    /// The topology this client is routing against.
    pub fn topology(&self) -> &Topology {
        &self.topology
    }

    /// Refetch the topology from the base endpoint (after failover, or
    /// when a response carries an unexpected shard).
    pub fn refresh(&mut self) -> Result<()> {
        let topology = Self::fetch_topology(&self.base)?;
        if topology.generation != self.topology.generation
            || topology.shards != self.topology.shards
        {
            self.conns = (0..topology.shards.len()).map(|_| None).collect();
            self.topology = topology;
        }
        Ok(())
    }

    fn shard_call(&mut self, index: usize, request: &Options) -> Result<Options> {
        if self.conns[index].is_none() {
            self.conns[index] = Some(Client::connect(&self.topology.shards[index])?);
        }
        let client = self.conns[index].as_mut().expect("connected above");
        let outcome = client.call(request);
        if matches!(&outcome, Err(Error::Io(_)) | Err(Error::CorruptStream(_))) {
            // poisoned connection: drop it so the next attempt reconnects
            self.conns[index] = None;
        }
        outcome
    }

    /// Route one request to its home shard, failing over along the
    /// rendezvous order when shards are unreachable. Transient server
    /// errors (`overloaded`, `deadline_exceeded`) retry on the *same*
    /// shard under the retry policy — they signal load, not death.
    pub fn call(&mut self, request: &Options) -> Result<Options> {
        let key = routing_key(request).unwrap_or_default();
        let order: Vec<usize> = self
            .topology
            .failover_order(&key)
            .into_iter()
            .map(|(i, _)| i)
            .collect();
        let mut last: Option<Result<Options>> = None;
        for (attempt, &index) in order.iter().enumerate() {
            match self.shard_call(index, request) {
                Ok(resp) if protocol::is_retryable(&resp) => {
                    // busy shard: bounded retry in place, then give up on
                    // the whole call (spilling load to another shard would
                    // dilute its cache)
                    let mut retried = Ok(resp);
                    for extra in 2..=self.policy.max_attempts {
                        let wait = pressio_faults::backoff_ms(
                            self.policy.base_ms,
                            self.policy.max_ms,
                            extra,
                            &key,
                        );
                        std::thread::sleep(std::time::Duration::from_millis(wait));
                        retried = self.shard_call(index, request);
                        match &retried {
                            Ok(r) if protocol::is_retryable(r) => continue,
                            _ => break,
                        }
                    }
                    return retried;
                }
                Ok(resp) => {
                    if attempt > 0 {
                        pressio_obs::add_counter("serve:client.failover", attempt as i64);
                        // shards changed under us; pick up the new layout
                        let _ = self.refresh();
                    }
                    return Ok(resp);
                }
                Err(e) => last = Some(Err(e)),
            }
        }
        let _ = self.refresh();
        last.unwrap_or_else(|| {
            Err(Error::Io(format!(
                "no shard reachable via {} (topology generation {})",
                self.base, self.topology.generation
            )))
        })
    }

    /// `predict` routed by the data buffer's content hash.
    pub fn predict(&mut self, model_ref: &str, data: &Data, extra: &Options) -> Result<Options> {
        self.call(&Client::predict_request(model_ref, data, extra))
    }

    /// Aggregate `stats` from the base endpoint (the supervisor sums
    /// across shards).
    pub fn stats(&mut self) -> Result<Options> {
        Client::connect(&self.base)?.stats()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn predict_request_embeds_data_and_model() {
        let data = Data::from_f32(vec![4, 4], (0..16).map(|i| i as f32).collect());
        let req = Client::predict_request("m@3", &data, &Options::new().with("pressio:abs", 1e-4));
        assert_eq!(req.get_str("serve:op").unwrap(), op::PREDICT);
        assert_eq!(req.get_str("serve:model").unwrap(), "m@3");
        assert_eq!(req.get_f64("pressio:abs").unwrap(), 1e-4);
        let back = protocol::data_from_request(&req).unwrap();
        assert_eq!(back.dims(), data.dims());
    }
}
