//! Blocking client for the serve protocol, used by `pressio query`, the
//! end-to-end tests, and the serve benchmark.
//!
//! [`Client::call_resilient`] layers fault tolerance over the bare
//! [`Client::call`]: transport errors (dropped connection, torn frame)
//! trigger a reconnect, transient server errors (`overloaded`,
//! `deadline_exceeded` — see [`protocol::is_retryable`]) trigger a resend,
//! both under a [`RetryPolicy`] budget with deterministic exponential
//! backoff + jitter (`pressio_faults::backoff_ms`). Fatal server errors
//! (`bad_request`, `not_found`, `internal`) return immediately: resending
//! those reproduces the same answer.

use crate::net::{Conn, Endpoint};
use crate::protocol::{self, op, read_frame, write_frame};
use pressio_core::error::{Error, Result};
use pressio_core::{Data, Options};

/// Retry budget and backoff shape for [`Client::call_resilient`].
#[derive(Debug, Clone, Copy)]
pub struct RetryPolicy {
    /// Total attempts, including the first (1 = no retries).
    pub max_attempts: usize,
    /// Backoff before the second attempt, doubling per attempt after.
    pub base_ms: u64,
    /// Ceiling on any single backoff.
    pub max_ms: u64,
}

impl Default for RetryPolicy {
    fn default() -> RetryPolicy {
        RetryPolicy {
            max_attempts: 4,
            base_ms: 10,
            max_ms: 500,
        }
    }
}

/// One connection to a `pressio-serve` daemon; requests are strictly
/// serial per client (pipeline parallelism comes from multiple clients).
pub struct Client {
    conn: Conn,
    endpoint: Endpoint,
}

impl Client {
    /// Connect to a daemon.
    pub fn connect(endpoint: &Endpoint) -> Result<Client> {
        Ok(Client {
            conn: endpoint.connect()?,
            endpoint: endpoint.clone(),
        })
    }

    /// Send one request frame and wait for its response frame.
    pub fn call(&mut self, request: &Options) -> Result<Options> {
        write_frame(&mut self.conn, request)?;
        read_frame(&mut self.conn)?
            .ok_or_else(|| Error::Io("server closed the connection before replying".into()))
    }

    /// [`call`](Self::call) with retries: reconnects on transport errors,
    /// resends on retryable server errors, backs off deterministically
    /// between attempts. Returns the last outcome when the budget runs out.
    ///
    /// Only safe for idempotent requests (`predict`, `ping`, `stats`,
    /// `models`, `load`); a retried `train` would persist a second model
    /// version.
    pub fn call_resilient(&mut self, request: &Options, policy: &RetryPolicy) -> Result<Options> {
        let op_key = request.get_str_opt("serve:op").ok().flatten().unwrap_or("");
        let mut attempt = 1usize;
        loop {
            let outcome = self.call(request);
            let reconnect = match &outcome {
                Ok(resp) if protocol::is_retryable(resp) => false,
                Ok(_) => return outcome,
                // transport-level failure: the connection is in an unknown
                // state (possibly mid-frame), so it must be re-established
                Err(Error::Io(_)) | Err(Error::CorruptStream(_)) => true,
                Err(_) => return outcome,
            };
            if attempt >= policy.max_attempts {
                return outcome;
            }
            attempt += 1;
            pressio_obs::add_counter("serve:client.retry", 1);
            let wait = pressio_faults::backoff_ms(policy.base_ms, policy.max_ms, attempt, op_key);
            if wait > 0 {
                std::thread::sleep(std::time::Duration::from_millis(wait));
            }
            if reconnect {
                // a dead connection must be replaced before the next call;
                // failed reconnects burn attempts from the same budget
                loop {
                    match self.endpoint.connect() {
                        Ok(conn) => {
                            self.conn = conn;
                            break;
                        }
                        Err(e) => {
                            if attempt >= policy.max_attempts {
                                return Err(e);
                            }
                            attempt += 1;
                            pressio_obs::add_counter("serve:client.retry", 1);
                            let wait = pressio_faults::backoff_ms(
                                policy.base_ms,
                                policy.max_ms,
                                attempt,
                                op_key,
                            );
                            std::thread::sleep(std::time::Duration::from_millis(wait));
                        }
                    }
                }
            }
        }
    }

    /// `ping` → expects `pong`.
    pub fn ping(&mut self) -> Result<Options> {
        self.call(&Options::new().with("serve:op", op::PING))
    }

    /// `stats` → cache/queue/model counters.
    pub fn stats(&mut self) -> Result<Options> {
        self.call(&Options::new().with("serve:op", op::STATS))
    }

    /// `models` → every persisted `name@version`.
    pub fn models(&mut self) -> Result<Options> {
        self.call(&Options::new().with("serve:op", op::MODELS))
    }

    /// `load` → make `name[@version]` resident.
    pub fn load(&mut self, model_ref: &str) -> Result<Options> {
        self.call(
            &Options::new()
                .with("serve:op", op::LOAD)
                .with("serve:model", model_ref),
        )
    }

    /// `shutdown` → graceful daemon drain; the `bye` response is the last
    /// frame the server sends.
    pub fn shutdown(&mut self) -> Result<Options> {
        self.call(&Options::new().with("serve:op", op::SHUTDOWN))
    }

    /// Build a `predict` request for `data` against a trained model. Extra
    /// compressor knobs (e.g. `pressio:abs`) ride along in `extra`.
    pub fn predict_request(model_ref: &str, data: &Data, extra: &Options) -> Options {
        let mut req = extra
            .clone()
            .with("serve:op", op::PREDICT)
            .with("serve:model", model_ref);
        protocol::data_into_request(&mut req, data);
        req
    }

    /// `predict` against a trained model; returns the full response (use
    /// `serve:prediction` / `serve:cached`).
    pub fn predict(&mut self, model_ref: &str, data: &Data, extra: &Options) -> Result<Options> {
        self.call(&Self::predict_request(model_ref, data, extra))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn predict_request_embeds_data_and_model() {
        let data = Data::from_f32(vec![4, 4], (0..16).map(|i| i as f32).collect());
        let req = Client::predict_request("m@3", &data, &Options::new().with("pressio:abs", 1e-4));
        assert_eq!(req.get_str("serve:op").unwrap(), op::PREDICT);
        assert_eq!(req.get_str("serve:model").unwrap(), "m@3");
        assert_eq!(req.get_f64("pressio:abs").unwrap(), 1e-4);
        let back = protocol::data_from_request(&req).unwrap();
        assert_eq!(back.dims(), data.dims());
    }
}
