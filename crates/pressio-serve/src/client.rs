//! Blocking client for the serve protocol, used by `pressio query`, the
//! end-to-end tests, and the serve benchmark.

use crate::net::{Conn, Endpoint};
use crate::protocol::{self, op, read_frame, write_frame};
use pressio_core::error::{Error, Result};
use pressio_core::{Data, Options};

/// One connection to a `pressio-serve` daemon; requests are strictly
/// serial per client (pipeline parallelism comes from multiple clients).
pub struct Client {
    conn: Conn,
}

impl Client {
    /// Connect to a daemon.
    pub fn connect(endpoint: &Endpoint) -> Result<Client> {
        Ok(Client {
            conn: endpoint.connect()?,
        })
    }

    /// Send one request frame and wait for its response frame.
    pub fn call(&mut self, request: &Options) -> Result<Options> {
        write_frame(&mut self.conn, request)?;
        read_frame(&mut self.conn)?
            .ok_or_else(|| Error::Io("server closed the connection before replying".into()))
    }

    /// `ping` → expects `pong`.
    pub fn ping(&mut self) -> Result<Options> {
        self.call(&Options::new().with("serve:op", op::PING))
    }

    /// `stats` → cache/queue/model counters.
    pub fn stats(&mut self) -> Result<Options> {
        self.call(&Options::new().with("serve:op", op::STATS))
    }

    /// `models` → every persisted `name@version`.
    pub fn models(&mut self) -> Result<Options> {
        self.call(&Options::new().with("serve:op", op::MODELS))
    }

    /// `load` → make `name[@version]` resident.
    pub fn load(&mut self, model_ref: &str) -> Result<Options> {
        self.call(
            &Options::new()
                .with("serve:op", op::LOAD)
                .with("serve:model", model_ref),
        )
    }

    /// `shutdown` → graceful daemon drain; the `bye` response is the last
    /// frame the server sends.
    pub fn shutdown(&mut self) -> Result<Options> {
        self.call(&Options::new().with("serve:op", op::SHUTDOWN))
    }

    /// Build a `predict` request for `data` against a trained model. Extra
    /// compressor knobs (e.g. `pressio:abs`) ride along in `extra`.
    pub fn predict_request(model_ref: &str, data: &Data, extra: &Options) -> Options {
        let mut req = extra
            .clone()
            .with("serve:op", op::PREDICT)
            .with("serve:model", model_ref);
        protocol::data_into_request(&mut req, data);
        req
    }

    /// `predict` against a trained model; returns the full response (use
    /// `serve:prediction` / `serve:cached`).
    pub fn predict(&mut self, model_ref: &str, data: &Data, extra: &Options) -> Result<Options> {
        self.call(&Self::predict_request(model_ref, data, extra))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn predict_request_embeds_data_and_model() {
        let data = Data::from_f32(vec![4, 4], (0..16).map(|i| i as f32).collect());
        let req = Client::predict_request("m@3", &data, &Options::new().with("pressio:abs", 1e-4));
        assert_eq!(req.get_str("serve:op").unwrap(), op::PREDICT);
        assert_eq!(req.get_str("serve:model").unwrap(), "m@3");
        assert_eq!(req.get_f64("pressio:abs").unwrap(), 1e-4);
        let back = protocol::data_from_request(&req).unwrap();
        assert_eq!(back.dims(), data.dims());
    }
}
